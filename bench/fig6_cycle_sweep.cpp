// Reproduces Fig. 6 (left): network utilization and request latency of
// ZugChain vs the PBFT baseline for bus cycles of 32..256 ms at 1 kB
// payloads. Paper reference shapes: baseline network ~4x ZugChain
// (each request ordered four times); baseline latency 1.1-4.9x, exploding
// (~828x) at the 32 ms cycle where it cannot keep up and drops requests.
//
// Emits BENCH_fig6.json (machine-readable rows) for CI diffing; pass
// --quick to run a single-seed, shortened sweep (CI smoke).
#include <cstring>

#include "bench_util.hpp"

using namespace zc;
using namespace zc::bench;

int main(int argc, char** argv) {
    bool quick = false;
    std::uint32_t batch_size = 1;
    std::int64_t batch_linger_us = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--batch-size") == 0 && i + 1 < argc) {
            batch_size = static_cast<std::uint32_t>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--batch-linger-us") == 0 && i + 1 < argc) {
            batch_linger_us = std::atoll(argv[++i]);
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--batch-size N] [--batch-linger-us US]\n",
                         argv[0]);
            return 2;
        }
    }
    // Batching needs a linger window to accumulate; default to 2 ms when
    // only --batch-size was given.
    if (batch_size > 1 && batch_linger_us == 0) batch_linger_us = 2000;
    HostProfiler host;
    const Duration batch_linger = microseconds(batch_linger_us);

    print_header(
        "Fig. 6 (left): network utilization & latency vs bus cycle (payload 1 kB)");
    std::printf("%8s | %12s %12s %9s | %12s %12s %9s %8s | %8s %8s\n", "cycle", "ZC lat ms",
                "BL lat ms", "lat x", "ZC net %", "BL net %", "net x", "BL drop", "paper", "");
    std::printf("%8s | %12s %12s %9s | %12s %12s %9s %8s | %8s %8s\n", "", "", "", "", "", "",
                "", "", "lat x", "net x");

    const struct {
        int cycle_ms;
        const char* paper_lat;
        const char* paper_net;
    } rows[] = {
        {32, "~828", "~4"},
        {64, "~1.8", "~4"},
        {128, "~1.4", "~4"},
        {256, "~1.1", "~4"},
    };

    std::vector<BenchRow> bench_rows;
    for (const auto& row : rows) {
        ScenarioConfig cfg = paper_config();
        cfg.bus_cycle = milliseconds(row.cycle_ms);
        if (quick) cfg.duration = seconds(10);

        cfg.mode = Mode::kZugChain;
        cfg.batch_max_requests = batch_size;
        cfg.batch_linger = batch_linger;
        const RunMeasurement zc_m = quick ? run_once(cfg) : run_averaged(cfg);

        cfg.mode = Mode::kBaseline;
        cfg.batch_max_requests = 1;
        cfg.batch_linger = Duration::zero();
        const RunMeasurement bl_m = quick ? run_once(cfg) : run_averaged(cfg);

        const double lat_x = zc_m.latency_mean_ms > 0 ? bl_m.latency_mean_ms / zc_m.latency_mean_ms : 0;
        const double net_x = zc_m.net_util_pct > 0 ? bl_m.net_util_pct / zc_m.net_util_pct : 0;
        std::printf("%6d ms | %12.2f %12.2f %8.1fx | %11.3f%% %11.3f%% %8.1fx %8llu | %8s %8s\n",
                    row.cycle_ms, zc_m.latency_mean_ms, bl_m.latency_mean_ms, lat_x,
                    zc_m.net_util_pct, bl_m.net_util_pct, net_x,
                    static_cast<unsigned long long>(bl_m.rx_dropped), row.paper_lat,
                    row.paper_net);

        bench_rows.push_back({"zugchain cycle=" + std::to_string(row.cycle_ms) + "ms", zc_m});
        bench_rows.push_back({"baseline cycle=" + std::to_string(row.cycle_ms) + "ms", bl_m});
    }

    print_footnote(
        "\nJRU requirement check (paper SV-B): ZugChain orders within ~14 ms at the\n"
        "64 ms cycle and must stay below the 500 ms recording deadline.");
    bool clean_alarmed = false;
    {
        // This extra run carries an aggregation-only tracer so the table
        // below can break the end-to-end latency into pipeline phases;
        // the sweep above stays untraced (null sink) and its wall time is
        // the regression reference. The health monitor rides along to
        // prove the watchdogs stay silent on a fault-free run.
        ScenarioConfig cfg = paper_config();
        if (quick) cfg.duration = seconds(10);
        cfg.batch_max_requests = batch_size;
        cfg.batch_linger = batch_linger;
        trace::MetricsRegistry registry;
        trace::Tracer tracer(/*capture_events=*/false, &registry);
        health::FlightRecorder recorder;
        health::HealthMonitor monitor;
        monitor.set_flight_recorder(&recorder);
        trace::FanOutSink fan;
        fan.add(&tracer);
        fan.add(&recorder);
        cfg.trace_sink = &fan;
        cfg.health_monitor = &monitor;
        Scenario scenario(std::move(cfg));
        scenario.run();
        ScenarioReport report = scenario.report();
        const RunMeasurement m = measure(report);
        std::printf("  measured: mean %.2f ms, p99 %.2f ms (budget 500 ms)  [paper: ~14 ms]\n",
                    m.latency_mean_ms, m.latency_p99_ms);
        std::printf("\n  per-phase breakdown at the 64 ms cycle (all nodes):\n");
        print_phase_breakdown(registry, "  ");
        std::printf("\n");
        print_health_summary(monitor, recorder);
        clean_alarmed = monitor.alarmed();
    }

    if (batch_size > 1) {
        // Saturation pair: at a bus cycle short enough that unbatched
        // ordering saturates the single protocol core, batching amortizes
        // the per-instance signature work and must win on ordered
        // requests/s. The overload in the unbatched leg is intentional, so
        // neither leg runs the health watchdogs.
        constexpr int kSatCycleMs = 2;
        print_header("Batch ordering at a saturating cycle (ZugChain mode)");
        std::printf("%-28s | %10s %12s %12s %10s %10s\n", "config", "logged", "req/s",
                    "lat mean ms", "rx drop", "batch p50");

        const auto run_sat = [&](std::uint32_t batch, Duration linger, double& reqs_per_s,
                                 double& occupancy_p50) {
            ScenarioConfig cfg = paper_config();
            cfg.mode = Mode::kZugChain;
            cfg.bus_cycle = milliseconds(kSatCycleMs);
            cfg.duration = quick ? seconds(10) : seconds(30);
            cfg.batch_max_requests = batch;
            cfg.batch_linger = linger;
            trace::MetricsRegistry registry;
            trace::Tracer tracer(/*capture_events=*/false, &registry);
            cfg.trace_sink = &tracer;
            const double duration_s = to_seconds(cfg.duration);
            Scenario scenario(std::move(cfg));
            scenario.run();
            ScenarioReport report = scenario.report();
            const RunMeasurement m = measure(report);
            reqs_per_s = static_cast<double>(m.logged) / duration_s;
            const trace::Histogram occupancy = registry.merged_histogram("batch_requests");
            occupancy_p50 = occupancy.empty() ? 1.0 : occupancy.percentile(0.5);
            return m;
        };

        double unbatched_rate = 0, batched_rate = 0, p50_un = 0, p50_ba = 0;
        const RunMeasurement un = run_sat(1, Duration::zero(), unbatched_rate, p50_un);
        const RunMeasurement ba = run_sat(batch_size, batch_linger, batched_rate, p50_ba);

        const auto sat_row = [&](const char* label, const RunMeasurement& m, double rate,
                                 double p50) {
            std::printf("%-28s | %10llu %12.1f %12.2f %10llu %10.1f\n", label,
                        static_cast<unsigned long long>(m.logged), rate, m.latency_mean_ms,
                        static_cast<unsigned long long>(m.rx_dropped), p50);
        };
        sat_row("batch=1", un, unbatched_rate, p50_un);
        const std::string ba_label =
            "batch=" + std::to_string(batch_size) + " linger=" + std::to_string(batch_linger_us) + "us";
        sat_row(ba_label.c_str(), ba, batched_rate, p50_ba);
        std::printf("  ordered-requests/s speedup: %.2fx\n",
                    unbatched_rate > 0 ? batched_rate / unbatched_rate : 0.0);

        BenchRow row_un{"zugchain cycle=" + std::to_string(kSatCycleMs) + "ms batch=1", un};
        row_un.extra = {{"batch", 1.0}, {"linger_us", 0.0}, {"reqs_per_s", unbatched_rate},
                        {"batch_p50", p50_un}};
        BenchRow row_ba{"zugchain cycle=" + std::to_string(kSatCycleMs) + "ms batch=" +
                            std::to_string(batch_size),
                        ba};
        row_ba.extra = {{"batch", static_cast<double>(batch_size)},
                        {"linger_us", static_cast<double>(batch_linger_us)},
                        {"reqs_per_s", batched_rate},
                        {"batch_p50", p50_ba}};
        bench_rows.push_back(std::move(row_un));
        bench_rows.push_back(std::move(row_ba));
    }

    write_bench_json("fig6", bench_rows, quick);

    if (clean_alarmed) {
        std::printf("WARNING: health watchdog alarmed on a fault-free run\n");
        return 1;
    }
    return 0;
}
