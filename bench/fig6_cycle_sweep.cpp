// Reproduces Fig. 6 (left): network utilization and request latency of
// ZugChain vs the PBFT baseline for bus cycles of 32..256 ms at 1 kB
// payloads. Paper reference shapes: baseline network ~4x ZugChain
// (each request ordered four times); baseline latency 1.1-4.9x, exploding
// (~828x) at the 32 ms cycle where it cannot keep up and drops requests.
#include "bench_util.hpp"

using namespace zc;
using namespace zc::bench;

int main() {
    print_header(
        "Fig. 6 (left): network utilization & latency vs bus cycle (payload 1 kB)");
    std::printf("%8s | %12s %12s %9s | %12s %12s %9s %8s | %8s %8s\n", "cycle", "ZC lat ms",
                "BL lat ms", "lat x", "ZC net %", "BL net %", "net x", "BL drop", "paper", "");
    std::printf("%8s | %12s %12s %9s | %12s %12s %9s %8s | %8s %8s\n", "", "", "", "", "", "",
                "", "", "lat x", "net x");

    const struct {
        int cycle_ms;
        const char* paper_lat;
        const char* paper_net;
    } rows[] = {
        {32, "~828", "~4"},
        {64, "~1.8", "~4"},
        {128, "~1.4", "~4"},
        {256, "~1.1", "~4"},
    };

    for (const auto& row : rows) {
        ScenarioConfig cfg = paper_config();
        cfg.bus_cycle = milliseconds(row.cycle_ms);

        cfg.mode = Mode::kZugChain;
        const RunMeasurement zc_m = run_averaged(cfg);

        cfg.mode = Mode::kBaseline;
        const RunMeasurement bl_m = run_averaged(cfg);

        const double lat_x = zc_m.latency_mean_ms > 0 ? bl_m.latency_mean_ms / zc_m.latency_mean_ms : 0;
        const double net_x = zc_m.net_util_pct > 0 ? bl_m.net_util_pct / zc_m.net_util_pct : 0;
        std::printf("%6d ms | %12.2f %12.2f %8.1fx | %11.3f%% %11.3f%% %8.1fx %8llu | %8s %8s\n",
                    row.cycle_ms, zc_m.latency_mean_ms, bl_m.latency_mean_ms, lat_x,
                    zc_m.net_util_pct, bl_m.net_util_pct, net_x,
                    static_cast<unsigned long long>(bl_m.rx_dropped), row.paper_lat,
                    row.paper_net);
    }

    print_footnote(
        "\nJRU requirement check (paper SV-B): ZugChain orders within ~14 ms at the\n"
        "64 ms cycle and must stay below the 500 ms recording deadline.");
    {
        // This extra run carries an aggregation-only tracer so the table
        // below can break the end-to-end latency into pipeline phases;
        // the sweep above stays untraced (null sink) and its wall time is
        // the regression reference.
        ScenarioConfig cfg = paper_config();
        trace::MetricsRegistry registry;
        trace::Tracer tracer(/*capture_events=*/false, &registry);
        cfg.trace_sink = &tracer;
        Scenario scenario(std::move(cfg));
        scenario.run();
        ScenarioReport report = scenario.report();
        const RunMeasurement m = measure(report);
        std::printf("  measured: mean %.2f ms, p99 %.2f ms (budget 500 ms)  [paper: ~14 ms]\n",
                    m.latency_mean_ms, m.latency_p99_ms);
        std::printf("\n  per-phase breakdown at the 64 ms cycle (all nodes):\n");
        print_phase_breakdown(registry, "  ");
    }
    return 0;
}
