// Reproduces Fig. 6 (left): network utilization and request latency of
// ZugChain vs the PBFT baseline for bus cycles of 32..256 ms at 1 kB
// payloads. Paper reference shapes: baseline network ~4x ZugChain
// (each request ordered four times); baseline latency 1.1-4.9x, exploding
// (~828x) at the 32 ms cycle where it cannot keep up and drops requests.
//
// Emits BENCH_fig6.json (machine-readable rows) for CI diffing; pass
// --quick to run a single-seed, shortened sweep (CI smoke).
#include <cstring>

#include "bench_util.hpp"

using namespace zc;
using namespace zc::bench;

int main(int argc, char** argv) {
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;

    print_header(
        "Fig. 6 (left): network utilization & latency vs bus cycle (payload 1 kB)");
    std::printf("%8s | %12s %12s %9s | %12s %12s %9s %8s | %8s %8s\n", "cycle", "ZC lat ms",
                "BL lat ms", "lat x", "ZC net %", "BL net %", "net x", "BL drop", "paper", "");
    std::printf("%8s | %12s %12s %9s | %12s %12s %9s %8s | %8s %8s\n", "", "", "", "", "", "",
                "", "", "lat x", "net x");

    const struct {
        int cycle_ms;
        const char* paper_lat;
        const char* paper_net;
    } rows[] = {
        {32, "~828", "~4"},
        {64, "~1.8", "~4"},
        {128, "~1.4", "~4"},
        {256, "~1.1", "~4"},
    };

    std::vector<BenchRow> bench_rows;
    for (const auto& row : rows) {
        ScenarioConfig cfg = paper_config();
        cfg.bus_cycle = milliseconds(row.cycle_ms);
        if (quick) cfg.duration = seconds(10);

        cfg.mode = Mode::kZugChain;
        const RunMeasurement zc_m = quick ? run_once(cfg) : run_averaged(cfg);

        cfg.mode = Mode::kBaseline;
        const RunMeasurement bl_m = quick ? run_once(cfg) : run_averaged(cfg);

        const double lat_x = zc_m.latency_mean_ms > 0 ? bl_m.latency_mean_ms / zc_m.latency_mean_ms : 0;
        const double net_x = zc_m.net_util_pct > 0 ? bl_m.net_util_pct / zc_m.net_util_pct : 0;
        std::printf("%6d ms | %12.2f %12.2f %8.1fx | %11.3f%% %11.3f%% %8.1fx %8llu | %8s %8s\n",
                    row.cycle_ms, zc_m.latency_mean_ms, bl_m.latency_mean_ms, lat_x,
                    zc_m.net_util_pct, bl_m.net_util_pct, net_x,
                    static_cast<unsigned long long>(bl_m.rx_dropped), row.paper_lat,
                    row.paper_net);

        bench_rows.push_back({"zugchain cycle=" + std::to_string(row.cycle_ms) + "ms", zc_m});
        bench_rows.push_back({"baseline cycle=" + std::to_string(row.cycle_ms) + "ms", bl_m});
    }

    print_footnote(
        "\nJRU requirement check (paper SV-B): ZugChain orders within ~14 ms at the\n"
        "64 ms cycle and must stay below the 500 ms recording deadline.");
    bool clean_alarmed = false;
    {
        // This extra run carries an aggregation-only tracer so the table
        // below can break the end-to-end latency into pipeline phases;
        // the sweep above stays untraced (null sink) and its wall time is
        // the regression reference. The health monitor rides along to
        // prove the watchdogs stay silent on a fault-free run.
        ScenarioConfig cfg = paper_config();
        if (quick) cfg.duration = seconds(10);
        trace::MetricsRegistry registry;
        trace::Tracer tracer(/*capture_events=*/false, &registry);
        health::FlightRecorder recorder;
        health::HealthMonitor monitor;
        monitor.set_flight_recorder(&recorder);
        trace::FanOutSink fan;
        fan.add(&tracer);
        fan.add(&recorder);
        cfg.trace_sink = &fan;
        cfg.health_monitor = &monitor;
        Scenario scenario(std::move(cfg));
        scenario.run();
        ScenarioReport report = scenario.report();
        const RunMeasurement m = measure(report);
        std::printf("  measured: mean %.2f ms, p99 %.2f ms (budget 500 ms)  [paper: ~14 ms]\n",
                    m.latency_mean_ms, m.latency_p99_ms);
        std::printf("\n  per-phase breakdown at the 64 ms cycle (all nodes):\n");
        print_phase_breakdown(registry, "  ");
        std::printf("\n");
        print_health_summary(monitor, recorder);
        clean_alarmed = monitor.alarmed();
    }

    write_bench_json("fig6", bench_rows);

    if (clean_alarmed) {
        std::printf("WARNING: health watchdog alarmed on a fault-free run\n");
        return 1;
    }
    return 0;
}
