// Reproduces Fig. 7 (right): CPU and memory usage vs payload size at the
// 64 ms bus cycle. Paper reference shapes: ZugChain's CPU 24-26 % of the
// baseline's; baseline memory 1.6-1.7x ZugChain's.
//
// --quick runs a single-seed, shortened sweep (CI smoke).
#include <cstring>

#include "bench_util.hpp"

using namespace zc;
using namespace zc::bench;

int main(int argc, char** argv) {
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    HostProfiler host;

    print_header("Fig. 7 (right): CPU & memory vs payload size (64 ms cycle)");
    std::printf("%8s | %11s %11s %8s | %11s %11s %8s | %10s %9s\n", "payload", "ZC cpu%",
                "BL cpu%", "ZC/BL", "ZC mem MB", "BL mem MB", "mem x", "paper cpu", "paper mem");

    std::vector<BenchRow> bench_rows;
    for (const std::size_t payload : {std::size_t{32}, std::size_t{256}, std::size_t{1024},
                                      std::size_t{4096}, std::size_t{8192}}) {
        ScenarioConfig cfg = paper_config();
        cfg.payload_size = payload;
        if (quick) cfg.duration = seconds(10);

        cfg.mode = Mode::kZugChain;
        const RunMeasurement zc_m = quick ? run_once(cfg) : run_averaged(cfg);

        cfg.mode = Mode::kBaseline;
        const RunMeasurement bl_m = quick ? run_once(cfg) : run_averaged(cfg);

        const double cpu_ratio = bl_m.cpu_pct_400 > 0 ? zc_m.cpu_pct_400 / bl_m.cpu_pct_400 : 0;
        const double mem_x = zc_m.mem_avg_mb > 0 ? bl_m.mem_avg_mb / zc_m.mem_avg_mb : 0;
        std::printf("%6zu B | %10.1f%% %10.1f%% %7.0f%% | %11.1f %11.1f %7.2fx | %10s %9s\n",
                    payload, zc_m.cpu_pct_400, bl_m.cpu_pct_400, cpu_ratio * 100.0,
                    zc_m.mem_avg_mb, bl_m.mem_avg_mb, mem_x, "24-26%", "1.6-1.7");

        const std::string label = "payload=" + std::to_string(payload);
        bench_rows.push_back({"zugchain " + label, zc_m, {}});
        bench_rows.push_back({"baseline " + label, bl_m, {}});
    }
    write_bench_json("fig7_payload", bench_rows, quick);
    return 0;
}
