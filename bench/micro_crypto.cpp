// Microbenchmarks of the cryptographic substrate on the build host
// (google-benchmark). These measure the *real* implementations — the
// protocol experiments charge virtual Cortex-A9 costs instead, so these
// numbers document the host-side cost of running the simulation, and
// validate that the from-scratch crypto is usable.
#include <benchmark/benchmark.h>

#include "common/rng.hpp"
#include "crypto/ed25519.hpp"
#include "crypto/hmac.hpp"
#include "crypto/provider.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

using namespace zc;

namespace {

Bytes make_input(std::size_t n) {
    Rng rng(n + 1);
    return rng.bytes(n);
}

void BM_Sha256(benchmark::State& state) {
    const Bytes input = make_input(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::sha256(input));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(65536);

void BM_Sha512(benchmark::State& state) {
    const Bytes input = make_input(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::sha512(input));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha512)->Arg(64)->Arg(1024)->Arg(65536);

void BM_HmacSha256(benchmark::State& state) {
    const Bytes key = make_input(32);
    const Bytes input = make_input(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::hmac_sha256(key, input));
    }
    state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024);

void BM_Ed25519KeyGen(benchmark::State& state) {
    Rng rng(7);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::ed25519::generate(rng));
    }
}
BENCHMARK(BM_Ed25519KeyGen);

void BM_Ed25519Sign(benchmark::State& state) {
    Rng rng(8);
    const crypto::KeyPair kp = crypto::ed25519::generate(rng);
    const Bytes msg = make_input(static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::ed25519::sign(kp, msg));
    }
}
BENCHMARK(BM_Ed25519Sign)->Arg(64)->Arg(1024);

void BM_Ed25519Verify(benchmark::State& state) {
    Rng rng(9);
    const crypto::KeyPair kp = crypto::ed25519::generate(rng);
    const Bytes msg = make_input(static_cast<std::size_t>(state.range(0)));
    const crypto::Signature sig = crypto::ed25519::sign(kp, msg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(crypto::ed25519::verify(kp.pub, msg, sig));
    }
}
BENCHMARK(BM_Ed25519Verify)->Arg(64)->Arg(1024);

void BM_FastProviderSign(benchmark::State& state) {
    crypto::FastProvider provider;
    Rng rng(10);
    const crypto::KeyPair kp = provider.generate(rng);
    const Bytes msg = make_input(1024);
    for (auto _ : state) {
        benchmark::DoNotOptimize(provider.sign(kp, msg));
    }
}
BENCHMARK(BM_FastProviderSign);

void BM_FastProviderVerify(benchmark::State& state) {
    crypto::FastProvider provider;
    Rng rng(11);
    const crypto::KeyPair kp = provider.generate(rng);
    const Bytes msg = make_input(1024);
    const crypto::Signature sig = provider.sign(kp, msg);
    for (auto _ : state) {
        benchmark::DoNotOptimize(provider.verify(kp.pub, msg, sig));
    }
}
BENCHMARK(BM_FastProviderVerify);

}  // namespace

BENCHMARK_MAIN();
