// Reproduces Table II: latency of the read, delete, and verify steps of
// the data-center export for 500 .. 16,000 blocks over an ~8.5 Mbit/s LTE
// uplink (at a 64 ms bus cycle that is 5 minutes .. ~3 hours of train
// operation).
//
// Paper reference: read+delete 0.14 s .. 15.3 s, verify 0.02 s .. 0.58 s;
// 80-96 % of the time is spent waiting for the 2f+1 replies (the full
// blocks from one replica dominate); verification is 0.2-0.3 % of the
// total.
//
// Emits BENCH_table2.json (machine-readable rows) for CI diffing.
#include <cstring>

#include "bench_util.hpp"

using namespace zc;
using namespace zc::bench;

int main(int argc, char** argv) {
    // `--quick` trims the row set (CI-friendly); default reproduces all.
    // Batching flags prove export/proof semantics are unchanged when one
    // block's sequence numbers hold multi-request batches.
    bool quick = false;
    std::uint32_t batch_size = 1;
    std::int64_t batch_linger_us = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--quick") == 0) {
            quick = true;
        } else if (std::strcmp(argv[i], "--batch-size") == 0 && i + 1 < argc) {
            batch_size = static_cast<std::uint32_t>(std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--batch-linger-us") == 0 && i + 1 < argc) {
            batch_linger_us = std::atoll(argv[++i]);
        } else {
            std::fprintf(stderr, "usage: %s [--quick] [--batch-size N] [--batch-linger-us US]\n",
                         argv[0]);
            return 2;
        }
    }
    if (batch_size > 1 && batch_linger_us == 0) batch_linger_us = 2000;
    HostProfiler host;

    print_header("Table II: export latency (read / delete / verify) over LTE");
    std::printf("%8s | %9s %9s %9s | %9s | %9s %9s\n", "#blocks", "read s", "delete s",
                "verify s", "total s", "paper r/d", "paper vfy");

    std::vector<int> rows = {500, 1000, 2000, 4000, 8000, 16000};
    if (quick) rows = {500, 1000, 2000};
    const char* paper_rd[] = {"0.14", "0.39", "4.7", "9.5", "12.4", "15.3"};
    const char* paper_vfy[] = {"0.02", "0.04", "0.07", "0.15", "0.29", "0.58"};
    std::vector<BenchRow> bench_rows;

    for (std::size_t i = 0; i < rows.size(); ++i) {
        const int blocks = rows[i];
        ScenarioConfig cfg = paper_config();
        cfg.payload_size = 0;  // unpadded JRU records, as on the real MVB
        cfg.dc_count = 2;
        cfg.delete_quorum = 2;
        cfg.mem_sample_period = seconds(10);
        cfg.export_timeout = seconds(600);
        cfg.batch_max_requests = batch_size;
        cfg.batch_linger = microseconds(batch_linger_us);
        // Enough operation to produce the requested number of blocks.
        cfg.warmup = seconds(2);
        cfg.duration = cfg.bus_cycle * (blocks + 4) * static_cast<std::int64_t>(cfg.block_size) /
                       1;

        Scenario s(cfg);
        s.run();

        s.data_center(0).start_export();
        s.run_for(seconds(1200));

        const auto& history = s.data_center(0).history();
        if (history.empty() || !history.back().success) {
            std::printf("%8d | export failed\n", blocks);
            continue;
        }
        const auto& rec = history.back();
        const double read_s = to_seconds(rec.read_time);
        const double delete_s = to_seconds(rec.delete_time);
        const double verify_s = to_seconds(rec.verify_cost);
        std::printf("%8d | %9.2f %9.2f %9.3f | %9.2f | %9s %9s   (exported %llu blocks)\n",
                    blocks, read_s, delete_s, verify_s, read_s + delete_s + verify_s,
                    paper_rd[i], paper_vfy[i],
                    static_cast<unsigned long long>(rec.blocks));

        ScenarioReport report = s.report();
        BenchRow bench_row{"export blocks=" + std::to_string(blocks), measure(report), {}};
        bench_row.extra = {{"read_s", read_s},
                           {"delete_s", delete_s},
                           {"verify_s", verify_s},
                           {"blocks_exported", static_cast<double>(rec.blocks)}};
        bench_rows.push_back(std::move(bench_row));
    }

    write_bench_json("table2", bench_rows, quick);

    print_footnote(
        "\nNote: the read step (waiting for 2f+1 checkpoint replies plus the full\n"
        "blocks from one replica over the 8.5 Mbit/s uplink) dominates, matching the\n"
        "paper's 80-96% share; verification is CPU-bound on the data center.");
    return 0;
}
