// Shared helpers for the paper-reproduction benchmark binaries: run a
// Scenario for both systems, print paper-style rows next to the paper's
// reference values, and expose simple table formatting.
#pragma once

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "health/flight_recorder.hpp"
#include "health/monitor.hpp"
#include "prof/prof.hpp"
#include "runtime/scenario.hpp"
#include "trace/trace.hpp"

namespace zc::bench {

using runtime::Mode;
using runtime::Scenario;
using runtime::ScenarioConfig;
using runtime::ScenarioReport;

/// Condensed per-run measurements used by most tables.
struct RunMeasurement {
    double latency_mean_ms = 0.0;
    double latency_p99_ms = 0.0;
    double net_util_pct = 0.0;       ///< mean egress utilization of the 100 Mbit/s links
    double cpu_pct_total = 0.0;      ///< % of the device's 4-core budget (node 0)
    double cpu_pct_400 = 0.0;        ///< paper's axis: 400 % = all cores busy
    double mem_avg_mb = 0.0;
    double mem_peak_mb = 0.0;
    std::uint64_t total_bytes = 0;
    std::uint64_t logged = 0;
    std::uint64_t blocks = 0;
    std::uint64_t rx_dropped = 0;
    std::uint64_t rate_limited = 0;
};

inline RunMeasurement measure(ScenarioReport& report) {
    RunMeasurement m;
    if (!report.latency_ms.empty()) {
        m.latency_mean_ms = report.latency_ms.mean();
        m.latency_p99_ms = report.latency_ms.percentile(0.99);
    }
    m.net_util_pct = report.mean_egress_utilization * 100.0;
    m.cpu_pct_total = report.nodes[0].cpu_pct_of_device;
    m.cpu_pct_400 = report.nodes[0].cpu_cores * 100.0;
    m.mem_avg_mb = report.nodes[0].mem_avg_mb;
    m.mem_peak_mb = report.nodes[0].mem_peak_mb;
    m.total_bytes = report.total_bytes;
    m.logged = report.logged_unique;
    m.blocks = report.blocks;
    m.rate_limited = report.rate_limited;
    for (const auto& node : report.nodes) m.rx_dropped += node.rx_dropped;
    return m;
}

/// Runs one configuration and returns the condensed measurement.
inline RunMeasurement run_once(ScenarioConfig cfg) {
    Scenario scenario(std::move(cfg));
    scenario.run();
    ScenarioReport report = scenario.report();
    return measure(report);
}

/// Averages `runs` seeded repetitions (the paper reports averages over
/// five runs).
inline RunMeasurement run_averaged(ScenarioConfig cfg, int runs = 3) {
    RunMeasurement acc;
    for (int i = 0; i < runs; ++i) {
        cfg.seed = cfg.seed * 7919 + static_cast<std::uint64_t>(i) + 1;
        const RunMeasurement m = run_once(cfg);
        acc.latency_mean_ms += m.latency_mean_ms / runs;
        acc.latency_p99_ms += m.latency_p99_ms / runs;
        acc.net_util_pct += m.net_util_pct / runs;
        acc.cpu_pct_total += m.cpu_pct_total / runs;
        acc.cpu_pct_400 += m.cpu_pct_400 / runs;
        acc.mem_avg_mb += m.mem_avg_mb / runs;
        acc.mem_peak_mb += m.mem_peak_mb / runs;
        acc.total_bytes += m.total_bytes / static_cast<std::uint64_t>(runs);
        acc.logged += m.logged / static_cast<std::uint64_t>(runs);
        acc.blocks += m.blocks / static_cast<std::uint64_t>(runs);
        acc.rx_dropped += m.rx_dropped;
        acc.rate_limited += m.rate_limited / static_cast<std::uint64_t>(runs);
    }
    return acc;
}

/// Per-phase latency breakdown rows from a tracing registry, merged over
/// all nodes (Fig. 6/8 companion tables: where does the end-to-end
/// latency go — layer wait, ordering, persistence).
inline void print_phase_breakdown(const trace::MetricsRegistry& registry,
                                  const char* indent = "") {
    const struct {
        const char* metric;
        const char* label;
    } rows[] = {
        {"layer_wait_ns", "layer wait (receive -> propose)"},
        {"ordering_ns", "ordering   (propose -> decide)"},
        {"persist_ns", "persist    (decide -> block)"},
        {"e2e_ns", "end-to-end (receive -> decide)"},
        {"view_change_ns", "view change (start -> new view)"},
    };
    std::printf("%s%-33s %9s %10s %10s %10s\n", indent, "phase", "count", "p50 ms", "p99 ms",
                "max ms");
    for (const auto& row : rows) {
        const trace::Histogram h = registry.merged_histogram(row.metric);
        if (h.count() == 0) continue;
        std::printf("%s%-33s %9llu %10.3f %10.3f %10.3f\n", indent, row.label,
                    static_cast<unsigned long long>(h.count()),
                    static_cast<double>(h.percentile(0.5)) / 1e6,
                    static_cast<double>(h.percentile(0.99)) / 1e6,
                    static_cast<double>(h.max()) / 1e6);
    }
}

/// One labelled measurement row for the machine-readable dump.
struct BenchRow {
    std::string config;  ///< e.g. "zugchain cycle=64ms"
    RunMeasurement m;
    /// Bench-specific numeric columns appended after the common ones
    /// (e.g. table2's read/delete/verify seconds).
    std::vector<std::pair<std::string, double>> extra;
};

/// Writes `BENCH_<name>.json` into the working directory so CI can diff
/// benchmark results across commits. The virtual-metric rows are
/// deterministic: fixed precision, row order as given. Schema:
///   {"bench":"fig6","quick":false,"rows":[{"config":"...",
///    "latency_mean_ms":..,"latency_p99_ms":..,"net_util_pct":..,
///    "cpu_pct_total":..,"mem_avg_mb":..,"mem_peak_mb":..,
///    "total_bytes":..,"logged":..,"blocks":..,"rx_dropped":..,
///    "rate_limited":..},...],"host":{...}}
/// `quick` records whether the bench ran its trimmed CI row set, so
/// zc_benchdiff only compares counts against results of the same depth.
/// The trailing `host` block (sim_rate, per-subsystem self seconds, peak
/// RSS; present when a prof::Profiler is active) is the one
/// machine-varying section — tooling compares it with loose tolerances
/// or not at all.
inline void write_bench_json(const std::string& name, const std::vector<BenchRow>& rows,
                             bool quick = false) {
    std::string out = "{\"bench\":\"" + name + "\",\"quick\":";
    out += quick ? "true" : "false";
    out += ",\"rows\":[";
    char buf[512];
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const RunMeasurement& m = rows[i].m;
        std::snprintf(buf, sizeof buf,
                      "%s{\"config\":\"%s\",\"latency_mean_ms\":%.3f,\"latency_p99_ms\":%.3f,"
                      "\"net_util_pct\":%.4f,\"cpu_pct_total\":%.2f,\"mem_avg_mb\":%.2f,"
                      "\"mem_peak_mb\":%.2f,\"total_bytes\":%" PRIu64 ",\"logged\":%" PRIu64
                      ",\"blocks\":%" PRIu64 ",\"rx_dropped\":%" PRIu64
                      ",\"rate_limited\":%" PRIu64 "}",
                      i == 0 ? "" : ",", rows[i].config.c_str(), m.latency_mean_ms,
                      m.latency_p99_ms, m.net_util_pct, m.cpu_pct_total, m.mem_avg_mb,
                      m.mem_peak_mb, m.total_bytes, m.logged, m.blocks, m.rx_dropped,
                      m.rate_limited);
        out += buf;
        for (const auto& [key, value] : rows[i].extra) {
            out.pop_back();  // reopen the row object
            std::snprintf(buf, sizeof buf, ",\"%s\":%.4f}", key.c_str(), value);
            out += buf;
        }
    }
    out += "]";
    if (const prof::Profiler* profiler = prof::Profiler::active(); profiler != nullptr) {
        out += ",\"host\":" + profiler->snapshot().json();
    }
    out += "}\n";
    const std::string path = "BENCH_" + name + ".json";
    std::ofstream f(path, std::ios::binary | std::ios::trunc);
    if (!f) {
        std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
        return;
    }
    f.write(out.data(), static_cast<std::streamsize>(out.size()));
    std::printf("\nwrote %s (%zu rows)\n", path.c_str(), rows.size());
}

/// Prints the watchdog verdict of a health-monitored run: every alarm with
/// its firing time, plus how much the flight recorder retained.
inline void print_health_summary(const health::HealthMonitor& monitor,
                                 const health::FlightRecorder& recorder,
                                 const char* indent = "  ") {
    std::printf("%shealth: %zu alarm(s) over %llu samples; flight recorder %zu events "
                "(%llu dropped)\n",
                indent, monitor.alarms().size(),
                static_cast<unsigned long long>(monitor.samples_taken()), recorder.size(),
                static_cast<unsigned long long>(recorder.dropped()));
    for (const auto& alarm : monitor.alarms()) {
        std::printf("%s  [%.3f s] node %d %s: %s\n", indent, to_seconds(alarm.first_seen),
                    alarm.node == kNoNode ? -1 : static_cast<int>(alarm.node),
                    health::alarm_kind_name(alarm.kind), alarm.detail.c_str());
    }
}

inline void print_header(const std::string& title) {
    std::printf("\n================================================================\n");
    std::printf("%s\n", title.c_str());
    std::printf("================================================================\n");
}

inline void print_footnote(const std::string& text) { std::printf("%s\n", text.c_str()); }

/// Activates a host-cost profiler for the lifetime of a bench main(), so
/// every write_bench_json() call embeds a `host` block (sim_rate,
/// per-subsystem seconds, peak RSS). Declared first in main(): the whole
/// bench, including scenario construction, is then attributed.
class HostProfiler {
public:
    HostProfiler() { prof::Profiler::set_active(&profiler_); }
    ~HostProfiler() { prof::Profiler::set_active(nullptr); }
    HostProfiler(const HostProfiler&) = delete;
    HostProfiler& operator=(const HostProfiler&) = delete;

    const prof::Profiler& profiler() const noexcept { return profiler_; }

private:
    prof::Profiler profiler_;
};

/// Default experiment base: the paper's testbed parameters.
inline ScenarioConfig paper_config() {
    ScenarioConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.bus_cycle = milliseconds(64);
    cfg.payload_size = 1024;
    cfg.block_size = 10;
    cfg.warmup = seconds(3);
    cfg.duration = seconds(45);
    cfg.default_tap_faults = {};
    return cfg;
}

}  // namespace zc::bench
