// Reproduces Fig. 7 (left): CPU and memory usage vs bus cycle at 1 kB
// payloads. Paper reference shapes: ZugChain's CPU is 25-31 % of the
// baseline's; baseline memory is 1.7-1.8x ZugChain's, spiking to ~6.3x at
// the overloaded 32 ms cycle; ZugChain never exceeds 15 % of the device's
// total (4-core) CPU budget.
//
// --quick runs a single-seed, shortened sweep (CI smoke).
#include <cstring>

#include "bench_util.hpp"

using namespace zc;
using namespace zc::bench;

int main(int argc, char** argv) {
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    HostProfiler host;

    print_header("Fig. 7 (left): CPU & memory vs bus cycle (payload 1 kB)");
    std::printf("%8s | %11s %11s %8s | %11s %11s %8s | %10s %9s\n", "cycle", "ZC cpu%",
                "BL cpu%", "ZC/BL", "ZC mem MB", "BL mem MB", "mem x", "paper cpu", "paper mem");
    std::printf("%8s | %11s %11s %8s | %11s %11s %8s | %10s %9s\n", "", "(of 400%)",
                "(of 400%)", "", "(avg)", "(avg)", "", "ZC/BL", "x");

    std::vector<BenchRow> bench_rows;
    double worst_pct_total = 0.0;
    for (const int cycle_ms : {32, 64, 128, 256}) {
        ScenarioConfig cfg = paper_config();
        cfg.bus_cycle = milliseconds(cycle_ms);
        if (quick) cfg.duration = seconds(10);

        cfg.mode = Mode::kZugChain;
        const RunMeasurement zc_m = quick ? run_once(cfg) : run_averaged(cfg);

        cfg.mode = Mode::kBaseline;
        const RunMeasurement bl_m = quick ? run_once(cfg) : run_averaged(cfg);

        worst_pct_total = std::max(worst_pct_total, zc_m.cpu_pct_total);
        const double cpu_ratio = bl_m.cpu_pct_400 > 0 ? zc_m.cpu_pct_400 / bl_m.cpu_pct_400 : 0;
        const double mem_x = zc_m.mem_avg_mb > 0 ? bl_m.mem_avg_mb / zc_m.mem_avg_mb : 0;
        std::printf("%6d ms | %10.1f%% %10.1f%% %7.0f%% | %11.1f %11.1f %7.2fx | %10s %9s\n",
                    cycle_ms, zc_m.cpu_pct_400, bl_m.cpu_pct_400, cpu_ratio * 100.0,
                    zc_m.mem_avg_mb, bl_m.mem_avg_mb, mem_x, "25-31%",
                    cycle_ms == 32 ? "~6.3" : "1.7-1.8");

        const std::string label = "cycle=" + std::to_string(cycle_ms) + "ms";
        bench_rows.push_back({"zugchain " + label, zc_m, {}});
        bench_rows.push_back({"baseline " + label, bl_m, {}});
    }

    std::printf(
        "\nZugChain max CPU usage: %.1f%% of the device's total CPU  [paper: <= 15%%]\n",
        worst_pct_total);
    write_bench_json("fig7_cycle", bench_rows, quick);
    return 0;
}
