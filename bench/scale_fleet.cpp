// Extension experiment: fleet-scale sharded recording (src/fleet). The
// paper deploys one consist; a railway operator runs a timetable of them,
// all exporting into the same juridical data centers. This bench sweeps
// the fleet size and finishes with the acceptance configuration: 100
// trains, >= 1 million telegrams end-to-end, per-shard safety audits
// clean and zero never-cleared alarms — all on one deterministic virtual
// clock (same seed => byte-identical BENCH json, which CI cmp's).
//
//   scale_fleet [--quick]     # CI: small fleets only, seconds not minutes
//
// Operating point: 16 ms bus cycle with request batching (10/2 ms) is the
// fastest cadence the modeled hardware sustains fleet-wide; 2 trains per
// LTE cell keeps export read bursts short enough that the single-NIC
// egress model never starves PBFT into soft timeouts (at 8 trains/cell a
// shard's consensus audibly stalls during export rounds — a real modeled
// capacity cliff, not a bug).
//
// Exit code 1 if any non-chaos run ends unclean (audit violation, stuck
// alarm, cross-shard collision or a short telegram count).
#include <cstring>

#include "bench_util.hpp"
#include "fleet/fleet.hpp"

using namespace zc;
using namespace zc::bench;

namespace {

struct FleetPoint {
    std::uint32_t trains;
    Duration duration;
};

fleet::FleetConfig fleet_config(std::uint32_t trains, Duration duration) {
    fleet::FleetConfig cfg;
    cfg.trains = trains;
    cfg.seed = 1;
    cfg.train = paper_config();
    cfg.train.bus_cycle = milliseconds(16);
    cfg.train.payload_size = 256;
    cfg.train.batch_max_requests = 10;
    cfg.train.batch_linger = microseconds(2000);
    cfg.dc_count = 2;
    cfg.trains_per_cell = 2;
    cfg.export_period = seconds(5);
    cfg.warmup = seconds(2);
    cfg.duration = duration;
    cfg.audit = true;
    return cfg;
}

}  // namespace

int main(int argc, char** argv) {
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    HostProfiler host;

    print_header(quick ? "Fleet scaling (quick): shards -> shared data centers"
                       : "Fleet scaling: 10..100 trains -> shared data centers");
    std::printf("%7s %10s | %10s %10s | %9s %8s | %7s %6s %6s\n", "trains", "duration",
                "telegrams", "blocks", "archived", "exports", "ingestQ", "stuck", "audit");

    std::vector<FleetPoint> points;
    if (quick) {
        points = {{2, seconds(15)}, {4, seconds(15)}, {8, seconds(20)}};
    } else {
        // The last point is the acceptance run: 100 trains x 167 s at the
        // 16 ms cycle ~ 1.04 M telegrams recorded end-to-end.
        points = {{10, seconds(30)}, {25, seconds(30)}, {50, seconds(30)}, {100, seconds(165)}};
    }

    int rc = 0;
    std::vector<BenchRow> rows;
    for (const FleetPoint& p : points) {
        fleet::Fleet fleet(fleet_config(p.trains, p.duration));
        fleet.run();
        const fleet::FleetReport r = fleet.report();

        const bool is_acceptance = !quick && p.trains == 100;
        const bool clean = r.audit_violations == 0 && r.alarms.total_never_cleared == 0 &&
                           r.cross_shard_collisions == 0 && r.exports_failed == 0;
        if (!clean) rc = 1;
        if (is_acceptance && r.logged_sum < 1'000'000) {
            std::printf("ACCEPTANCE FAIL: %llu telegrams < 1M\n",
                        static_cast<unsigned long long>(r.logged_sum));
            rc = 1;
        }

        std::printf("%7u %9.0fs | %10llu %10llu | %9llu %8llu | %7llu %6llu %6llu%s\n",
                    r.trains, to_seconds(p.duration),
                    static_cast<unsigned long long>(r.logged_sum),
                    static_cast<unsigned long long>(r.head_sum),
                    static_cast<unsigned long long>(r.exported_unique),
                    static_cast<unsigned long long>(r.exports_completed),
                    static_cast<unsigned long long>(r.ingest_dropped),
                    static_cast<unsigned long long>(r.alarms.total_never_cleared),
                    static_cast<unsigned long long>(r.audit_violations),
                    clean ? "" : "  <-- UNCLEAN");

        BenchRow row;
        row.config = "fleet trains=" + std::to_string(r.trains) +
                     " duration=" + std::to_string(static_cast<long long>(to_seconds(p.duration))) +
                     "s";
        row.m.logged = r.logged_sum;
        row.m.blocks = r.head_sum;
        row.extra = {
            {"trains", static_cast<double>(r.trains)},
            {"elapsed_s", r.elapsed_s},
            {"exported_unique", static_cast<double>(r.exported_unique)},
            {"exported_duplicates", static_cast<double>(r.exported_duplicates)},
            {"exports_completed", static_cast<double>(r.exports_completed)},
            {"exports_failed", static_cast<double>(r.exports_failed)},
            {"ingest_dropped", static_cast<double>(r.ingest_dropped)},
            {"alarms_never_cleared", static_cast<double>(r.alarms.total_never_cleared)},
            {"audit_violations", static_cast<double>(r.audit_violations)},
            {"cross_shard_collisions", static_cast<double>(r.cross_shard_collisions)},
        };
        rows.push_back(std::move(row));
    }
    write_bench_json("scale_fleet", rows, quick);

    print_footnote(
        "\nExpected shape: telegram throughput scales linearly in fleet size (shards\n"
        "are independent consensus domains sharing only the DC frontend); archived\n"
        "counts trail the chain heads by at most one export period; the bounded\n"
        "ingest tier sheds nothing at the provisioned 8-core/4096-slot frontend.\n"
        "All runs must end audit-clean with zero never-cleared alarms.");
    return rc;
}
