// Reproduces Fig. 6 (right): network utilization and latency vs payload
// size (32 B .. 8 kB) at the common 64 ms bus cycle. Paper reference:
// ZugChain's latency grows ~37 % from smallest to largest payload; the
// baseline stays 1.6-2.5x ZugChain's; network utilization again ~4x.
#include "bench_util.hpp"

using namespace zc;
using namespace zc::bench;

int main() {
    print_header("Fig. 6 (right): network utilization & latency vs payload (64 ms cycle)");
    std::printf("%8s | %12s %12s %8s | %12s %12s %8s | %16s\n", "payload", "ZC lat ms",
                "BL lat ms", "lat x", "ZC net %", "BL net %", "net x", "paper lat x");

    const std::size_t payloads[] = {32, 256, 1024, 4096, 8192};
    double zc_first = 0, zc_last = 0;

    for (const std::size_t payload : payloads) {
        ScenarioConfig cfg = paper_config();
        cfg.payload_size = payload;

        cfg.mode = Mode::kZugChain;
        const RunMeasurement zc_m = run_averaged(cfg);

        cfg.mode = Mode::kBaseline;
        const RunMeasurement bl_m = run_averaged(cfg);

        if (payload == payloads[0]) zc_first = zc_m.latency_mean_ms;
        zc_last = zc_m.latency_mean_ms;

        const double lat_x = zc_m.latency_mean_ms > 0 ? bl_m.latency_mean_ms / zc_m.latency_mean_ms : 0;
        const double net_x = zc_m.net_util_pct > 0 ? bl_m.net_util_pct / zc_m.net_util_pct : 0;
        std::printf("%6zu B | %12.2f %12.2f %7.1fx | %11.3f%% %11.3f%% %7.1fx | %16s\n",
                    payload, zc_m.latency_mean_ms, bl_m.latency_mean_ms, lat_x,
                    zc_m.net_util_pct, bl_m.net_util_pct, net_x, "1.6-2.5x");
    }

    std::printf(
        "\nZugChain latency growth from 32 B to 8 kB: +%.0f%%  [paper: +37%%]\n",
        (zc_last / zc_first - 1.0) * 100.0);
    return 0;
}
