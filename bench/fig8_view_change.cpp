// Reproduces Fig. 8: request latency across a view change caused by a
// faulty primary at relative time 0.
//
// Paper setup and reference values: ZugChain uses soft+hard timeouts of
// 250 ms + 250 ms, the baseline a 500 ms view-change timeout; the view
// change itself takes ~530 ms (ZugChain) vs ~507 ms (baseline); afterwards
// ZugChain restabilizes to its ~14 ms steady state within ~210 ms while
// the baseline needs ~824 ms to get back to ~25 ms.
#include <algorithm>
#include <cstring>

#include "bench_util.hpp"

using namespace zc;
using namespace zc::bench;

namespace {

struct ViewChangeTrace {
    double steady_before_ms = 0;
    double steady_after_ms = 0;
    double gap_ms = 0;        // fault -> first post-fault logged request
    double stabilize_ms = 0;  // fault -> latency back within 1.5x steady
    std::vector<metrics::SeriesPoint> series;
    trace::MetricsRegistry phases;  ///< per-phase histograms (all nodes)
    std::vector<health::Alarm> alarms;
    std::uint64_t health_samples = 0;
    std::size_t flight_events = 0;
    std::size_t flight_view_changes = 0;  ///< view-change events in the dump
    std::string dump_on_alarm;            ///< black box, captured as the first alarm fired
};

ViewChangeTrace run_trace(Mode mode, bool quick) {
    ScenarioConfig cfg = paper_config();
    cfg.mode = mode;
    cfg.duration = quick ? seconds(20) : seconds(40);
    const Duration fault_at = cfg.warmup + (quick ? seconds(6) : seconds(15));
    cfg.crash_schedule = {{fault_at, 0}};

    // Aggregation-only tracer: per-phase latency histograms without the
    // memory cost of full event capture.
    trace::MetricsRegistry registry;
    trace::Tracer tracer(/*capture_events=*/false, &registry);

    // The health tap rides the same instrumentation: the flight recorder
    // shares the trace fan-out, the watchdog monitor samples on the
    // virtual clock, and the first alarm snapshots the black box the
    // moment it fires (dump-on-alarm).
    ViewChangeTrace trace;
    health::FlightRecorder recorder;
    health::HealthMonitor monitor;
    monitor.set_flight_recorder(&recorder);
    monitor.set_alarm_hook([&](const health::Alarm&) {
        if (trace.dump_on_alarm.empty()) trace.dump_on_alarm = recorder.json();
    });
    trace::FanOutSink fan;
    fan.add(&tracer);
    fan.add(&recorder);
    cfg.trace_sink = &fan;
    cfg.health_monitor = &monitor;

    Scenario s(cfg);
    s.run();

    trace.alarms = monitor.alarms();
    trace.health_samples = monitor.samples_taken();
    trace.flight_events = recorder.size();
    for (const auto& e : recorder.events()) {
        if (e.kind == health::FlightEventKind::kPhase &&
            (e.phase == trace::Phase::kViewChangeStart || e.phase == trace::Phase::kNewView)) {
            ++trace.flight_view_changes;
        }
    }

    // Observe from node 1, the new primary.
    const auto& points = s.node(1).latency_series().points();
    const double t0 = to_seconds(fault_at);

    metrics::Summary before, after_all;
    for (const auto& p : points) {
        if (p.t_seconds < t0) before.add(p.value);
    }
    trace.steady_before_ms = before.empty() ? 0 : before.mean();

    // Gap: the longest interval without any logged request around the
    // fault (timeouts + view change + re-proposal).
    double prev_t = t0;
    double max_gap = 0;
    const double threshold = trace.steady_before_ms * 1.5 + 2.0;
    double stabilized_at = t0;
    for (const auto& p : points) {
        if (p.t_seconds < t0) continue;
        if (p.t_seconds < t0 + 5.0) max_gap = std::max(max_gap, p.t_seconds - prev_t);
        prev_t = p.t_seconds;
        // Stabilized = the time after which latency never exceeds the
        // steady threshold again.
        if (p.value > threshold) stabilized_at = p.t_seconds;
        trace.series.push_back({p.t_seconds - t0, p.value});
    }
    for (const auto& p : points) {
        if (p.t_seconds > stabilized_at) after_all.add(p.value);
    }
    trace.gap_ms = max_gap * 1000.0;
    trace.stabilize_ms = (stabilized_at - t0) * 1000.0;
    trace.steady_after_ms = after_all.empty() ? 0 : after_all.mean();
    trace.phases = std::move(registry);  // tracer is done emitting here
    return trace;
}

void print_trace(const char* name, const ViewChangeTrace& t) {
    std::printf("\n--- %s ---\n", name);
    std::printf("steady latency before fault : %8.2f ms\n", t.steady_before_ms);
    std::printf("longest logging gap         : %8.1f ms  (timeouts + view change)\n", t.gap_ms);
    std::printf("fault -> latency stabilized : %8.1f ms\n", t.stabilize_ms);
    std::printf("steady latency after fault  : %8.2f ms  (observer is the new primary)\n",
                t.steady_after_ms);
    std::printf("latency timeline around the fault (100 ms buckets, mean ms):\n");
    std::printf("%12s %12s\n", "t rel (s)", "latency ms");
    double bucket_start = -0.5;
    while (bucket_start < 2.5) {
        metrics::Summary bucket;
        for (const auto& p : t.series) {
            if (p.t_seconds >= bucket_start && p.t_seconds < bucket_start + 0.1) {
                bucket.add(p.value);
            }
        }
        // also include pre-fault points (negative relative times come from
        // the series only containing post-fault data; print blank if none)
        if (!bucket.empty()) {
            std::printf("%12.1f %12.2f\n", bucket_start, bucket.mean());
        }
        bucket_start += 0.1;
    }
    std::printf("per-phase latency breakdown (all nodes, whole run):\n");
    print_phase_breakdown(t.phases, "  ");

    std::printf("watchdog verdict (monitor sampled every %u bus cycles):\n",
                health::MonitorConfig{}.sample_every_cycles);
    std::printf("  health: %zu alarm(s) over %llu samples; flight recorder retained %zu "
                "events (%zu view-change)\n",
                t.alarms.size(), static_cast<unsigned long long>(t.health_samples),
                t.flight_events, t.flight_view_changes);
    for (const auto& alarm : t.alarms) {
        std::printf("    [%.3f s] node %d %s: %s\n", to_seconds(alarm.first_seen),
                    alarm.node == kNoNode ? -1 : static_cast<int>(alarm.node),
                    health::alarm_kind_name(alarm.kind), alarm.detail.c_str());
    }
    if (!t.dump_on_alarm.empty()) {
        std::printf("  black box dumped on first alarm: %zu bytes of JSON\n",
                    t.dump_on_alarm.size());
    }
}

}  // namespace

int main(int argc, char** argv) {
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    HostProfiler host;

    print_header("Fig. 8: request latency during a view change (primary fails at t=0)");
    std::printf("timeouts: ZugChain soft+hard 250 ms + 250 ms; baseline 500 ms\n");

    const ViewChangeTrace zc_t = run_trace(Mode::kZugChain, quick);
    const ViewChangeTrace bl_t = run_trace(Mode::kBaseline, quick);

    print_trace("ZugChain", zc_t);
    print_trace("Baseline", bl_t);

    std::printf("\npaper reference: view change ~530 ms (ZC) / ~507 ms (BL); back to\n"
                "steady ~14 ms within ~210 ms (ZC) vs ~25 ms within ~824 ms (BL).\n");

    // The view-change shape as a machine-readable row set: latency fields
    // stay zero (not measured here); the figure's numbers ride in extras.
    const auto row = [](const char* name, const ViewChangeTrace& t) {
        BenchRow r;
        r.config = name;
        r.extra = {{"steady_before_ms", t.steady_before_ms},
                   {"gap_ms", t.gap_ms},
                   {"stabilize_ms", t.stabilize_ms},
                   {"steady_after_ms", t.steady_after_ms}};
        return r;
    };
    write_bench_json("fig8", {row("zugchain", zc_t), row("baseline", bl_t)}, quick);

    if (zc_t.alarms.empty()) {
        std::printf("\nWARNING: primary crash did not trip the stalled-view watchdog\n");
        return 1;
    }
    return 0;
}
