// Ablation: the soft timeout (DESIGN.md decision 2).
//
// Two questions, two tables:
//
//  A) What does the soft timeout *cost* in the fault-free case? A zero
//     timeout makes every node broadcast every request immediately —
//     re-creating the baseline's redundancy that the filtering was meant
//     to remove. Any timeout beyond the primary's preprepare round trip
//     (~1 ms here) stays silent thanks to the preprepare-cancellation
//     optimization; the paper's 250 ms has ample margin.
//
//  B) What does the soft timeout *buy* under a primary that delays
//     preprepares beyond the hard timeout (600 ms)? The broadcast arms
//     hard timers on all nodes (Alg. 1 ln. 23/31), so the censoring-grade
//     delay is detected and a view change restores normal latency. With
//     the soft path disabled, hard timers are never armed: no suspicion,
//     and every request permanently pays the delay.
//
// --quick runs shortened rows (CI smoke).
#include <cstring>

#include "bench_util.hpp"

using namespace zc;
using namespace zc::bench;

namespace {

bool g_quick = false;
std::vector<BenchRow> g_rows;

void run_row(const char* label, Duration soft, Duration hard, Duration primary_delay) {
    ScenarioConfig cfg = paper_config();
    cfg.duration = g_quick ? seconds(10) : seconds(45);
    cfg.soft_timeout = soft;
    cfg.hard_timeout = hard;
    if (primary_delay > Duration::zero()) {
        runtime::ByzantineBehavior byz;
        byz.preprepare_delay = primary_delay;
        cfg.byzantine[0] = byz;
    }

    runtime::Scenario s(cfg);
    s.run();
    runtime::ScenarioReport r = s.report();
    std::uint64_t view_changes = 0;
    for (const auto& n : r.nodes) view_changes = std::max(view_changes, n.view_changes);

    // Latency observed by a backup that becomes primary after a VC.
    const auto& series = s.node(1).latency_series().points();
    metrics::Summary tail;
    for (std::size_t i = series.size() > 50 ? series.size() - 50 : 0; i < series.size(); ++i) {
        tail.add(series[i].value);
    }

    std::printf("%-22s | %10.2f | %12.2f | %12.3f | %8llu | %6llu\n", label,
                r.latency_ms.empty() ? -1.0 : r.latency_ms.mean(),
                tail.empty() ? -1.0 : tail.mean(), r.mean_egress_utilization * 100.0,
                static_cast<unsigned long long>(r.suspects),
                static_cast<unsigned long long>(view_changes));

    BenchRow row;
    row.config = std::string(primary_delay > Duration::zero() ? "delayed " : "faultfree ") +
                 label;
    row.m = measure(r);
    row.extra = {{"tail_latency_ms", tail.empty() ? -1.0 : tail.mean()},
                 {"view_changes", static_cast<double>(view_changes)}};
    g_rows.push_back(std::move(row));
}

}  // namespace

int main(int argc, char** argv) {
    g_quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    HostProfiler host;

    print_header("Ablation A: soft timeout cost in fault-free operation");
    std::printf("%-22s | %10s | %12s | %12s | %8s | %6s\n", "soft timeout", "lat ms",
                "tail lat ms", "net util %", "suspects", "VCs");
    run_row("0 ms (broadcast all)", milliseconds(0), milliseconds(500), Duration::zero());
    run_row("50 ms", milliseconds(50), milliseconds(450), Duration::zero());
    run_row("250 ms (paper)", milliseconds(250), milliseconds(250), Duration::zero());
    run_row("none", seconds(3600), milliseconds(250), Duration::zero());

    print_header("Ablation B: value under a primary delaying preprepares by 600 ms");
    std::printf("%-22s | %10s | %12s | %12s | %8s | %6s\n", "soft timeout", "lat ms",
                "tail lat ms", "net util %", "suspects", "VCs");
    run_row("250 ms (paper)", milliseconds(250), milliseconds(250), milliseconds(600));
    run_row("none (no suspicion)", seconds(3600), milliseconds(250), milliseconds(600));

    print_footnote(
        "\nExpected: in A, eager broadcasting re-introduces the n-fold redundancy\n"
        "(higher network + CPU) the communication layer exists to remove; in B,\n"
        "only the soft->hard timer chain detects the stalling primary (suspects,\n"
        "view change, low tail latency) — without it, the delay is permanent.");
    write_bench_json("ablate_soft_timeout", g_rows, g_quick);
    return 0;
}
