// Ablation: per-block checkpointing (DESIGN.md decision 5).
//
// The paper creates a checkpoint for every block (interval = block size =
// 10 requests) so each block is individually certified by 2f+1 signatures
// — the property the export protocol leverages. Smaller intervals certify
// more often but cost signatures and messages; larger intervals cut
// overhead but leave more recent blocks uncertified (and thus unexportable
// and unprunable) and grow the PBFT message log between checkpoints.
//
// --quick runs a single-seed, shortened sweep (CI smoke).
#include <cstring>

#include "bench_util.hpp"

using namespace zc;
using namespace zc::bench;

int main(int argc, char** argv) {
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    HostProfiler host;

    print_header("Ablation: checkpoint interval / block size (64 ms cycle, 1 kB)");
    std::printf("%10s | %12s | %10s | %12s | %12s\n", "interval", "latency ms", "cpu %400",
                "net util %", "mem avg MB");

    std::vector<BenchRow> rows;
    for (const SeqNo interval : {SeqNo{1}, SeqNo{5}, SeqNo{10}, SeqNo{25}, SeqNo{50}}) {
        ScenarioConfig cfg = paper_config();
        cfg.duration = quick ? seconds(10) : seconds(45);
        cfg.block_size = interval;

        const RunMeasurement m = quick ? run_once(cfg) : run_averaged(cfg, 2);
        std::printf("%10llu | %12.2f | %9.1f%% | %12.3f | %12.2f\n",
                    static_cast<unsigned long long>(interval), m.latency_mean_ms, m.cpu_pct_400,
                    m.net_util_pct, m.mem_avg_mb);
        rows.push_back({"interval=" + std::to_string(interval), m, {}});
    }

    print_footnote(
        "\nExpected shape: interval 1 checkpoints (signs + broadcasts + writes a\n"
        "block) after every request — highest CPU/network; very large intervals\n"
        "save overhead but hold more undecided state and delay export eligibility.\n"
        "The paper's 10 sits at the knee.");
    write_bench_json("ablate_checkpoint", rows, quick);
    return 0;
}
