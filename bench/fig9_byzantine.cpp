// Reproduces Fig. 9: effect of Byzantine behaviour on ZugChain at the
// 64 ms bus cycle.
//
//  (a) A faulty backup broadcasts a fabricated request in 25/75/100 % of
//      bus cycles. Paper reference deltas vs normal operation:
//      CPU +20/68/92 %, memory +0.7/1.6/294 %, latency +22/60/277 %.
//      Rate limiting on open requests per node bounds the damage.
//  (b) A faulty primary delays preprepares by 250 ms — soft timeouts fire
//      (broadcast + forward), hard timeouts do not: latency rises while
//      network utilization drops; no view change.
//
// An ablation row runs the 100 % flood with the rate limiter disabled.
//
// --quick runs single-seed, shortened rows (CI smoke).
#include <cstring>

#include "bench_util.hpp"
#include "faults/profiles.hpp"

using namespace zc;
using namespace zc::bench;

namespace {

bool g_quick = false;

RunMeasurement run_byz(double fabricate, Duration delay, bool limiter,
                       std::uint32_t burst = 1) {
    ScenarioConfig cfg = paper_config();
    cfg.duration = g_quick ? seconds(10) : seconds(45);
    // The open-request limit is "calculated based on the bus frequency"
    // (§III-C); a handful of cycles' worth. Disabled for the ablation.
    cfg.max_open_per_origin = limiter ? 8 : (1u << 20);
    if (fabricate > 0) {
        // The named fig9-flood profile, rescaled for the 25/75 % rows.
        faults::AdversaryConfig byz = *faults::profile_config("fig9-flood");
        byz.fabricate_rate = fabricate;
        byz.fabricate_burst = burst;
        cfg.byzantine[3] = byz;  // a faulty backup
    }
    if (delay > Duration::zero()) {
        faults::AdversaryConfig byz = *faults::profile_config("delayer");
        byz.preprepare_delay = delay;
        cfg.byzantine[0] = byz;  // the (initial) primary
    }
    return g_quick ? run_once(cfg) : run_averaged(cfg);
}

void print_row(const char* name, const RunMeasurement& m, const RunMeasurement& base,
               const char* paper) {
    const auto delta = [](double v, double b) { return b > 0 ? (v / b - 1.0) * 100.0 : 0.0; };
    std::printf("%-22s | %7.1f%% %+6.0f%% | %7.1f %+6.1f%% | %8.2f %+6.0f%% | %8.3f%% %+6.0f%% | %s\n",
                name, m.cpu_pct_400, delta(m.cpu_pct_400, base.cpu_pct_400), m.mem_avg_mb,
                delta(m.mem_avg_mb, base.mem_avg_mb), m.latency_mean_ms,
                delta(m.latency_mean_ms, base.latency_mean_ms), m.net_util_pct,
                delta(m.net_util_pct, base.net_util_pct), paper);
}

}  // namespace

int main(int argc, char** argv) {
    g_quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    HostProfiler host;

    print_header("Fig. 9: Byzantine behaviour (64 ms cycle, 1 kB payloads)");
    std::printf("%-22s | %15s | %15s | %16s | %16s | %s\n", "scenario", "cpu (of 400%)",
                "mem MB (avg)", "latency ms", "net util", "paper delta (cpu/mem/lat)");

    std::vector<BenchRow> bench_rows;
    const auto keep = [&bench_rows](const char* name, const RunMeasurement& m) {
        bench_rows.push_back({name, m, {}});
        return m;
    };

    const RunMeasurement base = keep("normal", run_byz(0.0, Duration::zero(), true));
    print_row("normal", base, base, "-");

    print_row("fabricate 25%", keep("fabricate 25%", run_byz(0.25, Duration::zero(), true)),
              base, "+20% / +0.7% / +22%");
    print_row("fabricate 75%", keep("fabricate 75%", run_byz(0.75, Duration::zero(), true)),
              base, "+68% / +1.6% / +60%");
    print_row("fabricate 100%", keep("fabricate 100%", run_byz(1.0, Duration::zero(), true)),
              base, "+92% / +294% / +277%");

    // DoS-flood ablation: 4 fabricated requests per cycle.
    const RunMeasurement flood_on =
        keep("flood x4 limiter on", run_byz(1.0, Duration::zero(), true, 4));
    const RunMeasurement flood_off =
        keep("flood x4 limiter off", run_byz(1.0, Duration::zero(), false, 4));
    print_row("flood x4, limiter on", flood_on, base, "(ablation: flood capped)");
    print_row("flood x4, limiter OFF", flood_off, base, "(ablation: flood unbounded)");
    std::printf("  flood ablation: limiter on  -> %llu floods shed, %llu real records logged\n",
                static_cast<unsigned long long>(flood_on.rate_limited),
                static_cast<unsigned long long>(flood_on.logged));
    std::printf("  flood ablation: limiter off -> %llu floods shed, %llu records logged "
                "(log starves)\n",
                static_cast<unsigned long long>(flood_off.rate_limited),
                static_cast<unsigned long long>(flood_off.logged));
    print_row("primary delay 250ms",
              keep("primary delay 250ms", run_byz(0.0, milliseconds(250), true)), base,
              "latency up, network down");
    write_bench_json("fig9", bench_rows, g_quick);

    print_footnote(
        "\nWith rate limiting, fabricated floods stay within JRU performance bounds\n"
        "while benign replicas can still propose delayed or uniquely received\n"
        "messages; the delaying primary stalls ordering until soft timeouts make\n"
        "other nodes broadcast + forward the requests (no view change: hard\n"
        "timeouts never fire).");

    // Watchdog companion runs: a censoring primary (preprepares dropped
    // outright) must trip the stalled-view detector, and the same config
    // without the fault must stay silent. The flight recorder doubles as
    // the trace tap here — no Tracer needed.
    std::printf("\n-- health watchdog --\n");
    const auto health_run = [](bool censor) {
        ScenarioConfig cfg = paper_config();
        cfg.duration = seconds(20);
        if (censor) {
            // the (initial) primary censors
            cfg.byzantine[0] = *faults::profile_config("censor");
        }
        health::FlightRecorder recorder;
        health::HealthMonitor monitor;
        monitor.set_flight_recorder(&recorder);
        cfg.trace_sink = &recorder;
        cfg.health_monitor = &monitor;
        Scenario s(cfg);
        s.run();
        std::printf("%s:\n", censor ? "censoring primary (drops preprepares)" : "clean run");
        print_health_summary(monitor, recorder);
        return monitor.alarmed();
    };
    const bool censor_alarmed = health_run(true);
    const bool clean_alarmed = health_run(false);
    if (!censor_alarmed) {
        std::printf("WARNING: censoring primary did not trip the watchdog\n");
        return 1;
    }
    if (clean_alarmed) {
        std::printf("WARNING: watchdog alarmed on a clean run\n");
        return 1;
    }
    std::printf("watchdog verdict: alarms under censorship, silent when clean\n");
    return 0;
}
