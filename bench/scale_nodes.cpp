// Extension experiment: cluster-size scaling (not in the paper, which
// fixes n = 4; the paper notes ZugChain "can be extended to any bus" and
// larger consists would deploy more nodes). PBFT traffic grows O(n^2), so
// this sweep shows how far the opportunistic-hardware approach stretches
// before the 64 ms cycle budget is threatened.
#include <cstring>

#include "bench_util.hpp"

using namespace zc;
using namespace zc::bench;

int main(int argc, char** argv) {
    const bool quick = argc > 1 && std::strcmp(argv[1], "--quick") == 0;
    HostProfiler host;

    print_header("Scaling: cluster size at the 64 ms cycle, 1 kB payloads (ZugChain)");
    std::printf("%6s %4s | %12s %12s | %10s | %12s | %10s\n", "n", "f", "lat ms", "p99 ms",
                "cpu %400", "net util %", "blocks");

    std::vector<BenchRow> rows;
    for (const auto& [n, f] : {std::pair<unsigned, unsigned>{4, 1}, {7, 2}, {10, 3}, {13, 4}}) {
        ScenarioConfig cfg = paper_config();
        cfg.n = n;
        cfg.f = f;
        cfg.duration = quick ? seconds(10) : seconds(45);

        Scenario s(cfg);
        s.run();
        ScenarioReport r = s.report();
        std::printf("%6u %4u | %12.2f %12.2f | %9.1f%% | %12.3f | %10llu\n", n, f,
                    r.latency_ms.empty() ? -1.0 : r.latency_ms.mean(),
                    r.latency_ms.empty() ? -1.0 : r.latency_ms.percentile(0.99),
                    r.nodes[0].cpu_cores * 100.0, r.mean_egress_utilization * 100.0,
                    static_cast<unsigned long long>(r.blocks));

        BenchRow row;
        row.config = "zugchain n=" + std::to_string(n) + " f=" + std::to_string(f);
        row.m = measure(r);
        rows.push_back(std::move(row));
    }
    write_bench_json("scale_nodes", rows, quick);

    print_footnote(
        "\nExpected shape: latency grows mildly (quorum waits stay one round trip);\n"
        "per-node CPU and network grow roughly linearly in n (each phase message\n"
        "is verified by every node), bounding how much commodity hardware a\n"
        "single consist can usefully contribute.");
    return 0;
}
