// Microbenchmarks of serialization, Merkle trees and block handling
// (google-benchmark, host-side).
#include <benchmark/benchmark.h>

#include "chain/block.hpp"
#include "chain/merkle.hpp"
#include "common/rng.hpp"
#include "pbft/messages.hpp"
#include "train/generator.hpp"
#include "train/jru_parser.hpp"

using namespace zc;

namespace {

chain::Block make_block(std::size_t requests, std::size_t payload) {
    Rng rng(requests + payload);
    std::vector<chain::LoggedRequest> reqs;
    for (std::size_t i = 0; i < requests; ++i) {
        chain::LoggedRequest r;
        r.payload = rng.bytes(payload);
        r.origin = static_cast<NodeId>(i % 4);
        r.seq = i + 1;
        reqs.push_back(std::move(r));
    }
    return chain::Block::build(1, chain::genesis_parent(), 42, std::move(reqs));
}

void BM_VarintEncode(benchmark::State& state) {
    for (auto _ : state) {
        codec::Writer w(64);
        for (std::uint64_t v = 1; v < (1ull << 60); v <<= 4) w.varint(v);
        benchmark::DoNotOptimize(w.buffer().data());
    }
}
BENCHMARK(BM_VarintEncode);

void BM_RequestEncodeDecode(benchmark::State& state) {
    Rng rng(3);
    pbft::Request r;
    r.payload = rng.bytes(static_cast<std::size_t>(state.range(0)));
    r.origin = 2;
    r.origin_seq = 99;
    for (auto _ : state) {
        const Bytes wire = pbft::encode_message(pbft::Message{r});
        benchmark::DoNotOptimize(pbft::decode_message(wire));
    }
}
BENCHMARK(BM_RequestEncodeDecode)->Arg(64)->Arg(1024)->Arg(8192);

void BM_BlockEncodeDecode(benchmark::State& state) {
    const chain::Block block = make_block(10, static_cast<std::size_t>(state.range(0)));
    for (auto _ : state) {
        const Bytes wire = codec::encode_to_bytes(block);
        benchmark::DoNotOptimize(codec::decode_from_bytes<chain::Block>(wire));
    }
}
BENCHMARK(BM_BlockEncodeDecode)->Arg(64)->Arg(1024);

void BM_MerkleRoot(benchmark::State& state) {
    Rng rng(5);
    std::vector<crypto::Digest> leaves;
    for (int i = 0; i < state.range(0); ++i) {
        leaves.push_back(chain::merkle_leaf(rng.bytes(32)));
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(chain::merkle_root(leaves));
    }
}
BENCHMARK(BM_MerkleRoot)->Arg(10)->Arg(100)->Arg(1000);

void BM_BlockValidate(benchmark::State& state) {
    const chain::Block block = make_block(10, 1024);
    for (auto _ : state) {
        benchmark::DoNotOptimize(block.payload_valid());
    }
}
BENCHMARK(BM_BlockValidate);

void BM_TelegramGenerateParseFilter(benchmark::State& state) {
    train::GeneratorConfig cfg;
    cfg.payload_size = static_cast<std::size_t>(state.range(0));
    train::SignalGenerator gen(cfg, Rng(6));
    train::JruParser parser;
    std::uint64_t cycle = 0;
    TimePoint t{0};
    for (auto _ : state) {
        const Bytes raw = gen.payload_for_cycle(cycle++, t);
        t += milliseconds(64);
        benchmark::DoNotOptimize(parser.process(raw));
    }
}
BENCHMARK(BM_TelegramGenerateParseFilter)->Arg(256)->Arg(1024)->Arg(8192);

}  // namespace

BENCHMARK_MAIN();
