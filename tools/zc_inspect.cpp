// zc_inspect — offline inspection of a persisted ZugChain block store
// (what an investigator runs against a salvaged node's flash).
//
//   zc_inspect <store-dir>              summary + integrity verification
//   zc_inspect <store-dir> --dump H     decode the records of block H
//   zc_inspect <store-dir> --events     list juridically notable events
//   zc_inspect <store-dir> --health     offline chain health: recording
//                                       cadence, gaps/stalls, body and
//                                       export coverage (alarm-typed)
//   zc_inspect <store-dir> --verify     strict check: exit 0 only if the
//                                       store loads without discarding
//                                       anything and the chain validates
//   zc_inspect <store-dir> --repair     truncate a torn/corrupt tail:
//                                       delete the block files load
//                                       refused to trust, print each one
//
// Fleet mode — a salvaged fleet store root with per-train subdirectories
// (as written by `zugchain_sim --fleet N --store-dir DIR`, i.e.
// DIR/train-<t>/node-<i>):
//
//   zc_inspect --store-dir DIR          per-train summary table, every
//                                       shard store verified
//   zc_inspect --store-dir DIR --verify strict: exit 0 only if every
//                                       store is clean and validates
//   zc_inspect --store-dir DIR --repair truncate torn tails in every
//                                       store that has one
//
// --json switches the summary, --verify, --health and --store-dir walks
// to a machine-readable single-line JSON report on stdout (exit codes
// unchanged); it does not combine with --dump/--events/--repair.
//
// Exit codes: 0 ok, 1 integrity/recovery findings, 2 usage,
// 3 unrepairable store (no valid prefix behind the corruption).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include "chain/block_store.hpp"
#include "common/hex.hpp"
#include "export/messages.hpp"
#include "health/health.hpp"
#include "train/signal.hpp"

using namespace zc;

namespace {

const char* signal_name(train::SignalKind kind) {
    switch (kind) {
        case train::SignalKind::kSpeed: return "speed(c-km/h)";
        case train::SignalKind::kOdometer: return "odometer(m)";
        case train::SignalKind::kBrakePressure: return "brake-pipe(mbar)";
        case train::SignalKind::kEmergencyBrake: return "EMERGENCY-BRAKE";
        case train::SignalKind::kDoorState: return "doors";
        case train::SignalKind::kAtpIntervention: return "ATP-INTERVENTION";
        case train::SignalKind::kTractionCommand: return "traction(permille)";
        case train::SignalKind::kHorn: return "horn";
        case train::SignalKind::kCabSignal: return "cab-signal";
    }
    return "?";
}

void dump_block(const chain::BlockStore& store, Height height) {
    const chain::Block* block = store.get(height);
    if (block == nullptr) {
        std::printf("block %llu: body not available (pruned or trimmed)\n",
                    static_cast<unsigned long long>(height));
        return;
    }
    std::printf("block %llu  hash=%s\n", static_cast<unsigned long long>(height),
                to_hex(crypto::view(block->hash())).c_str());
    std::printf("  parent=%s\n", to_hex(crypto::view(block->header.parent_hash)).c_str());
    std::printf("  %u requests, payload root ok: %s\n", block->header.request_count,
                block->payload_valid() ? "yes" : "NO");
    for (const auto& req : block->requests) {
        const auto record = codec::try_decode<train::LogRecord>(req.payload);
        if (!record) {
            std::printf("  seq %-6llu origin %u: %zu B (not a JRU record — flagged)\n",
                        static_cast<unsigned long long>(req.seq), req.origin,
                        req.payload.size());
            continue;
        }
        std::printf("  seq %-6llu origin %u cycle %-8llu t=%.3fs:",
                    static_cast<unsigned long long>(req.seq), req.origin,
                    static_cast<unsigned long long>(record->cycle),
                    static_cast<double>(record->timestamp_ns) / 1e9);
        for (const auto& s : record->signals) {
            std::printf(" %s=%lld", signal_name(s.kind), static_cast<long long>(s.value));
        }
        std::printf("\n");
    }
}

void list_events(const chain::BlockStore& store) {
    std::printf("%-10s %-8s %-8s %s\n", "time (s)", "block", "origin", "event");
    for (Height h = store.base_height(); h <= store.head_height(); ++h) {
        const chain::Block* block = store.get(h);
        if (block == nullptr) continue;
        for (const auto& req : block->requests) {
            const auto record = codec::try_decode<train::LogRecord>(req.payload);
            if (!record) {
                std::printf("%-10s %-8llu %-8u foreign payload (%zu B)\n", "-",
                            static_cast<unsigned long long>(h), req.origin,
                            req.payload.size());
                continue;
            }
            for (const auto& s : record->signals) {
                const bool notable =
                    (s.kind == train::SignalKind::kEmergencyBrake && s.value != 0) ||
                    (s.kind == train::SignalKind::kAtpIntervention && s.value != 0) ||
                    s.kind == train::SignalKind::kDoorState ||
                    (s.kind == train::SignalKind::kHorn && s.value != 0);
                if (!notable) continue;
                std::printf("%-10.3f %-8llu %-8u %s=%lld\n",
                            static_cast<double>(record->timestamp_ns) / 1e9,
                            static_cast<unsigned long long>(h), req.origin,
                            signal_name(s.kind), static_cast<long long>(s.value));
            }
        }
    }
}

std::string json_escape(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\') out += '\\';
        out += c;
    }
    return out;
}

/// What a stored chain alone reveals about how recording went, computed
/// once and rendered as either the human table or the --json report.
struct HealthReadout {
    std::size_t trimmed_bodies = 0;
    double median_cadence_s = 0;
    double max_gap_s = 0;
    std::vector<health::Alarm> alarms;
};

/// Offline health read-out, reported with the same alarm vocabulary the
/// online watchdogs use (so an investigator sees "stalled_view" both in a
/// live health dump and on the salvaged flash).
HealthReadout compute_health(const chain::BlockStore& store) {
    const Height base = store.base_height();
    const Height head = store.head_height();
    HealthReadout readout;
    std::vector<health::Alarm>& alarms = readout.alarms;

    // Block headers are timestamped with the consensus sequence number
    // (deterministic across replicas); wall-clock style times live inside
    // the logged JRU records. Recording cadence therefore comes from the
    // newest record timestamp of each block body.
    std::size_t missing_headers = 0;
    std::size_t& trimmed_bodies = readout.trimmed_bodies;
    std::vector<std::pair<Height, double>> block_times;  // height -> latest record t (s)
    for (Height h = base; h <= head; ++h) {
        const chain::BlockHeader* hdr = store.header(h);
        if (hdr == nullptr) {
            ++missing_headers;
            health::Alarm a;
            a.kind = health::AlarmKind::kChainGap;
            a.detail = "header missing at block " + std::to_string(h);
            alarms.push_back(std::move(a));
            continue;
        }
        const chain::Block* block = store.get(h);
        if (block == nullptr) {
            if (h > base) ++trimmed_bodies;  // the base block legitimately has no body
            continue;
        }
        double t = -1;
        for (const auto& req : block->requests) {
            const auto record = codec::try_decode<train::LogRecord>(req.payload);
            if (record) t = std::max(t, static_cast<double>(record->timestamp_ns) / 1e9);
        }
        if (t >= 0) block_times.emplace_back(h, t);
    }

    std::vector<double> gaps_s;
    for (std::size_t i = 1; i < block_times.size(); ++i) {
        gaps_s.push_back(block_times[i].second - block_times[i - 1].second);
    }
    double median_s = 0, max_gap_s = 0;
    Height max_gap_after = base;
    double max_gap_at_s = 0;
    if (!gaps_s.empty()) {
        std::vector<double> sorted = gaps_s;
        std::sort(sorted.begin(), sorted.end());
        median_s = sorted[sorted.size() / 2];
        for (std::size_t i = 0; i < gaps_s.size(); ++i) {
            if (gaps_s[i] > max_gap_s) {
                max_gap_s = gaps_s[i];
                max_gap_after = block_times[i].first;
                max_gap_at_s = block_times[i].second;
            }
        }
    }

    readout.median_cadence_s = median_s;
    readout.max_gap_s = max_gap_s;

    // A recording stall shows up on the flash as a timestamp gap between
    // consecutive blocks far beyond the steady cadence (timeouts + view
    // change before the next block could form).
    if (max_gap_s > 1.0 && median_s > 0 && max_gap_s > 5.0 * median_s) {
        health::Alarm a;
        a.kind = health::AlarmKind::kStalledView;
        a.first_seen = millis_f(max_gap_at_s * 1000.0);
        char detail[128];
        std::snprintf(detail, sizeof detail,
                      "recording gap of %.3f s after block %llu (median cadence %.3f s)",
                      max_gap_s, static_cast<unsigned long long>(max_gap_after), median_s);
        a.detail = detail;
        alarms.push_back(std::move(a));
    }

    return readout;
}

void print_health(const chain::BlockStore& store, const HealthReadout& readout) {
    const Height base = store.base_height();
    const Height head = store.head_height();
    std::printf("\n-- health --\n");
    std::printf("blocks retained         : %llu..%llu (%zu headers, %zu bodies trimmed)\n",
                static_cast<unsigned long long>(base), static_cast<unsigned long long>(head),
                store.size(), readout.trimmed_bodies);
    std::printf("block cadence           : median %.3f s, max gap %.3f s\n",
                readout.median_cadence_s, readout.max_gap_s);

    if (store.anchor()) {
        std::printf("export coverage         : pruned below block %llu (delete evidence "
                    "anchored), %llu blocks unexported\n",
                    static_cast<unsigned long long>(store.anchor()->base_height),
                    static_cast<unsigned long long>(head - base));
    } else {
        std::printf("export coverage         : no prune anchor — nothing exported yet "
                    "(%llu blocks on flash)\n",
                    static_cast<unsigned long long>(head - base));
    }

    std::printf("alarms                  : %zu\n", readout.alarms.size());
    for (const auto& alarm : readout.alarms) {
        std::printf("  %s: %s\n", health::alarm_kind_name(alarm.kind), alarm.detail.c_str());
    }
}

std::string health_json(const HealthReadout& readout) {
    std::string out;
    char buf[128];
    std::snprintf(buf, sizeof buf,
                  "{\"trimmed_bodies\":%zu,\"median_cadence_s\":%.3f,\"max_gap_s\":%.3f,"
                  "\"alarms\":[",
                  readout.trimmed_bodies, readout.median_cadence_s, readout.max_gap_s);
    out += buf;
    for (std::size_t i = 0; i < readout.alarms.size(); ++i) {
        if (i > 0) out += ',';
        out += "{\"kind\":\"";
        out += health::alarm_kind_name(readout.alarms[i].kind);
        out += "\",\"detail\":\"" + json_escape(readout.alarms[i].detail) + "\"}";
    }
    out += "]}";
    return out;
}

/// Fleet store root: DIR/train-<t>/node-<i> per shard replica (a root
/// holding bare node-<i> directories is treated as one unnamed train).
/// Verifies (and with `repair`, truncates) every store and prints one row
/// per replica plus a per-train verdict.
int inspect_fleet_root(const std::string& root, bool verify, bool repair, bool json) {
    namespace fs = std::filesystem;
    // train label -> sorted node store directories
    std::map<std::string, std::vector<fs::path>> trains;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(root, ec)) {
        if (!entry.is_directory()) continue;
        const std::string name = entry.path().filename().string();
        if (name.rfind("train-", 0) == 0) {
            auto& nodes = trains[name];
            for (const auto& sub : fs::directory_iterator(entry.path())) {
                if (sub.is_directory() &&
                    sub.path().filename().string().rfind("node-", 0) == 0) {
                    nodes.push_back(sub.path());
                }
            }
        } else if (name.rfind("node-", 0) == 0) {
            trains[""].push_back(entry.path());
        }
    }
    if (ec) {
        std::fprintf(stderr, "cannot read %s: %s\n", root.c_str(), ec.message().c_str());
        return 2;
    }
    if (trains.empty()) {
        std::fprintf(stderr, "%s: no train-*/node-* or node-* store directories\n",
                     root.c_str());
        return 2;
    }
    for (auto& [train, nodes] : trains) std::sort(nodes.begin(), nodes.end());

    if (!json) {
        std::printf("fleet store root: %s (%zu trains)\n\n", root.c_str(), trains.size());
        std::printf("%-10s %-8s %12s %10s %10s  %s\n", "train", "node", "blocks", "retained",
                    "discarded", "integrity");
    }

    int rc = 0;
    std::size_t stores = 0, clean_stores = 0;
    std::string jout = "{\"root\":\"" + json_escape(root) + "\",\"trains\":[";
    bool first_train = true;
    for (const auto& [train, nodes] : trains) {
        const std::string train_label = train.empty() ? "(root)" : train;
        if (!first_train) jout += ',';
        first_train = false;
        jout += "{\"train\":\"" + json_escape(train_label) + "\",\"nodes\":[";
        bool train_clean = true;
        bool first_node = true;
        for (const fs::path& dir : nodes) {
            ++stores;
            chain::RecoveryReport report;
            chain::BlockStore store = chain::BlockStore::load(dir.string(), nullptr, &report);
            const bool valid = store.validate(store.base_height(), store.head_height());
            const bool clean = report.clean() && valid;

            char range[32];
            std::snprintf(range, sizeof range, "%llu..%llu",
                          static_cast<unsigned long long>(store.base_height()),
                          static_cast<unsigned long long>(store.head_height()));
            if (json) {
                char row[256];
                std::snprintf(row, sizeof row,
                              "%s{\"node\":\"%s\",\"base\":%llu,\"head\":%llu,"
                              "\"retained\":%zu,\"discarded\":%llu,\"valid\":%s,"
                              "\"clean\":%s,\"unrepairable\":%s}",
                              first_node ? "" : ",", dir.filename().string().c_str(),
                              static_cast<unsigned long long>(store.base_height()),
                              static_cast<unsigned long long>(store.head_height()),
                              store.size(),
                              static_cast<unsigned long long>(report.blocks_discarded),
                              valid ? "true" : "false", report.clean() ? "true" : "false",
                              report.unrepairable ? "true" : "false");
                jout += row;
                first_node = false;
            } else {
                std::printf("%-10s %-8s %12s %10zu %10llu  %s%s\n", train_label.c_str(),
                            dir.filename().string().c_str(), range, store.size(),
                            static_cast<unsigned long long>(report.blocks_discarded),
                            valid ? (report.clean() ? "VERIFIED" : "RECOVERED") : "BROKEN",
                            report.unrepairable ? " (UNREPAIRABLE)" : "");
                for (const auto& note : report.notes) {
                    std::printf("%-10s %-8s   note: %s\n", "", "", note.c_str());
                }
            }

            if (report.unrepairable) {
                rc = 3;
                train_clean = false;
                continue;
            }
            if (repair && !report.discarded_files.empty()) {
                for (const auto& file : report.discarded_files) {
                    std::error_code rm_ec;
                    fs::remove(fs::path(file), rm_ec);
                    std::printf("%-10s %-8s   repair: removed %s%s\n", "", "", file.c_str(),
                                rm_ec ? " (FAILED)" : "");
                    if (rm_ec && rc == 0) rc = 1;
                }
                std::printf("%-10s %-8s   repair: truncated to block %llu\n", "", "",
                            static_cast<unsigned long long>(report.recovered_head));
            }
            if (!clean) {
                train_clean = false;
                if (!repair && rc == 0) rc = 1;
            } else {
                ++clean_stores;
            }
        }
        jout += std::string("],\"clean\":") + (train_clean ? "true" : "false") + "}";
        if (!json) {
            std::printf("%-10s %-8s %12s %10s %10s  %s\n", train_label.c_str(), "--", "", "",
                        "", train_clean ? "shard ok" : "shard has findings");
        }
    }
    if (verify && clean_stores != stores && rc == 0) rc = 1;
    if (json) {
        char tail[96];
        std::snprintf(tail, sizeof tail, "],\"stores\":%zu,\"clean_stores\":%zu,\"exit\":%d}",
                      stores, clean_stores, rc);
        jout += tail;
        std::printf("%s\n", jout.c_str());
    } else {
        std::printf("\n%zu/%zu stores clean\n", clean_stores, stores);
    }
    return rc;
}

void print_recovery(const chain::RecoveryReport& report) {
    std::printf("recovery: %llu blocks restored, %llu discarded%s\n",
                static_cast<unsigned long long>(report.blocks_loaded),
                static_cast<unsigned long long>(report.blocks_discarded),
                report.unrepairable ? " — UNREPAIRABLE (no valid prefix)" : "");
    for (const auto& note : report.notes) std::printf("  note: %s\n", note.c_str());
}

}  // namespace

int usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s <store-dir> [--dump HEIGHT | --events | --health | --verify |"
                 " --repair] [--json]\n"
                 "       %s --store-dir <fleet-root> [--verify | --repair] [--json]\n",
                 argv0, argv0);
    return 2;
}

int main(int argc, char** argv) {
    std::string dir, fleet_root, cmd;
    Height dump_height = 0;
    bool json = false;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--store-dir") {
            if (i + 1 >= argc) return usage(argv[0]);
            fleet_root = argv[++i];
        } else if (arg == "--dump") {
            if (i + 1 >= argc) return usage(argv[0]);
            cmd = arg;
            dump_height = static_cast<Height>(std::stoull(argv[++i]));
        } else if (arg == "--events" || arg == "--health" || arg == "--verify" ||
                   arg == "--repair") {
            cmd = arg;
        } else if (arg == "--json") {
            json = true;
        } else if (arg.rfind("--", 0) == 0) {
            std::fprintf(stderr, "%s: unknown flag: %s\n", argv[0], arg.c_str());
            return usage(argv[0]);
        } else if (dir.empty()) {
            dir = arg;
        } else {
            std::fprintf(stderr, "%s: unexpected argument: %s\n", argv[0], arg.c_str());
            return usage(argv[0]);
        }
    }
    if (dir.empty() && fleet_root.empty()) return usage(argv[0]);
    if (!dir.empty() && !fleet_root.empty()) return usage(argv[0]);
    // --json reports on store state; the record dumps and the mutating
    // repair keep their line-oriented output.
    if (json && (cmd == "--dump" || cmd == "--events" || cmd == "--repair")) {
        std::fprintf(stderr, "%s: --json does not combine with %s\n", argv[0], cmd.c_str());
        return usage(argv[0]);
    }

    if (!fleet_root.empty()) {
        if (cmd != "" && cmd != "--verify" && cmd != "--repair") {
            std::fprintf(stderr, "%s: %s needs a single <store-dir>\n", argv[0], cmd.c_str());
            return usage(argv[0]);
        }
        return inspect_fleet_root(fleet_root, cmd == "--verify", cmd == "--repair", json);
    }

    const bool verify = cmd == "--verify";
    const bool repair = cmd == "--repair";

    chain::RecoveryReport report;
    chain::BlockStore store = chain::BlockStore::load(dir, nullptr, &report);
    const bool valid = store.validate(store.base_height(), store.head_height());

    if (json) {
        // One line, one object: the summary an automated salvage pipeline
        // consumes. `exit` mirrors the process exit code.
        const int rc = report.unrepairable ? 3 : ((report.clean() && valid) ? 0 : 1);
        std::string out;
        char buf[512];
        std::snprintf(buf, sizeof buf,
                      "{\"store\":\"%s\",\"base\":%llu,\"head\":%llu,\"retained\":%zu,"
                      "\"stored_bytes\":%llu,\"valid\":%s,\"clean\":%s,"
                      "\"unrepairable\":%s,\"blocks_loaded\":%llu,\"blocks_discarded\":%llu,"
                      "\"head_hash\":\"%s\"",
                      json_escape(dir).c_str(),
                      static_cast<unsigned long long>(store.base_height()),
                      static_cast<unsigned long long>(store.head_height()), store.size(),
                      static_cast<unsigned long long>(store.stored_bytes()),
                      valid ? "true" : "false", report.clean() ? "true" : "false",
                      report.unrepairable ? "true" : "false",
                      static_cast<unsigned long long>(report.blocks_loaded),
                      static_cast<unsigned long long>(report.blocks_discarded),
                      to_hex(crypto::view(store.head_hash())).c_str());
        out += buf;
        if (store.anchor()) {
            const auto deletes = exporter::decode_delete_evidence(store.anchor()->evidence);
            std::snprintf(buf, sizeof buf,
                          ",\"anchor\":{\"base_height\":%llu,\"delete_signatures\":%zu}",
                          static_cast<unsigned long long>(store.anchor()->base_height),
                          deletes ? deletes->size() : 0);
            out += buf;
        } else {
            out += ",\"anchor\":null";
        }
        if (cmd == "--health") out += ",\"health\":" + health_json(compute_health(store));
        std::snprintf(buf, sizeof buf, ",\"exit\":%d}", rc);
        out += buf;
        std::printf("%s\n", out.c_str());
        return rc;
    }

    std::printf("store: %s\n", dir.c_str());
    std::printf("blocks %llu..%llu (%zu retained, %zu KiB)\n",
                static_cast<unsigned long long>(store.base_height()),
                static_cast<unsigned long long>(store.head_height()), store.size(),
                store.stored_bytes() / 1024);

    std::printf("integrity: %s\n", valid ? "VERIFIED" : "BROKEN (tampering or corruption)");
    std::printf("head hash: %s\n", to_hex(crypto::view(store.head_hash())).c_str());
    if (!report.clean()) print_recovery(report);

    if (store.anchor()) {
        const auto deletes = exporter::decode_delete_evidence(store.anchor()->evidence);
        std::printf("prune anchor: base %llu, %s data-center delete signatures\n",
                    static_cast<unsigned long long>(store.anchor()->base_height),
                    deletes ? std::to_string(deletes->size()).c_str() : "undecodable");
    }

    if (repair) {
        // Offline torn-tail truncation: the load already decided which
        // files cannot be part of a valid prefix; removing them leaves a
        // store that reloads cleanly. The restored prefix stays untouched.
        if (report.unrepairable) {
            std::printf("repair: refusing — no valid prefix to keep (preserve the directory "
                        "for forensics)\n");
            return 3;
        }
        if (report.discarded_files.empty()) {
            std::printf("repair: nothing to do, store is clean\n");
            return 0;
        }
        for (const auto& file : report.discarded_files) {
            std::error_code ec;
            std::filesystem::remove(std::filesystem::path(file), ec);
            std::printf("repair: removed %s%s\n", file.c_str(),
                        ec ? " (FAILED)" : "");
            if (ec) return 1;
        }
        std::printf("repair: store truncated to block %llu\n",
                    static_cast<unsigned long long>(report.recovered_head));
        return 0;
    }
    if (verify) {
        if (report.unrepairable) return 3;
        return (report.clean() && valid) ? 0 : 1;
    }

    if (cmd == "--dump") {
        dump_block(store, dump_height);
    } else if (cmd == "--events") {
        list_events(store);
    } else if (cmd == "--health") {
        print_health(store, compute_health(store));
    }
    return valid ? 0 : 1;
}
