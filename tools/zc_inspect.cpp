// zc_inspect — offline inspection of a persisted ZugChain block store
// (what an investigator runs against a salvaged node's flash).
//
//   zc_inspect <store-dir>              summary + integrity verification
//   zc_inspect <store-dir> --dump H     decode the records of block H
//   zc_inspect <store-dir> --events     list juridically notable events
#include <cstdio>
#include <cstring>
#include <string>

#include "chain/block_store.hpp"
#include "common/hex.hpp"
#include "export/messages.hpp"
#include "train/signal.hpp"

using namespace zc;

namespace {

const char* signal_name(train::SignalKind kind) {
    switch (kind) {
        case train::SignalKind::kSpeed: return "speed(c-km/h)";
        case train::SignalKind::kOdometer: return "odometer(m)";
        case train::SignalKind::kBrakePressure: return "brake-pipe(mbar)";
        case train::SignalKind::kEmergencyBrake: return "EMERGENCY-BRAKE";
        case train::SignalKind::kDoorState: return "doors";
        case train::SignalKind::kAtpIntervention: return "ATP-INTERVENTION";
        case train::SignalKind::kTractionCommand: return "traction(permille)";
        case train::SignalKind::kHorn: return "horn";
        case train::SignalKind::kCabSignal: return "cab-signal";
    }
    return "?";
}

void dump_block(const chain::BlockStore& store, Height height) {
    const chain::Block* block = store.get(height);
    if (block == nullptr) {
        std::printf("block %llu: body not available (pruned or trimmed)\n",
                    static_cast<unsigned long long>(height));
        return;
    }
    std::printf("block %llu  hash=%s\n", static_cast<unsigned long long>(height),
                to_hex(crypto::view(block->hash())).c_str());
    std::printf("  parent=%s\n", to_hex(crypto::view(block->header.parent_hash)).c_str());
    std::printf("  %u requests, payload root ok: %s\n", block->header.request_count,
                block->payload_valid() ? "yes" : "NO");
    for (const auto& req : block->requests) {
        const auto record = codec::try_decode<train::LogRecord>(req.payload);
        if (!record) {
            std::printf("  seq %-6llu origin %u: %zu B (not a JRU record — flagged)\n",
                        static_cast<unsigned long long>(req.seq), req.origin,
                        req.payload.size());
            continue;
        }
        std::printf("  seq %-6llu origin %u cycle %-8llu t=%.3fs:",
                    static_cast<unsigned long long>(req.seq), req.origin,
                    static_cast<unsigned long long>(record->cycle),
                    static_cast<double>(record->timestamp_ns) / 1e9);
        for (const auto& s : record->signals) {
            std::printf(" %s=%lld", signal_name(s.kind), static_cast<long long>(s.value));
        }
        std::printf("\n");
    }
}

void list_events(const chain::BlockStore& store) {
    std::printf("%-10s %-8s %-8s %s\n", "time (s)", "block", "origin", "event");
    for (Height h = store.base_height(); h <= store.head_height(); ++h) {
        const chain::Block* block = store.get(h);
        if (block == nullptr) continue;
        for (const auto& req : block->requests) {
            const auto record = codec::try_decode<train::LogRecord>(req.payload);
            if (!record) {
                std::printf("%-10s %-8llu %-8u foreign payload (%zu B)\n", "-",
                            static_cast<unsigned long long>(h), req.origin,
                            req.payload.size());
                continue;
            }
            for (const auto& s : record->signals) {
                const bool notable =
                    (s.kind == train::SignalKind::kEmergencyBrake && s.value != 0) ||
                    (s.kind == train::SignalKind::kAtpIntervention && s.value != 0) ||
                    s.kind == train::SignalKind::kDoorState ||
                    (s.kind == train::SignalKind::kHorn && s.value != 0);
                if (!notable) continue;
                std::printf("%-10.3f %-8llu %-8u %s=%lld\n",
                            static_cast<double>(record->timestamp_ns) / 1e9,
                            static_cast<unsigned long long>(h), req.origin,
                            signal_name(s.kind), static_cast<long long>(s.value));
            }
        }
    }
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) {
        std::fprintf(stderr, "usage: %s <store-dir> [--dump HEIGHT | --events]\n", argv[0]);
        return 2;
    }

    chain::BlockStore store = chain::BlockStore::load(argv[1]);
    std::printf("store: %s\n", argv[1]);
    std::printf("blocks %llu..%llu (%zu retained, %zu KiB)\n",
                static_cast<unsigned long long>(store.base_height()),
                static_cast<unsigned long long>(store.head_height()), store.size(),
                store.stored_bytes() / 1024);

    const bool valid = store.validate(store.base_height(), store.head_height());
    std::printf("integrity: %s\n", valid ? "VERIFIED" : "BROKEN (tampering or corruption)");
    std::printf("head hash: %s\n", to_hex(crypto::view(store.head_hash())).c_str());

    if (store.anchor()) {
        const auto deletes = exporter::decode_delete_evidence(store.anchor()->evidence);
        std::printf("prune anchor: base %llu, %s data-center delete signatures\n",
                    static_cast<unsigned long long>(store.anchor()->base_height),
                    deletes ? std::to_string(deletes->size()).c_str() : "undecodable");
    }

    if (argc >= 4 && std::strcmp(argv[2], "--dump") == 0) {
        dump_block(store, static_cast<Height>(std::stoull(argv[3])));
    } else if (argc >= 3 && std::strcmp(argv[2], "--events") == 0) {
        list_events(store);
    }
    return valid ? 0 : 1;
}
