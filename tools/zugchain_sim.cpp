// zugchain_sim — run a ZugChain (or baseline) testbed scenario from the
// command line and print the measurements.
//
//   zugchain_sim [--mode zugchain|baseline] [--n 4] [--f 1]
//                [--cycle-ms 64] [--payload 1024] [--block-size 10]
//                [--duration-s 30] [--seed 1] [--dcs 0] [--export-at-s N]
//                [--export-timeout-s N]
//                [--crash-primary-at-s N] [--crash T:NODE[:RESTART_AFTER]]
//                [--flap T:DUR:lte|nodeID] [--fabricator NODE]
//                [--adversary PROFILE:NODE] [--audit]
//                [--store-dir DIR] [--crypto fast|ed25519]
//                [--trace FILE] [--metrics FILE] [--json] [--prof]
//                [--health FILE] [--timeseries FILE] [--fail-on-alarm]
//
// Fleet mode (--fleet N): run N independent train shards on one virtual
// clock, exporting into shared data centers (src/fleet). Reuses --seed,
// --cycle-ms, --payload, --block-size, --batch-size, --duration-s,
// --crypto, --store-dir (per-train subdirectories), --audit, --prof,
// --fail-on-alarm, --json and --trace (one merged Perfetto/Chrome trace:
// train t node i in pid band 1000*(t+1)+i, shared DCs at pid 100+d,
// including DC ingest-queue and DC-to-DC sync spans), plus:
//
//   zugchain_sim --fleet N [--fleet-dcs N] [--fleet-chaos]
//                [--export-period-s S] [--trains-per-cell N]
//                [--rollup FILE.csv|FILE.json]
//
// --prof attributes *host* wall-clock cost (crypto, codec, store, event
// loop, DC ingest...) and reports the sim_rate (simulated seconds per
// wall second). Virtual-side output is byte-identical with or without
// it; host timings land in a trailing table (or a "host" JSON key).
//
// Examples:
//   zugchain_sim --duration-s 60
//   zugchain_sim --mode baseline --cycle-ms 32
//   zugchain_sim --dcs 2 --export-at-s 20 --duration-s 40
//   zugchain_sim --trace trace.json   # open in Perfetto / chrome://tracing
//   zugchain_sim --crash-primary-at-s 10 --health health.json --fail-on-alarm
//   zugchain_sim --crash 6:2:4 --duration-s 30      # crash node 2 at 6 s,
//                                                   # restart it 4 s later
//   zugchain_sim --dcs 1 --export-at-s 12 --export-timeout-s 5 \
//                --flap 10:15:lte --duration-s 60   # export across an outage
//   zugchain_sim --adversary equivocator:1 --audit  # compromise node 1,
//                                                   # gate on the safety audit
//   zugchain_sim --fleet 8 --fleet-chaos --audit --json   # CI fleet smoke:
//                                                   # deterministic JSON, cmp-able
//
// Exit codes: 0 ok, 1 chains inconsistent, 2 usage, 3 health alarm
// (with --fail-on-alarm; an alarm that fired and cleared — e.g. a crash
// followed by a successful rejoin — does not fail the run), 4 safety
// violations reported by the --audit auditor (dominates 1 and 3).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "faults/auditor.hpp"
#include "faults/profiles.hpp"
#include "fleet/fleet.hpp"
#include "health/flight_recorder.hpp"
#include "health/monitor.hpp"
#include "health/timeseries.hpp"
#include "prof/prof.hpp"
#include "runtime/scenario.hpp"
#include "trace/trace.hpp"

using namespace zc;

namespace {

struct Args {
    runtime::ScenarioConfig cfg;
    double export_at_s = -1;
    double crash_primary_at_s = -1;
    int fabricator = -1;
    std::string trace_file;
    std::string metrics_file;
    std::string health_file;
    std::string timeseries_file;
    bool fail_on_alarm = false;
    bool json = false;
    bool audit = false;
    bool prof = false;

    // Fleet mode (--fleet N > 0 switches from the single-consist scenario
    // to the src/fleet orchestrator).
    std::uint32_t fleet = 0;
    std::uint32_t fleet_dcs = 2;
    bool fleet_chaos = false;
    double export_period_s = 10.0;
    std::uint32_t trains_per_cell = 8;
    std::string rollup_file;

    static void usage(const char* argv0) {
        std::fprintf(stderr,
                     "usage: %s [--mode zugchain|baseline] [--n N] [--f F] [--cycle-ms MS]\n"
                     "          [--payload BYTES] [--block-size N] [--duration-s S] [--seed S]\n"
                     "          [--batch-size N] [--batch-linger-us US]\n"
                     "          [--dcs N] [--export-at-s S] [--export-timeout-s S]\n"
                     "          [--crash-primary-at-s S]\n"
                     "          [--crash T:NODE[:RESTART_AFTER]] [--flap T:DUR:lte|nodeID]\n"
                     "          [--fabricator NODE] [--adversary PROFILE:NODE] [--audit]\n"
                     "          [--store-dir DIR] [--crypto fast|ed25519]\n"
                     "          [--trace FILE] [--metrics FILE] [--json] [--prof]\n"
                     "          [--health FILE] [--timeseries FILE] [--fail-on-alarm]\n"
                     "          [--fleet N] [--fleet-dcs N] [--fleet-chaos]\n"
                     "          [--export-period-s S] [--trains-per-cell N]\n"
                     "          [--rollup FILE.csv|FILE.json]\n",
                     argv0);
        std::exit(2);
    }

    static Args parse(int argc, char** argv) {
        Args args;
        auto need_value = [&](int& i) -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s: flag %s needs a value\n", argv[0], argv[i]);
                usage(argv[0]);
            }
            return argv[++i];
        };
        // Splits "a:b:c" on ':' (2 or 3 fields).
        auto split_spec = [&](const std::string& spec) {
            std::vector<std::string> parts;
            std::size_t start = 0;
            while (true) {
                const std::size_t colon = spec.find(':', start);
                if (colon == std::string::npos) {
                    parts.push_back(spec.substr(start));
                    break;
                }
                parts.push_back(spec.substr(start, colon - start));
                start = colon + 1;
            }
            return parts;
        };
        for (int i = 1; i < argc; ++i) {
            const std::string flag = argv[i];
            if (flag == "--mode") {
                const std::string v = need_value(i);
                if (v == "zugchain") {
                    args.cfg.mode = runtime::Mode::kZugChain;
                } else if (v == "baseline") {
                    args.cfg.mode = runtime::Mode::kBaseline;
                } else {
                    std::fprintf(stderr, "%s: unknown mode: %s\n", argv[0], v.c_str());
                    usage(argv[0]);
                }
            } else if (flag == "--n") {
                args.cfg.n = static_cast<std::uint32_t>(std::atoi(need_value(i)));
            } else if (flag == "--f") {
                args.cfg.f = static_cast<std::uint32_t>(std::atoi(need_value(i)));
            } else if (flag == "--cycle-ms") {
                args.cfg.bus_cycle = milliseconds(std::atoll(need_value(i)));
            } else if (flag == "--payload") {
                args.cfg.payload_size = static_cast<std::size_t>(std::atoll(need_value(i)));
            } else if (flag == "--block-size") {
                args.cfg.block_size = static_cast<SeqNo>(std::atoll(need_value(i)));
            } else if (flag == "--batch-size") {
                args.cfg.batch_max_requests = static_cast<std::uint32_t>(std::atoi(need_value(i)));
            } else if (flag == "--batch-linger-us") {
                args.cfg.batch_linger = microseconds(std::atoll(need_value(i)));
            } else if (flag == "--duration-s") {
                args.cfg.duration = seconds(std::atoll(need_value(i)));
            } else if (flag == "--seed") {
                args.cfg.seed = static_cast<std::uint64_t>(std::atoll(need_value(i)));
            } else if (flag == "--dcs") {
                args.cfg.dc_count = static_cast<std::uint32_t>(std::atoi(need_value(i)));
            } else if (flag == "--export-at-s") {
                args.export_at_s = std::atof(need_value(i));
            } else if (flag == "--export-timeout-s") {
                args.cfg.export_timeout = millis_f(std::atof(need_value(i)) * 1000.0);
            } else if (flag == "--crash-primary-at-s") {
                args.crash_primary_at_s = std::atof(need_value(i));
            } else if (flag == "--crash") {
                // T:NODE[:RESTART_AFTER], seconds (fractions allowed).
                const auto parts = split_spec(need_value(i));
                if (parts.size() < 2 || parts.size() > 3) {
                    std::fprintf(stderr, "%s: --crash wants T:NODE[:RESTART_AFTER]\n", argv[0]);
                    usage(argv[0]);
                }
                runtime::ScenarioConfig::CrashEntry entry;
                entry.at = millis_f(std::atof(parts[0].c_str()) * 1000.0);
                entry.node = static_cast<NodeId>(std::atoi(parts[1].c_str()));
                if (parts.size() == 3) {
                    entry.restart_after = millis_f(std::atof(parts[2].c_str()) * 1000.0);
                }
                args.cfg.crash_schedule.push_back(entry);
            } else if (flag == "--flap") {
                // T:DUR:LINK with LINK = "lte" or "node<id>", seconds.
                const auto parts = split_spec(need_value(i));
                if (parts.size() != 3) {
                    std::fprintf(stderr, "%s: --flap wants T:DUR:lte|nodeID\n", argv[0]);
                    usage(argv[0]);
                }
                runtime::ScenarioConfig::LinkFlap flap;
                flap.at = millis_f(std::atof(parts[0].c_str()) * 1000.0);
                flap.duration = millis_f(std::atof(parts[1].c_str()) * 1000.0);
                if (parts[2] == "lte") {
                    flap.link = runtime::ScenarioConfig::LinkFlap::Link::kLte;
                } else if (parts[2].rfind("node", 0) == 0 && parts[2].size() > 4) {
                    flap.link = runtime::ScenarioConfig::LinkFlap::Link::kNode;
                    flap.node = static_cast<NodeId>(std::atoi(parts[2].c_str() + 4));
                } else {
                    std::fprintf(stderr, "%s: --flap link must be lte or node<id>\n", argv[0]);
                    usage(argv[0]);
                }
                args.cfg.link_flaps.push_back(flap);
            } else if (flag == "--fabricator") {
                args.fabricator = std::atoi(need_value(i));
            } else if (flag == "--adversary") {
                // PROFILE:NODE, e.g. equivocator:1. Repeatable.
                const auto parts = split_spec(need_value(i));
                if (parts.size() != 2) {
                    std::fprintf(stderr, "%s: --adversary wants PROFILE:NODE\n", argv[0]);
                    usage(argv[0]);
                }
                const auto profile = faults::profile_config(parts[0]);
                if (!profile) {
                    std::fprintf(stderr, "%s: unknown adversary profile: %s (known:", argv[0],
                                 parts[0].c_str());
                    for (const std::string& name : faults::profile_names()) {
                        std::fprintf(stderr, " %s", name.c_str());
                    }
                    std::fprintf(stderr, ")\n");
                    usage(argv[0]);
                }
                args.cfg.byzantine[static_cast<NodeId>(std::atoi(parts[1].c_str()))] = *profile;
            } else if (flag == "--audit") {
                args.audit = true;
            } else if (flag == "--store-dir") {
                args.cfg.store_root = need_value(i);  // DIR/node-<id> per node
            } else if (flag == "--crypto") {
                args.cfg.crypto_provider = need_value(i);
            } else if (flag == "--trace") {
                args.trace_file = need_value(i);
            } else if (flag == "--metrics") {
                args.metrics_file = need_value(i);
            } else if (flag == "--health") {
                args.health_file = need_value(i);
            } else if (flag == "--timeseries") {
                args.timeseries_file = need_value(i);
            } else if (flag == "--fleet") {
                args.fleet = static_cast<std::uint32_t>(std::atoi(need_value(i)));
            } else if (flag == "--fleet-dcs") {
                args.fleet_dcs = static_cast<std::uint32_t>(std::atoi(need_value(i)));
            } else if (flag == "--fleet-chaos") {
                args.fleet_chaos = true;
            } else if (flag == "--export-period-s") {
                args.export_period_s = std::atof(need_value(i));
            } else if (flag == "--trains-per-cell") {
                args.trains_per_cell = static_cast<std::uint32_t>(std::atoi(need_value(i)));
            } else if (flag == "--rollup") {
                args.rollup_file = need_value(i);
            } else if (flag == "--fail-on-alarm") {
                args.fail_on_alarm = true;
            } else if (flag == "--json") {
                args.json = true;
            } else if (flag == "--prof") {
                args.prof = true;
            } else {
                std::fprintf(stderr, "%s: unknown flag: %s\n", argv[0], flag.c_str());
                usage(argv[0]);
            }
        }
        if (args.crash_primary_at_s > 0) {
            args.cfg.crash_schedule.emplace_back(
                millis_f(args.crash_primary_at_s * 1000.0), 0);
        }
        if (args.fabricator >= 0) {
            runtime::ByzantineBehavior byz;
            byz.fabricate_rate = 1.0;
            args.cfg.byzantine[static_cast<NodeId>(args.fabricator)] = byz;
        }
        return args;
    }
};

void write_text_file(const std::string& path, const std::string& content) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        std::exit(1);
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
}

/// Fleet mode: N shards, shared DCs, one deterministic report. The JSON
/// output (--json) is byte-identical across same-seed runs so CI can cmp
/// two invocations for the determinism gate.
int run_fleet(const Args& args) {
    fleet::FleetConfig cfg;
    cfg.trains = args.fleet;
    cfg.seed = args.cfg.seed;
    cfg.train = args.cfg;
    cfg.dc_count = args.fleet_dcs;
    cfg.trains_per_cell = args.trains_per_cell;
    cfg.export_period = millis_f(args.export_period_s * 1000.0);
    cfg.duration = args.cfg.duration;
    cfg.store_root = args.cfg.store_root;
    cfg.audit = args.audit;
    if (args.fleet_chaos) {
        cfg.chaos = fleet::FleetChaos::staggered(cfg.trains, cfg.dc_count,
                                                 cfg.warmup + cfg.duration);
    }
    for (const auto& [node, byz] : args.cfg.byzantine) {
        cfg.byzantine[0][node] = byz;  // adversaries land on train 0
    }

    // One merged fleet trace: every shard is offset into its own pid band
    // and the shared DCs keep their 100+d pids, so a single Tracer file
    // shows the whole fleet (trains, DC ingest queueing, DC-to-DC sync).
    trace::Tracer tracer(/*capture_events=*/true);
    if (!args.trace_file.empty()) {
        for (std::uint32_t t = 0; t < cfg.trains; ++t) {
            for (std::uint32_t i = 0; i < cfg.train.n; ++i) {
                tracer.set_process_label(fleet::trace_pid(t, i), "train-" + std::to_string(t) +
                                                                     "-node-" +
                                                                     std::to_string(i));
            }
        }
        for (std::uint32_t d = 0; d < cfg.dc_count; ++d) {
            tracer.set_process_label(fleet::dc_trace_pid(d), "dc-" + std::to_string(d));
        }
        cfg.trace_sink = &tracer;
    }

    fleet::Fleet fleet(cfg);
    fleet.run();
    const prof::Profiler* profiler = prof::Profiler::active();
    const fleet::FleetReport report = fleet.report();

    if (!args.trace_file.empty()) {
        write_text_file(args.trace_file, tracer.chrome_json());
    }

    if (!args.rollup_file.empty()) {
        const bool as_json = args.rollup_file.size() >= 5 &&
                             args.rollup_file.compare(args.rollup_file.size() - 5, 5,
                                                      ".json") == 0;
        write_text_file(args.rollup_file,
                        as_json ? fleet.rollup().json() : fleet.rollup().csv());
    }

    int rc = report.cross_shard_collisions == 0 ? 0 : 1;
    if (rc == 0 && args.fail_on_alarm && report.alarms.total_never_cleared > 0) rc = 3;
    if (args.audit && report.audit_violations > 0) rc = 4;

    if (args.json) {
        // The host block is the last key so the virtual-content prefix of
        // the line stays byte-identical across same-seed --prof runs.
        std::string out = report.json();
        if (profiler != nullptr) {
            out.pop_back();  // '}'
            out += ",\"host\":" + profiler->snapshot().json() + "}";
        }
        std::printf("%s\n", out.c_str());
        return rc;
    }

    std::printf("zugchain_sim: fleet=%u dcs=%u cycle=%lld ms payload=%zu "
                "export-period=%.1f s duration=%.0f s seed=%llu%s%s\n",
                report.trains, report.dc_count,
                static_cast<long long>(args.cfg.bus_cycle.count() / 1'000'000),
                args.cfg.payload_size, args.export_period_s, to_seconds(cfg.duration),
                static_cast<unsigned long long>(cfg.seed),
                args.fleet_chaos ? " chaos=staggered" : "",
                args.audit ? " audit=on" : "");

    std::printf("\n-- fleet --\n");
    std::printf("logged (unique, fleet)  : %llu\n",
                static_cast<unsigned long long>(report.logged_sum));
    std::printf("archived unique / dup   : %llu / %llu\n",
                static_cast<unsigned long long>(report.exported_unique),
                static_cast<unsigned long long>(report.exported_duplicates));
    std::printf("exports ok / failed     : %llu / %llu\n",
                static_cast<unsigned long long>(report.exports_completed),
                static_cast<unsigned long long>(report.exports_failed));
    std::printf("ingest dropped          : %llu\n",
                static_cast<unsigned long long>(report.ingest_dropped));
    std::printf("cross-shard collisions  : %llu\n",
                static_cast<unsigned long long>(report.cross_shard_collisions));
    std::printf("alarms fired / stuck    : %llu / %llu\n",
                static_cast<unsigned long long>(report.alarms.total_fired),
                static_cast<unsigned long long>(report.alarms.total_never_cleared));
    if (args.audit) {
        std::printf("audit violations        : %llu\n",
                    static_cast<unsigned long long>(report.audit_violations));
    }

    std::printf("\n-- per train --\n");
    std::printf("%6s %6s %8s %10s %10s %8s %7s %7s\n", "train", "alive", "head", "logged",
                "archived", "exports", "failed", "alarms");
    for (const fleet::TrainReport& t : report.per_train) {
        std::printf("%6u %6u %8llu %10llu %10llu %8llu %7llu %7llu\n", t.train, t.nodes_alive,
                    static_cast<unsigned long long>(t.head),
                    static_cast<unsigned long long>(t.logged),
                    static_cast<unsigned long long>(t.exported_head),
                    static_cast<unsigned long long>(t.exports_completed),
                    static_cast<unsigned long long>(t.exports_failed),
                    static_cast<unsigned long long>(t.active_alarms));
    }

    if (profiler != nullptr) profiler->snapshot().print_table(stdout);
    return rc;
}

void print_json_report(const Args& args, const runtime::ScenarioReport& r, bool consistent,
                       const faults::SafetyAuditor* auditor, std::uint64_t attack_attempts,
                       std::uint64_t st_rejected, const prof::Profiler* profiler) {
    std::printf("{");
    std::printf("\"mode\":\"%s\",\"n\":%u,\"f\":%u,\"seed\":%llu,"
                "\"cycle_ms\":%lld,\"payload\":%zu,\"block_size\":%llu,\"duration_s\":%.0f,",
                args.cfg.mode == runtime::Mode::kZugChain ? "zugchain" : "baseline",
                args.cfg.n, args.cfg.f, static_cast<unsigned long long>(args.cfg.seed),
                static_cast<long long>(args.cfg.bus_cycle.count() / 1'000'000),
                args.cfg.payload_size, static_cast<unsigned long long>(args.cfg.block_size),
                to_seconds(args.cfg.duration));
    std::printf("\"logged_unique\":%llu,\"blocks\":%llu,"
                "\"duplicates_decided\":%llu,\"suspects\":%llu,",
                static_cast<unsigned long long>(r.logged_unique),
                static_cast<unsigned long long>(r.blocks),
                static_cast<unsigned long long>(r.duplicates_decided),
                static_cast<unsigned long long>(r.suspects));
    if (r.latency_ms.empty()) {
        std::printf("\"latency_ms\":null,");
    } else {
        std::printf("\"latency_ms\":{\"mean\":%.3f,\"p50\":%.3f,\"p99\":%.3f,\"max\":%.3f},",
                    r.latency_ms.mean(), r.latency_ms.percentile(0.5),
                    r.latency_ms.percentile(0.99), r.latency_ms.max());
    }
    std::printf("\"nodes\":[");
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
        const auto& n = r.nodes[i];
        std::printf("%s{\"cpu_pct_of_device\":%.2f,\"mem_avg_mb\":%.2f,\"mem_peak_mb\":%.2f,"
                    "\"bytes_sent\":%llu,\"rx_dropped\":%llu,\"view_changes\":%llu}",
                    i == 0 ? "" : ",", n.cpu_pct_of_device, n.mem_avg_mb, n.mem_peak_mb,
                    static_cast<unsigned long long>(n.bytes_sent),
                    static_cast<unsigned long long>(n.rx_dropped),
                    static_cast<unsigned long long>(n.view_changes));
    }
    std::printf("],\"consistent\":%s", consistent ? "true" : "false");
    std::printf(",\"attack_attempts\":%llu,\"state_transfer_rejected\":%llu",
                static_cast<unsigned long long>(attack_attempts),
                static_cast<unsigned long long>(st_rejected));
    if (auditor != nullptr) {
        std::printf(",\"audit\":%s", auditor->report().json().c_str());
    } else {
        std::printf(",\"audit\":null");
    }
    // Last key on purpose: the virtual-content prefix of the line stays
    // byte-identical across same-seed --prof runs.
    if (profiler != nullptr) {
        std::printf(",\"host\":%s", profiler->snapshot().json().c_str());
    }
    std::printf("}\n");
}

}  // namespace

int main(int argc, char** argv) {
    Args args = Args::parse(argc, argv);

    // Host-cost profiler: must be active before the scenario/fleet is
    // built so construction (kSetup) and the sim run loops are attributed.
    prof::Profiler profiler;
    if (args.prof) prof::Profiler::set_active(&profiler);

    if (args.fleet > 0) return run_fleet(args);

    // Tracing/metrics: one sink shared by all nodes and data centers.
    // Event capture is only needed for the Chrome trace; the metrics dump
    // works off the aggregation histograms alone. The time-series sink
    // reads e2e latency quantiles from the same registry, so it implies
    // registry aggregation too.
    const bool tracing = !args.trace_file.empty() || !args.metrics_file.empty() ||
                         !args.timeseries_file.empty();
    const bool health_on =
        !args.health_file.empty() || !args.timeseries_file.empty() || args.fail_on_alarm;
    trace::MetricsRegistry registry;
    trace::Tracer tracer(/*capture_events=*/!args.trace_file.empty(), &registry);
    if (tracing) {
        for (std::uint32_t i = 0; i < args.cfg.n; ++i) {
            tracer.set_process_label(i, "node-" + std::to_string(i));
        }
        for (std::uint32_t d = 0; d < args.cfg.dc_count; ++d) {
            tracer.set_process_label(100 + d, "dc-" + std::to_string(d));
        }
    }

    // Health: the flight recorder shares the trace tap with the Tracer, the
    // watchdog monitor is driven by the scenario's virtual-clock sampling.
    health::FlightRecorder recorder;
    health::MonitorConfig mon_cfg;
    mon_cfg.watch_export = args.cfg.dc_count > 0;
    health::HealthMonitor monitor(mon_cfg);
    health::TimeSeries timeseries(tracing ? &registry : nullptr);
    trace::FanOutSink fan;
    if (tracing) fan.add(&tracer);
    if (health_on) {
        fan.add(&recorder);
        monitor.set_flight_recorder(&recorder);
        recorder.hook_logs();
        args.cfg.health_monitor = &monitor;
        if (!args.timeseries_file.empty()) args.cfg.health_timeseries = &timeseries;
    }
    if (fan.sink_count() > 0) args.cfg.trace_sink = &fan;

    // Safety auditor: end-of-run (and periodic) checks of chain-prefix
    // agreement, Alg. 1's no-lost-input guarantee, origin signatures,
    // store hash linkage and proof-covered exports.
    faults::SafetyAuditor auditor;
    if (args.audit) args.cfg.auditor = &auditor;

    if (!args.json) {
        std::printf("zugchain_sim: mode=%s n=%u f=%u cycle=%lld ms payload=%zu block=%llu "
                    "duration=%.0f s seed=%llu crypto=%s dcs=%u\n",
                    args.cfg.mode == runtime::Mode::kZugChain ? "zugchain" : "baseline",
                    args.cfg.n, args.cfg.f,
                    static_cast<long long>(args.cfg.bus_cycle.count() / 1'000'000),
                    args.cfg.payload_size, static_cast<unsigned long long>(args.cfg.block_size),
                    to_seconds(args.cfg.duration),
                    static_cast<unsigned long long>(args.cfg.seed),
                    args.cfg.crypto_provider.c_str(), args.cfg.dc_count);
    }

    runtime::Scenario scenario(args.cfg);
    if (health_on) recorder.set_clock(scenario.sim().now_handle());
    if (args.export_at_s > 0 && args.cfg.dc_count > 0) {
        scenario.sim().schedule(millis_f(args.export_at_s * 1000.0),
                                [&scenario] { scenario.data_center(0).start_export(); });
    }
    scenario.run();
    if (args.cfg.dc_count > 0) scenario.run_for(seconds(60));
    if (args.audit) scenario.run_audit();  // final end-of-run pass

    const runtime::ScenarioReport r = scenario.report();

    // Attack attempts across all compromised nodes (acceptance gate: an
    // adversary profile that never fires is a misconfigured scenario).
    std::uint64_t attack_attempts = 0;
    for (std::size_t i = 0; i < scenario.node_count(); ++i) {
        if (scenario.node(i).adversary() != nullptr) {
            attack_attempts += scenario.node(i).adversary()->stats().attempts();
        }
    }

    // Chain consistency check across live nodes.
    bool consistent = true;
    Height min_head = ~0ull;
    for (std::size_t i = 0; i < scenario.node_count(); ++i) {
        if (scenario.node(i).alive()) {
            min_head = std::min(min_head, scenario.node(i).store().head_height());
        }
    }
    const chain::BlockHeader* ref = nullptr;
    for (std::size_t i = 0; i < scenario.node_count(); ++i) {
        if (!scenario.node(i).alive()) continue;
        const auto* h = scenario.node(i).store().header(min_head);
        if (ref == nullptr) {
            ref = h;
        } else if (h == nullptr || ref == nullptr || h->hash() != ref->hash()) {
            consistent = false;
        }
    }

    if (health_on) recorder.unhook_logs();

    if (!args.trace_file.empty()) {
        write_text_file(args.trace_file, tracer.chrome_json());
    }
    if (!args.health_file.empty()) {
        // One self-contained report: watchdog verdicts plus the black box.
        std::string health_json = "{\"monitor\":" + monitor.json() +
                                  ",\"flight_recorder\":" + recorder.json() + "}\n";
        write_text_file(args.health_file, health_json);
    }
    if (!args.timeseries_file.empty()) {
        const bool ts_json = args.timeseries_file.size() >= 5 &&
                             args.timeseries_file.compare(args.timeseries_file.size() - 5, 5,
                                                          ".json") == 0;
        write_text_file(args.timeseries_file, ts_json ? timeseries.json() : timeseries.csv());
    }
    if (!args.metrics_file.empty()) {
        // Fold the end-of-run resource numbers into the registry so the
        // dump is self-contained.
        for (std::size_t i = 0; i < r.nodes.size(); ++i) {
            const NodeId id = static_cast<NodeId>(i);
            registry.gauge(id, "mem_peak_kb")
                ->set(static_cast<std::int64_t>(r.nodes[i].mem_peak_mb * 1024.0));
            registry.gauge(id, "rx_dropped")
                ->set(static_cast<std::int64_t>(r.nodes[i].rx_dropped));
        }
        write_text_file(args.metrics_file, registry.json());
    }

    // Exit codes: safety violations dominate everything (a juridical
    // recorder whose evidence is wrong is worse than one that is merely
    // inconsistent or unhealthy); then inconsistency; then an uncleared
    // alarm (with --fail-on-alarm). Alarms that latched and then cleared
    // (crash followed by a successful rejoin) count as recovered.
    int rc = consistent ? 0 : 1;
    if (rc == 0 && args.fail_on_alarm && monitor.any_active()) rc = 3;
    if (args.audit && !auditor.report().clean()) {
        rc = 4;
        // The black box is the evidence trail for a violated run.
        if (health_on) {
            std::fprintf(stderr, "safety violations detected; flight recorder follows\n%s\n",
                         recorder.json().c_str());
        }
    }

    if (args.json) {
        print_json_report(args, r, consistent, args.audit ? &auditor : nullptr, attack_attempts,
                          scenario.state_transfer_rejected(),
                          args.prof ? &profiler : nullptr);
        return rc;
    }

    std::printf("\n-- ordering --\n");
    std::printf("records logged (unique) : %llu\n",
                static_cast<unsigned long long>(r.logged_unique));
    std::printf("blocks                  : %llu\n", static_cast<unsigned long long>(r.blocks));
    if (!r.latency_ms.empty()) {
        std::printf("latency mean/p50/p99    : %.2f / %.2f / %.2f ms\n", r.latency_ms.mean(),
                    r.latency_ms.percentile(0.5), r.latency_ms.percentile(0.99));
    }
    std::printf("duplicates decided      : %llu, suspects: %llu\n",
                static_cast<unsigned long long>(r.duplicates_decided),
                static_cast<unsigned long long>(r.suspects));

    std::printf("\n-- per node --\n");
    std::printf("%4s %10s %12s %12s %12s %8s %6s\n", "node", "cpu %dev", "mem avg MB",
                "mem peak MB", "sent MB", "rx-drop", "VCs");
    for (std::size_t i = 0; i < r.nodes.size(); ++i) {
        const auto& n = r.nodes[i];
        std::printf("%4zu %9.1f%% %12.1f %12.1f %12.2f %8llu %6llu\n", i, n.cpu_pct_of_device,
                    n.mem_avg_mb, n.mem_peak_mb, static_cast<double>(n.bytes_sent) / 1e6,
                    static_cast<unsigned long long>(n.rx_dropped),
                    static_cast<unsigned long long>(n.view_changes));
    }

    if (args.cfg.dc_count > 0) {
        std::printf("\n-- export --\n");
        const auto& dc = scenario.data_center(0).stats();
        std::printf("exports started %llu, completed %llu, failed %llu, retry rounds %llu\n",
                    static_cast<unsigned long long>(dc.exports_started),
                    static_cast<unsigned long long>(dc.exports_completed),
                    static_cast<unsigned long long>(dc.exports_failed),
                    static_cast<unsigned long long>(dc.retries));
        for (const auto& rec : scenario.data_center(0).history()) {
            std::printf("exported blocks %llu..%llu: read %.2f s, verify %.3f s, delete %.2f s "
                        "(%s)\n",
                        static_cast<unsigned long long>(rec.exported_from + 1),
                        static_cast<unsigned long long>(rec.exported_to),
                        to_seconds(rec.read_time), to_seconds(rec.verify_cost),
                        to_seconds(rec.delete_time), rec.success ? "ok" : "failed");
        }
    }

    if (tracing && tracer.registry() != nullptr) {
        const trace::Histogram e2e = registry.merged_histogram("e2e_ns");
        if (e2e.count() > 0) {
            std::printf("\n-- tracing --\n");
            std::printf("events captured         : %zu\n", tracer.event_count());
            std::printf("e2e (receive->decide)   : p50 %.2f / p99 %.2f ms over %llu samples\n",
                        static_cast<double>(e2e.percentile(0.5)) / 1e6,
                        static_cast<double>(e2e.percentile(0.99)) / 1e6,
                        static_cast<unsigned long long>(e2e.count()));
        }
    }

    if (health_on) {
        std::printf("\n-- health --\n");
        std::printf("samples taken           : %llu\n",
                    static_cast<unsigned long long>(monitor.samples_taken()));
        std::printf("alarms                  : %zu\n", monitor.alarms().size());
        for (const auto& alarm : monitor.alarms()) {
            if (alarm.cleared) {
                std::printf("  [%.3f s] node %d %s: %s (cleared at %.3f s)\n",
                            to_seconds(alarm.first_seen),
                            alarm.node == kNoNode ? -1 : static_cast<int>(alarm.node),
                            health::alarm_kind_name(alarm.kind), alarm.detail.c_str(),
                            to_seconds(alarm.cleared_at));
            } else {
                std::printf("  [%.3f s] node %d %s: %s\n", to_seconds(alarm.first_seen),
                            alarm.node == kNoNode ? -1 : static_cast<int>(alarm.node),
                            health::alarm_kind_name(alarm.kind), alarm.detail.c_str());
            }
        }
        std::printf("flight recorder         : %zu events retained, %llu dropped\n",
                    recorder.size(), static_cast<unsigned long long>(recorder.dropped()));
    }

    if (!args.cfg.byzantine.empty()) {
        std::printf("\n-- adversary --\n");
        for (std::size_t i = 0; i < scenario.node_count(); ++i) {
            const faults::Adversary* adv = scenario.node(i).adversary();
            if (adv == nullptr) continue;
            const faults::AdversaryStats& st = adv->stats();
            std::printf("node %zu: %llu attack attempts (equivocations %llu, tampered %llu, "
                        "replays %llu, forged blocks %llu, poisonings %llu)\n",
                        i, static_cast<unsigned long long>(st.attempts()),
                        static_cast<unsigned long long>(st.equivocations),
                        static_cast<unsigned long long>(st.digests_flipped + st.sigs_stripped),
                        static_cast<unsigned long long>(st.replays),
                        static_cast<unsigned long long>(st.forged_blocks),
                        static_cast<unsigned long long>(st.st_poisonings));
        }
        std::printf("state-transfer ranges rejected: %llu\n",
                    static_cast<unsigned long long>(scenario.state_transfer_rejected()));
    }

    if (args.audit) {
        const faults::AuditReport& audit = auditor.report();
        std::printf("\n-- safety audit --\n");
        std::printf("audit passes            : %llu (%llu checks)\n",
                    static_cast<unsigned long long>(audit.audits),
                    static_cast<unsigned long long>(audit.checks));
        std::printf("violations              : %zu\n", audit.violations.size());
        for (const faults::Violation& v : audit.violations) {
            std::printf("  %s at %s%u height %llu: %s\n", faults::violation_name(v.kind),
                        v.where >= 100 ? "dc-" : "node-", v.where >= 100 ? v.where - 100 : v.where,
                        static_cast<unsigned long long>(v.height), v.detail.c_str());
        }
    }

    if (args.prof) profiler.snapshot().print_table(stdout);

    std::printf("\nchains consistent across live nodes: %s\n", consistent ? "yes" : "NO");
    return rc;
}
