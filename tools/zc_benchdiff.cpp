// zc_benchdiff — the perf-regression gate: compare fresh BENCH_*.json
// files against committed baselines (bench/results/) with per-metric
// tolerances.
//
//   zc_benchdiff BASELINE.json FRESH.json [options]
//   zc_benchdiff --baseline-dir DIR FRESH.json... [options]
//
// The second form resolves each fresh file's baseline as DIR/<basename>,
// which is how CI runs it: build the --quick benches, then diff every
// BENCH_*.json against bench/results/.
//
// Metric classes and their defaults:
//   * virtual rates/latencies (latency_*, net_util_pct, cpu_pct_total,
//     mem_*, and any bench-specific extra column): two-sided relative
//     tolerance, default 0.25 (--tol-default F, --tol NAME=F per metric).
//   * counts (total_bytes, logged, blocks, rx_dropped, rate_limited):
//     exact by default — the simulation is deterministic, so a changed
//     count is a changed virtual behaviour, not noise. Only compared when
//     the two files ran at the same depth (equal "quick" flags); a
//     --quick run against a full baseline skips them.
//   * host block (sim_rate, wall_s): one-sided with a generous factor
//     (--wall-tol F, default 2.0; 0 disables) — wall time may grow up to
//     Fx, sim_rate may shrink to 1/Fx. Host metrics are machine-noise;
//     only order-of-magnitude regressions should gate. Like counts,
//     compared only between runs of equal depth (a --quick run is
//     cold-start dominated and incomparable to a full baseline).
//
// --require-rows additionally fails when the fresh file is missing a
// config row the baseline has (renamed rows otherwise just vanish from
// the comparison).
//
// Exit codes: 0 all within tolerance, 1 regression (or missing row with
// --require-rows), 2 usage / unreadable / malformed input.
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------
// Minimal JSON reader — just enough for the write_bench_json schema
// (objects, arrays, strings, numbers, booleans, null). No dependencies.
// ---------------------------------------------------------------------
struct JValue {
    enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
    Type type = Type::kNull;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<JValue> array;
    std::vector<std::pair<std::string, JValue>> object;

    const JValue* find(const std::string& key) const {
        for (const auto& [k, v] : object) {
            if (k == key) return &v;
        }
        return nullptr;
    }
};

class JsonParser {
public:
    explicit JsonParser(const std::string& text) : text_(text) {}

    bool parse(JValue& out) { return value(out) && (skip_ws(), pos_ == text_.size()); }

private:
    void skip_ws() {
        while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
            ++pos_;
        }
    }
    bool literal(const char* word, std::size_t len) {
        if (text_.compare(pos_, len, word) != 0) return false;
        pos_ += len;
        return true;
    }
    bool value(JValue& out) {
        skip_ws();
        if (pos_ >= text_.size()) return false;
        const char c = text_[pos_];
        if (c == '{') return object(out);
        if (c == '[') return array(out);
        if (c == '"') {
            out.type = JValue::Type::kString;
            return string(out.string);
        }
        if (c == 't') {
            out.type = JValue::Type::kBool;
            out.boolean = true;
            return literal("true", 4);
        }
        if (c == 'f') {
            out.type = JValue::Type::kBool;
            out.boolean = false;
            return literal("false", 5);
        }
        if (c == 'n') {
            out.type = JValue::Type::kNull;
            return literal("null", 4);
        }
        return number(out);
    }
    bool number(JValue& out) {
        const char* start = text_.c_str() + pos_;
        char* end = nullptr;
        out.number = std::strtod(start, &end);
        if (end == start) return false;
        out.type = JValue::Type::kNumber;
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }
    bool string(std::string& out) {
        if (text_[pos_] != '"') return false;
        ++pos_;
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') return true;
            if (c == '\\') {
                if (pos_ >= text_.size()) return false;
                const char esc = text_[pos_++];
                switch (esc) {
                    case '"': out += '"'; break;
                    case '\\': out += '\\'; break;
                    case '/': out += '/'; break;
                    case 'n': out += '\n'; break;
                    case 't': out += '\t'; break;
                    case 'r': out += '\r'; break;
                    case 'b': out += '\b'; break;
                    case 'f': out += '\f'; break;
                    case 'u':  // bench files are ASCII; keep the escape raw
                        if (pos_ + 4 > text_.size()) return false;
                        out += "\\u" + text_.substr(pos_, 4);
                        pos_ += 4;
                        break;
                    default: return false;
                }
            } else {
                out += c;
            }
        }
        return false;
    }
    bool array(JValue& out) {
        out.type = JValue::Type::kArray;
        ++pos_;  // '['
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JValue element;
            if (!value(element)) return false;
            out.array.push_back(std::move(element));
            skip_ws();
            if (pos_ >= text_.size()) return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }
    bool object(JValue& out) {
        out.type = JValue::Type::kObject;
        ++pos_;  // '{'
        skip_ws();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skip_ws();
            std::string key;
            if (pos_ >= text_.size() || !string(key)) return false;
            skip_ws();
            if (pos_ >= text_.size() || text_[pos_] != ':') return false;
            ++pos_;
            JValue element;
            if (!value(element)) return false;
            out.object.emplace_back(std::move(key), std::move(element));
            skip_ws();
            if (pos_ >= text_.size()) return false;
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string& text_;
    std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------
// Comparison
// ---------------------------------------------------------------------
constexpr const char* kCountMetrics[] = {"total_bytes", "logged", "blocks", "rx_dropped",
                                         "rate_limited"};

bool is_count_metric(const std::string& name) {
    for (const char* m : kCountMetrics) {
        if (name == m) return true;
    }
    return false;
}

struct Options {
    double tol_default = 0.25;
    double wall_tol = 2.0;
    bool require_rows = false;
    std::map<std::string, double> tol_by_metric;

    double tolerance(const std::string& metric) const {
        const auto it = tol_by_metric.find(metric);
        if (it != tol_by_metric.end()) return it->second;
        if (is_count_metric(metric)) return 0.0;
        return tol_default;
    }
};

struct DiffStats {
    int compared = 0;
    int failed = 0;
};

/// Two-sided check of `fresh` against `base` with relative tolerance.
bool within(double base, double fresh, double tol) {
    const double diff = std::fabs(fresh - base);
    if (diff == 0.0) return true;
    const double denom = std::fabs(base);
    if (denom < 1e-12) return diff <= 1e-12;  // zero baseline: must stay zero
    return diff / denom <= tol;
}

bool load_json(const char* path, JValue& out) {
    std::ifstream f(path, std::ios::binary);
    if (!f) {
        std::fprintf(stderr, "zc_benchdiff: cannot read %s\n", path);
        return false;
    }
    std::ostringstream buf;
    buf << f.rdbuf();
    const std::string text = buf.str();
    JsonParser parser(text);
    if (!parser.parse(out) || out.type != JValue::Type::kObject) {
        std::fprintf(stderr, "zc_benchdiff: %s is not valid JSON\n", path);
        return false;
    }
    return true;
}

bool quick_flag(const JValue& doc) {
    const JValue* q = doc.find("quick");
    return q != nullptr && q->type == JValue::Type::kBool && q->boolean;
}

/// Compares one fresh bench file against its baseline. Returns false on a
/// regression; prints every violation.
bool diff_files(const char* base_path, const char* fresh_path, const Options& opt,
                DiffStats& stats, bool& parse_error) {
    JValue base, fresh;
    if (!load_json(base_path, base) || !load_json(fresh_path, fresh)) {
        parse_error = true;
        return false;
    }

    const JValue* base_rows = base.find("rows");
    const JValue* fresh_rows = fresh.find("rows");
    if (base_rows == nullptr || fresh_rows == nullptr ||
        base_rows->type != JValue::Type::kArray ||
        fresh_rows->type != JValue::Type::kArray) {
        std::fprintf(stderr, "zc_benchdiff: %s or %s has no rows[]\n", base_path, fresh_path);
        parse_error = true;
        return false;
    }

    // Count metrics are only meaningful at equal bench depth: a --quick
    // run produces different row durations/seeds than the committed full
    // results.
    const bool same_depth = quick_flag(base) == quick_flag(fresh);

    bool ok = true;
    for (const JValue& brow : base_rows->array) {
        const JValue* cfg = brow.find("config");
        if (cfg == nullptr || cfg->type != JValue::Type::kString) continue;

        const JValue* frow = nullptr;
        for (const JValue& candidate : fresh_rows->array) {
            const JValue* fcfg = candidate.find("config");
            if (fcfg != nullptr && fcfg->string == cfg->string) {
                frow = &candidate;
                break;
            }
        }
        if (frow == nullptr) {
            if (opt.require_rows) {
                std::printf("MISSING %s: row \"%s\" absent from %s\n", base_path,
                            cfg->string.c_str(), fresh_path);
                ok = false;
            }
            continue;
        }

        for (const auto& [metric, bval] : brow.object) {
            if (metric == "config" || bval.type != JValue::Type::kNumber) continue;
            if (is_count_metric(metric) && !same_depth) continue;
            const JValue* fval = frow->find(metric);
            if (fval == nullptr || fval->type != JValue::Type::kNumber) continue;
            ++stats.compared;
            const double tol = opt.tolerance(metric);
            if (!within(bval.number, fval->number, tol)) {
                std::printf("FAIL %s \"%s\" %s: baseline %.6g fresh %.6g (tol %.0f%%)\n",
                            fresh_path, cfg->string.c_str(), metric.c_str(), bval.number,
                            fval->number, tol * 100.0);
                ++stats.failed;
                ok = false;
            }
        }
    }

    // Host block: one-sided, generous. Only gate when both sides carry
    // measurements (older baselines may predate the host block) AND ran
    // at the same depth — a --quick run is cold-start dominated, so its
    // wall_s and sim_rate are incomparable to a full baseline's.
    if (opt.wall_tol > 0.0 && same_depth) {
        const JValue* bhost = base.find("host");
        const JValue* fhost = fresh.find("host");
        if (bhost != nullptr && fhost != nullptr) {
            const JValue* bwall = bhost->find("wall_s");
            const JValue* fwall = fhost->find("wall_s");
            if (bwall != nullptr && fwall != nullptr &&
                fwall->number > bwall->number * opt.wall_tol) {
                std::printf("FAIL %s host wall_s: baseline %.3f fresh %.3f (> %.1fx)\n",
                            fresh_path, bwall->number, fwall->number, opt.wall_tol);
                ++stats.failed;
                ok = false;
            }
            const JValue* brate = bhost->find("sim_rate");
            const JValue* frate = fhost->find("sim_rate");
            if (brate != nullptr && frate != nullptr && brate->number > 0 &&
                frate->number < brate->number / opt.wall_tol) {
                std::printf("FAIL %s host sim_rate: baseline %.2fx fresh %.2fx (< 1/%.1f)\n",
                            fresh_path, brate->number, frate->number, opt.wall_tol);
                ++stats.failed;
                ok = false;
            }
        }
    }

    return ok;
}

void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s BASELINE.json FRESH.json [options]\n"
                 "       %s --baseline-dir DIR FRESH.json... [options]\n"
                 "options: [--tol-default F] [--tol NAME=F]... [--wall-tol F]\n"
                 "         [--require-rows]\n",
                 argv0, argv0);
    std::exit(2);
}

std::string basename_of(const std::string& path) {
    const std::size_t slash = path.find_last_of('/');
    return slash == std::string::npos ? path : path.substr(slash + 1);
}

}  // namespace

int main(int argc, char** argv) {
    Options opt;
    std::string baseline_dir;
    std::vector<std::string> files;

    auto need_value = [&](int& i) -> const char* {
        if (i + 1 >= argc) {
            std::fprintf(stderr, "%s: flag %s needs a value\n", argv[0], argv[i]);
            usage(argv[0]);
        }
        return argv[++i];
    };

    for (int i = 1; i < argc; ++i) {
        const std::string flag = argv[i];
        if (flag == "--baseline-dir") {
            baseline_dir = need_value(i);
        } else if (flag == "--tol-default") {
            opt.tol_default = std::atof(need_value(i));
        } else if (flag == "--tol") {
            const std::string spec = need_value(i);
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos) {
                std::fprintf(stderr, "%s: --tol wants NAME=F\n", argv[0]);
                usage(argv[0]);
            }
            opt.tol_by_metric[spec.substr(0, eq)] = std::atof(spec.c_str() + eq + 1);
        } else if (flag == "--wall-tol") {
            opt.wall_tol = std::atof(need_value(i));
        } else if (flag == "--require-rows") {
            opt.require_rows = true;
        } else if (flag.size() >= 2 && flag[0] == '-' && flag[1] == '-') {
            std::fprintf(stderr, "%s: unknown flag: %s\n", argv[0], flag.c_str());
            usage(argv[0]);
        } else {
            files.push_back(flag);
        }
    }

    std::vector<std::pair<std::string, std::string>> pairs;  // (baseline, fresh)
    if (!baseline_dir.empty()) {
        if (files.empty()) usage(argv[0]);
        for (const std::string& fresh : files) {
            pairs.emplace_back(baseline_dir + "/" + basename_of(fresh), fresh);
        }
    } else {
        if (files.size() != 2) usage(argv[0]);
        pairs.emplace_back(files[0], files[1]);
    }

    DiffStats stats;
    bool parse_error = false;
    bool ok = true;
    for (const auto& [base, fresh] : pairs) {
        if (!diff_files(base.c_str(), fresh.c_str(), opt, stats, parse_error)) ok = false;
    }
    if (parse_error) return 2;

    std::printf("zc_benchdiff: %d metric(s) compared across %zu file(s), %d failure(s)\n",
                stats.compared, pairs.size(), stats.failed);
    return ok ? 0 : 1;
}
