// Continuous export: the train periodically ships its blockchain to two
// mutually distrusting company data centers over LTE; replicas prune
// exported blocks to bound on-train memory, while the data centers keep
// the complete, verifiable history (paper §III-D and requirement R4).
//
// Also demonstrates the downstream use the paper motivates: predictive
// maintenance queries over the exported traces.
#include <cstdio>

#include "runtime/scenario.hpp"

using namespace zc;

int main() {
    runtime::ScenarioConfig cfg;
    cfg.payload_size = 256;
    cfg.warmup = seconds(2);
    cfg.duration = seconds(300);  // five minutes of operation
    cfg.dc_count = 2;             // two railway companies
    cfg.delete_quorum = 2;        // replicas prune only if both sign the delete
    cfg.seed = 7;

    std::printf("5 minutes of operation with an export round every ~90 s...\n");
    runtime::Scenario scenario(cfg);

    // Periodic export: any data center may initiate (here DC 0).
    for (int round = 1; round <= 3; ++round) {
        scenario.sim().schedule(seconds(90) * round, [&scenario] {
            scenario.data_center(0).start_export();
        });
    }
    scenario.run();
    scenario.run_for(seconds(60));  // let the last round finish

    std::printf("\n--- export rounds (data center 0) ---\n");
    std::printf("%5s %10s %10s %10s %10s %9s\n", "round", "blocks", "read s", "delete s",
                "verify s", "success");
    int round = 0;
    for (const auto& rec : scenario.data_center(0).history()) {
        std::printf("%5d %10llu %10.2f %10.2f %10.3f %9s\n", ++round,
                    static_cast<unsigned long long>(rec.blocks), to_seconds(rec.read_time),
                    to_seconds(rec.delete_time), to_seconds(rec.verify_cost),
                    rec.success ? "yes" : "no");
    }

    // On-train memory is bounded: the chain base advanced with each export.
    std::printf("\n--- on-train footprint after pruning ---\n");
    for (std::size_t i = 0; i < 4; ++i) {
        const chain::BlockStore& store = scenario.node(i).store();
        std::printf("node %zu: retains blocks %llu..%llu (%zu KiB)\n", i,
                    static_cast<unsigned long long>(store.base_height()),
                    static_cast<unsigned long long>(store.head_height()),
                    store.stored_bytes() / 1024);
    }

    // Both data centers hold the same complete history, genesis-anchored.
    std::printf("\n--- company data centers ---\n");
    for (std::size_t d = 0; d < 2; ++d) {
        const chain::BlockStore& store = scenario.data_center(d).store();
        const bool ok = store.validate(0, store.head_height());
        std::printf("data center %zu: blocks 0..%llu, full-history integrity %s\n", d,
                    static_cast<unsigned long long>(store.head_height()),
                    ok ? "VERIFIED" : "BROKEN");
    }

    // Predictive maintenance over exported data: brake-pressure behaviour.
    const chain::BlockStore& history = scenario.data_center(0).store();
    std::uint64_t samples = 0;
    std::int64_t min_pressure = 1 << 20;
    double mean_pressure = 0;
    for (Height h = 0; h <= history.head_height(); ++h) {
        const chain::Block* block = history.get(h);
        if (block == nullptr) continue;
        for (const auto& req : block->requests) {
            const auto record = codec::try_decode<train::LogRecord>(req.payload);
            if (!record) continue;
            for (const train::Signal& s : record->signals) {
                if (s.kind == train::SignalKind::kBrakePressure) {
                    ++samples;
                    mean_pressure += static_cast<double>(s.value);
                    min_pressure = std::min(min_pressure, s.value);
                }
            }
        }
    }
    if (samples > 0) {
        std::printf("\npredictive maintenance: %llu brake-pressure samples, mean %.0f mbar, "
                    "min %lld mbar\n",
                    static_cast<unsigned long long>(samples), mean_pressure / samples,
                    static_cast<long long>(min_pressure));
    }
    return 0;
}
