// Byzantine drill: exercises ZugChain's fault handling end to end.
//
// One node floods fabricated requests while the primary turns malicious
// (delaying, then duplicating proposals). The drill shows the defenses
// from the paper working together: rate limiting, payload dedup with
// duplicate detection on DECIDE, suspicion, and view change — while the
// juridical log stays complete and consistent.
#include <cstdio>

#include "runtime/scenario.hpp"

using namespace zc;

int main() {
    runtime::ScenarioConfig cfg;
    cfg.payload_size = 512;
    cfg.warmup = seconds(2);
    cfg.duration = seconds(120);
    cfg.seed = 99;

    // Node 3: fabricates a request every other bus cycle.
    runtime::ByzantineBehavior flooder;
    flooder.fabricate_rate = 0.5;
    cfg.byzantine[3] = flooder;

    // Node 0 (initial primary): proposes payload duplicates.
    runtime::ByzantineBehavior bad_primary;
    bad_primary.duplicate_rate = 0.3;
    cfg.byzantine[0] = bad_primary;

    std::printf("Running with a request-fabricating backup (node 3) and a\n"
                "duplicate-proposing primary (node 0)...\n");
    runtime::Scenario scenario(cfg);
    scenario.run();
    const runtime::ScenarioReport report = scenario.report();

    std::printf("\n--- what the honest nodes saw (node 1) ---\n");
    const auto& layer_stats = *&scenario.node(1).layer()->stats();
    const auto& replica_stats = scenario.node(1).replica().stats();
    std::printf("payload duplicates detected on DECIDE : %llu\n",
                static_cast<unsigned long long>(layer_stats.duplicates_decided));
    std::printf("suspicions raised                     : %llu\n",
                static_cast<unsigned long long>(layer_stats.suspects));
    std::printf("view changes completed                : %llu (primary is now node %u)\n",
                static_cast<unsigned long long>(replica_stats.new_views_installed),
                scenario.node(1).replica().primary());
    std::printf("flood requests shed by rate limiting  : %llu\n",
                static_cast<unsigned long long>(layer_stats.rate_limited));

    std::printf("\n--- the log survived ---\n");
    std::printf("unique records logged : %llu\n",
                static_cast<unsigned long long>(report.logged_unique));
    std::printf("blocks                : %llu\n",
                static_cast<unsigned long long>(report.blocks));

    // All honest nodes agree bit-for-bit.
    bool consistent = true;
    const Height head = scenario.node(1).store().head_height();
    for (std::size_t i = 2; i < 4; ++i) {
        const Height common = std::min(head, scenario.node(i).store().head_height());
        for (Height h = 0; h <= common; ++h) {
            const auto* a = scenario.node(1).store().header(h);
            const auto* b = scenario.node(i).store().header(h);
            consistent &= (a != nullptr && b != nullptr && a->hash() == b->hash());
        }
    }
    std::printf("chains consistent     : %s\n", consistent ? "yes" : "NO (bug)");

    // The fabricated data is *in* the log, attributed to node 3 — exactly
    // what investigators need to prove misbehaviour (paper §III-B).
    std::uint64_t fabricated_logged = 0;
    const auto& store = scenario.node(1).store();
    for (Height h = store.base_height(); h <= store.head_height(); ++h) {
        const chain::Block* block = store.get(h);
        if (block == nullptr) continue;
        for (const auto& req : block->requests) {
            if (req.origin == 3 && !codec::try_decode<train::LogRecord>(req.payload)) {
                ++fabricated_logged;
            }
        }
    }
    std::printf("fabricated entries attributed to node 3: %llu (evidence for analysis)\n",
                static_cast<unsigned long long>(fabricated_logged));
    return 0;
}
