// Quickstart: spin up a four-node ZugChain deployment on the simulated
// train, let it record two minutes of operation, and inspect the
// blockchain it produced.
//
//   $ ./quickstart
//
// This is the smallest end-to-end use of the public API: configure a
// Scenario, run it, read the results.
#include <cstdio>

#include "common/hex.hpp"
#include "runtime/scenario.hpp"

using namespace zc;

int main() {
    // The paper's testbed: 4 nodes (f=1), a 64 ms MVB cycle, ~1 kB
    // process-data telegrams, blocks of 10 requests.
    runtime::ScenarioConfig cfg;
    cfg.mode = runtime::Mode::kZugChain;
    cfg.n = 4;
    cfg.f = 1;
    cfg.bus_cycle = milliseconds(64);
    cfg.payload_size = 1024;
    cfg.block_size = 10;
    cfg.warmup = seconds(2);
    cfg.duration = seconds(120);
    cfg.seed = 42;

    std::printf("Running a 4-node ZugChain for 2 minutes of train operation...\n");
    runtime::Scenario scenario(cfg);
    scenario.run();

    runtime::ScenarioReport report = scenario.report();
    std::printf("\n--- results ---\n");
    std::printf("unique records logged : %llu\n",
                static_cast<unsigned long long>(report.logged_unique));
    std::printf("blocks on the chain   : %llu\n", static_cast<unsigned long long>(report.blocks));
    std::printf("ordering latency      : mean %.2f ms, p99 %.2f ms (JRU budget: 500 ms)\n",
                report.latency_ms.mean(), report.latency_ms.percentile(0.99));
    std::printf("CPU usage (node 0)    : %.1f %% of the shared device (paper bound: 15 %%)\n",
                report.nodes[0].cpu_pct_of_device);

    // Every node holds the same tamper-evident chain; verify node 2's.
    chain::BlockStore& store = scenario.node(2).store();
    const bool valid = store.validate(store.base_height(), store.head_height());
    std::printf("\nchain on node 2       : heights %llu..%llu, integrity %s\n",
                static_cast<unsigned long long>(store.base_height()),
                static_cast<unsigned long long>(store.head_height()),
                valid ? "VERIFIED" : "BROKEN");
    std::printf("head hash             : %s\n",
                to_hex(crypto::view(store.head_hash())).c_str());

    // Peek at the first few logged events of the latest block.
    const chain::Block* head = store.get(store.head_height());
    if (head != nullptr && !head->requests.empty()) {
        const auto& req = head->requests.front();
        const auto record = codec::try_decode<train::LogRecord>(req.payload);
        if (record) {
            std::printf("\nlatest block, first record: bus cycle %llu, %zu signals, "
                        "received by node %u, seq %llu\n",
                        static_cast<unsigned long long>(record->cycle),
                        record->signals.size(), req.origin,
                        static_cast<unsigned long long>(req.seq));
        }
    }

    std::printf("\nAll four nodes agree on the log; any single surviving device can\n"
                "prove (or disprove) the integrity of the recorded events.\n");
    return 0;
}
