// Crash investigation: the scenario the JRU exists for.
//
// A train operates normally until an emergency; shortly after, a crash
// destroys three of the four ZugChain nodes. Investigators salvage the
// single surviving device, verify the blockchain's integrity offline, and
// reconstruct the chain of events — including detecting any post-hoc
// tampering with the salvaged record.
#include <cstdio>

#include "runtime/scenario.hpp"

using namespace zc;

namespace {

/// Offline analysis of a salvaged store: walk the chain, verify hashes,
/// and extract juridically relevant events.
void investigate(chain::BlockStore& salvaged) {
    std::printf("\n--- offline investigation of the salvaged device ---\n");
    const bool intact = salvaged.validate(salvaged.base_height(), salvaged.head_height());
    std::printf("chain integrity: %s (heights %llu..%llu)\n", intact ? "VERIFIED" : "BROKEN",
                static_cast<unsigned long long>(salvaged.base_height()),
                static_cast<unsigned long long>(salvaged.head_height()));

    std::uint64_t records = 0, emergency_events = 0, door_events = 0, atp_events = 0;
    std::int64_t last_speed = -1, top_speed = 0;
    for (Height h = salvaged.base_height(); h <= salvaged.head_height(); ++h) {
        const chain::Block* block = salvaged.get(h);
        if (block == nullptr) continue;
        for (const chain::LoggedRequest& req : block->requests) {
            const auto record = codec::try_decode<train::LogRecord>(req.payload);
            if (!record) continue;  // fabricated/foreign payloads: flagged by origin
            ++records;
            for (const train::Signal& s : record->signals) {
                switch (s.kind) {
                    case train::SignalKind::kSpeed:
                        last_speed = s.value;
                        top_speed = std::max(top_speed, s.value);
                        break;
                    case train::SignalKind::kEmergencyBrake:
                        emergency_events += s.value != 0;
                        break;
                    case train::SignalKind::kDoorState:
                        door_events += s.value != 0;
                        break;
                    case train::SignalKind::kAtpIntervention:
                        atp_events += s.value != 0;
                        break;
                    default:
                        break;
                }
            }
        }
    }
    std::printf("records recovered      : %llu\n", static_cast<unsigned long long>(records));
    std::printf("top speed on record    : %.1f km/h\n", static_cast<double>(top_speed) / 100.0);
    std::printf("last speed on record   : %.1f km/h\n", static_cast<double>(last_speed) / 100.0);
    std::printf("emergency-brake events : %llu\n",
                static_cast<unsigned long long>(emergency_events));
    std::printf("ATP interventions      : %llu\n", static_cast<unsigned long long>(atp_events));
    std::printf("door-release events    : %llu\n", static_cast<unsigned long long>(door_events));
}

}  // namespace

int main() {
    runtime::ScenarioConfig cfg;
    cfg.payload_size = 512;
    cfg.warmup = seconds(2);
    cfg.duration = seconds(180);  // three minutes of operation
    cfg.seed = 2026;
    // The crash at t=150 s destroys nodes 0, 1 and 2.
    cfg.crash_schedule = {{seconds(150), 0}, {seconds(150), 1}, {seconds(150), 2}};

    std::printf("Simulating 3 minutes of operation; a crash at t=150 s destroys 3 of 4 "
                "recorder nodes...\n");
    runtime::Scenario scenario(cfg);
    scenario.run();

    // Node 3 is the sole survivor: its store is what gets salvaged.
    investigate(scenario.node(3).store());

    // Tamper detection: an attacker with physical access to the wreck
    // rewrites one logged value. Verification must fail.
    std::printf("\n--- tamper attempt on the salvaged record ---\n");
    chain::BlockStore& store = scenario.node(3).store();
    const Height victim = store.base_height() + (store.head_height() - store.base_height()) / 2;
    const chain::Block* original = store.get(victim);
    if (original != nullptr && !original->requests.empty()) {
        // BlockStore exposes no mutation API (by design), so the attacker
        // has to forge a replacement block; its payload root cannot match
        // the header without re-mining the rest of the chain.
        chain::Block forged = *original;
        forged.requests[0].payload[0] ^= 0x01;  // "the train was slower, honest"
        std::printf("forged block %llu payload_valid(): %s\n",
                    static_cast<unsigned long long>(victim),
                    forged.payload_valid() ? "true (BUG!)" : "false -> tampering detected");
        std::printf("and any recomputed header would break the hash link to block %llu.\n",
                    static_cast<unsigned long long>(victim + 1));
    }

    std::printf("\nEven with one surviving node, deletion or modification of logged\n"
                "events cannot go undetected (paper requirement R3).\n");
    return 0;
}
