#include "zugchain/chain_app.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace zc::zugchain {

ChainApp::ChainApp(chain::BlockStore& store, crypto::CryptoContext& crypto, SeqNo block_interval)
    : store_(store), crypto_(crypto), interval_(block_interval) {
    if (block_interval == 0) throw std::invalid_argument("block_interval must be > 0");
}

namespace {
constexpr std::string_view kTrimMagic = "ZC-TRIM1";
}  // namespace

Bytes ChainApp::make_trim_request(Height up_to) {
    codec::Writer w(16);
    w.str(kTrimMagic);
    w.u64(up_to);
    return w.take();
}

std::optional<Height> ChainApp::parse_trim_request(BytesView payload) {
    try {
        codec::Reader r(payload);
        if (r.str(16) != kTrimMagic) return std::nullopt;
        const Height h = r.u64();
        r.expect_done();
        return h;
    } catch (const codec::DecodeError&) {
        return std::nullopt;
    }
}

void ChainApp::log(const pbft::Request& request, NodeId origin, SeqNo seq) {
    chain::LoggedRequest entry;
    entry.payload = request.payload;
    entry.origin = origin;
    entry.seq = seq;
    entry.origin_seq = request.origin_seq;
    entry.sig = request.sig;
    // A logged trim agreement is executed at the next block boundary so
    // all replicas trim at the same deterministic point; the agreement
    // itself stays on the chain as evidence.
    if (const auto trim = parse_trim_request(entry.payload)) {
        pending_trim_ = pending_trim_ ? std::max(*pending_trim_, *trim) : *trim;
    }
    pending_.push_back(std::move(entry));
}

crypto::Digest ChainApp::state_digest(SeqNo seq) {
    // Deterministic bundling: the block for the window ending at `seq`
    // contains exactly the logged requests of that window, in order. The
    // block timestamp is the sequence number — byte-identical across
    // replicas; real-world times live inside the logged records.
    const Height height = store_.head_height() + 1;
    chain::Block block = chain::Block::build(height, store_.head_hash(),
                                             static_cast<std::int64_t>(seq),
                                             std::move(pending_));
    pending_.clear();

    const std::size_t bytes = block.size_bytes();
    crypto_.charge_hash(bytes);                      // merkle + header hashing
    crypto_.charge(crypto_.costs().block_write(bytes));  // flash persistence
    store_.append(std::move(block));

    if (pending_trim_) {
        // Execute the agreed header-only trim (never touching the block
        // just created). Headers keep the hash chain verifiable.
        const Height up_to = std::min(*pending_trim_, store_.head_height() - 1);
        store_.trim_bodies_to(up_to);
        pending_trim_.reset();
        trims_executed_ += 1;
    }
    return store_.head_hash();
}

void ChainApp::sync_state(SeqNo seq, const crypto::Digest& state) {
    pending_.clear();
    if (fetcher_ && fetcher_(seq, state)) {
        if (store_.head_hash() != state) {
            ZC_WARN("chain-app", "state transfer digest mismatch at seq {}", seq);
        }
        return;
    }
    ZC_WARN("chain-app", "state transfer to seq {} unavailable", seq);
}

}  // namespace zc::zugchain
