// The blockchain application (paper §III-C "Blockchain Application" and
// "Checkpointing").
//
// Receives totally ordered, deduplicated LOG entries from the
// communication layer, deterministically bundles every
// `checkpoint_interval` sequence numbers into a block, persists it, and
// serves as the PBFT application whose state digest (the chain head hash)
// is what checkpoints certify — so a stable checkpoint's 2f+1 signatures
// prove block inclusion for the export protocol.
#pragma once

#include <functional>

#include "chain/block_store.hpp"
#include "crypto/context.hpp"
#include "pbft/replica.hpp"
#include "zugchain/layer.hpp"

namespace zc::zugchain {

class ChainApp final : public LogSink, public pbft::Application {
public:
    /// `block_interval` must equal the replica's checkpoint_interval: the
    /// paper creates one checkpoint per block.
    ChainApp(chain::BlockStore& store, crypto::CryptoContext& crypto, SeqNo block_interval);

    // -- emergency trim agreement (paper §III-D error scenario (v)) ------
    //
    // When a replica misses deletes and approaches memory exhaustion, the
    // replicas "agree to remove the data of a certain number of blocks and
    // only store their headers. The joint agreement is stored on the
    // blockchain." The agreement is an ordinary ordered request carrying a
    // trim marker; once logged, every replica deterministically drops the
    // bodies up to the marked height (headers — and thus verifiability —
    // remain).

    /// Builds the payload of a trim-agreement request.
    static Bytes make_trim_request(Height up_to);

    /// Recognizes a trim-agreement payload; returns the height.
    static std::optional<Height> parse_trim_request(BytesView payload);

    /// Number of trim agreements executed (tests/observability).
    std::uint64_t trims_executed() const noexcept { return trims_executed_; }

    // -- LogSink (LOG upcall from the communication layer) ---------------
    void log(const pbft::Request& request, NodeId origin, SeqNo seq) override;

    // -- pbft::Application (chained behind the layer) --------------------
    void deliver(const pbft::Request&, SeqNo) override {}  // layer logs instead
    crypto::Digest state_digest(SeqNo seq) override;
    void new_primary(View, NodeId) override {}
    void sync_state(SeqNo seq, const crypto::Digest& state) override;

    /// Set by the runtime: fetches missing blocks (state transfer) up to
    /// the block covering `seq`, returning true on success. The blocks
    /// must be appended to the store by the fetcher.
    using StateFetcher = std::function<bool(SeqNo seq, const crypto::Digest& state)>;
    void set_state_fetcher(StateFetcher fetcher) { fetcher_ = std::move(fetcher); }

    const chain::BlockStore& store() const noexcept { return store_; }
    chain::BlockStore& store() noexcept { return store_; }
    SeqNo block_interval() const noexcept { return interval_; }

    /// Requests logged but not yet bundled into a block.
    std::size_t pending_requests() const noexcept { return pending_.size(); }

private:
    chain::BlockStore& store_;
    crypto::CryptoContext& crypto_;
    SeqNo interval_;
    std::vector<chain::LoggedRequest> pending_;
    std::optional<Height> pending_trim_;
    std::uint64_t trims_executed_ = 0;
    StateFetcher fetcher_;
};

}  // namespace zc::zugchain
