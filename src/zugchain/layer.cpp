#include "zugchain/layer.hpp"

#include "common/log.hpp"
#include "crypto/sha256.hpp"

namespace zc::zugchain {

CommunicationLayer::CommunicationLayer(LayerConfig config, sim::Simulation& sim,
                                       crypto::CryptoContext& crypto, LayerTransport& transport,
                                       LogSink& sink, metrics::Gauge* queue_gauge)
    : config_(config), sim_(sim), crypto_(crypto), transport_(transport), sink_(sink),
      queue_gauge_(queue_gauge) {}

CommunicationLayer::~CommunicationLayer() {
    for (auto& [digest, open] : open_) {
        sim_.cancel(open.soft_timer);
        sim_.cancel(open.hard_timer);
        if (queue_gauge_)
            queue_gauge_->add(-static_cast<std::int64_t>(request_bytes(open.request)));
    }
}

pbft::Request CommunicationLayer::make_signed_request(BytesView payload,
                                                      std::uint64_t uniquifier) {
    pbft::Request r;
    r.payload = Bytes(payload.begin(), payload.end());
    r.origin = config_.id;
    r.origin_seq = uniquifier;
    r.sig = crypto_.sign(r.signing_bytes());
    return r;
}

void CommunicationLayer::receive(Bytes payload, std::uint64_t uniquifier, std::uint32_t source) {
    const crypto::Digest digest = crypto::sha256(payload);
    crypto_.charge_hash(payload.size());

    if (logged_.contains(digest)) {
        stats_.filtered_in_log += 1;  // already decided: nothing to do
        trace_event(trace::Phase::kLayerFiltered, digest);
        return;
    }

    const auto existing = open_.find(digest);
    if (existing != open_.end()) {
        // We had it only as a peer broadcast so far; it is now also in R.
        existing->second.from_bus = true;
        return;
    }

    OpenRequest open;
    open.request = make_signed_request(payload, uniquifier);
    open.source = source;
    open.from_bus = true;
    if (queue_gauge_) queue_gauge_->add(static_cast<std::int64_t>(request_bytes(open.request)));
    auto [it, inserted] = open_.emplace(digest, std::move(open));
    stats_.received += 1;
    trace_event(trace::Phase::kLayerEnqueue, digest, source);

    if (config_.id == primary_) {
        propose_open(digest, it->second);  // Alg. 1 ln. 7-9
    } else {
        start_soft_timer(digest);  // Alg. 1 ln. 11
    }
}

void CommunicationLayer::propose_open(const crypto::Digest& payload_digest, OpenRequest& open) {
    stats_.proposed += 1;
    trace_event(trace::Phase::kLayerPropose, payload_digest);
    if (consensus_ != nullptr) consensus_->propose(open.request);
}

void CommunicationLayer::on_peer_request(NodeId from, const pbft::Request& request,
                                         bool forwarded) {
    (void)from;
    if (request.is_null() ||
        !crypto_.verify(request.origin, request.signing_bytes(), request.sig)) {
        return;  // unauthenticated layer traffic is dropped
    }
    const crypto::Digest digest = request.payload_digest();
    crypto_.charge_hash(request.payload.size());

    if (logged_.contains(digest)) return;  // Alg. 1 ln. 26-27

    const bool known = open_.contains(digest);
    if (!known) {
        // Rate limiting (§III-C faulty nodes (iii)): cap open requests a
        // single origin may have outstanding; drop the excess.
        auto& count = open_per_origin_[request.origin];
        if (count >= config_.max_open_per_origin) {
            stats_.rate_limited += 1;
            trace_event(trace::Phase::kLayerRateLimited, digest, request.origin);
            return;
        }
        count += 1;

        OpenRequest open;
        open.request = request;
        open.from_bus = false;
        open.broadcaster = request.origin;
        if (queue_gauge_)
            queue_gauge_->add(static_cast<std::int64_t>(request_bytes(open.request)));
        open_.emplace(digest, std::move(open));
    }

    auto& entry = open_.at(digest);
    if (config_.id == primary_) {
        // Alg. 1 ln. 28-29: propose with the broadcasting node's id, but
        // only if we did not read it from the bus ourselves (r.req not in
        // R) — in that case our own copy is (being) proposed.
        if (!entry.from_bus && entry.request == request) propose_open(digest, entry);
    } else {
        start_hard_timer(digest);  // Alg. 1 ln. 31
        if (!forwarded) {
            stats_.forwards += 1;
            trace_event(trace::Phase::kLayerForward, digest, primary_);
            transport_.forward(primary_, request);  // Alg. 1 ln. 32
        }
    }
}

void CommunicationLayer::start_soft_timer(const crypto::Digest& digest) {
    auto it = open_.find(digest);
    if (it == open_.end() || it->second.soft_timer != sim::kInvalidEvent) return;
    it->second.soft_timer =
        sim_.schedule(config_.soft_timeout, [this, digest] { on_soft_timeout(digest); });
}

void CommunicationLayer::start_hard_timer(const crypto::Digest& digest) {
    auto it = open_.find(digest);
    if (it == open_.end() || it->second.hard_timer != sim::kInvalidEvent) return;
    it->second.hard_timer =
        sim_.schedule(config_.hard_timeout, [this, digest] { on_hard_timeout(digest); });
}

void CommunicationLayer::on_soft_timeout(const crypto::Digest& digest) {
    auto it = open_.find(digest);
    if (it == open_.end()) return;
    it->second.soft_timer = sim::kInvalidEvent;
    stats_.soft_timeouts += 1;
    trace_event(trace::Phase::kSoftTimeout, digest);

    // Alg. 1 ln. 21-24: sign (already signed at receive), broadcast to all
    // nodes, arm the hard timeout to catch a censoring primary.
    stats_.broadcasts += 1;
    trace_event(trace::Phase::kLayerBroadcast, digest);
    transport_.broadcast(it->second.request);
    start_hard_timer(digest);
}

void CommunicationLayer::on_hard_timeout(const crypto::Digest& digest) {
    auto it = open_.find(digest);
    if (it == open_.end()) return;
    it->second.hard_timer = sim::kInvalidEvent;
    stats_.hard_timeouts += 1;
    trace_event(trace::Phase::kHardTimeout, digest);

    // Alg. 1 ln. 33-35: the request is still not logged: suspect.
    if (!logged_.contains(digest)) {
        stats_.suspects += 1;
        trace_event(trace::Phase::kSuspect, digest);
        if (consensus_ != nullptr) consensus_->suspect();
    }
}

void CommunicationLayer::erase_open(const crypto::Digest& digest) {
    const auto it = open_.find(digest);
    if (it == open_.end()) return;
    if (it->second.soft_timer != sim::kInvalidEvent) sim_.cancel(it->second.soft_timer);
    if (it->second.hard_timer != sim::kInvalidEvent) sim_.cancel(it->second.hard_timer);
    if (it->second.broadcaster != kNoNode) {
        auto count = open_per_origin_.find(it->second.broadcaster);
        if (count != open_per_origin_.end() && count->second > 0) count->second -= 1;
    }
    if (queue_gauge_) queue_gauge_->add(-static_cast<std::int64_t>(request_bytes(it->second.request)));
    open_.erase(it);
}

void CommunicationLayer::mark_logged(const crypto::Digest& payload_digest) {
    erase_open(payload_digest);
    if (!logged_.contains(payload_digest)) remember_logged(payload_digest);
}

void CommunicationLayer::remember_logged(const crypto::Digest& digest) {
    logged_.insert(digest);
    logged_order_.push_back(digest);
    while (logged_order_.size() > config_.dedup_window) {
        logged_.erase(logged_order_.front());
        logged_order_.pop_front();
    }
}

void CommunicationLayer::deliver(const pbft::Request& request, SeqNo seq) {
    if (request.is_null()) return;  // view-change gap filler: nothing to log

    const crypto::Digest digest = request.payload_digest();
    crypto_.charge_hash(request.payload.size());

    erase_open(digest);  // Alg. 1 ln. 13-16: clears queue entry and timers

    if (logged_.contains(digest)) {
        // Alg. 1 ln. 17-18: the primary submitted a payload duplicate.
        stats_.duplicates_decided += 1;
        stats_.suspects += 1;
        trace_event(trace::Phase::kDuplicateDecided, digest);
        if (consensus_ != nullptr) consensus_->suspect();
        return;
    }

    stats_.logged += 1;
    remember_logged(digest);
    sink_.log(request, request.origin, seq);  // Alg. 1 ln. 20
}

crypto::Digest CommunicationLayer::state_digest(SeqNo seq) {
    return downstream_ != nullptr ? downstream_->state_digest(seq) : crypto::Digest{};
}

void CommunicationLayer::new_primary(View view, NodeId primary) {
    primary_ = primary;

    // Alg. 1 ln. 36-43. "Open" excludes requests with a running consensus
    // instance: the new primary's reproposals are already in flight, and
    // re-proposing our own differently-signed copy of the same payload
    // would create a duplicate and a false suspicion.
    std::unordered_set<crypto::Digest, crypto::DigestHash> inflight;
    if (consensus_ != nullptr) {
        for (const pbft::Request& r : consensus_->inflight_requests()) {
            if (!r.is_null()) inflight.insert(r.payload_digest());
        }
    }

    for (auto& [digest, open] : open_) {
        if (open.soft_timer != sim::kInvalidEvent) {
            sim_.cancel(open.soft_timer);
            open.soft_timer = sim::kInvalidEvent;
        }
        if (open.hard_timer != sim::kInvalidEvent) {
            sim_.cancel(open.hard_timer);
            open.hard_timer = sim::kInvalidEvent;
        }
        if (inflight.contains(digest)) continue;  // running instance: wait for DECIDE

        if (config_.id == primary_) {
            propose_open(digest, open);  // ln. 39-41
        } else {
            start_soft_timer(digest);  // ln. 43
        }
    }

    if (downstream_ != nullptr) downstream_->new_primary(view, primary);
}

void CommunicationLayer::stable_checkpoint(SeqNo seq, const pbft::CheckpointProof& proof) {
    if (downstream_ != nullptr) downstream_->stable_checkpoint(seq, proof);
}

void CommunicationLayer::preprepared(const pbft::Request& request) {
    if (!config_.cancel_soft_on_preprepare || request.is_null()) return;
    const auto it = open_.find(request.payload_digest());
    if (it == open_.end()) return;
    if (it->second.soft_timer != sim::kInvalidEvent) {
        sim_.cancel(it->second.soft_timer);
        it->second.soft_timer = sim::kInvalidEvent;
    }
}

void CommunicationLayer::sync_state(SeqNo seq, const crypto::Digest& state) {
    if (downstream_ != nullptr) downstream_->sync_state(seq, state);
}

}  // namespace zc::zugchain
