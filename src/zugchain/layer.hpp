// The ZugChain BFT communication layer (paper §III-C, Algorithm 1).
//
// Replaces traditional PBFT client interaction with handling of input
// received over an unauthenticated, time-triggered bus that every node
// reads independently:
//
//   * content- and primary-aware filtering: only the node co-located with
//     the primary proposes bus input, and only if the payload is not in
//     the log or in flight — so identical input read by all n nodes is
//     ordered once, not n times;
//   * soft timeout: a backup whose received input was not decided in time
//     signs it and broadcasts it to all nodes (covers inputs only it
//     received, and a slow/filtering-averse primary);
//   * hard timeout: detects a censoring primary and triggers suspicion;
//   * forwarding: a broadcast that missed the primary is forwarded by the
//     backups, preventing false suspicion of a correct primary;
//   * duplicate detection on DECIDE: a primary that orders a payload twice
//     is suspected (view change);
//   * rate limiting: a bounded number of open requests per origin node
//     caps the damage of fabricated-request floods (Fig. 9);
//   * multiple input sources: one request queue per attached bus/link.
//
// The layer implements pbft::Application and slots between the replica and
// the blockchain application, so DECIDE/NewPrimary/preprepared upcalls of
// Tab. I arrive here.
#pragma once

#include <deque>
#include <unordered_map>
#include <unordered_set>

#include "metrics/memory.hpp"
#include "pbft/messages.hpp"
#include "pbft/replica.hpp"
#include "sim/simulation.hpp"
#include "trace/trace.hpp"

namespace zc::zugchain {

/// Downcalls into the consensus module (Tab. I interface 1); implemented
/// by an adapter over pbft::Replica (or a mock in tests).
class ConsensusHandle {
public:
    virtual ~ConsensusHandle() = default;
    virtual bool propose(const pbft::Request& request) = 0;
    virtual void suspect() = 0;

    /// Requests with a running (preprepared but undecided) consensus
    /// instance. The layer consults this after a view change so "open"
    /// requests exclude instances the new primary already re-proposed
    /// (§III-C: "requests without a corresponding DECIDE or running
    /// consensus instance").
    virtual std::vector<pbft::Request> inflight_requests() const = 0;
};

/// Layer-to-layer transport: BROADCAST(r) to all peers, and forwarding a
/// broadcast to the primary that may have missed it.
class LayerTransport {
public:
    virtual ~LayerTransport() = default;
    virtual void broadcast(const pbft::Request& request) = 0;
    virtual void forward(NodeId to, const pbft::Request& request) = 0;
};

/// Downstream sink for totally ordered, deduplicated log entries
/// (Tab. I interface 2: LOG(req, id, sn)).
class LogSink {
public:
    virtual ~LogSink() = default;
    virtual void log(const pbft::Request& request, NodeId origin, SeqNo seq) = 0;
};

struct LayerConfig {
    NodeId id = 0;

    /// Fig. 8 uses 250 ms + 250 ms against the baseline's 500 ms.
    Duration soft_timeout{milliseconds(250)};
    Duration hard_timeout{milliseconds(250)};

    /// Maximum simultaneously open (undecided) requests accepted per
    /// origin node; "calculated based on the bus frequency" (§III-C).
    std::size_t max_open_per_origin = 32;

    /// Payload-dedup sliding window, in decided requests (the paper checks
    /// "a sliding window of past checkpoints"; with block size 10 this is
    /// window_checkpoints * 10 requests).
    std::size_t dedup_window = 512;

    /// The paper's optimization: treat the primary's preprepare as an
    /// indication the request will be ordered and cancel the soft timer.
    bool cancel_soft_on_preprepare = true;
};

struct LayerStats {
    std::uint64_t received = 0;            ///< bus inputs accepted into R
    std::uint64_t filtered_in_log = 0;     ///< bus inputs already logged
    std::uint64_t proposed = 0;            ///< PROPOSE calls issued
    std::uint64_t broadcasts = 0;          ///< soft-timeout broadcasts sent
    std::uint64_t forwards = 0;            ///< broadcast relays to the primary
    std::uint64_t logged = 0;              ///< LOG upcalls (unique payloads)
    std::uint64_t duplicates_decided = 0;  ///< primary-ordered duplicates found
    std::uint64_t suspects = 0;            ///< SUSPECT calls issued
    std::uint64_t rate_limited = 0;        ///< broadcasts dropped by the limiter
    std::uint64_t soft_timeouts = 0;
    std::uint64_t hard_timeouts = 0;
};

class CommunicationLayer final : public pbft::Application {
public:
    CommunicationLayer(LayerConfig config, sim::Simulation& sim, crypto::CryptoContext& crypto,
                       LayerTransport& transport, LogSink& sink,
                       metrics::Gauge* queue_gauge = nullptr);

    /// Cancels all open-request soft/hard timers and releases the queue
    /// gauge accounting (teardown safety on node crash/restart).
    ~CommunicationLayer() override;

    /// Wires the consensus module (set once before operation; breaks the
    /// construction cycle between replica and layer).
    void attach_consensus(ConsensusHandle& consensus) { consensus_ = &consensus; }

    /// Attaches a request-lifecycle trace sink (null = tracing off; every
    /// trace point is then a single pointer test).
    void set_trace(trace::TraceSink* sink) noexcept { trace_ = sink; }

    /// RECEIVE(req): parsed+filtered bus input from `source` (one queue
    /// per input link; §III-C "Multiple Input Sources"). `uniquifier`
    /// disambiguates the signed request (the bus cycle number), so
    /// re-signing after a view change yields an identical request.
    void receive(Bytes payload, std::uint64_t uniquifier, std::uint32_t source = 0);

    /// A layer BROADCAST/forward from another node (Alg. 1 ln. 25-32).
    /// `forwarded` suppresses re-forwarding loops.
    void on_peer_request(NodeId from, const pbft::Request& request, bool forwarded);

    // -- pbft::Application (upcalls from the replica) --------------------
    void deliver(const pbft::Request& request, SeqNo seq) override;
    crypto::Digest state_digest(SeqNo seq) override;
    void new_primary(View view, NodeId primary) override;
    void stable_checkpoint(SeqNo seq, const pbft::CheckpointProof& proof) override;
    void preprepared(const pbft::Request& request) override;
    void sync_state(SeqNo seq, const crypto::Digest& state) override;

    /// Chains a downstream application that needs the same upcalls
    /// (the blockchain app provides state digests and block building).
    void attach_downstream(pbft::Application& app) { downstream_ = &app; }

    const LayerStats& stats() const noexcept { return stats_; }
    NodeId current_primary() const noexcept { return primary_; }
    std::size_t open_requests() const noexcept { return open_.size(); }

    /// True if the payload digest is in the dedup window (tests).
    bool in_log(const crypto::Digest& payload_digest) const {
        return logged_.contains(payload_digest);
    }

    /// True if the payload is still tracked as open (received ⇒ logged ∨
    /// open is Alg. 1's invariant; the safety auditor checks it).
    bool is_open(const crypto::Digest& payload_digest) const {
        return open_.contains(payload_digest);
    }

    /// Marks a payload as logged without a DECIDE — used after state
    /// transfer, when blocks obtained from peers contain requests this
    /// node never saw decided. Clears any matching open entry.
    void mark_logged(const crypto::Digest& payload_digest);

private:
    struct OpenRequest {
        pbft::Request request;        ///< signed by us (or the broadcaster)
        std::uint32_t source = 0;
        bool from_bus = false;        ///< in R (read from our bus) vs peer broadcast
        NodeId broadcaster = kNoNode; ///< who broadcast it to us (rate limiting)
        sim::EventId soft_timer = sim::kInvalidEvent;
        sim::EventId hard_timer = sim::kInvalidEvent;
    };

    void propose_open(const crypto::Digest& payload_digest, OpenRequest& open);
    void trace_event(trace::Phase phase, const crypto::Digest& payload_digest,
                     std::uint64_t arg = 0) {
        if (trace_ != nullptr) {
            trace_->event(config_.id, sim_.now(), phase,
                          trace::trace_id_from(payload_digest.data()), arg);
        }
    }
    void start_soft_timer(const crypto::Digest& payload_digest);
    void start_hard_timer(const crypto::Digest& payload_digest);
    void on_soft_timeout(const crypto::Digest& payload_digest);
    void on_hard_timeout(const crypto::Digest& payload_digest);
    void remember_logged(const crypto::Digest& payload_digest);
    void erase_open(const crypto::Digest& payload_digest);
    pbft::Request make_signed_request(BytesView payload, std::uint64_t uniquifier);
    std::size_t request_bytes(const pbft::Request& r) const noexcept {
        return r.payload.size() + 96;
    }

    LayerConfig config_;
    sim::Simulation& sim_;
    crypto::CryptoContext& crypto_;
    LayerTransport& transport_;
    LogSink& sink_;
    ConsensusHandle* consensus_ = nullptr;
    pbft::Application* downstream_ = nullptr;
    metrics::Gauge* queue_gauge_;
    trace::TraceSink* trace_ = nullptr;

    NodeId primary_ = 0;

    /// R plus peer-broadcast requests awaiting decision, by payload digest.
    std::unordered_map<crypto::Digest, OpenRequest, crypto::DigestHash> open_;

    /// Sliding dedup window over decided payload digests.
    std::unordered_set<crypto::Digest, crypto::DigestHash> logged_;
    std::deque<crypto::Digest> logged_order_;

    /// Open-broadcast counts per origin (rate limiting).
    std::unordered_map<NodeId, std::size_t> open_per_origin_;

    LayerStats stats_;
};

}  // namespace zc::zugchain
