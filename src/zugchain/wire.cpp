#include "zugchain/wire.hpp"

namespace zc::zugchain {

void PeerRequest::encode(codec::Writer& w) const {
    request.encode(w);
    w.u8(forwarded ? 1 : 0);
}

PeerRequest PeerRequest::decode(codec::Reader& r) {
    PeerRequest m;
    m.request = pbft::Request::decode(r);
    m.forwarded = r.u8() != 0;
    return m;
}

Bytes encode_peer_request(const PeerRequest& m) { return codec::encode_to_bytes(m); }

std::optional<PeerRequest> decode_peer_request(BytesView data) noexcept {
    return codec::try_decode<PeerRequest>(data);
}

}  // namespace zc::zugchain
