// Wire format for layer-to-layer traffic (Alg. 1 BROADCAST and its
// forward-to-primary relay).
#pragma once

#include <optional>

#include "pbft/messages.hpp"

namespace zc::zugchain {

/// A request broadcast by a node whose soft timeout expired, or the relay
/// of such a broadcast to the primary.
struct PeerRequest {
    pbft::Request request;
    bool forwarded = false;  ///< true when relayed; relays are not re-relayed

    void encode(codec::Writer& w) const;
    static PeerRequest decode(codec::Reader& r);
    friend bool operator==(const PeerRequest&, const PeerRequest&) = default;
};

Bytes encode_peer_request(const PeerRequest& m);
std::optional<PeerRequest> decode_peer_request(BytesView data) noexcept;

}  // namespace zc::zugchain
