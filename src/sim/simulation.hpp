// Deterministic discrete-event simulation engine.
//
// All ZugChain experiments run on virtual time: the bus master, network
// links, CPU model, protocol timers and fault schedules all enqueue events
// here. Two runs with the same seed execute the exact same event sequence,
// which is what makes the reproduction's failure-injection tests and
// benchmarks repeatable.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "common/time.hpp"
#include "prof/prof.hpp"

namespace zc::sim {

/// Handle for a scheduled event; used to cancel timers.
using EventId = std::uint64_t;

inline constexpr EventId kInvalidEvent = 0;

class Simulation {
public:
    explicit Simulation(std::uint64_t seed = 1);

    Simulation(const Simulation&) = delete;
    Simulation& operator=(const Simulation&) = delete;

    /// Current virtual time.
    TimePoint now() const noexcept { return now_; }

    /// Stable pointer to the virtual clock, for components that need a
    /// time source but hold no simulation reference (trace contexts).
    const TimePoint* now_handle() const noexcept { return &now_; }

    /// Schedules `fn` to run after `delay` (clamped to >= 0). Events with
    /// equal timestamps run in scheduling order.
    EventId schedule(Duration delay, std::function<void()> fn);

    /// Schedules at an absolute virtual time.
    EventId schedule_at(TimePoint when, std::function<void()> fn);

    /// Cancels a pending event. Cancelling an already-fired or invalid id
    /// is a no-op (timers race with their own cancellation by design).
    void cancel(EventId id) noexcept;

    /// True if the event is still pending.
    bool pending(EventId id) const noexcept;

    /// Runs the next event; returns false when the queue is empty.
    bool step();

    /// Runs all events with timestamp <= t, then advances the clock to t.
    void run_until(TimePoint t);

    /// Runs for a duration from the current time.
    void run_for(Duration d) { run_until(now_ + d); }

    /// Runs until the event queue drains completely.
    void run();

    std::size_t pending_events() const noexcept { return handlers_.size(); }

    /// Root randomness for this simulation; components fork sub-streams.
    Rng& rng() noexcept { return rng_; }

    /// Attaches a host-cost profiler: handler dispatch is attributed per
    /// event and the run loops feed sim-progress (sim_rate) accounting.
    /// Null (the default) keeps the loop unprofiled — a single branch per
    /// event. The profiler only reads the host clock, so attaching one
    /// never perturbs virtual time.
    void set_profiler(prof::Profiler* prof) noexcept { prof_ = prof; }
    prof::Profiler* profiler() const noexcept { return prof_; }

private:
    struct QueueEntry {
        TimePoint at;
        std::uint64_t seq;
        EventId id;
        bool operator>(const QueueEntry& o) const noexcept {
            if (at != o.at) return at > o.at;
            return seq > o.seq;
        }
    };

    TimePoint now_{0};
    std::uint64_t next_seq_ = 1;
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, std::greater<>> queue_;
    std::unordered_map<EventId, std::function<void()>> handlers_;
    Rng rng_;
    prof::Profiler* prof_ = nullptr;
};

}  // namespace zc::sim
