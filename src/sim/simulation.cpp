#include "sim/simulation.hpp"

namespace zc::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

EventId Simulation::schedule(Duration delay, std::function<void()> fn) {
    if (delay < Duration::zero()) delay = Duration::zero();
    return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_at(TimePoint when, std::function<void()> fn) {
    if (when < now_) when = now_;
    const EventId id = next_seq_++;
    queue_.push(QueueEntry{when, id, id});
    handlers_.emplace(id, std::move(fn));
    return id;
}

void Simulation::cancel(EventId id) noexcept { handlers_.erase(id); }

bool Simulation::pending(EventId id) const noexcept { return handlers_.contains(id); }

bool Simulation::step() {
    while (!queue_.empty()) {
        const QueueEntry entry = queue_.top();
        queue_.pop();
        auto it = handlers_.find(entry.id);
        if (it == handlers_.end()) continue;  // cancelled
        now_ = entry.at;
        // Move the handler out before erasing: the handler may schedule or
        // cancel other events (including rescheduling its own id).
        auto fn = std::move(it->second);
        handlers_.erase(it);
        if (prof_ != nullptr) {
            prof::Scope dispatch(prof::Subsystem::kDispatch);
            fn();
        } else {
            fn();
        }
        return true;
    }
    return false;
}

void Simulation::run_until(TimePoint t) {
    // Sim-progress accounting brackets the whole loop: virtual time
    // advanced over host time spent, the sim_rate numerator/denominator.
    prof::Profiler* const prof = prof_;
    const std::uint64_t wall0 = prof != nullptr ? prof->clock_now() : 0;
    const TimePoint virt0 = now_;
    if (prof != nullptr) prof->begin(prof::Subsystem::kEventLoop);

    while (!queue_.empty()) {
        const QueueEntry& entry = queue_.top();
        if (!handlers_.contains(entry.id)) {
            queue_.pop();
            continue;
        }
        if (entry.at > t) break;
        step();
    }
    if (now_ < t) now_ = t;

    if (prof != nullptr) {
        prof->end();
        prof->add_sim_progress((now_ - virt0).count(), prof->clock_now() - wall0);
    }
}

void Simulation::run() {
    prof::Profiler* const prof = prof_;
    const std::uint64_t wall0 = prof != nullptr ? prof->clock_now() : 0;
    const TimePoint virt0 = now_;
    if (prof != nullptr) prof->begin(prof::Subsystem::kEventLoop);

    while (step()) {
    }

    if (prof != nullptr) {
        prof->end();
        prof->add_sim_progress((now_ - virt0).count(), prof->clock_now() - wall0);
    }
}

}  // namespace zc::sim
