#include "sim/simulation.hpp"

namespace zc::sim {

Simulation::Simulation(std::uint64_t seed) : rng_(seed) {}

EventId Simulation::schedule(Duration delay, std::function<void()> fn) {
    if (delay < Duration::zero()) delay = Duration::zero();
    return schedule_at(now_ + delay, std::move(fn));
}

EventId Simulation::schedule_at(TimePoint when, std::function<void()> fn) {
    if (when < now_) when = now_;
    const EventId id = next_seq_++;
    queue_.push(QueueEntry{when, id, id});
    handlers_.emplace(id, std::move(fn));
    return id;
}

void Simulation::cancel(EventId id) noexcept { handlers_.erase(id); }

bool Simulation::pending(EventId id) const noexcept { return handlers_.contains(id); }

bool Simulation::step() {
    while (!queue_.empty()) {
        const QueueEntry entry = queue_.top();
        queue_.pop();
        auto it = handlers_.find(entry.id);
        if (it == handlers_.end()) continue;  // cancelled
        now_ = entry.at;
        // Move the handler out before erasing: the handler may schedule or
        // cancel other events (including rescheduling its own id).
        auto fn = std::move(it->second);
        handlers_.erase(it);
        fn();
        return true;
    }
    return false;
}

void Simulation::run_until(TimePoint t) {
    while (!queue_.empty()) {
        const QueueEntry& entry = queue_.top();
        if (!handlers_.contains(entry.id)) {
            queue_.pop();
            continue;
        }
        if (entry.at > t) break;
        step();
    }
    if (now_ < t) now_ = t;
}

void Simulation::run() {
    while (step()) {
    }
}

}  // namespace zc::sim
