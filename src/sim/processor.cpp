#include "sim/processor.hpp"

#include <algorithm>
#include <stdexcept>

namespace zc::sim {

Processor::Processor(Simulation& sim, int cores, double background_load)
    : sim_(sim), core_free_(static_cast<std::size_t>(cores), TimePoint{0}) {
    if (cores <= 0) throw std::invalid_argument("Processor needs >= 1 core");
    if (background_load < 0.0 || background_load >= 1.0)
        throw std::invalid_argument("background_load must be in [0, 1)");
    cost_scale_ = 1.0 / (1.0 - background_load);
}

void Processor::submit(Duration cost, std::function<void()> fn) {
    const Duration scaled{static_cast<std::int64_t>(static_cast<double>(cost.count()) *
                                                    cost_scale_)};
    auto it = std::min_element(core_free_.begin(), core_free_.end());
    const TimePoint start = std::max(sim_.now(), *it);
    const TimePoint end = start + scaled;
    *it = end;
    busy_ += scaled;
    sim_.schedule_at(end, std::move(fn));
}

Duration Processor::backlog() const noexcept {
    const TimePoint now = sim_.now();
    Duration worst{0};
    for (const TimePoint t : core_free_) {
        if (t > now) worst = std::max(worst, t - now);
    }
    return worst;
}

double Processor::utilization_since(TimePoint since, Duration busy_at_since) const noexcept {
    const Duration elapsed = sim_.now() - since;
    if (elapsed <= Duration::zero()) return 0.0;
    const Duration used = busy_ - busy_at_since;
    return static_cast<double>(used.count()) / static_cast<double>(elapsed.count());
}

}  // namespace zc::sim
