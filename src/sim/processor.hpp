// Virtual multi-core CPU.
//
// Each ZugChain node is a shared train device (the paper's M-COMs are
// quad-core Cortex-A9 boxes running other workloads). Handlers are not run
// immediately when a message arrives: work is submitted with a CPU cost
// (from metrics::CostModel) and executes when a virtual core finishes it.
// When offered load exceeds capacity the run queue grows, which is exactly
// how the paper's baseline falls over at 32 ms bus cycles (Fig. 6).
#pragma once

#include <functional>

#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace zc::sim {

class Processor {
public:
    /// `background_load` models co-located train software: the fraction of
    /// each core's time that is unavailable to us (work costs are scaled by
    /// 1/(1-background_load)).
    Processor(Simulation& sim, int cores, double background_load = 0.0);

    /// Submits a job costing `cost` CPU time; `fn` runs at completion.
    /// FIFO assignment to the earliest-free core.
    void submit(Duration cost, std::function<void()> fn);

    /// Submits a zero-cost job (bookkeeping that should still respect
    /// event ordering through the processor).
    void post(std::function<void()> fn) { submit(Duration::zero(), std::move(fn)); }

    int cores() const noexcept { return static_cast<int>(core_free_.size()); }

    /// Total CPU time consumed by submitted jobs (sum across cores).
    Duration busy_time() const noexcept { return busy_; }

    /// How far the most-loaded core's completion horizon lies beyond `now`;
    /// zero when idle. A growing backlog means overload.
    Duration backlog() const noexcept;

    /// Utilization in [0, cores] over (since, now]; e.g. 4 cores fully busy
    /// reports 4.0 — matching the paper's "400 %" convention.
    double utilization_since(TimePoint since, Duration busy_at_since) const noexcept;

private:
    Simulation& sim_;
    std::vector<TimePoint> core_free_;
    double cost_scale_;
    Duration busy_{0};
};

}  // namespace zc::sim
