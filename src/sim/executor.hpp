// Metered job executor: the protocol CPU of one node.
//
// Protocol handlers run when a virtual core frees up; each job reports the
// CPU cost it actually consumed (via the crypto::WorkMeter fed by the cost
// model) and occupies its core for that long. Offered load beyond capacity
// queues — this is the mechanism by which the baseline collapses at 32 ms
// bus cycles in Fig. 6 while ZugChain keeps up.
//
// The prototype protocol stack runs on a bounded worker pool, so
// nodes run this executor with fewer cores than the M-COM has;
// utilization is reported against the device's full core count.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>

#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace zc::sim {

class MeteredExecutor {
public:
    /// A job returns the CPU time it consumed.
    using Job = std::function<Duration()>;

    /// `queue_limit` bounds the run queue (jobs, not bytes); submissions
    /// beyond it are dropped, modelling a bounded receive buffer
    /// ("the baseline cannot keep up ... and requests are dropped").
    /// 0 = unbounded.
    MeteredExecutor(Simulation& sim, int cores, std::size_t queue_limit = 0);

    /// Enqueues a job. Returns false if it was dropped (queue full).
    bool submit(Job job);

    /// Discards every queued (not yet started) job, modelling a crashed
    /// node losing its run queue. Returns how many jobs were dropped.
    std::size_t clear_queue() noexcept {
        const std::size_t n = queue_.size();
        queue_.clear();
        return n;
    }

    int cores() const noexcept { return cores_; }
    Duration busy_time() const noexcept { return busy_; }
    std::size_t queue_depth() const noexcept { return queue_.size(); }
    std::uint64_t dropped() const noexcept { return dropped_; }
    std::uint64_t completed() const noexcept { return completed_; }

    /// Utilization over (since, now] in cores (1.0 = one core fully busy).
    double utilization_since(TimePoint since, Duration busy_at_since) const noexcept;

private:
    void run(Job job);

    Simulation& sim_;
    int cores_;
    int idle_;
    std::size_t queue_limit_;
    std::deque<Job> queue_;
    Duration busy_{0};
    std::uint64_t dropped_ = 0;
    std::uint64_t completed_ = 0;
};

}  // namespace zc::sim
