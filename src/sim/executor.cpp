#include "sim/executor.hpp"

#include <stdexcept>

namespace zc::sim {

MeteredExecutor::MeteredExecutor(Simulation& sim, int cores, std::size_t queue_limit)
    : sim_(sim), cores_(cores), idle_(cores), queue_limit_(queue_limit) {
    if (cores <= 0) throw std::invalid_argument("MeteredExecutor needs >= 1 core");
}

bool MeteredExecutor::submit(Job job) {
    if (idle_ > 0) {
        --idle_;
        run(std::move(job));
        return true;
    }
    if (queue_limit_ != 0 && queue_.size() >= queue_limit_) {
        ++dropped_;
        return false;
    }
    queue_.push_back(std::move(job));
    return true;
}

void MeteredExecutor::run(Job job) {
    const Duration cost = job();
    busy_ += cost;
    ++completed_;
    sim_.schedule(cost, [this] {
        if (!queue_.empty()) {
            Job next = std::move(queue_.front());
            queue_.pop_front();
            run(std::move(next));
        } else {
            ++idle_;
        }
    });
}

double MeteredExecutor::utilization_since(TimePoint since, Duration busy_at_since) const noexcept {
    const Duration elapsed = sim_.now() - since;
    if (elapsed <= Duration::zero()) return 0.0;
    return static_cast<double>((busy_ - busy_at_since).count()) /
           static_cast<double>(elapsed.count());
}

}  // namespace zc::sim
