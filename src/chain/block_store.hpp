// Replica-local blockchain storage.
//
// Stores the chain from a base block (genesis, or the last exported block
// after pruning) to the head. Supports:
//   * append with parent-link validation,
//   * pruning after a confirmed export (the evidence — the data centers'
//     signed deletes — is retained so chain verification can anchor at the
//     new base instead of genesis),
//   * header-only trimming (paper error scenario (v): before memory
//     exhaustion, replicas may drop bodies but keep headers so integrity
//     remains verifiable),
//   * optional file-backed persistence (paper: the blockchain is persisted
//     on disk to survive power loss),
//   * full-range validation of hash links and payload roots.
#pragma once

#include <filesystem>
#include <map>
#include <optional>

#include "chain/block.hpp"
#include "metrics/memory.hpp"
#include "trace/trace.hpp"

namespace zc::chain {

/// Evidence that pruning below a base block was authorized by the data
/// centers (serialized signed deletes; opaque at this layer).
struct PruneAnchor {
    Height base_height = 0;
    crypto::Digest base_hash{};
    Bytes evidence;

    void encode(codec::Writer& w) const;
    static PruneAnchor decode(codec::Reader& r);
};

/// What `BlockStore::load` found (and discarded) while restoring a store
/// from disk after a crash. Load never deletes files — the report lists
/// what an offline repair (`zc_inspect --repair`) should remove.
struct RecoveryReport {
    std::uint64_t blocks_loaded = 0;     ///< valid prefix restored into memory
    std::uint64_t blocks_discarded = 0;  ///< corrupt / torn / unlinked entries
    Height recovered_head = 0;           ///< head height after recovery
    bool unrepairable = false;  ///< block files exist but no valid prefix
    std::vector<std::string> discarded_files;  ///< paths load refused to trust
    std::vector<std::string> notes;            ///< human-readable findings

    bool clean() const noexcept { return blocks_discarded == 0 && !unrepairable; }
};

class BlockStore {
public:
    /// In-memory store, seeded with the genesis block. If `dir` is given,
    /// blocks are additionally persisted there as they are appended.
    explicit BlockStore(metrics::Gauge* gauge = nullptr,
                        std::optional<std::filesystem::path> dir = std::nullopt);

    /// Releases this store's bytes from the memory gauge.
    ~BlockStore();

    BlockStore(BlockStore&& other) noexcept;
    BlockStore& operator=(BlockStore&& other) noexcept;
    BlockStore(const BlockStore&) = delete;
    BlockStore& operator=(const BlockStore&) = delete;

    /// Restores a store from a persistence directory, tolerating a torn,
    /// truncated, or bit-flipped tail: every block file carries a checksum
    /// trailer, and load keeps only the longest prefix whose checksums,
    /// heights, and parent links all verify. Discarded entries are listed
    /// in `report` (if given) and left on disk for offline inspection;
    /// state transfer refills the gap at runtime.
    static BlockStore load(const std::filesystem::path& dir, metrics::Gauge* gauge = nullptr,
                           RecoveryReport* report = nullptr);

    /// Appends a block; throws std::invalid_argument if the height or
    /// parent hash does not extend the current head.
    void append(Block block);

    /// Block at height, or nullptr if unknown/pruned/body-trimmed.
    const Block* get(Height height) const;

    /// Header at height, or nullptr if unknown/pruned. Survives body trims.
    const BlockHeader* header(Height height) const;

    Height head_height() const noexcept { return head_height_; }
    const crypto::Digest& head_hash() const noexcept { return head_hash_; }

    /// Lowest retained height (genesis or the prune base).
    Height base_height() const noexcept { return base_height_; }

    /// Number of retained block entries (headers).
    std::size_t size() const noexcept { return entries_.size(); }

    /// Deletes everything below `base`; the block at `base` is kept as the
    /// first block of the pruned chain (paper §III-D step 6). `evidence`
    /// is the serialized delete certificate.
    void prune_to(Height base, Bytes evidence);

    const std::optional<PruneAnchor>& anchor() const noexcept { return anchor_; }

    /// Re-anchors this store on a peer's prune base: discards every
    /// retained block (they are all below `base_block`), installs
    /// `base_block` as the new base == head, and records the delete
    /// certificate as the prune anchor. For a rejoining replica whose
    /// peers pruned past its head — the missing prefix is archived at the
    /// data centers and `evidence` carries the delete-quorum signatures
    /// attesting exactly that. Throws std::invalid_argument unless
    /// `base_block` lies strictly above the current head.
    void rebase(Block base_block, Bytes evidence);

    /// Drops request bodies for heights <= `height`, keeping headers
    /// (emergency space reclamation; must itself be agreed via consensus,
    /// which the caller is responsible for).
    void trim_bodies_to(Height height);

    /// Validates hash links and payload roots over [from, to]. Bodies that
    /// were trimmed validate by header link only.
    bool validate(Height from, Height to) const;

    /// Copies blocks in [from, to] (skipping trimmed bodies).
    std::vector<Block> range(Height from, Height to) const;

    /// Logical bytes held (tracked in the memory gauge as well).
    std::size_t stored_bytes() const noexcept { return stored_bytes_; }

    /// Attaches a trace context (the store holds no simulation reference,
    /// so the context carries the virtual-clock handle).
    void set_trace(trace::TraceContext ctx) noexcept { trace_ = ctx; }

private:
    struct LoadTag {};

    /// Load-path constructor: attaches to `dir` without seeding/persisting
    /// a fresh genesis (the directory's existing contents are authoritative).
    BlockStore(LoadTag, metrics::Gauge* gauge, std::filesystem::path dir);

    struct Entry {
        Block block;
        bool body_present = true;  // false after trim_bodies_to
    };

    void account(std::int64_t delta);
    void release_accounting() noexcept;
    std::filesystem::path block_path(Height height) const;
    void persist(const Block& block) const;
    static std::size_t body_bytes(const Block& block) noexcept;

    std::map<Height, Entry> entries_;
    Height base_height_ = 0;
    Height head_height_ = 0;
    crypto::Digest head_hash_{};
    std::optional<PruneAnchor> anchor_;
    metrics::Gauge* gauge_;
    std::optional<std::filesystem::path> dir_;
    std::size_t stored_bytes_ = 0;
    trace::TraceContext trace_;
};

}  // namespace zc::chain
