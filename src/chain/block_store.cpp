#include "chain/block_store.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace zc::chain {

namespace {

Bytes read_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path.string());
    return Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::filesystem::path& path, BytesView data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + path.string());
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
}

}  // namespace

void PruneAnchor::encode(codec::Writer& w) const {
    w.u64(base_height);
    w.raw(base_hash);
    w.bytes(evidence);
}

PruneAnchor PruneAnchor::decode(codec::Reader& r) {
    PruneAnchor a;
    a.base_height = r.u64();
    a.base_hash = r.raw_array<32>();
    a.evidence = r.bytes();
    return a;
}

BlockStore::BlockStore(metrics::Gauge* gauge, std::optional<std::filesystem::path> dir)
    : gauge_(gauge), dir_(std::move(dir)) {
    if (dir_) std::filesystem::create_directories(*dir_);
    Block genesis = make_genesis();
    head_hash_ = genesis.hash();
    head_height_ = 0;
    base_height_ = 0;
    account(static_cast<std::int64_t>(genesis.size_bytes()));
    if (dir_) persist(genesis);
    entries_.emplace(0, Entry{std::move(genesis), true});
}

BlockStore::BlockStore(LoadTag, metrics::Gauge* gauge, std::filesystem::path dir)
    : gauge_(gauge), dir_(std::move(dir)) {}

BlockStore BlockStore::load(const std::filesystem::path& dir, metrics::Gauge* gauge) {
    if (!std::filesystem::exists(dir)) return BlockStore(gauge, dir);

    BlockStore store(LoadTag{}, gauge, dir);

    const auto anchor_path = dir / "anchor.bin";
    if (std::filesystem::exists(anchor_path)) {
        store.anchor_ = codec::decode_from_bytes<PruneAnchor>(read_file(anchor_path));
    }

    std::map<Height, Block> blocks;
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        const auto name = entry.path().filename().string();
        if (!name.starts_with("block_")) continue;
        Block b = codec::decode_from_bytes<Block>(read_file(entry.path()));
        blocks.emplace(b.header.height, std::move(b));
    }
    if (blocks.empty()) return BlockStore(gauge, dir);  // empty dir: fresh chain

    store.base_height_ = blocks.begin()->first;
    for (auto& [height, block] : blocks) {
        store.account(static_cast<std::int64_t>(block.size_bytes()));
        store.head_height_ = height;
        store.head_hash_ = block.hash();
        store.entries_.emplace(height, Entry{std::move(block), true});
    }
    return store;
}

void BlockStore::account(std::int64_t delta) {
    stored_bytes_ = static_cast<std::size_t>(static_cast<std::int64_t>(stored_bytes_) + delta);
    if (gauge_) gauge_->add(delta);
}

std::size_t BlockStore::body_bytes(const Block& block) noexcept {
    std::size_t bytes = 0;
    for (const LoggedRequest& req : block.requests) bytes += req.size_bytes();
    return bytes;
}

std::filesystem::path BlockStore::block_path(Height height) const {
    char name[32];
    std::snprintf(name, sizeof name, "block_%012llu.bin",
                  static_cast<unsigned long long>(height));
    return *dir_ / name;
}

void BlockStore::persist(const Block& block) const {
    write_file(block_path(block.header.height), codec::encode_to_bytes(block));
}

void BlockStore::append(Block block) {
    if (block.header.height != head_height_ + 1)
        throw std::invalid_argument("block height does not extend head");
    if (block.header.parent_hash != head_hash_)
        throw std::invalid_argument("block parent hash mismatch");
    if (!block.payload_valid()) throw std::invalid_argument("block payload root mismatch");

    head_height_ = block.header.height;
    head_hash_ = block.hash();
    account(static_cast<std::int64_t>(block.size_bytes()));
    if (dir_) persist(block);
    const Height h = block.header.height;
    trace_.event(trace::Phase::kBlockPersist, h, block.size_bytes());
    entries_.emplace(h, Entry{std::move(block), true});
}

const Block* BlockStore::get(Height height) const {
    const auto it = entries_.find(height);
    if (it == entries_.end() || !it->second.body_present) return nullptr;
    return &it->second.block;
}

const BlockHeader* BlockStore::header(Height height) const {
    const auto it = entries_.find(height);
    return it == entries_.end() ? nullptr : &it->second.block.header;
}

void BlockStore::prune_to(Height base, Bytes evidence) {
    if (base > head_height_) throw std::invalid_argument("prune base beyond head");
    if (base < base_height_) return;  // already pruned further

    const BlockHeader* base_header = header(base);
    if (base_header == nullptr) throw std::invalid_argument("prune base unknown");

    PruneAnchor anchor;
    anchor.base_height = base;
    anchor.base_hash = base_header->hash();
    anchor.evidence = std::move(evidence);

    for (auto it = entries_.begin(); it != entries_.end() && it->first < base;) {
        std::size_t bytes = sizeof(BlockHeader);
        if (it->second.body_present) bytes += body_bytes(it->second.block);
        account(-static_cast<std::int64_t>(bytes));
        if (dir_) std::filesystem::remove(block_path(it->first));
        it = entries_.erase(it);
    }
    base_height_ = base;
    anchor_ = std::move(anchor);
    if (dir_) write_file(*dir_ / "anchor.bin", codec::encode_to_bytes(*anchor_));
    trace_.event(trace::Phase::kPrune, base, stored_bytes_);
}

void BlockStore::trim_bodies_to(Height height) {
    for (auto& [h, entry] : entries_) {
        if (h > height || !entry.body_present) continue;
        account(-static_cast<std::int64_t>(body_bytes(entry.block)));
        entry.block.requests.clear();
        entry.body_present = false;
    }
    trace_.event(trace::Phase::kTrimBodies, height, stored_bytes_);
}

bool BlockStore::validate(Height from, Height to) const {
    if (from > to || to > head_height_ || from < base_height_) return false;
    const BlockHeader* prev = nullptr;
    for (Height h = from; h <= to; ++h) {
        const auto it = entries_.find(h);
        if (it == entries_.end()) return false;
        const Entry& entry = it->second;
        if (prev != nullptr && entry.block.header.parent_hash != prev->hash()) return false;
        if (entry.body_present && !entry.block.payload_valid()) return false;
        prev = &entry.block.header;
    }
    return true;
}

std::vector<Block> BlockStore::range(Height from, Height to) const {
    std::vector<Block> out;
    for (Height h = from; h <= to; ++h) {
        const Block* b = get(h);
        if (b != nullptr) out.push_back(*b);
    }
    return out;
}

}  // namespace zc::chain
