#include "chain/block_store.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "crypto/sha256.hpp"
#include "prof/prof.hpp"

namespace zc::chain {

namespace {

Bytes read_file(const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open " + path.string());
    return Bytes(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

void write_file(const std::filesystem::path& path, BytesView data) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write " + path.string());
    out.write(reinterpret_cast<const char*>(data.data()),
              static_cast<std::streamsize>(data.size()));
}

/// Block files end with a sha256 trailer over the encoded block: the
/// recovery marker. A torn or bit-flipped file fails the trailer check
/// and is never served as a valid block.
constexpr std::size_t kChecksumBytes = sizeof(crypto::Digest);

void write_file_durable(const std::filesystem::path& path, BytesView data) {
    Bytes framed(data.begin(), data.end());
    const crypto::Digest sum = crypto::sha256(data);
    framed.insert(framed.end(), sum.begin(), sum.end());
    // Write-to-temp + rename so a crash mid-write leaves either the old
    // file or a discardable .tmp, never a half-written "valid" block.
    const std::filesystem::path tmp = path.string() + ".tmp";
    write_file(tmp, framed);
    std::filesystem::rename(tmp, path);
}

/// Strips and verifies the checksum trailer; returns false on a torn,
/// truncated, or corrupted file.
bool unframe_checked(Bytes& data) noexcept {
    if (data.size() < kChecksumBytes) return false;
    const std::size_t body = data.size() - kChecksumBytes;
    const crypto::Digest sum = crypto::sha256(BytesView(data.data(), body));
    if (std::memcmp(sum.data(), data.data() + body, kChecksumBytes) != 0) return false;
    data.resize(body);
    return true;
}

/// Height encoded in a `block_%012llu.bin` filename, or nullopt when the
/// name does not match (so corrupt files still have a known height).
std::optional<Height> height_from_name(const std::string& name) {
    if (!name.starts_with("block_") || !name.ends_with(".bin")) return std::nullopt;
    const std::string digits = name.substr(6, name.size() - 6 - 4);
    if (digits.empty() || digits.find_first_not_of("0123456789") != std::string::npos)
        return std::nullopt;
    return static_cast<Height>(std::strtoull(digits.c_str(), nullptr, 10));
}

}  // namespace

void PruneAnchor::encode(codec::Writer& w) const {
    w.u64(base_height);
    w.raw(base_hash);
    w.bytes(evidence);
}

PruneAnchor PruneAnchor::decode(codec::Reader& r) {
    PruneAnchor a;
    a.base_height = r.u64();
    a.base_hash = r.raw_array<32>();
    a.evidence = r.bytes();
    return a;
}

BlockStore::BlockStore(metrics::Gauge* gauge, std::optional<std::filesystem::path> dir)
    : gauge_(gauge), dir_(std::move(dir)) {
    if (dir_) std::filesystem::create_directories(*dir_);
    Block genesis = make_genesis();
    head_hash_ = genesis.hash();
    head_height_ = 0;
    base_height_ = 0;
    account(static_cast<std::int64_t>(genesis.size_bytes()));
    if (dir_) persist(genesis);
    entries_.emplace(0, Entry{std::move(genesis), true});
}

BlockStore::BlockStore(LoadTag, metrics::Gauge* gauge, std::filesystem::path dir)
    : gauge_(gauge), dir_(std::move(dir)) {}

BlockStore::~BlockStore() { release_accounting(); }

BlockStore::BlockStore(BlockStore&& other) noexcept
    : entries_(std::move(other.entries_)),
      base_height_(other.base_height_),
      head_height_(other.head_height_),
      head_hash_(other.head_hash_),
      anchor_(std::move(other.anchor_)),
      gauge_(other.gauge_),
      dir_(std::move(other.dir_)),
      stored_bytes_(other.stored_bytes_),
      trace_(other.trace_) {
    // The moved-from store no longer owns the gauge accounting.
    other.gauge_ = nullptr;
    other.stored_bytes_ = 0;
    other.entries_.clear();
}

BlockStore& BlockStore::operator=(BlockStore&& other) noexcept {
    if (this == &other) return *this;
    release_accounting();
    entries_ = std::move(other.entries_);
    base_height_ = other.base_height_;
    head_height_ = other.head_height_;
    head_hash_ = other.head_hash_;
    anchor_ = std::move(other.anchor_);
    gauge_ = other.gauge_;
    dir_ = std::move(other.dir_);
    stored_bytes_ = other.stored_bytes_;
    trace_ = other.trace_;
    other.gauge_ = nullptr;
    other.stored_bytes_ = 0;
    other.entries_.clear();
    return *this;
}

void BlockStore::release_accounting() noexcept {
    if (gauge_ != nullptr && stored_bytes_ > 0)
        gauge_->add(-static_cast<std::int64_t>(stored_bytes_));
    stored_bytes_ = 0;
}

BlockStore BlockStore::load(const std::filesystem::path& dir, metrics::Gauge* gauge,
                            RecoveryReport* report) {
    ZC_PROF_SCOPE(kStoreLoad);
    RecoveryReport local;
    RecoveryReport& rep = report != nullptr ? *report : local;
    rep = RecoveryReport{};

    if (!std::filesystem::exists(dir)) return BlockStore(gauge, dir);

    BlockStore store(LoadTag{}, gauge, dir);

    const auto anchor_path = dir / "anchor.bin";
    if (std::filesystem::exists(anchor_path)) {
        store.anchor_ = codec::decode_from_bytes<PruneAnchor>(read_file(anchor_path));
    }

    // Pass 1: decode every block file, separating verifiable blocks from
    // torn/corrupt ones. Heights come from the filename so even an
    // undecodable file is attributed to a definite position in the chain.
    std::map<Height, Block> blocks;
    std::map<Height, std::string> bad;  // height -> rejected file
    for (const auto& entry : std::filesystem::directory_iterator(dir)) {
        const auto name = entry.path().filename().string();
        if (name.ends_with(".tmp")) {
            // Interrupted append: the rename never happened, so the block
            // (if any) was re-proposed after restart. Always discard.
            rep.discarded_files.push_back(entry.path().string());
            rep.notes.push_back("interrupted write: " + name);
            continue;
        }
        if (!name.starts_with("block_")) continue;
        const std::optional<Height> named_height = height_from_name(name);
        if (!named_height) {
            rep.discarded_files.push_back(entry.path().string());
            rep.notes.push_back("unrecognized block file name: " + name);
            continue;
        }
        Bytes data = read_file(entry.path());
        if (!unframe_checked(data)) {
            bad.emplace(*named_height, entry.path().string());
            rep.notes.push_back("checksum mismatch (torn or corrupt): " + name);
            continue;
        }
        try {
            Block b = codec::decode_from_bytes<Block>(data);
            if (b.header.height != *named_height) {
                bad.emplace(*named_height, entry.path().string());
                rep.notes.push_back("height/filename mismatch: " + name);
                continue;
            }
            blocks.emplace(b.header.height, std::move(b));
        } catch (const std::exception&) {
            bad.emplace(*named_height, entry.path().string());
            rep.notes.push_back("undecodable block: " + name);
        }
    }
    if (blocks.empty() && bad.empty()) return BlockStore(gauge, dir);  // empty dir: fresh chain

    // Pass 2: keep the longest contiguous, hash-linked, payload-valid
    // prefix starting at the lowest on-disk height. Everything above the
    // first violation is untrusted — state transfer refills it.
    Height lowest = blocks.empty() ? bad.begin()->first : blocks.begin()->first;
    if (!bad.empty()) lowest = std::min(lowest, bad.begin()->first);
    Height keep_end = lowest;  // exclusive: first height NOT kept
    const Block* prev = nullptr;
    for (Height h = lowest;; ++h) {
        const auto it = blocks.find(h);
        if (it == blocks.end()) break;
        const Block& b = it->second;
        if (prev != nullptr && b.header.parent_hash != prev->hash()) {
            rep.notes.push_back("hash link broken at block " + std::to_string(h));
            break;
        }
        if (!b.payload_valid()) {
            rep.notes.push_back("payload root mismatch at block " + std::to_string(h));
            break;
        }
        prev = &b;
        keep_end = h + 1;
    }

    for (const auto& [h, block] : blocks) {
        if (h >= keep_end) {
            rep.blocks_discarded += 1;
            rep.discarded_files.push_back(store.block_path(h).string());
        }
    }
    for (const auto& [h, path] : bad) {
        rep.blocks_discarded += 1;
        rep.discarded_files.push_back(path);
    }

    if (keep_end == lowest) {
        // No valid prefix at all (e.g. the base block itself is corrupt):
        // the chain cannot anchor, so report unrepairable and hand back a
        // fresh in-memory genesis. Nothing on disk is overwritten here —
        // the first post-recovery append rewrites from height 1.
        rep.unrepairable = true;
        rep.notes.push_back("no valid prefix: store unrepairable, restarting from genesis");
        BlockStore fresh(LoadTag{}, gauge, dir);
        Block genesis = make_genesis();
        fresh.head_hash_ = genesis.hash();
        fresh.account(static_cast<std::int64_t>(genesis.size_bytes()));
        fresh.entries_.emplace(0, Entry{std::move(genesis), true});
        return fresh;
    }

    store.base_height_ = lowest;
    for (auto& [height, block] : blocks) {
        if (height >= keep_end) continue;
        store.account(static_cast<std::int64_t>(block.size_bytes()));
        store.head_height_ = height;
        store.head_hash_ = block.hash();
        store.entries_.emplace(height, Entry{std::move(block), true});
        rep.blocks_loaded += 1;
    }
    rep.recovered_head = store.head_height_;
    return store;
}

void BlockStore::account(std::int64_t delta) {
    stored_bytes_ = static_cast<std::size_t>(static_cast<std::int64_t>(stored_bytes_) + delta);
    if (gauge_) gauge_->add(delta);
}

std::size_t BlockStore::body_bytes(const Block& block) noexcept {
    std::size_t bytes = 0;
    for (const LoggedRequest& req : block.requests) bytes += req.size_bytes();
    return bytes;
}

std::filesystem::path BlockStore::block_path(Height height) const {
    char name[32];
    std::snprintf(name, sizeof name, "block_%012llu.bin",
                  static_cast<unsigned long long>(height));
    return *dir_ / name;
}

void BlockStore::persist(const Block& block) const {
    write_file_durable(block_path(block.header.height), codec::encode_to_bytes(block));
}

void BlockStore::append(Block block) {
    ZC_PROF_SCOPE(kStoreAppend);
    if (block.header.height != head_height_ + 1)
        throw std::invalid_argument("block height does not extend head");
    if (block.header.parent_hash != head_hash_)
        throw std::invalid_argument("block parent hash mismatch");
    if (!block.payload_valid()) throw std::invalid_argument("block payload root mismatch");

    head_height_ = block.header.height;
    head_hash_ = block.hash();
    account(static_cast<std::int64_t>(block.size_bytes()));
    if (dir_) persist(block);
    const Height h = block.header.height;
    trace_.event(trace::Phase::kBlockPersist, h, block.size_bytes());
    entries_.emplace(h, Entry{std::move(block), true});
}

const Block* BlockStore::get(Height height) const {
    const auto it = entries_.find(height);
    if (it == entries_.end() || !it->second.body_present) return nullptr;
    return &it->second.block;
}

const BlockHeader* BlockStore::header(Height height) const {
    const auto it = entries_.find(height);
    return it == entries_.end() ? nullptr : &it->second.block.header;
}

void BlockStore::prune_to(Height base, Bytes evidence) {
    if (base > head_height_) throw std::invalid_argument("prune base beyond head");
    if (base < base_height_) return;  // already pruned further

    const BlockHeader* base_header = header(base);
    if (base_header == nullptr) throw std::invalid_argument("prune base unknown");

    PruneAnchor anchor;
    anchor.base_height = base;
    anchor.base_hash = base_header->hash();
    anchor.evidence = std::move(evidence);

    for (auto it = entries_.begin(); it != entries_.end() && it->first < base;) {
        std::size_t bytes = sizeof(BlockHeader);
        if (it->second.body_present) bytes += body_bytes(it->second.block);
        account(-static_cast<std::int64_t>(bytes));
        if (dir_) std::filesystem::remove(block_path(it->first));
        it = entries_.erase(it);
    }
    base_height_ = base;
    anchor_ = std::move(anchor);
    if (dir_) write_file(*dir_ / "anchor.bin", codec::encode_to_bytes(*anchor_));
    trace_.event(trace::Phase::kPrune, base, stored_bytes_);
}

void BlockStore::rebase(Block base_block, Bytes evidence) {
    const Height base = base_block.header.height;
    if (base <= head_height_) throw std::invalid_argument("rebase not above head");

    for (auto it = entries_.begin(); it != entries_.end();) {
        std::size_t bytes = sizeof(BlockHeader);
        if (it->second.body_present) bytes += body_bytes(it->second.block);
        account(-static_cast<std::int64_t>(bytes));
        if (dir_) std::filesystem::remove(block_path(it->first));
        it = entries_.erase(it);
    }

    PruneAnchor anchor;
    anchor.base_height = base;
    anchor.base_hash = base_block.hash();
    anchor.evidence = std::move(evidence);

    head_hash_ = base_block.hash();
    head_height_ = base;
    base_height_ = base;
    account(static_cast<std::int64_t>(base_block.size_bytes()));
    if (dir_) persist(base_block);
    entries_.emplace(base, Entry{std::move(base_block), true});
    anchor_ = std::move(anchor);
    if (dir_) write_file(*dir_ / "anchor.bin", codec::encode_to_bytes(*anchor_));
    trace_.event(trace::Phase::kPrune, base, stored_bytes_);
}

void BlockStore::trim_bodies_to(Height height) {
    for (auto& [h, entry] : entries_) {
        if (h > height || !entry.body_present) continue;
        account(-static_cast<std::int64_t>(body_bytes(entry.block)));
        entry.block.requests.clear();
        entry.body_present = false;
    }
    trace_.event(trace::Phase::kTrimBodies, height, stored_bytes_);
}

bool BlockStore::validate(Height from, Height to) const {
    if (from > to || to > head_height_ || from < base_height_) return false;
    const BlockHeader* prev = nullptr;
    for (Height h = from; h <= to; ++h) {
        const auto it = entries_.find(h);
        if (it == entries_.end()) return false;
        const Entry& entry = it->second;
        if (prev != nullptr && entry.block.header.parent_hash != prev->hash()) return false;
        if (entry.body_present && !entry.block.payload_valid()) return false;
        prev = &entry.block.header;
    }
    return true;
}

std::vector<Block> BlockStore::range(Height from, Height to) const {
    std::vector<Block> out;
    for (Height h = from; h <= to; ++h) {
        const Block* b = get(h);
        if (b != nullptr) out.push_back(*b);
    }
    return out;
}

}  // namespace zc::chain
