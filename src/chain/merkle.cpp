#include "chain/merkle.hpp"

#include <stdexcept>

#include "crypto/sha256.hpp"

namespace zc::chain {

namespace {

crypto::Digest hash_pair(const crypto::Digest& a, const crypto::Digest& b) {
    crypto::Sha256 h;
    const std::uint8_t tag = 0x01;
    h.update(&tag, 1);
    h.update(a.data(), a.size());
    h.update(b.data(), b.size());
    return h.finalize();
}

crypto::Digest empty_root() {
    return crypto::sha256(to_bytes("zugchain-empty-merkle"));
}

}  // namespace

crypto::Digest merkle_leaf(BytesView data) {
    crypto::Sha256 h;
    const std::uint8_t tag = 0x00;
    h.update(&tag, 1);
    h.update(data);
    return h.finalize();
}

crypto::Digest merkle_root(std::span<const crypto::Digest> leaves) {
    if (leaves.empty()) return empty_root();
    std::vector<crypto::Digest> level(leaves.begin(), leaves.end());
    while (level.size() > 1) {
        if (level.size() % 2 != 0) level.push_back(level.back());
        std::vector<crypto::Digest> next;
        next.reserve(level.size() / 2);
        for (std::size_t i = 0; i < level.size(); i += 2) {
            next.push_back(hash_pair(level[i], level[i + 1]));
        }
        level = std::move(next);
    }
    return level.front();
}

MerkleProof merkle_prove(std::span<const crypto::Digest> leaves, std::uint64_t index) {
    if (index >= leaves.size()) throw std::out_of_range("merkle_prove: index out of range");
    MerkleProof proof;
    proof.index = index;

    std::vector<crypto::Digest> level(leaves.begin(), leaves.end());
    std::uint64_t pos = index;
    while (level.size() > 1) {
        if (level.size() % 2 != 0) level.push_back(level.back());
        const std::uint64_t sibling = pos ^ 1;
        proof.siblings.push_back(level[sibling]);
        std::vector<crypto::Digest> next;
        next.reserve(level.size() / 2);
        for (std::size_t i = 0; i < level.size(); i += 2) {
            next.push_back(hash_pair(level[i], level[i + 1]));
        }
        level = std::move(next);
        pos /= 2;
    }
    return proof;
}

bool merkle_verify(const crypto::Digest& root, std::uint64_t leaf_count,
                   const crypto::Digest& leaf, const MerkleProof& proof) {
    if (leaf_count == 0 || proof.index >= leaf_count) return false;

    crypto::Digest acc = leaf;
    std::uint64_t pos = proof.index;
    std::uint64_t width = leaf_count;
    std::size_t level = 0;
    while (width > 1) {
        if (level >= proof.siblings.size()) return false;
        const crypto::Digest& sibling = proof.siblings[level];
        acc = (pos % 2 == 0) ? hash_pair(acc, sibling) : hash_pair(sibling, acc);
        pos /= 2;
        width = (width + 1) / 2;
        ++level;
    }
    return level == proof.siblings.size() && acc == root;
}

}  // namespace zc::chain
