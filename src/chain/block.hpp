// Block structure of the ZugChain ledger.
//
// A block bundles `block_size` totally ordered requests (paper: 10). Each
// logged request carries the id of the node that actually received it from
// the bus, as required for post-incident analysis. Headers are hash-chained
// via the parent digest; the payload set is bound by a Merkle root so a
// single surviving node suffices to prove or disprove tampering.
#pragma once

#include <vector>

#include "codec/codec.hpp"
#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "crypto/digest.hpp"
#include "crypto/ed25519.hpp"

namespace zc::chain {

/// A totally ordered, logged request. Carries the origin's request
/// signature so the chain itself is juridical evidence: any party holding
/// the deployment's key directory can re-verify who injected each input
/// without access to consensus transcripts.
struct LoggedRequest {
    Bytes payload;          ///< filtered JRU record bytes
    NodeId origin = 0;      ///< node that received this input from the bus
    SeqNo seq = 0;          ///< consensus sequence number
    std::uint64_t origin_seq = 0;   ///< origin's uniqueifier (bus cycle)
    crypto::Signature sig{};        ///< origin's signature over the request

    void encode(codec::Writer& w) const;
    static LoggedRequest decode(codec::Reader& r);

    /// Digest used as the request's Merkle leaf.
    crypto::Digest digest() const;

    std::size_t size_bytes() const noexcept { return payload.size() + 88; }

    friend bool operator==(const LoggedRequest&, const LoggedRequest&) = default;
};

struct BlockHeader {
    Height height = 0;
    crypto::Digest parent_hash{};
    std::int64_t timestamp_ns = 0;  ///< virtual time of block creation
    crypto::Digest payload_root{};
    std::uint32_t request_count = 0;

    void encode(codec::Writer& w) const;
    static BlockHeader decode(codec::Reader& r);

    /// The block id: SHA-256 over the encoded header.
    crypto::Digest hash() const;

    friend bool operator==(const BlockHeader&, const BlockHeader&) = default;
};

struct Block {
    BlockHeader header;
    std::vector<LoggedRequest> requests;

    /// Builds a block over `requests`, computing the Merkle root.
    static Block build(Height height, const crypto::Digest& parent, std::int64_t timestamp_ns,
                       std::vector<LoggedRequest> requests);

    /// Recomputes the root and checks it against the header.
    bool payload_valid() const;

    crypto::Digest hash() const { return header.hash(); }

    void encode(codec::Writer& w) const;
    static Block decode(codec::Reader& r);

    std::size_t size_bytes() const noexcept;

    friend bool operator==(const Block&, const Block&) = default;
};

/// Hash value of "no parent", used by the genesis block.
crypto::Digest genesis_parent();

/// Genesis block (height 0, no requests, fixed timestamp).
Block make_genesis();

}  // namespace zc::chain
