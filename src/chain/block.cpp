#include "chain/block.hpp"

#include "chain/merkle.hpp"
#include "crypto/sha256.hpp"

namespace zc::chain {

void LoggedRequest::encode(codec::Writer& w) const {
    w.bytes(payload);
    w.u32(origin);
    w.u64(seq);
    w.u64(origin_seq);
    w.raw(sig.v);
}

LoggedRequest LoggedRequest::decode(codec::Reader& r) {
    LoggedRequest req;
    req.payload = r.bytes();
    req.origin = r.u32();
    req.seq = r.u64();
    req.origin_seq = r.u64();
    req.sig.v = r.raw_array<64>();
    return req;
}

crypto::Digest LoggedRequest::digest() const {
    return merkle_leaf(codec::encode_to_bytes(*this));
}

void BlockHeader::encode(codec::Writer& w) const {
    w.u64(height);
    w.raw(parent_hash);
    w.i64(timestamp_ns);
    w.raw(payload_root);
    w.u32(request_count);
}

BlockHeader BlockHeader::decode(codec::Reader& r) {
    BlockHeader h;
    h.height = r.u64();
    h.parent_hash = r.raw_array<32>();
    h.timestamp_ns = r.i64();
    h.payload_root = r.raw_array<32>();
    h.request_count = r.u32();
    return h;
}

crypto::Digest BlockHeader::hash() const {
    return crypto::sha256(codec::encode_to_bytes(*this));
}

Block Block::build(Height height, const crypto::Digest& parent, std::int64_t timestamp_ns,
                   std::vector<LoggedRequest> requests) {
    Block b;
    b.header.height = height;
    b.header.parent_hash = parent;
    b.header.timestamp_ns = timestamp_ns;
    b.header.request_count = static_cast<std::uint32_t>(requests.size());
    std::vector<crypto::Digest> leaves;
    leaves.reserve(requests.size());
    for (const LoggedRequest& req : requests) leaves.push_back(req.digest());
    b.header.payload_root = merkle_root(leaves);
    b.requests = std::move(requests);
    return b;
}

bool Block::payload_valid() const {
    if (requests.size() != header.request_count) return false;
    std::vector<crypto::Digest> leaves;
    leaves.reserve(requests.size());
    for (const LoggedRequest& req : requests) leaves.push_back(req.digest());
    return merkle_root(leaves) == header.payload_root;
}

void Block::encode(codec::Writer& w) const {
    header.encode(w);
    w.varint(requests.size());
    for (const LoggedRequest& req : requests) req.encode(w);
}

Block Block::decode(codec::Reader& r) {
    Block b;
    b.header = BlockHeader::decode(r);
    const std::uint64_t count = r.varint();
    if (count > 1u << 20) throw codec::DecodeError("implausible request count in block");
    b.requests.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) b.requests.push_back(LoggedRequest::decode(r));
    return b;
}

std::size_t Block::size_bytes() const noexcept {
    std::size_t total = sizeof(BlockHeader);
    for (const LoggedRequest& req : requests) total += req.size_bytes();
    return total;
}

crypto::Digest genesis_parent() {
    return crypto::sha256(to_bytes("zugchain-genesis-parent"));
}

Block make_genesis() {
    return Block::build(0, genesis_parent(), 0, {});
}

}  // namespace zc::chain
