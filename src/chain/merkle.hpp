// Merkle tree over request digests; the root binds a block's payload set.
#pragma once

#include <span>
#include <vector>

#include "crypto/digest.hpp"

namespace zc::chain {

/// Domain-separated leaf hash (0x00 || data).
crypto::Digest merkle_leaf(BytesView data);

/// Root of the given leaf digests. Empty input hashes a fixed sentinel so
/// an empty block still has a well-defined root. Odd levels duplicate the
/// trailing node; leaf/interior hashing is domain separated (0x00 / 0x01
/// prefixes) to prevent second-preimage splices.
crypto::Digest merkle_root(std::span<const crypto::Digest> leaves);

/// Inclusion proof: sibling digests bottom-up plus the leaf's index.
struct MerkleProof {
    std::uint64_t index = 0;
    std::vector<crypto::Digest> siblings;
};

/// Builds the proof for leaf `index` (must be < leaves.size()).
MerkleProof merkle_prove(std::span<const crypto::Digest> leaves, std::uint64_t index);

/// Verifies that `leaf` at `proof.index` is included under `root` for a
/// tree of `leaf_count` leaves.
bool merkle_verify(const crypto::Digest& root, std::uint64_t leaf_count,
                   const crypto::Digest& leaf, const MerkleProof& proof);

}  // namespace zc::chain
