// PBFT protocol messages (Castro & Liskov, OSDI'99), adapted as in the
// paper: requests originate from ZugChain nodes reading the bus (or from
// baseline clients), carry the origin node id, and are signed with
// asymmetric cryptography; checkpoints are per-block and their 2f+1
// signature sets double as export proofs.
//
// Every signed message exposes `signing_bytes()` — the canonical encoding
// with the signature field excluded — so signing and verification cover
// identical bytes.
#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "codec/codec.hpp"
#include "common/ids.hpp"
#include "crypto/context.hpp"
#include "crypto/digest.hpp"

namespace zc::pbft {

/// A client/bus request submitted for total ordering.
///
/// Identity (for PBFT-level dedup) is the full digest over
/// (payload, origin, origin_seq) — NOT the payload alone. This mirrors
/// standard PBFT, where "duplication is avoided only on complete requests
/// including client ids and sequence numbers, not on payloads"; payload-
/// level dedup is ZugChain's communication layer's job.
struct Request {
    Bytes payload;
    NodeId origin = kNoNode;        ///< node that received the data from the bus
    std::uint64_t origin_seq = 0;   ///< per-origin uniqueifier (bus cycle / client ctr)
    crypto::Signature sig{};

    /// The null request used to fill sequence gaps during view changes.
    static Request null() { return Request{}; }
    bool is_null() const noexcept { return origin == kNoNode; }

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static Request decode(codec::Reader& r);

    /// Full-request digest (payload + origin + origin_seq).
    crypto::Digest digest() const;

    /// Payload-only digest, used by the ZugChain layer's dedup.
    crypto::Digest payload_digest() const;

    std::size_t size_bytes() const noexcept { return payload.size() + 80; }

    friend bool operator==(const Request&, const Request&) = default;
};

struct PrePrepare {
    View view = 0;
    SeqNo seq = 0;
    crypto::Digest req_digest{};     ///< batch digest binding `requests`
    std::vector<Request> requests;   ///< ordered batch, piggybacked in full
    NodeId primary = kNoNode;
    crypto::Signature sig{};

    /// Digest the primary commits to for an ordered batch. A batch of one
    /// is the request's own digest — identical to the pre-batching format,
    /// so single-request instances stay wire- and proof-compatible. Larger
    /// batches hash the concatenated inner digests under a domain prefix.
    static crypto::Digest batch_digest(const std::vector<Request>& requests);

    std::size_t requests_bytes() const noexcept;

    Bytes signing_bytes() const;

    /// Container encoding (PreparedProof, NewView reproposals): a leading
    /// format byte selects the legacy single-request layout (1) or the
    /// batched layout (2). Transport framing instead versions via the
    /// message tag (2 legacy / 8 batched) so a single-request preprepare
    /// on the wire is byte-identical to the pre-batching format.
    void encode(codec::Writer& w) const;
    static PrePrepare decode(codec::Reader& r);
    void encode_legacy(codec::Writer& w) const;  ///< requires requests.size() == 1
    static PrePrepare decode_legacy(codec::Reader& r);
    void encode_batched(codec::Writer& w) const;
    static PrePrepare decode_batched(codec::Reader& r);
    friend bool operator==(const PrePrepare&, const PrePrepare&) = default;
};

struct Prepare {
    View view = 0;
    SeqNo seq = 0;
    crypto::Digest req_digest{};
    NodeId replica = kNoNode;
    crypto::Signature sig{};

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static Prepare decode(codec::Reader& r);
    friend bool operator==(const Prepare&, const Prepare&) = default;
};

struct Commit {
    View view = 0;
    SeqNo seq = 0;
    crypto::Digest req_digest{};
    NodeId replica = kNoNode;
    crypto::Signature sig{};

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static Commit decode(codec::Reader& r);
    friend bool operator==(const Commit&, const Commit&) = default;
};

/// Signed application snapshot after executing `seq` (paper: one per
/// block; the digest is the chain head hash, so a stable checkpoint's
/// 2f+1 signatures certify the block for export).
struct Checkpoint {
    SeqNo seq = 0;
    crypto::Digest state{};
    NodeId replica = kNoNode;
    crypto::Signature sig{};

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static Checkpoint decode(codec::Reader& r);
    friend bool operator==(const Checkpoint&, const Checkpoint&) = default;
};

/// 2f+1 matching checkpoint messages: proof of a stable checkpoint.
struct CheckpointProof {
    SeqNo seq = 0;
    crypto::Digest state{};
    std::vector<Checkpoint> messages;

    void encode(codec::Writer& w) const;
    static CheckpointProof decode(codec::Reader& r);
    friend bool operator==(const CheckpointProof&, const CheckpointProof&) = default;
};

/// Evidence that a request prepared at (view, seq): the preprepare plus 2f
/// matching prepares from distinct backups.
struct PreparedProof {
    PrePrepare preprepare;
    std::vector<Prepare> prepares;

    void encode(codec::Writer& w) const;
    static PreparedProof decode(codec::Reader& r);
    friend bool operator==(const PreparedProof&, const PreparedProof&) = default;
};

struct ViewChange {
    View new_view = 0;
    SeqNo last_stable = 0;
    std::optional<CheckpointProof> stable_proof;  ///< absent when last_stable == 0
    std::vector<PreparedProof> prepared;
    NodeId replica = kNoNode;
    crypto::Signature sig{};

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static ViewChange decode(codec::Reader& r);
    friend bool operator==(const ViewChange&, const ViewChange&) = default;
};

struct NewView {
    View view = 0;
    std::vector<ViewChange> view_changes;   ///< the 2f+1 justifying VCs
    std::vector<PrePrepare> reproposals;    ///< O: re-proposed + null preprepares
    NodeId primary = kNoNode;
    crypto::Signature sig{};

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static NewView decode(codec::Reader& r);
    friend bool operator==(const NewView&, const NewView&) = default;
};

/// Transport-level union of all PBFT messages.
using Message =
    std::variant<Request, PrePrepare, Prepare, Commit, Checkpoint, ViewChange, NewView>;

/// Serializes with a leading type tag.
Bytes encode_message(const Message& m);

/// Returns nullopt on any malformed input (treated as a corrupt/Byzantine
/// message and dropped by the transport).
std::optional<Message> decode_message(BytesView data) noexcept;

/// Short human-readable name for logs.
const char* message_name(const Message& m) noexcept;

}  // namespace zc::pbft
