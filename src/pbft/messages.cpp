#include "pbft/messages.hpp"

#include <type_traits>

#include "crypto/sha256.hpp"

namespace zc::pbft {

namespace {

constexpr std::size_t kMaxProofMessages = 256;
constexpr std::size_t kMaxPrepared = 4096;
constexpr std::size_t kMaxBatchRequests = 1024;

/// Transport tag for a multi-request preprepare; tag 2 keeps the legacy
/// single-request layout so batch-of-one traffic is byte-identical to the
/// pre-batching wire format.
constexpr std::uint8_t kBatchedPrePrepareTag = 8;

void encode_sig(codec::Writer& w, const crypto::Signature& sig) { w.raw(sig.v); }

crypto::Signature decode_sig(codec::Reader& r) {
    crypto::Signature sig;
    sig.v = r.raw_array<64>();
    return sig;
}

crypto::Digest decode_digest(codec::Reader& r) { return r.raw_array<32>(); }

}  // namespace

// ---- Request ----------------------------------------------------------

Bytes Request::signing_bytes() const {
    codec::Writer w(payload.size() + 32);
    w.str("req");
    w.bytes(payload);
    w.u32(origin);
    w.u64(origin_seq);
    return w.take();
}

void Request::encode(codec::Writer& w) const {
    w.bytes(payload);
    w.u32(origin);
    w.u64(origin_seq);
    encode_sig(w, sig);
}

Request Request::decode(codec::Reader& r) {
    Request req;
    req.payload = r.bytes();
    req.origin = r.u32();
    req.origin_seq = r.u64();
    req.sig = decode_sig(r);
    return req;
}

crypto::Digest Request::digest() const { return crypto::sha256(signing_bytes()); }

crypto::Digest Request::payload_digest() const { return crypto::sha256(payload); }

// ---- PrePrepare -------------------------------------------------------

crypto::Digest PrePrepare::batch_digest(const std::vector<Request>& requests) {
    if (requests.size() == 1) return requests.front().digest();
    codec::Writer w(8 + 32 * requests.size());
    w.str("ppb");
    w.varint(requests.size());
    for (const Request& req : requests) w.raw(req.digest());
    return crypto::sha256(w.take());
}

std::size_t PrePrepare::requests_bytes() const noexcept {
    std::size_t total = 0;
    for (const Request& req : requests) total += req.size_bytes();
    return total;
}

Bytes PrePrepare::signing_bytes() const {
    codec::Writer w(96);
    w.str("pp");
    w.u64(view);
    w.u64(seq);
    w.raw(req_digest);
    w.u32(primary);
    return w.take();
}

void PrePrepare::encode(codec::Writer& w) const {
    if (requests.size() == 1) {
        w.u8(1);
        encode_legacy(w);
    } else {
        w.u8(2);
        encode_batched(w);
    }
}

PrePrepare PrePrepare::decode(codec::Reader& r) {
    switch (r.u8()) {
        case 1: return decode_legacy(r);
        case 2: return decode_batched(r);
        default: throw codec::DecodeError("unknown preprepare format");
    }
}

void PrePrepare::encode_legacy(codec::Writer& w) const {
    w.u64(view);
    w.u64(seq);
    w.raw(req_digest);
    requests.front().encode(w);
    w.u32(primary);
    encode_sig(w, sig);
}

PrePrepare PrePrepare::decode_legacy(codec::Reader& r) {
    PrePrepare pp;
    pp.view = r.u64();
    pp.seq = r.u64();
    pp.req_digest = decode_digest(r);
    pp.requests.push_back(Request::decode(r));
    pp.primary = r.u32();
    pp.sig = decode_sig(r);
    return pp;
}

void PrePrepare::encode_batched(codec::Writer& w) const {
    w.u64(view);
    w.u64(seq);
    w.raw(req_digest);
    w.varint(requests.size());
    for (const Request& req : requests) req.encode(w);
    w.u32(primary);
    encode_sig(w, sig);
}

PrePrepare PrePrepare::decode_batched(codec::Reader& r) {
    PrePrepare pp;
    pp.view = r.u64();
    pp.seq = r.u64();
    pp.req_digest = decode_digest(r);
    const std::uint64_t count = r.varint();
    if (count == 0 || count > kMaxBatchRequests) throw codec::DecodeError("bad preprepare batch");
    pp.requests.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) pp.requests.push_back(Request::decode(r));
    pp.primary = r.u32();
    pp.sig = decode_sig(r);
    return pp;
}

// ---- Prepare / Commit -------------------------------------------------

Bytes Prepare::signing_bytes() const {
    codec::Writer w(96);
    w.str("p");
    w.u64(view);
    w.u64(seq);
    w.raw(req_digest);
    w.u32(replica);
    return w.take();
}

void Prepare::encode(codec::Writer& w) const {
    w.u64(view);
    w.u64(seq);
    w.raw(req_digest);
    w.u32(replica);
    encode_sig(w, sig);
}

Prepare Prepare::decode(codec::Reader& r) {
    Prepare p;
    p.view = r.u64();
    p.seq = r.u64();
    p.req_digest = decode_digest(r);
    p.replica = r.u32();
    p.sig = decode_sig(r);
    return p;
}

Bytes Commit::signing_bytes() const {
    codec::Writer w(96);
    w.str("c");
    w.u64(view);
    w.u64(seq);
    w.raw(req_digest);
    w.u32(replica);
    return w.take();
}

void Commit::encode(codec::Writer& w) const {
    w.u64(view);
    w.u64(seq);
    w.raw(req_digest);
    w.u32(replica);
    encode_sig(w, sig);
}

Commit Commit::decode(codec::Reader& r) {
    Commit c;
    c.view = r.u64();
    c.seq = r.u64();
    c.req_digest = decode_digest(r);
    c.replica = r.u32();
    c.sig = decode_sig(r);
    return c;
}

// ---- Checkpoint -------------------------------------------------------

Bytes Checkpoint::signing_bytes() const {
    codec::Writer w(64);
    w.str("ckpt");
    w.u64(seq);
    w.raw(state);
    w.u32(replica);
    return w.take();
}

void Checkpoint::encode(codec::Writer& w) const {
    w.u64(seq);
    w.raw(state);
    w.u32(replica);
    encode_sig(w, sig);
}

Checkpoint Checkpoint::decode(codec::Reader& r) {
    Checkpoint c;
    c.seq = r.u64();
    c.state = decode_digest(r);
    c.replica = r.u32();
    c.sig = decode_sig(r);
    return c;
}

void CheckpointProof::encode(codec::Writer& w) const {
    w.u64(seq);
    w.raw(state);
    w.varint(messages.size());
    for (const Checkpoint& c : messages) c.encode(w);
}

CheckpointProof CheckpointProof::decode(codec::Reader& r) {
    CheckpointProof proof;
    proof.seq = r.u64();
    proof.state = decode_digest(r);
    const std::uint64_t count = r.varint();
    if (count > kMaxProofMessages) throw codec::DecodeError("oversized checkpoint proof");
    proof.messages.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) proof.messages.push_back(Checkpoint::decode(r));
    return proof;
}

// ---- View change ------------------------------------------------------

void PreparedProof::encode(codec::Writer& w) const {
    preprepare.encode(w);
    w.varint(prepares.size());
    for (const Prepare& p : prepares) p.encode(w);
}

PreparedProof PreparedProof::decode(codec::Reader& r) {
    PreparedProof proof;
    proof.preprepare = PrePrepare::decode(r);
    const std::uint64_t count = r.varint();
    if (count > kMaxProofMessages) throw codec::DecodeError("oversized prepared proof");
    proof.prepares.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) proof.prepares.push_back(Prepare::decode(r));
    return proof;
}

Bytes ViewChange::signing_bytes() const {
    codec::Writer w(256);
    w.str("vc");
    w.u64(new_view);
    w.u64(last_stable);
    w.u8(stable_proof.has_value() ? 1 : 0);
    if (stable_proof) stable_proof->encode(w);
    w.varint(prepared.size());
    for (const PreparedProof& p : prepared) p.encode(w);
    w.u32(replica);
    return w.take();
}

void ViewChange::encode(codec::Writer& w) const {
    w.u64(new_view);
    w.u64(last_stable);
    w.u8(stable_proof.has_value() ? 1 : 0);
    if (stable_proof) stable_proof->encode(w);
    w.varint(prepared.size());
    for (const PreparedProof& p : prepared) p.encode(w);
    w.u32(replica);
    encode_sig(w, sig);
}

ViewChange ViewChange::decode(codec::Reader& r) {
    ViewChange vc;
    vc.new_view = r.u64();
    vc.last_stable = r.u64();
    if (r.u8() != 0) vc.stable_proof = CheckpointProof::decode(r);
    const std::uint64_t count = r.varint();
    if (count > kMaxPrepared) throw codec::DecodeError("oversized view change");
    vc.prepared.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) vc.prepared.push_back(PreparedProof::decode(r));
    vc.replica = r.u32();
    vc.sig = decode_sig(r);
    return vc;
}

Bytes NewView::signing_bytes() const {
    codec::Writer w(512);
    w.str("nv");
    w.u64(view);
    w.varint(view_changes.size());
    for (const ViewChange& vc : view_changes) vc.encode(w);
    w.varint(reproposals.size());
    for (const PrePrepare& pp : reproposals) pp.encode(w);
    w.u32(primary);
    return w.take();
}

void NewView::encode(codec::Writer& w) const {
    w.u64(view);
    w.varint(view_changes.size());
    for (const ViewChange& vc : view_changes) vc.encode(w);
    w.varint(reproposals.size());
    for (const PrePrepare& pp : reproposals) pp.encode(w);
    w.u32(primary);
    encode_sig(w, sig);
}

NewView NewView::decode(codec::Reader& r) {
    NewView nv;
    nv.view = r.u64();
    const std::uint64_t vcs = r.varint();
    if (vcs > kMaxProofMessages) throw codec::DecodeError("oversized new view");
    nv.view_changes.reserve(vcs);
    for (std::uint64_t i = 0; i < vcs; ++i) nv.view_changes.push_back(ViewChange::decode(r));
    const std::uint64_t pps = r.varint();
    if (pps > kMaxPrepared) throw codec::DecodeError("oversized new view reproposals");
    nv.reproposals.reserve(pps);
    for (std::uint64_t i = 0; i < pps; ++i) nv.reproposals.push_back(PrePrepare::decode(r));
    nv.primary = r.u32();
    nv.sig = decode_sig(r);
    return nv;
}

// ---- Transport framing ------------------------------------------------

namespace {

template <typename T>
constexpr std::uint8_t tag_of();
template <>
constexpr std::uint8_t tag_of<Request>() { return 1; }
template <>
constexpr std::uint8_t tag_of<PrePrepare>() { return 2; }
template <>
constexpr std::uint8_t tag_of<Prepare>() { return 3; }
template <>
constexpr std::uint8_t tag_of<Commit>() { return 4; }
template <>
constexpr std::uint8_t tag_of<Checkpoint>() { return 5; }
template <>
constexpr std::uint8_t tag_of<ViewChange>() { return 6; }
template <>
constexpr std::uint8_t tag_of<NewView>() { return 7; }

}  // namespace

Bytes encode_message(const Message& m) {
    codec::Writer w(128);
    std::visit(
        [&w](const auto& msg) {
            using T = std::decay_t<decltype(msg)>;
            if constexpr (std::is_same_v<T, PrePrepare>) {
                if (msg.requests.size() == 1) {
                    w.u8(tag_of<PrePrepare>());
                    msg.encode_legacy(w);
                } else {
                    w.u8(kBatchedPrePrepareTag);
                    msg.encode_batched(w);
                }
            } else {
                w.u8(tag_of<T>());
                msg.encode(w);
            }
        },
        m);
    return w.take();
}

std::optional<Message> decode_message(BytesView data) noexcept {
    try {
        codec::Reader r(data);
        const std::uint8_t tag = r.u8();
        Message m;
        switch (tag) {
            case 1: m = Request::decode(r); break;
            case 2: m = PrePrepare::decode_legacy(r); break;
            case 3: m = Prepare::decode(r); break;
            case 4: m = Commit::decode(r); break;
            case 5: m = Checkpoint::decode(r); break;
            case 6: m = ViewChange::decode(r); break;
            case 7: m = NewView::decode(r); break;
            case kBatchedPrePrepareTag: m = PrePrepare::decode_batched(r); break;
            default: return std::nullopt;
        }
        r.expect_done();
        return m;
    } catch (const codec::DecodeError&) {
        return std::nullopt;
    }
}

const char* message_name(const Message& m) noexcept {
    struct Visitor {
        const char* operator()(const Request&) { return "request"; }
        const char* operator()(const PrePrepare&) { return "preprepare"; }
        const char* operator()(const Prepare&) { return "prepare"; }
        const char* operator()(const Commit&) { return "commit"; }
        const char* operator()(const Checkpoint&) { return "checkpoint"; }
        const char* operator()(const ViewChange&) { return "viewchange"; }
        const char* operator()(const NewView&) { return "newview"; }
    };
    return std::visit(Visitor{}, m);
}

}  // namespace zc::pbft
