// PBFT replica state machine (Castro & Liskov), event-driven on virtual
// time. Implements the ordering (preprepare/prepare/commit), per-block
// checkpointing, and view-change subprotocols, and exposes the interface
// the paper's Tab. I requires from the BFT module:
//
//     down:  Propose(r)        -> propose()
//            Suspect(id)       -> suspect()
//     up:    Decide(r, sn)     -> Application::deliver()
//            NewPrimary        -> Application::new_primary()
//
// plus a preprepare indication upcall (the paper's optimization letting
// the ZugChain layer cancel soft timeouts when the primary's preprepare
// for a request is observed).
//
// The replica is transport-agnostic: it emits messages through Transport
// and is fed through on_message(); the runtime layer does (de)serialization
// and CPU accounting. All signatures go through crypto::CryptoContext and
// are therefore metered.
#pragma once

#include <deque>
#include <map>
#include <set>
#include <unordered_map>

#include "common/time.hpp"
#include "crypto/context.hpp"
#include "metrics/memory.hpp"
#include "pbft/messages.hpp"
#include "sim/simulation.hpp"
#include "trace/trace.hpp"

namespace zc::pbft {

/// Outbound message sink, implemented by the node runtime.
class Transport {
public:
    virtual ~Transport() = default;
    virtual void send(NodeId to, const Message& m) = 0;
    /// Sends to every replica except the local one.
    virtual void broadcast(const Message& m) = 0;
};

/// Upcalls into the replicated application (the blockchain layer).
class Application {
public:
    virtual ~Application() = default;

    /// Totally ordered request (the DECIDE upcall). Called in strict seq
    /// order; null requests (view-change gap fillers) are delivered too and
    /// must be skipped content-wise by the application.
    virtual void deliver(const Request& request, SeqNo seq) = 0;

    /// Application state digest after executing `seq` (the chain head hash
    /// once the block for this checkpoint window has been built).
    virtual crypto::Digest state_digest(SeqNo seq) = 0;

    /// A view change completed; `primary` leads `view`.
    virtual void new_primary(View view, NodeId primary) = 0;

    /// A checkpoint became stable (2f+1 signatures collected).
    virtual void stable_checkpoint(SeqNo seq, const CheckpointProof& proof) { (void)seq; (void)proof; }

    /// The primary's preprepare for `request` was accepted (optimization
    /// hook for the ZugChain layer's soft timers).
    virtual void preprepared(const Request& request) { (void)request; }

    /// The replica is behind a stable checkpoint at `seq` with app state
    /// `state` and cannot catch up by ordering alone; the application must
    /// perform state transfer (fetch blocks from peers, paper §III-D
    /// discussion (ii)) and then consider `seq` executed.
    virtual void sync_state(SeqNo seq, const crypto::Digest& state) { (void)seq; (void)state; }
};

struct ReplicaConfig {
    NodeId id = 0;
    std::uint32_t n = 4;
    std::uint32_t f = 1;

    /// Checkpoint every this many sequence numbers (= the block size).
    SeqNo checkpoint_interval = 10;

    /// High watermark = last stable + window.
    SeqNo watermark_window = 200;

    /// Baseline mode: a backup receiving a forwarded Request starts this
    /// timer and suspects the primary on expiry. Zero disables (ZugChain
    /// supplies its own soft/hard timers in the communication layer).
    Duration request_timeout{0};

    /// Batch ordering: the primary accumulates proposals into an open
    /// batch and runs one three-phase instance per batch. A batch is
    /// flushed when it reaches `max_batch_requests` requests or
    /// `max_batch_bytes` of payload, or when `batch_linger` elapses after
    /// the first request entered the batch. The default of 1 preserves the
    /// classic request-per-instance pipeline (and schedules no linger
    /// events, keeping same-seed runs byte-identical to it).
    std::uint32_t max_batch_requests = 1;
    std::size_t max_batch_bytes = 128 * 1024;
    Duration batch_linger{0};

    /// Bound on the primary's watermark-blocked proposal queue; overflow
    /// is dropped (and counted) instead of growing without limit while
    /// checkpoints stall.
    std::size_t max_pending = 4096;

    /// Retry cadence: after broadcasting a view change, escalate to the
    /// next view if no new view arrives in time.
    Duration view_change_timeout{milliseconds(2000)};

    /// Honest primaries refuse to assign a second sequence number to a
    /// request digest that is in flight or recently decided. Disabled when
    /// simulating a faulty primary that proposes duplicates.
    bool dedup_proposals = true;

    /// How many stable checkpoint proofs to retain for the export protocol.
    std::size_t proof_retention = 64;

    /// Restart support: a recovering replica rejoins in the view the
    /// cluster is believed to run (hint from the harness) with its
    /// execution/stable watermark at the durable chain's head (so peer
    /// checkpoints beyond it trigger state transfer instead of being
    /// mistaken for stale duplicates).
    View start_view = 0;
    SeqNo start_seq = 0;
};

/// Counters exposed for tests and benchmarks.
struct ReplicaStats {
    std::uint64_t proposals = 0;
    std::uint64_t preprepares_sent = 0;
    std::uint64_t prepares_sent = 0;
    std::uint64_t commits_sent = 0;
    std::uint64_t decided = 0;
    std::uint64_t checkpoints_stable = 0;
    std::uint64_t view_changes_started = 0;
    std::uint64_t new_views_installed = 0;
    std::uint64_t invalid_messages = 0;
    std::uint64_t duplicate_proposals_blocked = 0;
    std::uint64_t batches_proposed = 0;   ///< preprepares sent by this primary
    std::uint64_t batched_requests = 0;   ///< requests inside those batches
    std::uint64_t pending_dropped = 0;    ///< overflow of the bounded pending queue
    std::uint64_t pending_rerouted = 0;   ///< stranded requests forwarded to a new primary
};

class Replica {
public:
    Replica(ReplicaConfig config, sim::Simulation& sim, crypto::CryptoContext& crypto,
            Transport& transport, Application& app, metrics::Gauge* log_gauge = nullptr);

    /// Cancels pending virtual-time timers and releases the message-log
    /// gauge accounting, so a replica can be torn down mid-run (node
    /// crash/restart) without leaving events that fire into freed memory.
    ~Replica();

    // -- downcalls (Tab. I, interface 1) --------------------------------

    /// Proposes a request for total ordering. On the primary, assigns a
    /// sequence number and broadcasts the preprepare (or queues it until
    /// the watermark window opens). On a backup, forwards the request to
    /// the primary and, if `request_timeout` is enabled, starts a timer
    /// whose expiry suspects the primary. Returns false if dropped
    /// (duplicate or mid view change).
    bool propose(const Request& request);

    /// Local suspicion of the current primary: initiate a view change.
    void suspect();

    /// Feeds a received protocol message (after transport-level decode).
    void on_message(NodeId from, const Message& m);

    /// Cancels every pending virtual-time timer (view change, batch
    /// linger, baseline request timers). The node runtime calls this when
    /// the node crashes: the replica object outlives the crash in the
    /// harness, and a stale request timer firing after rejoin would
    /// suspect a primary that was never slow.
    void cancel_timers();

    /// Attaches a request-lifecycle trace sink (null = tracing off).
    void set_trace(trace::TraceSink* sink) noexcept { trace_ = sink; }

    // -- observers -------------------------------------------------------

    View view() const noexcept { return view_; }
    NodeId primary() const noexcept { return primary_of(view_); }
    NodeId primary_of(View v) const noexcept { return static_cast<NodeId>(v % config_.n); }
    bool is_primary() const noexcept { return primary() == config_.id && !in_view_change_; }
    bool in_view_change() const noexcept { return in_view_change_; }
    SeqNo last_executed() const noexcept { return last_exec_; }
    SeqNo last_stable() const noexcept { return last_stable_; }
    const ReplicaStats& stats() const noexcept { return stats_; }

    /// Latest stable checkpoint proof, or nullptr before the first one.
    const CheckpointProof* latest_stable_proof() const;

    /// Proof for a specific checkpoint seq if retained.
    const CheckpointProof* stable_proof(SeqNo seq) const;

    /// True if `digest` is a currently in-flight or recently decided
    /// request digest (PBFT-level dedup state; exposed for tests).
    bool knows_request(const crypto::Digest& digest) const;

    /// Requests preprepared but not yet executed (running instances).
    std::vector<Request> inflight_requests() const;

    /// Watermark-blocked proposals queued on this (primary) replica.
    std::size_t pending_size() const noexcept { return pending_.size(); }

    /// Requests accumulated in the primary's open (unflushed) batch.
    std::size_t open_batch_size() const noexcept { return open_batch_.size(); }

private:
    struct Slot {
        std::optional<PrePrepare> preprepare;
        std::map<NodeId, Prepare> prepares;
        std::map<NodeId, Commit> commits;
        bool commit_sent = false;
        bool executed = false;
        std::size_t bytes = 0;
    };

    // message handlers
    void handle(NodeId from, const Request& r);
    void handle(NodeId from, const PrePrepare& pp);
    void handle(NodeId from, const Prepare& p);
    void handle(NodeId from, const Commit& c);
    void handle(NodeId from, const Checkpoint& c);
    void handle(NodeId from, const ViewChange& vc);
    void handle(NodeId from, const NewView& nv);

    // ordering
    bool assign_and_propose(const Request& request);
    void flush_batch();
    void queue_pending(Request request);
    void drain_pending();
    void accept_preprepare(const PrePrepare& pp);
    void maybe_prepared(SeqNo seq);
    void maybe_committed(SeqNo seq);
    void execute_ready();
    void execute(SeqNo seq, const std::vector<Request>& requests);

    // baseline request timers
    sim::EventId schedule_request_timer(const crypto::Digest& digest);
    void arm_request_timer(const Request& request);

    /// After a new view installs: hand stranded work to the new primary
    /// (or assign it ourselves if we are the new primary) and re-arm the
    /// surviving request timers against the new view.
    void reroute_after_view_change();

    // checkpoints
    void emit_checkpoint(SeqNo seq);
    void store_checkpoint(const Checkpoint& c);
    void make_stable(SeqNo seq, const crypto::Digest& state);
    void garbage_collect(SeqNo stable_seq);

    // view change
    void start_view_change(View target);
    ViewChange build_view_change(View target);
    bool validate_view_change(const ViewChange& vc);
    bool validate_prepared_proof(const PreparedProof& proof);
    bool validate_checkpoint_proof(const CheckpointProof& proof);
    void maybe_assemble_new_view(View target);
    std::vector<PrePrepare> compute_reproposals(View v,
                                                const std::vector<ViewChange>& vcs,
                                                SeqNo& min_s_out, SeqNo& max_s_out,
                                                bool sign_them);
    void enter_view(View v);
    void install_reproposals(const std::vector<PrePrepare>& reproposals);
    void arm_view_change_timer(View target);

    bool in_watermarks(SeqNo seq) const noexcept;
    Slot& slot(SeqNo seq);

    /// Request-phase trace point; hashes the payload only when tracing.
    void trace_request(trace::Phase phase, const Request& request, std::uint64_t arg = 0) {
        if (trace_ != nullptr && !request.is_null()) {
            trace_->event(config_.id, sim_.now(), phase,
                          trace::trace_id_from(request.payload_digest().data()), arg);
        }
    }
    void trace_point(trace::Phase phase, std::uint64_t id, std::uint64_t arg = 0) {
        if (trace_ != nullptr) trace_->event(config_.id, sim_.now(), phase, id, arg);
    }
    void account_slot_bytes(Slot& s, std::size_t bytes);
    std::uint32_t quorum() const noexcept { return 2 * config_.f + 1; }

    ReplicaConfig config_;
    sim::Simulation& sim_;
    crypto::CryptoContext& crypto_;
    Transport& transport_;
    Application& app_;
    metrics::Gauge* log_gauge_;
    trace::TraceSink* trace_ = nullptr;

    View view_ = 0;
    bool in_view_change_ = false;
    View vc_target_ = 0;
    SeqNo next_seq_ = 1;       // next seq the primary assigns
    SeqNo last_exec_ = 0;
    SeqNo last_stable_ = 0;

    std::map<SeqNo, Slot> log_;

    // PBFT-level request dedup: full-request digests in flight or decided.
    std::unordered_map<crypto::Digest, SeqNo, crypto::DigestHash> known_requests_;

    std::deque<Request> pending_;  // watermark-blocked proposals (primary, bounded)

    // Primary's open batch: requests accumulated since the last flush,
    // with their digests (same order) for intra-batch dedup.
    std::vector<Request> open_batch_;
    std::vector<crypto::Digest> open_batch_digests_;
    std::size_t open_batch_bytes_ = 0;
    sim::EventId batch_timer_ = sim::kInvalidEvent;

    // checkpoints: seq -> state digest -> replica -> message
    std::map<SeqNo, std::map<crypto::Digest, std::map<NodeId, Checkpoint>>> checkpoints_;
    std::map<SeqNo, crypto::Digest> own_checkpoint_digest_;
    std::map<SeqNo, CheckpointProof> stable_proofs_;

    // view change state: target view -> replica -> message
    std::map<View, std::map<NodeId, ViewChange>> view_changes_;
    sim::EventId vc_timer_ = sim::kInvalidEvent;
    std::uint32_t vc_attempts_ = 0;  // consecutive unsuccessful attempts (backoff)

    // Baseline request timers. The request itself is retained so a backup
    // can re-forward it to the next primary after a view change, and the
    // arming view keeps a stale timer from indicting a newer view's
    // primary.
    struct ForwardedRequest {
        sim::EventId timer = sim::kInvalidEvent;
        View armed_view = 0;
        Request request;
    };
    std::unordered_map<crypto::Digest, ForwardedRequest, crypto::DigestHash> request_timers_;

    ReplicaStats stats_;
};

}  // namespace zc::pbft
