#include "pbft/replica.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace zc::pbft {

namespace {
constexpr std::size_t kPhaseMsgBytes = 104;  // prepare/commit wire footprint
}

Replica::Replica(ReplicaConfig config, sim::Simulation& sim, crypto::CryptoContext& crypto,
                 Transport& transport, Application& app, metrics::Gauge* log_gauge)
    : config_(config), sim_(sim), crypto_(crypto), transport_(transport), app_(app),
      log_gauge_(log_gauge),
      view_(config.start_view),
      next_seq_(config.start_seq + 1),
      last_exec_(config.start_seq),
      last_stable_(config.start_seq) {}

Replica::~Replica() {
    cancel_timers();
    if (log_gauge_ != nullptr) {
        for (const auto& [seq, s] : log_)
            log_gauge_->add(-static_cast<std::int64_t>(s.bytes));
    }
}

// ---- public downcalls --------------------------------------------------

bool Replica::propose(const Request& request) {
    stats_.proposals += 1;
    if (in_view_change_) return false;
    if (primary() == config_.id) return assign_and_propose(request);

    // Not the primary: forward and optionally arm the baseline timer.
    transport_.send(primary(), Message{request});
    if (config_.request_timeout > Duration::zero()) {
        const crypto::Digest digest = request.digest();
        if (!request_timers_.contains(digest) && !known_requests_.contains(digest)) {
            arm_request_timer(request);
        }
    }
    return true;
}

void Replica::cancel_timers() {
    if (vc_timer_ != sim::kInvalidEvent) {
        sim_.cancel(vc_timer_);
        vc_timer_ = sim::kInvalidEvent;
    }
    if (batch_timer_ != sim::kInvalidEvent) {
        sim_.cancel(batch_timer_);
        batch_timer_ = sim::kInvalidEvent;
    }
    for (auto& [digest, fwd] : request_timers_) sim_.cancel(fwd.timer);
    request_timers_.clear();
}

sim::EventId Replica::schedule_request_timer(const crypto::Digest& digest) {
    const View armed = view_;
    return sim_.schedule(config_.request_timeout, [this, digest, armed] {
        request_timers_.erase(digest);
        // A timer armed under an earlier view must not indict the new
        // view's primary: the new-view reroute re-arms live entries, so a
        // firing with a stale view is left to its re-armed successor.
        if (view_ != armed) return;
        if (!knows_request(digest)) suspect();
    });
}

void Replica::arm_request_timer(const Request& request) {
    const crypto::Digest digest = request.digest();
    ForwardedRequest fwd;
    fwd.armed_view = view_;
    fwd.request = request;
    fwd.timer = schedule_request_timer(digest);
    request_timers_[digest] = std::move(fwd);
}

void Replica::suspect() {
    if (in_view_change_) return;  // escalation is timer-driven
    start_view_change(view_ + 1);
}

void Replica::on_message(NodeId from, const Message& m) {
    std::visit([this, from](const auto& msg) { handle(from, msg); }, m);
}

const CheckpointProof* Replica::latest_stable_proof() const {
    if (stable_proofs_.empty()) return nullptr;
    return &stable_proofs_.rbegin()->second;
}

const CheckpointProof* Replica::stable_proof(SeqNo seq) const {
    const auto it = stable_proofs_.find(seq);
    return it == stable_proofs_.end() ? nullptr : &it->second;
}

bool Replica::knows_request(const crypto::Digest& digest) const {
    return known_requests_.contains(digest);
}

std::vector<Request> Replica::inflight_requests() const {
    std::vector<Request> out;
    for (const auto& [seq, s] : log_) {
        if (seq <= last_exec_ || s.executed || !s.preprepare) continue;
        for (const Request& r : s.preprepare->requests) {
            if (!r.is_null()) out.push_back(r);
        }
    }
    return out;
}

// ---- ordering ----------------------------------------------------------

bool Replica::in_watermarks(SeqNo seq) const noexcept {
    return seq > last_stable_ && seq <= last_stable_ + config_.watermark_window;
}

Replica::Slot& Replica::slot(SeqNo seq) { return log_[seq]; }

void Replica::account_slot_bytes(Slot& s, std::size_t bytes) {
    s.bytes += bytes;
    if (log_gauge_) log_gauge_->add(static_cast<std::int64_t>(bytes));
}

bool Replica::assign_and_propose(const Request& request) {
    const crypto::Digest digest = request.digest();
    if (config_.dedup_proposals && known_requests_.contains(digest)) {
        stats_.duplicate_proposals_blocked += 1;
        return false;
    }
    if (std::find(open_batch_digests_.begin(), open_batch_digests_.end(), digest) !=
        open_batch_digests_.end()) {
        stats_.duplicate_proposals_blocked += 1;
        return false;
    }

    open_batch_.push_back(request);
    open_batch_digests_.push_back(digest);
    open_batch_bytes_ += request.size_bytes();

    // Flush on a full batch, or immediately when lingering is off (the
    // single-request default takes this path, so no linger events are
    // ever scheduled there). Otherwise hold the batch open until the
    // linger timer armed by its first request expires.
    if (open_batch_.size() >= config_.max_batch_requests ||
        open_batch_bytes_ >= config_.max_batch_bytes ||
        config_.batch_linger == Duration::zero()) {
        flush_batch();
    } else if (batch_timer_ == sim::kInvalidEvent) {
        batch_timer_ = sim_.schedule(config_.batch_linger, [this] {
            batch_timer_ = sim::kInvalidEvent;
            flush_batch();
        });
    }
    return true;
}

void Replica::flush_batch() {
    if (batch_timer_ != sim::kInvalidEvent) {
        sim_.cancel(batch_timer_);
        batch_timer_ = sim::kInvalidEvent;
    }
    if (open_batch_.empty()) return;
    if (!in_watermarks(next_seq_)) {
        // Queued until the window advances (checkpoint progress) or a
        // view change reroutes the queue.
        for (Request& r : open_batch_) queue_pending(std::move(r));
        open_batch_.clear();
        open_batch_digests_.clear();
        open_batch_bytes_ = 0;
        return;
    }

    const SeqNo seq = next_seq_++;
    PrePrepare pp;
    pp.view = view_;
    pp.seq = seq;
    pp.requests = std::move(open_batch_);
    pp.req_digest = PrePrepare::batch_digest(pp.requests);
    pp.primary = config_.id;
    pp.sig = crypto_.sign(pp.signing_bytes());
    open_batch_.clear();
    open_batch_digests_.clear();
    open_batch_bytes_ = 0;

    Slot& s = slot(seq);
    account_slot_bytes(s, pp.requests_bytes() + 96);
    for (const Request& r : pp.requests) known_requests_[r.digest()] = seq;
    stats_.preprepares_sent += 1;
    stats_.batches_proposed += 1;
    stats_.batched_requests += pp.requests.size();
    if (config_.max_batch_requests > 1) {
        trace_point(trace::Phase::kBatchProposed, seq, pp.requests.size());
    }
    s.preprepare = std::move(pp);
    transport_.broadcast(Message{*s.preprepare});
}

void Replica::queue_pending(Request request) {
    if (pending_.size() >= config_.max_pending) {
        stats_.pending_dropped += 1;
        return;
    }
    pending_.push_back(std::move(request));
}

void Replica::drain_pending() {
    while (!pending_.empty() && is_primary() && in_watermarks(next_seq_)) {
        Request r = std::move(pending_.front());
        pending_.pop_front();
        assign_and_propose(r);
    }
}

void Replica::handle(NodeId from, const Request& r) {
    if (!r.is_null() && !crypto_.verify(r.origin, r.signing_bytes(), r.sig)) {
        stats_.invalid_messages += 1;
        return;
    }
    if (r.is_null()) return;  // null requests only appear inside new-view

    if (is_primary()) {
        assign_and_propose(r);
        return;
    }

    // Backup: forward to the primary once per view (the new-view reroute
    // re-forwards undelivered requests); optionally time the primary.
    const crypto::Digest digest = r.digest();
    if (known_requests_.contains(digest) || request_timers_.contains(digest)) return;
    (void)from;
    transport_.send(primary(), Message{r});
    if (config_.request_timeout > Duration::zero()) arm_request_timer(r);
}

void Replica::handle(NodeId from, const PrePrepare& pp) {
    if (in_view_change_ || pp.view != view_) return;
    if (pp.primary != primary_of(pp.view) || from != pp.primary) {
        stats_.invalid_messages += 1;
        return;
    }
    if (pp.seq <= last_exec_ || !in_watermarks(pp.seq)) return;

    if (pp.requests.empty() || pp.req_digest != PrePrepare::batch_digest(pp.requests)) {
        stats_.invalid_messages += 1;
        return;
    }
    if (!crypto_.verify(pp.primary, pp.signing_bytes(), pp.sig)) {
        stats_.invalid_messages += 1;
        return;
    }
    std::vector<crypto::Digest> digests;
    digests.reserve(pp.requests.size());
    for (const Request& r : pp.requests) digests.push_back(r.digest());
    for (std::size_t i = 0; i < pp.requests.size(); ++i) {
        const Request& r = pp.requests[i];
        if (r.is_null()) {
            // The view-change gap filler only ever travels alone.
            if (pp.requests.size() > 1) {
                stats_.invalid_messages += 1;
                return;
            }
            continue;
        }
        for (std::size_t j = 0; j < i; ++j) {
            if (digests[j] == digests[i]) {
                stats_.invalid_messages += 1;
                return;
            }
        }
        if (!crypto_.verify(r.origin, r.signing_bytes(), r.sig)) {
            stats_.invalid_messages += 1;
            return;
        }
    }

    accept_preprepare(pp);
}

void Replica::accept_preprepare(const PrePrepare& pp) {
    Slot& s = slot(pp.seq);
    if (s.preprepare) {
        if (s.preprepare->req_digest != pp.req_digest) {
            // Equivocation by the primary: two requests for one seq.
            ZC_WARN("pbft", "replica {} sees equivocating preprepare at seq {}", config_.id,
                    pp.seq);
            suspect();
        }
        return;
    }
    s.preprepare = pp;
    account_slot_bytes(s, pp.requests_bytes() + 96);
    for (const Request& r : pp.requests) {
        if (!r.is_null()) known_requests_[r.digest()] = pp.seq;
        trace_request(trace::Phase::kPrePrepare, r, pp.seq);
        app_.preprepared(r);
    }

    if (primary_of(view_) != config_.id) {
        Prepare p;
        p.view = pp.view;
        p.seq = pp.seq;
        p.req_digest = pp.req_digest;
        p.replica = config_.id;
        p.sig = crypto_.sign(p.signing_bytes());
        s.prepares[config_.id] = p;
        account_slot_bytes(s, kPhaseMsgBytes);
        stats_.prepares_sent += 1;
        transport_.broadcast(Message{p});
    }
    maybe_prepared(pp.seq);
}

void Replica::handle(NodeId from, const Prepare& p) {
    if (in_view_change_ || p.view != view_) return;
    if (p.replica != from || p.replica == primary_of(p.view)) {
        stats_.invalid_messages += 1;
        return;
    }
    if (p.seq <= last_exec_ || !in_watermarks(p.seq)) return;
    if (!crypto_.verify(p.replica, p.signing_bytes(), p.sig)) {
        stats_.invalid_messages += 1;
        return;
    }
    Slot& s = slot(p.seq);
    if (s.prepares.contains(p.replica)) return;
    s.prepares[p.replica] = p;
    account_slot_bytes(s, kPhaseMsgBytes);
    maybe_prepared(p.seq);
}

void Replica::maybe_prepared(SeqNo seq) {
    Slot& s = slot(seq);
    if (!s.preprepare || s.commit_sent) return;
    std::uint32_t matching = 0;
    for (const auto& [id, p] : s.prepares) {
        if (p.req_digest == s.preprepare->req_digest && p.view == s.preprepare->view) ++matching;
    }
    if (matching < 2 * config_.f) return;

    s.commit_sent = true;
    for (const Request& r : s.preprepare->requests) trace_request(trace::Phase::kPrepared, r, seq);
    Commit c;
    c.view = s.preprepare->view;
    c.seq = seq;
    c.req_digest = s.preprepare->req_digest;
    c.replica = config_.id;
    c.sig = crypto_.sign(c.signing_bytes());
    s.commits[config_.id] = c;
    account_slot_bytes(s, kPhaseMsgBytes);
    stats_.commits_sent += 1;
    transport_.broadcast(Message{c});
    maybe_committed(seq);
}

void Replica::handle(NodeId from, const Commit& c) {
    if (in_view_change_ || c.view != view_) return;
    if (c.replica != from) {
        stats_.invalid_messages += 1;
        return;
    }
    if (c.seq <= last_exec_ || !in_watermarks(c.seq)) return;
    if (!crypto_.verify(c.replica, c.signing_bytes(), c.sig)) {
        stats_.invalid_messages += 1;
        return;
    }
    Slot& s = slot(c.seq);
    if (s.commits.contains(c.replica)) return;
    s.commits[c.replica] = c;
    account_slot_bytes(s, kPhaseMsgBytes);
    maybe_committed(c.seq);
}

void Replica::maybe_committed(SeqNo seq) {
    Slot& s = slot(seq);
    if (!s.preprepare || !s.commit_sent || s.executed) return;
    std::uint32_t matching = 0;
    for (const auto& [id, c] : s.commits) {
        if (c.req_digest == s.preprepare->req_digest) ++matching;
    }
    if (matching < quorum()) return;
    execute_ready();
}

void Replica::execute_ready() {
    for (;;) {
        const auto it = log_.find(last_exec_ + 1);
        if (it == log_.end()) return;
        Slot& s = it->second;
        if (!s.preprepare || !s.commit_sent || s.executed) return;
        std::uint32_t matching = 0;
        for (const auto& [id, c] : s.commits) {
            if (c.req_digest == s.preprepare->req_digest) ++matching;
        }
        if (matching < quorum()) return;
        s.executed = true;
        execute(it->first, s.preprepare->requests);
    }
}

void Replica::execute(SeqNo seq, const std::vector<Request>& requests) {
    last_exec_ = seq;
    stats_.decided += 1;

    for (const Request& request : requests) {
        trace_request(trace::Phase::kDecide, request, seq);

        if (!request.is_null()) {
            const auto timer = request_timers_.find(request.digest());
            if (timer != request_timers_.end()) {
                sim_.cancel(timer->second.timer);
                request_timers_.erase(timer);
            }
        }

        app_.deliver(request, seq);
    }

    if (seq % config_.checkpoint_interval == 0) emit_checkpoint(seq);
}

// ---- checkpoints -------------------------------------------------------

void Replica::emit_checkpoint(SeqNo seq) {
    Checkpoint c;
    c.seq = seq;
    c.state = app_.state_digest(seq);
    c.replica = config_.id;
    c.sig = crypto_.sign(c.signing_bytes());
    own_checkpoint_digest_[seq] = c.state;
    store_checkpoint(c);
    transport_.broadcast(Message{c});
}

void Replica::handle(NodeId from, const Checkpoint& c) {
    if (c.replica != from) {
        stats_.invalid_messages += 1;
        return;
    }
    if (c.seq <= last_stable_) return;
    if (c.seq % config_.checkpoint_interval != 0) {
        // Checkpoints exist only at interval boundaries; an off-interval
        // seq is fabricated and must not seed a (phantom) quorum.
        stats_.invalid_messages += 1;
        return;
    }
    if (!crypto_.verify(c.replica, c.signing_bytes(), c.sig)) {
        stats_.invalid_messages += 1;
        return;
    }
    store_checkpoint(c);
}

void Replica::store_checkpoint(const Checkpoint& c) {
    auto& by_replica = checkpoints_[c.seq][c.state];
    by_replica[c.replica] = c;
    if (by_replica.size() >= quorum()) make_stable(c.seq, c.state);
}

void Replica::make_stable(SeqNo seq, const crypto::Digest& state) {
    if (stable_proofs_.contains(seq)) return;

    CheckpointProof proof;
    proof.seq = seq;
    proof.state = state;
    for (const auto& [id, msg] : checkpoints_[seq][state]) proof.messages.push_back(msg);
    stable_proofs_[seq] = std::move(proof);
    while (stable_proofs_.size() > config_.proof_retention) {
        stable_proofs_.erase(stable_proofs_.begin());
    }
    stats_.checkpoints_stable += 1;
    trace_point(trace::Phase::kCheckpointStable, seq, seq);

    if (seq > last_stable_) {
        last_stable_ = seq;

        if (seq > last_exec_) {
            // We are behind the quorum: state-transfer instead of replay.
            app_.sync_state(seq, state);
            for (auto it = log_.begin(); it != log_.end() && it->first <= seq; ++it) {
                it->second.executed = true;
            }
            last_exec_ = seq;
            // A 2f+1 checkpoint beyond our execution point proves the
            // cluster is ordering without us, so any view change we
            // started was lag-induced suspicion, not a faulty primary.
            // Abort it — nobody else will vote for it, and staying in
            // view-change mode blocks every ordering message (a
            // restarted replica would otherwise never rejoin). A real
            // primary fault will re-trigger suspicion after catch-up.
            if (in_view_change_) {
                in_view_change_ = false;
                vc_attempts_ = 0;
                if (vc_timer_ != sim::kInvalidEvent) {
                    sim_.cancel(vc_timer_);
                    vc_timer_ = sim::kInvalidEvent;
                }
            }
            // Successor slots may already hold commit quorums collected
            // while we lagged; no further commit will arrive to trigger
            // them, so drain here.
            execute_ready();
        }
        garbage_collect(seq);
        app_.stable_checkpoint(seq, stable_proofs_[seq]);
        if (primary() == config_.id && next_seq_ <= seq) next_seq_ = seq + 1;
        drain_pending();
    }
}

void Replica::garbage_collect(SeqNo stable_seq) {
    for (auto it = log_.begin(); it != log_.end() && it->first <= stable_seq;) {
        if (log_gauge_) log_gauge_->add(-static_cast<std::int64_t>(it->second.bytes));
        it = log_.erase(it);
    }
    for (auto it = checkpoints_.begin();
         it != checkpoints_.end() && it->first <= stable_seq;) {
        it = checkpoints_.erase(it);
    }
    // Dedup digests: retain one extra watermark window so late client
    // retransmissions of decided requests are still recognized.
    const SeqNo horizon =
        stable_seq > config_.watermark_window ? stable_seq - config_.watermark_window : 0;
    std::erase_if(known_requests_, [horizon](const auto& kv) { return kv.second <= horizon; });
}

// ---- view change -------------------------------------------------------

void Replica::start_view_change(View target) {
    if (target <= view_) return;
    in_view_change_ = true;
    vc_target_ = target;
    stats_.view_changes_started += 1;
    trace_point(trace::Phase::kViewChangeStart, target, target);
    if (vc_timer_ != sim::kInvalidEvent) sim_.cancel(vc_timer_);

    ViewChange vc = build_view_change(target);
    view_changes_[target][config_.id] = vc;
    transport_.broadcast(Message{vc});
    arm_view_change_timer(target);
    maybe_assemble_new_view(target);
}

ViewChange Replica::build_view_change(View target) {
    ViewChange vc;
    vc.new_view = target;
    vc.last_stable = last_stable_;
    if (last_stable_ > 0) {
        const CheckpointProof* proof = stable_proof(last_stable_);
        if (proof != nullptr) vc.stable_proof = *proof;
    }
    for (const auto& [seq, s] : log_) {
        if (seq <= last_stable_ || !s.preprepare) continue;
        std::vector<Prepare> matching;
        for (const auto& [id, p] : s.prepares) {
            if (p.req_digest == s.preprepare->req_digest) matching.push_back(p);
        }
        if (matching.size() < 2 * config_.f) continue;
        matching.resize(2 * config_.f);
        vc.prepared.push_back(PreparedProof{*s.preprepare, std::move(matching)});
    }
    vc.replica = config_.id;
    vc.sig = crypto_.sign(vc.signing_bytes());
    return vc;
}

bool Replica::validate_checkpoint_proof(const CheckpointProof& proof) {
    // Bound the work a forged proof can demand: more signatures than
    // replicas is impossible for an honest proof.
    if (proof.messages.size() > config_.n) return false;
    std::set<NodeId> signers;
    for (const Checkpoint& c : proof.messages) {
        if (c.seq != proof.seq || c.state != proof.state) return false;
        if (!crypto_.verify(c.replica, c.signing_bytes(), c.sig)) return false;
        signers.insert(c.replica);
    }
    return signers.size() >= quorum();
}

bool Replica::validate_prepared_proof(const PreparedProof& proof) {
    if (proof.prepares.size() > config_.n) return false;
    const PrePrepare& pp = proof.preprepare;
    if (pp.primary != primary_of(pp.view)) return false;
    if (pp.requests.empty()) return false;
    if (pp.req_digest != PrePrepare::batch_digest(pp.requests)) return false;
    if (!crypto_.verify(pp.primary, pp.signing_bytes(), pp.sig)) return false;

    std::set<NodeId> signers;
    for (const Prepare& p : proof.prepares) {
        if (p.view != pp.view || p.seq != pp.seq || p.req_digest != pp.req_digest) return false;
        if (p.replica == pp.primary) return false;
        if (!crypto_.verify(p.replica, p.signing_bytes(), p.sig)) return false;
        signers.insert(p.replica);
    }
    return signers.size() >= 2 * config_.f;
}

bool Replica::validate_view_change(const ViewChange& vc) {
    if (!crypto_.verify(vc.replica, vc.signing_bytes(), vc.sig)) return false;
    if (vc.last_stable > 0) {
        if (!vc.stable_proof) return false;
        if (vc.stable_proof->seq != vc.last_stable) return false;
        if (!validate_checkpoint_proof(*vc.stable_proof)) return false;
    }
    for (const PreparedProof& proof : vc.prepared) {
        if (proof.preprepare.seq <= vc.last_stable) return false;
        if (proof.preprepare.view >= vc.new_view) return false;
        if (!validate_prepared_proof(proof)) return false;
    }
    return true;
}

void Replica::handle(NodeId from, const ViewChange& vc) {
    if (vc.replica != from || vc.new_view <= view_) return;
    // find(), not operator[]: the lookup must not create a phantom entry
    // for a view we have never validated a message for.
    if (auto it = view_changes_.find(vc.new_view);
        it != view_changes_.end() && it->second.contains(vc.replica)) {
        return;
    }
    if (!validate_view_change(vc)) {
        stats_.invalid_messages += 1;
        return;
    }
    view_changes_[vc.new_view][vc.replica] = vc;

    // Liveness joining: f+1 distinct replicas claiming views above ours.
    const View floor = in_view_change_ ? vc_target_ : view_;
    std::map<View, std::set<NodeId>> senders_above;
    for (const auto& [v, by_replica] : view_changes_) {
        if (v <= floor) continue;
        for (const auto& [id, msg] : by_replica) senders_above[v].insert(id);
    }
    std::set<NodeId> all_senders;
    View smallest_above = 0;
    for (const auto& [v, senders] : senders_above) {
        for (NodeId id : senders) all_senders.insert(id);
        if (smallest_above == 0) smallest_above = v;
    }
    if (all_senders.size() >= config_.f + 1 && smallest_above > floor) {
        start_view_change(smallest_above);
    }

    maybe_assemble_new_view(vc.new_view);
}

std::vector<PrePrepare> Replica::compute_reproposals(View v, const std::vector<ViewChange>& vcs,
                                                     SeqNo& min_s_out, SeqNo& max_s_out,
                                                     bool sign_them) {
    SeqNo min_s = 0, max_s = 0;
    for (const ViewChange& vc : vcs) {
        min_s = std::max(min_s, vc.last_stable);
        for (const PreparedProof& p : vc.prepared) max_s = std::max(max_s, p.preprepare.seq);
    }
    max_s = std::max(max_s, min_s);
    min_s_out = min_s;
    max_s_out = max_s;

    std::vector<PrePrepare> out;
    for (SeqNo seq = min_s + 1; seq <= max_s; ++seq) {
        const PreparedProof* best = nullptr;
        for (const ViewChange& vc : vcs) {
            for (const PreparedProof& p : vc.prepared) {
                if (p.preprepare.seq != seq) continue;
                if (best == nullptr || p.preprepare.view > best->preprepare.view) best = &p;
            }
        }
        PrePrepare pp;
        pp.view = v;
        pp.seq = seq;
        pp.primary = primary_of(v);
        if (best != nullptr) {
            pp.requests = best->preprepare.requests;
            pp.req_digest = best->preprepare.req_digest;
        } else {
            pp.requests = {Request::null()};
            pp.req_digest = Request::null().digest();
        }
        if (sign_them) pp.sig = crypto_.sign(pp.signing_bytes());
        out.push_back(std::move(pp));
    }
    return out;
}

void Replica::maybe_assemble_new_view(View target) {
    if (primary_of(target) != config_.id || view_ >= target) return;
    const auto it = view_changes_.find(target);
    if (it == view_changes_.end() || !it->second.contains(config_.id)) return;
    if (it->second.size() < quorum()) return;

    std::vector<ViewChange> vcs;
    for (const auto& [id, vc] : it->second) vcs.push_back(vc);

    NewView nv;
    nv.view = target;
    nv.view_changes = vcs;
    SeqNo min_s = 0, max_s = 0;
    nv.reproposals = compute_reproposals(target, vcs, min_s, max_s, /*sign_them=*/true);
    nv.primary = config_.id;
    nv.sig = crypto_.sign(nv.signing_bytes());
    transport_.broadcast(Message{nv});

    // Adopt the highest stable checkpoint among the VCs if we are behind.
    if (min_s > last_stable_) {
        for (const ViewChange& vc : vcs) {
            if (vc.last_stable == min_s && vc.stable_proof) {
                stable_proofs_[min_s] = *vc.stable_proof;
                break;
            }
        }
        if (min_s > last_exec_) {
            const auto proof = stable_proofs_.find(min_s);
            if (proof != stable_proofs_.end()) app_.sync_state(min_s, proof->second.state);
            last_exec_ = min_s;
        }
        last_stable_ = min_s;
        garbage_collect(min_s);
    }

    enter_view(target);
    next_seq_ = max_s + 1;
    install_reproposals(nv.reproposals);
    stats_.new_views_installed += 1;
    app_.new_primary(target, config_.id);
    reroute_after_view_change();
}

void Replica::handle(NodeId from, const NewView& nv) {
    if (nv.view < view_ || (nv.view == view_ && !in_view_change_)) return;
    if (nv.primary != primary_of(nv.view) || from != nv.primary) {
        stats_.invalid_messages += 1;
        return;
    }
    if (nv.primary == config_.id) return;
    if (!crypto_.verify(nv.primary, nv.signing_bytes(), nv.sig)) {
        stats_.invalid_messages += 1;
        return;
    }

    std::set<NodeId> vc_senders;
    for (const ViewChange& vc : nv.view_changes) {
        if (vc.new_view != nv.view || !validate_view_change(vc)) {
            stats_.invalid_messages += 1;
            return;
        }
        vc_senders.insert(vc.replica);
    }
    if (vc_senders.size() < quorum()) {
        stats_.invalid_messages += 1;
        return;
    }

    // Recompute O and compare field-wise; verify the primary's signatures.
    SeqNo min_s = 0, max_s = 0;
    const std::vector<PrePrepare> expected =
        compute_reproposals(nv.view, nv.view_changes, min_s, max_s, /*sign_them=*/false);
    if (expected.size() != nv.reproposals.size()) {
        stats_.invalid_messages += 1;
        return;
    }
    for (std::size_t i = 0; i < expected.size(); ++i) {
        const PrePrepare& got = nv.reproposals[i];
        const PrePrepare& want = expected[i];
        if (got.view != want.view || got.seq != want.seq || got.req_digest != want.req_digest ||
            got.primary != want.primary) {
            stats_.invalid_messages += 1;
            return;
        }
        if (!crypto_.verify(got.primary, got.signing_bytes(), got.sig)) {
            stats_.invalid_messages += 1;
            return;
        }
    }

    // Adopt a newer stable checkpoint if the quorum is ahead of us.
    if (min_s > last_stable_) {
        for (const ViewChange& vc : nv.view_changes) {
            if (vc.last_stable == min_s && vc.stable_proof) {
                stable_proofs_[min_s] = *vc.stable_proof;
                break;
            }
        }
        if (min_s > last_exec_) {
            const auto proof = stable_proofs_.find(min_s);
            if (proof != stable_proofs_.end()) app_.sync_state(min_s, proof->second.state);
            last_exec_ = min_s;
        }
        last_stable_ = min_s;
        garbage_collect(min_s);
    }

    enter_view(nv.view);
    install_reproposals(nv.reproposals);
    stats_.new_views_installed += 1;
    app_.new_primary(nv.view, nv.primary);
    reroute_after_view_change();
}

void Replica::enter_view(View v) {
    view_ = v;
    in_view_change_ = false;
    vc_target_ = 0;
    vc_attempts_ = 0;
    trace_point(trace::Phase::kNewView, v, primary_of(v));
    if (vc_timer_ != sim::kInvalidEvent) {
        sim_.cancel(vc_timer_);
        vc_timer_ = sim::kInvalidEvent;
    }

    for (auto it = view_changes_.begin(); it != view_changes_.end() && it->first <= v;) {
        it = view_changes_.erase(it);
    }

    // Drop non-executed slots: the new-view reproposals are authoritative
    // for the old window; everything else is re-proposed by the layer.
    for (auto it = log_.begin(); it != log_.end();) {
        if (it->first > last_exec_ && !it->second.executed) {
            if (log_gauge_) log_gauge_->add(-static_cast<std::int64_t>(it->second.bytes));
            it = log_.erase(it);
        } else {
            ++it;
        }
    }
    std::erase_if(known_requests_,
                  [this](const auto& kv) { return kv.second > last_exec_; });
}

void Replica::install_reproposals(const std::vector<PrePrepare>& reproposals) {
    for (const PrePrepare& pp : reproposals) {
        if (pp.seq <= last_exec_) continue;
        accept_preprepare(pp);
    }
}

void Replica::reroute_after_view_change() {
    if (primary() == config_.id) {
        // Leadership gained: requests we forwarded to the deposed primary
        // are ours to assign now (unless the new-view reproposals already
        // carry them), along with anything queued behind the watermark.
        std::vector<Request> retained;
        retained.reserve(request_timers_.size());
        for (auto& [digest, fwd] : request_timers_) {
            sim_.cancel(fwd.timer);
            retained.push_back(std::move(fwd.request));
        }
        request_timers_.clear();
        for (Request& r : retained) {
            if (known_requests_.contains(r.digest())) continue;
            assign_and_propose(r);
        }
        drain_pending();
        if (!open_batch_.empty() && batch_timer_ == sim::kInvalidEvent) flush_batch();
        return;
    }

    // Backup: re-forward undelivered requests — a request forwarded to the
    // deposed primary and not carried by the reproposals would otherwise
    // be stranded forever — and give the new primary a fresh grace period
    // on every surviving timer (a timer left armed against the old view
    // would expire immediately and trigger a suspicion storm).
    for (auto& [digest, fwd] : request_timers_) {
        sim_.cancel(fwd.timer);
        if (!known_requests_.contains(digest)) transport_.send(primary(), Message{fwd.request});
        fwd.armed_view = view_;
        fwd.timer = schedule_request_timer(digest);
    }

    // A deposed primary's open batch and blocked queue: in baseline mode
    // the requests are handed to the new primary like any other forward.
    // In ZugChain mode (request_timeout == 0) the communication layer owns
    // retransmission — its new_primary upcall re-proposes every undecided
    // payload, and a replica-level copy racing those re-proposals would be
    // ordered twice and trip the layer's duplicate-decided suspicion — so
    // the stale copies are dropped here.
    std::deque<Request> stranded;
    stranded.swap(pending_);
    for (Request& r : open_batch_) stranded.push_back(std::move(r));
    open_batch_.clear();
    open_batch_digests_.clear();
    open_batch_bytes_ = 0;
    if (batch_timer_ != sim::kInvalidEvent) {
        sim_.cancel(batch_timer_);
        batch_timer_ = sim::kInvalidEvent;
    }
    if (config_.request_timeout <= Duration::zero()) return;
    for (Request& r : stranded) {
        const crypto::Digest digest = r.digest();
        if (known_requests_.contains(digest) || request_timers_.contains(digest)) continue;
        stats_.pending_rerouted += 1;
        transport_.send(primary(), Message{r});
        arm_request_timer(r);
    }
}

void Replica::arm_view_change_timer(View target) {
    // Exponential backoff (as in PBFT): each unsuccessful attempt doubles
    // the wait for the next view, bounding the view-change message load
    // while the network is partitioned or a quorum is unreachable.
    const int exponent = static_cast<int>(std::min<std::uint32_t>(vc_attempts_, 6));
    const Duration timeout = config_.view_change_timeout * (1ll << exponent);
    vc_attempts_ += 1;
    vc_timer_ = sim_.schedule(timeout, [this, target] {
        vc_timer_ = sim::kInvalidEvent;
        if (in_view_change_ && vc_target_ == target) start_view_change(target + 1);
    });
}

}  // namespace zc::pbft
