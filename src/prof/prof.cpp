#include "prof/prof.hpp"

#include <algorithm>
#include <chrono>
#include <cinttypes>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace zc::prof {

namespace {

constexpr const char* kSubsystemNames[kSubsystemCount] = {
    "setup",         // kSetup
    "event_loop",    // kEventLoop
    "dispatch",      // kDispatch
    "crypto_sign",   // kCryptoSign
    "crypto_verify", // kCryptoVerify
    "codec_encode",  // kCodecEncode
    "codec_decode",  // kCodecDecode
    "store_append",  // kStoreAppend
    "store_load",    // kStoreLoad
    "dc_ingest",     // kDcIngest
    "dc_sync",       // kDcSync
    "audit",         // kAudit
};

}  // namespace

const char* subsystem_name(Subsystem s) noexcept {
    return kSubsystemNames[static_cast<unsigned>(s)];
}

std::uint64_t peak_rss_bytes() noexcept {
#if defined(__unix__) || defined(__APPLE__)
    struct rusage usage{};
    if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
    return static_cast<std::uint64_t>(usage.ru_maxrss);  // bytes on macOS
#else
    return static_cast<std::uint64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
    return 0;
#endif
}

std::uint64_t Profiler::steady_ns() noexcept {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

Profiler::Profiler(ClockFn clock) : clock_(clock != nullptr ? clock : &steady_ns) {
    born_ = clock_();
}

Profiler::~Profiler() {
    if (g_active == this) g_active = nullptr;
}

void Profiler::begin(Subsystem s) noexcept {
    if (depth_ == kMaxDepth) {
        ++overflow_;
        return;
    }
    stack_[depth_++] = Frame{s, clock_(), 0};
}

void Profiler::end() noexcept {
    if (overflow_ > 0) {
        --overflow_;
        return;
    }
    if (depth_ == 0) return;  // unbalanced end: ignore
    const Frame frame = stack_[--depth_];
    const std::uint64_t now = clock_();
    const std::uint64_t elapsed = now >= frame.start ? now - frame.start : 0;
    Counters& c = by_[static_cast<unsigned>(frame.subsys)];
    c.total_ns += elapsed;
    c.self_ns += elapsed - std::min(elapsed, frame.child_ns);
    c.count += 1;
    if (depth_ > 0) stack_[depth_ - 1].child_ns += elapsed;
}

void Profiler::add_sim_progress(std::int64_t virtual_ns, std::uint64_t wall_ns) noexcept {
    sim_virtual_ns_ += virtual_ns;
    sim_wall_ns_ += wall_ns;
}

std::uint64_t Profiler::total_ns(Subsystem s) const noexcept {
    return by_[static_cast<unsigned>(s)].total_ns;
}

std::uint64_t Profiler::self_ns(Subsystem s) const noexcept {
    return by_[static_cast<unsigned>(s)].self_ns;
}

std::uint64_t Profiler::count(Subsystem s) const noexcept {
    return by_[static_cast<unsigned>(s)].count;
}

double Profiler::sim_rate() const noexcept {
    if (sim_wall_ns_ == 0) return 0.0;
    return static_cast<double>(sim_virtual_ns_) / static_cast<double>(sim_wall_ns_);
}

Profiler::Snapshot Profiler::snapshot() const {
    Snapshot snap;
    snap.wall_s = static_cast<double>(enabled_wall_ns()) / 1e9;
    snap.sim_virtual_s = static_cast<double>(sim_virtual_ns_) / 1e9;
    snap.sim_wall_s = static_cast<double>(sim_wall_ns_) / 1e9;
    snap.sim_rate = sim_rate();
    snap.peak_rss = peak_rss_bytes();
    for (unsigned i = 0; i < kSubsystemCount; ++i) {
        Snapshot::Row& row = snap.rows[i];
        row.name = kSubsystemNames[i];
        row.self_s = static_cast<double>(by_[i].self_ns) / 1e9;
        row.total_s = static_cast<double>(by_[i].total_ns) / 1e9;
        row.count = by_[i].count;
        snap.covered_s += row.self_s;
    }
    return snap;
}

std::string Profiler::Snapshot::json() const {
    char buf[192];
    std::snprintf(buf, sizeof buf,
                  "{\"sim_rate\":%.3f,\"wall_s\":%.4f,\"sim_virtual_s\":%.4f,"
                  "\"coverage_pct\":%.1f,\"peak_rss_bytes\":%" PRIu64 ",\"subsystems\":{",
                  sim_rate, wall_s, sim_virtual_s,
                  wall_s > 0 ? covered_s / wall_s * 100.0 : 0.0, peak_rss);
    std::string out = buf;
    for (unsigned i = 0; i < kSubsystemCount; ++i) {
        std::snprintf(buf, sizeof buf,
                      "%s\"%s\":{\"self_s\":%.4f,\"total_s\":%.4f,\"count\":%" PRIu64 "}",
                      i == 0 ? "" : ",", rows[i].name, rows[i].self_s, rows[i].total_s,
                      rows[i].count);
        out += buf;
    }
    out += "}}";
    return out;
}

void Profiler::Snapshot::print_table(std::FILE* out, std::size_t top_n) const {
    unsigned order[kSubsystemCount];
    for (unsigned i = 0; i < kSubsystemCount; ++i) order[i] = i;
    std::stable_sort(order, order + kSubsystemCount, [this](unsigned a, unsigned b) {
        return rows[a].self_s > rows[b].self_s;
    });

    std::fprintf(out, "\n-- host profile --\n");
    std::fprintf(out, "sim rate                : %.2fx (%.3f sim-s in %.3f wall-s)\n",
                 sim_rate, sim_virtual_s, sim_wall_s);
    std::fprintf(out, "wall time profiled      : %.3f s (%.1f%% attributed)\n", wall_s,
                 wall_s > 0 ? covered_s / wall_s * 100.0 : 0.0);
    std::fprintf(out, "peak RSS                : %.1f MB\n",
                 static_cast<double>(peak_rss) / 1e6);
    std::fprintf(out, "%-14s %10s %8s %10s %12s\n", "subsystem", "self s", "% wall",
                 "incl s", "count");
    for (std::size_t k = 0; k < std::min<std::size_t>(top_n, kSubsystemCount); ++k) {
        const Row& row = rows[order[k]];
        if (row.count == 0 && row.self_s <= 0.0) continue;
        std::fprintf(out, "%-14s %10.3f %7.1f%% %10.3f %12" PRIu64 "\n", row.name, row.self_s,
                     wall_s > 0 ? row.self_s / wall_s * 100.0 : 0.0, row.total_s, row.count);
    }
}

}  // namespace zc::prof
