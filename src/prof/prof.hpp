// Host-side cost profiler: where does *wall-clock* time go?
//
// Everything else in this repo measures virtual time — the deterministic
// clock the scenarios run on. Nothing there says how expensive the
// simulator itself is on the host, which is exactly what the parallel
// crypto/execution pipeline work needs as a baseline. This profiler
// attributes host nanoseconds (std::chrono::steady_clock) to a small
// fixed taxonomy of subsystems via RAII scopes placed at the hot-path
// choke points (crypto sign/verify, codec encode/decode, BlockStore
// append/load, event-loop dispatch, DC ingest), and computes the
// headline sim_rate: virtual seconds simulated per wall second.
//
// Disabled-path contract: a profiler scope where no profiler is active
// is a single branch on one process-global pointer — no clock read, no
// allocation, no stores. The virtual side never observes the profiler
// at all (it only ever *reads* the host clock), so same-seed runs stay
// byte-identical with profiling on or off; host timings are segregated
// into their own `host` report sections.
//
// Attribution is self-time based: a scope's child time is subtracted
// from its own bucket, so summing the per-subsystem `self` seconds
// never double-counts nested scopes (codec work inside a store append
// counts as codec, not twice). The scope stack is fixed-size and the
// counters are plain arrays — begin/end is two clock reads and a few
// adds.
//
// Not thread-safe by design: the simulator is single-threaded on the
// host today (making it not so is ROADMAP item 2, which this profiler
// exists to judge).
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

namespace zc::prof {

/// Host-cost attribution buckets. Order is the report order; names live
/// in subsystem_name().
enum class Subsystem : std::uint8_t {
    kSetup,         ///< scenario/shard/fleet construction (keys, wiring)
    kEventLoop,     ///< sim run-loop overhead (queue pops, bookkeeping)
    kDispatch,      ///< event handler bodies, minus nested subsystems
    kCryptoSign,    ///< CryptoContext::sign (Ed25519 / fast provider)
    kCryptoVerify,  ///< CryptoContext::verify
    kCodecEncode,   ///< codec::encode_to_bytes (all wire messages)
    kCodecDecode,   ///< codec::decode_from_bytes / try_decode
    kStoreAppend,   ///< BlockStore::append (incl. persistence)
    kStoreLoad,     ///< BlockStore::load (crash recovery, tooling)
    kDcIngest,      ///< data-center ingest jobs (export/DC frontend)
    kDcSync,        ///< DC-to-DC sync message handling
    kAudit,         ///< SafetyAuditor passes
};

inline constexpr unsigned kSubsystemCount = static_cast<unsigned>(Subsystem::kAudit) + 1;

const char* subsystem_name(Subsystem s) noexcept;

/// Peak resident set size of this process in bytes (getrusage), 0 where
/// unsupported.
std::uint64_t peak_rss_bytes() noexcept;

class Profiler {
public:
    /// Monotonic nanosecond clock. Injectable so attribution tests are
    /// deterministic; null uses std::chrono::steady_clock.
    using ClockFn = std::uint64_t (*)();

    explicit Profiler(ClockFn clock = nullptr);

    Profiler(const Profiler&) = delete;
    Profiler& operator=(const Profiler&) = delete;
    ~Profiler();

    /// The process-global active profiler. ZC_PROF_SCOPE instrumentation
    /// points read this pointer; null (the default) disables them all.
    static Profiler* active() noexcept { return g_active; }
    static void set_active(Profiler* p) noexcept { g_active = p; }

    /// Opens / closes an attribution scope. Unbalanced ends are ignored;
    /// stack overflow degrades gracefully (extra begins are dropped and
    /// their matching ends swallowed).
    void begin(Subsystem s) noexcept;
    void end() noexcept;

    /// Sim-progress accounting, fed by sim::Simulation's run loops:
    /// `virtual_ns` of simulated time advanced over `wall_ns` of host
    /// time. sim_rate() is their ratio.
    void add_sim_progress(std::int64_t virtual_ns, std::uint64_t wall_ns) noexcept;

    std::uint64_t clock_now() const noexcept { return clock_(); }

    /// Inclusive time of scopes closed so far (nested child time included).
    std::uint64_t total_ns(Subsystem s) const noexcept;
    /// Exclusive (self) time: inclusive minus time spent in nested scopes.
    std::uint64_t self_ns(Subsystem s) const noexcept;
    std::uint64_t count(Subsystem s) const noexcept;
    std::size_t depth() const noexcept { return depth_; }

    std::int64_t sim_virtual_ns() const noexcept { return sim_virtual_ns_; }
    std::uint64_t sim_wall_ns() const noexcept { return sim_wall_ns_; }

    /// Virtual seconds simulated per wall second (0 before any run loop).
    double sim_rate() const noexcept;

    /// Wall nanoseconds since this profiler was constructed.
    std::uint64_t enabled_wall_ns() const noexcept { return clock_() - born_; }

    /// Frozen copy of all counters, taken right after the measured runs
    /// (before report formatting, so coverage is judged against the work
    /// actually profiled).
    struct Snapshot {
        struct Row {
            const char* name = "";
            double self_s = 0.0;
            double total_s = 0.0;
            std::uint64_t count = 0;
        };
        double wall_s = 0.0;         ///< profiler construction -> snapshot
        double covered_s = 0.0;      ///< sum of self_s over all rows
        double sim_virtual_s = 0.0;  ///< virtual time advanced in run loops
        double sim_wall_s = 0.0;     ///< host time inside run loops
        double sim_rate = 0.0;       ///< sim_virtual_s / sim_wall_s
        std::uint64_t peak_rss = 0;  ///< bytes
        Row rows[kSubsystemCount];   ///< enum order

        /// Deterministically *shaped* JSON (fixed key order; the values
        /// are host measurements and vary run to run):
        ///   {"sim_rate":..,"wall_s":..,"sim_virtual_s":..,
        ///    "coverage_pct":..,"peak_rss_bytes":..,
        ///    "subsystems":{"setup":{"self_s":..,"total_s":..,"count":..},..}}
        std::string json() const;

        /// Top-N cost table sorted by self time, for --prof console runs.
        void print_table(std::FILE* out, std::size_t top_n = 8) const;
    };
    Snapshot snapshot() const;

private:
    struct Frame {
        Subsystem subsys;
        std::uint64_t start;
        std::uint64_t child_ns;
    };
    struct Counters {
        std::uint64_t self_ns = 0;
        std::uint64_t total_ns = 0;
        std::uint64_t count = 0;
    };

    static constexpr std::size_t kMaxDepth = 64;

    static std::uint64_t steady_ns() noexcept;

    inline static Profiler* g_active = nullptr;

    ClockFn clock_;
    std::uint64_t born_;
    std::size_t depth_ = 0;
    std::uint64_t overflow_ = 0;
    Frame stack_[kMaxDepth];
    Counters by_[kSubsystemCount]{};
    std::int64_t sim_virtual_ns_ = 0;
    std::uint64_t sim_wall_ns_ = 0;
};

/// RAII attribution scope. Captures the active profiler once so a scope
/// stays balanced even if the active pointer changes inside it.
class Scope {
public:
    explicit Scope(Subsystem s) noexcept : prof_(Profiler::active()) {
        if (prof_ != nullptr) prof_->begin(s);
    }
    ~Scope() {
        if (prof_ != nullptr) prof_->end();
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

private:
    Profiler* prof_;
};

}  // namespace zc::prof

#define ZC_PROF_CONCAT_INNER(a, b) a##b
#define ZC_PROF_CONCAT(a, b) ZC_PROF_CONCAT_INNER(a, b)

/// Attributes the enclosing block to `subsys` (a zc::prof::Subsystem
/// enumerator name, e.g. ZC_PROF_SCOPE(kCryptoSign)). With no active
/// profiler this is a single branch on one global pointer.
#define ZC_PROF_SCOPE(subsys) \
    ::zc::prof::Scope ZC_PROF_CONCAT(zc_prof_scope_, __COUNTER__)(::zc::prof::Subsystem::subsys)
