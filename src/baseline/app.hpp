// Baseline application stack: Replica -> BaselineApp -> ChainApp.
// Unlike the ZugChain layer there is no payload dedup: every decided
// request — including the up-to-n copies of identical bus data — is
// written to the blockchain.
#pragma once

#include "baseline/client.hpp"
#include "zugchain/chain_app.hpp"

namespace zc::baseline {

class BaselineApp final : public pbft::Application {
public:
    BaselineApp(zugchain::ChainApp& chain_app, BaselineClient& client)
        : chain_(chain_app), client_(client) {}

    void deliver(const pbft::Request& request, SeqNo seq) override {
        if (!request.is_null()) {
            chain_.log(request, request.origin, seq);
            client_.on_decided(request);
            logged_ += 1;
        }
    }

    crypto::Digest state_digest(SeqNo seq) override { return chain_.state_digest(seq); }

    void new_primary(View view, NodeId primary) override {
        (void)view;
        client_.on_new_primary(primary);
    }

    void sync_state(SeqNo seq, const crypto::Digest& state) override {
        chain_.sync_state(seq, state);
    }

    std::uint64_t logged() const noexcept { return logged_; }

private:
    zugchain::ChainApp& chain_;
    BaselineClient& client_;
    std::uint64_t logged_ = 0;
};

}  // namespace zc::baseline
