#include "baseline/client.hpp"

namespace zc::baseline {

BaselineClient::BaselineClient(ClientConfig config, sim::Simulation& sim,
                               crypto::CryptoContext& crypto, ClientSender& sender)
    : config_(config), sim_(sim), crypto_(crypto), sender_(sender) {}

BaselineClient::~BaselineClient() {
    for (auto& [digest, p] : pending_) sim_.cancel(p.timer);
}

void BaselineClient::receive(Bytes payload, std::uint64_t uniquifier) {
    pbft::Request r;
    r.payload = std::move(payload);
    r.origin = config_.id;
    r.origin_seq = uniquifier;
    r.sig = crypto_.sign(r.signing_bytes());

    const crypto::Digest digest = r.digest();
    sender_.to_primary(r);
    stats_.submitted += 1;
    pending_.emplace(digest, Pending{std::move(r)});
    arm_timer(digest);
}

void BaselineClient::arm_timer(const crypto::Digest& digest) {
    auto it = pending_.find(digest);
    if (it == pending_.end()) return;
    if (it->second.timer != sim::kInvalidEvent) sim_.cancel(it->second.timer);
    it->second.timer =
        sim_.schedule(config_.retransmit_timeout, [this, digest] { on_timeout(digest); });
}

void BaselineClient::on_timeout(const crypto::Digest& digest) {
    const auto it = pending_.find(digest);
    if (it == pending_.end()) return;
    it->second.timer = sim::kInvalidEvent;
    if (it->second.retransmits >= config_.max_retransmits) {
        stats_.abandoned += 1;
        pending_.erase(it);
        return;
    }
    it->second.retransmits += 1;
    stats_.retransmitted += 1;
    sender_.to_all(it->second.request);  // classic PBFT client retransmission
    arm_timer(digest);
}

void BaselineClient::on_decided(const pbft::Request& request) {
    const auto it = pending_.find(request.digest());
    if (it == pending_.end()) return;
    if (it->second.timer != sim::kInvalidEvent) sim_.cancel(it->second.timer);
    pending_.erase(it);
    stats_.decided += 1;
}

void BaselineClient::on_new_primary(NodeId) {
    // The primary moved: re-send all pending requests to the new one.
    for (auto& [digest, entry] : pending_) {
        sender_.to_primary(entry.request);
        arm_timer(digest);
    }
}

}  // namespace zc::baseline
