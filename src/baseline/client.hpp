// Baseline system (paper §V-A "Evaluation Setup"): PBFT with traditional
// client handling. Every node runs a client process next to its replica;
// each client reads the bus and forwards every record to the primary as
// its own authenticated request. Identical bus data is therefore ordered
// up to n times — the overhead ZugChain's communication layer removes.
//
// Clients follow classic PBFT behaviour: send to the primary, retransmit
// to all replicas on timeout (replicas then forward to the primary and
// time it, leading to a view change if it censors).
#pragma once

#include <unordered_map>

#include "crypto/context.hpp"
#include "pbft/messages.hpp"
#include "sim/simulation.hpp"

namespace zc::baseline {

/// Outbound path for client requests; implemented by the node runtime.
class ClientSender {
public:
    virtual ~ClientSender() = default;
    virtual void to_primary(const pbft::Request& request) = 0;
    virtual void to_all(const pbft::Request& request) = 0;
};

struct ClientConfig {
    NodeId id = 0;
    /// Classic client retransmission timeout (paper: baseline view-change
    /// timeout 500 ms).
    Duration retransmit_timeout{milliseconds(500)};
    /// Retries before giving a request up as lost. Under overload the
    /// baseline drops requests (paper §V-B) instead of amplifying the
    /// overload with an unbounded retransmit storm.
    std::uint32_t max_retransmits = 2;
};

struct ClientStats {
    std::uint64_t submitted = 0;
    std::uint64_t retransmitted = 0;
    std::uint64_t decided = 0;
    std::uint64_t abandoned = 0;  ///< dropped after max_retransmits
};

class BaselineClient {
public:
    BaselineClient(ClientConfig config, sim::Simulation& sim, crypto::CryptoContext& crypto,
                   ClientSender& sender);

    /// Cancels pending retransmit timers (teardown safety on crash/restart).
    ~BaselineClient();

    /// Parsed+filtered bus record: sign and submit to the primary.
    void receive(Bytes payload, std::uint64_t uniquifier);

    /// The co-located replica decided a request (any client's).
    void on_decided(const pbft::Request& request);

    /// A view change installed a new primary: re-send pending requests.
    void on_new_primary(NodeId primary);

    std::size_t pending() const noexcept { return pending_.size(); }
    const ClientStats& stats() const noexcept { return stats_; }

private:
    struct Pending {
        pbft::Request request;
        sim::EventId timer = sim::kInvalidEvent;
        std::uint32_t retransmits = 0;
    };

    void arm_timer(const crypto::Digest& digest);
    void on_timeout(const crypto::Digest& digest);

    ClientConfig config_;
    sim::Simulation& sim_;
    crypto::CryptoContext& crypto_;
    ClientSender& sender_;
    std::unordered_map<crypto::Digest, Pending, crypto::DigestHash> pending_;
    ClientStats stats_;
};

}  // namespace zc::baseline
