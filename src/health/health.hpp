// Consensus-health alarm model shared by the online watchdog monitor
// (src/health/monitor), the flight recorder, and offline chain inspection
// (tools/zc_inspect --health).
//
// An Alarm is a typed, latched liveness finding: which node (or the whole
// cluster), what kind of degradation, when it was first observed on the
// virtual clock, and a human-readable detail line. Alarms are append-only
// and deterministic for a given seed, so health reports can be compared
// byte-for-byte across runs.
#pragma once

#include <string>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace zc::health {

enum class AlarmKind : std::uint8_t {
    kStalledView,    ///< no commit progress within k soft timeouts
    kCheckpointLag,  ///< stable checkpoint trailing the head by > threshold blocks
    kExportBacklog,  ///< unexported blocks growing monotonically
    kDivergence,     ///< a node's decided count trailing the quorum frontier
    kChainGap,       ///< offline: block bodies missing inside the retained range
    kNodeDown,       ///< a node stopped answering (crash/power loss)
    kRejoinStalled,  ///< a restarted node failing to catch up to the cluster head
};

inline constexpr unsigned kAlarmKindCount = static_cast<unsigned>(AlarmKind::kRejoinStalled) + 1;

const char* alarm_kind_name(AlarmKind kind) noexcept;

struct Alarm {
    NodeId node = kNoNode;  ///< kNoNode = cluster-wide finding
    AlarmKind kind = AlarmKind::kStalledView;
    TimePoint first_seen{0};
    std::string detail;

    /// Recovery alarms (node down, rejoin stalled, checkpoint lag,
    /// divergence) clear once the condition heals; the alarm stays in the
    /// history with its clear time. A cleared alarm can re-fire as a new
    /// entry. Alarms that never cleared represent unresolved degradation.
    bool cleared = false;
    TimePoint cleared_at{0};
};

/// Compact deterministic JSON array of alarms (insertion order).
std::string alarms_json(const std::vector<Alarm>& alarms);

/// JSON string escaping for detail fields (quotes, backslashes, control
/// characters). Exposed for the other health serializers.
std::string json_escape(std::string_view s);

}  // namespace zc::health
