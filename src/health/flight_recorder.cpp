#include "health/flight_recorder.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace zc::health {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

FlightRecorder::~FlightRecorder() { unhook_logs(); }

bool FlightRecorder::notable(trace::Phase phase) noexcept {
    switch (phase) {
        case trace::Phase::kSoftTimeout:
        case trace::Phase::kHardTimeout:
        case trace::Phase::kSuspect:
        case trace::Phase::kLayerRateLimited:
        case trace::Phase::kDuplicateDecided:
        case trace::Phase::kCheckpointStable:
        case trace::Phase::kViewChangeStart:
        case trace::Phase::kNewView:
        case trace::Phase::kPrune:
        case trace::Phase::kTrimBodies:
        case trace::Phase::kExportRead:
        case trace::Phase::kExportVerify:
        case trace::Phase::kExportDelete:
        case trace::Phase::kExportServeRead:
        case trace::Phase::kExportServeDelete:
        case trace::Phase::kNodeDown:
        case trace::Phase::kNodeRestart:
        case trace::Phase::kStateTransfer:
        case trace::Phase::kLinkDown:
        case trace::Phase::kLinkUp:
        case trace::Phase::kStateTransferRejected:
        case trace::Phase::kAuditViolation:
            return true;
        default:
            return false;
    }
}

void FlightRecorder::event(NodeId node, TimePoint at, trace::Phase phase,
                           trace::TraceId trace, std::uint64_t arg) {
    (void)trace;
    if (!notable(phase)) return;
    FlightEvent e;
    e.at = at;
    e.node = node;
    e.kind = FlightEventKind::kPhase;
    e.phase = phase;
    e.arg = arg;
    record(std::move(e));
}

void FlightRecorder::span(NodeId node, TimePoint start, Duration dur, trace::Phase phase,
                          trace::TraceId trace, std::uint64_t arg) {
    // Spans (export rounds) enter the ring at their completion instant.
    event(node, start + dur, phase, trace, arg);
}

void FlightRecorder::record_log(LogLevel level, std::string_view component,
                                std::string_view message) {
    FlightEvent e;
    e.at = now_ != nullptr ? *now_ : TimePoint{0};
    e.node = kNoNode;
    e.kind = FlightEventKind::kLog;
    e.arg = static_cast<std::uint64_t>(level);
    e.detail.reserve(component.size() + message.size() + 2);
    e.detail.append(component);
    e.detail.append(": ");
    e.detail.append(message);
    record(std::move(e));
}

void FlightRecorder::record_alarm(const Alarm& alarm) {
    FlightEvent e;
    e.at = alarm.first_seen;
    e.node = alarm.node;
    e.kind = FlightEventKind::kAlarm;
    e.detail.reserve(alarm.detail.size() + 24);
    e.detail.append(alarm_kind_name(alarm.kind));
    e.detail.append(": ");
    e.detail.append(alarm.detail);
    record(std::move(e));
}

void FlightRecorder::hook_logs() {
    set_log_hook([this](LogLevel level, std::string_view component, std::string_view message) {
        record_log(level, component, message);
    });
    hooked_ = true;
}

void FlightRecorder::unhook_logs() {
    if (!hooked_) return;
    set_log_hook(nullptr);
    hooked_ = false;
}

void FlightRecorder::record(FlightEvent e) {
    e.seq = next_seq_++;
    Ring& ring = rings_[e.node];
    if (ring.buf.size() < capacity_) {
        ring.buf.push_back(std::move(e));
        return;
    }
    ring.buf[ring.next] = std::move(e);
    ring.next = (ring.next + 1) % capacity_;
    ++dropped_;
}

std::size_t FlightRecorder::size() const noexcept {
    std::size_t n = 0;
    for (const auto& [node, ring] : rings_) n += ring.buf.size();
    return n;
}

std::vector<FlightEvent> FlightRecorder::events() const {
    std::vector<FlightEvent> out;
    out.reserve(size());
    for (const auto& [node, ring] : rings_) {
        out.insert(out.end(), ring.buf.begin(), ring.buf.end());
    }
    std::sort(out.begin(), out.end(), [](const FlightEvent& a, const FlightEvent& b) {
        if (a.at != b.at) return a.at < b.at;
        return a.seq < b.seq;
    });
    return out;
}

std::string FlightRecorder::json() const {
    const std::vector<FlightEvent> evs = events();
    std::string out;
    out.reserve(evs.size() * 96 + 128);
    char buf[160];
    std::snprintf(buf, sizeof buf,
                  "{\"capacity\":%zu,\"recorded\":%" PRIu64 ",\"dropped\":%" PRIu64
                  ",\"events\":[",
                  capacity_, next_seq_, dropped_);
    out += buf;
    for (std::size_t i = 0; i < evs.size(); ++i) {
        const FlightEvent& e = evs[i];
        if (i != 0) out += ',';
        std::snprintf(buf, sizeof buf, "{\"t_ns\":%" PRId64 ",",
                      static_cast<std::int64_t>(e.at.count()));
        out += buf;
        if (e.node == kNoNode) {
            out += "\"node\":null,";
        } else {
            std::snprintf(buf, sizeof buf, "\"node\":%u,", e.node);
            out += buf;
        }
        switch (e.kind) {
            case FlightEventKind::kPhase:
                std::snprintf(buf, sizeof buf,
                              "\"kind\":\"phase\",\"event\":\"%s\",\"arg\":%" PRIu64 "}",
                              trace::phase_name(e.phase), e.arg);
                out += buf;
                break;
            case FlightEventKind::kLog:
                std::snprintf(buf, sizeof buf, "\"kind\":\"log\",\"level\":%" PRIu64
                                               ",\"detail\":\"",
                              e.arg);
                out += buf;
                out += json_escape(e.detail);
                out += "\"}";
                break;
            case FlightEventKind::kAlarm:
                out += "\"kind\":\"alarm\",\"detail\":\"";
                out += json_escape(e.detail);
                out += "\"}";
                break;
        }
    }
    out += "]}";
    return out;
}

}  // namespace zc::health
