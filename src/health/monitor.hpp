// Consensus health monitor: watchdog rules over periodically sampled
// liveness signals.
//
// The runtime (runtime::Scenario) snapshots every node's monotonic
// counters and chain state on a fixed virtual-time cadence (every N bus
// cycles) and feeds the snapshot here. Four watchdog rules evaluate each
// sample:
//
//   * stalled view      — a node saw >= k soft timeouts since it last made
//                         commit progress (primary silent/censoring/dead),
//   * checkpoint lag    — the stable checkpoint trails the chain head by
//                         more than a threshold number of blocks,
//   * export backlog    — the unexported block span grows monotonically
//                         for M consecutive samples (export stuck while
//                         recording continues; armed only when export
//                         infrastructure is part of the deployment),
//   * divergence        — a node's decided count falls behind the cluster
//                         commit frontier by more than a threshold,
//   * node down         — a node stopped answering samples entirely
//                         (crash / power loss),
//   * rejoin stalled    — a restarted node keeps trailing the cluster head
//                         instead of catching up via state transfer.
//
// Each rule latches one typed Alarm per (node, kind): the first detection
// wins and repeated samples do not spam. Recovery-class alarms (node down,
// rejoin stalled, checkpoint lag, divergence) additionally *clear* once
// the condition heals — the entry stays in the history with its clear
// time, and the same (node, kind) may re-fire as a new entry later.
// Alarms are mirrored into the flight recorder (if attached) and reported
// through an optional hook so a harness can dump the black box the moment
// something trips. Everything runs on virtual time: same seed, same
// samples, same alarms, byte-equal reports.
#pragma once

#include <functional>
#include <map>
#include <set>
#include <vector>

#include "health/flight_recorder.hpp"
#include "health/health.hpp"

namespace zc::health {

/// Raw per-node signals gathered at one sample instant. All counters are
/// cumulative (monotonic); the monitor differentiates internally.
struct NodeSample {
    NodeId node = 0;
    bool alive = true;
    std::uint64_t decided = 0;        ///< totally ordered requests (replica)
    std::uint64_t logged = 0;         ///< unique payloads written to the chain
    std::uint64_t soft_timeouts = 0;  ///< layer soft-timer expiries
    std::uint64_t hard_timeouts = 0;
    std::uint64_t view_changes = 0;   ///< new views installed
    std::uint64_t head_height = 0;    ///< chain head (blocks)
    std::uint64_t stable_height = 0;  ///< last stable checkpoint, in blocks
    std::uint64_t base_height = 0;    ///< pruned-up-to floor (export coverage)
    std::uint64_t rx_dropped = 0;     ///< receive-queue overflow drops
    double mem_mb = 0.0;              ///< current logical memory
};

struct MonitorConfig {
    /// Sampling cadence, in bus cycles (the runtime multiplies by the
    /// configured cycle time). Must stay below the view-change recovery
    /// time (~1 s with the paper's timers) or a stall can resolve between
    /// two samples and the stalled-view rule never sees it.
    std::uint32_t sample_every_cycles = 4;

    /// Stalled view: soft timeouts tolerated without commit progress.
    std::uint32_t stalled_soft_timeouts = 3;

    /// Checkpoint lag: blocks the stable checkpoint may trail the head.
    std::uint64_t checkpoint_lag_blocks = 8;

    /// Export backlog: consecutive growth samples + minimum backlog before
    /// the alarm fires; only evaluated when `watch_export` is set (a
    /// deployment without data centers legitimately never prunes).
    std::uint32_t export_backlog_samples = 5;
    std::uint64_t export_backlog_min_blocks = 64;
    bool watch_export = false;

    /// Divergence: decided entries a node may trail the cluster frontier.
    std::uint64_t divergence_entries = 50;

    /// Rejoin: blocks a restarted node may trail the cluster chain head
    /// and still count as caught up (clears node-down / rejoin-stalled).
    std::uint64_t rejoin_lag_blocks = 4;

    /// Rejoin stalled: samples a restarted node may spend behind the
    /// catch-up line before the rejoin-stalled alarm fires.
    std::uint32_t rejoin_stalled_samples = 12;
};

class HealthMonitor {
public:
    explicit HealthMonitor(MonitorConfig config = {});

    /// Mirrors fired alarms into `recorder` (null = off).
    void set_flight_recorder(FlightRecorder* recorder) noexcept { recorder_ = recorder; }

    /// Invoked synchronously for every alarm as it fires (dump-on-alarm).
    void set_alarm_hook(std::function<void(const Alarm&)> hook) { hook_ = std::move(hook); }

    /// Evaluates all watchdog rules over one snapshot. Call with strictly
    /// increasing `now`; samples must carry cumulative counters.
    void sample(TimePoint now, const std::vector<NodeSample>& nodes);

    const std::vector<Alarm>& alarms() const noexcept { return alarms_; }
    bool alarmed() const noexcept { return !alarms_.empty(); }

    /// True while at least one alarm has fired and not cleared. A run
    /// whose every alarm cleared (e.g. a scheduled crash followed by a
    /// successful rejoin) counts as healthy again.
    bool any_active() const noexcept {
        for (const Alarm& a : alarms_) {
            if (!a.cleared) return true;
        }
        return false;
    }
    std::uint64_t samples_taken() const noexcept { return samples_; }
    const MonitorConfig& config() const noexcept { return config_; }

    /// Deterministic JSON: {"samples":..,"config":{..},"alarms":[..]}.
    std::string json() const;

private:
    struct NodeState {
        bool seen = false;
        std::uint64_t decided_at_progress = 0;
        std::uint64_t soft_at_progress = 0;
        std::uint64_t last_backlog = 0;
        std::uint32_t backlog_growth = 0;  ///< consecutive growth samples
        bool down_seen = false;            ///< currently sampled as dead
        bool rejoining = false;            ///< restarted, not yet caught up
        std::uint32_t stalled_rejoin_samples = 0;
        /// Decided entries missed while down: a restarted replica's counter
        /// resumes from its durable watermark, so the divergence rule
        /// compares `decided + decided_offset` against the frontier.
        std::uint64_t decided_offset = 0;
    };

    void fire(NodeId node, AlarmKind kind, TimePoint now, std::string detail);
    void clear(NodeId node, AlarmKind kind, TimePoint now);

    MonitorConfig config_;
    std::map<NodeId, NodeState> states_;
    std::vector<Alarm> alarms_;
    std::set<std::pair<NodeId, AlarmKind>> fired_;
    std::uint64_t samples_ = 0;
    FlightRecorder* recorder_ = nullptr;
    std::function<void(const Alarm&)> hook_;
};

}  // namespace zc::health
