#include "health/health.hpp"

#include <cinttypes>
#include <cstdio>

namespace zc::health {

const char* alarm_kind_name(AlarmKind kind) noexcept {
    switch (kind) {
        case AlarmKind::kStalledView: return "stalled_view";
        case AlarmKind::kCheckpointLag: return "checkpoint_lag";
        case AlarmKind::kExportBacklog: return "export_backlog";
        case AlarmKind::kDivergence: return "divergence";
        case AlarmKind::kChainGap: return "chain_gap";
        case AlarmKind::kNodeDown: return "node_down";
        case AlarmKind::kRejoinStalled: return "rejoin_stalled";
    }
    return "?";
}

std::string json_escape(std::string_view s) {
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    return out;
}

std::string alarms_json(const std::vector<Alarm>& alarms) {
    std::string out = "[";
    char buf[128];
    for (std::size_t i = 0; i < alarms.size(); ++i) {
        const Alarm& a = alarms[i];
        if (i != 0) out += ',';
        if (a.node == kNoNode) {
            out += "{\"node\":null,";
        } else {
            std::snprintf(buf, sizeof buf, "{\"node\":%u,", a.node);
            out += buf;
        }
        std::snprintf(buf, sizeof buf, "\"kind\":\"%s\",\"first_seen_ns\":%" PRId64 ",",
                      alarm_kind_name(a.kind), static_cast<std::int64_t>(a.first_seen.count()));
        out += buf;
        if (a.cleared) {
            std::snprintf(buf, sizeof buf, "\"cleared_at_ns\":%" PRId64 ",",
                          static_cast<std::int64_t>(a.cleared_at.count()));
            out += buf;
        } else {
            out += "\"cleared_at_ns\":null,";
        }
        out += "\"detail\":\"" + json_escape(a.detail) + "\"}";
    }
    out += "]";
    return out;
}

}  // namespace zc::health
