#include "health/timeseries.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace zc::health {

namespace {

constexpr const char* kColumns[] = {
    "t_s",          "decided",      "throughput_rps", "logged",     "blocks",
    "stable",       "backlog",      "soft_timeouts",  "view_changes", "rx_dropped",
    "mem_mb",       "e2e_p50_ms",   "e2e_p99_ms",
};
constexpr std::size_t kColumnCount = sizeof(kColumns) / sizeof(kColumns[0]);

}  // namespace

const char* const* TimeSeries::columns(std::size_t* count) noexcept {
    if (count != nullptr) *count = kColumnCount;
    return kColumns;
}

void TimeSeries::sample(TimePoint now, const std::vector<NodeSample>& nodes) {
    Row row;
    row.t_s = to_seconds(now);

    double mem_sum = 0.0;
    std::size_t mem_n = 0;
    for (const NodeSample& s : nodes) {
        row.decided = std::max(row.decided, s.decided);
        row.logged = std::max(row.logged, s.logged);
        row.blocks = std::max(row.blocks, s.head_height);
        row.stable = std::max(row.stable, s.stable_height);
        row.backlog =
            std::max(row.backlog, s.head_height - std::min(s.head_height, s.base_height));
        row.soft_timeouts += s.soft_timeouts;
        row.view_changes = std::max(row.view_changes, s.view_changes);
        row.rx_dropped += s.rx_dropped;
        mem_sum += s.mem_mb;
        ++mem_n;
    }
    if (mem_n > 0) row.mem_mb = mem_sum / static_cast<double>(mem_n);

    const double dt = row.t_s - last_t_s_;
    if (!rows_.empty() && dt > 0.0 && row.decided >= last_decided_) {
        row.throughput_rps = static_cast<double>(row.decided - last_decided_) / dt;
    }
    last_t_s_ = row.t_s;
    last_decided_ = row.decided;

    if (registry_ != nullptr) {
        const trace::Histogram e2e = registry_->merged_histogram("e2e_ns");
        if (e2e.count() > 0) {
            row.e2e_p50_ms = e2e.percentile(0.5) / 1e6;
            row.e2e_p99_ms = e2e.percentile(0.99) / 1e6;
        }
    }

    rows_.push_back(row);
}

std::string TimeSeries::csv() const {
    std::string out;
    out.reserve(rows_.size() * 96 + 160);
    for (std::size_t i = 0; i < kColumnCount; ++i) {
        if (i != 0) out += ',';
        out += kColumns[i];
    }
    out += '\n';
    char buf[256];
    for (const Row& r : rows_) {
        std::snprintf(buf, sizeof buf,
                      "%.3f,%" PRIu64 ",%.3f,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                      ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%.3f,%.3f,%.3f\n",
                      r.t_s, r.decided, r.throughput_rps, r.logged, r.blocks, r.stable,
                      r.backlog, r.soft_timeouts, r.view_changes, r.rx_dropped, r.mem_mb,
                      r.e2e_p50_ms, r.e2e_p99_ms);
        out += buf;
    }
    return out;
}

std::string TimeSeries::json() const {
    std::string out = "{\"columns\":[";
    for (std::size_t i = 0; i < kColumnCount; ++i) {
        if (i != 0) out += ',';
        out += '"';
        out += kColumns[i];
        out += '"';
    }
    out += "],\"rows\":[";
    char buf[256];
    for (std::size_t i = 0; i < rows_.size(); ++i) {
        const Row& r = rows_[i];
        if (i != 0) out += ',';
        std::snprintf(buf, sizeof buf,
                      "[%.3f,%" PRIu64 ",%.3f,%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%" PRIu64
                      ",%" PRIu64 ",%" PRIu64 ",%" PRIu64 ",%.3f,%.3f,%.3f]",
                      r.t_s, r.decided, r.throughput_rps, r.logged, r.blocks, r.stable,
                      r.backlog, r.soft_timeouts, r.view_changes, r.rx_dropped, r.mem_mb,
                      r.e2e_p50_ms, r.e2e_p99_ms);
        out += buf;
    }
    out += "]}";
    return out;
}

}  // namespace zc::health
