// Time-series sink: the run's perf trajectory over virtual time.
//
// Receives the same periodic NodeSample snapshots as the HealthMonitor and
// condenses each into one row — commit frontier, derived throughput,
// chain/stable/backlog heights, timeout and view-change counters, queue
// drops, memory, and (when a metrics registry is attached) the cumulative
// end-to-end latency quantiles from the tracer's per-phase histograms. So
// a run can be *plotted* over virtual time instead of only summarized at
// the end.
//
// Rendered as CSV (one header line, fixed column order and precision) or
// as a JSON document with the same fields; both byte-identical across runs
// of the same seed.
#pragma once

#include <string>
#include <vector>

#include "health/monitor.hpp"
#include "trace/registry.hpp"

namespace zc::health {

class TimeSeries {
public:
    /// `registry` supplies the cumulative e2e latency quantiles per row
    /// (null = those columns stay 0).
    explicit TimeSeries(const trace::MetricsRegistry* registry = nullptr)
        : registry_(registry) {}

    /// Appends one row condensed from a cluster snapshot.
    void sample(TimePoint now, const std::vector<NodeSample>& nodes);

    std::size_t rows() const noexcept { return rows_.size(); }

    std::string csv() const;
    std::string json() const;

    /// Column names, in emission order (shared by csv() and json()).
    static const char* const* columns(std::size_t* count) noexcept;

private:
    struct Row {
        double t_s = 0.0;
        std::uint64_t decided = 0;  ///< cluster commit frontier
        double throughput_rps = 0.0;
        std::uint64_t logged = 0;
        std::uint64_t blocks = 0;
        std::uint64_t stable = 0;
        std::uint64_t backlog = 0;  ///< head - prune base (unexported span)
        std::uint64_t soft_timeouts = 0;
        std::uint64_t view_changes = 0;
        std::uint64_t rx_dropped = 0;
        double mem_mb = 0.0;  ///< cluster mean
        double e2e_p50_ms = 0.0;
        double e2e_p99_ms = 0.0;
    };

    const trace::MetricsRegistry* registry_;
    std::vector<Row> rows_;
    double last_t_s_ = 0.0;
    std::uint64_t last_decided_ = 0;
};

}  // namespace zc::health
