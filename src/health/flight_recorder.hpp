// Flight recorder: the observability system's own "black box".
//
// A fixed-size per-node ring buffer of structured events, fed from the
// same instrumentation points as the Tracer (it is a trace::TraceSink and
// can share a node's trace tap via trace::FanOutSink). Unlike the Tracer,
// which captures everything for offline timelines, the recorder keeps only
// *notable* events — view changes, timeouts, suspicion, drops, checkpoint
// and export transitions — so the last moments before a fault are not
// washed out of the ring by routine per-request traffic.
//
// Two more feeds exist beyond trace phases:
//   * warn/error log sites (via the global log hook; hook_logs()), so
//     existing ZC_WARN/ZC_ERROR calls become recorded events without
//     touching any call site, and
//   * health alarms (the HealthMonitor records what it fires).
//
// The dump is deterministic JSON: events ordered by (virtual time, global
// record index), byte-identical across runs of the same seed.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/log.hpp"
#include "health/health.hpp"
#include "trace/trace.hpp"

namespace zc::health {

enum class FlightEventKind : std::uint8_t {
    kPhase,  ///< a notable trace phase (arg = the phase's argument)
    kLog,    ///< a warn/error log line (detail = component + message)
    kAlarm,  ///< a health alarm fired (detail = kind + alarm detail)
};

struct FlightEvent {
    TimePoint at{0};
    std::uint64_t seq = 0;  ///< global record index (merge tiebreak)
    NodeId node = kNoNode;
    FlightEventKind kind = FlightEventKind::kPhase;
    trace::Phase phase = trace::Phase::kBusReceive;  ///< valid for kPhase
    std::uint64_t arg = 0;
    std::string detail;  ///< empty for kPhase
};

class FlightRecorder final : public trace::TraceSink {
public:
    /// `capacity` is the per-node ring size; the kNoNode ring holds events
    /// that arrive without a node identity (log-hook lines).
    explicit FlightRecorder(std::size_t capacity = 256);
    ~FlightRecorder() override;

    FlightRecorder(const FlightRecorder&) = delete;
    FlightRecorder& operator=(const FlightRecorder&) = delete;

    // -- trace::TraceSink --------------------------------------------------
    void event(NodeId node, TimePoint at, trace::Phase phase, trace::TraceId trace,
               std::uint64_t arg) override;
    void span(NodeId node, TimePoint start, Duration dur, trace::Phase phase,
              trace::TraceId trace, std::uint64_t arg) override;

    /// True for phases the recorder keeps (fault/operational transitions,
    /// not per-request pipeline steps).
    static bool notable(trace::Phase phase) noexcept;

    // -- other feeds -------------------------------------------------------
    void record_log(LogLevel level, std::string_view component, std::string_view message);
    void record_alarm(const Alarm& alarm);

    /// Attaches the virtual clock used to stamp events that arrive without
    /// a timestamp of their own (log-hook lines). Null = stamped 0.
    void set_clock(const TimePoint* now) noexcept { now_ = now; }

    /// Installs this recorder as the global warn/error log hook (see
    /// common/log.hpp). One recorder at a time; the destructor (or
    /// unhook_logs) removes the hook.
    void hook_logs();
    void unhook_logs();

    // -- observers / dump --------------------------------------------------
    std::size_t capacity() const noexcept { return capacity_; }
    /// Retained events across all rings.
    std::size_t size() const noexcept;
    /// Events overwritten by ring wraparound.
    std::uint64_t dropped() const noexcept { return dropped_; }

    /// Retained events, oldest first (merged across rings, ordered by
    /// virtual time with the global record index as tiebreak).
    std::vector<FlightEvent> events() const;

    /// Deterministic JSON dump:
    /// {"capacity":..,"recorded":..,"dropped":..,"events":[..]}.
    std::string json() const;

private:
    struct Ring {
        std::vector<FlightEvent> buf;  ///< grows to capacity, then wraps
        std::size_t next = 0;          ///< overwrite cursor once full
    };

    void record(FlightEvent e);

    std::size_t capacity_;
    std::map<NodeId, Ring> rings_;
    std::uint64_t next_seq_ = 0;
    std::uint64_t dropped_ = 0;
    const TimePoint* now_ = nullptr;
    bool hooked_ = false;
};

}  // namespace zc::health
