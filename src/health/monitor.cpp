#include "health/monitor.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/format.hpp"

namespace zc::health {

HealthMonitor::HealthMonitor(MonitorConfig config) : config_(config) {}

void HealthMonitor::fire(NodeId node, AlarmKind kind, TimePoint now, std::string detail) {
    if (!fired_.insert({node, kind}).second) return;  // latched
    Alarm alarm;
    alarm.node = node;
    alarm.kind = kind;
    alarm.first_seen = now;
    alarm.detail = std::move(detail);
    if (recorder_ != nullptr) recorder_->record_alarm(alarm);
    alarms_.push_back(alarm);
    if (hook_) hook_(alarms_.back());
}

void HealthMonitor::clear(NodeId node, AlarmKind kind, TimePoint now) {
    if (fired_.erase({node, kind}) == 0) return;  // nothing latched
    for (auto it = alarms_.rbegin(); it != alarms_.rend(); ++it) {
        if (it->node == node && it->kind == kind && !it->cleared) {
            it->cleared = true;
            it->cleared_at = now;
            break;
        }
    }
}

void HealthMonitor::sample(TimePoint now, const std::vector<NodeSample>& nodes) {
    ++samples_;

    // Cluster frontiers over live nodes: commit frontier in decided
    // entries (restarted replicas count with their pre-crash offset, see
    // NodeState::decided_offset) and chain-head frontier in blocks.
    std::uint64_t frontier = 0;
    std::uint64_t head_frontier = 0;
    for (const NodeSample& s : nodes) {
        if (!s.alive) continue;
        const auto it = states_.find(s.node);
        const std::uint64_t offset = it != states_.end() ? it->second.decided_offset : 0;
        frontier = std::max(frontier, s.decided + offset);
        head_frontier = std::max(head_frontier, s.head_height);
    }

    for (const NodeSample& s : nodes) {
        NodeState& st = states_[s.node];
        if (!st.seen) {
            st.seen = true;
            st.decided_at_progress = s.decided;
            st.soft_at_progress = s.soft_timeouts;
            st.last_backlog = s.head_height - std::min(s.head_height, s.base_height);
        }

        if (!s.alive) {
            // A crashed node's frozen counters are expected; flag the
            // outage itself and skip the progress rules.
            if (!st.down_seen) {
                st.down_seen = true;
                fire(s.node, AlarmKind::kNodeDown, now,
                     zc::format("node stopped answering at decided {}, head {}", s.decided,
                                s.head_height));
            }
            continue;
        }

        if (st.down_seen) {
            // Back from the dead: the replica restarted with fresh
            // counters, so re-baseline every differential rule and track
            // the catch-up phase until the chain head converges.
            st.down_seen = false;
            st.rejoining = true;
            st.stalled_rejoin_samples = 0;
            st.decided_at_progress = s.decided;
            st.soft_at_progress = s.soft_timeouts;
            st.last_backlog = s.head_height - std::min(s.head_height, s.base_height);
            st.backlog_growth = 0;
            st.decided_offset = frontier > s.decided ? frontier - s.decided : 0;
        }

        if (st.rejoining) {
            if (s.head_height + config_.rejoin_lag_blocks >= head_frontier) {
                st.rejoining = false;
                st.stalled_rejoin_samples = 0;
                clear(s.node, AlarmKind::kNodeDown, now);
                clear(s.node, AlarmKind::kRejoinStalled, now);
                // Catch-up reached the head: re-baseline the progress
                // rules here — a rejoiner refills its gap via state
                // transfer, which never moves the decided counter, so the
                // offset must be re-anchored at convergence.
                st.decided_at_progress = s.decided;
                st.soft_at_progress = s.soft_timeouts;
                st.last_backlog = s.head_height - std::min(s.head_height, s.base_height);
                st.backlog_growth = 0;
                st.decided_offset = frontier > s.decided ? frontier - s.decided : 0;
            } else {
                if (++st.stalled_rejoin_samples >= config_.rejoin_stalled_samples) {
                    fire(s.node, AlarmKind::kRejoinStalled, now,
                         zc::format("head {} still trails cluster head {} after {} samples",
                                    s.head_height, head_frontier, st.stalled_rejoin_samples));
                }
                // Catch-up is a distinct phase: stalled counters and a
                // trailing decided count are expected while the gap is
                // being refilled, so the progress rules stay off.
                continue;
            }
        }

        // Stalled view: soft timers keep expiring but nothing commits.
        if (s.decided > st.decided_at_progress) {
            st.decided_at_progress = s.decided;
            st.soft_at_progress = s.soft_timeouts;
        } else if (s.soft_timeouts - st.soft_at_progress >= config_.stalled_soft_timeouts) {
            fire(s.node, AlarmKind::kStalledView, now,
                 zc::format("no commit progress since {} decided; {} soft timeouts, "
                            "{} hard, {} view changes",
                            s.decided, s.soft_timeouts - st.soft_at_progress, s.hard_timeouts,
                            s.view_changes));
        }

        // Checkpoint lag: the head ran away from the stable checkpoint.
        if (s.head_height > s.stable_height &&
            s.head_height - s.stable_height > config_.checkpoint_lag_blocks) {
            fire(s.node, AlarmKind::kCheckpointLag, now,
                 zc::format("stable checkpoint at block {} trails head {} by {} blocks",
                            s.stable_height, s.head_height,
                            s.head_height - s.stable_height));
        } else {
            clear(s.node, AlarmKind::kCheckpointLag, now);
        }

        // Export backlog: unexported span growing monotonically.
        if (config_.watch_export) {
            const std::uint64_t backlog = s.head_height - std::min(s.head_height, s.base_height);
            if (backlog > st.last_backlog) {
                ++st.backlog_growth;
            } else {
                st.backlog_growth = 0;
            }
            st.last_backlog = backlog;
            if (st.backlog_growth >= config_.export_backlog_samples &&
                backlog >= config_.export_backlog_min_blocks) {
                fire(s.node, AlarmKind::kExportBacklog, now,
                     zc::format("{} unexported blocks, growing for {} samples", backlog,
                                st.backlog_growth));
            }
        }

        // Divergence: this node trails the cluster commit frontier
        // (restarted replicas compare with their pre-crash offset).
        const std::uint64_t effective = s.decided + st.decided_offset;
        if (frontier > effective && frontier - effective > config_.divergence_entries) {
            fire(s.node, AlarmKind::kDivergence, now,
                 zc::format("decided {} trails cluster frontier {} by {} entries (logged {})",
                            effective, frontier, frontier - effective, s.logged));
        } else {
            clear(s.node, AlarmKind::kDivergence, now);
        }
    }
}

std::string HealthMonitor::json() const {
    std::string out;
    char buf[384];
    std::snprintf(buf, sizeof buf,
                  "{\"samples\":%" PRIu64
                  ",\"config\":{\"sample_every_cycles\":%u,\"stalled_soft_timeouts\":%u,"
                  "\"checkpoint_lag_blocks\":%" PRIu64
                  ",\"export_backlog_samples\":%u,\"export_backlog_min_blocks\":%" PRIu64
                  ",\"watch_export\":%s,\"divergence_entries\":%" PRIu64
                  ",\"rejoin_lag_blocks\":%" PRIu64 ",\"rejoin_stalled_samples\":%u},\"alarms\":",
                  samples_, config_.sample_every_cycles, config_.stalled_soft_timeouts,
                  config_.checkpoint_lag_blocks, config_.export_backlog_samples,
                  config_.export_backlog_min_blocks, config_.watch_export ? "true" : "false",
                  config_.divergence_entries, config_.rejoin_lag_blocks,
                  config_.rejoin_stalled_samples);
    out += buf;
    out += alarms_json(alarms_);
    out += "}";
    return out;
}

}  // namespace zc::health
