#include "health/monitor.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "common/format.hpp"

namespace zc::health {

HealthMonitor::HealthMonitor(MonitorConfig config) : config_(config) {}

void HealthMonitor::fire(NodeId node, AlarmKind kind, TimePoint now, std::string detail) {
    if (!fired_.insert({node, kind}).second) return;  // latched
    Alarm alarm;
    alarm.node = node;
    alarm.kind = kind;
    alarm.first_seen = now;
    alarm.detail = std::move(detail);
    if (recorder_ != nullptr) recorder_->record_alarm(alarm);
    alarms_.push_back(alarm);
    if (hook_) hook_(alarms_.back());
}

void HealthMonitor::sample(TimePoint now, const std::vector<NodeSample>& nodes) {
    ++samples_;

    // Cluster commit frontier: the most advanced live node.
    std::uint64_t frontier = 0;
    for (const NodeSample& s : nodes) {
        if (s.alive) frontier = std::max(frontier, s.decided);
    }

    for (const NodeSample& s : nodes) {
        NodeState& st = states_[s.node];
        if (!st.seen) {
            st.seen = true;
            st.decided_at_progress = s.decided;
            st.soft_at_progress = s.soft_timeouts;
            st.last_backlog = s.head_height - std::min(s.head_height, s.base_height);
        }

        if (!s.alive) continue;  // a crashed node's frozen counters are expected

        // Stalled view: soft timers keep expiring but nothing commits.
        if (s.decided > st.decided_at_progress) {
            st.decided_at_progress = s.decided;
            st.soft_at_progress = s.soft_timeouts;
        } else if (s.soft_timeouts - st.soft_at_progress >= config_.stalled_soft_timeouts) {
            fire(s.node, AlarmKind::kStalledView, now,
                 zc::format("no commit progress since {} decided; {} soft timeouts, "
                            "{} hard, {} view changes",
                            s.decided, s.soft_timeouts - st.soft_at_progress, s.hard_timeouts,
                            s.view_changes));
        }

        // Checkpoint lag: the head ran away from the stable checkpoint.
        if (s.head_height > s.stable_height &&
            s.head_height - s.stable_height > config_.checkpoint_lag_blocks) {
            fire(s.node, AlarmKind::kCheckpointLag, now,
                 zc::format("stable checkpoint at block {} trails head {} by {} blocks",
                            s.stable_height, s.head_height,
                            s.head_height - s.stable_height));
        }

        // Export backlog: unexported span growing monotonically.
        if (config_.watch_export) {
            const std::uint64_t backlog = s.head_height - std::min(s.head_height, s.base_height);
            if (backlog > st.last_backlog) {
                ++st.backlog_growth;
            } else {
                st.backlog_growth = 0;
            }
            st.last_backlog = backlog;
            if (st.backlog_growth >= config_.export_backlog_samples &&
                backlog >= config_.export_backlog_min_blocks) {
                fire(s.node, AlarmKind::kExportBacklog, now,
                     zc::format("{} unexported blocks, growing for {} samples", backlog,
                                st.backlog_growth));
            }
        }

        // Divergence: this node trails the cluster commit frontier.
        if (frontier > s.decided && frontier - s.decided > config_.divergence_entries) {
            fire(s.node, AlarmKind::kDivergence, now,
                 zc::format("decided {} trails cluster frontier {} by {} entries (logged {})",
                            s.decided, frontier, frontier - s.decided, s.logged));
        }
    }
}

std::string HealthMonitor::json() const {
    std::string out;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"samples\":%" PRIu64
                  ",\"config\":{\"sample_every_cycles\":%u,\"stalled_soft_timeouts\":%u,"
                  "\"checkpoint_lag_blocks\":%" PRIu64
                  ",\"export_backlog_samples\":%u,\"export_backlog_min_blocks\":%" PRIu64
                  ",\"watch_export\":%s,\"divergence_entries\":%" PRIu64 "},\"alarms\":",
                  samples_, config_.sample_every_cycles, config_.stalled_soft_timeouts,
                  config_.checkpoint_lag_blocks, config_.export_backlog_samples,
                  config_.export_backlog_min_blocks, config_.watch_export ? "true" : "false",
                  config_.divergence_entries);
    out += buf;
    out += alarms_json(alarms_);
    out += "}";
    return out;
}

}  // namespace zc::health
