#include "runtime/train_shard.hpp"

#include "common/log.hpp"
#include "crypto/sha256.hpp"
#include "export/data_center.hpp"
#include "export/messages.hpp"
#include "prof/prof.hpp"
#include "runtime/scenario.hpp"

namespace zc::runtime {

/// Adapts a secondary bus tap to a node input source.
struct TrainShard::SourceTap final : bus::BusTap {
    SourceTap(Node& node, std::uint32_t source) : node(node), source(source) {}
    void on_telegram(const bus::Telegram& telegram) override {
        node.on_telegram_from(source, telegram);
    }
    Node& node;
    std::uint32_t source;
};

TrainShard::TrainShard(const ScenarioConfig& config, ShardEnv env)
    : config_(std::make_unique<ScenarioConfig>(config)), env_(std::move(env)) {
    build();
}

TrainShard::~TrainShard() = default;

void TrainShard::build() {
    ZC_PROF_SCOPE(kSetup);
    sim::Simulation& sim = *env_.sim;
    const ScenarioConfig& cfg = *config_;

    // Keys for nodes and data centers (the permissioned membership). The
    // fork label is prefixed per shard so a fleet's shards draw
    // decorrelated key streams; the empty prefix reproduces the classic
    // single-consist streams bit for bit.
    Rng keyrng = sim.rng().fork(env_.rng_label + "keys");
    std::vector<crypto::KeyPair> node_keys;
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
        node_keys.push_back(env_.provider->generate(keyrng));
        directory_.register_key(i, node_keys.back().pub);
    }
    if (env_.dc_keys != nullptr) {
        // Fleet-shared data centers: one DC keypair signs for every shard,
        // so each shard's directory registers the shared public keys.
        for (std::uint32_t d = 0; d < env_.dc_keys->size(); ++d) {
            directory_.register_key(exporter::dc_key_id(d), (*env_.dc_keys)[d].pub);
        }
    } else {
        for (std::uint32_t d = 0; d < cfg.dc_count; ++d) {
            dc_keys_.push_back(env_.provider->generate(keyrng));
            directory_.register_key(exporter::dc_key_id(d), dc_keys_.back().pub);
        }
    }

    // Safety auditor: an observer outside the deployment with its own key
    // (drawn after the membership keys so node/dc key streams are
    // unchanged) and read access to the shared key directory.
    if (cfg.auditor != nullptr) {
        audit_crypto_ = std::make_unique<crypto::CryptoContext>(
            *env_.provider, directory_, env_.provider->generate(keyrng), node_costs_,
            audit_meter_);
        cfg.auditor->configure(
            cfg.f, cfg.block_size,
            [this](std::uint32_t signer, BytesView message, const crypto::Signature& sig) {
                return audit_crypto_->verify(signer, message, sig);
            });
        for (const auto& [id, byz] : cfg.byzantine) {
            if (byz.any()) cfg.auditor->set_compromised(id);
        }
        if (cfg.trace_sink != nullptr) {
            cfg.auditor->set_trace({cfg.trace_sink, kNoNode, sim.now_handle()});
        }
    }

    // Signal source and bus.
    train::GeneratorConfig gen_cfg;
    gen_cfg.payload_size = cfg.payload_size;
    generator_ = std::make_unique<train::SignalGenerator>(
        gen_cfg, sim.rng().fork(env_.rng_label + "atp"));
    bus_ = std::make_unique<bus::Bus>(sim, cfg.bus_cycle, *generator_);

    // Nodes.
    for (std::uint32_t i = 0; i < cfg.n; ++i) {
        NodeOptions opts;
        opts.id = i;
        opts.n = cfg.n;
        opts.f = cfg.f;
        opts.mode = cfg.mode;
        opts.block_size = cfg.block_size;
        opts.soft_timeout = cfg.soft_timeout;
        opts.hard_timeout = cfg.hard_timeout;
        opts.max_open_per_origin = cfg.max_open_per_origin;
        opts.client_timeout = cfg.client_timeout;
        opts.request_timeout = cfg.request_timeout;
        opts.view_change_timeout = cfg.view_change_timeout;
        opts.batch_max_requests = cfg.batch_max_requests;
        opts.batch_max_bytes = cfg.batch_max_bytes;
        opts.batch_linger = cfg.batch_linger;
        opts.device_cores = cfg.device_cores;
        opts.protocol_cores = cfg.protocol_cores;
        opts.rx_queue_limit = cfg.rx_queue_limit;
        opts.delete_quorum = cfg.delete_quorum;
        opts.trace = cfg.trace_sink;
        opts.auditor = cfg.auditor;
        const auto byz = cfg.byzantine.find(i);
        if (byz != cfg.byzantine.end()) opts.byzantine = byz->second;
        if (cfg.store_root) {
            opts.store_dir = *cfg.store_root / ("node-" + std::to_string(i));
        }

        nodes_.push_back(std::make_unique<Node>(opts, sim, *env_.net, *env_.provider,
                                                directory_, node_keys[i], node_costs_));
        env_.net->attach(i, nodes_.back().get());

        const auto faults = cfg.tap_faults.find(i);
        bus_->attach_tap(*nodes_.back(), faults != cfg.tap_faults.end()
                                             ? faults->second
                                             : cfg.default_tap_faults);
    }

    // Additional input sources (each an independent bus + generator).
    for (std::size_t b = 0; b < cfg.extra_buses.size(); ++b) {
        const auto& spec = cfg.extra_buses[b];
        ExtraBusRig rig;
        train::GeneratorConfig extra_gen;
        extra_gen.payload_size = spec.payload_size;
        rig.generator = std::make_unique<train::SignalGenerator>(
            extra_gen, sim.rng().fork(env_.rng_label + "extra-bus-" + std::to_string(b)));
        rig.bus = std::make_unique<bus::Bus>(sim, spec.cycle, *rig.generator);
        for (auto& node : nodes_) {
            rig.taps.push_back(
                std::make_unique<SourceTap>(*node, static_cast<std::uint32_t>(b + 1)));
            rig.bus->attach_tap(*rig.taps.back(), cfg.default_tap_faults);
        }
        rig.bus->start();
        extra_buses_.push_back(std::move(rig));
    }

    for (auto& node : nodes_) install_state_fetcher(*node);
}

void TrainShard::start() { bus_->start(); }

void TrainShard::install_state_fetcher(Node& node) {
    // State transfer (paper §III-D discussion (ii)): a lagging replica
    // fetches missing blocks from a peer, stages them, and validates the
    // staged range — contiguity, parent links, payload roots and the final
    // head hash against the quorum-certified checkpoint digest — before
    // anything touches the durable store or the layer's logged set. A peer
    // serving a forged-but-hash-linked range is rejected at the digest
    // check and the fetcher moves to the next peer. Modelled as a
    // validated in-process copy; the bulk-transfer cost is charged to the
    // CPU model (bandwidth cost is covered by the export experiments).
    // Re-installed after a restart (the chain app is rebuilt).
    Node* self = &node;
    self->chain_app().set_state_fetcher([this, self](SeqNo seq, const crypto::Digest& state) {
        const ScenarioConfig& cfg = *config_;
        const Height target = seq / cfg.block_size;
        if (self->store().head_height() >= target) {
            const chain::BlockHeader* h = self->store().header(target);
            return h != nullptr && h->hash() == state;
        }
        const Height from = self->store().head_height() + 1;
        for (const auto& peer : nodes_) {
            if (peer.get() == self || !peer->alive()) continue;
            chain::BlockStore& src = peer->store();
            if (src.head_height() < target) continue;
            if (from < src.base_height()) {
                // The peer pruned past the range we need. The missing
                // prefix is archived at the data centers — that is exactly
                // what the peer's prune anchor attests, with a delete
                // quorum of DC signatures over the base block. Adopt the
                // anchor: verify the evidence, validate the retained tail
                // up to the quorum-certified checkpoint digest, then
                // discard our stale prefix and rebase on the peer's base.
                // Without this, a diskless restart after an export prune
                // can never catch up (and a node that rebuilt from genesis
                // would fork the chain).
                const std::optional<chain::PruneAnchor>& anchor = src.anchor();
                if (!anchor || anchor->base_height != src.base_height()) continue;
                if (target < anchor->base_height) continue;  // stale checkpoint

                const auto deletes = exporter::decode_delete_evidence(anchor->evidence);
                std::set<DataCenterId> signers;
                if (deletes) {
                    for (const exporter::DeleteCmd& cmd : *deletes) {
                        if (cmd.height != anchor->base_height ||
                            cmd.block_hash != anchor->base_hash) {
                            continue;
                        }
                        if (!self->crypto().verify(exporter::dc_key_id(cmd.dc),
                                                   cmd.signing_bytes(), cmd.sig)) {
                            continue;
                        }
                        signers.insert(cmd.dc);
                    }
                }
                if (signers.size() < cfg.delete_quorum) {
                    state_transfer_rejected_ += 1;
                    ZC_WARN("scenario",
                            "node {} rejected prune anchor at {} from node {} "
                            "({} valid delete signature(s), quorum {})",
                            self->id(), anchor->base_height, peer->id(), signers.size(),
                            cfg.delete_quorum);
                    continue;
                }

                std::vector<chain::Block> staged = src.range(anchor->base_height, target);
                bool ok = !staged.empty() &&
                          staged.size() == target - anchor->base_height + 1 &&
                          staged.front().header.height == anchor->base_height &&
                          staged.front().hash() == anchor->base_hash &&
                          staged.front().payload_valid();
                crypto::Digest prev = ok ? anchor->base_hash : crypto::Digest{};
                Height expect = anchor->base_height + 1;
                for (std::size_t i = 1; ok && i < staged.size(); ++i) {
                    const chain::Block& b = staged[i];
                    self->crypto().charge_hash(b.size_bytes());
                    ok = b.header.height == expect && b.header.parent_hash == prev &&
                         b.payload_valid();
                    prev = b.hash();
                    expect += 1;
                }
                if (!ok || prev != state) {
                    state_transfer_rejected_ += 1;
                    ZC_WARN("scenario",
                            "node {} rejected rebase range [{}, {}] from node {}",
                            self->id(), anchor->base_height, target, peer->id());
                    if (cfg.trace_sink != nullptr) {
                        cfg.trace_sink->event(self->id(), env_.sim->now(),
                                              trace::Phase::kStateTransferRejected, seq,
                                              peer->id());
                    }
                    continue;
                }

                for (const chain::Block& b : staged) {
                    for (const chain::LoggedRequest& req : b.requests) {
                        const crypto::Digest d = crypto::sha256(req.payload);
                        if (self->layer() != nullptr) self->layer()->mark_logged(d);
                        if (cfg.auditor != nullptr) cfg.auditor->note_logged(self->id(), d);
                    }
                }
                const std::uint64_t copied = staged.size();
                self->store().rebase(std::move(staged.front()), anchor->evidence);
                for (std::size_t i = 1; i < staged.size(); ++i) {
                    self->store().append(std::move(staged[i]));
                }
                state_transfer_fetches_ += 1;
                state_transfer_blocks_ += copied;
                if (cfg.trace_sink != nullptr) {
                    cfg.trace_sink->event(self->id(), env_.sim->now(),
                                          trace::Phase::kStateTransfer, seq, copied);
                }
                return true;
            }

            // A compromised peer may serve a forged-but-hash-linked range
            // instead of its real chain (state-transfer poisoning).
            std::vector<chain::Block> staged;
            faults::Adversary* adv = peer->adversary();
            if (adv != nullptr && adv->config().poison_state_transfer) {
                staged = adv->forged_range(self->store().head_hash(), from, target);
                adv->stats_mut().st_poisonings += 1;
            } else {
                staged = src.range(from, target);
            }

#ifdef ZC_BREAK_VALIDATION
            // Pre-hardening behaviour, kept behind a build flag so CI can
            // prove the safety auditor catches the resulting poisoning:
            // blocks enter the durable store (and the layer's logged set)
            // before the checkpoint-digest check runs.
            bool ok = true;
            std::uint64_t copied = 0;
            for (chain::Block& b : staged) {
                self->crypto().charge_hash(b.size_bytes());
                std::vector<crypto::Digest> digests;
                for (const chain::LoggedRequest& req : b.requests) {
                    digests.push_back(crypto::sha256(req.payload));
                }
                try {
                    self->store().append(std::move(b));
                } catch (const std::invalid_argument&) {
                    ok = false;
                    break;
                }
                copied += 1;
                for (const crypto::Digest& d : digests) {
                    if (self->layer() != nullptr) self->layer()->mark_logged(d);
                    if (cfg.auditor != nullptr) cfg.auditor->note_logged(self->id(), d);
                }
            }
            if (ok && self->store().head_height() >= target &&
                self->store().head_hash() == state) {
                state_transfer_fetches_ += 1;
                state_transfer_blocks_ += copied;
                if (cfg.trace_sink != nullptr) {
                    cfg.trace_sink->event(self->id(), env_.sim->now(),
                                          trace::Phase::kStateTransfer, seq, copied);
                }
                return true;
            }
#else
            // Stage-then-adopt: validate the whole range incrementally
            // from our head up to the checkpoint digest, then append.
            bool ok = staged.size() == target - from + 1;
            crypto::Digest prev = self->store().head_hash();
            Height expect = from;
            for (const chain::Block& b : staged) {
                if (!ok) break;
                self->crypto().charge_hash(b.size_bytes());
                ok = b.header.height == expect && b.header.parent_hash == prev &&
                     b.payload_valid();
                prev = b.hash();
                expect += 1;
            }
            if (!ok || prev != state) {
                state_transfer_rejected_ += 1;
                ZC_WARN("scenario",
                        "node {} rejected state-transfer range [{}, {}] from node {}",
                        self->id(), from, target, peer->id());
                if (cfg.trace_sink != nullptr) {
                    cfg.trace_sink->event(self->id(), env_.sim->now(),
                                          trace::Phase::kStateTransferRejected, seq,
                                          peer->id());
                }
                continue;  // try the next peer
            }
            std::uint64_t copied = 0;
            for (chain::Block& b : staged) {
                for (const chain::LoggedRequest& req : b.requests) {
                    const crypto::Digest d = crypto::sha256(req.payload);
                    if (self->layer() != nullptr) self->layer()->mark_logged(d);
                    if (cfg.auditor != nullptr) cfg.auditor->note_logged(self->id(), d);
                }
                self->store().append(std::move(b));
                copied += 1;
            }
            state_transfer_fetches_ += 1;
            state_transfer_blocks_ += copied;
            if (cfg.trace_sink != nullptr) {
                cfg.trace_sink->event(self->id(), env_.sim->now(),
                                      trace::Phase::kStateTransfer, seq, copied);
            }
            return true;
#endif
        }
        return false;
    });
}

void TrainShard::crash_node(NodeId id) { nodes_.at(id)->crash(); }

void TrainShard::restart_node(NodeId id) {
    Node& target = *nodes_.at(id);
    if (target.alive()) return;
    // Rejoin in the highest view any surviving replica runs; the durable
    // chain and checkpoint-driven state transfer handle the rest.
    View view = 0;
    for (const auto& peer : nodes_) {
        if (peer->alive()) view = std::max(view, peer->replica().view());
    }
    target.restart(view);
    install_state_fetcher(target);
}

health::NodeSample TrainShard::snapshot_node(std::size_t i) const {
    Node& node = *nodes_.at(i);
    health::NodeSample s;
    s.node = node.id();
    s.alive = node.alive();
    const pbft::ReplicaStats& rs = node.replica().stats();
    s.decided = rs.decided;
    s.view_changes = rs.new_views_installed;
    if (node.layer() != nullptr) {
        const zugchain::LayerStats& ls = node.layer()->stats();
        s.logged = ls.logged;
        s.soft_timeouts = ls.soft_timeouts;
        s.hard_timeouts = ls.hard_timeouts;
    } else {
        s.logged = rs.decided;  // baseline mode: every decide is a log
    }
    s.head_height = node.store().head_height();
    s.stable_height = node.replica().last_stable() / config_->block_size;
    s.base_height = node.store().base_height();
    s.rx_dropped = node.rx_dropped();
    s.mem_mb = static_cast<double>(node.memory().total_bytes()) / (1024.0 * 1024.0);
    return s;
}

std::vector<faults::ReplicaView> TrainShard::replica_views() {
    std::vector<faults::ReplicaView> replicas;
    replicas.reserve(nodes_.size());
    for (auto& node : nodes_) {
        faults::ReplicaView view;
        view.id = node->id();
        view.alive = node->alive();
        view.compromised = node->adversary() != nullptr;
        view.store = &node->store();
        view.layer = node->layer();
        replicas.push_back(view);
    }
    return replicas;
}

}  // namespace zc::runtime
