// Top-level wire envelope multiplexing the three protocol channels over
// one network endpoint per node: PBFT consensus, ZugChain layer traffic,
// and the export protocol.
#pragma once

#include <optional>

#include "codec/codec.hpp"
#include "common/bytes.hpp"

namespace zc::runtime {

enum class Channel : std::uint8_t {
    kPbft = 1,
    kLayer = 2,
    kExport = 3,
};

struct Envelope {
    Channel channel = Channel::kPbft;
    Bytes body;

    void encode(codec::Writer& w) const {
        w.u8(static_cast<std::uint8_t>(channel));
        w.bytes(body);
    }
    static Envelope decode(codec::Reader& r) {
        Envelope e;
        const std::uint8_t c = r.u8();
        if (c < 1 || c > 3) throw codec::DecodeError("bad channel");
        e.channel = static_cast<Channel>(c);
        e.body = r.bytes();
        return e;
    }
};

inline Bytes encode_envelope(Channel channel, Bytes body) {
    Envelope e;
    e.channel = channel;
    e.body = std::move(body);
    return codec::encode_to_bytes(e);
}

inline std::optional<Envelope> decode_envelope(BytesView data) noexcept {
    return codec::try_decode<Envelope>(data);
}

}  // namespace zc::runtime
