// One consist's complete on-train rig, reusable across harnesses: the
// permissioned key membership, ATP signal generator, MVB-like bus (plus
// optional extra input buses), the n ZugChain nodes with their protocol
// stacks, validated state-transfer wiring between them, and crash/restart
// control.
//
// runtime::Scenario composes exactly one TrainShard with data centers and
// measurement (the paper's single-consist testbed); fleet::Fleet composes
// many of them on one shared virtual clock — each shard gets its own
// net::Network (trains do not talk to each other) while all shards share
// the simulation, so a 100-train timetable is still one deterministic
// event sequence.
#pragma once

#include <memory>
#include <vector>

#include "crypto/context.hpp"
#include "health/monitor.hpp"
#include "runtime/node.hpp"
#include "train/generator.hpp"

namespace zc::runtime {

struct ScenarioConfig;  // defined in runtime/scenario.hpp

/// The substrate one shard plugs into. In a fleet every shard shares the
/// simulation (one virtual clock) but owns its network; the harness picks
/// distinct rng labels per shard so fault/jitter streams decorrelate.
struct ShardEnv {
    sim::Simulation* sim = nullptr;
    net::Network* net = nullptr;
    crypto::CryptoProvider* provider = nullptr;

    /// Prefix for named rng forks ("" reproduces the classic single-consist
    /// stream labels, keeping Scenario runs on their historical seeds).
    std::string rng_label;

    /// Fleet-shared data-center keys: when set, the shard registers these
    /// public keys instead of generating its own DC keys, so one DC
    /// keypair verifies against every shard's directory. Null = the shard
    /// generates `config.dc_count` keys itself (single-consist mode).
    const std::vector<crypto::KeyPair>* dc_keys = nullptr;
};

class TrainShard {
public:
    TrainShard(const ScenarioConfig& config, ShardEnv env);
    ~TrainShard();

    TrainShard(const TrainShard&) = delete;
    TrainShard& operator=(const TrainShard&) = delete;

    /// Starts the main bus master (extra buses start at construction, as
    /// the classic build order did). Call after fault schedules are wired.
    void start();

    Node& node(std::size_t i) { return *nodes_.at(i); }
    const Node& node(std::size_t i) const { return *nodes_.at(i); }
    std::size_t node_count() const noexcept { return nodes_.size(); }

    /// Crash / restart (same path the harness schedules use). Restart
    /// rejoins in the highest view among surviving replicas and re-wires
    /// validated state transfer.
    void crash_node(NodeId id);
    void restart_node(NodeId id);

    std::uint64_t state_transfer_fetches() const noexcept { return state_transfer_fetches_; }
    std::uint64_t state_transfer_blocks() const noexcept { return state_transfer_blocks_; }
    std::uint64_t state_transfer_rejected() const noexcept { return state_transfer_rejected_; }

    /// Cumulative health counters of one node, for watchdog/time-series
    /// sampling on the harness's cadence.
    health::NodeSample snapshot_node(std::size_t i) const;

    /// Ground-truth views for a SafetyAuditor audit pass.
    std::vector<faults::ReplicaView> replica_views();

    crypto::KeyDirectory& directory() noexcept { return directory_; }
    const metrics::CostModel& node_costs() const noexcept { return node_costs_; }
    bus::Bus& train_bus() noexcept { return *bus_; }
    net::Network& network() noexcept { return *env_.net; }

    /// DC keys this shard generated (single-consist mode only; empty when
    /// the env supplied fleet-shared keys).
    const std::vector<crypto::KeyPair>& generated_dc_keys() const noexcept { return dc_keys_; }

private:
    struct SourceTap;
    struct ExtraBusRig {
        std::unique_ptr<train::SignalGenerator> generator;
        std::unique_ptr<bus::Bus> bus;
        std::vector<std::unique_ptr<SourceTap>> taps;
    };

    void build();
    void install_state_fetcher(Node& node);

    const ScenarioConfig& config() const noexcept { return *config_; }

    std::unique_ptr<ScenarioConfig> config_;  ///< shard-local copy
    ShardEnv env_;
    crypto::KeyDirectory directory_;
    metrics::CostModel node_costs_;
    std::vector<crypto::KeyPair> dc_keys_;
    std::unique_ptr<train::SignalGenerator> generator_;
    std::unique_ptr<bus::Bus> bus_;
    std::vector<ExtraBusRig> extra_buses_;
    std::vector<std::unique_ptr<Node>> nodes_;

    std::uint64_t state_transfer_fetches_ = 0;
    std::uint64_t state_transfer_blocks_ = 0;
    std::uint64_t state_transfer_rejected_ = 0;

    /// The auditor verifies signatures with its own metered context (an
    /// observer outside the deployment; its CPU is not a node's CPU).
    crypto::WorkMeter audit_meter_;
    std::unique_ptr<crypto::CryptoContext> audit_crypto_;
};

}  // namespace zc::runtime
