// One ZugChain node: the full software stack deployed on a shared train
// device (paper Fig. 3) — bus connector with the JRU parse/filter
// transform, the ZugChain communication layer (or, in baseline mode, a
// traditional PBFT client), the PBFT replica, the blockchain application
// with its persistent store, and the export server — all executing on a
// metered virtual CPU and communicating through the simulated network.
//
// Byzantine behaviours used by the evaluation (Fig. 9 and the fault-model
// tests) are injected here, at the node boundary, so the protocol
// libraries stay honest-by-construction.
#pragma once

#include <deque>
#include <map>
#include <memory>

#include "baseline/app.hpp"
#include "baseline/client.hpp"
#include "bus/bus.hpp"
#include "export/server.hpp"
#include "faults/adversary.hpp"
#include "faults/auditor.hpp"
#include "metrics/stats.hpp"
#include "net/network.hpp"
#include "pbft/replica.hpp"
#include "runtime/wire.hpp"
#include "sim/executor.hpp"
#include "trace/trace.hpp"
#include "train/jru_parser.hpp"
#include "zugchain/chain_app.hpp"
#include "zugchain/layer.hpp"

namespace zc::runtime {

enum class Mode { kZugChain, kBaseline };

/// Byzantine knobs (all off = honest node). The legacy Fig. 9 fields
/// (fabricate_rate, preprepare_delay, drop_preprepares, duplicate_rate,
/// mute, …) are now the first block of faults::AdversaryConfig; the full
/// safety-attack surface and named profiles live in src/faults.
using ByzantineBehavior = faults::AdversaryConfig;

struct NodeOptions {
    NodeId id = 0;
    std::uint32_t n = 4;
    std::uint32_t f = 1;
    Mode mode = Mode::kZugChain;

    SeqNo block_size = 10;  ///< requests per block = checkpoint interval

    // ZugChain layer timers (Fig. 8: 250 ms + 250 ms).
    Duration soft_timeout{milliseconds(250)};
    Duration hard_timeout{milliseconds(250)};
    std::size_t max_open_per_origin = 32;

    // Baseline timers (Fig. 8: 500 ms).
    Duration client_timeout{milliseconds(500)};
    Duration request_timeout{milliseconds(500)};

    Duration view_change_timeout{milliseconds(2000)};

    // PBFT batch ordering: one three-phase instance per batch. 1 request
    // per batch (and no linger) reproduces the classic pipeline.
    std::uint32_t batch_max_requests = 1;
    std::size_t batch_max_bytes = 128 * 1024;
    Duration batch_linger{0};

    /// The M-COM is quad-core but the protocol stack handles messages on a
    /// single thread; utilization is reported against `device_cores`.
    int device_cores = 4;
    int protocol_cores = 1;

    /// Bounded receive buffer (messages); overflow drops.
    std::size_t rx_queue_limit = 2048;

    std::size_t delete_quorum = 2;  ///< export: DC deletes needed to prune

    std::optional<std::filesystem::path> store_dir;

    /// Request-lifecycle trace sink shared across the node's components
    /// (null = tracing off; every trace point is a single pointer test).
    trace::TraceSink* trace = nullptr;

    ByzantineBehavior byzantine;

    /// Safety auditor taps (null = auditing off). The node reports bus
    /// inputs, logged payloads and crashes; the auditor checks Alg. 1's
    /// no-lost-input guarantee from them.
    faults::SafetyAuditor* auditor = nullptr;
};

class Node final : public net::Endpoint, public bus::BusTap {
public:
    Node(NodeOptions options, sim::Simulation& sim, net::Network& network,
         crypto::CryptoProvider& provider, const crypto::KeyDirectory& directory,
         crypto::KeyPair key, const metrics::CostModel& costs);
    ~Node() override;

    Node(const Node&) = delete;
    Node& operator=(const Node&) = delete;

    // -- substrate callbacks ---------------------------------------------
    void on_telegram(const bus::Telegram& telegram) override;  // primary bus (source 0)

    /// Input from an additional bus/link (paper §III-C "Multiple Input
    /// Sources"); each source keeps its own queue in the layer.
    void on_telegram_from(std::uint32_t source, const bus::Telegram& telegram);

    void deliver(net::EndpointId from, Bytes message) override;

    /// Proposes the emergency header-only trim agreement (paper error
    /// scenario (v)); once ordered, all replicas trim bodies <= `up_to`.
    void request_emergency_trim(Height up_to);

    // -- control ----------------------------------------------------------

    /// Power loss: stops consuming bus and network input, drops every
    /// queued-but-unprocessed protocol job, and marks the network endpoint
    /// down so in-flight messages are dropped (and counted) at the NIC.
    void crash() noexcept;

    /// Reboot after a crash: reloads the persisted chain (truncating any
    /// torn tail), rebuilds the volatile protocol stack resuming at the
    /// durable head, and re-arms the network endpoint. `start_view` is the
    /// harness's hint of the view the cluster currently runs; catch-up
    /// beyond the durable head happens via checkpoint-driven state
    /// transfer. No-op while the node is alive.
    void restart(View start_view = 0);

    bool alive() const noexcept { return alive_; }

    /// Starts/stops latency recording (scenario warmup control).
    void set_measuring(bool on) noexcept { measuring_ = on; }

    // -- observers ---------------------------------------------------------
    NodeId id() const noexcept { return options_.id; }
    pbft::Replica& replica() noexcept { return *replica_; }
    zugchain::CommunicationLayer* layer() noexcept { return layer_.get(); }
    baseline::BaselineClient* client() noexcept { return client_.get(); }
    zugchain::ChainApp& chain_app() noexcept { return *chain_app_; }
    chain::BlockStore& store() noexcept { return store_; }
    exporter::ExportServer& export_server() noexcept { return *export_server_; }
    sim::MeteredExecutor& executor() noexcept { return *executor_; }
    metrics::MemoryTracker& memory() noexcept { return memory_; }
    const metrics::LatencyRecorder& latency() const noexcept { return latency_; }
    const metrics::Series& latency_series() const noexcept { return latency_series_; }
    crypto::CryptoContext& crypto() noexcept { return *crypto_; }

    /// The mutation pipeline of a compromised node (null when honest).
    faults::Adversary* adversary() noexcept { return adversary_.get(); }

    std::uint64_t telegrams_seen() const noexcept { return telegrams_; }
    std::uint64_t rx_dropped() const noexcept { return executor_->dropped(); }
    std::uint64_t restarts() const noexcept { return restarts_; }

    /// Bus telegrams that arrived while the node was down.
    std::uint64_t telegrams_missed() const noexcept { return telegrams_missed_; }

    /// What the last `restart()` found when reloading the store.
    const chain::RecoveryReport& last_recovery() const noexcept { return last_recovery_; }

private:
    struct PbftTransportAdapter;
    struct LayerTransportAdapter;
    struct ConsensusAdapter;
    struct AppShim;
    struct LogShim;
    struct ExportTransportAdapter;
    struct ClientSenderAdapter;

    /// Builds (or rebuilds, on restart) the volatile protocol components
    /// on top of the durable store: chain app, replica, layer or baseline
    /// client, export server. `start_view`/`start_seq` position the
    /// replica for a rejoin (0/0 on first boot).
    void build_stack(View start_view, SeqNo start_seq);

    void dispatch(net::EndpointId from, const Envelope& envelope);
    void process_telegram(std::uint32_t source, const bus::Telegram& telegram);
    void maybe_fabricate(const bus::Telegram& telegram);
    void maybe_duplicate();
    void record_receive_time(const crypto::Digest& payload_digest);
    void record_logged(const pbft::Request& request);
    void send_enveloped(net::EndpointId to, Channel channel, Bytes body);

    NodeOptions options_;
    sim::Simulation& sim_;
    net::Network& network_;
    const metrics::CostModel& costs_;

    bool alive_ = true;
    bool measuring_ = false;

    crypto::WorkMeter meter_;
    std::unique_ptr<crypto::CryptoContext> crypto_;
    metrics::MemoryTracker memory_;
    std::unique_ptr<sim::MeteredExecutor> executor_;
    metrics::Gauge* rx_gauge_;

    std::map<std::uint32_t, train::JruParser> parsers_;  // one per input source
    chain::BlockStore store_;

    std::unique_ptr<PbftTransportAdapter> pbft_transport_;
    std::unique_ptr<LayerTransportAdapter> layer_transport_;
    std::unique_ptr<ConsensusAdapter> consensus_adapter_;
    std::unique_ptr<AppShim> app_shim_;
    std::unique_ptr<LogShim> log_shim_;
    std::unique_ptr<ExportTransportAdapter> export_transport_;
    std::unique_ptr<ClientSenderAdapter> client_sender_;

    std::unique_ptr<zugchain::ChainApp> chain_app_;
    std::unique_ptr<zugchain::CommunicationLayer> layer_;
    std::unique_ptr<baseline::BaselineClient> client_;
    std::unique_ptr<baseline::BaselineApp> baseline_app_;
    std::unique_ptr<pbft::Replica> replica_;
    std::unique_ptr<exporter::ExportServer> export_server_;

    // latency bookkeeping: payload digest -> bus receive time
    std::unordered_map<crypto::Digest, TimePoint, crypto::DigestHash> receive_times_;
    metrics::LatencyRecorder latency_;
    metrics::Series latency_series_;

    // Byzantine state
    std::unique_ptr<faults::Adversary> adversary_;
    Rng byz_rng_;
    std::uint64_t fabricate_counter_ = 0;
    std::deque<Bytes> recent_payloads_;  // for the duplicate-proposer attack

    std::uint64_t telegrams_ = 0;
    std::uint64_t telegrams_missed_ = 0;
    std::uint64_t restarts_ = 0;
    chain::RecoveryReport last_recovery_;
};

}  // namespace zc::runtime
