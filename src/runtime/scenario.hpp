// Experiment harness: builds a complete testbed — n ZugChain nodes on a
// shared bus and consensus Ethernet, optional data centers behind an LTE
// uplink, fault schedules — runs it on virtual time and collects the
// metrics the paper reports (latency, network utilization, CPU, memory,
// export timings).
//
// Mirrors the paper's testbed (§V-A): four M-COM-class devices, an
// MVB-like bus fed by an ATP signal generator, 100 Mbit/s consensus
// Ethernet, and an ~8.5 Mbit/s LTE link to cloud data centers.
#pragma once

#include <map>
#include <memory>

#include "export/data_center.hpp"
#include "health/monitor.hpp"
#include "health/timeseries.hpp"
#include "runtime/node.hpp"
#include "runtime/train_shard.hpp"
#include "train/generator.hpp"

namespace zc::runtime {

struct ScenarioConfig {
    Mode mode = Mode::kZugChain;
    std::uint32_t n = 4;
    std::uint32_t f = 1;
    std::uint64_t seed = 1;

    // Workload (paper defaults: 64 ms cycle, block size 10).
    Duration bus_cycle{milliseconds(64)};
    std::size_t payload_size = 1024;
    SeqNo block_size = 10;

    /// Additional input sources beyond the MVB (paper SIII-C "Multiple
    /// Input Sources"), e.g. a ProfiNet segment: each entry creates
    /// another bus with its own signal generator feeding all nodes.
    struct ExtraBus {
        Duration cycle{milliseconds(128)};
        std::size_t payload_size = 256;
    };
    std::vector<ExtraBus> extra_buses;

    // Timers (paper Fig. 8).
    Duration soft_timeout{milliseconds(250)};
    Duration hard_timeout{milliseconds(250)};
    Duration client_timeout{milliseconds(500)};
    Duration request_timeout{milliseconds(500)};
    Duration view_change_timeout{milliseconds(2000)};
    std::size_t max_open_per_origin = 32;

    // PBFT batch ordering (1 = classic request-per-instance pipeline).
    std::uint32_t batch_max_requests = 1;
    std::size_t batch_max_bytes = 128 * 1024;
    Duration batch_linger{0};

    /// "fast" (HMAC simulation signatures) or "ed25519" (real crypto);
    /// virtual CPU costs are identical either way.
    std::string crypto_provider = "fast";

    int device_cores = 4;
    int protocol_cores = 1;
    std::size_t rx_queue_limit = 2048;

    /// Mild bus unreliability by default (drops/reorders per [9]); clear
    /// for noise-free microbenchmarks.
    bus::TapFaults default_tap_faults{0.002, 0.001, 0.0005, 0.0005};
    std::map<NodeId, bus::TapFaults> tap_faults;

    std::map<NodeId, ByzantineBehavior> byzantine;

    /// Crash (power loss) schedule. `restart_after > 0` reboots the node
    /// that long after the crash; 0 leaves it down (fail-stop).
    struct CrashEntry {
        Duration at{0};
        NodeId node = 0;
        Duration restart_after{0};

        CrashEntry() = default;
        CrashEntry(Duration at, NodeId node, Duration restart_after = Duration{0})
            : at(at), node(node), restart_after(restart_after) {}
    };
    std::vector<CrashEntry> crash_schedule;

    /// Explicit restarts (for nodes crashed without `restart_after`).
    std::vector<std::pair<Duration, NodeId>> restart_schedule;

    /// Timed link outages: an LTE uplink dropping for minutes during an
    /// export, or one node transiently partitioned from its peers.
    struct LinkFlap {
        enum class Link { kLte, kNode };
        Duration at{0};
        Duration duration{seconds(30)};
        Link link = Link::kLte;
        NodeId node = 0;  ///< isolated node (Link::kNode only)
    };
    std::vector<LinkFlap> link_flaps;

    // Data centers (0 = no export infrastructure).
    std::uint32_t dc_count = 0;
    std::size_t delete_quorum = 2;
    Duration export_timeout{seconds(60)};

    // Export retry policy (see DcConfig): bounded rounds with exponential
    // backoff so an export straddling a link outage completes afterwards.
    std::uint32_t export_max_retries = 8;
    Duration export_retry_backoff{seconds(2)};
    Duration export_retry_backoff_max{seconds(30)};

    // Links.
    net::LinkProfile train_link = net::LinkProfile::train_ethernet();
    net::LinkProfile lte_link = net::LinkProfile::lte();
    net::LinkProfile dc_link{milliseconds(8), milliseconds(2), 1e9, 0.0};

    Duration warmup{seconds(2)};
    Duration duration{seconds(30)};
    Duration mem_sample_period{milliseconds(100)};

    /// If set, each node persists its chain under store_root/node-<id>
    /// (inspectable offline with tools/zc_inspect).
    std::optional<std::filesystem::path> store_root;

    /// Request-lifecycle trace sink attached to every node and data
    /// center (null = tracing off). DC events record under trace pid
    /// 100 + dc id, matching the network endpoint numbering.
    trace::TraceSink* trace_sink = nullptr;

    /// Health taps (null = off; zero scheduling cost then). Every
    /// `sample_every_cycles` bus cycles (from the monitor's config, or
    /// the time-series default below when only that is attached) the
    /// scenario snapshots all nodes on the virtual clock and feeds the
    /// watchdog monitor and/or the time-series sink.
    health::HealthMonitor* health_monitor = nullptr;
    health::TimeSeries* health_timeseries = nullptr;
    std::uint32_t timeseries_sample_cycles = 16;  ///< used without a monitor

    /// Safety auditor (null = off). The scenario wires node taps, marks
    /// nodes with Byzantine knobs as compromised, runs a periodic audit
    /// pass every `audit_period`, and `run_audit()` does the final one.
    faults::SafetyAuditor* auditor = nullptr;
    Duration audit_period{seconds(5)};
};

struct NodeReport {
    double cpu_cores = 0.0;           ///< protocol CPU in cores (1.0 = one core busy)
    double cpu_pct_of_device = 0.0;   ///< % of the device's total CPU (4 cores = 100 %)
    double mem_avg_mb = 0.0;
    double mem_peak_mb = 0.0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    double egress_utilization = 0.0;  ///< of the 100 Mbit/s link, in [0,1]
    std::uint64_t rx_dropped = 0;
    std::uint64_t view_changes = 0;
    std::uint64_t decided = 0;
};

struct ScenarioReport {
    metrics::Summary latency_ms;  ///< request reception -> logged, on node 0
    std::vector<NodeReport> nodes;
    double mean_egress_utilization = 0.0;
    std::uint64_t total_bytes = 0;
    std::uint64_t blocks = 0;            ///< chain height on node 0
    std::uint64_t logged_unique = 0;     ///< requests written to the chain (node 0)
    std::uint64_t duplicates_decided = 0;
    std::uint64_t rate_limited = 0;
    std::uint64_t suspects = 0;
    double elapsed_s = 0.0;
};

class Scenario {
public:
    explicit Scenario(ScenarioConfig config);
    ~Scenario();

    Scenario(const Scenario&) = delete;
    Scenario& operator=(const Scenario&) = delete;

    /// Runs warmup + measurement duration.
    void run();

    /// Continues the simulation (after run()) for ad-hoc experiment logic.
    void run_for(Duration d);

    ScenarioReport report();

    Node& node(std::size_t i) { return shard_->node(i); }
    std::size_t node_count() const noexcept { return shard_->node_count(); }

    /// Crashes / restarts a node immediately (same path the schedules
    /// use). Restart picks the highest view among the surviving replicas
    /// as the rejoin view hint and re-wires state transfer.
    void crash_node(NodeId id);
    void restart_node(NodeId id);

    /// Successful state-transfer fetches (and blocks copied) so far.
    std::uint64_t state_transfer_fetches() const noexcept {
        return shard_->state_transfer_fetches();
    }
    std::uint64_t state_transfer_blocks() const noexcept {
        return shard_->state_transfer_blocks();
    }

    /// Peer block ranges rejected by staged state-transfer validation
    /// (hash-link or checkpoint-digest mismatch — a poisoning attempt).
    std::uint64_t state_transfer_rejected() const noexcept {
        return shard_->state_transfer_rejected();
    }

    /// One audit pass over all replicas and data centers, feeding the
    /// auditor's report (no-op without a configured auditor).
    void run_audit();

    exporter::DataCenter& data_center(std::size_t i);
    sim::Simulation& sim() noexcept { return sim_; }
    net::Network& network() noexcept { return net_; }
    bus::Bus& train_bus() noexcept { return shard_->train_bus(); }
    TrainShard& shard() noexcept { return *shard_; }
    const ScenarioConfig& config() const noexcept { return config_; }

private:
    class DataCenterHost;

    void build();
    void apply_flap(const ScenarioConfig::LinkFlap& flap, bool blocked);
    void start_measuring();
    void sample_memory();
    void sample_health();
    void audit_tick();

    ScenarioConfig config_;
    sim::Simulation sim_;
    net::Network net_;
    std::unique_ptr<crypto::CryptoProvider> provider_;
    metrics::CostModel dc_costs_;
    std::unique_ptr<TrainShard> shard_;
    std::vector<std::unique_ptr<DataCenterHost>> dcs_;

    Duration health_period_{0};

    // measurement window bookkeeping
    bool measuring_ = false;
    TimePoint measure_start_{0};
    std::vector<Duration> busy_at_start_;
    std::vector<std::uint64_t> bytes_at_start_;
    std::vector<std::uint64_t> bytes_rx_at_start_;
    bool stop_sampling_ = false;
};

}  // namespace zc::runtime
