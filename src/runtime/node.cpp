#include "runtime/node.hpp"

#include "common/log.hpp"
#include "crypto/sha256.hpp"
#include "zugchain/wire.hpp"

namespace zc::runtime {

/// Data centers occupy endpoint ids kDcEndpointBase + dc.
inline constexpr net::EndpointId kDcEndpointBase = 100;

// ---- adapters -----------------------------------------------------------

struct Node::PbftTransportAdapter final : pbft::Transport {
    explicit PbftTransportAdapter(Node& node) : node(node) {}

    void send(NodeId to, const pbft::Message& m) override {
        // A compromised node's consensus traffic goes through the adversary
        // pipeline, which owns suppression, delay (delayed messages re-enter
        // the pipeline, they do not bypass it), tampering and emission.
        if (node.adversary_ != nullptr) {
            node.adversary_->pbft_send(to, m);
            return;
        }
        node.send_enveloped(to, Channel::kPbft, pbft::encode_message(m));
    }

    void broadcast(const pbft::Message& m) override {
        for (std::uint32_t i = 0; i < node.options_.n; ++i) {
            if (i == node.options_.id) continue;
            send(i, m);
        }
    }

    Node& node;
};

struct Node::LayerTransportAdapter final : zugchain::LayerTransport {
    explicit LayerTransportAdapter(Node& node) : node(node) {}

    void broadcast(const pbft::Request& request) override {
        pbft::Request r = request;
        if (node.adversary_ != nullptr && !node.adversary_->mutate_layer(r)) return;
        const Bytes body =
            zugchain::encode_peer_request(zugchain::PeerRequest{r, /*forwarded=*/false});
        const int copies =
            node.adversary_ != nullptr && node.adversary_->replay_layer() ? 2 : 1;
        for (int c = 0; c < copies; ++c) {
            for (std::uint32_t i = 0; i < node.options_.n; ++i) {
                if (i == node.options_.id) continue;
                node.send_enveloped(i, Channel::kLayer, body);
            }
        }
    }

    void forward(NodeId to, const pbft::Request& request) override {
        if (to == node.options_.id) return;
        pbft::Request r = request;
        if (node.adversary_ != nullptr && !node.adversary_->mutate_layer(r)) return;
        node.send_enveloped(
            to, Channel::kLayer,
            zugchain::encode_peer_request(zugchain::PeerRequest{r, /*forwarded=*/true}));
    }

    Node& node;
};

struct Node::ConsensusAdapter final : zugchain::ConsensusHandle {
    explicit ConsensusAdapter(Node& node) : node(node) {}
    bool propose(const pbft::Request& request) override { return node.replica_->propose(request); }
    void suspect() override { node.replica_->suspect(); }
    std::vector<pbft::Request> inflight_requests() const override {
        return node.replica_->inflight_requests();
    }
    Node& node;
};

/// LOG sink for ZugChain mode: records latency, feeds the chain.
struct Node::LogShim final : zugchain::LogSink {
    explicit LogShim(Node& node) : node(node) {}
    void log(const pbft::Request& request, NodeId origin, SeqNo seq) override {
        node.record_logged(request);
        node.chain_app_->log(request, origin, seq);
    }
    Node& node;
};

/// The replica's application in both modes: routes upcalls to the layer or
/// the baseline stack and keeps the export server informed of new blocks.
struct Node::AppShim final : pbft::Application {
    explicit AppShim(Node& node) : node(node) {}

    void deliver(const pbft::Request& request, SeqNo seq) override {
        if (node.options_.mode == Mode::kZugChain) {
            node.layer_->deliver(request, seq);
        } else {
            if (!request.is_null()) node.record_logged(request);
            node.baseline_app_->deliver(request, seq);
        }
    }

    crypto::Digest state_digest(SeqNo seq) override {
        const crypto::Digest digest = node.chain_app_->state_digest(seq);
        node.export_server_->on_new_block();
        return digest;
    }

    void new_primary(View view, NodeId primary) override {
        if (node.options_.mode == Mode::kZugChain) {
            node.layer_->new_primary(view, primary);
        } else {
            node.baseline_app_->new_primary(view, primary);
        }
    }

    void stable_checkpoint(SeqNo seq, const pbft::CheckpointProof& proof) override {
        if (node.options_.mode == Mode::kZugChain) node.layer_->stable_checkpoint(seq, proof);
    }

    void preprepared(const pbft::Request& request) override {
        if (node.options_.mode == Mode::kZugChain) node.layer_->preprepared(request);
    }

    void sync_state(SeqNo seq, const crypto::Digest& state) override {
        node.chain_app_->sync_state(seq, state);
    }

    Node& node;
};

struct Node::ExportTransportAdapter final : exporter::ServerTransport {
    explicit ExportTransportAdapter(Node& node) : node(node) {}
    void to_data_center(DataCenterId dc, const exporter::ExportMessage& m) override {
        if (node.adversary_ != nullptr) {
            exporter::ExportMessage tampered = m;
            if (!node.adversary_->mutate_export(tampered)) return;
            node.send_enveloped(kDcEndpointBase + dc, Channel::kExport,
                                exporter::encode_export_message(tampered));
            return;
        }
        node.send_enveloped(kDcEndpointBase + dc, Channel::kExport,
                            exporter::encode_export_message(m));
    }
    Node& node;
};

struct Node::ClientSenderAdapter final : baseline::ClientSender {
    explicit ClientSenderAdapter(Node& node) : node(node) {}

    void to_primary(const pbft::Request& request) override {
        const NodeId primary = node.replica_->primary();
        if (primary == node.options_.id) {
            node.replica_->propose(request);
        } else {
            node.send_enveloped(primary, Channel::kPbft,
                                pbft::encode_message(pbft::Message{request}));
        }
    }

    void to_all(const pbft::Request& request) override {
        const Bytes body = pbft::encode_message(pbft::Message{request});
        for (std::uint32_t i = 0; i < node.options_.n; ++i) {
            if (i == node.options_.id) {
                node.replica_->propose(request);
            } else {
                node.send_enveloped(i, Channel::kPbft, body);
            }
        }
    }

    Node& node;
};

// ---- Node ---------------------------------------------------------------

Node::Node(NodeOptions options, sim::Simulation& sim, net::Network& network,
           crypto::CryptoProvider& provider, const crypto::KeyDirectory& directory,
           crypto::KeyPair key, const metrics::CostModel& costs)
    : options_(options), sim_(sim), network_(network), costs_(costs),
      store_(memory_.gauge("chain"), options.store_dir),
      byz_rng_(sim.rng().fork("byz-" + std::to_string(options.id))) {
    crypto_ = std::make_unique<crypto::CryptoContext>(provider, directory, std::move(key), costs,
                                                      meter_);
    executor_ = std::make_unique<sim::MeteredExecutor>(sim, options_.protocol_cores,
                                                       options_.rx_queue_limit);
    rx_gauge_ = memory_.gauge("rx-queue");

    if (options_.byzantine.any()) {
        adversary_ = std::make_unique<faults::Adversary>(options_.byzantine, options_.id,
                                                         options_.n, sim_, *crypto_);
        adversary_->set_pbft_emit([this](NodeId to, const pbft::Message& m) {
            send_enveloped(to, Channel::kPbft, pbft::encode_message(m));
        });
    }

    pbft_transport_ = std::make_unique<PbftTransportAdapter>(*this);
    export_transport_ = std::make_unique<ExportTransportAdapter>(*this);
    app_shim_ = std::make_unique<AppShim>(*this);
    if (options_.mode == Mode::kZugChain) {
        layer_transport_ = std::make_unique<LayerTransportAdapter>(*this);
        consensus_adapter_ = std::make_unique<ConsensusAdapter>(*this);
        log_shim_ = std::make_unique<LogShim>(*this);
    } else {
        client_sender_ = std::make_unique<ClientSenderAdapter>(*this);
    }

    build_stack(/*start_view=*/0, /*start_seq=*/0);
}

void Node::build_stack(View start_view, SeqNo start_seq) {
    chain_app_ = std::make_unique<zugchain::ChainApp>(store_, *crypto_, options_.block_size);

    pbft::ReplicaConfig rcfg;
    rcfg.id = options_.id;
    rcfg.n = options_.n;
    rcfg.f = options_.f;
    rcfg.checkpoint_interval = options_.block_size;
    rcfg.view_change_timeout = options_.view_change_timeout;
    rcfg.request_timeout =
        options_.mode == Mode::kBaseline ? options_.request_timeout : Duration::zero();
    rcfg.dedup_proposals = options_.byzantine.duplicate_rate <= 0.0;
    rcfg.max_batch_requests = options_.batch_max_requests;
    rcfg.max_batch_bytes = options_.batch_max_bytes;
    rcfg.batch_linger = options_.batch_linger;
    rcfg.start_view = start_view;
    rcfg.start_seq = start_seq;

    replica_ = std::make_unique<pbft::Replica>(rcfg, sim_, *crypto_, *pbft_transport_,
                                               *app_shim_, memory_.gauge("pbft-log"));
    replica_->set_trace(options_.trace);
    store_.set_trace({options_.trace, options_.id, sim_.now_handle()});

    if (options_.mode == Mode::kZugChain) {
        zugchain::LayerConfig lcfg;
        lcfg.id = options_.id;
        lcfg.soft_timeout = options_.soft_timeout;
        lcfg.hard_timeout = options_.hard_timeout;
        lcfg.max_open_per_origin = options_.max_open_per_origin;
        layer_ = std::make_unique<zugchain::CommunicationLayer>(
            lcfg, sim_, *crypto_, *layer_transport_, *log_shim_, memory_.gauge("layer-queue"));
        layer_->attach_consensus(*consensus_adapter_);
        layer_->set_trace(options_.trace);
    } else {
        baseline::ClientConfig ccfg;
        ccfg.id = options_.id;
        ccfg.retransmit_timeout = options_.client_timeout;
        client_ = std::make_unique<baseline::BaselineClient>(ccfg, sim_, *crypto_,
                                                             *client_sender_);
        baseline_app_ = std::make_unique<baseline::BaselineApp>(*chain_app_, *client_);
    }

    // A rejoining replica must agree with the cluster about who leads the
    // current view before it can route requests.
    if (start_view > 0) app_shim_->new_primary(start_view, replica_->primary_of(start_view));

    exporter::ServerConfig ecfg;
    ecfg.id = options_.id;
    ecfg.checkpoint_interval = options_.block_size;
    ecfg.delete_quorum = options_.delete_quorum;
    export_server_ =
        std::make_unique<exporter::ExportServer>(ecfg, *crypto_, store_, *export_transport_);
    export_server_->set_proof_provider([this] { return replica_->latest_stable_proof(); });
    export_server_->set_trace({options_.trace, options_.id, sim_.now_handle()});
}

Node::~Node() = default;

void Node::crash() noexcept {
    if (!alive_) return;
    alive_ = false;
    // A power loss takes the run queue with it: queued protocol jobs are
    // dropped and their buffered bytes leave the rx accounting. In-flight
    // network messages get dropped (and counted) at the receiver NIC.
    executor_->clear_queue();
    rx_gauge_->set(0);
    network_.set_endpoint_down(options_.id, true);
    // The replica object survives until restart() rebuilds the stack, but
    // its timers must not: a request timer firing while the node is down
    // (or after rejoin, keyed to a long-gone view) would suspect a primary
    // that was never slow. The same goes for the adversary's delayed sends.
    if (replica_) replica_->cancel_timers();
    if (adversary_) adversary_->cancel_pending();
    if (options_.auditor != nullptr) options_.auditor->note_crashed(options_.id);
    if (options_.trace != nullptr) {
        options_.trace->event(options_.id, sim_.now(), trace::Phase::kNodeDown, options_.id,
                              store_.head_height());
    }
}

void Node::restart(View start_view) {
    if (alive_) return;
    restarts_ += 1;

    // Volatile protocol state dies with the process. Component destructors
    // cancel their pending virtual-time timers so no stale event fires
    // into freed state. Order respects reference dependencies.
    export_server_.reset();
    replica_.reset();
    layer_.reset();
    baseline_app_.reset();
    client_.reset();
    chain_app_.reset();
    parsers_.clear();
    receive_times_.clear();
    recent_payloads_.clear();

    // Reload the durable chain; a torn tail is truncated to the last valid
    // prefix and refilled by state transfer after rejoin. Without a store
    // directory the chain restarts from genesis (pure in-memory deployment).
    last_recovery_ = chain::RecoveryReport{};
    if (options_.store_dir) {
        store_ = chain::BlockStore::load(*options_.store_dir, memory_.gauge("chain"),
                                         &last_recovery_);
        if (!last_recovery_.clean()) {
            ZC_WARN("node", "node {} store recovery discarded {} block(s), resuming at head {}",
                    options_.id, last_recovery_.blocks_discarded,
                    last_recovery_.recovered_head);
        }
    } else {
        store_ = chain::BlockStore(memory_.gauge("chain"));
    }

    // Resume consensus at the durable head: the next checkpoint the peers
    // stabilize beyond it triggers sync_state -> state transfer.
    build_stack(start_view, store_.head_height() * options_.block_size);

    alive_ = true;
    network_.set_endpoint_down(options_.id, false);
    if (options_.trace != nullptr) {
        options_.trace->event(options_.id, sim_.now(), trace::Phase::kNodeRestart, options_.id,
                              store_.head_height());
    }
}

void Node::send_enveloped(net::EndpointId to, Channel channel, Bytes body) {
    if (!alive_) return;
    network_.send(options_.id, to, encode_envelope(channel, std::move(body)));
}

void Node::on_telegram(const bus::Telegram& telegram) { on_telegram_from(0, telegram); }

void Node::on_telegram_from(std::uint32_t source, const bus::Telegram& telegram) {
    if (!alive_) {
        telegrams_missed_ += 1;
        return;
    }
    telegrams_ += 1;
    executor_->submit([this, source, telegram] {
        process_telegram(source, telegram);
        return meter_.take();
    });
}

void Node::process_telegram(std::uint32_t source, const bus::Telegram& telegram) {
    crypto_->charge(costs_.bus_parse(telegram.payload.size()));
    const auto record = parsers_[source].process(telegram.payload);
    if (!record) return;  // corrupt frame: unusable, like a failed bus CRC

    const Bytes payload = codec::encode_to_bytes(*record);
    const crypto::Digest payload_digest = crypto::sha256(payload);
    record_receive_time(payload_digest);
    if (options_.auditor != nullptr) options_.auditor->note_received(options_.id, payload_digest);
    if (options_.trace != nullptr) {
        options_.trace->event(options_.id, sim_.now(), trace::Phase::kBusReceive,
                              trace::trace_id_from(payload_digest.data()), payload.size());
    }

    // The uniquifier spans (source, cycle) so two sources with coinciding
    // cycle counters sign distinct requests.
    const std::uint64_t uniquifier =
        (static_cast<std::uint64_t>(source) << 48) | telegram.cycle;
    if (options_.mode == Mode::kZugChain) {
        layer_->receive(payload, uniquifier, source);
    } else {
        client_->receive(payload, uniquifier);
    }

    maybe_fabricate(telegram);
    maybe_duplicate();
}

void Node::request_emergency_trim(Height up_to) {
    if (!alive_) return;
    executor_->submit([this, up_to] {
        const Bytes payload = zugchain::ChainApp::make_trim_request(up_to);
        const std::uint64_t uniquifier = (1ull << 56) + up_to;
        if (options_.mode == Mode::kZugChain) {
            layer_->receive(payload, uniquifier);
        } else {
            client_->receive(payload, uniquifier);
        }
        return meter_.take();
    });
}

void Node::maybe_fabricate(const bus::Telegram& telegram) {
    const ByzantineBehavior& byz = options_.byzantine;
    if (byz.fabricate_rate <= 0.0 || !byz_rng_.chance(byz.fabricate_rate)) return;
    if (options_.mode != Mode::kZugChain) return;

    // Fabricated requests: data never sent on the bus, sized like a real
    // record so the load comparison is fair.
    for (std::uint32_t i = 0; i < std::max(1u, byz.fabricate_burst); ++i) {
        pbft::Request fake;
        fake.payload = byz_rng_.bytes(std::max<std::size_t>(telegram.payload.size() / 2, 48));
        fake.origin = options_.id;
        fake.origin_seq = (1ull << 48) + fabricate_counter_++;
        fake.sig = crypto_->sign(fake.signing_bytes());
        layer_transport_->broadcast(fake);
        if (adversary_) adversary_->stats_mut().fabricated += 1;
    }
}

void Node::maybe_duplicate() {
    const ByzantineBehavior& byz = options_.byzantine;
    if (byz.duplicate_rate <= 0.0 || recent_payloads_.empty()) return;
    if (!byz_rng_.chance(byz.duplicate_rate)) return;
    if (replica_->primary() != options_.id) return;

    // Faulty primary re-proposes an already-logged payload under a fresh
    // uniquifier, bypassing the layer's filtering.
    pbft::Request dup;
    dup.payload = recent_payloads_[byz_rng_.next_below(recent_payloads_.size())];
    dup.origin = options_.id;
    dup.origin_seq = (1ull << 52) + fabricate_counter_++;
    dup.sig = crypto_->sign(dup.signing_bytes());
    if (adversary_) adversary_->stats_mut().duplicates_proposed += 1;
    replica_->propose(dup);
}

void Node::record_receive_time(const crypto::Digest& payload_digest) {
    receive_times_[payload_digest] = sim_.now();
    // Bound the map: entries for data decided long ago are useless.
    if (receive_times_.size() > 8192) receive_times_.clear();
}

void Node::record_logged(const pbft::Request& request) {
    const crypto::Digest digest = request.payload_digest();
    if (options_.auditor != nullptr) options_.auditor->note_logged(options_.id, digest);
    const auto it = receive_times_.find(digest);
    if (it != receive_times_.end()) {
        const Duration lat = sim_.now() - it->second;
        if (measuring_) {
            latency_.record(lat);
            latency_series_.add(sim_.now(), to_millis(lat));
        }
        receive_times_.erase(it);
    }
    if (options_.byzantine.duplicate_rate > 0.0) {
        recent_payloads_.push_back(request.payload);
        if (recent_payloads_.size() > 64) recent_payloads_.pop_front();
    }
}

void Node::deliver(net::EndpointId from, Bytes message) {
    if (!alive_) return;
    const std::size_t size = message.size();
    rx_gauge_->add(static_cast<std::int64_t>(size));
    const bool accepted = executor_->submit([this, from, msg = std::move(message), size] {
        rx_gauge_->add(-static_cast<std::int64_t>(size));
        crypto_->charge(costs_.handle(size));
        const auto envelope = decode_envelope(msg);
        if (envelope) dispatch(from, *envelope);
        return meter_.take();
    });
    if (!accepted) rx_gauge_->add(-static_cast<std::int64_t>(size));
}

void Node::dispatch(net::EndpointId from, const Envelope& envelope) {
    switch (envelope.channel) {
        case Channel::kPbft: {
            if (from >= options_.n) return;
            const auto m = pbft::decode_message(envelope.body);
            if (m) replica_->on_message(static_cast<NodeId>(from), *m);
            break;
        }
        case Channel::kLayer: {
            if (from >= options_.n || options_.mode != Mode::kZugChain) return;
            const auto m = zugchain::decode_peer_request(envelope.body);
            if (m) layer_->on_peer_request(static_cast<NodeId>(from), m->request, m->forwarded);
            break;
        }
        case Channel::kExport: {
            const auto m = exporter::decode_export_message(envelope.body);
            if (m) export_server_->on_message(*m);
            break;
        }
    }
}

}  // namespace zc::runtime
