#include "runtime/scenario.hpp"

#include "common/log.hpp"
#include "prof/prof.hpp"

namespace zc::runtime {

namespace {
constexpr net::EndpointId kDcBase = 100;
}

/// A data center plus its local executor/crypto, attached to the network.
class Scenario::DataCenterHost final : public net::Endpoint {
public:
    DataCenterHost(DataCenterId id, Scenario& scenario, crypto::KeyPair key)
        : id_(id), scenario_(scenario),
          crypto_(*scenario.provider_, scenario.shard_->directory(), std::move(key),
                  scenario.dc_costs_, meter_),
          executor_(scenario.sim_, 4), transport_(*this) {
        exporter::DcConfig cfg;
        cfg.id = id;
        cfg.n = scenario.config_.n;
        cfg.f = scenario.config_.f;
        cfg.checkpoint_interval = scenario.config_.block_size;
        cfg.reply_timeout = scenario.config_.export_timeout;
        cfg.max_retries = scenario.config_.export_max_retries;
        cfg.retry_backoff = scenario.config_.export_retry_backoff;
        cfg.retry_backoff_max = scenario.config_.export_retry_backoff_max;
        for (DataCenterId other = 0; other < scenario.config_.dc_count; ++other) {
            if (other != id) cfg.peers.push_back(other);
        }
        dc_ = std::make_unique<exporter::DataCenter>(cfg, scenario.sim_, crypto_, transport_);
    }

    void deliver(net::EndpointId from, Bytes message) override {
        (void)from;
        executor_.submit([this, msg = std::move(message)] {
            ZC_PROF_SCOPE(kDcIngest);
            crypto_.charge(scenario_.dc_costs_.handle(msg.size()));
            const auto envelope = decode_envelope(msg);
            if (envelope && envelope->channel == Channel::kExport) {
                const auto m = exporter::decode_export_message(envelope->body);
                if (m) dc_->on_message(*m);
            }
            return meter_.take();
        });
    }

    exporter::DataCenter& dc() noexcept { return *dc_; }

private:
    struct Transport final : exporter::DcTransport {
        explicit Transport(DataCenterHost& host) : host(host) {}
        void to_replica(NodeId replica, const exporter::ExportMessage& m) override {
            host.scenario_.net_.send(kDcBase + host.id_, replica,
                                     encode_envelope(Channel::kExport,
                                                     exporter::encode_export_message(m)));
        }
        void to_data_center(DataCenterId dc, const exporter::ExportMessage& m) override {
            host.scenario_.net_.send(kDcBase + host.id_, kDcBase + dc,
                                     encode_envelope(Channel::kExport,
                                                     exporter::encode_export_message(m)));
        }
        DataCenterHost& host;
    };

    DataCenterId id_;
    Scenario& scenario_;
    crypto::WorkMeter meter_;
    crypto::CryptoContext crypto_;
    sim::MeteredExecutor executor_;
    Transport transport_;
    std::unique_ptr<exporter::DataCenter> dc_;
};

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)), sim_(config_.seed), net_(sim_),
      provider_(crypto::make_provider(config_.crypto_provider)),
      dc_costs_(metrics::CostModel::cloud()) {
    build();
}

Scenario::~Scenario() = default;

void Scenario::build() {
    // Host-cost accounting: the process-wide profiler (if any) drives the
    // dispatch/event-loop attribution for this scenario's simulation.
    ZC_PROF_SCOPE(kSetup);
    sim_.set_profiler(prof::Profiler::active());

    // Network topology: full mesh of train Ethernet between nodes; LTE
    // between train and data centers; fast interconnect between DCs.
    // (Profile setup consumes no randomness, so it can precede the shard.)
    net_.set_default_profile(config_.train_link);
    for (std::uint32_t i = 0; i < config_.n; ++i) {
        for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
            net_.set_profile(i, kDcBase + d, config_.lte_link);
            net_.set_profile(kDcBase + d, i, config_.lte_link);
        }
    }
    for (std::uint32_t a = 0; a < config_.dc_count; ++a) {
        for (std::uint32_t b = 0; b < config_.dc_count; ++b) {
            if (a != b) net_.set_profile(kDcBase + a, kDcBase + b, config_.dc_link);
        }
    }

    // The consist itself: keys, auditor wiring, generator, buses, nodes,
    // state transfer. The empty rng label keeps the classic fork stream.
    ShardEnv env;
    env.sim = &sim_;
    env.net = &net_;
    env.provider = provider_.get();
    shard_ = std::make_unique<TrainShard>(config_, std::move(env));

    if (config_.auditor != nullptr && config_.audit_period > Duration::zero()) {
        sim_.schedule(config_.audit_period, [this] { audit_tick(); });
    }

    // Data centers (keys drawn by the shard, single-consist mode).
    for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
        dcs_.push_back(
            std::make_unique<DataCenterHost>(d, *this, shard_->generated_dc_keys()[d]));
        net_.attach(kDcBase + d, dcs_.back().get());
        dcs_.back()->dc().set_trace(config_.trace_sink, kDcBase + d);
    }

    // Fault schedules: crashes (optionally auto-restarting), explicit
    // restarts, and link flaps.
    for (const auto& c : config_.crash_schedule) {
        const NodeId id = c.node;
        sim_.schedule(c.at, [this, id] { crash_node(id); });
        if (c.restart_after > Duration::zero()) {
            sim_.schedule(c.at + c.restart_after, [this, id] { restart_node(id); });
        }
    }
    for (const auto& [when, id] : config_.restart_schedule) {
        const NodeId node = id;
        sim_.schedule(when, [this, node] { restart_node(node); });
    }
    for (const auto& flap : config_.link_flaps) {
        sim_.schedule(flap.at, [this, flap] { apply_flap(flap, true); });
        sim_.schedule(flap.at + flap.duration, [this, flap] { apply_flap(flap, false); });
    }

    shard_->start();
    sim_.schedule(config_.mem_sample_period, [this] { sample_memory(); });
    sim_.schedule(config_.warmup, [this] { start_measuring(); });

    // Health taps: one scheduled snapshot every N bus cycles; with no
    // monitor or time-series sink attached this costs nothing at all.
    if (config_.health_monitor != nullptr || config_.health_timeseries != nullptr) {
        const std::uint32_t cycles =
            config_.health_monitor != nullptr
                ? config_.health_monitor->config().sample_every_cycles
                : config_.timeseries_sample_cycles;
        health_period_ = config_.bus_cycle * std::max<std::uint32_t>(1, cycles);
        sim_.schedule(health_period_, [this] { sample_health(); });
    }
}

void Scenario::crash_node(NodeId id) { shard_->crash_node(id); }

void Scenario::restart_node(NodeId id) { shard_->restart_node(id); }

void Scenario::apply_flap(const ScenarioConfig::LinkFlap& flap, bool blocked) {
    if (flap.link == ScenarioConfig::LinkFlap::Link::kLte) {
        // The whole LTE uplink: every node <-> data-center pair.
        for (std::uint32_t i = 0; i < config_.n; ++i) {
            for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
                net_.set_blocked(i, kDcBase + d, blocked);
                net_.set_blocked(kDcBase + d, i, blocked);
            }
        }
    } else {
        // Transient partition: one node cut off from peers and DCs.
        for (std::uint32_t i = 0; i < config_.n; ++i) {
            if (i == flap.node) continue;
            net_.set_blocked(flap.node, i, blocked);
            net_.set_blocked(i, flap.node, blocked);
        }
        for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
            net_.set_blocked(flap.node, kDcBase + d, blocked);
            net_.set_blocked(kDcBase + d, flap.node, blocked);
        }
    }
    if (config_.trace_sink != nullptr) {
        const NodeId who =
            flap.link == ScenarioConfig::LinkFlap::Link::kLte ? kNoNode : flap.node;
        config_.trace_sink->event(who, sim_.now(),
                                  blocked ? trace::Phase::kLinkDown : trace::Phase::kLinkUp,
                                  static_cast<std::uint64_t>(who),
                                  static_cast<std::uint64_t>(flap.duration.count()));
    }
}

void Scenario::start_measuring() {
    measuring_ = true;
    measure_start_ = sim_.now();
    busy_at_start_.clear();
    bytes_at_start_.clear();
    bytes_rx_at_start_.clear();
    for (std::uint32_t i = 0; i < config_.n; ++i) {
        Node& node = shard_->node(i);
        node.set_measuring(true);
        busy_at_start_.push_back(node.executor().busy_time());
        bytes_at_start_.push_back(net_.stats(i).bytes_sent);
        bytes_rx_at_start_.push_back(net_.stats(i).bytes_received);
    }
}

void Scenario::sample_health() {
    std::vector<health::NodeSample> samples;
    samples.reserve(shard_->node_count());
    for (std::size_t i = 0; i < shard_->node_count(); ++i) {
        samples.push_back(shard_->snapshot_node(i));
    }
    if (config_.health_monitor != nullptr) config_.health_monitor->sample(sim_.now(), samples);
    if (config_.health_timeseries != nullptr) {
        config_.health_timeseries->sample(sim_.now(), samples);
    }
    sim_.schedule(health_period_, [this] { sample_health(); });
}

void Scenario::sample_memory() {
    if (stop_sampling_) return;
    if (measuring_) {
        for (std::size_t i = 0; i < shard_->node_count(); ++i) {
            shard_->node(i).memory().sample();
        }
    }
    sim_.schedule(config_.mem_sample_period, [this] { sample_memory(); });
}

void Scenario::run_audit() {
    if (config_.auditor == nullptr) return;
    ZC_PROF_SCOPE(kAudit);
    std::vector<faults::ReplicaView> replicas = shard_->replica_views();
    std::vector<faults::DataCenterView> dcs;
    dcs.reserve(dcs_.size());
    for (std::size_t d = 0; d < dcs_.size(); ++d) {
        faults::DataCenterView view;
        view.id = static_cast<DataCenterId>(d);
        view.store = &dcs_[d]->dc().store();
        view.proof = dcs_[d]->dc().last_proof();
        dcs.push_back(view);
    }
    config_.auditor->audit(replicas, dcs);
}

void Scenario::audit_tick() {
    run_audit();
    sim_.schedule(config_.audit_period, [this] { audit_tick(); });
}

void Scenario::run() {
    sim_.run_until(config_.warmup + config_.duration);
    stop_sampling_ = true;
}

void Scenario::run_for(Duration d) { sim_.run_until(sim_.now() + d); }

exporter::DataCenter& Scenario::data_center(std::size_t i) { return dcs_.at(i)->dc(); }

ScenarioReport Scenario::report() {
    ScenarioReport out;
    const Duration elapsed = sim_.now() - measure_start_;
    out.elapsed_s = to_seconds(elapsed);

    double util_sum = 0.0;
    for (std::uint32_t i = 0; i < config_.n; ++i) {
        Node& node = shard_->node(i);
        NodeReport nr;
        nr.cpu_cores = node.executor().utilization_since(measure_start_, busy_at_start_[i]);
        nr.cpu_pct_of_device = nr.cpu_cores / config_.device_cores * 100.0;
        if (!node.memory().samples_mb().empty()) {
            nr.mem_avg_mb = node.memory().samples_mb().mean();
            nr.mem_peak_mb = node.memory().samples_mb().max();
        }
        nr.bytes_sent = net_.stats(i).bytes_sent - bytes_at_start_[i];
        nr.bytes_received = net_.stats(i).bytes_received - bytes_rx_at_start_[i];
        nr.egress_utilization = net_.egress_utilization(i, measure_start_, bytes_at_start_[i],
                                                        config_.train_link.bandwidth_bps);
        nr.rx_dropped = node.rx_dropped();
        nr.view_changes = node.replica().stats().new_views_installed;
        nr.decided = node.replica().stats().decided;
        out.total_bytes += nr.bytes_sent;
        util_sum += nr.egress_utilization;
        out.nodes.push_back(nr);
    }
    out.mean_egress_utilization = util_sum / config_.n;

    Node& n0 = shard_->node(0);
    out.latency_ms = n0.latency().millis();
    out.blocks = n0.store().head_height();
    if (config_.mode == Mode::kZugChain) {
        const auto& stats = n0.layer()->stats();
        out.logged_unique = stats.logged;
        out.duplicates_decided = stats.duplicates_decided;
        out.rate_limited = stats.rate_limited;
        out.suspects = stats.suspects;
    } else {
        out.logged_unique = n0.replica().stats().decided;
    }
    return out;
}

}  // namespace zc::runtime
