#include "runtime/scenario.hpp"

#include "common/log.hpp"
#include "crypto/sha256.hpp"

namespace zc::runtime {

namespace {
constexpr net::EndpointId kDcBase = 100;
}

/// A data center plus its local executor/crypto, attached to the network.
class Scenario::DataCenterHost final : public net::Endpoint {
public:
    DataCenterHost(DataCenterId id, Scenario& scenario, crypto::KeyPair key)
        : id_(id), scenario_(scenario),
          crypto_(*scenario.provider_, scenario.directory_, std::move(key), scenario.dc_costs_,
                  meter_),
          executor_(scenario.sim_, 4), transport_(*this) {
        exporter::DcConfig cfg;
        cfg.id = id;
        cfg.n = scenario.config_.n;
        cfg.f = scenario.config_.f;
        cfg.checkpoint_interval = scenario.config_.block_size;
        cfg.reply_timeout = scenario.config_.export_timeout;
        cfg.max_retries = scenario.config_.export_max_retries;
        cfg.retry_backoff = scenario.config_.export_retry_backoff;
        cfg.retry_backoff_max = scenario.config_.export_retry_backoff_max;
        for (DataCenterId other = 0; other < scenario.config_.dc_count; ++other) {
            if (other != id) cfg.peers.push_back(other);
        }
        dc_ = std::make_unique<exporter::DataCenter>(cfg, scenario.sim_, crypto_, transport_);
    }

    void deliver(net::EndpointId from, Bytes message) override {
        (void)from;
        executor_.submit([this, msg = std::move(message)] {
            crypto_.charge(scenario_.dc_costs_.handle(msg.size()));
            const auto envelope = decode_envelope(msg);
            if (envelope && envelope->channel == Channel::kExport) {
                const auto m = exporter::decode_export_message(envelope->body);
                if (m) dc_->on_message(*m);
            }
            return meter_.take();
        });
    }

    exporter::DataCenter& dc() noexcept { return *dc_; }

private:
    struct Transport final : exporter::DcTransport {
        explicit Transport(DataCenterHost& host) : host(host) {}
        void to_replica(NodeId replica, const exporter::ExportMessage& m) override {
            host.scenario_.net_.send(kDcBase + host.id_, replica,
                                     encode_envelope(Channel::kExport,
                                                     exporter::encode_export_message(m)));
        }
        void to_data_center(DataCenterId dc, const exporter::ExportMessage& m) override {
            host.scenario_.net_.send(kDcBase + host.id_, kDcBase + dc,
                                     encode_envelope(Channel::kExport,
                                                     exporter::encode_export_message(m)));
        }
        DataCenterHost& host;
    };

    DataCenterId id_;
    Scenario& scenario_;
    crypto::WorkMeter meter_;
    crypto::CryptoContext crypto_;
    sim::MeteredExecutor executor_;
    Transport transport_;
    std::unique_ptr<exporter::DataCenter> dc_;
};

/// Adapts a secondary bus tap to a node input source.
struct Scenario::SourceTap final : bus::BusTap {
    SourceTap(Node& node, std::uint32_t source) : node(node), source(source) {}
    void on_telegram(const bus::Telegram& telegram) override {
        node.on_telegram_from(source, telegram);
    }
    Node& node;
    std::uint32_t source;
};

Scenario::Scenario(ScenarioConfig config)
    : config_(std::move(config)), sim_(config_.seed), net_(sim_),
      provider_(crypto::make_provider(config_.crypto_provider)),
      dc_costs_(metrics::CostModel::cloud()) {
    build();
}

Scenario::~Scenario() = default;

void Scenario::build() {
    // Keys for nodes and data centers (the permissioned membership).
    Rng keyrng = sim_.rng().fork("keys");
    std::vector<crypto::KeyPair> node_keys;
    for (std::uint32_t i = 0; i < config_.n; ++i) {
        node_keys.push_back(provider_->generate(keyrng));
        directory_.register_key(i, node_keys.back().pub);
    }
    std::vector<crypto::KeyPair> dc_keys;
    for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
        dc_keys.push_back(provider_->generate(keyrng));
        directory_.register_key(exporter::dc_key_id(d), dc_keys.back().pub);
    }

    // Safety auditor: an observer outside the deployment with its own key
    // (drawn after the membership keys so node/dc key streams are
    // unchanged) and read access to the shared key directory.
    if (config_.auditor != nullptr) {
        audit_crypto_ = std::make_unique<crypto::CryptoContext>(
            *provider_, directory_, provider_->generate(keyrng), node_costs_, audit_meter_);
        config_.auditor->configure(
            config_.f, config_.block_size,
            [this](std::uint32_t signer, BytesView message, const crypto::Signature& sig) {
                return audit_crypto_->verify(signer, message, sig);
            });
        for (const auto& [id, byz] : config_.byzantine) {
            if (byz.any()) config_.auditor->set_compromised(id);
        }
        if (config_.trace_sink != nullptr) {
            config_.auditor->set_trace({config_.trace_sink, kNoNode, sim_.now_handle()});
        }
        if (config_.audit_period > Duration::zero()) {
            sim_.schedule(config_.audit_period, [this] { audit_tick(); });
        }
    }

    // Network topology: full mesh of train Ethernet between nodes; LTE
    // between train and data centers; fast interconnect between DCs.
    net_.set_default_profile(config_.train_link);
    for (std::uint32_t i = 0; i < config_.n; ++i) {
        for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
            net_.set_profile(i, kDcBase + d, config_.lte_link);
            net_.set_profile(kDcBase + d, i, config_.lte_link);
        }
    }
    for (std::uint32_t a = 0; a < config_.dc_count; ++a) {
        for (std::uint32_t b = 0; b < config_.dc_count; ++b) {
            if (a != b) net_.set_profile(kDcBase + a, kDcBase + b, config_.dc_link);
        }
    }

    // Signal source and bus.
    train::GeneratorConfig gen_cfg;
    gen_cfg.payload_size = config_.payload_size;
    generator_ = std::make_unique<train::SignalGenerator>(gen_cfg, sim_.rng().fork("atp"));
    bus_ = std::make_unique<bus::Bus>(sim_, config_.bus_cycle, *generator_);

    // Nodes.
    for (std::uint32_t i = 0; i < config_.n; ++i) {
        NodeOptions opts;
        opts.id = i;
        opts.n = config_.n;
        opts.f = config_.f;
        opts.mode = config_.mode;
        opts.block_size = config_.block_size;
        opts.soft_timeout = config_.soft_timeout;
        opts.hard_timeout = config_.hard_timeout;
        opts.max_open_per_origin = config_.max_open_per_origin;
        opts.client_timeout = config_.client_timeout;
        opts.request_timeout = config_.request_timeout;
        opts.view_change_timeout = config_.view_change_timeout;
        opts.batch_max_requests = config_.batch_max_requests;
        opts.batch_max_bytes = config_.batch_max_bytes;
        opts.batch_linger = config_.batch_linger;
        opts.device_cores = config_.device_cores;
        opts.protocol_cores = config_.protocol_cores;
        opts.rx_queue_limit = config_.rx_queue_limit;
        opts.delete_quorum = config_.delete_quorum;
        opts.trace = config_.trace_sink;
        opts.auditor = config_.auditor;
        const auto byz = config_.byzantine.find(i);
        if (byz != config_.byzantine.end()) opts.byzantine = byz->second;
        if (config_.store_root) {
            opts.store_dir = *config_.store_root / ("node-" + std::to_string(i));
        }

        nodes_.push_back(std::make_unique<Node>(opts, sim_, net_, *provider_, directory_,
                                                node_keys[i], node_costs_));
        net_.attach(i, nodes_.back().get());

        const auto faults = config_.tap_faults.find(i);
        bus_->attach_tap(*nodes_.back(),
                         faults != config_.tap_faults.end() ? faults->second
                                                            : config_.default_tap_faults);
    }

    // Additional input sources (each an independent bus + generator).
    for (std::size_t b = 0; b < config_.extra_buses.size(); ++b) {
        const auto& spec = config_.extra_buses[b];
        ExtraBusRig rig;
        train::GeneratorConfig extra_gen;
        extra_gen.payload_size = spec.payload_size;
        rig.generator = std::make_unique<train::SignalGenerator>(
            extra_gen, sim_.rng().fork("extra-bus-" + std::to_string(b)));
        rig.bus = std::make_unique<bus::Bus>(sim_, spec.cycle, *rig.generator);
        for (auto& node : nodes_) {
            rig.taps.push_back(
                std::make_unique<SourceTap>(*node, static_cast<std::uint32_t>(b + 1)));
            rig.bus->attach_tap(*rig.taps.back(), config_.default_tap_faults);
        }
        rig.bus->start();
        extra_buses_.push_back(std::move(rig));
    }

    // Data centers.
    for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
        dcs_.push_back(std::make_unique<DataCenterHost>(d, *this, dc_keys[d]));
        net_.attach(kDcBase + d, dcs_.back().get());
        dcs_.back()->dc().set_trace(config_.trace_sink, kDcBase + d);
    }

    wire_state_transfer();

    // Fault schedules: crashes (optionally auto-restarting), explicit
    // restarts, and link flaps.
    for (const auto& c : config_.crash_schedule) {
        const NodeId id = c.node;
        sim_.schedule(c.at, [this, id] { crash_node(id); });
        if (c.restart_after > Duration::zero()) {
            sim_.schedule(c.at + c.restart_after, [this, id] { restart_node(id); });
        }
    }
    for (const auto& [when, id] : config_.restart_schedule) {
        const NodeId node = id;
        sim_.schedule(when, [this, node] { restart_node(node); });
    }
    for (const auto& flap : config_.link_flaps) {
        sim_.schedule(flap.at, [this, flap] { apply_flap(flap, true); });
        sim_.schedule(flap.at + flap.duration, [this, flap] { apply_flap(flap, false); });
    }

    bus_->start();
    sim_.schedule(config_.mem_sample_period, [this] { sample_memory(); });
    sim_.schedule(config_.warmup, [this] { start_measuring(); });

    // Health taps: one scheduled snapshot every N bus cycles; with no
    // monitor or time-series sink attached this costs nothing at all.
    if (config_.health_monitor != nullptr || config_.health_timeseries != nullptr) {
        const std::uint32_t cycles =
            config_.health_monitor != nullptr
                ? config_.health_monitor->config().sample_every_cycles
                : config_.timeseries_sample_cycles;
        health_period_ = config_.bus_cycle * std::max<std::uint32_t>(1, cycles);
        sim_.schedule(health_period_, [this] { sample_health(); });
    }
}

void Scenario::wire_state_transfer() {
    for (auto& node : nodes_) install_state_fetcher(*node);
}

void Scenario::install_state_fetcher(Node& node) {
    // State transfer (paper §III-D discussion (ii)): a lagging replica
    // fetches missing blocks from a peer, stages them, and validates the
    // staged range — contiguity, parent links, payload roots and the final
    // head hash against the quorum-certified checkpoint digest — before
    // anything touches the durable store or the layer's logged set. A peer
    // serving a forged-but-hash-linked range is rejected at the digest
    // check and the fetcher moves to the next peer. Modelled as a
    // validated in-process copy; the bulk-transfer cost is charged to the
    // CPU model (bandwidth cost is covered by the export experiments).
    // Re-installed after a restart (the chain app is rebuilt).
    Node* self = &node;
    self->chain_app().set_state_fetcher([this, self](SeqNo seq, const crypto::Digest& state) {
        const Height target = seq / config_.block_size;
        if (self->store().head_height() >= target) {
            const chain::BlockHeader* h = self->store().header(target);
            return h != nullptr && h->hash() == state;
        }
        const Height from = self->store().head_height() + 1;
        for (const auto& peer : nodes_) {
            if (peer.get() == self || !peer->alive()) continue;
            chain::BlockStore& src = peer->store();
            if (src.head_height() < target) continue;
            if (from < src.base_height()) continue;  // peer pruned too far

            // A compromised peer may serve a forged-but-hash-linked range
            // instead of its real chain (state-transfer poisoning).
            std::vector<chain::Block> staged;
            faults::Adversary* adv = peer->adversary();
            if (adv != nullptr && adv->config().poison_state_transfer) {
                staged = adv->forged_range(self->store().head_hash(), from, target);
                adv->stats_mut().st_poisonings += 1;
            } else {
                staged = src.range(from, target);
            }

#ifdef ZC_BREAK_VALIDATION
            // Pre-hardening behaviour, kept behind a build flag so CI can
            // prove the safety auditor catches the resulting poisoning:
            // blocks enter the durable store (and the layer's logged set)
            // before the checkpoint-digest check runs.
            bool ok = true;
            std::uint64_t copied = 0;
            for (chain::Block& b : staged) {
                self->crypto().charge_hash(b.size_bytes());
                std::vector<crypto::Digest> digests;
                for (const chain::LoggedRequest& req : b.requests) {
                    digests.push_back(crypto::sha256(req.payload));
                }
                try {
                    self->store().append(std::move(b));
                } catch (const std::invalid_argument&) {
                    ok = false;
                    break;
                }
                copied += 1;
                for (const crypto::Digest& d : digests) {
                    if (self->layer() != nullptr) self->layer()->mark_logged(d);
                    if (config_.auditor != nullptr) config_.auditor->note_logged(self->id(), d);
                }
            }
            if (ok && self->store().head_height() >= target &&
                self->store().head_hash() == state) {
                state_transfer_fetches_ += 1;
                state_transfer_blocks_ += copied;
                if (config_.trace_sink != nullptr) {
                    config_.trace_sink->event(self->id(), sim_.now(),
                                              trace::Phase::kStateTransfer, seq, copied);
                }
                return true;
            }
#else
            // Stage-then-adopt: validate the whole range incrementally
            // from our head up to the checkpoint digest, then append.
            bool ok = staged.size() == target - from + 1;
            crypto::Digest prev = self->store().head_hash();
            Height expect = from;
            for (const chain::Block& b : staged) {
                if (!ok) break;
                self->crypto().charge_hash(b.size_bytes());
                ok = b.header.height == expect && b.header.parent_hash == prev &&
                     b.payload_valid();
                prev = b.hash();
                expect += 1;
            }
            if (!ok || prev != state) {
                state_transfer_rejected_ += 1;
                ZC_WARN("scenario",
                        "node {} rejected state-transfer range [{}, {}] from node {}",
                        self->id(), from, target, peer->id());
                if (config_.trace_sink != nullptr) {
                    config_.trace_sink->event(self->id(), sim_.now(),
                                              trace::Phase::kStateTransferRejected, seq,
                                              peer->id());
                }
                continue;  // try the next peer
            }
            std::uint64_t copied = 0;
            for (chain::Block& b : staged) {
                for (const chain::LoggedRequest& req : b.requests) {
                    const crypto::Digest d = crypto::sha256(req.payload);
                    if (self->layer() != nullptr) self->layer()->mark_logged(d);
                    if (config_.auditor != nullptr) config_.auditor->note_logged(self->id(), d);
                }
                self->store().append(std::move(b));
                copied += 1;
            }
            state_transfer_fetches_ += 1;
            state_transfer_blocks_ += copied;
            if (config_.trace_sink != nullptr) {
                config_.trace_sink->event(self->id(), sim_.now(), trace::Phase::kStateTransfer,
                                          seq, copied);
            }
            return true;
#endif
        }
        return false;
    });
}

void Scenario::crash_node(NodeId id) { nodes_.at(id)->crash(); }

void Scenario::restart_node(NodeId id) {
    Node& target = *nodes_.at(id);
    if (target.alive()) return;
    // Rejoin in the highest view any surviving replica runs; the durable
    // chain and checkpoint-driven state transfer handle the rest.
    View view = 0;
    for (const auto& peer : nodes_) {
        if (peer->alive()) view = std::max(view, peer->replica().view());
    }
    target.restart(view);
    install_state_fetcher(target);
}

void Scenario::apply_flap(const ScenarioConfig::LinkFlap& flap, bool blocked) {
    if (flap.link == ScenarioConfig::LinkFlap::Link::kLte) {
        // The whole LTE uplink: every node <-> data-center pair.
        for (std::uint32_t i = 0; i < config_.n; ++i) {
            for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
                net_.set_blocked(i, kDcBase + d, blocked);
                net_.set_blocked(kDcBase + d, i, blocked);
            }
        }
    } else {
        // Transient partition: one node cut off from peers and DCs.
        for (std::uint32_t i = 0; i < config_.n; ++i) {
            if (i == flap.node) continue;
            net_.set_blocked(flap.node, i, blocked);
            net_.set_blocked(i, flap.node, blocked);
        }
        for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
            net_.set_blocked(flap.node, kDcBase + d, blocked);
            net_.set_blocked(kDcBase + d, flap.node, blocked);
        }
    }
    if (config_.trace_sink != nullptr) {
        const NodeId who =
            flap.link == ScenarioConfig::LinkFlap::Link::kLte ? kNoNode : flap.node;
        config_.trace_sink->event(who, sim_.now(),
                                  blocked ? trace::Phase::kLinkDown : trace::Phase::kLinkUp,
                                  static_cast<std::uint64_t>(who),
                                  static_cast<std::uint64_t>(flap.duration.count()));
    }
}

void Scenario::start_measuring() {
    measuring_ = true;
    measure_start_ = sim_.now();
    busy_at_start_.clear();
    bytes_at_start_.clear();
    bytes_rx_at_start_.clear();
    for (std::uint32_t i = 0; i < config_.n; ++i) {
        nodes_[i]->set_measuring(true);
        busy_at_start_.push_back(nodes_[i]->executor().busy_time());
        bytes_at_start_.push_back(net_.stats(i).bytes_sent);
        bytes_rx_at_start_.push_back(net_.stats(i).bytes_received);
    }
}

health::NodeSample Scenario::snapshot_node(Node& node) const {
    health::NodeSample s;
    s.node = node.id();
    s.alive = node.alive();
    const pbft::ReplicaStats& rs = node.replica().stats();
    s.decided = rs.decided;
    s.view_changes = rs.new_views_installed;
    if (node.layer() != nullptr) {
        const zugchain::LayerStats& ls = node.layer()->stats();
        s.logged = ls.logged;
        s.soft_timeouts = ls.soft_timeouts;
        s.hard_timeouts = ls.hard_timeouts;
    } else {
        s.logged = rs.decided;  // baseline mode: every decide is a log
    }
    s.head_height = node.store().head_height();
    s.stable_height = node.replica().last_stable() / config_.block_size;
    s.base_height = node.store().base_height();
    s.rx_dropped = node.rx_dropped();
    s.mem_mb = static_cast<double>(node.memory().total_bytes()) / (1024.0 * 1024.0);
    return s;
}

void Scenario::sample_health() {
    std::vector<health::NodeSample> samples;
    samples.reserve(nodes_.size());
    for (auto& node : nodes_) samples.push_back(snapshot_node(*node));
    if (config_.health_monitor != nullptr) config_.health_monitor->sample(sim_.now(), samples);
    if (config_.health_timeseries != nullptr) {
        config_.health_timeseries->sample(sim_.now(), samples);
    }
    sim_.schedule(health_period_, [this] { sample_health(); });
}

void Scenario::sample_memory() {
    if (stop_sampling_) return;
    if (measuring_) {
        for (auto& node : nodes_) node->memory().sample();
    }
    sim_.schedule(config_.mem_sample_period, [this] { sample_memory(); });
}

void Scenario::run_audit() {
    if (config_.auditor == nullptr) return;
    std::vector<faults::ReplicaView> replicas;
    replicas.reserve(nodes_.size());
    for (auto& node : nodes_) {
        faults::ReplicaView view;
        view.id = node->id();
        view.alive = node->alive();
        view.compromised = node->adversary() != nullptr;
        view.store = &node->store();
        view.layer = node->layer();
        replicas.push_back(view);
    }
    std::vector<faults::DataCenterView> dcs;
    dcs.reserve(dcs_.size());
    for (std::size_t d = 0; d < dcs_.size(); ++d) {
        faults::DataCenterView view;
        view.id = static_cast<DataCenterId>(d);
        view.store = &dcs_[d]->dc().store();
        view.proof = dcs_[d]->dc().last_proof();
        dcs.push_back(view);
    }
    config_.auditor->audit(replicas, dcs);
}

void Scenario::audit_tick() {
    run_audit();
    sim_.schedule(config_.audit_period, [this] { audit_tick(); });
}

void Scenario::run() {
    sim_.run_until(config_.warmup + config_.duration);
    stop_sampling_ = true;
}

void Scenario::run_for(Duration d) { sim_.run_until(sim_.now() + d); }

exporter::DataCenter& Scenario::data_center(std::size_t i) { return dcs_.at(i)->dc(); }

ScenarioReport Scenario::report() {
    ScenarioReport out;
    const Duration elapsed = sim_.now() - measure_start_;
    out.elapsed_s = to_seconds(elapsed);

    double util_sum = 0.0;
    for (std::uint32_t i = 0; i < config_.n; ++i) {
        Node& node = *nodes_[i];
        NodeReport nr;
        nr.cpu_cores = node.executor().utilization_since(measure_start_, busy_at_start_[i]);
        nr.cpu_pct_of_device = nr.cpu_cores / config_.device_cores * 100.0;
        if (!node.memory().samples_mb().empty()) {
            nr.mem_avg_mb = node.memory().samples_mb().mean();
            nr.mem_peak_mb = node.memory().samples_mb().max();
        }
        nr.bytes_sent = net_.stats(i).bytes_sent - bytes_at_start_[i];
        nr.bytes_received = net_.stats(i).bytes_received - bytes_rx_at_start_[i];
        nr.egress_utilization = net_.egress_utilization(i, measure_start_, bytes_at_start_[i],
                                                        config_.train_link.bandwidth_bps);
        nr.rx_dropped = node.rx_dropped();
        nr.view_changes = node.replica().stats().new_views_installed;
        nr.decided = node.replica().stats().decided;
        out.total_bytes += nr.bytes_sent;
        util_sum += nr.egress_utilization;
        out.nodes.push_back(nr);
    }
    out.mean_egress_utilization = util_sum / config_.n;

    Node& n0 = *nodes_[0];
    out.latency_ms = n0.latency().millis();
    out.blocks = n0.store().head_height();
    if (config_.mode == Mode::kZugChain) {
        const auto& stats = n0.layer()->stats();
        out.logged_unique = stats.logged;
        out.duplicates_decided = stats.duplicates_decided;
        out.rate_limited = stats.rate_limited;
        out.suspects = stats.suspects;
    } else {
        out.logged_unique = n0.replica().stats().decided;
    }
    return out;
}

}  // namespace zc::runtime
