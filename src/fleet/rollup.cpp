#include "fleet/rollup.hpp"

#include <cstdio>

#include "health/monitor.hpp"

namespace zc::fleet {

namespace {

void append_row_fields(std::string& out, const FleetSample& r, const char* fmt) {
    char buf[320];
    std::snprintf(buf, sizeof buf, fmt, to_seconds(r.at), r.trains, r.nodes_alive,
                  static_cast<unsigned long long>(r.head_sum),
                  static_cast<unsigned long long>(r.logged_sum),
                  static_cast<unsigned long long>(r.exported_sum),
                  static_cast<unsigned long long>(r.backlog_sum),
                  static_cast<unsigned long long>(r.active_alarms),
                  static_cast<unsigned long long>(r.ingest_depth),
                  static_cast<unsigned long long>(r.ingest_dropped));
    out += buf;
}

}  // namespace

std::string FleetRollup::csv() const {
    std::string out =
        "t_s,trains,nodes_alive,head_sum,logged_sum,exported_sum,backlog_sum,"
        "active_alarms,ingest_depth,ingest_dropped\n";
    for (const FleetSample& r : rows_) {
        append_row_fields(out, r, "%.3f,%u,%u,%llu,%llu,%llu,%llu,%llu,%llu,%llu\n");
    }
    return out;
}

std::string FleetRollup::json() const {
    std::string out = "[";
    bool first = true;
    for (const FleetSample& r : rows_) {
        if (!first) out += ",";
        first = false;
        append_row_fields(out, r,
                          "{\"t_s\":%.3f,\"trains\":%u,\"nodes_alive\":%u,"
                          "\"head_sum\":%llu,\"logged_sum\":%llu,\"exported_sum\":%llu,"
                          "\"backlog_sum\":%llu,\"active_alarms\":%llu,"
                          "\"ingest_depth\":%llu,\"ingest_dropped\":%llu}");
    }
    out += "]";
    return out;
}

FleetAlarmSummary FleetRollup::summarize(
    const std::vector<const health::HealthMonitor*>& monitors) {
    FleetAlarmSummary s;
    for (const health::HealthMonitor* monitor : monitors) {
        if (monitor == nullptr) continue;
        for (const health::Alarm& a : monitor->alarms()) {
            const auto kind = static_cast<unsigned>(a.kind);
            s.fired[kind] += 1;
            s.total_fired += 1;
            if (!a.cleared) {
                s.never_cleared[kind] += 1;
                s.total_never_cleared += 1;
            }
        }
    }
    return s;
}

std::string FleetAlarmSummary::json() const {
    std::string out = "{\"total_fired\":" + std::to_string(total_fired) +
                      ",\"total_never_cleared\":" + std::to_string(total_never_cleared) +
                      ",\"by_kind\":{";
    bool first = true;
    for (unsigned k = 0; k < health::kAlarmKindCount; ++k) {
        if (fired[k] == 0 && never_cleared[k] == 0) continue;
        if (!first) out += ",";
        first = false;
        out += "\"";
        out += health::alarm_kind_name(static_cast<health::AlarmKind>(k));
        out += "\":{\"fired\":" + std::to_string(fired[k]) +
               ",\"never_cleared\":" + std::to_string(never_cleared[k]) + "}";
    }
    out += "}}";
    return out;
}

}  // namespace zc::fleet
