// Fleet orchestrator: N independent train shards on one virtual clock,
// exporting into shared data centers.
//
// Each shard is a complete consist (runtime::TrainShard: 4-node PBFT
// cluster, MVB bus, ATP generator, durable chains) with its *own*
// net::Network — trains never talk to each other, so the per-shard
// endpoint plan (replicas 0..n-1, DCs at 100+d) needs no renumbering.
// All networks run on the single shared sim::Simulation: one event queue,
// one seed, one deterministic interleaving of the whole timetable.
//
// Shared infrastructure crossing shard boundaries:
//   * FleetDataCenter (one per company): a port on every shard network, a
//     per-train export core, one bounded ingest executor all trains
//     contend for, and fleet-shared DC keys registered in every shard's
//     key directory.
//   * FleetIndex: the cross-fleet archive index (dedup by block hash,
//     keyed by train id; cross-shard collisions pinned to zero).
//   * Per-shard HealthMonitors + a FleetRollup time series; per-shard
//     SafetyAuditors when auditing is on.
//
// Determinism strategy: construction order is fixed (DC keys, then shards
// in train order, then DCs in id order adding shards in train order);
// every named rng fork is prefixed "train-<t>-"; fork() itself advances
// the parent stream, so equal labels across shards still yield
// decorrelated streams. Same seed -> byte-identical reports, rollups and
// stores.
#pragma once

#include <memory>
#include <optional>

#include "faults/auditor.hpp"
#include "fleet/fleet_dc.hpp"
#include "fleet/rollup.hpp"
#include "health/monitor.hpp"
#include "runtime/scenario.hpp"
#include "trace/trace.hpp"

namespace zc::fleet {

struct FleetConfig {
    std::uint32_t trains = 8;
    std::uint64_t seed = 1;

    /// Per-shard template. Fleet overrides, per shard: store_root
    /// (store_root/train-<t>), auditor/byzantine wiring, delete_quorum
    /// (clamped to dc_count), dc_count (from the fleet). Health pointers
    /// and schedules inside the template are ignored — the fleet drives
    /// sampling, chaos and audits itself.
    runtime::ScenarioConfig train;

    std::uint32_t dc_count = 2;
    int dc_ingest_cores = 8;
    std::size_t dc_ingest_queue = 4096;

    /// LTE cell sharing: this many trains share one cell, so each shard's
    /// uplink gets bandwidth / trains_per_cell (static division — the
    /// deterministic stand-in for dynamic cell contention).
    std::uint32_t trains_per_cell = 8;

    /// Periodic exports: every train starts a round every export_period,
    /// staggered by export_period / trains so the DC frontend sees a
    /// steady arrival process, preferring DC (train % dc_count) and
    /// failing over to the next DC that is up.
    Duration export_period{seconds(10)};

    Duration warmup{seconds(2)};
    Duration duration{seconds(30)};

    /// Nodes persist chains under store_root/train-<t>/node-<i>
    /// (inspectable with zc_inspect --store-dir store_root).
    std::optional<std::filesystem::path> store_root;

    /// Fleet health sampling cadence (per-shard monitors + rollup rows).
    bool monitors = true;
    Duration sample_period{milliseconds(256)};
    health::MonitorConfig monitor;

    /// Scale the export-backlog watchdog to the export cadence (a fleet
    /// legitimately accumulates a period's worth of blocks between
    /// rounds; the single-consist default of 64 blocks would cry wolf).
    bool auto_export_thresholds = true;

    /// Per-shard safety auditors + a final audit pass in run().
    bool audit = false;
    Duration audit_period{seconds(5)};

    /// Per-train Byzantine knobs (train -> node -> behaviour).
    std::map<TrainId, std::map<NodeId, runtime::ByzantineBehavior>> byzantine;

    FleetChaos chaos;

    trace::TraceSink* trace_sink = nullptr;
};

/// Merged-trace pid plan: every train shard gets a disjoint 1000-wide pid
/// band (train t, node i -> 1000*(t+1)+i) while the shared data centers
/// keep the single-consist convention (DC d -> 100+d). Process labels and
/// tests use these helpers so the mapping has exactly one definition.
inline constexpr NodeId trace_pid(TrainId train, NodeId node) noexcept {
    return 1000u * (train + 1u) + node;
}
inline constexpr NodeId dc_trace_pid(DataCenterId dc) noexcept { return 100u + dc; }

struct TrainReport {
    TrainId train = 0;
    std::uint32_t nodes_alive = 0;
    Height head = 0;                ///< best chain head among live nodes
    std::uint64_t logged = 0;       ///< unique requests on the chain
    Height exported_head = 0;       ///< fleet-index archived head
    std::uint64_t exports_completed = 0;
    std::uint64_t exports_failed = 0;
    std::uint64_t active_alarms = 0;
    std::uint64_t audit_violations = 0;
};

struct FleetReport {
    std::uint32_t trains = 0;
    std::uint32_t dc_count = 0;
    double elapsed_s = 0.0;
    std::uint64_t logged_sum = 0;     ///< fleet-wide unique logged requests
    std::uint64_t head_sum = 0;
    std::uint64_t exported_unique = 0;
    std::uint64_t exported_duplicates = 0;
    std::uint64_t cross_shard_collisions = 0;
    std::uint64_t exports_completed = 0;
    std::uint64_t exports_failed = 0;
    std::uint64_t ingest_dropped = 0;
    std::uint64_t audit_violations = 0;
    FleetAlarmSummary alarms;
    std::vector<TrainReport> per_train;

    /// Deterministic single-line JSON (CI cmp's it across same-seed runs).
    std::string json() const;
};

class Fleet {
public:
    explicit Fleet(FleetConfig config);
    ~Fleet();

    Fleet(const Fleet&) = delete;
    Fleet& operator=(const Fleet&) = delete;

    /// Runs warmup + duration, then a final index sweep and (if enabled)
    /// a final audit pass on every shard.
    void run();

    /// Continues the simulation for ad-hoc experiment logic.
    void run_for(Duration d);

    FleetReport report();

    /// One audit pass over every shard (no-op unless auditing is on).
    /// Returns the fleet-wide violation count so far.
    std::uint64_t run_audit();

    runtime::TrainShard& shard(TrainId t) { return *shards_.at(t); }
    std::uint32_t train_count() const noexcept { return config_.trains; }
    FleetDataCenter& data_center(DataCenterId d) { return *dcs_.at(d); }
    std::uint32_t dc_count() const noexcept { return config_.dc_count; }
    const FleetIndex& index() const noexcept { return index_; }
    const FleetRollup& rollup() const noexcept { return rollup_; }
    const health::HealthMonitor* monitor(TrainId t) const;
    const faults::SafetyAuditor* auditor(TrainId t) const;
    sim::Simulation& sim() noexcept { return sim_; }
    net::Network& network(TrainId t) { return *networks_.at(t); }
    const FleetConfig& config() const noexcept { return config_; }

private:
    void build();
    void export_tick(TrainId train);
    void sample_tick();
    void audit_tick();
    void audit_shard(TrainId train);
    void set_dead_zone(TrainId train, bool blocked);

    FleetConfig config_;
    sim::Simulation sim_;
    std::unique_ptr<crypto::CryptoProvider> provider_;
    std::vector<crypto::KeyPair> dc_keys_;
    std::vector<std::unique_ptr<net::Network>> networks_;
    std::vector<std::unique_ptr<trace::OffsetSink>> shard_sinks_;
    std::vector<std::unique_ptr<faults::SafetyAuditor>> auditors_;
    std::vector<std::unique_ptr<runtime::TrainShard>> shards_;
    FleetIndex index_;
    std::vector<std::unique_ptr<FleetDataCenter>> dcs_;
    std::vector<std::unique_ptr<health::HealthMonitor>> monitors_;
    FleetRollup rollup_;
    bool stop_sampling_ = false;
};

}  // namespace zc::fleet
