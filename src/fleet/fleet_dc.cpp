#include "fleet/fleet_dc.hpp"

#include <variant>

#include "prof/prof.hpp"
#include "runtime/wire.hpp"

namespace zc::fleet {

namespace {
constexpr net::EndpointId kDcBase = 100;
}

void FleetIndex::observe(TrainId train, DataCenterId dc, const chain::BlockStore& store) {
    Height& cursor = cursors_[{dc, train}];
    const Height head = store.head_height();
    for (Height h = cursor + 1; h <= head; ++h) {
        const chain::BlockHeader* header = store.header(h);
        if (header == nullptr) continue;
        const crypto::Digest hash = header->hash();
        const auto [it, inserted] = by_hash_.try_emplace(hash, train, h);
        if (inserted) {
            TrainEntry& entry = trains_[train];
            entry.blocks += 1;
            if (h >= entry.head) {
                entry.head = h;
                entry.head_hash = hash;
            }
            unique_blocks_ += 1;
        } else if (it->second.first == train) {
            duplicate_blocks_ += 1;  // replicated via DC-to-DC sync
        } else {
            cross_shard_collisions_ += 1;  // a sibling shard's block — never expected
        }
    }
    if (head > cursor) cursor = head;
}

std::string FleetIndex::json() const {
    std::string out = "{\"unique_blocks\":" + std::to_string(unique_blocks_) +
                      ",\"duplicate_blocks\":" + std::to_string(duplicate_blocks_) +
                      ",\"cross_shard_collisions\":" + std::to_string(cross_shard_collisions_) +
                      ",\"trains\":[";
    bool first = true;
    for (const auto& [train, entry] : trains_) {
        if (!first) out += ",";
        first = false;
        out += "{\"train\":" + std::to_string(train) +
               ",\"head\":" + std::to_string(entry.head) +
               ",\"blocks\":" + std::to_string(entry.blocks) + "}";
    }
    out += "]}";
    return out;
}

/// One train's slice of this data center: the network port on that
/// shard's network, a crypto context bound to the shard's key directory,
/// and the per-chain export protocol core.
struct FleetDataCenter::ShardRig final : net::Endpoint, exporter::DcTransport {
    ShardRig(FleetDataCenter& host, TrainId train, net::Network& net,
             crypto::KeyDirectory& directory)
        : host(host), train(train), net(net),
          crypto(host.provider_, directory, host.key_, host.dc_costs_, meter) {
        exporter::DcConfig cfg;
        cfg.id = host.config_.id;
        cfg.n = host.config_.n;
        cfg.f = host.config_.f;
        cfg.checkpoint_interval = host.config_.checkpoint_interval;
        cfg.reply_timeout = host.config_.reply_timeout;
        cfg.max_retries = host.config_.max_retries;
        cfg.retry_backoff = host.config_.retry_backoff;
        cfg.retry_backoff_max = host.config_.retry_backoff_max;
        for (DataCenterId other = 0; other < host.config_.dc_count; ++other) {
            if (other != cfg.id) cfg.peers.push_back(other);
        }
        core = std::make_unique<exporter::DataCenter>(cfg, host.sim_, crypto, *this);
        if (host.trace_ != nullptr) core->set_trace(host.trace_, kDcBase + cfg.id);
    }

    // Inbound (from this shard's replicas or a peer DC's port on the same
    // shard network) funnels through the host's *shared* bounded
    // executor: every train contends for the same ingestion tier.
    void deliver(net::EndpointId from, Bytes message) override {
        (void)from;
        if (host.down_) return;
        // Enqueue time feeds the ingest-queue span: how long this message
        // waited for a shared executor core (arg = wire bytes, trace = train).
        const TimePoint enqueued = host.sim_.now();
        host.executor_.submit([this, enqueued, msg = std::move(message)] {
            ZC_PROF_SCOPE(kDcIngest);
            if (host.trace_ != nullptr) {
                host.trace_->span(kDcBase + host.config_.id, enqueued,
                                  host.sim_.now() - enqueued, trace::Phase::kDcIngestQueue,
                                  train, msg.size());
            }
            crypto.charge(host.dc_costs_.handle(msg.size()));
            const auto envelope = runtime::decode_envelope(msg);
            if (envelope && envelope->channel == runtime::Channel::kExport) {
                const auto m = exporter::decode_export_message(envelope->body);
                if (m) {
                    if (std::holds_alternative<exporter::DcSync>(*m)) {
                        ZC_PROF_SCOPE(kDcSync);
                        if (host.trace_ != nullptr) {
                            host.trace_->event(kDcBase + host.config_.id, host.sim_.now(),
                                               trace::Phase::kDcSync, train,
                                               envelope->body.size());
                        }
                        core->on_message(*m);
                    } else {
                        core->on_message(*m);
                    }
                }
            }
            return meter.take();
        });
    }

    void to_replica(NodeId replica, const exporter::ExportMessage& m) override {
        net.send(kDcBase + host.config_.id, replica,
                 runtime::encode_envelope(runtime::Channel::kExport,
                                          exporter::encode_export_message(m)));
    }
    // Peer DCs are reachable through their port on this same shard
    // network, so per-train sync traffic stays within the shard's
    // addressing plan (peer ports route it to their core for `train`).
    void to_data_center(DataCenterId dc, const exporter::ExportMessage& m) override {
        net.send(kDcBase + host.config_.id, kDcBase + dc,
                 runtime::encode_envelope(runtime::Channel::kExport,
                                          exporter::encode_export_message(m)));
    }

    FleetDataCenter& host;
    TrainId train;
    net::Network& net;
    crypto::WorkMeter meter;
    crypto::CryptoContext crypto;
    std::unique_ptr<exporter::DataCenter> core;
};

FleetDataCenter::FleetDataCenter(FleetDcConfig config, sim::Simulation& sim,
                                 crypto::CryptoProvider& provider, crypto::KeyPair key,
                                 FleetIndex& index, trace::TraceSink* trace)
    : config_(config), sim_(sim), provider_(provider), key_(std::move(key)), index_(index),
      trace_(trace), dc_costs_(metrics::CostModel::cloud()),
      executor_(sim, config.ingest_cores, config.ingest_queue) {}

FleetDataCenter::~FleetDataCenter() = default;

void FleetDataCenter::add_shard(TrainId train, net::Network& net,
                                crypto::KeyDirectory& directory) {
    if (rigs_.size() != train) {
        throw std::invalid_argument("fleet dc shards must be added in train order");
    }
    rigs_.push_back(std::make_unique<ShardRig>(*this, train, net, directory));
    net.attach(kDcBase + config_.id, rigs_.back().get());
    // Archive growth is indexed as exports complete (plus the periodic
    // observe_all sweep for sync-adopted blocks).
    exporter::DataCenter* core = rigs_.back()->core.get();
    core->set_completion_hook([this, train, core](const exporter::ExportRecord& record) {
        if (record.success) index_.observe(train, config_.id, core->store());
    });
}

void FleetDataCenter::start_export(TrainId train) {
    if (down_) return;
    rigs_.at(train)->core->start_export();
}

bool FleetDataCenter::exporting(TrainId train) const {
    return rigs_.at(train)->core->exporting();
}

void FleetDataCenter::set_down(bool down) {
    down_ = down;
    for (const auto& rig : rigs_) {
        rig->net.set_endpoint_down(kDcBase + config_.id, down);
    }
    if (down) executor_.clear_queue();  // the frontend loses its backlog too
}

void FleetDataCenter::observe_all() {
    for (const auto& rig : rigs_) index_.observe(rig->train, config_.id, rig->core->store());
}

exporter::DataCenter& FleetDataCenter::core(TrainId train) { return *rigs_.at(train)->core; }

const exporter::DataCenter& FleetDataCenter::core(TrainId train) const {
    return *rigs_.at(train)->core;
}

FleetDataCenter::Totals FleetDataCenter::totals() const {
    Totals t;
    for (const auto& rig : rigs_) {
        const exporter::DcStats& s = rig->core->stats();
        t.exports_completed += s.exports_completed;
        t.exports_failed += s.exports_failed;
        t.retries += s.retries;
        t.blocks_rejected += s.blocks_rejected;
        t.syncs_received += s.syncs_received;
    }
    return t;
}

}  // namespace zc::fleet
