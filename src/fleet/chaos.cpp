#include "fleet/chaos.hpp"

#include <algorithm>

namespace zc::fleet {

FleetChaos FleetChaos::staggered(std::uint32_t trains, std::uint32_t dc_count, Duration run) {
    FleetChaos chaos;
    const std::int64_t run_ms = std::max<std::int64_t>(run.count() / 1'000'000, 1000);

    // Crash wave: every other train loses one node, spread across the
    // middle 40% of the run so the fleet never has two shards mid-rejoin
    // at exactly the same instant. The victim rotates through the cluster
    // (including the primary) and always restarts, so a healthy run ends
    // with every alarm cleared.
    const std::uint32_t crash_trains = std::max<std::uint32_t>(trains / 2, 1);
    for (std::uint32_t k = 0; k < crash_trains; ++k) {
        TrainCrash c;
        c.train = static_cast<TrainId>(k * 2 % trains);
        c.node = static_cast<NodeId>(k % 4);
        c.at = milliseconds(run_ms / 5 + static_cast<std::int64_t>(k) * (run_ms * 2 / 5) /
                                             crash_trains);
        c.restart_after = milliseconds(std::min<std::int64_t>(run_ms / 6, 8000));
        chaos.crashes.push_back(c);
    }

    // LTE dead zones: every third train goes dark for ~12% of the run,
    // staggered across the first half (tunnels come early on the line).
    for (std::uint32_t t = 0; t < trains; t += 3) {
        DeadZone z;
        z.train = t;
        z.at = milliseconds(run_ms / 10 + static_cast<std::int64_t>(t) * (run_ms * 2 / 5) /
                                              std::max<std::uint32_t>(trains, 1));
        z.duration = milliseconds(run_ms / 8);
        chaos.dead_zones.push_back(z);
    }

    // DC failover: data center 0 drops at 45% of the run and returns at
    // 80%, forcing every shard's exports onto the surviving DCs. Requires
    // a second DC to fail over to.
    if (dc_count > 1) {
        DcOutage o;
        o.dc = 0;
        o.at = milliseconds(run_ms * 45 / 100);
        o.duration = milliseconds(run_ms * 35 / 100);
        chaos.dc_outages.push_back(o);
    }
    return chaos;
}

}  // namespace zc::fleet
