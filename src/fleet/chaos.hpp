// Fleet-level chaos schedules: deterministic, declarative fault plans
// applied across many train shards at once — staggered node crashes,
// per-train LTE dead zones (a consist passing through a tunnel loses its
// uplink while its on-train cluster keeps recording), and data-center
// outages that force the remaining shards' exports to fail over to the
// surviving DC.
//
// Everything is plain data resolved against the virtual clock; the same
// schedule on the same seed replays identically, so chaos runs stay
// byte-for-byte reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"

namespace zc::fleet {

/// Index of a train (shard) within the fleet, 0..trains-1.
using TrainId = std::uint32_t;

struct FleetChaos {
    /// Power-loss of one node on one train. `restart_after > 0` reboots
    /// it that long after the crash; 0 leaves it down (fail-stop).
    struct TrainCrash {
        TrainId train = 0;
        NodeId node = 0;
        Duration at{0};
        Duration restart_after{0};
    };

    /// LTE dead zone: one train's uplink to every data center drops for
    /// `duration` (tunnel / rural gap). Consensus and recording continue;
    /// exports straddling the window retry and complete afterwards.
    struct DeadZone {
        TrainId train = 0;
        Duration at{0};
        Duration duration{seconds(10)};
    };

    /// Data-center outage. `duration == 0` keeps the DC down for the rest
    /// of the run (fail-over target for the surviving DCs).
    struct DcOutage {
        DataCenterId dc = 0;
        Duration at{0};
        Duration duration{0};
    };

    std::vector<TrainCrash> crashes;
    std::vector<DeadZone> dead_zones;
    std::vector<DcOutage> dc_outages;

    bool empty() const noexcept {
        return crashes.empty() && dead_zones.empty() && dc_outages.empty();
    }

    /// The standard fleet drill used by `zugchain_sim --fleet-chaos` and
    /// the CI smoke job: a rolling wave of single-node crashes (each
    /// restarting, staggered so no two overlap within a shard), LTE dead
    /// zones sweeping every third train, and — when the fleet has more
    /// than one data center — DC 0 failing mid-run and recovering at 80%
    /// of the horizon. All offsets scale with `run` (warmup + duration).
    static FleetChaos staggered(std::uint32_t trains, std::uint32_t dc_count, Duration run);
};

}  // namespace zc::fleet
