#include "fleet/fleet.hpp"

#include <algorithm>

#include "common/log.hpp"
#include "prof/prof.hpp"

namespace zc::fleet {

namespace {
constexpr net::EndpointId kDcBase = 100;
}

Fleet::Fleet(FleetConfig config)
    : config_(std::move(config)), sim_(config_.seed),
      provider_(crypto::make_provider(config_.train.crypto_provider)) {
    if (config_.trains == 0) throw std::invalid_argument("fleet needs at least one train");
    build();
}

Fleet::~Fleet() = default;

void Fleet::build() {
    ZC_PROF_SCOPE(kSetup);
    sim_.set_profiler(prof::Profiler::active());

    // Fleet-shared data-center keys, drawn before any shard so the key
    // stream is independent of the fleet size.
    Rng dcrng = sim_.rng().fork("fleet-dc-keys");
    for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
        dc_keys_.push_back(provider_->generate(dcrng));
    }

    // Contended LTE: trains_per_cell shards share one cell, so each
    // shard's uplink is provisioned with its static share of the cell.
    net::LinkProfile lte = config_.train.lte_link;
    lte.bandwidth_bps /= std::max<std::uint32_t>(config_.trains_per_cell, 1);

    // Shards, in train order (construction order is part of the replay).
    for (TrainId t = 0; t < config_.trains; ++t) {
        networks_.push_back(std::make_unique<net::Network>(sim_));
        net::Network& net = *networks_.back();
        net.set_default_profile(config_.train.train_link);
        for (std::uint32_t i = 0; i < config_.train.n; ++i) {
            for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
                net.set_profile(i, kDcBase + d, lte);
                net.set_profile(kDcBase + d, i, lte);
            }
        }
        for (std::uint32_t a = 0; a < config_.dc_count; ++a) {
            for (std::uint32_t b = 0; b < config_.dc_count; ++b) {
                if (a != b) net.set_profile(kDcBase + a, kDcBase + b, config_.train.dc_link);
            }
        }

        if (config_.audit) auditors_.push_back(std::make_unique<faults::SafetyAuditor>());

        runtime::ScenarioConfig cfg = config_.train;
        cfg.seed = config_.seed;
        cfg.dc_count = config_.dc_count;
        if (config_.dc_count > 0) {
            cfg.delete_quorum = std::max<std::size_t>(
                1, std::min<std::size_t>(cfg.delete_quorum, config_.dc_count));
        }
        cfg.warmup = config_.warmup;
        cfg.duration = config_.duration;
        cfg.store_root.reset();
        if (config_.store_root) {
            cfg.store_root = *config_.store_root / ("train-" + std::to_string(t));
        }
        cfg.auditor = config_.audit ? auditors_.back().get() : nullptr;
        cfg.health_monitor = nullptr;       // the fleet drives sampling itself
        cfg.health_timeseries = nullptr;
        // Shard trace events are remapped into the train's pid band so a
        // single Tracer yields one merged fleet trace (see trace_pid()).
        if (config_.trace_sink != nullptr) {
            shard_sinks_.push_back(
                std::make_unique<trace::OffsetSink>(*config_.trace_sink, trace_pid(t, 0)));
            cfg.trace_sink = shard_sinks_.back().get();
        } else {
            cfg.trace_sink = nullptr;
        }
        cfg.byzantine.clear();
        const auto byz = config_.byzantine.find(t);
        if (byz != config_.byzantine.end()) cfg.byzantine = byz->second;
        // Shard-local fault schedules come from the fleet chaos plan, not
        // the per-train template.
        cfg.crash_schedule.clear();
        cfg.restart_schedule.clear();
        cfg.link_flaps.clear();

        runtime::ShardEnv env;
        env.sim = &sim_;
        env.net = &net;
        env.provider = provider_.get();
        env.rng_label = "train-" + std::to_string(t) + "-";
        env.dc_keys = &dc_keys_;
        shards_.push_back(std::make_unique<runtime::TrainShard>(cfg, std::move(env)));
    }

    // Shared data centers: each attaches one port per shard network and
    // one export core per train.
    for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
        FleetDcConfig dcfg;
        dcfg.id = d;
        dcfg.dc_count = config_.dc_count;
        dcfg.n = config_.train.n;
        dcfg.f = config_.train.f;
        dcfg.checkpoint_interval = config_.train.block_size;
        dcfg.reply_timeout = config_.train.export_timeout;
        dcfg.max_retries = config_.train.export_max_retries;
        dcfg.retry_backoff = config_.train.export_retry_backoff;
        dcfg.retry_backoff_max = config_.train.export_retry_backoff_max;
        dcfg.ingest_cores = config_.dc_ingest_cores;
        dcfg.ingest_queue = config_.dc_ingest_queue;
        dcs_.push_back(std::make_unique<FleetDataCenter>(dcfg, sim_, *provider_, dc_keys_[d],
                                                         index_, config_.trace_sink));
        for (TrainId t = 0; t < config_.trains; ++t) {
            dcs_.back()->add_shard(t, *networks_[t], shards_[t]->directory());
        }
    }

    // Fleet chaos plan.
    for (const auto& c : config_.chaos.crashes) {
        if (c.train >= config_.trains || c.node >= config_.train.n) continue;
        sim_.schedule(c.at, [this, c] { shards_[c.train]->crash_node(c.node); });
        if (c.restart_after > Duration::zero()) {
            sim_.schedule(c.at + c.restart_after,
                          [this, c] { shards_[c.train]->restart_node(c.node); });
        }
    }
    for (const auto& z : config_.chaos.dead_zones) {
        if (z.train >= config_.trains) continue;
        sim_.schedule(z.at, [this, z] { set_dead_zone(z.train, true); });
        sim_.schedule(z.at + z.duration, [this, z] { set_dead_zone(z.train, false); });
    }
    for (const auto& o : config_.chaos.dc_outages) {
        if (o.dc >= config_.dc_count) continue;
        sim_.schedule(o.at, [this, o] { dcs_[o.dc]->set_down(true); });
        if (o.duration > Duration::zero()) {
            sim_.schedule(o.at + o.duration, [this, o] { dcs_[o.dc]->set_down(false); });
        }
    }

    // Staggered periodic exports.
    if (config_.dc_count > 0 && config_.export_period > Duration::zero()) {
        const Duration stagger =
            config_.export_period / static_cast<std::int64_t>(config_.trains);
        for (TrainId t = 0; t < config_.trains; ++t) {
            sim_.schedule(config_.warmup + stagger * static_cast<std::int64_t>(t),
                          [this, t] { export_tick(t); });
        }
    }

    for (TrainId t = 0; t < config_.trains; ++t) shards_[t]->start();

    // Health: per-shard watchdogs on one lock-step cadence + the rollup.
    if (config_.monitors) {
        health::MonitorConfig mc = config_.monitor;
        mc.watch_export = config_.dc_count > 0;
        if (config_.auto_export_thresholds && config_.dc_count > 0) {
            // A fleet legitimately backs up one export period of blocks
            // between rounds; alarm only when several periods pile up.
            const std::int64_t blocks_per_period =
                config_.export_period.count() /
                std::max<std::int64_t>(
                    config_.train.bus_cycle.count() *
                        static_cast<std::int64_t>(config_.train.block_size),
                    1);
            mc.export_backlog_min_blocks =
                std::max<std::uint64_t>(mc.export_backlog_min_blocks,
                                        static_cast<std::uint64_t>(4 * blocks_per_period));
        }
        for (TrainId t = 0; t < config_.trains; ++t) {
            monitors_.push_back(std::make_unique<health::HealthMonitor>(mc));
        }
    }
    if (config_.sample_period > Duration::zero()) {
        sim_.schedule(config_.sample_period, [this] { sample_tick(); });
    }

    if (config_.audit && config_.audit_period > Duration::zero()) {
        sim_.schedule(config_.audit_period, [this] { audit_tick(); });
    }
}

void Fleet::export_tick(TrainId train) {
    // Prefer "our" company's DC, fail over to the next one that is up.
    for (std::uint32_t k = 0; k < config_.dc_count; ++k) {
        const DataCenterId d = (train + k) % config_.dc_count;
        if (dcs_[d]->down()) continue;
        if (!dcs_[d]->exporting(train)) dcs_[d]->start_export(train);
        break;
    }
    sim_.schedule(config_.export_period, [this, train] { export_tick(train); });
}

void Fleet::set_dead_zone(TrainId train, bool blocked) {
    net::Network& net = *networks_.at(train);
    for (std::uint32_t i = 0; i < config_.train.n; ++i) {
        for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
            net.set_blocked(i, kDcBase + d, blocked);
            net.set_blocked(kDcBase + d, i, blocked);
        }
    }
}

void Fleet::sample_tick() {
    if (stop_sampling_) return;
    for (auto& dc : dcs_) dc->observe_all();

    FleetSample row;
    row.at = sim_.now();
    row.trains = config_.trains;
    std::vector<health::NodeSample> samples;
    for (TrainId t = 0; t < config_.trains; ++t) {
        samples.clear();
        Height head = 0;
        Height base = 0;
        std::uint64_t logged = 0;
        for (std::size_t i = 0; i < shards_[t]->node_count(); ++i) {
            samples.push_back(shards_[t]->snapshot_node(i));
            const health::NodeSample& s = samples.back();
            if (s.alive) row.nodes_alive += 1;
            if (s.head_height >= head) {
                head = s.head_height;
                base = std::max<Height>(base, s.base_height);
            }
            logged = std::max(logged, s.logged);
        }
        if (!monitors_.empty()) monitors_[t]->sample(sim_.now(), samples);
        row.head_sum += head;
        row.logged_sum += logged;
        row.backlog_sum += head - std::min(base, head);
    }
    row.exported_sum = index_.unique_blocks();
    for (const auto& monitor : monitors_) {
        for (const health::Alarm& a : monitor->alarms()) {
            if (!a.cleared) row.active_alarms += 1;
        }
    }
    for (const auto& dc : dcs_) {
        row.ingest_depth += dc->ingest_queue_depth();
        row.ingest_dropped += dc->ingest_dropped();
    }
    rollup_.add(row);
    sim_.schedule(config_.sample_period, [this] { sample_tick(); });
}

void Fleet::audit_shard(TrainId train) {
    ZC_PROF_SCOPE(kAudit);
    std::vector<faults::ReplicaView> replicas = shards_[train]->replica_views();
    std::vector<faults::DataCenterView> dcs;
    dcs.reserve(dcs_.size());
    for (std::uint32_t d = 0; d < config_.dc_count; ++d) {
        faults::DataCenterView view;
        view.id = d;
        view.store = &dcs_[d]->core(train).store();
        view.proof = dcs_[d]->core(train).last_proof();
        dcs.push_back(view);
    }
    auditors_[train]->audit(replicas, dcs);
}

std::uint64_t Fleet::run_audit() {
    if (!config_.audit) return 0;
    std::uint64_t violations = 0;
    for (TrainId t = 0; t < config_.trains; ++t) {
        audit_shard(t);
        violations += auditors_[t]->report().violations.size();
    }
    return violations;
}

void Fleet::audit_tick() {
    for (TrainId t = 0; t < config_.trains; ++t) audit_shard(t);
    sim_.schedule(config_.audit_period, [this] { audit_tick(); });
}

void Fleet::run() {
    sim_.run_until(config_.warmup + config_.duration);
    stop_sampling_ = true;
    for (auto& dc : dcs_) dc->observe_all();
    run_audit();
}

void Fleet::run_for(Duration d) { sim_.run_until(sim_.now() + d); }

const health::HealthMonitor* Fleet::monitor(TrainId t) const {
    return monitors_.empty() ? nullptr : monitors_.at(t).get();
}

const faults::SafetyAuditor* Fleet::auditor(TrainId t) const {
    return auditors_.empty() ? nullptr : auditors_.at(t).get();
}

FleetReport Fleet::report() {
    FleetReport out;
    out.trains = config_.trains;
    out.dc_count = config_.dc_count;
    out.elapsed_s = to_seconds(sim_.now());
    out.exported_unique = index_.unique_blocks();
    out.exported_duplicates = index_.duplicate_blocks();
    out.cross_shard_collisions = index_.cross_shard_collisions();
    for (const auto& dc : dcs_) {
        const FleetDataCenter::Totals t = dc->totals();
        out.exports_completed += t.exports_completed;
        out.exports_failed += t.exports_failed;
        out.ingest_dropped += dc->ingest_dropped();
    }

    std::vector<const health::HealthMonitor*> monitor_views;
    for (const auto& m : monitors_) monitor_views.push_back(m.get());
    out.alarms = FleetRollup::summarize(monitor_views);

    for (TrainId t = 0; t < config_.trains; ++t) {
        TrainReport tr;
        tr.train = t;
        for (std::size_t i = 0; i < shards_[t]->node_count(); ++i) {
            const health::NodeSample s = shards_[t]->snapshot_node(i);
            if (s.alive) tr.nodes_alive += 1;
            tr.head = std::max<Height>(tr.head, s.head_height);
            tr.logged = std::max(tr.logged, s.logged);
        }
        const auto entry = index_.trains().find(t);
        if (entry != index_.trains().end()) tr.exported_head = entry->second.head;
        for (const auto& dc : dcs_) {
            const exporter::DcStats& s = dc->core(t).stats();
            tr.exports_completed += s.exports_completed;
            tr.exports_failed += s.exports_failed;
        }
        if (!monitors_.empty()) {
            for (const health::Alarm& a : monitors_[t]->alarms()) {
                if (!a.cleared) tr.active_alarms += 1;
            }
        }
        if (config_.audit) {
            tr.audit_violations = auditors_[t]->report().violations.size();
        }
        out.audit_violations += tr.audit_violations;
        out.head_sum += tr.head;
        out.logged_sum += tr.logged;
        out.per_train.push_back(tr);
    }
    return out;
}

std::string FleetReport::json() const {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"trains\":%u,\"dc_count\":%u,\"elapsed_s\":%.3f", trains, dc_count,
                  elapsed_s);
    std::string out = buf;
    out += ",\"logged_sum\":" + std::to_string(logged_sum);
    out += ",\"head_sum\":" + std::to_string(head_sum);
    out += ",\"exported_unique\":" + std::to_string(exported_unique);
    out += ",\"exported_duplicates\":" + std::to_string(exported_duplicates);
    out += ",\"cross_shard_collisions\":" + std::to_string(cross_shard_collisions);
    out += ",\"exports_completed\":" + std::to_string(exports_completed);
    out += ",\"exports_failed\":" + std::to_string(exports_failed);
    out += ",\"ingest_dropped\":" + std::to_string(ingest_dropped);
    out += ",\"audit_violations\":" + std::to_string(audit_violations);
    out += ",\"alarms\":" + alarms.json();
    out += ",\"per_train\":[";
    bool first = true;
    for (const TrainReport& t : per_train) {
        if (!first) out += ",";
        first = false;
        out += "{\"train\":" + std::to_string(t.train);
        out += ",\"nodes_alive\":" + std::to_string(t.nodes_alive);
        out += ",\"head\":" + std::to_string(t.head);
        out += ",\"logged\":" + std::to_string(t.logged);
        out += ",\"exported_head\":" + std::to_string(t.exported_head);
        out += ",\"exports_completed\":" + std::to_string(t.exports_completed);
        out += ",\"exports_failed\":" + std::to_string(t.exports_failed);
        out += ",\"active_alarms\":" + std::to_string(t.active_alarms);
        out += ",\"audit_violations\":" + std::to_string(t.audit_violations);
        out += "}";
    }
    out += "]}";
    return out;
}

}  // namespace zc::fleet
