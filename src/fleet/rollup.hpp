// Fleet-level health rollup: the dispatcher's wall display.
//
// Per-shard watchdogs (health::HealthMonitor, one per train) keep their
// node-granular alarm logic; this sink aggregates across shards on the
// fleet sampling cadence — fleet throughput, chain/export backlog, alive
// nodes, active alarms, DC ingest pressure — into a fixed-column time
// series, plus an end-of-run alarm summary grouped by kind. Both render
// deterministically (CSV/JSON) so same-seed fleet runs compare
// byte-for-byte.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "health/health.hpp"

namespace zc::health {
class HealthMonitor;
}

namespace zc::fleet {

/// One fleet-wide sample row (all counters cumulative across shards).
struct FleetSample {
    TimePoint at{0};
    std::uint32_t trains = 0;
    std::uint32_t nodes_alive = 0;
    std::uint64_t head_sum = 0;      ///< chain heads summed over shards
    std::uint64_t logged_sum = 0;    ///< unique logged requests, fleet-wide
    std::uint64_t exported_sum = 0;  ///< unique blocks in the fleet DC index
    std::uint64_t backlog_sum = 0;   ///< unpruned spans (head - base) summed
    std::uint64_t active_alarms = 0; ///< fired-and-not-cleared, all monitors
    std::uint64_t ingest_depth = 0;  ///< DC ingest queue depth, all DCs
    std::uint64_t ingest_dropped = 0;///< DC ingest drops (bounded queue), cum.
};

/// Alarm counts across every shard monitor, grouped by kind.
struct FleetAlarmSummary {
    std::array<std::uint64_t, health::kAlarmKindCount> fired{};
    std::array<std::uint64_t, health::kAlarmKindCount> never_cleared{};
    std::uint64_t total_fired = 0;
    std::uint64_t total_never_cleared = 0;

    std::string json() const;
};

class FleetRollup {
public:
    void add(const FleetSample& sample) { rows_.push_back(sample); }

    const std::vector<FleetSample>& rows() const noexcept { return rows_; }

    /// Fixed-column CSV, one row per sample (header included).
    std::string csv() const;

    /// Compact deterministic JSON array of row objects.
    std::string json() const;

    /// Aggregates the alarm histories of per-shard monitors (null entries
    /// are skipped). A run is "rollup-clean" when total_never_cleared == 0.
    static FleetAlarmSummary summarize(
        const std::vector<const health::HealthMonitor*>& monitors);

private:
    std::vector<FleetSample> rows_;
};

}  // namespace zc::fleet
