// Shared data center for a fleet of train shards.
//
// One FleetDataCenter is a single juridical archive serving every train:
// it attaches a port at the canonical DC endpoint (100 + id) on *each*
// shard's network, runs one exporter::DataCenter protocol core per train
// (export rounds are per-chain; proofs verify against that shard's key
// directory), and funnels every inbound message through one shared
// bounded MeteredExecutor — the DC frontend. A fleet hammering the same
// archive therefore contends for ingest capacity: when the queue fills,
// messages drop and the affected shard's export retries with backoff,
// exactly like a overloaded real ingestion tier.
//
// Exported blocks from all shards feed a FleetIndex keyed by train id:
// re-deliveries of a block already archived for the same train (DC-to-DC
// sync replication) are counted as dedup hits, while a block hash ever
// appearing under two different trains is a cross-shard collision — the
// isolation invariant the fleet tests pin to zero.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "export/data_center.hpp"
#include "fleet/chaos.hpp"
#include "net/network.hpp"
#include "sim/executor.hpp"

namespace zc::fleet {

/// Cross-fleet archive index: which block heights are safely exported for
/// each train, deduplicated by block hash across data centers.
class FleetIndex {
public:
    struct TrainEntry {
        Height head = 0;              ///< highest archived height
        std::uint64_t blocks = 0;     ///< unique blocks archived
        crypto::Digest head_hash{};   ///< hash at `head`
    };

    /// Walks `store` forward from this (dc, train) cursor, folding any
    /// newly archived blocks into the index.
    void observe(TrainId train, DataCenterId dc, const chain::BlockStore& store);

    const std::map<TrainId, TrainEntry>& trains() const noexcept { return trains_; }
    std::uint64_t unique_blocks() const noexcept { return unique_blocks_; }

    /// Blocks re-observed for the same (train, height) from another DC —
    /// expected replication, deduplicated away.
    std::uint64_t duplicate_blocks() const noexcept { return duplicate_blocks_; }

    /// Block hashes seen under two different trains. Always 0 unless a
    /// shard's chain leaked into a sibling's archive.
    std::uint64_t cross_shard_collisions() const noexcept { return cross_shard_collisions_; }

    /// Compact deterministic JSON (per-train heads + global counters).
    std::string json() const;

private:
    std::map<crypto::Digest, std::pair<TrainId, Height>> by_hash_;
    std::map<std::pair<DataCenterId, TrainId>, Height> cursors_;
    std::map<TrainId, TrainEntry> trains_;
    std::uint64_t unique_blocks_ = 0;
    std::uint64_t duplicate_blocks_ = 0;
    std::uint64_t cross_shard_collisions_ = 0;
};

struct FleetDcConfig {
    DataCenterId id = 0;
    std::uint32_t dc_count = 1;

    // Per-shard export protocol parameters (mirrors runtime::ScenarioConfig).
    std::uint32_t n = 4;
    std::uint32_t f = 1;
    SeqNo checkpoint_interval = 10;
    Duration reply_timeout{seconds(60)};
    std::uint32_t max_retries = 8;
    Duration retry_backoff{seconds(2)};
    Duration retry_backoff_max{seconds(30)};

    /// The shared ingestion tier: cores and bounded queue for *all* shards
    /// together (0 = unbounded queue).
    int ingest_cores = 8;
    std::size_t ingest_queue = 4096;
};

class FleetDataCenter {
public:
    FleetDataCenter(FleetDcConfig config, sim::Simulation& sim,
                    crypto::CryptoProvider& provider, crypto::KeyPair key, FleetIndex& index,
                    trace::TraceSink* trace = nullptr);
    ~FleetDataCenter();

    FleetDataCenter(const FleetDataCenter&) = delete;
    FleetDataCenter& operator=(const FleetDataCenter&) = delete;

    /// Registers one shard: attaches this DC's port at endpoint 100 + id
    /// on the shard's network and spins up the per-train protocol core
    /// verifying against that shard's key directory. Call once per train,
    /// in train order, for every DC (construction order is part of the
    /// deterministic replay).
    void add_shard(TrainId train, net::Network& net, crypto::KeyDirectory& directory);

    /// Starts an export round for one train (no-op while one is running).
    void start_export(TrainId train);
    bool exporting(TrainId train) const;

    /// Outage control: a down DC is unreachable on every shard network
    /// (inbound dropped at the endpoint) and refuses new export rounds.
    void set_down(bool down);
    bool down() const noexcept { return down_; }

    /// Folds every per-train store into the fleet index (cheap:
    /// cursor-incremental). Called on the fleet sampling cadence.
    void observe_all();

    exporter::DataCenter& core(TrainId train);
    const exporter::DataCenter& core(TrainId train) const;
    DataCenterId id() const noexcept { return config_.id; }
    std::size_t shard_count() const noexcept { return rigs_.size(); }

    std::uint64_t ingest_dropped() const noexcept { return executor_.dropped(); }
    std::size_t ingest_queue_depth() const noexcept { return executor_.queue_depth(); }

    struct Totals {
        std::uint64_t exports_completed = 0;
        std::uint64_t exports_failed = 0;
        std::uint64_t retries = 0;
        std::uint64_t blocks_rejected = 0;
        std::uint64_t syncs_received = 0;
    };
    Totals totals() const;

private:
    struct ShardRig;

    FleetDcConfig config_;
    sim::Simulation& sim_;
    crypto::CryptoProvider& provider_;
    crypto::KeyPair key_;
    FleetIndex& index_;
    trace::TraceSink* trace_;
    metrics::CostModel dc_costs_;
    sim::MeteredExecutor executor_;
    std::vector<std::unique_ptr<ShardRig>> rigs_;  ///< indexed by train id
    bool down_ = false;
};

}  // namespace zc::fleet
