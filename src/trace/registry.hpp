// Metrics registry: counters, gauges and log-bucketed histograms keyed by
// (node, name).
//
// Components obtain stable metric pointers once and bump them on hot paths
// without lookups or allocation. The registry serializes to a compact,
// deterministic JSON document (map iteration order is the sorted key
// order), which `zugchain_sim --metrics FILE` writes at the end of a run.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/ids.hpp"
#include "trace/histogram.hpp"

namespace zc::trace {

/// Monotonic event counter.
class Counter {
public:
    void add(std::uint64_t n = 1) noexcept { value_ += n; }
    std::uint64_t value() const noexcept { return value_; }

private:
    std::uint64_t value_ = 0;
};

/// Point-in-time signed value (queue depths, bytes held, ...).
class Gauge {
public:
    void set(std::int64_t v) noexcept { value_ = v; }
    void add(std::int64_t v) noexcept { value_ += v; }
    std::int64_t value() const noexcept { return value_; }

private:
    std::int64_t value_ = 0;
};

class MetricsRegistry {
public:
    /// Creates (or returns) the metric under (node, name). Returned
    /// pointers stay valid for the registry's lifetime.
    Counter* counter(NodeId node, const std::string& name);
    Gauge* gauge(NodeId node, const std::string& name);
    Histogram* histogram(NodeId node, const std::string& name);

    /// Merge of one named histogram across all nodes (per-phase summary
    /// rows in benches).
    Histogram merged_histogram(const std::string& name) const;

    /// Compact JSON: {"counters":{"<node>/<name>":v,...},"gauges":{...},
    /// "histograms":{"<node>/<name>":{"count":..,"min":..,"max":..,
    /// "mean":..,"p50":..,"p90":..,"p99":..},...}}. Deterministic.
    std::string json() const;

    using Key = std::pair<NodeId, std::string>;
    const std::map<Key, std::unique_ptr<Counter>>& counters() const noexcept {
        return counters_;
    }
    const std::map<Key, std::unique_ptr<Gauge>>& gauges() const noexcept { return gauges_; }
    const std::map<Key, std::unique_ptr<Histogram>>& histograms() const noexcept {
        return histograms_;
    }

private:
    std::map<Key, std::unique_ptr<Counter>> counters_;
    std::map<Key, std::unique_ptr<Gauge>> gauges_;
    std::map<Key, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace zc::trace
