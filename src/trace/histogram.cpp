#include "trace/histogram.hpp"

#include <algorithm>
#include <bit>

namespace zc::trace {

unsigned Histogram::bucket_index(std::uint64_t value) noexcept {
    if (value < kSubCount) return static_cast<unsigned>(value);
    const unsigned msb = static_cast<unsigned>(std::bit_width(value)) - 1;  // >= kSubBits
    const unsigned shift = msb - kSubBits;
    const auto sub = static_cast<unsigned>((value >> shift) - kSubCount);  // in [0, kSubCount)
    return kSubCount + shift * kSubCount + sub;
}

double Histogram::bucket_midpoint(unsigned index) noexcept {
    if (index < kSubCount) return static_cast<double>(index);
    const unsigned shift = (index - kSubCount) / kSubCount;
    const unsigned sub = (index - kSubCount) % kSubCount;
    const double lower = static_cast<double>((static_cast<std::uint64_t>(kSubCount) + sub)
                                             << shift);
    const double width = static_cast<double>(1ull << shift);
    return lower + width / 2.0;
}

void Histogram::record(std::uint64_t value, std::uint64_t count) {
    if (count == 0) return;
    buckets_[bucket_index(value)] += count;
    count_ += count;
    sum_ += value * count;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double Histogram::percentile(double q) const noexcept {
    if (count_ == 0) return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    // The extremes are tracked exactly; don't bucketize them.
    if (q == 0.0) return static_cast<double>(min_);
    if (q == 1.0) return static_cast<double>(max_);
    // Rank of the q-quantile sample (same convention as Summary: the
    // q*(n-1)-th order statistic, without interpolation across buckets).
    const auto rank = static_cast<std::uint64_t>(q * static_cast<double>(count_ - 1));
    std::uint64_t seen = 0;
    for (unsigned i = 0; i < kBucketCount; ++i) {
        seen += buckets_[i];
        if (seen > rank) {
            const double mid = bucket_midpoint(i);
            return std::clamp(mid, static_cast<double>(min_), static_cast<double>(max_));
        }
    }
    return static_cast<double>(max_);
}

void Histogram::merge(const Histogram& other) {
    if (other.count_ == 0) return;
    for (unsigned i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

}  // namespace zc::trace
