#include "trace/registry.hpp"

#include <cinttypes>
#include <cstdio>

namespace zc::trace {

namespace {

template <typename Map, typename Factory>
auto* get_or_create(Map& map, NodeId node, const std::string& name, Factory make) {
    auto& slot = map[{node, name}];
    if (!slot) slot = make();
    return slot.get();
}

void append_key(std::string& out, const MetricsRegistry::Key& key) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "\"%u/", key.first);
    out += buf;
    out += key.second;
    out += '"';
}

void append_f(std::string& out, double v) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f", v);
    out += buf;
}

}  // namespace

Counter* MetricsRegistry::counter(NodeId node, const std::string& name) {
    return get_or_create(counters_, node, name, [] { return std::make_unique<Counter>(); });
}

Gauge* MetricsRegistry::gauge(NodeId node, const std::string& name) {
    return get_or_create(gauges_, node, name, [] { return std::make_unique<Gauge>(); });
}

Histogram* MetricsRegistry::histogram(NodeId node, const std::string& name) {
    return get_or_create(histograms_, node, name, [] { return std::make_unique<Histogram>(); });
}

Histogram MetricsRegistry::merged_histogram(const std::string& name) const {
    Histogram out;
    for (const auto& [key, hist] : histograms_) {
        if (key.second == name) out.merge(*hist);
    }
    return out;
}

std::string MetricsRegistry::json() const {
    std::string out;
    out.reserve(4096);
    char buf[64];

    out += "{\"counters\":{";
    bool first = true;
    for (const auto& [key, c] : counters_) {
        if (!first) out += ',';
        first = false;
        append_key(out, key);
        std::snprintf(buf, sizeof buf, ":%" PRIu64, c->value());
        out += buf;
    }

    out += "},\"gauges\":{";
    first = true;
    for (const auto& [key, g] : gauges_) {
        if (!first) out += ',';
        first = false;
        append_key(out, key);
        std::snprintf(buf, sizeof buf, ":%" PRId64, g->value());
        out += buf;
    }

    out += "},\"histograms\":{";
    first = true;
    for (const auto& [key, h] : histograms_) {
        if (!first) out += ',';
        first = false;
        append_key(out, key);
        std::snprintf(buf, sizeof buf, ":{\"count\":%" PRIu64 ",\"min\":%" PRIu64
                                       ",\"max\":%" PRIu64 ",\"mean\":",
                      h->count(), h->min(), h->max());
        out += buf;
        append_f(out, h->mean());
        out += ",\"p50\":";
        append_f(out, h->percentile(0.5));
        out += ",\"p90\":";
        append_f(out, h->percentile(0.9));
        out += ",\"p99\":";
        append_f(out, h->percentile(0.99));
        out += '}';
    }
    out += "}}";
    return out;
}

}  // namespace zc::trace
