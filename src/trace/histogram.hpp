// Fixed-memory log-bucketed latency histogram (HDR-style).
//
// Values are recorded into logarithmic major buckets subdivided into 64
// linear sub-buckets, giving a worst-case relative error of 1/128 (<1 %)
// at a constant ~30 KB per histogram — unlike metrics::Summary, which
// retains every sample and is therefore reserved for small bench outputs.
// Intended unit on hot paths: nanoseconds of virtual time.
#pragma once

#include <array>
#include <cstdint>

namespace zc::trace {

class Histogram {
public:
    static constexpr unsigned kSubBits = 6;  ///< 64 sub-buckets per octave
    static constexpr unsigned kSubCount = 1u << kSubBits;
    static constexpr unsigned kOctaves = 64 - kSubBits;
    static constexpr unsigned kBucketCount = kSubCount + kOctaves * kSubCount;

    void record(std::uint64_t value) { record(value, 1); }
    void record(std::uint64_t value, std::uint64_t count);

    std::uint64_t count() const noexcept { return count_; }
    bool empty() const noexcept { return count_ == 0; }

    /// Exact extrema of the recorded values (not bucketized).
    std::uint64_t min() const noexcept { return count_ == 0 ? 0 : min_; }
    std::uint64_t max() const noexcept { return max_; }
    double mean() const noexcept {
        return count_ == 0 ? 0.0 : static_cast<double>(sum_) / static_cast<double>(count_);
    }
    std::uint64_t sum() const noexcept { return sum_; }

    /// q in [0, 1]. Returns the midpoint of the bucket containing the
    /// rank, clamped to the exact [min, max]; relative error <= 1/128.
    /// Returns 0 on an empty histogram (unlike Summary, no throw: hot
    /// paths must not carry exception plumbing).
    double percentile(double q) const noexcept;

    void merge(const Histogram& other);

    /// Bucket index for a value (exposed for tests).
    static unsigned bucket_index(std::uint64_t value) noexcept;

    /// Representative (midpoint) value of a bucket (exposed for tests).
    static double bucket_midpoint(unsigned index) noexcept;

private:
    std::array<std::uint64_t, kBucketCount> buckets_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = ~0ull;
    std::uint64_t max_ = 0;
};

}  // namespace zc::trace
