#include "trace/trace.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <set>

namespace zc::trace {

namespace {

struct PhaseInfo {
    const char* name;
    const char* category;
    unsigned category_index;
};

constexpr PhaseInfo kPhaseInfo[kPhaseCount] = {
    {"bus_receive", "bus", 0},
    {"layer_enqueue", "layer", 1},
    {"layer_filtered", "layer", 1},
    {"layer_propose", "layer", 1},
    {"layer_broadcast", "layer", 1},
    {"layer_forward", "layer", 1},
    {"layer_rate_limited", "layer", 1},
    {"soft_timeout", "layer", 1},
    {"hard_timeout", "layer", 1},
    {"suspect", "layer", 1},
    {"duplicate_decided", "layer", 1},
    {"preprepare", "pbft", 2},
    {"prepared", "pbft", 2},
    {"decide", "pbft", 2},
    {"checkpoint_stable", "pbft", 2},
    {"view_change_start", "pbft", 2},
    {"new_view", "pbft", 2},
    {"block_persist", "chain", 3},
    {"prune", "chain", 3},
    {"trim_bodies", "chain", 3},
    {"export_read", "export", 4},
    {"export_verify", "export", 4},
    {"export_delete", "export", 4},
    {"export_serve_read", "export", 4},
    {"export_serve_delete", "export", 4},
    {"node_down", "runtime", 5},
    {"node_restart", "runtime", 5},
    {"state_transfer", "runtime", 5},
    {"link_down", "runtime", 5},
    {"link_up", "runtime", 5},
    {"batch_proposed", "pbft", 2},
    {"state_transfer_rejected", "runtime", 5},
    {"audit_violation", "runtime", 5},
    {"dc_ingest_queue", "export", 4},
    {"dc_sync", "export", 4},
};

constexpr TimePoint kUnset{-1};

/// Aggregated-histogram names; decide->persist list is capped so a mode
/// that never persists (a DC store) cannot grow without bound.
constexpr std::size_t kMaxDecidedPending = 8192;
constexpr std::size_t kMaxLifecycleEntries = 1u << 16;

}  // namespace

const char* phase_name(Phase p) noexcept { return kPhaseInfo[static_cast<unsigned>(p)].name; }

const char* phase_category(Phase p) noexcept {
    return kPhaseInfo[static_cast<unsigned>(p)].category;
}

unsigned phase_category_index(Phase p) noexcept {
    return kPhaseInfo[static_cast<unsigned>(p)].category_index;
}

void Tracer::set_process_label(NodeId node, std::string label) {
    process_labels_[node] = std::move(label);
}

void Tracer::event(NodeId node, TimePoint at, Phase phase, TraceId trace, std::uint64_t arg) {
    if (capture_) events_.push_back({at, Duration::zero(), trace, arg, node, phase, false});
    if (registry_ != nullptr) aggregate(node, at, phase, trace, arg);
}

void Tracer::span(NodeId node, TimePoint start, Duration dur, Phase phase, TraceId trace,
                  std::uint64_t arg) {
    if (capture_) events_.push_back({start, dur, trace, arg, node, phase, true});
    if (registry_ == nullptr) return;
    registry_->counter(node, phase_name(phase))->add(1);
    registry_->histogram(node, std::string(phase_name(phase)) + "_ns")
        ->record(static_cast<std::uint64_t>(std::max<std::int64_t>(dur.count(), 0)));
}

void Tracer::aggregate(NodeId node, TimePoint at, Phase phase, TraceId trace,
                       std::uint64_t arg) {
    registry_->counter(node, phase_name(phase))->add(1);

    const auto record_ns = [&](const char* name, Duration d) {
        registry_->histogram(node, name)->record(
            static_cast<std::uint64_t>(std::max<std::int64_t>(d.count(), 0)));
    };

    switch (phase) {
        case Phase::kBusReceive: {
            if (lifecycle_.size() > kMaxLifecycleEntries) lifecycle_.clear();
            lifecycle_[life_key(node, trace)].receive = at;
            break;
        }
        case Phase::kLayerPropose:
        case Phase::kPrePrepare: {
            Lifecycle& life = lifecycle_[life_key(node, trace)];
            if (life.order_start == kUnset) {
                if (life.receive != kUnset) record_ns("layer_wait_ns", at - life.receive);
                life.order_start = at;
            }
            break;
        }
        case Phase::kDecide: {
            const auto it = lifecycle_.find(life_key(node, trace));
            if (it != lifecycle_.end()) {
                if (it->second.order_start != kUnset) {
                    record_ns("ordering_ns", at - it->second.order_start);
                }
                if (it->second.receive != kUnset) record_ns("e2e_ns", at - it->second.receive);
                lifecycle_.erase(it);
            }
            auto& pending = decided_pending_[node];
            if (pending.size() < kMaxDecidedPending) pending.push_back(at);
            break;
        }
        case Phase::kBlockPersist: {
            const auto it = decided_pending_.find(node);
            if (it != decided_pending_.end()) {
                for (const TimePoint decided : it->second) {
                    record_ns("persist_ns", at - decided);
                }
                it->second.clear();
            }
            break;
        }
        case Phase::kViewChangeStart: {
            vc_start_.emplace(node, at);  // keep the earliest start of the episode
            break;
        }
        case Phase::kNewView: {
            const auto it = vc_start_.find(node);
            if (it != vc_start_.end()) {
                record_ns("view_change_ns", at - it->second);
                vc_start_.erase(it);
            }
            break;
        }
        case Phase::kBatchProposed: {
            // Batch occupancy: requests per flushed batch on the primary.
            registry_->histogram(node, "batch_requests")->record(arg);
            break;
        }
        default:
            break;
    }
}

std::string Tracer::chrome_json() const {
    std::string out;
    out.reserve(events_.size() * 160 + 1024);
    out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    char buf[256];
    bool first = true;
    const auto emit = [&](const char* json) {
        if (!first) out += ',';
        first = false;
        out += json;
    };

    // Metadata: stable order (sorted pids, then category rows).
    std::set<NodeId> pids;
    std::set<std::pair<NodeId, unsigned>> rows;
    for (const Record& r : events_) {
        pids.insert(r.node);
        rows.insert({r.node, phase_category_index(r.phase)});
    }
    for (const NodeId pid : pids) {
        const auto label = process_labels_.find(pid);
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":0,"
                      "\"args\":{\"name\":\"%s\"}}",
                      pid,
                      label != process_labels_.end() ? label->second.c_str()
                                                    : ("host-" + std::to_string(pid)).c_str());
        emit(buf);
    }
    static constexpr const char* kCategoryNames[] = {"bus",    "layer",  "pbft",
                                                     "chain",  "export", "runtime"};
    for (const auto& [pid, tid] : rows) {
        std::snprintf(buf, sizeof buf,
                      "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%u,\"tid\":%u,"
                      "\"args\":{\"name\":\"%s\"}}",
                      pid, tid, kCategoryNames[tid]);
        emit(buf);
    }

    for (const Record& r : events_) {
        const double ts_us = static_cast<double>(r.at.count()) / 1e3;
        if (r.is_span) {
            const double dur_us = static_cast<double>(r.dur.count()) / 1e3;
            std::snprintf(buf, sizeof buf,
                          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,"
                          "\"dur\":%.3f,\"pid\":%u,\"tid\":%u,"
                          "\"args\":{\"trace\":\"0x%016" PRIx64 "\",\"arg\":%" PRIu64 "}}",
                          phase_name(r.phase), phase_category(r.phase), ts_us, dur_us, r.node,
                          phase_category_index(r.phase), r.trace, r.arg);
        } else {
            std::snprintf(buf, sizeof buf,
                          "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"t\","
                          "\"ts\":%.3f,\"pid\":%u,\"tid\":%u,"
                          "\"args\":{\"trace\":\"0x%016" PRIx64 "\",\"arg\":%" PRIu64 "}}",
                          phase_name(r.phase), phase_category(r.phase), ts_us, r.node,
                          phase_category_index(r.phase), r.trace, r.arg);
        }
        emit(buf);
    }
    out += "]}";
    return out;
}

}  // namespace zc::trace
