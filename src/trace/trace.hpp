// Request-lifecycle tracing across the ZugChain pipeline.
//
// Every request obtains a trace id (the first 8 bytes of its payload
// digest) at the bus tap and accumulates timestamped phase events —
// bus-receive, layer enqueue/filter/propose/broadcast/forward, soft/hard
// timeout, preprepare/prepared/decide, block persist, checkpoint stable,
// view change, export read/verify/delete, prune — recorded against the
// simulation's virtual clock.
//
// Instrumented components hold a `TraceSink*` that is null by default: a
// disabled trace point is a single pointer test (no digest hashing, no
// allocation), so production paths are unaffected. The sim is
// deterministic, so the same seed yields a byte-identical serialized
// trace — which makes the tracer double as a divergence detector for
// refactors.
//
// The concrete `Tracer` sink can (a) capture the full event list and
// serialize it as Chrome `trace_event` JSON (loadable in chrome://tracing
// and Perfetto) and (b) aggregate per-phase latencies into fixed-memory
// histograms in a `MetricsRegistry` (layer wait, ordering, persist,
// end-to-end, view change, export phases).
#pragma once

#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/ids.hpp"
#include "common/time.hpp"
#include "trace/registry.hpp"

namespace zc::trace {

/// 64-bit request/operation identity carried through the pipeline.
using TraceId = std::uint64_t;

/// Trace id from the leading 8 bytes of a 32-byte digest.
inline TraceId trace_id_from(const std::uint8_t* digest_bytes) noexcept {
    TraceId id;
    std::memcpy(&id, digest_bytes, sizeof id);
    return id;
}

enum class Phase : std::uint8_t {
    // bus / node boundary
    kBusReceive,
    // communication layer (Alg. 1)
    kLayerEnqueue,
    kLayerFiltered,
    kLayerPropose,
    kLayerBroadcast,
    kLayerForward,
    kLayerRateLimited,
    kSoftTimeout,
    kHardTimeout,
    kSuspect,
    kDuplicateDecided,
    // PBFT ordering
    kPrePrepare,
    kPrepared,
    kDecide,
    kCheckpointStable,
    kViewChangeStart,
    kNewView,
    // blockchain application / store
    kBlockPersist,
    kPrune,
    kTrimBodies,
    // export protocol
    kExportRead,
    kExportVerify,
    kExportDelete,
    kExportServeRead,
    kExportServeDelete,
    // runtime lifecycle (crash-recovery, link chaos)
    kNodeDown,
    kNodeRestart,
    kStateTransfer,
    kLinkDown,
    kLinkUp,
    // batch ordering (arg = number of requests in the flushed batch)
    kBatchProposed,
    // faults / safety (arg = peer id / violation kind)
    kStateTransferRejected,
    kAuditViolation,
    // fleet data-center plane (emitted only by FleetDataCenter):
    // time an export message waited in the shared ingest executor queue
    // (arg = message bytes) and DC-to-DC sync traffic (arg = body bytes)
    kDcIngestQueue,
    kDcSync,
};

inline constexpr unsigned kPhaseCount = static_cast<unsigned>(Phase::kDcSync) + 1;

const char* phase_name(Phase p) noexcept;

/// Component category a phase belongs to; becomes the trace row (tid).
const char* phase_category(Phase p) noexcept;
unsigned phase_category_index(Phase p) noexcept;

/// Receiver of instrumentation events. Implementations must not throw.
class TraceSink {
public:
    virtual ~TraceSink() = default;

    /// Instant phase event at virtual time `at`.
    virtual void event(NodeId node, TimePoint at, Phase phase, TraceId trace,
                       std::uint64_t arg = 0) = 0;

    /// Completed span: an operation that started at `start` and covered
    /// `dur` of virtual time (export read/verify/delete rounds).
    virtual void span(NodeId node, TimePoint start, Duration dur, Phase phase, TraceId trace,
                      std::uint64_t arg = 0) = 0;
};

/// Bundled sink + identity + clock for components that have no simulation
/// reference of their own (the block store, the export server). The clock
/// pointer aliases the simulation's internal virtual-time counter.
struct TraceContext {
    TraceSink* sink = nullptr;
    NodeId node = 0;
    const TimePoint* now = nullptr;

    explicit operator bool() const noexcept { return sink != nullptr; }

    void event(Phase phase, TraceId trace, std::uint64_t arg = 0) const {
        if (sink != nullptr) sink->event(node, *now, phase, trace, arg);
    }
};

/// Fans instrumentation events out to several sinks (e.g. a Tracer and a
/// health::FlightRecorder sharing the same taps). Null sinks are ignored
/// at add() time, so callers can register optional sinks unconditionally.
class FanOutSink final : public TraceSink {
public:
    void add(TraceSink* sink) {
        if (sink != nullptr) sinks_.push_back(sink);
    }
    std::size_t sink_count() const noexcept { return sinks_.size(); }

    void event(NodeId node, TimePoint at, Phase phase, TraceId trace,
               std::uint64_t arg) override {
        for (TraceSink* s : sinks_) s->event(node, at, phase, trace, arg);
    }
    void span(NodeId node, TimePoint start, Duration dur, Phase phase, TraceId trace,
              std::uint64_t arg) override {
        for (TraceSink* s : sinks_) s->span(node, start, dur, phase, trace, arg);
    }

private:
    std::vector<TraceSink*> sinks_;
};

/// Remaps node ids into a disjoint pid range before forwarding, so several
/// shards sharing one Tracer land in distinct process rows of the merged
/// fleet trace (train t node i -> 1000*(t+1)+i; shared DCs keep 100+d).
/// kNoNode (fleet-wide events such as LTE flaps) passes through unchanged.
class OffsetSink final : public TraceSink {
public:
    OffsetSink(TraceSink& inner, NodeId base) noexcept : inner_(inner), base_(base) {}

    void event(NodeId node, TimePoint at, Phase phase, TraceId trace,
               std::uint64_t arg) override {
        inner_.event(map(node), at, phase, trace, arg);
    }
    void span(NodeId node, TimePoint start, Duration dur, Phase phase, TraceId trace,
              std::uint64_t arg) override {
        inner_.span(map(node), start, dur, phase, trace, arg);
    }

private:
    NodeId map(NodeId node) const noexcept { return node == kNoNode ? node : base_ + node; }

    TraceSink& inner_;
    NodeId base_;
};

/// Recording sink: optional full event capture (Chrome JSON export) plus
/// optional per-phase latency aggregation into a MetricsRegistry.
class Tracer final : public TraceSink {
public:
    explicit Tracer(bool capture_events = true, MetricsRegistry* registry = nullptr)
        : capture_(capture_events), registry_(registry) {}

    void event(NodeId node, TimePoint at, Phase phase, TraceId trace,
               std::uint64_t arg) override;
    void span(NodeId node, TimePoint start, Duration dur, Phase phase, TraceId trace,
              std::uint64_t arg) override;

    /// Human-readable label for a pid row in the trace viewer
    /// ("node-0", "dc-1", ...). Optional; unlabeled pids show bare ids.
    void set_process_label(NodeId node, std::string label);

    std::size_t event_count() const noexcept { return events_.size(); }
    MetricsRegistry* registry() const noexcept { return registry_; }

    /// Serializes captured events as Chrome trace_event JSON. Byte-stable
    /// for a given event sequence (same seed -> identical file).
    std::string chrome_json() const;

private:
    struct Record {
        TimePoint at;
        Duration dur;  ///< zero for instants
        TraceId trace;
        std::uint64_t arg;
        NodeId node;
        Phase phase;
        bool is_span;
    };

    /// Pipeline timestamps of one request on one node.
    struct Lifecycle {
        TimePoint receive{-1};
        TimePoint order_start{-1};
    };

    void aggregate(NodeId node, TimePoint at, Phase phase, TraceId trace, std::uint64_t arg);
    static std::uint64_t life_key(NodeId node, TraceId trace) noexcept {
        return (static_cast<std::uint64_t>(node) << 48) ^ trace;
    }

    bool capture_;
    MetricsRegistry* registry_;
    std::vector<Record> events_;
    std::map<NodeId, std::string> process_labels_;

    // aggregation state
    std::unordered_map<std::uint64_t, Lifecycle> lifecycle_;
    std::unordered_map<NodeId, std::vector<TimePoint>> decided_pending_;  ///< decide -> persist
    std::unordered_map<NodeId, TimePoint> vc_start_;
};

}  // namespace zc::trace
