// Ed25519 signatures (RFC 8032), implemented from scratch on top of our
// SHA-512. Field elements use a 4x64-bit representation with lazy
// reduction mod p = 2^255 - 19; scalars use generic 256/512-bit integer
// arithmetic mod the group order L. Curve constants (d, sqrt(-1), base
// point) are derived at startup from their defining equations rather than
// hard-coded digit strings.
//
// This implementation favours clarity and testability over side-channel
// resistance: scalar multiplication is not constant time. That is
// acceptable here because keys live inside a simulation; do not reuse this
// for real deployments without hardening.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/bytes.hpp"
#include "common/rng.hpp"

namespace zc::crypto {

/// 32-byte Ed25519 public key (compressed point encoding).
struct PublicKey {
    std::array<std::uint8_t, 32> v{};
    friend bool operator==(const PublicKey&, const PublicKey&) = default;
};

/// 64-byte Ed25519 signature (R || S).
struct Signature {
    std::array<std::uint8_t, 64> v{};
    friend bool operator==(const Signature&, const Signature&) = default;
};

/// Private signing key: the 32-byte seed plus the derived public key.
struct KeyPair {
    std::array<std::uint8_t, 32> seed{};
    PublicKey pub;
};

struct PublicKeyHash {
    std::size_t operator()(const PublicKey& k) const noexcept {
        std::uint64_t h;
        std::memcpy(&h, k.v.data(), sizeof h);
        return h;
    }
};

namespace ed25519 {

/// Derives the key pair for a 32-byte seed.
KeyPair keypair_from_seed(const std::array<std::uint8_t, 32>& seed);

/// Generates a key pair from simulation randomness.
KeyPair generate(Rng& rng);

/// Signs a message with the key pair (deterministic per RFC 8032).
Signature sign(const KeyPair& key, BytesView message);

/// Verifies a signature; returns false for malformed points/scalars.
bool verify(const PublicKey& pub, BytesView message, const Signature& sig);

}  // namespace ed25519

}  // namespace zc::crypto
