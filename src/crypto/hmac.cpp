#include "crypto/hmac.hpp"

#include <cstring>

#include "crypto/sha256.hpp"

namespace zc::crypto {

Digest hmac_sha256(BytesView key, BytesView message) noexcept {
    constexpr std::size_t kBlock = 64;
    std::uint8_t k[kBlock] = {};
    if (key.size() > kBlock) {
        const Digest kd = sha256(key);
        std::memcpy(k, kd.data(), kd.size());
    } else if (!key.empty()) {
        std::memcpy(k, key.data(), key.size());
    }

    std::uint8_t ipad[kBlock], opad[kBlock];
    for (std::size_t i = 0; i < kBlock; ++i) {
        ipad[i] = static_cast<std::uint8_t>(k[i] ^ 0x36);
        opad[i] = static_cast<std::uint8_t>(k[i] ^ 0x5c);
    }

    Sha256 inner;
    inner.update(ipad, kBlock).update(message);
    const Digest inner_digest = inner.finalize();

    Sha256 outer;
    outer.update(opad, kBlock).update(inner_digest.data(), inner_digest.size());
    return outer.finalize();
}

}  // namespace zc::crypto
