// Per-node crypto context: key directory + signing/verification that
// charges the virtual CPU cost model.
//
// All protocol-level crypto goes through this wrapper so that (a) replicas
// address each other by NodeId instead of raw keys and (b) every signature
// operation is metered — the paper's latency and CPU numbers are dominated
// by Ed25519 on the 800 MHz Cortex-A9, so metering here is what transfers
// those shapes into the simulation.
#pragma once

#include <memory>
#include <stdexcept>
#include <unordered_map>

#include "common/ids.hpp"
#include "crypto/provider.hpp"
#include "metrics/cost_model.hpp"
#include "prof/prof.hpp"

namespace zc::crypto {

/// Accumulates virtual CPU cost during one handler invocation; the node
/// executor drains it to occupy the core.
class WorkMeter {
public:
    void add(Duration d) noexcept { pending_ += d; }
    Duration take() noexcept {
        const Duration d = pending_;
        pending_ = Duration::zero();
        return d;
    }
    Duration pending() const noexcept { return pending_; }

private:
    Duration pending_{Duration::zero()};
};

/// Maps node/data-center ids to public keys (the permissioned membership,
/// fixed at deployment per the paper).
class KeyDirectory {
public:
    void register_key(std::uint32_t id, const PublicKey& key) { keys_[id] = key; }

    const PublicKey& key_of(std::uint32_t id) const {
        const auto it = keys_.find(id);
        if (it == keys_.end()) throw std::out_of_range("unknown key id");
        return it->second;
    }

    bool known(std::uint32_t id) const noexcept { return keys_.contains(id); }

private:
    std::unordered_map<std::uint32_t, PublicKey> keys_;
};

/// One principal's view of the crypto subsystem.
class CryptoContext {
public:
    CryptoContext(CryptoProvider& provider, const KeyDirectory& directory, KeyPair key,
                  const metrics::CostModel& costs, WorkMeter& meter)
        : provider_(provider), directory_(directory), key_(std::move(key)), costs_(costs),
          meter_(meter) {}

    /// Signs with this principal's key; charges sign + hash cost.
    Signature sign(BytesView message) {
        ZC_PROF_SCOPE(kCryptoSign);
        meter_.add(costs_.sign_msg(message.size()));
        return provider_.sign(key_, message);
    }

    /// Verifies a signature by `signer`; charges verify + hash cost.
    /// Unknown signers fail verification (permissioned membership).
    bool verify(std::uint32_t signer, BytesView message, const Signature& sig) {
        ZC_PROF_SCOPE(kCryptoVerify);
        meter_.add(costs_.verify_msg(message.size()));
        if (!directory_.known(signer)) return false;
        return provider_.verify(directory_.key_of(signer), message, sig);
    }

    /// Charges hashing work without performing crypto (block building etc.).
    void charge_hash(std::size_t bytes) { meter_.add(costs_.hash(bytes)); }
    void charge(Duration d) { meter_.add(d); }

    const PublicKey& public_key() const noexcept { return key_.pub; }
    const KeyDirectory& directory() const noexcept { return directory_; }
    const metrics::CostModel& costs() const noexcept { return costs_; }
    WorkMeter& meter() noexcept { return meter_; }

private:
    CryptoProvider& provider_;
    const KeyDirectory& directory_;
    KeyPair key_;
    const metrics::CostModel& costs_;
    WorkMeter& meter_;
};

}  // namespace zc::crypto
