// Signature-provider abstraction.
//
// All protocol code signs/verifies through this interface. Two providers
// exist:
//  * Ed25519Provider — real RFC 8032 signatures (what the paper's Rust
//    prototype uses via `ring`).
//  * FastProvider — HMAC-based simulation signatures for very large
//    parameter sweeps. Verifiers look up the signer's secret in a shared
//    registry, which is only sound inside a single-process simulation.
//    The CPU *cost* charged by the metrics model is identical for both, so
//    switching providers changes host runtime, never simulated results.
#pragma once

#include <memory>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "crypto/ed25519.hpp"

namespace zc::crypto {

class CryptoProvider {
public:
    virtual ~CryptoProvider() = default;

    /// Generates a key pair from simulation randomness.
    virtual KeyPair generate(Rng& rng) = 0;

    /// Signs a message with the given key pair.
    virtual Signature sign(const KeyPair& key, BytesView message) = 0;

    /// Verifies a signature against a public key.
    virtual bool verify(const PublicKey& pub, BytesView message, const Signature& sig) = 0;

    /// Human-readable provider name for experiment logs.
    virtual const char* name() const noexcept = 0;
};

/// Real Ed25519 signatures.
class Ed25519Provider final : public CryptoProvider {
public:
    KeyPair generate(Rng& rng) override;
    Signature sign(const KeyPair& key, BytesView message) override;
    bool verify(const PublicKey& pub, BytesView message, const Signature& sig) override;
    const char* name() const noexcept override { return "ed25519"; }
};

/// HMAC-SHA256 simulation signatures (single-process only; see file
/// comment). Signature = HMAC(secret, message) || HMAC(secret, message)'.
class FastProvider final : public CryptoProvider {
public:
    KeyPair generate(Rng& rng) override;
    Signature sign(const KeyPair& key, BytesView message) override;
    bool verify(const PublicKey& pub, BytesView message, const Signature& sig) override;
    const char* name() const noexcept override { return "fast-hmac"; }

private:
    Signature compute(const std::array<std::uint8_t, 32>& seed, BytesView message) const;

    // public key -> seed, so any party can "verify" in-process.
    std::unordered_map<PublicKey, std::array<std::uint8_t, 32>, PublicKeyHash> registry_;
};

/// Factory by name ("ed25519" | "fast"); throws std::invalid_argument.
std::unique_ptr<CryptoProvider> make_provider(std::string_view name);

}  // namespace zc::crypto
