#include "crypto/ed25519.hpp"

#include <cstring>

#include "crypto/sha512.hpp"

namespace zc::crypto::ed25519 {

namespace {

using u64 = std::uint64_t;
using u128 = unsigned __int128;

// ---------------------------------------------------------------------------
// Field arithmetic mod p = 2^255 - 19.
//
// Elements are four 64-bit little-endian limbs holding any 256-bit value
// congruent to the represented element; full reduction happens only on
// encode/compare. All operations preserve congruence mod p using the
// identity 2^256 == 38 (mod p).
// ---------------------------------------------------------------------------

struct Fe {
    u64 v[4];
};

constexpr Fe kFeZero{{0, 0, 0, 0}};
constexpr Fe kFeOne{{1, 0, 0, 0}};
constexpr u64 kP[4] = {0xffffffffffffffedULL, 0xffffffffffffffffULL, 0xffffffffffffffffULL,
                       0x7fffffffffffffffULL};

// r = a + b (mod 2^256) returning the carry-out.
u64 add4(u64 r[4], const u64 a[4], const u64 b[4]) {
    u128 carry = 0;
    for (int i = 0; i < 4; ++i) {
        carry += static_cast<u128>(a[i]) + b[i];
        r[i] = static_cast<u64>(carry);
        carry >>= 64;
    }
    return static_cast<u64>(carry);
}

// r = a - b (mod 2^256) returning the borrow-out (1 if a < b).
u64 sub4(u64 r[4], const u64 a[4], const u64 b[4]) {
    u64 borrow = 0;
    for (int i = 0; i < 4; ++i) {
        const u64 bi = b[i];
        const u64 t = a[i] - bi;
        const u64 borrow1 = a[i] < bi ? 1u : 0u;
        const u64 t2 = t - borrow;
        const u64 borrow2 = t < borrow ? 1u : 0u;
        r[i] = t2;
        borrow = borrow1 | borrow2;
    }
    return borrow;
}

// r += small, returning carry-out.
u64 add_small(u64 r[4], u64 small) {
    u128 carry = small;
    for (int i = 0; i < 4 && carry != 0; ++i) {
        carry += r[i];
        r[i] = static_cast<u64>(carry);
        carry >>= 64;
    }
    return static_cast<u64>(carry);
}

// r -= small, returning borrow-out.
u64 sub_small(u64 r[4], u64 small) {
    u64 borrow = small;
    for (int i = 0; i < 4 && borrow != 0; ++i) {
        const u64 t = r[i];
        r[i] = t - borrow;
        borrow = t < borrow ? 1u : 0u;
    }
    return borrow;
}

Fe fe_add(const Fe& a, const Fe& b) {
    Fe r;
    u64 carry = add4(r.v, a.v, b.v);
    while (carry != 0) carry = add_small(r.v, carry * 38);
    return r;
}

Fe fe_sub(const Fe& a, const Fe& b) {
    Fe r;
    u64 borrow = sub4(r.v, a.v, b.v);
    // value = a - b + borrow*2^256; 2^256 == 38 (mod p), so subtract 38 per
    // borrow. A fresh borrow can only occur while the limbs are tiny and the
    // loop terminates after at most two iterations.
    while (borrow != 0) borrow = sub_small(r.v, borrow * 38);
    return r;
}

Fe fe_mul(const Fe& a, const Fe& b) {
    u64 lo[4] = {0, 0, 0, 0}, hi[4] = {0, 0, 0, 0};
    u64 t[8] = {0};
    for (int i = 0; i < 4; ++i) {
        u128 carry = 0;
        for (int j = 0; j < 4; ++j) {
            carry += static_cast<u128>(a.v[i]) * b.v[j] + t[i + j];
            t[i + j] = static_cast<u64>(carry);
            carry >>= 64;
        }
        t[i + 4] = static_cast<u64>(carry);
    }
    std::memcpy(lo, t, sizeof lo);
    std::memcpy(hi, t + 4, sizeof hi);

    // Fold: result = lo + 38*hi (mod p).
    Fe r;
    u128 carry = 0;
    for (int i = 0; i < 4; ++i) {
        carry += static_cast<u128>(hi[i]) * 38 + lo[i];
        r.v[i] = static_cast<u64>(carry);
        carry >>= 64;
    }
    u64 c = static_cast<u64>(carry);
    while (c != 0) c = add_small(r.v, c * 38);
    return r;
}

Fe fe_sq(const Fe& a) { return fe_mul(a, a); }

bool ge4(const u64 a[4], const u64 b[4]) {
    for (int i = 3; i >= 0; --i) {
        if (a[i] != b[i]) return a[i] > b[i];
    }
    return true;
}

// Fully reduces into [0, p).
Fe fe_reduce(const Fe& a) {
    Fe r = a;
    // r < 2^256 < 4p approximately (p ~ 2^255), so at most two subtractions.
    for (int i = 0; i < 2; ++i) {
        if (ge4(r.v, kP)) sub4(r.v, r.v, kP);
    }
    return r;
}

bool fe_equal(const Fe& a, const Fe& b) {
    const Fe ra = fe_reduce(a), rb = fe_reduce(b);
    return std::memcmp(ra.v, rb.v, sizeof ra.v) == 0;
}

bool fe_is_zero(const Fe& a) { return fe_equal(a, kFeZero); }

// Square-and-multiply exponentiation; exponent given as 4 limbs.
Fe fe_pow(const Fe& base, const u64 exp[4]) {
    Fe result = kFeOne;
    Fe acc = base;
    for (int limb = 0; limb < 4; ++limb) {
        u64 e = exp[limb];
        for (int bit = 0; bit < 64; ++bit) {
            if (e & 1) result = fe_mul(result, acc);
            acc = fe_sq(acc);
            e >>= 1;
        }
    }
    return result;
}

Fe fe_invert(const Fe& a) {
    // a^(p-2)
    u64 exp[4];
    std::memcpy(exp, kP, sizeof exp);
    exp[0] -= 2;  // p ends in ...ed, no borrow
    return fe_pow(a, exp);
}

// Candidate square root: a^((p+3)/8); caller adjusts by sqrt(-1) if needed.
Fe fe_pow_p3_8(const Fe& a) {
    // (p+3)/8 = 2^252 - 2 = {0xfffffffffffffffe, ~0, ~0, 0x0fffffffffffffff}
    const u64 exp[4] = {0xfffffffffffffffeULL, 0xffffffffffffffffULL, 0xffffffffffffffffULL,
                        0x0fffffffffffffffULL};
    return fe_pow(a, exp);
}

Fe fe_neg(const Fe& a) { return fe_sub(kFeZero, a); }

Fe fe_from_u64(u64 x) { return Fe{{x, 0, 0, 0}}; }

void fe_encode(std::uint8_t out[32], const Fe& a) {
    const Fe r = fe_reduce(a);
    for (int i = 0; i < 4; ++i) {
        for (int b = 0; b < 8; ++b) out[8 * i + b] = static_cast<std::uint8_t>(r.v[i] >> (8 * b));
    }
}

Fe fe_decode(const std::uint8_t in[32]) {
    Fe r;
    for (int i = 0; i < 4; ++i) {
        u64 v = 0;
        for (int b = 7; b >= 0; --b) v = (v << 8) | in[8 * i + b];
        r.v[i] = v;
    }
    return r;
}

bool fe_is_odd(const Fe& a) { return (fe_reduce(a).v[0] & 1) != 0; }

// ---------------------------------------------------------------------------
// Curve constants, derived once at startup.
// ---------------------------------------------------------------------------

struct CurveConstants {
    Fe d;        // -121665/121666
    Fe d2;       // 2d
    Fe sqrt_m1;  // sqrt(-1) = 2^((p-1)/4)
};

const CurveConstants& constants() {
    static const CurveConstants k = [] {
        CurveConstants c;
        c.d = fe_mul(fe_neg(fe_from_u64(121665)), fe_invert(fe_from_u64(121666)));
        c.d2 = fe_add(c.d, c.d);
        // (p-1)/4 = 2^253 - 5 = {0xfffffffffffffffb, ~0, ~0, 0x1fffffffffffffff}
        const u64 exp[4] = {0xfffffffffffffffbULL, 0xffffffffffffffffULL, 0xffffffffffffffffULL,
                            0x1fffffffffffffffULL};
        c.sqrt_m1 = fe_pow(fe_from_u64(2), exp);
        return c;
    }();
    return k;
}

// ---------------------------------------------------------------------------
// Point arithmetic, extended twisted Edwards coordinates (a = -1):
// x = X/Z, y = Y/Z, T = XY/Z.
// ---------------------------------------------------------------------------

struct Point {
    Fe x, y, z, t;
};

Point point_identity() { return Point{kFeZero, kFeOne, kFeOne, kFeZero}; }

// add-2008-hwcd-3 (unified addition for a = -1).
Point point_add(const Point& p, const Point& q) {
    const Fe a = fe_mul(fe_sub(p.y, p.x), fe_sub(q.y, q.x));
    const Fe b = fe_mul(fe_add(p.y, p.x), fe_add(q.y, q.x));
    const Fe c = fe_mul(fe_mul(p.t, constants().d2), q.t);
    const Fe d = fe_mul(fe_add(p.z, p.z), q.z);
    const Fe e = fe_sub(b, a);
    const Fe f = fe_sub(d, c);
    const Fe g = fe_add(d, c);
    const Fe h = fe_add(b, a);
    return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

// dbl-2008-hwcd (a = -1 so D = -A).
Point point_double(const Point& p) {
    const Fe a = fe_sq(p.x);
    const Fe b = fe_sq(p.y);
    const Fe zz = fe_sq(p.z);
    const Fe c = fe_add(zz, zz);
    const Fe d = fe_neg(a);
    const Fe xy = fe_add(p.x, p.y);
    const Fe e = fe_sub(fe_sub(fe_sq(xy), a), b);
    const Fe g = fe_add(d, b);
    const Fe f = fe_sub(g, c);
    const Fe h = fe_sub(d, b);
    return Point{fe_mul(e, f), fe_mul(g, h), fe_mul(f, g), fe_mul(e, h)};
}

// Scalar as 32 little-endian bytes; plain double-and-add (not constant time).
Point point_scalar_mul(const Point& p, const std::uint8_t scalar[32]) {
    Point result = point_identity();
    Point acc = p;
    for (int byte = 0; byte < 32; ++byte) {
        std::uint8_t s = scalar[byte];
        for (int bit = 0; bit < 8; ++bit) {
            if (s & 1) result = point_add(result, acc);
            acc = point_double(acc);
            s >>= 1;
        }
    }
    return result;
}

void point_encode(std::uint8_t out[32], const Point& p) {
    const Fe zinv = fe_invert(p.z);
    const Fe x = fe_mul(p.x, zinv);
    const Fe y = fe_mul(p.y, zinv);
    fe_encode(out, y);
    if (fe_is_odd(x)) out[31] |= 0x80;
}

std::optional<Point> point_decode(const std::uint8_t in[32]) {
    std::uint8_t ybytes[32];
    std::memcpy(ybytes, in, 32);
    const bool sign = (ybytes[31] & 0x80) != 0;
    ybytes[31] &= 0x7f;
    const Fe y = fe_decode(ybytes);
    // Reject non-canonical y (>= p).
    if (ge4(fe_reduce(y).v, kP) || std::memcmp(fe_reduce(y).v, y.v, sizeof y.v) != 0) {
        // fe_decode gave a value < 2^255; if reduce changed it, it was >= p.
        return std::nullopt;
    }

    // x^2 = (y^2 - 1) / (d*y^2 + 1)
    const Fe y2 = fe_sq(y);
    const Fe u = fe_sub(y2, kFeOne);
    const Fe v = fe_add(fe_mul(constants().d, y2), kFeOne);
    const Fe x2 = fe_mul(u, fe_invert(v));

    Fe x = fe_pow_p3_8(x2);
    if (!fe_equal(fe_sq(x), x2)) {
        x = fe_mul(x, constants().sqrt_m1);
        if (!fe_equal(fe_sq(x), x2)) return std::nullopt;
    }
    if (fe_is_zero(x) && sign) return std::nullopt;  // -0 is invalid
    if (fe_is_odd(x) != sign) x = fe_neg(x);

    Point p;
    p.x = x;
    p.y = y;
    p.z = kFeOne;
    p.t = fe_mul(x, y);
    return p;
}

const Point& base_point() {
    static const Point b = [] {
        // y = 4/5 mod p, x = even root.
        const Fe y = fe_mul(fe_from_u64(4), fe_invert(fe_from_u64(5)));
        std::uint8_t enc[32];
        fe_encode(enc, y);  // sign bit 0 -> even x
        const auto p = point_decode(enc);
        return *p;
    }();
    return b;
}

// ---------------------------------------------------------------------------
// Scalar arithmetic mod the group order
// L = 2^252 + 27742317777372353535851937790883648493.
// ---------------------------------------------------------------------------

constexpr u64 kL[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0, 0x1000000000000000ULL};

struct Scalar {
    u64 v[4];  // fully reduced, < L
};

// Reduces a 512-bit little-endian integer mod L by shift-and-subtract long
// division. Slow but simple; scalars are not on the simulation hot path
// thanks to the cost model.
Scalar reduce_wide(const u64 in[8]) {
    u64 r[4] = {0, 0, 0, 0};
    for (int bit = 511; bit >= 0; --bit) {
        // r = (r << 1) | bit; r stays < 2L < 2^254 so no overflow.
        u64 carry = (in[bit / 64] >> (bit % 64)) & 1;
        for (int i = 0; i < 4; ++i) {
            const u64 next = r[i] >> 63;
            r[i] = (r[i] << 1) | carry;
            carry = next;
        }
        if (ge4(r, kL)) sub4(r, r, kL);
    }
    Scalar s;
    std::memcpy(s.v, r, sizeof r);
    return s;
}

Scalar scalar_from_bytes64(const std::uint8_t in[64]) {
    u64 wide[8];
    for (int i = 0; i < 8; ++i) {
        u64 v = 0;
        for (int b = 7; b >= 0; --b) v = (v << 8) | in[8 * i + b];
        wide[i] = v;
    }
    return reduce_wide(wide);
}

Scalar scalar_from_bytes32(const std::uint8_t in[32]) {
    u64 wide[8] = {0};
    for (int i = 0; i < 4; ++i) {
        u64 v = 0;
        for (int b = 7; b >= 0; --b) v = (v << 8) | in[8 * i + b];
        wide[i] = v;
    }
    return reduce_wide(wide);
}

// (a*b + c) mod L
Scalar scalar_muladd(const Scalar& a, const Scalar& b, const Scalar& c) {
    u64 t[8] = {0};
    for (int i = 0; i < 4; ++i) {
        u128 carry = 0;
        for (int j = 0; j < 4; ++j) {
            carry += static_cast<u128>(a.v[i]) * b.v[j] + t[i + j];
            t[i + j] = static_cast<u64>(carry);
            carry >>= 64;
        }
        t[i + 4] = static_cast<u64>(carry);
    }
    // t += c
    u128 carry = 0;
    for (int i = 0; i < 4; ++i) {
        carry += static_cast<u128>(t[i]) + c.v[i];
        t[i] = static_cast<u64>(carry);
        carry >>= 64;
    }
    for (int i = 4; i < 8 && carry != 0; ++i) {
        carry += t[i];
        t[i] = static_cast<u64>(carry);
        carry >>= 64;
    }
    return reduce_wide(t);
}

void scalar_encode(std::uint8_t out[32], const Scalar& s) {
    for (int i = 0; i < 4; ++i) {
        for (int b = 0; b < 8; ++b) out[8 * i + b] = static_cast<std::uint8_t>(s.v[i] >> (8 * b));
    }
}

// Checks the canonical-range requirement S < L for verification.
bool scalar_is_canonical(const std::uint8_t in[32]) {
    u64 limbs[4];
    for (int i = 0; i < 4; ++i) {
        u64 v = 0;
        for (int b = 7; b >= 0; --b) v = (v << 8) | in[8 * i + b];
        limbs[i] = v;
    }
    return !ge4(limbs, kL);
}

// ---------------------------------------------------------------------------
// RFC 8032 operations.
// ---------------------------------------------------------------------------

void clamp(std::uint8_t a[32]) {
    a[0] &= 248;
    a[31] &= 63;
    a[31] |= 64;
}

}  // namespace

KeyPair keypair_from_seed(const std::array<std::uint8_t, 32>& seed) {
    const Digest512 h = sha512(BytesView{seed.data(), seed.size()});
    std::uint8_t a[32];
    std::memcpy(a, h.data(), 32);
    clamp(a);

    const Point pub_point = point_scalar_mul(base_point(), a);
    KeyPair kp;
    kp.seed = seed;
    point_encode(kp.pub.v.data(), pub_point);
    return kp;
}

KeyPair generate(Rng& rng) {
    std::array<std::uint8_t, 32> seed;
    Bytes tmp = rng.bytes(seed.size());
    std::memcpy(seed.data(), tmp.data(), seed.size());
    return keypair_from_seed(seed);
}

Signature sign(const KeyPair& key, BytesView message) {
    const Digest512 h = sha512(BytesView{key.seed.data(), key.seed.size()});
    std::uint8_t a_bytes[32];
    std::memcpy(a_bytes, h.data(), 32);
    clamp(a_bytes);
    const Scalar a = scalar_from_bytes32(a_bytes);

    // r = H(prefix || M) mod L
    Sha512 rh;
    rh.update(h.data() + 32, 32).update(message);
    const Digest512 r_digest = rh.finalize();
    const Scalar r = scalar_from_bytes64(r_digest.data());

    std::uint8_t r_bytes[32];
    scalar_encode(r_bytes, r);
    const Point r_point = point_scalar_mul(base_point(), r_bytes);
    std::uint8_t r_enc[32];
    point_encode(r_enc, r_point);

    // k = H(R || A || M) mod L
    Sha512 kh;
    kh.update(r_enc, 32).update(key.pub.v.data(), 32).update(message);
    const Digest512 k_digest = kh.finalize();
    const Scalar k = scalar_from_bytes64(k_digest.data());

    // S = r + k*a mod L
    const Scalar s = scalar_muladd(k, a, r);

    Signature sig;
    std::memcpy(sig.v.data(), r_enc, 32);
    scalar_encode(sig.v.data() + 32, s);
    return sig;
}

bool verify(const PublicKey& pub, BytesView message, const Signature& sig) {
    const std::uint8_t* r_enc = sig.v.data();
    const std::uint8_t* s_enc = sig.v.data() + 32;
    if (!scalar_is_canonical(s_enc)) return false;

    const auto a_point = point_decode(pub.v.data());
    if (!a_point) return false;
    const auto r_point = point_decode(r_enc);
    if (!r_point) return false;

    Sha512 kh;
    kh.update(r_enc, 32).update(pub.v.data(), 32).update(message);
    const Digest512 k_digest = kh.finalize();
    const Scalar k = scalar_from_bytes64(k_digest.data());
    std::uint8_t k_bytes[32];
    scalar_encode(k_bytes, k);

    // Check [S]B == R + [k]A by comparing encodings.
    const Point sb = point_scalar_mul(base_point(), s_enc);
    const Point ka = point_scalar_mul(*a_point, k_bytes);
    const Point rhs = point_add(*r_point, ka);

    std::uint8_t lhs_enc[32], rhs_enc[32];
    point_encode(lhs_enc, sb);
    point_encode(rhs_enc, rhs);
    return std::memcmp(lhs_enc, rhs_enc, 32) == 0;
}

}  // namespace zc::crypto::ed25519
