// SHA-256 (FIPS 180-4), implemented from scratch. Validated against the
// standard test vectors in tests/crypto/sha_test.cpp.
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace zc::crypto {

/// Incremental SHA-256 context.
class Sha256 {
public:
    Sha256() noexcept;

    Sha256& update(BytesView data) noexcept;
    Sha256& update(const void* data, std::size_t len) noexcept;

    /// Finalizes and returns the digest. The context must not be reused
    /// afterwards (construct a fresh one).
    Digest finalize() noexcept;

private:
    void process_block(const std::uint8_t* block) noexcept;

    std::uint32_t state_[8];
    std::uint64_t total_len_ = 0;
    std::uint8_t buffer_[64];
    std::size_t buffer_len_ = 0;
};

/// One-shot convenience.
Digest sha256(BytesView data) noexcept;

}  // namespace zc::crypto
