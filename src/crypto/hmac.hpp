// HMAC-SHA256 (RFC 2104). Used by the FastCrypto simulation provider and
// available for keyed integrity checks.
#pragma once

#include "common/bytes.hpp"
#include "crypto/digest.hpp"

namespace zc::crypto {

/// Computes HMAC-SHA256(key, message).
Digest hmac_sha256(BytesView key, BytesView message) noexcept;

}  // namespace zc::crypto
