// Fixed-size digest type used for block hashes, payload digests and
// checkpoint state digests.
#pragma once

#include <array>
#include <cstdint>
#include <string>

#include "common/bytes.hpp"

namespace zc::crypto {

/// 32-byte digest (SHA-256 output).
using Digest = std::array<std::uint8_t, 32>;

inline BytesView view(const Digest& d) { return BytesView{d.data(), d.size()}; }

inline Bytes to_vector(const Digest& d) { return Bytes(d.begin(), d.end()); }

/// Hash functor for unordered containers keyed by Digest.
struct DigestHash {
    std::size_t operator()(const Digest& d) const noexcept {
        std::uint64_t h;
        std::memcpy(&h, d.data(), sizeof h);
        return h;
    }
};

}  // namespace zc::crypto
