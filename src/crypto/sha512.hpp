// SHA-512 (FIPS 180-4), implemented from scratch. Used by Ed25519 per
// RFC 8032 and validated against standard test vectors.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.hpp"

namespace zc::crypto {

/// 64-byte digest (SHA-512 output).
using Digest512 = std::array<std::uint8_t, 64>;

/// Incremental SHA-512 context.
class Sha512 {
public:
    Sha512() noexcept;

    Sha512& update(BytesView data) noexcept;
    Sha512& update(const void* data, std::size_t len) noexcept;

    /// Finalizes and returns the digest; context must not be reused.
    Digest512 finalize() noexcept;

private:
    void process_block(const std::uint8_t* block) noexcept;

    std::uint64_t state_[8];
    std::uint64_t total_len_ = 0;  // bytes; messages > 2^61 bytes unsupported
    std::uint8_t buffer_[128];
    std::size_t buffer_len_ = 0;
};

/// One-shot convenience.
Digest512 sha512(BytesView data) noexcept;

}  // namespace zc::crypto
