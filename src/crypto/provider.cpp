#include "crypto/provider.hpp"

#include <cstring>
#include <stdexcept>
#include <string>

#include "crypto/hmac.hpp"
#include "crypto/sha256.hpp"

namespace zc::crypto {

KeyPair Ed25519Provider::generate(Rng& rng) { return ed25519::generate(rng); }

Signature Ed25519Provider::sign(const KeyPair& key, BytesView message) {
    return ed25519::sign(key, message);
}

bool Ed25519Provider::verify(const PublicKey& pub, BytesView message, const Signature& sig) {
    return ed25519::verify(pub, message, sig);
}

KeyPair FastProvider::generate(Rng& rng) {
    KeyPair kp;
    Bytes seed = rng.bytes(kp.seed.size());
    std::memcpy(kp.seed.data(), seed.data(), kp.seed.size());

    // Public key = SHA256(seed || "pub"): unforgeable link without exposing
    // the seed through the public key itself.
    Bytes pub_input(kp.seed.begin(), kp.seed.end());
    append(pub_input, to_bytes("pub"));
    const Digest pub = sha256(pub_input);
    std::memcpy(kp.pub.v.data(), pub.data(), pub.size());

    registry_[kp.pub] = kp.seed;
    return kp;
}

Signature FastProvider::compute(const std::array<std::uint8_t, 32>& seed,
                                BytesView message) const {
    const Digest mac = hmac_sha256(BytesView{seed.data(), seed.size()}, message);
    // Second half binds a domain-separated copy so the signature is 64 bytes
    // like Ed25519 and on-wire sizes match exactly.
    Bytes second_input(mac.begin(), mac.end());
    append(second_input, to_bytes("ext"));
    const Digest mac2 = sha256(second_input);

    Signature sig;
    std::memcpy(sig.v.data(), mac.data(), 32);
    std::memcpy(sig.v.data() + 32, mac2.data(), 32);
    return sig;
}

Signature FastProvider::sign(const KeyPair& key, BytesView message) {
    return compute(key.seed, message);
}

bool FastProvider::verify(const PublicKey& pub, BytesView message, const Signature& sig) {
    const auto it = registry_.find(pub);
    if (it == registry_.end()) return false;
    const Signature expected = compute(it->second, message);
    return equal_ct(BytesView{expected.v.data(), expected.v.size()},
                    BytesView{sig.v.data(), sig.v.size()});
}

std::unique_ptr<CryptoProvider> make_provider(std::string_view name) {
    if (name == "ed25519") return std::make_unique<Ed25519Provider>();
    if (name == "fast") return std::make_unique<FastProvider>();
    throw std::invalid_argument("unknown crypto provider: " + std::string(name));
}

}  // namespace zc::crypto
