#include "metrics/cost_model.hpp"

// Header-only today; kept as a TU so the cost table can grow host-measured
// calibration code without touching every dependent target.
