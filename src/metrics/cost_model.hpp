// Virtual CPU cost model.
//
// The paper's testbed runs on Freescale i.MX6 quad Cortex-A9 @ 800 MHz.
// Since the simulation executes on a different host, protocol handlers
// charge virtual CPU time from this table instead of measuring wall time.
// Values are calibrated to Ed25519/SHA-2 throughput on Cortex-A9-class
// cores (ring/OpenSSL benchmarks on armv7): signing ~1 ms, verification
// ~2 ms, SHA-256 ~50 ns/B. The cost model is what couples load to the
// CPU/memory/latency shapes of Figs. 6, 7 and 9.
#pragma once

#include <cstddef>

#include "common/time.hpp"

namespace zc::metrics {

struct CostModel {
    // Asymmetric crypto (per operation, independent of message size; the
    // size-dependent part is the hash below).
    Duration sign{millis_f(0.7)};
    Duration verify{millis_f(1.5)};

    // Hashing plus payload copy/serialization per byte (SHA-256 runs at
    // ~20 MB/s on the A9; buffer management roughly doubles the per-byte
    // cost for protocol-sized messages).
    Duration hash_per_byte{nanoseconds(80)};

    // Message (de)serialization + handler dispatch.
    Duration msg_fixed{microseconds(30)};
    Duration msg_per_byte{nanoseconds(8)};

    // Parsing a raw bus telegram into signals (the verified JRU transform).
    Duration bus_parse_fixed{microseconds(60)};
    Duration bus_parse_per_byte{nanoseconds(12)};

    // Persisting a block to flash (paper: 5.03 ms for 8 kB-payload blocks).
    Duration block_write_fixed{microseconds(900)};
    Duration block_write_per_byte{nanoseconds(50)};

    /// Cost of computing a hash over `n` bytes.
    Duration hash(std::size_t n) const { return hash_per_byte * static_cast<std::int64_t>(n); }

    /// Cost of handling (decode + dispatch) a message of `n` bytes.
    Duration handle(std::size_t n) const {
        return msg_fixed + msg_per_byte * static_cast<std::int64_t>(n);
    }

    /// Cost of signing a message of `n` bytes (hash + sign).
    Duration sign_msg(std::size_t n) const { return sign + hash(n); }

    /// Cost of verifying a signature over `n` bytes (hash + verify).
    Duration verify_msg(std::size_t n) const { return verify + hash(n); }

    /// Cost of parsing one bus telegram of `n` bytes.
    Duration bus_parse(std::size_t n) const {
        return bus_parse_fixed + bus_parse_per_byte * static_cast<std::int64_t>(n);
    }

    /// Cost of writing a block of `n` bytes to disk.
    Duration block_write(std::size_t n) const {
        return block_write_fixed + block_write_per_byte * static_cast<std::int64_t>(n);
    }

    /// The paper's M-COM: quad-core.
    static constexpr int kMComCores = 4;

    /// Cost table for the data-center side (the paper exports to an AWS
    /// t2.xlarge): modern x86 cores are roughly an order of magnitude
    /// faster than the 800 MHz Cortex-A9 for these operations.
    static CostModel cloud() {
        CostModel m;
        m.sign = millis_f(0.06);
        m.verify = millis_f(0.16);
        m.hash_per_byte = nanoseconds(25);
        m.msg_fixed = microseconds(4);
        m.msg_per_byte = nanoseconds(1);
        m.block_write_fixed = microseconds(80);
        m.block_write_per_byte = nanoseconds(4);
        return m;
    }
};

}  // namespace zc::metrics
