#include "metrics/memory.hpp"

namespace zc::metrics {

Gauge* MemoryTracker::gauge(const std::string& name) {
    for (const auto& g : gauges_) {
        if (g->name() == name) return g.get();
    }
    gauges_.push_back(std::make_unique<Gauge>(name));
    return gauges_.back().get();
}

std::int64_t MemoryTracker::total_bytes() const noexcept {
    std::int64_t total = kProcessBaseBytes;
    for (const auto& g : gauges_) total += g->value();
    return total;
}

void MemoryTracker::sample() {
    samples_.add(static_cast<double>(total_bytes()) / (1024.0 * 1024.0));
}

std::uint64_t MemoryTracker::underflows() const noexcept {
    std::uint64_t n = 0;
    for (const auto& g : gauges_) n += g->underflows();
    return n;
}

}  // namespace zc::metrics
