// Summary statistics for experiment outputs (latency distributions,
// utilization samples, ...).
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.hpp"

namespace zc::metrics {

/// Accumulates scalar samples; percentiles computed on demand from the
/// retained sample vector (experiments are bounded, so retention is fine).
class Summary {
public:
    void add(double v);

    std::size_t count() const noexcept { return samples_.size(); }
    bool empty() const noexcept { return samples_.empty(); }
    double mean() const noexcept;
    double min() const noexcept;
    double max() const noexcept;
    double stddev() const noexcept;

    /// q in [0, 1]; e.g. 0.5 = median, 0.99 = p99. Linear interpolation.
    double percentile(double q) const;

    const std::vector<double>& samples() const noexcept { return samples_; }

    /// Merges another summary into this one.
    void merge(const Summary& other);

private:
    mutable std::vector<double> samples_;
    mutable bool sorted_ = true;
    double sum_ = 0.0;
};

/// Latency recorder keyed on durations; reports milliseconds.
class LatencyRecorder {
public:
    void record(Duration d) { summary_.add(to_millis(d)); }
    const Summary& millis() const noexcept { return summary_; }

private:
    Summary summary_;
};

/// Time series of (time, value) points, e.g. for the Fig. 8 view-change
/// latency timeline.
struct SeriesPoint {
    double t_seconds;
    double value;
};

class Series {
public:
    void add(TimePoint t, double value) {
        points_.push_back(SeriesPoint{to_seconds(t), value});
    }
    const std::vector<SeriesPoint>& points() const noexcept { return points_; }

private:
    std::vector<SeriesPoint> points_;
};

}  // namespace zc::metrics
