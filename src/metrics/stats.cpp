#include "metrics/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace zc::metrics {

void Summary::add(double v) {
    samples_.push_back(v);
    sorted_ = false;
    sum_ += v;
}

double Summary::mean() const noexcept {
    if (samples_.empty()) return 0.0;
    return sum_ / static_cast<double>(samples_.size());
}

double Summary::min() const noexcept {
    if (samples_.empty()) return 0.0;
    return *std::min_element(samples_.begin(), samples_.end());
}

double Summary::max() const noexcept {
    if (samples_.empty()) return 0.0;
    return *std::max_element(samples_.begin(), samples_.end());
}

double Summary::stddev() const noexcept {
    if (samples_.size() < 2) return 0.0;
    const double m = mean();
    double acc = 0.0;
    for (double v : samples_) acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

double Summary::percentile(double q) const {
    if (samples_.empty()) throw std::logic_error("percentile of empty summary");
    if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile out of range");
    if (!sorted_) {
        std::sort(samples_.begin(), samples_.end());
        sorted_ = true;
    }
    const double pos = q * static_cast<double>(samples_.size() - 1);
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
    const double frac = pos - static_cast<double>(lo);
    return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

void Summary::merge(const Summary& other) {
    samples_.insert(samples_.end(), other.samples_.begin(), other.samples_.end());
    sorted_ = false;
    sum_ += other.sum_;
}

}  // namespace zc::metrics
