// Logical memory accounting.
//
// Components register gauges (request queues, PBFT message log, block
// store, in-flight network buffers) and adjust them as bytes are held or
// released. A sampler snapshots the per-node total on a fixed virtual-time
// period; experiments report mean and peak. A constant process base models
// the runtime footprint so magnitudes resemble the paper's MB-scale plots.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time.hpp"
#include "metrics/stats.hpp"

namespace zc::metrics {

/// One named byte counter. Values never go below zero (clamped; a clamp
/// indicates an accounting bug, surfaced via underflows()).
class Gauge {
public:
    explicit Gauge(std::string name) : name_(std::move(name)) {}

    void add(std::int64_t bytes) noexcept {
        value_ += bytes;
        if (value_ < 0) {
            value_ = 0;
            ++underflows_;
        }
    }
    void set(std::int64_t bytes) noexcept { value_ = bytes < 0 ? 0 : bytes; }

    std::int64_t value() const noexcept { return value_; }
    const std::string& name() const noexcept { return name_; }
    std::uint64_t underflows() const noexcept { return underflows_; }

private:
    std::string name_;
    std::int64_t value_ = 0;
    std::uint64_t underflows_ = 0;
};

/// Per-node memory tracker.
class MemoryTracker {
public:
    /// Fixed footprint of the process (binary, runtime, OS buffers).
    static constexpr std::int64_t kProcessBaseBytes = 24ll << 20;  // 24 MiB

    /// Creates (or returns) a named gauge; pointers remain valid for the
    /// tracker's lifetime.
    Gauge* gauge(const std::string& name);

    /// Current total = base + sum of gauges.
    std::int64_t total_bytes() const noexcept;

    /// Records a sample of the current total (MB) into the summary.
    void sample();

    const Summary& samples_mb() const noexcept { return samples_; }

    /// Sum of accounting underflows across gauges (should be 0).
    std::uint64_t underflows() const noexcept;

    const std::vector<std::unique_ptr<Gauge>>& gauges() const noexcept { return gauges_; }

private:
    std::vector<std::unique_ptr<Gauge>> gauges_;
    Summary samples_;
};

}  // namespace zc::metrics
