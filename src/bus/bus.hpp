// Time-triggered train bus simulator (MVB-like).
//
// Substitutes the paper's physical Multifunction Vehicle Bus: a bus master
// polls the configured source device every cycle (32 ms minimum on a real
// MVB) and the resulting process-data telegram is observed read-only by
// every attached tap (one per ZugChain node), matching the paper's setup
// where all nodes independently read the same signals.
//
// The failure modes the paper calls out for bus communication are
// injectable per tap:
//   * drop     — a tap misses a whole cycle ("a replica does not receive
//                any signals in a cycle")
//   * delay    — a cycle's signals are received during a later cycle
//   * corrupt  — bit flips during transmission (per IEC studies [9])
//   * diverge  — taps read differing input in the same cycle
//
// The bus is intentionally unauthenticated and unacknowledged; recovering
// from these faults is the ZugChain communication layer's job.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace zc::bus {

/// One consolidated process-data telegram (all signals of one bus cycle).
struct Telegram {
    std::uint64_t cycle = 0;    ///< bus cycle counter set by the master
    TimePoint sent_at{0};       ///< master poll instant
    Bytes payload;              ///< raw signal data (parsed by the JRU transform)
};

/// Read-only bus observer; implemented by node runtimes.
class BusTap {
public:
    virtual ~BusTap() = default;
    virtual void on_telegram(const Telegram& telegram) = 0;
};

/// Per-tap fault injection probabilities (per cycle).
struct TapFaults {
    double drop = 0.0;
    double delay = 0.0;
    double corrupt = 0.0;
    double diverge = 0.0;
};

/// Per-tap delivery counters for test assertions.
struct TapStats {
    std::uint64_t delivered = 0;
    std::uint64_t dropped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t diverged = 0;
};

/// Produces the raw payload for each bus cycle; implemented by the train
/// signal generator (src/train) or synthetic workloads in tests.
class PayloadSource {
public:
    virtual ~PayloadSource() = default;
    virtual Bytes payload_for_cycle(std::uint64_t cycle, TimePoint at) = 0;
};

class Bus {
public:
    /// IEC 61375-3-1 minimum basic period used by the paper's testbed.
    static constexpr Duration kMinCycle = milliseconds(32);

    Bus(sim::Simulation& sim, Duration cycle_time, PayloadSource& source);

    /// Attaches a tap; returns its index. Taps must outlive the bus.
    std::size_t attach_tap(BusTap& tap, const TapFaults& faults = {});

    /// Starts the master's polling loop.
    void start();

    /// Stops after the current cycle.
    void stop() noexcept { running_ = false; }

    Duration cycle_time() const noexcept { return cycle_time_; }
    std::uint64_t cycles_completed() const noexcept { return cycle_; }
    const TapStats& tap_stats(std::size_t tap) const { return taps_.at(tap).stats; }

private:
    struct TapEntry {
        BusTap* tap;
        TapFaults faults;
        TapStats stats;
    };

    void run_cycle();
    void deliver(TapEntry& entry, Telegram telegram);

    sim::Simulation& sim_;
    Duration cycle_time_;
    PayloadSource& source_;
    Rng rng_;
    std::vector<TapEntry> taps_;
    std::uint64_t cycle_ = 0;
    bool running_ = false;
};

}  // namespace zc::bus
