#include "bus/bus.hpp"

#include <stdexcept>

namespace zc::bus {

Bus::Bus(sim::Simulation& sim, Duration cycle_time, PayloadSource& source)
    : sim_(sim), cycle_time_(cycle_time), source_(source), rng_(sim.rng().fork("bus")) {
    if (cycle_time <= Duration::zero()) throw std::invalid_argument("cycle_time must be > 0");
}

std::size_t Bus::attach_tap(BusTap& tap, const TapFaults& faults) {
    taps_.push_back(TapEntry{&tap, faults, {}});
    return taps_.size() - 1;
}

void Bus::start() {
    if (running_) return;
    running_ = true;
    sim_.schedule(Duration::zero(), [this] { run_cycle(); });
}

void Bus::run_cycle() {
    if (!running_) return;

    Telegram telegram;
    telegram.cycle = cycle_++;
    telegram.sent_at = sim_.now();
    telegram.payload = source_.payload_for_cycle(telegram.cycle, telegram.sent_at);

    for (TapEntry& entry : taps_) {
        deliver(entry, telegram);
    }

    sim_.schedule(cycle_time_, [this] { run_cycle(); });
}

void Bus::deliver(TapEntry& entry, Telegram telegram) {
    if (rng_.chance(entry.faults.drop)) {
        entry.stats.dropped += 1;
        return;
    }
    if (rng_.chance(entry.faults.corrupt)) {
        // A bit flip somewhere in the payload: the tap reads a different
        // value than its peers. All bus data is valid data to be logged.
        if (!telegram.payload.empty()) {
            const std::size_t idx = rng_.next_below(telegram.payload.size());
            telegram.payload[idx] ^= static_cast<std::uint8_t>(1u << rng_.next_below(8));
        }
        entry.stats.corrupted += 1;
    }
    if (rng_.chance(entry.faults.diverge)) {
        // The tap samples a slightly different reading (e.g. the value
        // changed between polls): the trailing payload byte differs.
        // Unlike `corrupt`, the frame still parses — it is a valid but
        // diverging observation of the same cycle.
        if (!telegram.payload.empty()) {
            telegram.payload.back() ^=
                static_cast<std::uint8_t>(1u + rng_.next_below(255));
        }
        entry.stats.diverged += 1;
    }

    const bool delayed = rng_.chance(entry.faults.delay);
    if (delayed) entry.stats.delayed += 1;
    const Duration when = delayed ? cycle_time_ : Duration::zero();

    entry.stats.delivered += 1;
    BusTap* tap = entry.tap;
    sim_.schedule(when, [tap, t = std::move(telegram)] { tap->on_telegram(t); });
}

}  // namespace zc::bus
