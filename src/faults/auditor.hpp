// End-of-run (and periodic) safety auditor.
//
// The adversary harness is only useful with an oracle that can tell
// whether an attack actually violated the paper's guarantees. The
// SafetyAuditor is that oracle: an omniscient observer outside the
// protocol that inspects the ground-truth state of every correct node and
// data center and checks the invariants the paper claims:
//
//   * chain-prefix agreement across correct replicas (no fork),
//   * durable-store hash linkage (BlockStore::validate),
//   * per-block origin-signature validity (juridical evidence, §III-B),
//   * Alg. 1's no-lost-input guarantee: every bus payload received by a
//     correct node is logged on its chain or still tracked as open,
//   * each DataCenter's exported chain is a proof-covered prefix of a
//     correct replica's chain, under a distinct-signer quorum proof.
//
// Violations are deduplicated, logged via ZC_ERROR (so the flight
// recorder captures them), emitted as kAuditViolation trace events and
// summarized in a typed report that `zugchain_sim --audit` turns into
// exit code 4.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "chain/block_store.hpp"
#include "common/ids.hpp"
#include "crypto/digest.hpp"
#include "pbft/messages.hpp"
#include "trace/trace.hpp"
#include "zugchain/layer.hpp"

namespace zc::faults {

enum class ViolationKind : std::uint8_t {
    kChainFork,            ///< two correct replicas disagree on a shared height
    kBrokenHashLink,       ///< a store fails its own link/root validation
    kBadOriginSignature,   ///< a logged request's origin signature does not verify
    kLostInput,            ///< received by a correct node, neither logged nor open
    kExportedBeyondProof,  ///< DC holds blocks above its proof-covered height
    kExportProofInvalid,   ///< DC's proof lacks a distinct-signer quorum
    kExportMismatch,       ///< DC block differs from the correct replicas' chain
};

const char* violation_name(ViolationKind kind) noexcept;

struct Violation {
    ViolationKind kind;
    NodeId where = kNoNode;  ///< replica id, or 100 + dc id for data centers
    Height height = 0;       ///< offending height (0 when not applicable)
    std::string detail;
};

struct AuditReport {
    std::uint64_t audits = 0;  ///< audit passes performed
    std::uint64_t checks = 0;  ///< individual invariant checks evaluated
    std::vector<Violation> violations;

    bool clean() const noexcept { return violations.empty(); }
    /// Deterministic single-line JSON (CI compares it across runs).
    std::string json() const;
};

/// Ground-truth handle on one replica for an audit pass.
struct ReplicaView {
    NodeId id = 0;
    bool alive = true;
    bool compromised = false;
    const chain::BlockStore* store = nullptr;
    const zugchain::CommunicationLayer* layer = nullptr;  ///< null in baseline mode
};

/// Ground-truth handle on one data center.
struct DataCenterView {
    DataCenterId id = 0;
    const chain::BlockStore* store = nullptr;
    const pbft::CheckpointProof* proof = nullptr;  ///< latest accepted proof, may be null
};

class SafetyAuditor {
public:
    /// Signature verifier (typically a CryptoContext with the deployment's
    /// key directory, owned by the scenario outside any node).
    using Verifier =
        std::function<bool(std::uint32_t signer, BytesView message, const crypto::Signature&)>;

    void configure(std::uint32_t f, SeqNo checkpoint_interval, Verifier verifier);
    void set_trace(trace::TraceContext ctx) noexcept { trace_ = ctx; }
    void set_compromised(NodeId id) { compromised_.insert(id); }
    bool is_compromised(NodeId id) const { return compromised_.contains(id); }

    // -- runtime taps (wired by the scenario / node) --
    /// A node received a bus payload (Alg. 1 input).
    void note_received(NodeId node, const crypto::Digest& payload_digest);
    /// A node logged a payload on its chain (execution or state transfer).
    void note_logged(NodeId node, const crypto::Digest& payload_digest);
    /// A node crashed: its volatile inputs are legitimately lost.
    void note_crashed(NodeId node);

    /// One audit pass over the ground truth. Cheap enough to run
    /// periodically; signature checks are incremental per replica.
    void audit(const std::vector<ReplicaView>& replicas,
               const std::vector<DataCenterView>& dcs);

    const AuditReport& report() const noexcept { return report_; }

private:
    void violate(ViolationKind kind, NodeId where, Height height, std::string detail);
    void check_store(NodeId where, const chain::BlockStore& store);
    void check_origin_signatures(const ReplicaView& r);
    void check_prefix(const ReplicaView& r, const ReplicaView& ref);
    void check_lost_inputs(const ReplicaView& r);
    void check_data_center(const DataCenterView& dc, const ReplicaView* ref);

    std::uint32_t f_ = 1;
    SeqNo interval_ = 10;
    Verifier verifier_;
    trace::TraceContext trace_;
    AuditReport report_;
    std::set<NodeId> compromised_;
    std::set<std::tuple<int, NodeId, Height>> seen_;  ///< violation dedup
    std::map<NodeId, std::unordered_set<crypto::Digest, crypto::DigestHash>> received_;
    std::map<NodeId, std::unordered_set<crypto::Digest, crypto::DigestHash>> logged_;
    std::map<NodeId, Height> sig_verified_to_;  ///< per-replica incremental cursor
};

}  // namespace zc::faults
