// Named adversary profiles: the Fig. 9 performance attacks plus the
// safety attacks, as ready-made configurations for `zugchain_sim
// --adversary PROFILE:NODE`, scenario tests and the CI smoke matrix.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "faults/adversary.hpp"

namespace zc::faults {

/// Config for a named profile, or nullopt for an unknown name.
std::optional<AdversaryConfig> profile_config(std::string_view name);

/// All profile names, in a fixed order (CI iterates this list).
std::vector<std::string> profile_names();

}  // namespace zc::faults
