#include "faults/adversary.hpp"

#include <algorithm>
#include <variant>

namespace zc::faults {
namespace {

/// Corrupts a digest in a way that is certain to change it.
void flip(crypto::Digest& d) noexcept { d[0] ^= 0x01; }

}  // namespace

Adversary::Adversary(AdversaryConfig config, NodeId id, std::uint32_t n, sim::Simulation& sim,
                     crypto::CryptoContext& crypto)
    : config_(config), id_(id), n_(n), sim_(sim), crypto_(crypto),
      rng_(sim.rng().fork("adv-" + std::to_string(id))) {}

void Adversary::pbft_send(NodeId to, const pbft::Message& m) {
    if (!emit_) return;
    if (config_.mute) {
        stats_.muted += 1;
        return;
    }
    if (std::holds_alternative<pbft::PrePrepare>(m)) {
        if (config_.drop_preprepares) {
            stats_.preprepares_dropped += 1;
            return;
        }
        if (config_.preprepare_delay > Duration::zero()) {
            stats_.preprepares_delayed += 1;
            // The delayed copy re-enters the pipeline when the timer fires,
            // so delay composes with the other mutations instead of
            // bypassing them; crash() cancels everything still pending.
            std::erase_if(pending_, [this](sim::EventId e) { return !sim_.pending(e); });
            pending_.push_back(sim_.schedule(config_.preprepare_delay,
                                             [this, to, m] { run_pipeline(to, m); }));
            return;
        }
    }
    run_pipeline(to, m);
}

void Adversary::run_pipeline(NodeId to, pbft::Message m) {
    // Record genuine own checkpoints before any tampering (stale
    // re-announcement must replay authentic, verifiable messages).
    if (const auto* c = std::get_if<pbft::Checkpoint>(&m)) {
        if (past_checkpoints_.empty() || past_checkpoints_.back().seq < c->seq) {
            if (past_checkpoints_.size() < 8) past_checkpoints_.push_back(*c);
        }
        if (config_.stale_checkpoint && !past_checkpoints_.empty() &&
            past_checkpoints_.front().seq < c->seq) {
            stats_.stale_checkpoints += 1;
            m = pbft::Message{past_checkpoints_.front()};
        }
    }

    // Equivocation: one designated victim gets a forged batch for the slot.
    if (const auto* pp = std::get_if<pbft::PrePrepare>(&m);
        pp != nullptr && config_.equivocate_rate > 0.0 && n_ > 1 && to == (id_ + 1) % n_) {
        if (const pbft::PrePrepare* variant = equivocation_variant(*pp)) {
            m = pbft::Message{*variant};
        }
    }

    // A backup equivocator splits its Prepare votes instead: the victim
    // sees this replica vouch for a different digest than everyone else.
    if (auto* pr = std::get_if<pbft::Prepare>(&m);
        pr != nullptr && config_.equivocate_rate > 0.0 && n_ > 1 && to == (id_ + 1) % n_ &&
        rng_.chance(config_.equivocate_rate)) {
        flip(pr->req_digest);
        pr->sig = crypto_.sign(pr->signing_bytes());
        stats_.equivocations += 1;
    }

    // Field tampering: corrupt the request digest but keep the signature
    // valid (re-sign), so receivers must reject on semantic validation.
    if (config_.digest_flip_rate > 0.0 && rng_.chance(config_.digest_flip_rate)) {
        if (auto* pp = std::get_if<pbft::PrePrepare>(&m)) {
            flip(pp->req_digest);
            pp->sig = crypto_.sign(pp->signing_bytes());
            stats_.digests_flipped += 1;
        } else if (auto* p = std::get_if<pbft::Prepare>(&m)) {
            flip(p->req_digest);
            p->sig = crypto_.sign(p->signing_bytes());
            stats_.digests_flipped += 1;
        } else if (auto* c = std::get_if<pbft::Commit>(&m)) {
            flip(c->req_digest);
            c->sig = crypto_.sign(c->signing_bytes());
            stats_.digests_flipped += 1;
        }
    }

    // Lying view change: hide everything this replica prepared and its
    // stable checkpoint (tries to roll correct nodes back).
    if (config_.lie_view_change) {
        if (auto* vc = std::get_if<pbft::ViewChange>(&m)) {
            vc->prepared.clear();
            vc->last_stable = 0;
            vc->stable_proof.reset();
            vc->sig = crypto_.sign(vc->signing_bytes());
            stats_.lied_view_changes += 1;
        }
    }

    // Signature stripping (the cheapest forgery).
    if (config_.sig_strip_rate > 0.0 && rng_.chance(config_.sig_strip_rate)) {
        std::visit([](auto& msg) { msg.sig = crypto::Signature{}; }, m);
        stats_.sigs_stripped += 1;
    }

    emit_with_replay(to, std::move(m));
}

void Adversary::emit_with_replay(NodeId to, pbft::Message m) {
    emit_(to, m);
    if (config_.replay_rate > 0.0 && !history_.empty() && rng_.chance(config_.replay_rate)) {
        stats_.replays += 1;
        emit_(to, history_[rng_.next_below(history_.size())].second);
    }
    history_.emplace_back(to, std::move(m));
    if (history_.size() > 32) history_.pop_front();
}

const pbft::PrePrepare* Adversary::equivocation_variant(const pbft::PrePrepare& pp) {
    const auto key = std::make_pair(pp.view, pp.seq);
    auto it = variants_.find(key);
    if (it == variants_.end()) {
        std::optional<pbft::PrePrepare> variant;
        if (rng_.chance(config_.equivocate_rate)) {
            pbft::PrePrepare forged = pp;
            forged.requests = {forge_request()};
            forged.req_digest = pbft::PrePrepare::batch_digest(forged.requests);
            forged.sig = crypto_.sign(forged.signing_bytes());
            stats_.equivocations += 1;
            variant = std::move(forged);
        }
        if (variants_.size() >= 512) variants_.erase(variants_.begin());
        it = variants_.emplace(key, std::move(variant)).first;
    }
    return it->second ? &*it->second : nullptr;
}

pbft::Request Adversary::forge_request() {
    pbft::Request r;
    r.payload = rng_.bytes(48);
    r.origin = id_;
    // High bits keep forged origin_seqs clear of real bus cycles.
    r.origin_seq = (std::uint64_t{1} << 44) + forge_counter_++;
    r.sig = crypto_.sign(r.signing_bytes());
    return r;
}

bool Adversary::mutate_layer(pbft::Request& r) {
    if (config_.mute) {
        stats_.muted += 1;
        return false;
    }
    if (config_.sig_strip_rate > 0.0 && rng_.chance(config_.sig_strip_rate)) {
        r.sig = crypto::Signature{};
        stats_.sigs_stripped += 1;
    }
    return true;
}

bool Adversary::replay_layer() {
    if (config_.replay_rate > 0.0 && rng_.chance(config_.replay_rate)) {
        stats_.replays += 1;
        return true;
    }
    return false;
}

bool Adversary::mutate_export(exporter::ExportMessage& m) {
    if (config_.mute) {
        stats_.muted += 1;
        return false;
    }
    if (auto* rr = std::get_if<exporter::ReadReply>(&m)) {
        if (config_.under_quorum_proofs && rr->proof.messages.size() > 1) {
            // 2f+1 copies of a single replica's checkpoint: right count,
            // one distinct signer. Distinct-signer counting must reject it.
            const pbft::Checkpoint one = rr->proof.messages.front();
            for (auto& c : rr->proof.messages) c = one;
            rr->sig = crypto_.sign(rr->signing_bytes());
            stats_.under_quorum_proofs += 1;
        }
        if (config_.forge_export_blocks && !rr->blocks.empty()) {
            const Height from = rr->blocks.front().header.height;
            const Height to = rr->blocks.back().header.height;
            rr->blocks = forged_range(rr->blocks.front().header.parent_hash, from, to);
            rr->sig = crypto_.sign(rr->signing_bytes());
        }
    } else if (auto* fr = std::get_if<exporter::BlockFetchReply>(&m)) {
        if (config_.forge_export_blocks && !fr->blocks.empty()) {
            const Height from = fr->blocks.front().header.height;
            const Height to = fr->blocks.back().header.height;
            fr->blocks = forged_range(fr->blocks.front().header.parent_hash, from, to);
            fr->sig = crypto_.sign(fr->signing_bytes());
        }
    }
    return true;
}

std::vector<chain::Block> Adversary::forged_range(const crypto::Digest& parent, Height from,
                                                  Height to) {
    std::vector<chain::Block> out;
    crypto::Digest prev = parent;
    for (Height h = from; h <= to; ++h) {
        pbft::Request fake = forge_request();
        chain::LoggedRequest lr;
        lr.payload = std::move(fake.payload);
        lr.origin = id_;
        lr.seq = h;
        lr.origin_seq = fake.origin_seq;
        lr.sig = fake.sig;
        std::vector<chain::LoggedRequest> reqs;
        reqs.push_back(std::move(lr));
        chain::Block b =
            chain::Block::build(h, prev, static_cast<std::int64_t>(h), std::move(reqs));
        prev = b.hash();
        out.push_back(std::move(b));
        stats_.forged_blocks += 1;
    }
    return out;
}

void Adversary::cancel_pending() {
    for (const sim::EventId e : pending_) sim_.cancel(e);
    pending_.clear();
}

}  // namespace zc::faults
