// Byzantine adversary controller (paper §II-B fault model).
//
// A compromised node keeps running the honest protocol stack, but every
// outgoing channel — consensus traffic, ZugChain layer gossip, export
// serving and state-transfer serving — passes through one Adversary
// object that applies a deterministic, seeded mutation pipeline. The
// pipeline covers the paper's full Byzantine surface, not just the Fig. 9
// performance attacks:
//
//   * equivocation: per-recipient PrePrepares binding different request
//     batches (and digests) to the same (view, seq),
//   * field tampering: request-digest flips and signature stripping,
//   * message replay from a bounded history,
//   * lying view changes (hiding prepared requests and the stable
//     checkpoint) and stale checkpoint re-announcements,
//   * under-quorum export proofs (2f+1 copies of a single replica's
//     checkpoint) and forged-but-hash-linked block ranges served to
//     state-transfer and export clients.
//
// All decisions draw from an Rng stream forked from the simulation seed,
// so adversarial runs stay byte-identical across same-seed executions.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "chain/block.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "crypto/context.hpp"
#include "export/messages.hpp"
#include "pbft/messages.hpp"
#include "sim/simulation.hpp"

namespace zc::faults {

/// Knobs of a compromised node. The first block is the legacy
/// `runtime::ByzantineBehavior` surface (Fig. 9 performance attacks); the
/// rest are safety attacks. Named presets live in faults/profiles.hpp.
struct AdversaryConfig {
    // -- Fig. 9 performance attacks (legacy knob names kept) --
    double fabricate_rate = 0.0;        ///< fabricated self-originated requests per bus cycle
    std::uint32_t fabricate_burst = 1;  ///< fabricated requests per firing
    Duration preprepare_delay{0};       ///< delay outgoing preprepares (slow primary)
    bool drop_preprepares = false;      ///< censor: never send preprepares
    double duplicate_rate = 0.0;        ///< chance to re-propose an already-proposed request
    bool mute = false;                  ///< drop all outgoing protocol traffic

    // -- safety attacks --
    double equivocate_rate = 0.0;   ///< chance to equivocate toward one victim: a forged batch
                                    ///< when primary, a split Prepare vote when a backup
    double digest_flip_rate = 0.0;  ///< per-message chance to corrupt req_digest (re-signed)
    double sig_strip_rate = 0.0;    ///< per-message chance to zero the signature
    double replay_rate = 0.0;       ///< per-send chance to replay an old message to the peer
    bool lie_view_change = false;   ///< hide prepared requests + stable proof in own VCs
    bool stale_checkpoint = false;  ///< keep re-announcing the oldest own checkpoint
    bool under_quorum_proofs = false;  ///< export proofs collapse to one distinct signer
    bool forge_export_blocks = false;  ///< serve forged-but-linked blocks to DC readers
    bool poison_state_transfer = false;  ///< serve forged-but-linked blocks to rejoiners

    /// Any knob set at all (the node is compromised).
    bool any() const noexcept {
        return fabricate_rate > 0.0 || preprepare_delay > Duration::zero() ||
               drop_preprepares || duplicate_rate > 0.0 || mute || equivocate_rate > 0.0 ||
               digest_flip_rate > 0.0 || sig_strip_rate > 0.0 || replay_rate > 0.0 ||
               lie_view_change || stale_checkpoint || under_quorum_proofs ||
               forge_export_blocks || poison_state_transfer;
    }
};

/// Attack attempts, by action. `attempts()` is what the acceptance gate
/// checks: a profile that never fires is a misconfigured scenario.
struct AdversaryStats {
    std::uint64_t fabricated = 0;
    std::uint64_t duplicates_proposed = 0;
    std::uint64_t muted = 0;
    std::uint64_t preprepares_dropped = 0;
    std::uint64_t preprepares_delayed = 0;
    std::uint64_t equivocations = 0;
    std::uint64_t digests_flipped = 0;
    std::uint64_t sigs_stripped = 0;
    std::uint64_t replays = 0;
    std::uint64_t lied_view_changes = 0;
    std::uint64_t stale_checkpoints = 0;
    std::uint64_t under_quorum_proofs = 0;
    std::uint64_t forged_blocks = 0;
    std::uint64_t st_poisonings = 0;

    std::uint64_t attempts() const noexcept {
        return fabricated + duplicates_proposed + muted + preprepares_dropped +
               preprepares_delayed + equivocations + digests_flipped + sigs_stripped + replays +
               lied_view_changes + stale_checkpoints + under_quorum_proofs + forged_blocks +
               st_poisonings;
    }
};

/// Mutation pipeline for one compromised node. The owning runtime Node
/// routes every outgoing message through it; the pipeline decides what
/// (if anything) reaches the wire via the emit callback.
class Adversary {
public:
    using PbftEmit = std::function<void(NodeId to, const pbft::Message& m)>;

    Adversary(AdversaryConfig config, NodeId id, std::uint32_t n, sim::Simulation& sim,
              crypto::CryptoContext& crypto);

    const AdversaryConfig& config() const noexcept { return config_; }
    const AdversaryStats& stats() const noexcept { return stats_; }
    /// Node-level attacks (request fabrication/duplication) and the
    /// scenario's state-transfer serving hook count their attempts here.
    AdversaryStats& stats_mut() noexcept { return stats_; }

    /// Wire sink for the consensus channel; must be set before pbft_send.
    void set_pbft_emit(PbftEmit emit) { emit_ = std::move(emit); }

    /// Consensus channel: runs the pipeline and emits zero or more
    /// messages (possibly later — delayed messages re-enter the pipeline
    /// when their timer fires instead of bypassing it).
    void pbft_send(NodeId to, const pbft::Message& m);

    /// Layer gossip channel. Returns false to suppress the send; may
    /// tamper the request in place.
    bool mutate_layer(pbft::Request& r);
    /// True → the (already mutated) layer message is sent a second time.
    bool replay_layer();

    /// Export serving channel. Returns false to suppress; may tamper the
    /// reply in place (under-quorum proofs, forged block ranges).
    bool mutate_export(exporter::ExportMessage& m);

    /// A forged block range chained onto `parent` covering [from, to]:
    /// every parent link and payload root verifies, so only an endpoint
    /// check against a quorum-signed checkpoint digest can reject it.
    std::vector<chain::Block> forged_range(const crypto::Digest& parent, Height from, Height to);

    /// Cancels scheduled delayed sends (called from Node::crash()).
    void cancel_pending();

private:
    void run_pipeline(NodeId to, pbft::Message m);
    void emit_with_replay(NodeId to, pbft::Message m);
    const pbft::PrePrepare* equivocation_variant(const pbft::PrePrepare& pp);
    pbft::Request forge_request();

    AdversaryConfig config_;
    NodeId id_;
    std::uint32_t n_;
    sim::Simulation& sim_;
    crypto::CryptoContext& crypto_;
    Rng rng_;
    PbftEmit emit_;
    AdversaryStats stats_;

    /// Cached per-slot equivocation decisions so every resend of the same
    /// slot behaves consistently (a flip-flopping equivocator is trivially
    /// detectable); nullopt records a "send honestly" decision.
    std::map<std::pair<View, SeqNo>, std::optional<pbft::PrePrepare>> variants_;
    /// Own past checkpoints, for stale re-announcement.
    std::deque<pbft::Checkpoint> past_checkpoints_;
    /// Bounded send history feeding the replay action.
    std::deque<std::pair<NodeId, pbft::Message>> history_;
    /// Pending delayed sends, cancelled on crash.
    std::vector<sim::EventId> pending_;
    std::uint64_t forge_counter_ = 0;
};

}  // namespace zc::faults
