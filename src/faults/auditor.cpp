#include "faults/auditor.hpp"

#include <algorithm>
#include <sstream>

#include "common/hex.hpp"
#include "common/log.hpp"

namespace zc::faults {
namespace {

/// Stable JSON key for a violation kind.
const char* kKindNames[] = {
    "chain_fork",           "broken_hash_link",     "bad_origin_signature", "lost_input",
    "exported_beyond_proof", "export_proof_invalid", "export_mismatch",
};

}  // namespace

const char* violation_name(ViolationKind kind) noexcept {
    return kKindNames[static_cast<unsigned>(kind)];
}

void SafetyAuditor::configure(std::uint32_t f, SeqNo checkpoint_interval, Verifier verifier) {
    f_ = f;
    interval_ = checkpoint_interval == 0 ? 1 : checkpoint_interval;
    verifier_ = std::move(verifier);
}

void SafetyAuditor::note_received(NodeId node, const crypto::Digest& payload_digest) {
    received_[node].insert(payload_digest);
}

void SafetyAuditor::note_logged(NodeId node, const crypto::Digest& payload_digest) {
    logged_[node].insert(payload_digest);
}

void SafetyAuditor::note_crashed(NodeId node) {
    // A crash legitimately loses volatile inputs: Alg. 1's guarantee only
    // covers payloads a *correct, running* node accepted. The logged set
    // is kept — the durable chain survives the crash.
    received_[node].clear();
    sig_verified_to_.erase(node);  // the store may restart below the cursor
}

void SafetyAuditor::violate(ViolationKind kind, NodeId where, Height height,
                            std::string detail) {
    if (!seen_.emplace(static_cast<int>(kind), where, height).second) return;
    ZC_ERROR("audit", "safety violation {} at {} height {}: {}", violation_name(kind), where,
             height, detail);
    trace_.event(trace::Phase::kAuditViolation,
                 (static_cast<std::uint64_t>(where) << 40) ^ height,
                 static_cast<std::uint64_t>(kind));
    report_.violations.push_back(Violation{kind, where, height, std::move(detail)});
}

void SafetyAuditor::check_store(NodeId where, const chain::BlockStore& store) {
    report_.checks += 1;
    if (!store.validate(store.base_height(), store.head_height())) {
        violate(ViolationKind::kBrokenHashLink, where, store.head_height(),
                "store fails hash-link/payload-root validation");
    }
}

void SafetyAuditor::check_origin_signatures(const ReplicaView& r) {
    if (!verifier_) return;
    Height& cursor = sig_verified_to_[r.id];
    cursor = std::max(cursor, r.store->base_height());
    const Height head = r.store->head_height();
    for (Height h = cursor + 1; h <= head; ++h) {
        const chain::Block* b = r.store->get(h);
        if (b == nullptr) continue;  // pruned or body-trimmed: headers only
        for (const chain::LoggedRequest& lr : b->requests) {
            if (lr.origin == kNoNode) continue;  // null filler slot
            report_.checks += 1;
            pbft::Request probe;
            probe.payload = lr.payload;
            probe.origin = lr.origin;
            probe.origin_seq = lr.origin_seq;
            const Bytes sb = probe.signing_bytes();
            if (!verifier_(lr.origin, sb, lr.sig)) {
                violate(ViolationKind::kBadOriginSignature, r.id, h,
                        format("request from origin {} seq {} has an invalid signature",
                               lr.origin, lr.seq));
            }
        }
    }
    cursor = head;
}

void SafetyAuditor::check_prefix(const ReplicaView& r, const ReplicaView& ref) {
    report_.checks += 1;
    const Height hi = std::min(r.store->head_height(), ref.store->head_height());
    const Height lo = std::max(r.store->base_height(), ref.store->base_height());
    if (hi < lo) return;  // no overlap retained (aggressive pruning)
    const chain::BlockHeader* a = r.store->header(hi);
    const chain::BlockHeader* b = ref.store->header(hi);
    if (a == nullptr || b == nullptr) return;
    if (a->hash() != b->hash()) {
        violate(ViolationKind::kChainFork, r.id, hi,
                format("chain disagrees with replica {} at shared height", ref.id));
    }
}

void SafetyAuditor::check_lost_inputs(const ReplicaView& r) {
    if (r.layer == nullptr) return;  // baseline mode: no open-request tracking
    const auto logged = logged_.find(r.id);
    for (const crypto::Digest& d : received_[r.id]) {
        report_.checks += 1;
        if (logged != logged_.end() && logged->second.contains(d)) continue;
        if (r.layer->is_open(d)) continue;
        violate(ViolationKind::kLostInput, r.id, 0,
                format("payload {} received but neither logged nor open",
                       to_hex(BytesView{d.data(), 8})));
    }
}

void SafetyAuditor::check_data_center(const DataCenterView& dc, const ReplicaView* ref) {
    const NodeId where = 100 + dc.id;  // report namespace for data centers
    check_store(where, *dc.store);
    if (dc.proof != nullptr) {
        const Height covered = dc.proof->seq / interval_;
        report_.checks += 1;
        if (dc.store->head_height() > covered) {
            violate(ViolationKind::kExportedBeyondProof, where, dc.store->head_height(),
                    format("holds blocks above proof-covered height {}", covered));
        }
        report_.checks += 1;
        std::set<NodeId> signers;
        if (verifier_) {
            for (const pbft::Checkpoint& c : dc.proof->messages) {
                if (c.seq != dc.proof->seq || c.state != dc.proof->state) continue;
                const Bytes sb = c.signing_bytes();
                if (!verifier_(c.replica, sb, c.sig)) continue;
                signers.insert(c.replica);
            }
            if (signers.size() < 2 * f_ + 1) {
                violate(ViolationKind::kExportProofInvalid, where, covered,
                        format("proof carries {} distinct valid signers, need {}",
                               signers.size(), 2 * f_ + 1));
            }
        }
    }
    if (ref != nullptr) {
        report_.checks += 1;
        const Height hi = std::min(dc.store->head_height(), ref->store->head_height());
        const Height lo = std::max(dc.store->base_height(), ref->store->base_height());
        if (hi >= lo) {
            const chain::BlockHeader* a = dc.store->header(hi);
            const chain::BlockHeader* b = ref->store->header(hi);
            if (a != nullptr && b != nullptr && a->hash() != b->hash()) {
                violate(ViolationKind::kExportMismatch, where, hi,
                        format("exported block differs from replica {}'s chain", ref->id));
            }
        }
    }
}

void SafetyAuditor::audit(const std::vector<ReplicaView>& replicas,
                          const std::vector<DataCenterView>& dcs) {
    report_.audits += 1;
    const ReplicaView* ref = nullptr;
    for (const ReplicaView& r : replicas) {
        if (r.compromised || !r.alive || r.store == nullptr) continue;
        check_store(r.id, *r.store);
        check_origin_signatures(r);
        check_lost_inputs(r);
        if (ref == nullptr) {
            ref = &r;
        } else {
            check_prefix(r, *ref);
        }
    }
    for (const DataCenterView& dc : dcs) {
        if (dc.store == nullptr) continue;
        check_data_center(dc, ref);
    }
}

std::string AuditReport::json() const {
    std::ostringstream out;
    out << "{\"audits\":" << audits << ",\"checks\":" << checks << ",\"violations\":[";
    for (std::size_t i = 0; i < violations.size(); ++i) {
        const Violation& v = violations[i];
        if (i != 0) out << ',';
        out << "{\"kind\":\"" << violation_name(v.kind) << "\",\"where\":" << v.where
            << ",\"height\":" << v.height << ",\"detail\":\"" << v.detail << "\"}";
    }
    out << "]}";
    return out.str();
}

}  // namespace zc::faults
