#include "faults/profiles.hpp"

namespace zc::faults {

std::optional<AdversaryConfig> profile_config(std::string_view name) {
    AdversaryConfig c;
    if (name == "fig9-flood") {
        // Paper Fig. 9 request-fabrication flood.
        c.fabricate_rate = 1.0;
        c.fabricate_burst = 4;
    } else if (name == "censor") {
        c.drop_preprepares = true;
    } else if (name == "delayer") {
        c.preprepare_delay = milliseconds(250);
    } else if (name == "duplicator") {
        c.duplicate_rate = 0.5;
    } else if (name == "mute") {
        c.mute = true;
    } else if (name == "equivocator") {
        c.equivocate_rate = 0.35;
    } else if (name == "tamperer") {
        c.digest_flip_rate = 0.25;
        c.sig_strip_rate = 0.25;
    } else if (name == "replayer") {
        c.replay_rate = 0.5;
    } else if (name == "liar") {
        // Censors as primary to force a view change, then lies in it.
        c.drop_preprepares = true;
        c.lie_view_change = true;
        c.stale_checkpoint = true;
    } else if (name == "poisoner") {
        // Attacks the read paths: rejoining replicas and DC exports.
        c.poison_state_transfer = true;
        c.forge_export_blocks = true;
        c.under_quorum_proofs = true;
    } else {
        return std::nullopt;
    }
    return c;
}

std::vector<std::string> profile_names() {
    return {"fig9-flood", "censor",   "delayer",  "duplicator", "mute",
            "equivocator", "tamperer", "replayer", "liar",       "poisoner"};
}

}  // namespace zc::faults
