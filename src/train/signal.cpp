#include "train/signal.hpp"

namespace zc::train {

namespace {

void encode_signals(codec::Writer& w, const std::vector<Signal>& signals) {
    w.varint(signals.size());
    for (const Signal& s : signals) {
        w.u8(static_cast<std::uint8_t>(s.kind));
        w.i64(s.value);
    }
}

std::vector<Signal> decode_signals(codec::Reader& r) {
    const std::uint64_t count = r.varint();
    if (count > 4096) throw codec::DecodeError("implausible signal count");
    std::vector<Signal> signals;
    signals.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        Signal s;
        s.kind = static_cast<SignalKind>(r.u8());
        s.value = r.i64();
        signals.push_back(s);
    }
    return signals;
}

}  // namespace

void TelegramContent::encode(codec::Writer& w) const {
    w.u64(cycle);
    w.i64(timestamp_ns);
    encode_signals(w, signals);
    w.bytes(opaque);
}

TelegramContent TelegramContent::decode(codec::Reader& r) {
    TelegramContent t;
    t.cycle = r.u64();
    t.timestamp_ns = r.i64();
    t.signals = decode_signals(r);
    t.opaque = r.bytes();
    return t;
}

void LogRecord::encode(codec::Writer& w) const {
    w.u64(cycle);
    w.i64(timestamp_ns);
    encode_signals(w, signals);
    w.bytes(opaque);
}

LogRecord LogRecord::decode(codec::Reader& r) {
    LogRecord rec;
    rec.cycle = r.u64();
    rec.timestamp_ns = r.i64();
    rec.signals = decode_signals(r);
    rec.opaque = r.bytes();
    return rec;
}

}  // namespace zc::train
