#include "train/generator.hpp"

#include <algorithm>
#include <cmath>

namespace zc::train {

SignalGenerator::SignalGenerator(GeneratorConfig config, Rng rng)
    : config_(config), rng_(rng) {}

void SignalGenerator::step_dynamics(Duration dt) {
    const double dt_s = to_seconds(dt);
    const double speed_ms = speed_kmh_ / 3.6;
    odometer_m_ += speed_ms * dt_s;

    switch (phase_) {
        case Phase::kAccelerating: {
            speed_kmh_ = std::min(config_.max_speed_kmh, speed_kmh_ + config_.accel_ms2 * 3.6 * dt_s);
            if (speed_kmh_ >= config_.max_speed_kmh) phase_ = Phase::kCruising;
            break;
        }
        case Phase::kCruising: {
            // Begin braking so we stop at the next station.
            const double remaining = segment_start_m_ + config_.interstation_m - odometer_m_;
            const double brake_dist = (speed_ms * speed_ms) / (2.0 * config_.brake_ms2);
            if (remaining <= brake_dist) phase_ = Phase::kBraking;
            break;
        }
        case Phase::kBraking: {
            const double decel = emergency_ != 0 ? 2.5 : config_.brake_ms2;
            speed_kmh_ = std::max(0.0, speed_kmh_ - decel * 3.6 * dt_s);
            if (speed_kmh_ == 0.0) {
                phase_ = Phase::kStopped;
                stop_remaining_ = config_.station_dwell;
                doors_ = 0b01;  // platform side released
                emergency_ = 0;
            }
            break;
        }
        case Phase::kStopped: {
            stop_remaining_ -= dt;
            if (stop_remaining_ <= Duration::zero()) {
                phase_ = Phase::kAccelerating;
                doors_ = 0;
                segment_start_m_ = odometer_m_;
            }
            break;
        }
    }

    // Rare events.
    if (phase_ != Phase::kStopped && rng_.chance(config_.emergency_brake_chance)) {
        emergency_ = 1;
        phase_ = Phase::kBraking;
    }
    atp_code_ = rng_.chance(config_.atp_intervention_chance) ? rng_.next_range(1, 9) : 0;
}

TelegramContent SignalGenerator::snapshot(std::uint64_t cycle, TimePoint at) {
    TelegramContent t;
    t.cycle = cycle;
    t.timestamp_ns = at.count();
    t.signals = {
        Signal{SignalKind::kSpeed, static_cast<std::int64_t>(std::lround(speed_kmh_ * 100))},
        Signal{SignalKind::kOdometer, static_cast<std::int64_t>(std::lround(odometer_m_))},
        Signal{SignalKind::kBrakePressure,
               phase_ == Phase::kBraking ? rng_.next_range(3200, 3600) : 5000},
        Signal{SignalKind::kEmergencyBrake, emergency_},
        Signal{SignalKind::kDoorState, doors_},
        Signal{SignalKind::kAtpIntervention, atp_code_},
        Signal{SignalKind::kTractionCommand,
               phase_ == Phase::kAccelerating ? 800 : (phase_ == Phase::kBraking ? -600 : 0)},
        Signal{SignalKind::kHorn, rng_.chance(config_.horn_chance) ? 1 : 0},
        Signal{SignalKind::kCabSignal, phase_ == Phase::kBraking ? 2 : 1},
    };
    return t;
}

Bytes SignalGenerator::payload_for_cycle(std::uint64_t cycle, TimePoint at) {
    if (!first_cycle_) step_dynamics(at - last_at_);
    first_cycle_ = false;
    last_at_ = at;

    TelegramContent content = snapshot(cycle, at);

    // Size the opaque channel so the encoded telegram hits the target.
    codec::Writer probe;
    content.encode(probe);
    const std::size_t base = probe.size();
    if (config_.payload_size > base) {
        content.opaque = rng_.bytes(config_.payload_size - base);
    }

    last_ = content;
    codec::Writer w(config_.payload_size + 16);
    content.encode(w);
    return w.take();
}

}  // namespace zc::train
