// Train signal model.
//
// The signal classes follow what IEC 62625-1 requires a juridical recorder
// to capture: speed, odometry, brake state, emergency interventions, door
// activity, driver commands and automatic-train-protection events, plus an
// opaque channel for data that arrives pre-encrypted at the source and is
// logged as-is (the paper handles such data identically to the JRU).
#pragma once

#include <cstdint>
#include <vector>

#include "codec/codec.hpp"
#include "common/bytes.hpp"
#include "common/time.hpp"

namespace zc::train {

enum class SignalKind : std::uint8_t {
    kSpeed = 1,           ///< centi-km/h
    kOdometer = 2,        ///< metres since trip start
    kBrakePressure = 3,   ///< brake pipe pressure, millibar
    kEmergencyBrake = 4,  ///< 0/1
    kDoorState = 5,       ///< bitmask: released/open per side
    kAtpIntervention = 6, ///< ATP intervention code, 0 = none
    kTractionCommand = 7, ///< driver traction/brake lever position, permille
    kHorn = 8,            ///< 0/1
    kCabSignal = 9,       ///< displayed cab signal aspect
};

/// One sampled value of one signal.
struct Signal {
    SignalKind kind{};
    std::int64_t value = 0;

    friend bool operator==(const Signal&, const Signal&) = default;
};

/// Full decoded content of one bus telegram: the periodic process-data
/// snapshot plus the opaque (encrypted-at-source) telemetry channel.
struct TelegramContent {
    std::uint64_t cycle = 0;
    std::int64_t timestamp_ns = 0;
    std::vector<Signal> signals;
    Bytes opaque;  ///< encrypted telemetry, logged unmodified

    void encode(codec::Writer& w) const;
    static TelegramContent decode(codec::Reader& r);
};

/// The filtered record a node submits for logging: cycle, timestamp, the
/// signals that are juridically relevant this cycle, and the opaque channel.
struct LogRecord {
    std::uint64_t cycle = 0;
    std::int64_t timestamp_ns = 0;
    std::vector<Signal> signals;
    Bytes opaque;

    void encode(codec::Writer& w) const;
    static LogRecord decode(codec::Reader& r);

    friend bool operator==(const LogRecord&, const LogRecord&) = default;
};

}  // namespace zc::train
