// Node-side JRU transform: parse a raw bus telegram and filter it to the
// juridically relevant record.
//
// Mirrors the paper's "From Signals to Blocks": the transformation uses
// the same verified steps as the JRU — parse, then filter by relevance
// ("e.g., to log the speed only upon changes"). Discrete safety events
// (emergency brake, ATP intervention, doors, horn, cab signal changes) are
// always logged; continuously varying channels are quantized to absolute
// buckets (1 km/h, 10 m, 100 mbar) and logged on bucket crossings, so a
// slow drift is still captured once it accumulates. The opaque encrypted
// channel is logged as-is.
//
// Bucketing makes the filter self-realigning: nodes that observed the same
// telegrams derive byte-identical records (the precondition for ZugChain's
// payload dedup), and a node that missed a cycle diverges for at most the
// cycles until the next bucket crossing — not indefinitely, as a
// delta-since-my-last-log filter would.
#pragma once

#include <map>
#include <optional>

#include "train/signal.hpp"

namespace zc::train {

struct FilterConfig {
    /// Minimum speed delta to log, centi-km/h (100 = 1 km/h).
    std::int64_t speed_delta = 100;
    /// Minimum odometer delta to log, metres.
    std::int64_t odometer_delta = 10;
    /// Minimum brake pressure delta to log, millibar.
    std::int64_t pressure_delta = 100;
};

class JruParser {
public:
    explicit JruParser(FilterConfig config = {}) : config_(config) {}

    /// Parses a raw telegram payload. Returns nullopt for malformed input
    /// (a corrupted frame that does not decode is unusable and counts as a
    /// lost cycle, like a failed bus CRC).
    static std::optional<TelegramContent> parse(BytesView raw);

    /// Applies the relevance filter against this parser's state and
    /// advances the state. Always produces a record (cycle and timestamp
    /// are juridically relevant on their own), matching the paper where a
    /// request is submitted per bus cycle.
    LogRecord filter(const TelegramContent& telegram);

    /// Convenience: parse + filter; nullopt if parsing failed.
    std::optional<LogRecord> process(BytesView raw);

private:
    bool relevant(const Signal& now) const;
    std::int64_t quantize(const Signal& s) const;

    FilterConfig config_;
    /// Last logged quantized value per signal (absolute buckets for analog
    /// channels, raw values for discrete ones).
    std::map<SignalKind, std::int64_t> last_logged_;
};

}  // namespace zc::train
