// ATP/train signal generator.
//
// Substitutes the paper's DDC signal generator for JRU test systems: it
// produces the per-cycle process-data telegrams the bus master polls,
// following a plausible drive profile (accelerate, cruise, brake into
// stations, occasional emergency events, door activity while stopped).
// A configurable opaque-telemetry channel pads telegrams to a target
// payload size so benchmarks can sweep payload as in Figs. 6/7.
#pragma once

#include <cstddef>

#include "bus/bus.hpp"
#include "common/rng.hpp"
#include "train/signal.hpp"

namespace zc::train {

struct GeneratorConfig {
    /// Target encoded telegram size in bytes; reached by padding the
    /// opaque channel (0 = no padding).
    std::size_t payload_size = 1024;

    /// Drive dynamics.
    double max_speed_kmh = 160.0;
    double accel_ms2 = 0.7;
    double brake_ms2 = 1.0;
    Duration station_dwell{seconds(45)};
    double interstation_m = 8000.0;

    /// Rare events (per cycle).
    double emergency_brake_chance = 0.0005;
    double atp_intervention_chance = 0.001;
    double horn_chance = 0.002;
};

class SignalGenerator final : public bus::PayloadSource {
public:
    SignalGenerator(GeneratorConfig config, Rng rng);

    Bytes payload_for_cycle(std::uint64_t cycle, TimePoint at) override;

    /// The most recently generated content (tests inspect this).
    const TelegramContent& last_content() const noexcept { return last_; }

    double speed_kmh() const noexcept { return speed_kmh_; }

private:
    enum class Phase { kAccelerating, kCruising, kBraking, kStopped };

    void step_dynamics(Duration dt);
    TelegramContent snapshot(std::uint64_t cycle, TimePoint at);

    GeneratorConfig config_;
    Rng rng_;
    Phase phase_ = Phase::kStopped;
    double speed_kmh_ = 0.0;
    double odometer_m_ = 0.0;
    double segment_start_m_ = 0.0;
    Duration stop_remaining_{seconds(5)};
    TimePoint last_at_{0};
    bool first_cycle_ = true;
    std::int64_t doors_ = 0;
    std::int64_t emergency_ = 0;
    std::int64_t atp_code_ = 0;
    TelegramContent last_;
};

}  // namespace zc::train
