#include "train/jru_parser.hpp"

#include <cstdlib>

namespace zc::train {

std::optional<TelegramContent> JruParser::parse(BytesView raw) {
    return codec::try_decode<TelegramContent>(raw);
}

namespace {

/// Floor division (buckets must be monotone across zero, e.g. for the
/// traction lever).
std::int64_t floor_div(std::int64_t value, std::int64_t divisor) {
    std::int64_t q = value / divisor;
    if ((value % divisor != 0) && ((value < 0) != (divisor < 0))) --q;
    return q;
}

}  // namespace

std::int64_t JruParser::quantize(const Signal& s) const {
    // Analog channels are quantized to absolute buckets so that every node
    // logs at the same value boundaries: a node that missed a cycle
    // realigns with its peers at the next boundary instead of drifting on
    // a private "delta since my last log" reference (which would make its
    // records diverge — and be redundantly ordered — indefinitely).
    switch (s.kind) {
        case SignalKind::kSpeed:
            return floor_div(s.value, config_.speed_delta);
        case SignalKind::kOdometer:
            return floor_div(s.value, config_.odometer_delta);
        case SignalKind::kBrakePressure:
            return floor_div(s.value, config_.pressure_delta);
        // Discrete safety signals: the raw value is the bucket.
        case SignalKind::kEmergencyBrake:
        case SignalKind::kDoorState:
        case SignalKind::kAtpIntervention:
        case SignalKind::kTractionCommand:
        case SignalKind::kHorn:
        case SignalKind::kCabSignal:
            return s.value;
    }
    return s.value;
}

bool JruParser::relevant(const Signal& now) const {
    const auto it = last_logged_.find(now.kind);
    if (it == last_logged_.end()) return true;  // first sighting is always logged
    return quantize(now) != it->second;
}

LogRecord JruParser::filter(const TelegramContent& telegram) {
    LogRecord rec;
    rec.cycle = telegram.cycle;
    rec.timestamp_ns = telegram.timestamp_ns;
    for (const Signal& s : telegram.signals) {
        if (relevant(s)) {
            rec.signals.push_back(s);
            last_logged_[s.kind] = quantize(s);
        }
    }
    rec.opaque = telegram.opaque;  // encrypted at source, logged as-is
    return rec;
}

std::optional<LogRecord> JruParser::process(BytesView raw) {
    auto telegram = parse(raw);
    if (!telegram) return std::nullopt;
    return filter(*telegram);
}

}  // namespace zc::train
