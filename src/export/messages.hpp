// Export protocol messages (paper §III-D, Fig. 4).
//
// Export deliberately bypasses consensus: data centers read stable
// checkpoints (whose 2f+1 replica signatures certify the corresponding
// block) directly from individual replicas, so a JRU export can never
// delay or influence agreement.
#pragma once

#include <optional>
#include <variant>
#include <vector>

#include "chain/block.hpp"
#include "pbft/messages.hpp"

namespace zc::exporter {

/// Data centers address replicas by NodeId; replicas address data centers
/// by DataCenterId. Keys for both live in the shared KeyDirectory, with
/// data-center ids offset by kDcKeyBase.
inline constexpr std::uint32_t kDcKeyBase = 1000;

inline std::uint32_t dc_key_id(DataCenterId dc) { return kDcKeyBase + dc; }

/// (1) read broadcast: asks replicas for their latest stable checkpoint;
/// `full_from` is the randomly chosen replica that also sends full blocks
/// starting after `last_height` (the last block this DC exported).
struct ReadRequest {
    DataCenterId dc = 0;
    Height last_height = 0;
    NodeId full_from = 0;
    crypto::Signature sig{};

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static ReadRequest decode(codec::Reader& r);
    friend bool operator==(const ReadRequest&, const ReadRequest&) = default;
};

/// (2) per-replica reply: latest stable checkpoint proof; the chosen
/// replica piggybacks the full blocks (last_height, covered_height].
struct ReadReply {
    NodeId replica = 0;
    pbft::CheckpointProof proof;
    std::vector<chain::Block> blocks;
    crypto::Signature sig{};

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static ReadReply decode(codec::Reader& r);
    friend bool operator==(const ReadReply&, const ReadReply&) = default;
};

/// (4b) second round: fetch specific blocks a reply was missing.
struct BlockFetch {
    DataCenterId dc = 0;
    Height from = 0;
    Height to = 0;
    crypto::Signature sig{};

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static BlockFetch decode(codec::Reader& r);
    friend bool operator==(const BlockFetch&, const BlockFetch&) = default;
};

struct BlockFetchReply {
    NodeId replica = 0;
    std::vector<chain::Block> blocks;
    crypto::Signature sig{};

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static BlockFetchReply decode(codec::Reader& r);
    friend bool operator==(const BlockFetchReply&, const BlockFetchReply&) = default;
};

/// (3) inter-data-center synchronization: proof + blocks forwarded to the
/// other companies' data centers.
struct DcSync {
    DataCenterId from = 0;
    pbft::CheckpointProof proof;
    std::vector<chain::Block> blocks;
    crypto::Signature sig{};

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static DcSync decode(codec::Reader& r);
    friend bool operator==(const DcSync&, const DcSync&) = default;
};

/// Data-center-to-data-center block request (paper error scenario (iv): a
/// delayed data center that missed an export recovers the gap from its
/// peers, since replicas may already have pruned those blocks). Answered
/// with a DcSync carrying the requested range.
struct DcFetch {
    DataCenterId from_dc = 0;
    Height from = 0;
    Height to = 0;
    crypto::Signature sig{};

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static DcFetch decode(codec::Reader& r);
    friend bool operator==(const DcFetch&, const DcFetch&) = default;
};

/// (5) signed delete: authorizes pruning up to (and excluding) the block
/// at `height` with hash `block_hash` (which stays as the new chain base).
struct DeleteCmd {
    DataCenterId dc = 0;
    Height height = 0;
    crypto::Digest block_hash{};
    crypto::Signature sig{};

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static DeleteCmd decode(codec::Reader& r);
    friend bool operator==(const DeleteCmd&, const DeleteCmd&) = default;
};

/// (7) replica acknowledgement of an executed delete.
struct DeleteAck {
    NodeId replica = 0;
    Height height = 0;
    bool executed = false;
    crypto::Signature sig{};

    Bytes signing_bytes() const;
    void encode(codec::Writer& w) const;
    static DeleteAck decode(codec::Reader& r);
    friend bool operator==(const DeleteAck&, const DeleteAck&) = default;
};

using ExportMessage =
    std::variant<ReadRequest, ReadReply, BlockFetch, BlockFetchReply, DcSync, DeleteCmd,
                 DeleteAck, DcFetch>;

Bytes encode_export_message(const ExportMessage& m);
std::optional<ExportMessage> decode_export_message(BytesView data) noexcept;

/// Serializes a set of delete commands as prune-anchor evidence.
Bytes encode_delete_evidence(const std::vector<DeleteCmd>& deletes);
std::optional<std::vector<DeleteCmd>> decode_delete_evidence(BytesView data) noexcept;

}  // namespace zc::exporter
