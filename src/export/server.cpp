#include "export/server.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace zc::exporter {

ExportServer::ExportServer(ServerConfig config, crypto::CryptoContext& crypto,
                           chain::BlockStore& store, ServerTransport& transport)
    : config_(config), crypto_(crypto), store_(store), transport_(transport) {}

void ExportServer::on_message(const ExportMessage& m) {
    std::visit(
        [this](const auto& msg) {
            using T = std::decay_t<decltype(msg)>;
            if constexpr (std::is_same_v<T, ReadRequest> || std::is_same_v<T, BlockFetch> ||
                          std::is_same_v<T, DeleteCmd>) {
                handle(msg);
            }
            // Replies/acks/syncs are data-center-bound; ignore here.
        },
        m);
}

void ExportServer::handle(const ReadRequest& m) {
    if (!crypto_.verify(dc_key_id(m.dc), m.signing_bytes(), m.sig)) {
        stats_.invalid_messages += 1;
        return;
    }
    const pbft::CheckpointProof* proof = proof_ ? proof_() : nullptr;
    if (proof == nullptr) return;  // nothing stable yet; DC will retry

    ReadReply reply;
    reply.replica = config_.id;
    reply.proof = *proof;
    if (m.full_from == config_.id) {
        const Height to = proof_height(*proof);
        const Height from = std::max(m.last_height + 1, store_.base_height());
        if (from <= to) reply.blocks = store_.range(from, to);
        stats_.blocks_sent += reply.blocks.size();
    }
    reply.sig = crypto_.sign(reply.signing_bytes());
    stats_.reads_served += 1;
    trace_.event(trace::Phase::kExportServeRead, m.dc, reply.blocks.size());
    transport_.to_data_center(m.dc, ExportMessage{std::move(reply)});
}

void ExportServer::handle(const BlockFetch& m) {
    if (!crypto_.verify(dc_key_id(m.dc), m.signing_bytes(), m.sig)) {
        stats_.invalid_messages += 1;
        return;
    }
    BlockFetchReply reply;
    reply.replica = config_.id;
    const Height from = std::max(m.from, store_.base_height());
    const Height to = std::min(m.to, store_.head_height());
    if (from <= to) reply.blocks = store_.range(from, to);
    reply.sig = crypto_.sign(reply.signing_bytes());
    stats_.fetches_served += 1;
    transport_.to_data_center(m.dc, ExportMessage{std::move(reply)});
}

void ExportServer::handle(const DeleteCmd& m) {
    if (!crypto_.verify(dc_key_id(m.dc), m.signing_bytes(), m.sig)) {
        stats_.invalid_messages += 1;
        return;
    }
    pending_deletes_[m.height][m.dc] = m;
    try_execute_delete(m.height);
}

void ExportServer::on_new_block() {
    // Retry deletes that arrived before their block existed (error (i)).
    // try_execute_delete may erase entries, so snapshot the heights first.
    std::vector<Height> heights;
    heights.reserve(pending_deletes_.size());
    for (const auto& [height, cmds] : pending_deletes_) heights.push_back(height);
    for (const Height height : heights) try_execute_delete(height);
}

void ExportServer::try_execute_delete(Height height) {
    const auto it = pending_deletes_.find(height);
    if (it == pending_deletes_.end()) return;
    if (it->second.size() < config_.delete_quorum) return;  // error (iii)

    if (height > store_.head_height()) {
        // Error (i): block not yet created — delay until it is. Export is
        // decoupled from agreement, so we never block ordering for this.
        stats_.deletes_delayed += 1;
        return;
    }

    if (height < store_.base_height()) {
        // Already pruned past this height (idempotent re-delivery).
        pending_deletes_.erase(it);
        return;
    }

    // All quorum deletes must match our block hash at that height.
    const chain::BlockHeader* header = store_.header(height);
    std::vector<DeleteCmd> evidence;
    for (const auto& [dc, cmd] : it->second) {
        if (header == nullptr || cmd.block_hash != header->hash()) {
            stats_.deletes_rejected += 1;
            DeleteAck nack;
            nack.replica = config_.id;
            nack.height = height;
            nack.executed = false;
            nack.sig = crypto_.sign(nack.signing_bytes());
            transport_.to_data_center(dc, ExportMessage{nack});
            continue;
        }
        evidence.push_back(cmd);
    }
    if (evidence.size() < config_.delete_quorum) {
        pending_deletes_.erase(it);
        return;
    }

    store_.prune_to(height, encode_delete_evidence(evidence));
    stats_.deletes_executed += 1;
    trace_.event(trace::Phase::kExportServeDelete, height, evidence.size());

    DeleteAck ack;
    ack.replica = config_.id;
    ack.height = height;
    ack.executed = true;
    ack.sig = crypto_.sign(ack.signing_bytes());
    for (const auto& [dc, cmd] : it->second) {
        (void)cmd;
        transport_.to_data_center(dc, ExportMessage{ack});
    }
    pending_deletes_.erase(it);
}

}  // namespace zc::exporter
