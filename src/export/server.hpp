// Replica-side export service (paper §III-D).
//
// Serves read and block-fetch requests from data centers directly from the
// block store and the consensus' stable checkpoints — never touching the
// ordering path — and executes pruning once enough data centers have
// signed a delete for the same block. Handles the paper's error scenario
// (i): a delete arriving before the block exists is delayed until the
// block and its checkpoint have been created.
#pragma once

#include <functional>
#include <map>

#include "chain/block_store.hpp"
#include "crypto/context.hpp"
#include "export/messages.hpp"
#include "trace/trace.hpp"

namespace zc::exporter {

/// Outbound path to data centers; implemented by the node runtime.
class ServerTransport {
public:
    virtual ~ServerTransport() = default;
    virtual void to_data_center(DataCenterId dc, const ExportMessage& m) = 0;
};

struct ServerConfig {
    NodeId id = 0;
    SeqNo checkpoint_interval = 10;
    /// Signed deletes from this many distinct data centers are required
    /// before blocks are pruned ("a certain, configurable number").
    std::size_t delete_quorum = 2;
};

struct ServerStats {
    std::uint64_t reads_served = 0;
    std::uint64_t blocks_sent = 0;
    std::uint64_t fetches_served = 0;
    std::uint64_t deletes_executed = 0;
    std::uint64_t deletes_delayed = 0;
    std::uint64_t deletes_rejected = 0;
    std::uint64_t invalid_messages = 0;
};

class ExportServer {
public:
    /// Supplies the consensus' latest stable checkpoint proof (nullptr
    /// before the first checkpoint).
    using ProofProvider = std::function<const pbft::CheckpointProof*()>;

    ExportServer(ServerConfig config, crypto::CryptoContext& crypto, chain::BlockStore& store,
                 ServerTransport& transport);

    void set_proof_provider(ProofProvider provider) { proof_ = std::move(provider); }

    void on_message(const ExportMessage& m);

    /// Called when a new block/checkpoint exists: retries delayed deletes
    /// (error scenario (i)).
    void on_new_block();

    const ServerStats& stats() const noexcept { return stats_; }

    /// Attaches a trace context (the server holds no simulation reference).
    void set_trace(trace::TraceContext ctx) noexcept { trace_ = ctx; }

private:
    void handle(const ReadRequest& m);
    void handle(const BlockFetch& m);
    void handle(const DeleteCmd& m);
    void try_execute_delete(Height height);
    Height proof_height(const pbft::CheckpointProof& proof) const {
        return proof.seq / config_.checkpoint_interval;
    }

    ServerConfig config_;
    crypto::CryptoContext& crypto_;
    chain::BlockStore& store_;
    ServerTransport& transport_;
    ProofProvider proof_;

    /// Collected deletes: height -> dc -> command.
    std::map<Height, std::map<DataCenterId, DeleteCmd>> pending_deletes_;

    ServerStats stats_;
    trace::TraceContext trace_;
};

}  // namespace zc::exporter
