// Data-center side of the export protocol (paper §III-D, Fig. 4).
//
// Any data center can initiate an export: it broadcasts a read (1),
// collects 2f+1 stable-checkpoint replies plus full blocks from one
// randomly chosen replica (2), synchronizes with the other companies'
// data centers (3), validates signatures and chain integrity (4) — with a
// second fetch round for gaps — signs a delete (5), and collects replica
// acknowledgements (7). Each exported chain is kept permanently in the
// data center's own block store.
#pragma once

#include <functional>
#include <map>
#include <set>

#include "chain/block_store.hpp"
#include "common/rng.hpp"
#include "crypto/context.hpp"
#include "export/messages.hpp"
#include "sim/simulation.hpp"
#include "trace/trace.hpp"

namespace zc::exporter {

/// Outbound paths; implemented by the runtime.
class DcTransport {
public:
    virtual ~DcTransport() = default;
    virtual void to_replica(NodeId replica, const ExportMessage& m) = 0;
    virtual void to_data_center(DataCenterId dc, const ExportMessage& m) = 0;
};

struct DcConfig {
    DataCenterId id = 0;
    std::uint32_t n = 4;
    std::uint32_t f = 1;
    SeqNo checkpoint_interval = 10;
    std::vector<DataCenterId> peers;  ///< the other companies' data centers
    Duration reply_timeout{seconds(20)};

    /// Bounded retry with exponential backoff: a round that times out (or
    /// delivers unusable blocks) is retried after `retry_backoff`,
    /// doubling up to `retry_backoff_max`, at most `max_retries` times
    /// before the export is abandoned as failed. This lets an export that
    /// straddles an LTE outage complete once the link returns instead of
    /// hammering a dead uplink or giving up after one timeout.
    std::uint32_t max_retries = 8;
    Duration retry_backoff{seconds(2)};
    Duration retry_backoff_max{seconds(30)};
};

/// Timing/outcome record of one export run (Table II's rows).
struct ExportRecord {
    TimePoint started{0};
    Duration read_time{0};    ///< read broadcast until all needed replies
    Duration verify_cost{0};  ///< CPU spent validating proofs + chain
    Duration delete_time{0};  ///< delete broadcast until acks received
    Height exported_from = 0;
    Height exported_to = 0;
    std::uint64_t blocks = 0;
    bool success = false;
};

struct DcStats {
    std::uint64_t exports_started = 0;
    std::uint64_t exports_completed = 0;
    std::uint64_t exports_failed = 0;
    std::uint64_t retries = 0;
    std::uint64_t invalid_messages = 0;
    std::uint64_t syncs_received = 0;

    /// Staged blocks discarded because the assembled range failed
    /// validation against the checkpoint digest (forged or corrupt blocks
    /// from a compromised replica or peer DC). The permanent store is
    /// never touched by a rejected range.
    std::uint64_t blocks_rejected = 0;
};

class DataCenter {
public:
    DataCenter(DcConfig config, sim::Simulation& sim, crypto::CryptoContext& crypto,
               DcTransport& transport, metrics::Gauge* store_gauge = nullptr);

    /// (1) Starts an export round. No-op if one is already in progress.
    void start_export();

    void on_message(const ExportMessage& m);

    /// Invoked when an export round finishes (successfully or not).
    using CompletionHook = std::function<void(const ExportRecord&)>;
    void set_completion_hook(CompletionHook hook) { on_complete_ = std::move(hook); }

    const chain::BlockStore& store() const noexcept { return store_; }
    const std::vector<ExportRecord>& history() const noexcept { return history_; }
    const DcStats& stats() const noexcept { return stats_; }

    /// Latest quorum-certified checkpoint proof covering this DC's chain
    /// (null until the first successful export/sync). The safety auditor
    /// uses it to check that the exported chain is a proof-covered prefix.
    const pbft::CheckpointProof* last_proof() const noexcept {
        return last_proof_ ? &*last_proof_ : nullptr;
    }
    bool exporting() const noexcept {
        return state_ != State::kIdle || retry_timer_ != sim::kInvalidEvent;
    }

    /// Attaches a trace sink; `trace_node` is the pid the DC's export
    /// spans are recorded under (DCs share the replica NodeId space in
    /// traces via an offset chosen by the runtime).
    void set_trace(trace::TraceSink* sink, NodeId trace_node) noexcept {
        trace_ = sink;
        trace_node_ = trace_node;
    }

private:
    enum class State { kIdle, kReading, kFetching, kDeleting };

    void handle(const ReadReply& m);
    void handle(const BlockFetchReply& m);
    void handle(const DcSync& m);
    void handle(const DeleteAck& m);
    void handle(const DcFetch& m);

    bool validate_proof(const pbft::CheckpointProof& proof);
    void begin_round();
    void retry_round();
    void maybe_complete_read();
    void verify_and_continue();
    bool append_blocks(std::vector<chain::Block> blocks);

    /// Sorts + dedups `blocks` (dropping heights <= head) and checks that
    /// the remainder is a contiguous, hash-linked, payload-valid extension
    /// of the store reaching exactly `target` with head hash `state`.
    /// Validation only — the store is not modified.
    bool staged_range_valid(std::vector<chain::Block>& blocks, Height target,
                            const crypto::Digest& state);

    /// Adopts a range previously accepted by staged_range_valid.
    void adopt_blocks(std::vector<chain::Block> blocks);
    void issue_delete(Height height, const crypto::Digest& block_hash);
    void finish(bool success);
    void arm_timeout();
    void trace_span(trace::Phase phase, TimePoint start, Duration dur, std::uint64_t trace,
                    std::uint64_t arg = 0) {
        if (trace_ != nullptr) trace_->span(trace_node_, start, dur, phase, trace, arg);
    }

    DcConfig config_;
    sim::Simulation& sim_;
    crypto::CryptoContext& crypto_;
    DcTransport& transport_;
    Rng rng_;
    chain::BlockStore store_;

    State state_ = State::kIdle;
    ExportRecord current_;
    NodeId full_from_ = 0;
    std::set<NodeId> excluded_full_;  ///< replicas that failed to deliver blocks
    std::map<NodeId, ReadReply> replies_;
    std::optional<pbft::CheckpointProof> best_proof_;
    Height target_height_ = 0;
    std::vector<chain::Block> staged_blocks_;
    TimePoint delete_started_{0};
    std::set<NodeId> acks_;
    sim::EventId timeout_ = sim::kInvalidEvent;
    sim::EventId retry_timer_ = sim::kInvalidEvent;
    std::uint32_t attempts_ = 0;  ///< retry rounds within the current export

    /// Latest validated stable checkpoint proof this DC holds; served to
    /// lagging peer data centers (error scenario (iv)).
    std::optional<pbft::CheckpointProof> last_proof_;

    CompletionHook on_complete_;
    std::vector<ExportRecord> history_;
    DcStats stats_;
    trace::TraceSink* trace_ = nullptr;
    NodeId trace_node_ = 0;
};

}  // namespace zc::exporter
