#include "export/data_center.hpp"

#include <algorithm>

#include "common/log.hpp"

namespace zc::exporter {

DataCenter::DataCenter(DcConfig config, sim::Simulation& sim, crypto::CryptoContext& crypto,
                       DcTransport& transport, metrics::Gauge* store_gauge)
    : config_(config), sim_(sim), crypto_(crypto), transport_(transport),
      rng_(sim.rng().fork("dc-" + std::to_string(config.id))), store_(store_gauge) {}

void DataCenter::start_export() {
    if (exporting()) return;
    stats_.exports_started += 1;
    attempts_ = 0;
    begin_round();
}

void DataCenter::begin_round() {
    state_ = State::kReading;
    current_ = ExportRecord{};
    current_.started = sim_.now();
    current_.exported_from = store_.head_height();
    replies_.clear();
    best_proof_.reset();
    staged_blocks_.clear();
    acks_.clear();

    // (2) one randomly determined replica sends the full blocks.
    std::vector<NodeId> candidates;
    for (NodeId i = 0; i < config_.n; ++i) {
        if (!excluded_full_.contains(i)) candidates.push_back(i);
    }
    if (candidates.empty()) {
        excluded_full_.clear();
        for (NodeId i = 0; i < config_.n; ++i) candidates.push_back(i);
    }
    full_from_ = candidates[rng_.next_below(candidates.size())];

    ReadRequest req;
    req.dc = config_.id;
    req.last_height = store_.head_height();
    req.full_from = full_from_;
    req.sig = crypto_.sign(req.signing_bytes());
    for (NodeId i = 0; i < config_.n; ++i) transport_.to_replica(i, ExportMessage{req});
    arm_timeout();
}

void DataCenter::arm_timeout() {
    if (timeout_ != sim::kInvalidEvent) sim_.cancel(timeout_);
    timeout_ = sim_.schedule(config_.reply_timeout, [this] {
        timeout_ = sim::kInvalidEvent;
        if (state_ == State::kReading || state_ == State::kFetching) {
            // The chosen replica did not deliver (a faulty node denying to
            // respond, §V-B, or a link outage): retry with another one,
            // after a backoff.
            retry_round();
        } else if (state_ == State::kDeleting) {
            // Acks missing; report what we have.
            finish(true);
        }
    });
}

void DataCenter::retry_round() {
    stats_.retries += 1;
    excluded_full_.insert(full_from_);
    state_ = State::kIdle;
    attempts_ += 1;
    if (attempts_ > config_.max_retries) {
        ZC_WARN("export-dc", "dc {} export abandoned after {} retries", config_.id, attempts_ - 1);
        stats_.exports_failed += 1;
        finish(false);
        return;
    }
    // Exponential backoff: survive a link flap without hammering a dead
    // uplink; the next round starts after the wait.
    Duration backoff = config_.retry_backoff;
    for (std::uint32_t i = 1; i < attempts_ && backoff < config_.retry_backoff_max; ++i) {
        backoff = backoff * 2;
    }
    backoff = std::min(backoff, config_.retry_backoff_max);
    retry_timer_ = sim_.schedule(backoff, [this] {
        retry_timer_ = sim::kInvalidEvent;
        begin_round();
    });
}

void DataCenter::on_message(const ExportMessage& m) {
    std::visit(
        [this](const auto& msg) {
            using T = std::decay_t<decltype(msg)>;
            if constexpr (std::is_same_v<T, ReadReply> || std::is_same_v<T, BlockFetchReply> ||
                          std::is_same_v<T, DcSync> || std::is_same_v<T, DeleteAck> ||
                          std::is_same_v<T, DcFetch>) {
                handle(msg);
            }
        },
        m);
}

bool DataCenter::validate_proof(const pbft::CheckpointProof& proof) {
    if (proof.messages.size() > config_.n) return false;
    std::set<NodeId> signers;
    for (const pbft::Checkpoint& c : proof.messages) {
        if (c.seq != proof.seq || c.state != proof.state) return false;
        if (!crypto_.verify(c.replica, c.signing_bytes(), c.sig)) return false;
        signers.insert(c.replica);
    }
    return signers.size() >= 2 * config_.f + 1;
}

void DataCenter::handle(const ReadReply& m) {
    if (state_ != State::kReading) return;
    if (!crypto_.verify(m.replica, m.signing_bytes(), m.sig)) {
        stats_.invalid_messages += 1;
        return;
    }
    if (replies_.contains(m.replica)) return;
    if (!validate_proof(m.proof)) {
        stats_.invalid_messages += 1;
        return;
    }
    replies_.emplace(m.replica, m);
    maybe_complete_read();
}

void DataCenter::maybe_complete_read() {
    // Wait for 2f+1 proofs *and* the full blocks from the chosen replica:
    // a single valid checkpoint would be safe but could be outdated,
    // leaving more data on the train than necessary (§III-D step 3).
    if (replies_.size() < 2 * config_.f + 1 || !replies_.contains(full_from_)) return;

    current_.read_time = sim_.now() - current_.started;
    trace_span(trace::Phase::kExportRead, current_.started, current_.read_time,
               stats_.exports_started, replies_.size());

    // The latest stable checkpoint wins.
    for (const auto& [id, reply] : replies_) {
        if (!best_proof_ || reply.proof.seq > best_proof_->seq) best_proof_ = reply.proof;
    }
    target_height_ = best_proof_->seq / config_.checkpoint_interval;
    staged_blocks_ = replies_.at(full_from_).blocks;
    verify_and_continue();
}

bool DataCenter::append_blocks(std::vector<chain::Block> blocks) {
    std::sort(blocks.begin(), blocks.end(), [](const chain::Block& a, const chain::Block& b) {
        return a.header.height < b.header.height;
    });
    for (chain::Block& b : blocks) {
        if (b.header.height <= store_.head_height()) continue;  // already have it
        crypto_.charge_hash(b.size_bytes());  // integrity re-hash
        try {
            store_.append(std::move(b));
        } catch (const std::invalid_argument&) {
            return false;  // gap or corrupt block
        }
    }
    return true;
}

bool DataCenter::staged_range_valid(std::vector<chain::Block>& blocks, Height target,
                                    const crypto::Digest& state) {
    std::sort(blocks.begin(), blocks.end(), [](const chain::Block& a, const chain::Block& b) {
        return a.header.height < b.header.height;
    });
    std::vector<chain::Block> kept;
    kept.reserve(blocks.size());
    for (chain::Block& b : blocks) {
        if (b.header.height <= store_.head_height() || b.header.height > target) continue;
        if (!kept.empty() && kept.back().header.height == b.header.height) continue;
        kept.push_back(std::move(b));
    }
    blocks = std::move(kept);
    Height expect = store_.head_height() + 1;
    crypto::Digest prev = store_.head_hash();
    for (const chain::Block& b : blocks) {
        crypto_.charge_hash(b.size_bytes());
        if (b.header.height != expect || b.header.parent_hash != prev || !b.payload_valid()) {
            return false;
        }
        prev = b.hash();
        expect += 1;
    }
    return expect == target + 1 && prev == state;
}

void DataCenter::adopt_blocks(std::vector<chain::Block> blocks) {
    for (chain::Block& b : blocks) store_.append(std::move(b));
}

void DataCenter::verify_and_continue() {
    // (4) Validate the chain up to the block covered by the checkpoint.
    const Duration meter_before = crypto_.meter().pending();

#ifdef ZC_BREAK_VALIDATION
    // Pre-hardening behaviour (CI negative test): blocks enter the
    // permanent store before the checkpoint-digest check.
    if (!append_blocks(std::move(staged_blocks_))) {
        staged_blocks_.clear();
        retry_round();
        return;
    }
    staged_blocks_.clear();

    if (store_.head_height() < target_height_) {
        state_ = State::kFetching;
        BlockFetch fetch;
        fetch.dc = config_.id;
        fetch.from = store_.head_height() + 1;
        fetch.to = target_height_;
        fetch.sig = crypto_.sign(fetch.signing_bytes());
        std::vector<NodeId> candidates;
        for (NodeId i = 0; i < config_.n; ++i) {
            if (i != full_from_) candidates.push_back(i);
        }
        transport_.to_replica(candidates[rng_.next_below(candidates.size())],
                              ExportMessage{fetch});
        arm_timeout();
        return;
    }
    const chain::BlockHeader* head = store_.header(target_height_);
    if (head == nullptr || head->hash() != best_proof_->state) {
        ZC_WARN("export-dc", "dc {} chain/checkpoint mismatch at height {}", config_.id,
                target_height_);
        stats_.exports_failed += 1;
        finish(false);
        return;
    }
#else
    if (store_.head_height() >= target_height_) {
        // Already covered by an earlier export/sync; nothing to adopt,
        // but the certified digest must still match what we hold.
        staged_blocks_.clear();
        const chain::BlockHeader* covered = store_.header(target_height_);
        if (covered == nullptr || covered->hash() != best_proof_->state) {
            ZC_WARN("export-dc", "dc {} chain/checkpoint mismatch at height {}", config_.id,
                    target_height_);
            stats_.exports_failed += 1;
            finish(false);
            return;
        }
    } else {
        // Coverage check first: a gap between our head (plus what is
        // staged) and the checkpointed block needs a second fetch round
        // (§III-D step 4). Staged blocks stay staged across rounds.
        std::sort(staged_blocks_.begin(), staged_blocks_.end(),
                  [](const chain::Block& a, const chain::Block& b) {
                      return a.header.height < b.header.height;
                  });
        Height top = store_.head_height();
        for (const chain::Block& b : staged_blocks_) {
            if (b.header.height == top + 1) top += 1;
        }
        if (top < target_height_) {
            state_ = State::kFetching;
            BlockFetch fetch;
            fetch.dc = config_.id;
            fetch.from = top + 1;
            fetch.to = target_height_;
            fetch.sig = crypto_.sign(fetch.signing_bytes());
            std::vector<NodeId> candidates;
            for (NodeId i = 0; i < config_.n; ++i) {
                if (i != full_from_) candidates.push_back(i);
            }
            transport_.to_replica(candidates[rng_.next_below(candidates.size())],
                                  ExportMessage{fetch});
            arm_timeout();
            return;
        }

        // Stage-then-adopt: the whole range must hash-link from our head
        // to the quorum-certified checkpoint digest BEFORE anything is
        // appended to the permanent store. A forged-but-hash-linked range
        // from a compromised replica dies here and we retry elsewhere.
        if (!staged_range_valid(staged_blocks_, target_height_, best_proof_->state)) {
            ZC_WARN("export-dc", "dc {} rejected {} staged blocks (checkpoint mismatch)",
                    config_.id, staged_blocks_.size());
            stats_.blocks_rejected += staged_blocks_.size();
            staged_blocks_.clear();
            retry_round();
            return;
        }
        adopt_blocks(std::move(staged_blocks_));
        staged_blocks_.clear();
    }
    const chain::BlockHeader* head = store_.header(target_height_);
#endif

    const Duration verify_cost = crypto_.meter().pending() - meter_before;
    current_.verify_cost += verify_cost;
    trace_span(trace::Phase::kExportVerify, sim_.now(), verify_cost, stats_.exports_started,
               target_height_);
    last_proof_ = best_proof_;

    // (3) Synchronize with the other companies' data centers.
    DcSync sync;
    sync.from = config_.id;
    sync.proof = *best_proof_;
    sync.blocks = store_.range(current_.exported_from + 1, target_height_);
    sync.sig = crypto_.sign(sync.signing_bytes());
    for (DataCenterId peer : config_.peers) {
        transport_.to_data_center(peer, ExportMessage{sync});
    }

    // (5) Sign and broadcast the delete.
    issue_delete(target_height_, head->hash());
}

void DataCenter::handle(const BlockFetchReply& m) {
    if (state_ != State::kFetching) return;
    if (!crypto_.verify(m.replica, m.signing_bytes(), m.sig)) {
        stats_.invalid_messages += 1;
        return;
    }
    // Accumulate: earlier staged (but not yet validated/adopted) blocks
    // are still pending; the fetch round filled the gap above them.
    staged_blocks_.insert(staged_blocks_.end(), m.blocks.begin(), m.blocks.end());
    state_ = State::kReading;  // re-enter verification
    verify_and_continue();
}

void DataCenter::issue_delete(Height height, const crypto::Digest& block_hash) {
    state_ = State::kDeleting;
    delete_started_ = sim_.now();
    current_.exported_to = height;
    current_.blocks = height - current_.exported_from;

    DeleteCmd del;
    del.dc = config_.id;
    del.height = height;
    del.block_hash = block_hash;
    del.sig = crypto_.sign(del.signing_bytes());
    for (NodeId i = 0; i < config_.n; ++i) transport_.to_replica(i, ExportMessage{del});
    arm_timeout();
}

void DataCenter::handle(const DcSync& m) {
    if (!crypto_.verify(dc_key_id(m.from), m.signing_bytes(), m.sig)) {
        stats_.invalid_messages += 1;
        return;
    }
    if (!validate_proof(m.proof)) {
        stats_.invalid_messages += 1;
        return;
    }
    stats_.syncs_received += 1;

    const Height target = m.proof.seq / config_.checkpoint_interval;
#ifdef ZC_BREAK_VALIDATION
    // Pre-hardening behaviour (CI negative test): peer blocks enter the
    // permanent store before the proof-digest check.
    const bool appended = append_blocks(m.blocks);
    if (!appended || store_.head_height() < target) {
        // We missed earlier exports (error (iv)): the replicas may have
        // pruned those blocks, so recover the gap from the peer that has
        // the full history.
        DcFetch fetch;
        fetch.from_dc = config_.id;
        fetch.from = store_.head_height() + 1;
        fetch.to = target;
        fetch.sig = crypto_.sign(fetch.signing_bytes());
        transport_.to_data_center(m.from, ExportMessage{fetch});
        return;
    }
#else
    if (store_.head_height() < target) {
        std::vector<chain::Block> staged = m.blocks;
        std::sort(staged.begin(), staged.end(),
                  [](const chain::Block& a, const chain::Block& b) {
                      return a.header.height < b.header.height;
                  });
        Height top = store_.head_height();
        for (const chain::Block& b : staged) {
            if (b.header.height == top + 1) top += 1;
        }
        if (top < target) {
            // We missed earlier exports (error (iv)): the replicas may
            // have pruned those blocks, so recover the gap from the peer
            // that has the full history.
            DcFetch fetch;
            fetch.from_dc = config_.id;
            fetch.from = store_.head_height() + 1;
            fetch.to = target;
            fetch.sig = crypto_.sign(fetch.signing_bytes());
            transport_.to_data_center(m.from, ExportMessage{fetch});
            return;
        }
        // Stage-then-adopt: the peer's range must hash-link from our head
        // to the proof digest before anything touches the permanent store.
        if (!staged_range_valid(staged, target, m.proof.state)) {
            ZC_WARN("export-dc", "dc {} rejected {} sync blocks from dc {}", config_.id,
                    staged.size(), m.from);
            stats_.blocks_rejected += staged.size();
            stats_.invalid_messages += 1;
            return;
        }
        adopt_blocks(std::move(staged));
    }
#endif
    const chain::BlockHeader* head = store_.header(target);
    if (head == nullptr || head->hash() != m.proof.state) return;
    last_proof_ = m.proof;

    // All data centers sign deletes (§III-D step 5); replicas act once a
    // quorum of them agrees.
    DeleteCmd del;
    del.dc = config_.id;
    del.height = target;
    del.block_hash = head->hash();
    del.sig = crypto_.sign(del.signing_bytes());
    for (NodeId i = 0; i < config_.n; ++i) transport_.to_replica(i, ExportMessage{del});
}

void DataCenter::handle(const DcFetch& m) {
    if (!crypto_.verify(dc_key_id(m.from_dc), m.signing_bytes(), m.sig)) {
        stats_.invalid_messages += 1;
        return;
    }
    if (!last_proof_) return;  // nothing certified to serve yet
    DcSync sync;
    sync.from = config_.id;
    sync.proof = *last_proof_;
    const Height to = std::min(m.to, store_.head_height());
    if (m.from <= to) sync.blocks = store_.range(m.from, to);
    sync.sig = crypto_.sign(sync.signing_bytes());
    transport_.to_data_center(m.from_dc, ExportMessage{sync});
}

void DataCenter::handle(const DeleteAck& m) {
    if (state_ != State::kDeleting) return;
    if (!crypto_.verify(m.replica, m.signing_bytes(), m.sig)) {
        stats_.invalid_messages += 1;
        return;
    }
    if (!m.executed || m.height != current_.exported_to) return;
    acks_.insert(m.replica);
    // (7) Wait for every replica able to answer (n - f suffices: f faulty
    // replicas may never ack; their missed delete is caught by the
    // header-trim fallback, error (v)).
    if (acks_.size() >= config_.n - config_.f) {
        current_.delete_time = sim_.now() - delete_started_;
        trace_span(trace::Phase::kExportDelete, delete_started_, current_.delete_time,
                   current_.exported_to, acks_.size());
        finish(true);
    }
}

void DataCenter::finish(bool success) {
    if (timeout_ != sim::kInvalidEvent) {
        sim_.cancel(timeout_);
        timeout_ = sim::kInvalidEvent;
    }
    current_.success = success;
    if (success) stats_.exports_completed += 1;
    history_.push_back(current_);
    state_ = State::kIdle;
    if (on_complete_) on_complete_(current_);
}

}  // namespace zc::exporter
