#include "export/messages.hpp"

namespace zc::exporter {

namespace {

constexpr std::size_t kMaxBlocksPerMessage = 1u << 16;

void encode_sig(codec::Writer& w, const crypto::Signature& sig) { w.raw(sig.v); }

crypto::Signature decode_sig(codec::Reader& r) {
    crypto::Signature sig;
    sig.v = r.raw_array<64>();
    return sig;
}

void encode_blocks(codec::Writer& w, const std::vector<chain::Block>& blocks) {
    w.varint(blocks.size());
    for (const chain::Block& b : blocks) b.encode(w);
}

std::vector<chain::Block> decode_blocks(codec::Reader& r) {
    const std::uint64_t count = r.varint();
    if (count > kMaxBlocksPerMessage) throw codec::DecodeError("oversized block batch");
    std::vector<chain::Block> out;
    out.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) out.push_back(chain::Block::decode(r));
    return out;
}

}  // namespace

Bytes ReadRequest::signing_bytes() const {
    codec::Writer w(32);
    w.str("exp-read");
    w.u32(dc);
    w.u64(last_height);
    w.u32(full_from);
    return w.take();
}

void ReadRequest::encode(codec::Writer& w) const {
    w.u32(dc);
    w.u64(last_height);
    w.u32(full_from);
    encode_sig(w, sig);
}

ReadRequest ReadRequest::decode(codec::Reader& r) {
    ReadRequest m;
    m.dc = r.u32();
    m.last_height = r.u64();
    m.full_from = r.u32();
    m.sig = decode_sig(r);
    return m;
}

Bytes ReadReply::signing_bytes() const {
    codec::Writer w(256);
    w.str("exp-reply");
    w.u32(replica);
    proof.encode(w);
    encode_blocks(w, blocks);
    return w.take();
}

void ReadReply::encode(codec::Writer& w) const {
    w.u32(replica);
    proof.encode(w);
    encode_blocks(w, blocks);
    encode_sig(w, sig);
}

ReadReply ReadReply::decode(codec::Reader& r) {
    ReadReply m;
    m.replica = r.u32();
    m.proof = pbft::CheckpointProof::decode(r);
    m.blocks = decode_blocks(r);
    m.sig = decode_sig(r);
    return m;
}

Bytes BlockFetch::signing_bytes() const {
    codec::Writer w(32);
    w.str("exp-fetch");
    w.u32(dc);
    w.u64(from);
    w.u64(to);
    return w.take();
}

void BlockFetch::encode(codec::Writer& w) const {
    w.u32(dc);
    w.u64(from);
    w.u64(to);
    encode_sig(w, sig);
}

BlockFetch BlockFetch::decode(codec::Reader& r) {
    BlockFetch m;
    m.dc = r.u32();
    m.from = r.u64();
    m.to = r.u64();
    m.sig = decode_sig(r);
    return m;
}

Bytes BlockFetchReply::signing_bytes() const {
    codec::Writer w(128);
    w.str("exp-fetch-reply");
    w.u32(replica);
    encode_blocks(w, blocks);
    return w.take();
}

void BlockFetchReply::encode(codec::Writer& w) const {
    w.u32(replica);
    encode_blocks(w, blocks);
    encode_sig(w, sig);
}

BlockFetchReply BlockFetchReply::decode(codec::Reader& r) {
    BlockFetchReply m;
    m.replica = r.u32();
    m.blocks = decode_blocks(r);
    m.sig = decode_sig(r);
    return m;
}

Bytes DcSync::signing_bytes() const {
    codec::Writer w(256);
    w.str("exp-sync");
    w.u32(from);
    proof.encode(w);
    encode_blocks(w, blocks);
    return w.take();
}

void DcSync::encode(codec::Writer& w) const {
    w.u32(from);
    proof.encode(w);
    encode_blocks(w, blocks);
    encode_sig(w, sig);
}

DcSync DcSync::decode(codec::Reader& r) {
    DcSync m;
    m.from = r.u32();
    m.proof = pbft::CheckpointProof::decode(r);
    m.blocks = decode_blocks(r);
    m.sig = decode_sig(r);
    return m;
}

Bytes DcFetch::signing_bytes() const {
    codec::Writer w(32);
    w.str("exp-dcfetch");
    w.u32(from_dc);
    w.u64(from);
    w.u64(to);
    return w.take();
}

void DcFetch::encode(codec::Writer& w) const {
    w.u32(from_dc);
    w.u64(from);
    w.u64(to);
    encode_sig(w, sig);
}

DcFetch DcFetch::decode(codec::Reader& r) {
    DcFetch m;
    m.from_dc = r.u32();
    m.from = r.u64();
    m.to = r.u64();
    m.sig = decode_sig(r);
    return m;
}

Bytes DeleteCmd::signing_bytes() const {
    codec::Writer w(64);
    w.str("exp-delete");
    w.u32(dc);
    w.u64(height);
    w.raw(block_hash);
    return w.take();
}

void DeleteCmd::encode(codec::Writer& w) const {
    w.u32(dc);
    w.u64(height);
    w.raw(block_hash);
    encode_sig(w, sig);
}

DeleteCmd DeleteCmd::decode(codec::Reader& r) {
    DeleteCmd m;
    m.dc = r.u32();
    m.height = r.u64();
    m.block_hash = r.raw_array<32>();
    m.sig = decode_sig(r);
    return m;
}

Bytes DeleteAck::signing_bytes() const {
    codec::Writer w(32);
    w.str("exp-ack");
    w.u32(replica);
    w.u64(height);
    w.u8(executed ? 1 : 0);
    return w.take();
}

void DeleteAck::encode(codec::Writer& w) const {
    w.u32(replica);
    w.u64(height);
    w.u8(executed ? 1 : 0);
    encode_sig(w, sig);
}

DeleteAck DeleteAck::decode(codec::Reader& r) {
    DeleteAck m;
    m.replica = r.u32();
    m.height = r.u64();
    m.executed = r.u8() != 0;
    m.sig = decode_sig(r);
    return m;
}

namespace {

template <typename T>
constexpr std::uint8_t tag_of();
template <>
constexpr std::uint8_t tag_of<ReadRequest>() { return 1; }
template <>
constexpr std::uint8_t tag_of<ReadReply>() { return 2; }
template <>
constexpr std::uint8_t tag_of<BlockFetch>() { return 3; }
template <>
constexpr std::uint8_t tag_of<BlockFetchReply>() { return 4; }
template <>
constexpr std::uint8_t tag_of<DcSync>() { return 5; }
template <>
constexpr std::uint8_t tag_of<DeleteCmd>() { return 6; }
template <>
constexpr std::uint8_t tag_of<DeleteAck>() { return 7; }
template <>
constexpr std::uint8_t tag_of<DcFetch>() { return 8; }

}  // namespace

Bytes encode_export_message(const ExportMessage& m) {
    codec::Writer w(256);
    std::visit(
        [&w](const auto& msg) {
            w.u8(tag_of<std::decay_t<decltype(msg)>>());
            msg.encode(w);
        },
        m);
    return w.take();
}

std::optional<ExportMessage> decode_export_message(BytesView data) noexcept {
    try {
        codec::Reader r(data);
        const std::uint8_t tag = r.u8();
        ExportMessage m;
        switch (tag) {
            case 1: m = ReadRequest::decode(r); break;
            case 2: m = ReadReply::decode(r); break;
            case 3: m = BlockFetch::decode(r); break;
            case 4: m = BlockFetchReply::decode(r); break;
            case 5: m = DcSync::decode(r); break;
            case 6: m = DeleteCmd::decode(r); break;
            case 7: m = DeleteAck::decode(r); break;
            case 8: m = DcFetch::decode(r); break;
            default: return std::nullopt;
        }
        r.expect_done();
        return m;
    } catch (const codec::DecodeError&) {
        return std::nullopt;
    }
}

Bytes encode_delete_evidence(const std::vector<DeleteCmd>& deletes) {
    codec::Writer w(128);
    w.varint(deletes.size());
    for (const DeleteCmd& d : deletes) d.encode(w);
    return w.take();
}

std::optional<std::vector<DeleteCmd>> decode_delete_evidence(BytesView data) noexcept {
    try {
        codec::Reader r(data);
        const std::uint64_t count = r.varint();
        if (count > 1024) return std::nullopt;
        std::vector<DeleteCmd> out;
        out.reserve(count);
        for (std::uint64_t i = 0; i < count; ++i) out.push_back(DeleteCmd::decode(r));
        r.expect_done();
        return out;
    } catch (const codec::DecodeError&) {
        return std::nullopt;
    }
}

}  // namespace zc::exporter
