// Byte-buffer primitives shared by every ZugChain module.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace zc {

/// Owned, contiguous byte buffer. The canonical payload/message type.
using Bytes = std::vector<std::uint8_t>;

/// Non-owning view over bytes.
using BytesView = std::span<const std::uint8_t>;

/// Builds a byte buffer from a string literal / std::string.
Bytes to_bytes(std::string_view s);

/// Interprets a byte buffer as text (for diagnostics only).
std::string to_string(BytesView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, BytesView src);

/// Constant-time-ish equality for digests and signatures. Always scans the
/// full length so comparison time does not leak the mismatch position.
bool equal_ct(BytesView a, BytesView b);

/// FNV-1a 64-bit hash of a byte range. Non-cryptographic; used only for
/// hash-map bucketing of payloads (dedup window), never for integrity.
std::uint64_t fnv1a(BytesView b) noexcept;

/// Functor so Bytes can key unordered containers via FNV-1a.
struct BytesHash {
    std::size_t operator()(const Bytes& b) const noexcept { return fnv1a(b); }
};

}  // namespace zc
