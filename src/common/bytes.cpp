#include "common/bytes.hpp"

namespace zc {

Bytes to_bytes(std::string_view s) {
    return Bytes(s.begin(), s.end());
}

std::string to_string(BytesView b) {
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

void append(Bytes& dst, BytesView src) {
    dst.insert(dst.end(), src.begin(), src.end());
}

bool equal_ct(BytesView a, BytesView b) {
    if (a.size() != b.size()) return false;
    std::uint8_t acc = 0;
    for (std::size_t i = 0; i < a.size(); ++i) acc |= static_cast<std::uint8_t>(a[i] ^ b[i]);
    return acc == 0;
}

std::uint64_t fnv1a(BytesView b) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (std::uint8_t c : b) {
        h ^= c;
        h *= 0x100000001b3ULL;
    }
    return h;
}

}  // namespace zc
