// Minimal leveled logger. Protocol code logs through this so tests can
// silence output and failure investigations can crank verbosity per run.
#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "common/format.hpp"

namespace zc {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

namespace log_detail {
LogLevel threshold() noexcept;
void emit(LogLevel level, std::string_view component, std::string_view msg);
bool hook_installed() noexcept;
void notify_hook(LogLevel level, std::string_view component, std::string_view msg);
}  // namespace log_detail

/// Sets the global log threshold (default: kWarn; respects ZC_LOG env var
/// with values trace/debug/info/warn/error/off on first use).
void set_log_level(LogLevel level) noexcept;

/// Observer for warn/error log sites, independent of the print threshold
/// (a silenced run still records). The health flight recorder installs one
/// so every existing ZC_WARN/ZC_ERROR call site becomes a recorded event.
/// One hook at a time; null removes it.
using LogHook = std::function<void(LogLevel, std::string_view component, std::string_view msg)>;
void set_log_hook(LogHook hook);

template <typename... Args>
void log(LogLevel level, std::string_view component, std::string_view fmt, Args&&... args) {
    const bool hooked =
        level >= LogLevel::kWarn && level < LogLevel::kOff && log_detail::hook_installed();
    if (!hooked && level < log_detail::threshold()) return;
    const std::string msg = zc::format(fmt, std::forward<Args>(args)...);
    if (hooked) log_detail::notify_hook(level, component, msg);
    if (level >= log_detail::threshold()) log_detail::emit(level, component, msg);
}

#define ZC_LOG_AT(level, component, ...) ::zc::log((level), (component), __VA_ARGS__)
#define ZC_TRACE(component, ...) ZC_LOG_AT(::zc::LogLevel::kTrace, component, __VA_ARGS__)
#define ZC_DEBUG(component, ...) ZC_LOG_AT(::zc::LogLevel::kDebug, component, __VA_ARGS__)
#define ZC_INFO(component, ...) ZC_LOG_AT(::zc::LogLevel::kInfo, component, __VA_ARGS__)
#define ZC_WARN(component, ...) ZC_LOG_AT(::zc::LogLevel::kWarn, component, __VA_ARGS__)
#define ZC_ERROR(component, ...) ZC_LOG_AT(::zc::LogLevel::kError, component, __VA_ARGS__)

}  // namespace zc
