// Strongly-typed identifiers used across the system.
#pragma once

#include <cstdint>

namespace zc {

/// ZugChain node / BFT replica identifier (0..n-1, fixed at deployment).
using NodeId = std::uint32_t;

/// Data-center identifier for the export protocol.
using DataCenterId = std::uint32_t;

/// Consensus view number (primary = view mod n).
using View = std::uint64_t;

/// Consensus sequence number assigned by ordering.
using SeqNo = std::uint64_t;

/// Block height in the chain (genesis = 0).
using Height = std::uint64_t;

/// Sentinel for "no node".
inline constexpr NodeId kNoNode = 0xffffffffu;

}  // namespace zc
