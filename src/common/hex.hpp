// Hex encoding/decoding for digests, keys and diagnostics.
#pragma once

#include <optional>
#include <string>

#include "common/bytes.hpp"

namespace zc {

/// Lower-case hex encoding.
std::string to_hex(BytesView b);

/// Decodes lower- or upper-case hex. Returns nullopt on odd length or
/// non-hex characters.
std::optional<Bytes> from_hex(std::string_view s);

}  // namespace zc
