#include "common/log.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <string>

namespace zc {

namespace {

std::atomic<LogLevel> g_threshold{LogLevel::kOff};
std::once_flag g_init_once;

std::atomic<bool> g_hook_installed{false};
LogHook g_hook;  // written only while g_hook_installed is false

LogLevel parse_level(const char* s) {
    const std::string v = s ? s : "";
    if (v == "trace") return LogLevel::kTrace;
    if (v == "debug") return LogLevel::kDebug;
    if (v == "info") return LogLevel::kInfo;
    if (v == "warn") return LogLevel::kWarn;
    if (v == "error") return LogLevel::kError;
    if (v == "off") return LogLevel::kOff;
    return LogLevel::kWarn;
}

const char* level_name(LogLevel level) {
    switch (level) {
        case LogLevel::kTrace: return "TRACE";
        case LogLevel::kDebug: return "DEBUG";
        case LogLevel::kInfo: return "INFO";
        case LogLevel::kWarn: return "WARN";
        case LogLevel::kError: return "ERROR";
        case LogLevel::kOff: return "OFF";
    }
    return "?";
}

void ensure_init() {
    std::call_once(g_init_once, [] {
        g_threshold.store(parse_level(std::getenv("ZC_LOG")), std::memory_order_relaxed);
    });
}

}  // namespace

void set_log_level(LogLevel level) noexcept {
    ensure_init();
    g_threshold.store(level, std::memory_order_relaxed);
}

void set_log_hook(LogHook hook) {
    g_hook_installed.store(false, std::memory_order_release);
    g_hook = std::move(hook);
    if (g_hook) g_hook_installed.store(true, std::memory_order_release);
}

namespace log_detail {

LogLevel threshold() noexcept {
    ensure_init();
    return g_threshold.load(std::memory_order_relaxed);
}

void emit(LogLevel level, std::string_view component, std::string_view msg) {
    std::fprintf(stderr, "[%s] %.*s: %.*s\n", level_name(level),
                 static_cast<int>(component.size()), component.data(),
                 static_cast<int>(msg.size()), msg.data());
}

bool hook_installed() noexcept { return g_hook_installed.load(std::memory_order_acquire); }

void notify_hook(LogLevel level, std::string_view component, std::string_view msg) {
    if (hook_installed()) g_hook(level, component, msg);
}

}  // namespace log_detail

}  // namespace zc
