// Deterministic pseudo-random number generator for reproducible simulation.
//
// Every scenario derives all randomness (network jitter, bus faults, key
// generation, Byzantine schedules) from a single seed through named
// sub-streams, so two runs with the same seed are bit-identical regardless
// of module initialization order.
#pragma once

#include <cstdint>
#include <string_view>

#include "common/bytes.hpp"

namespace zc {

/// xoshiro256** PRNG. Not cryptographically secure; simulation only.
class Rng {
public:
    explicit Rng(std::uint64_t seed) noexcept;

    /// Uniform 64-bit value.
    std::uint64_t next() noexcept;

    /// Uniform in [0, bound). bound must be > 0.
    std::uint64_t next_below(std::uint64_t bound) noexcept;

    /// Uniform double in [0, 1).
    double next_double() noexcept;

    /// Bernoulli trial.
    bool chance(double probability) noexcept;

    /// Uniform integer in [lo, hi] inclusive.
    std::int64_t next_range(std::int64_t lo, std::int64_t hi) noexcept;

    /// Fills a buffer with pseudo-random bytes (key material in tests/sims).
    void fill(Bytes& out) noexcept;
    Bytes bytes(std::size_t n);

    /// Derives an independent sub-stream, e.g. fork("bus-faults") — the
    /// label is mixed into the seed so streams do not correlate.
    Rng fork(std::string_view label) noexcept;

private:
    std::uint64_t s_[4];
};

}  // namespace zc
