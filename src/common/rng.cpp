#include "common/rng.hpp"

namespace zc {

namespace {
std::uint64_t splitmix64(std::uint64_t& x) noexcept {
    x += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) noexcept { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
    std::uint64_t x = seed;
    for (auto& s : s_) s = splitmix64(x);
}

std::uint64_t Rng::next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
    // Debiased via rejection sampling.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
        const std::uint64_t r = next();
        if (r >= threshold) return r % bound;
    }
}

double Rng::next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double probability) noexcept {
    if (probability <= 0.0) return false;
    if (probability >= 1.0) return true;
    return next_double() < probability;
}

std::int64_t Rng::next_range(std::int64_t lo, std::int64_t hi) noexcept {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
}

void Rng::fill(Bytes& out) noexcept {
    std::size_t i = 0;
    while (i < out.size()) {
        std::uint64_t r = next();
        for (int b = 0; b < 8 && i < out.size(); ++b, ++i) {
            out[i] = static_cast<std::uint8_t>(r & 0xff);
            r >>= 8;
        }
    }
}

Bytes Rng::bytes(std::size_t n) {
    Bytes out(n);
    fill(out);
    return out;
}

Rng Rng::fork(std::string_view label) noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (char c : label) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return Rng(next() ^ h);
}

}  // namespace zc
