// Simulation time types. All protocol and substrate code runs on virtual
// time supplied by the discrete-event engine; nothing reads the wall clock.
#pragma once

#include <chrono>
#include <cstdint>

namespace zc {

/// Virtual duration, nanosecond resolution.
using Duration = std::chrono::nanoseconds;

/// Virtual instant, measured since simulation start.
using TimePoint = std::chrono::nanoseconds;

constexpr Duration nanoseconds(std::int64_t v) { return Duration{v}; }
constexpr Duration microseconds(std::int64_t v) { return Duration{v * 1'000}; }
constexpr Duration milliseconds(std::int64_t v) { return Duration{v * 1'000'000}; }
constexpr Duration seconds(std::int64_t v) { return Duration{v * 1'000'000'000}; }

/// Fractional-millisecond helper for cost models.
constexpr Duration millis_f(double v) {
    return Duration{static_cast<std::int64_t>(v * 1e6)};
}

constexpr double to_seconds(Duration d) { return static_cast<double>(d.count()) / 1e9; }
constexpr double to_millis(Duration d) { return static_cast<double>(d.count()) / 1e6; }

}  // namespace zc
