// Minimal "{}" formatter (GCC 12 on this toolchain lacks <format>).
// Supports sequential "{}" placeholders rendered via operator<<; surplus
// arguments are appended, surplus placeholders are left verbatim.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace zc {

namespace format_detail {

inline void format_rest(std::ostringstream& out, std::string_view fmt) { out << fmt; }

template <typename First, typename... Rest>
void format_rest(std::ostringstream& out, std::string_view fmt, First&& first, Rest&&... rest) {
    const std::size_t pos = fmt.find("{}");
    if (pos == std::string_view::npos) {
        out << fmt << ' ' << first;
        (void)std::initializer_list<int>{((out << ' ' << rest), 0)...};
        return;
    }
    out << fmt.substr(0, pos) << first;
    format_rest(out, fmt.substr(pos + 2), std::forward<Rest>(rest)...);
}

}  // namespace format_detail

/// Formats `fmt`, substituting "{}" placeholders left to right.
template <typename... Args>
std::string format(std::string_view fmt, Args&&... args) {
    std::ostringstream out;
    format_detail::format_rest(out, fmt, std::forward<Args>(args)...);
    return out.str();
}

}  // namespace zc
