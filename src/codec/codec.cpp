#include "codec/codec.hpp"

#include <cstring>

namespace zc::codec {

void Writer::u16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void Writer::f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
}

void Writer::varint(std::uint64_t v) {
    while (v >= 0x80) {
        buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::bytes(BytesView v) {
    varint(v.size());
    raw(v);
}

void Writer::str(std::string_view v) {
    varint(v.size());
    buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::raw(BytesView v) { buf_.insert(buf_.end(), v.begin(), v.end()); }

void Reader::need(std::size_t n) const {
    if (remaining() < n) throw DecodeError("unexpected end of buffer");
}

std::uint8_t Reader::u8() {
    need(1);
    return data_[pos_++];
}

std::uint16_t Reader::u16() {
    need(2);
    const std::uint16_t v =
        static_cast<std::uint16_t>(data_[pos_] | (std::uint16_t(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return v;
}

std::uint32_t Reader::u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 4;
    return v;
}

std::uint64_t Reader::u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
    pos_ += 8;
    return v;
}

double Reader::f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

std::uint64_t Reader::varint() {
    std::uint64_t v = 0;
    int shift = 0;
    for (;;) {
        need(1);
        const std::uint8_t b = data_[pos_++];
        if (shift == 63 && (b & 0x7e) != 0) throw DecodeError("varint overflow");
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        if ((b & 0x80) == 0) return v;
        shift += 7;
        if (shift > 63) throw DecodeError("varint too long");
    }
}

Bytes Reader::bytes(std::size_t max_len) {
    const std::uint64_t len = varint();
    if (len > max_len) throw DecodeError("length-delimited field too large");
    need(len);
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + len));
    pos_ += len;
    return out;
}

std::string Reader::str(std::size_t max_len) {
    const Bytes b = bytes(max_len);
    return std::string(b.begin(), b.end());
}

void Reader::raw(std::uint8_t* out, std::size_t n) {
    need(n);
    std::memcpy(out, data_.data() + pos_, n);
    pos_ += n;
}

void Reader::expect_done() const {
    if (!done()) throw DecodeError("trailing bytes after message");
}

}  // namespace zc::codec
