// Compact binary wire format (protobuf-style primitives: LEB128 varints,
// fixed-width little-endian integers, length-delimited byte strings).
//
// Every protocol message implements
//     void encode(codec::Writer&) const;
//     static T decode(codec::Reader&);
// Decoding malformed input throws codec::DecodeError, which the transport
// layer treats as a Byzantine/corrupt message and drops.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

#include "common/bytes.hpp"
#include "prof/prof.hpp"

namespace zc::codec {

/// Thrown when decoding runs past the buffer or violates a limit.
class DecodeError : public std::runtime_error {
public:
    explicit DecodeError(const std::string& what) : std::runtime_error(what) {}
};

/// Appends primitives to a growing byte buffer.
class Writer {
public:
    Writer() = default;
    explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u32(std::uint32_t v);
    void u64(std::uint64_t v);
    void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
    void f64(double v);

    /// LEB128 unsigned varint (1-10 bytes).
    void varint(std::uint64_t v);

    /// Length-delimited byte string (varint length + raw bytes).
    void bytes(BytesView v);
    void str(std::string_view v);

    /// Raw bytes without a length prefix (fixed-size fields: digests, keys,
    /// signatures).
    void raw(BytesView v);
    template <std::size_t N>
    void raw(const std::array<std::uint8_t, N>& v) {
        raw(BytesView{v.data(), v.size()});
    }

    const Bytes& buffer() const noexcept { return buf_; }
    Bytes take() noexcept { return std::move(buf_); }
    std::size_t size() const noexcept { return buf_.size(); }

private:
    Bytes buf_;
};

/// Reads primitives from a byte view with bounds checking.
class Reader {
public:
    explicit Reader(BytesView data) noexcept : data_(data) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
    double f64();

    std::uint64_t varint();

    /// Length-delimited byte string. `max_len` guards against hostile
    /// lengths claiming gigabytes.
    Bytes bytes(std::size_t max_len = kDefaultMaxLen);
    std::string str(std::size_t max_len = kDefaultMaxLen);

    /// Fixed-size raw read.
    void raw(std::uint8_t* out, std::size_t n);
    template <std::size_t N>
    std::array<std::uint8_t, N> raw_array() {
        std::array<std::uint8_t, N> out;
        raw(out.data(), N);
        return out;
    }

    std::size_t remaining() const noexcept { return data_.size() - pos_; }
    bool done() const noexcept { return remaining() == 0; }

    /// Throws unless the whole buffer has been consumed (trailing garbage is
    /// treated as corruption).
    void expect_done() const;

    static constexpr std::size_t kDefaultMaxLen = 64u << 20;  // 64 MiB

private:
    void need(std::size_t n) const;

    BytesView data_;
    std::size_t pos_ = 0;
};

/// Round-trip helpers for message types with encode/decode members.
/// These are the codec choke points every wire message funnels through,
/// so they carry the host-profiler attribution scopes (one branch when
/// profiling is off).
template <typename T>
Bytes encode_to_bytes(const T& msg) {
    ZC_PROF_SCOPE(kCodecEncode);
    Writer w;
    msg.encode(w);
    return w.take();
}

template <typename T>
T decode_from_bytes(BytesView data) {
    ZC_PROF_SCOPE(kCodecDecode);
    Reader r(data);
    T msg = T::decode(r);
    r.expect_done();
    return msg;
}

/// Decode variant returning nullopt instead of throwing; used on network
/// receive paths where corruption is an expected fault.
template <typename T>
std::optional<T> try_decode(BytesView data) noexcept {
    try {
        return decode_from_bytes<T>(data);
    } catch (const DecodeError&) {
        return std::nullopt;
    }
}

}  // namespace zc::codec
