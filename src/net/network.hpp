// Simulated message-passing network.
//
// Models the consensus Ethernet between ZugChain nodes and the LTE uplink
// to the data centers: per-endpoint egress serialization at a configurable
// bandwidth (a single NIC per device, so bursts queue), propagation latency
// with jitter, probabilistic loss, and partitions. Per-endpoint byte meters
// feed the network-utilization axis of Fig. 6.
//
// The network provides partial synchrony exactly as the paper assumes:
// delivery is asynchronous with bounded (but load-dependent) delay; the
// protocol layers never rely on timing for safety.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "common/time.hpp"
#include "sim/simulation.hpp"

namespace zc::net {

/// Global endpoint identifier (ZugChain nodes, data centers).
using EndpointId = std::uint32_t;

/// Receiver interface; implemented by node/data-center runtimes.
class Endpoint {
public:
    virtual ~Endpoint() = default;
    virtual void deliver(EndpointId from, Bytes message) = 0;
};

/// Transmission characteristics of a directed link.
struct LinkProfile {
    Duration latency{microseconds(100)};  ///< propagation delay
    Duration jitter{microseconds(50)};    ///< uniform extra delay in [0, jitter]
    double bandwidth_bps = 100e6;         ///< egress serialization rate
    double loss = 0.0;                    ///< per-message drop probability

    /// The testbed's 100 Mbit/s on-train Ethernet.
    static LinkProfile train_ethernet() { return LinkProfile{}; }

    /// The paper's LTE uplink: ~8.5 Mbit/s, tens of ms RTT.
    static LinkProfile lte() {
        return LinkProfile{milliseconds(35), milliseconds(15), 8.5e6, 0.0};
    }
};

/// Per-endpoint traffic counters.
struct TrafficStats {
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t messages_sent = 0;
    std::uint64_t messages_received = 0;
    std::uint64_t messages_dropped = 0;
};

class Network {
public:
    /// Per-message framing overhead added to the byte meters and
    /// serialization time (Ethernet + IP + TCP headers).
    static constexpr std::size_t kFrameOverhead = 66;

    explicit Network(sim::Simulation& sim);

    /// Registers an endpoint. The pointer must outlive the network.
    void attach(EndpointId id, Endpoint* endpoint);

    /// Profile applied to links without a specific override.
    void set_default_profile(const LinkProfile& profile) { default_profile_ = profile; }

    /// Overrides the directed link from -> to.
    void set_profile(EndpointId from, EndpointId to, const LinkProfile& profile);

    /// Sends a message; it is metered, serialized on the sender's NIC,
    /// delayed, possibly dropped, and finally delivered.
    void send(EndpointId from, EndpointId to, Bytes message);

    /// Cuts / restores the directed pair (both calls are directional; cut
    /// both directions for a full partition).
    void set_blocked(EndpointId from, EndpointId to, bool blocked);

    /// Marks an endpoint as powered down (crashed node): messages already
    /// in flight and new arrivals are dropped at the receiver NIC and
    /// counted in the receiver's `messages_dropped`, instead of being
    /// silently delivered into a dead process.
    void set_endpoint_down(EndpointId id, bool down);
    bool endpoint_down(EndpointId id) const { return down_.contains(id); }

    const TrafficStats& stats(EndpointId id);

    /// Sum of payload+framing bytes sent by all endpoints.
    std::uint64_t total_bytes_sent() const noexcept { return total_bytes_sent_; }

    /// Egress utilization of an endpoint over (since, now] against the
    /// given capacity, in [0, 1].
    double egress_utilization(EndpointId id, TimePoint since, std::uint64_t bytes_at_since,
                              double bandwidth_bps);

private:
    const LinkProfile& profile_for(EndpointId from, EndpointId to) const;

    sim::Simulation& sim_;
    Rng rng_;
    LinkProfile default_profile_{};
    std::unordered_map<EndpointId, Endpoint*> endpoints_;
    std::map<std::pair<EndpointId, EndpointId>, LinkProfile> overrides_;
    std::unordered_map<EndpointId, TimePoint> egress_free_;
    std::unordered_map<EndpointId, TrafficStats> stats_;
    std::set<std::pair<EndpointId, EndpointId>> blocked_;
    std::set<EndpointId> down_;
    std::uint64_t total_bytes_sent_ = 0;
};

}  // namespace zc::net
