#include "net/network.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/log.hpp"

namespace zc::net {

Network::Network(sim::Simulation& sim) : sim_(sim), rng_(sim.rng().fork("network")) {}

void Network::attach(EndpointId id, Endpoint* endpoint) {
    if (endpoint == nullptr) throw std::invalid_argument("null endpoint");
    endpoints_[id] = endpoint;
}

void Network::set_profile(EndpointId from, EndpointId to, const LinkProfile& profile) {
    overrides_[{from, to}] = profile;
}

const LinkProfile& Network::profile_for(EndpointId from, EndpointId to) const {
    const auto it = overrides_.find({from, to});
    return it != overrides_.end() ? it->second : default_profile_;
}

void Network::send(EndpointId from, EndpointId to, Bytes message) {
    const LinkProfile& profile = profile_for(from, to);
    const std::size_t wire_bytes = message.size() + kFrameOverhead;

    TrafficStats& sender = stats_[from];
    sender.bytes_sent += wire_bytes;
    sender.messages_sent += 1;
    total_bytes_sent_ += wire_bytes;

    if (blocked_.contains({from, to})) {
        sender.messages_dropped += 1;
        return;
    }
    if (profile.loss > 0.0 && rng_.chance(profile.loss)) {
        sender.messages_dropped += 1;
        return;
    }

    // Serialize on the sender's NIC: transmission begins when the NIC is
    // free, takes size/bandwidth, then propagates.
    const Duration tx{static_cast<std::int64_t>(static_cast<double>(wire_bytes) * 8.0 /
                                                profile.bandwidth_bps * 1e9)};
    TimePoint& nic_free = egress_free_.try_emplace(from, TimePoint{0}).first->second;
    const TimePoint tx_start = std::max(sim_.now(), nic_free);
    const TimePoint tx_done = tx_start + tx;
    nic_free = tx_done;

    Duration extra{0};
    if (profile.jitter > Duration::zero()) {
        extra = Duration{static_cast<std::int64_t>(
            rng_.next_below(static_cast<std::uint64_t>(profile.jitter.count()) + 1))};
    }
    const TimePoint arrival = tx_done + profile.latency + extra;

    sim_.schedule_at(arrival, [this, from, to, msg = std::move(message), wire_bytes]() mutable {
        const auto it = endpoints_.find(to);
        if (it == endpoints_.end()) {
            ZC_DEBUG("net", "message to unknown endpoint {} dropped", to);
            return;
        }
        TrafficStats& receiver = stats_[to];
        if (down_.contains(to)) {
            receiver.messages_dropped += 1;
            return;
        }
        receiver.bytes_received += wire_bytes;
        receiver.messages_received += 1;
        it->second->deliver(from, std::move(msg));
    });
}

void Network::set_endpoint_down(EndpointId id, bool down) {
    if (down) {
        down_.insert(id);
    } else {
        down_.erase(id);
    }
}

void Network::set_blocked(EndpointId from, EndpointId to, bool blocked) {
    if (blocked) {
        blocked_.insert({from, to});
    } else {
        blocked_.erase({from, to});
    }
}

const TrafficStats& Network::stats(EndpointId id) { return stats_[id]; }

double Network::egress_utilization(EndpointId id, TimePoint since, std::uint64_t bytes_at_since,
                                   double bandwidth_bps) {
    const Duration elapsed = sim_.now() - since;
    if (elapsed <= Duration::zero()) return 0.0;
    const std::uint64_t sent = stats_[id].bytes_sent - bytes_at_since;
    const double bits = static_cast<double>(sent) * 8.0;
    return bits / (bandwidth_bps * to_seconds(elapsed));
}

}  // namespace zc::net
