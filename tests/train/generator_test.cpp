#include <gtest/gtest.h>

#include "train/generator.hpp"

namespace zc::train {
namespace {

GeneratorConfig small_config() {
    GeneratorConfig c;
    c.payload_size = 256;
    c.station_dwell = seconds(10);
    c.interstation_m = 2000.0;
    return c;
}

TEST(SignalGenerator, ProducesDecodablePayloadOfRequestedSize) {
    SignalGenerator gen(small_config(), Rng(1));
    const Bytes payload = gen.payload_for_cycle(0, TimePoint{0});
    EXPECT_NEAR(static_cast<double>(payload.size()), 256.0, 8.0);
    const auto content = codec::try_decode<TelegramContent>(payload);
    ASSERT_TRUE(content.has_value());
    EXPECT_EQ(content->cycle, 0u);
    EXPECT_EQ(content->signals.size(), 9u);
}

TEST(SignalGenerator, CycleAndTimestampAdvance) {
    SignalGenerator gen(small_config(), Rng(2));
    const Bytes p0 = gen.payload_for_cycle(0, milliseconds(0));
    const Bytes p1 = gen.payload_for_cycle(1, milliseconds(64));
    const auto c0 = codec::try_decode<TelegramContent>(p0);
    const auto c1 = codec::try_decode<TelegramContent>(p1);
    EXPECT_EQ(c0->cycle, 0u);
    EXPECT_EQ(c1->cycle, 1u);
    EXPECT_LT(c0->timestamp_ns, c1->timestamp_ns);
}

TEST(SignalGenerator, TrainEventuallyMoves) {
    SignalGenerator gen(small_config(), Rng(3));
    TimePoint t{0};
    for (int i = 0; i < 1000; ++i) {
        gen.payload_for_cycle(static_cast<std::uint64_t>(i), t);
        t += milliseconds(64);
    }
    EXPECT_GT(gen.speed_kmh(), 0.0);
}

TEST(SignalGenerator, SpeedStaysWithinLimits) {
    GeneratorConfig cfg = small_config();
    cfg.max_speed_kmh = 120.0;
    SignalGenerator gen(cfg, Rng(4));
    TimePoint t{0};
    for (int i = 0; i < 20000; ++i) {
        gen.payload_for_cycle(static_cast<std::uint64_t>(i), t);
        t += milliseconds(64);
        EXPECT_GE(gen.speed_kmh(), 0.0);
        EXPECT_LE(gen.speed_kmh(), 120.0 + 1e-9);
    }
}

TEST(SignalGenerator, OdometerMonotonic) {
    SignalGenerator gen(small_config(), Rng(5));
    TimePoint t{0};
    std::int64_t last_odo = -1;
    for (int i = 0; i < 5000; ++i) {
        gen.payload_for_cycle(static_cast<std::uint64_t>(i), t);
        t += milliseconds(64);
        const auto& content = gen.last_content();
        for (const Signal& s : content.signals) {
            if (s.kind == SignalKind::kOdometer) {
                EXPECT_GE(s.value, last_odo);
                last_odo = s.value;
            }
        }
    }
    EXPECT_GT(last_odo, 0);
}

TEST(SignalGenerator, DoorsOnlyOpenWhenStopped) {
    SignalGenerator gen(small_config(), Rng(6));
    TimePoint t{0};
    for (int i = 0; i < 20000; ++i) {
        gen.payload_for_cycle(static_cast<std::uint64_t>(i), t);
        t += milliseconds(64);
        std::int64_t doors = 0, speed = 0;
        for (const Signal& s : gen.last_content().signals) {
            if (s.kind == SignalKind::kDoorState) doors = s.value;
            if (s.kind == SignalKind::kSpeed) speed = s.value;
        }
        if (doors != 0) {
            EXPECT_EQ(speed, 0) << "doors open while moving at cycle " << i;
        }
    }
}

TEST(SignalGenerator, DeterministicForSameSeed) {
    SignalGenerator a(small_config(), Rng(7));
    SignalGenerator b(small_config(), Rng(7));
    TimePoint t{0};
    for (int i = 0; i < 200; ++i) {
        EXPECT_EQ(a.payload_for_cycle(static_cast<std::uint64_t>(i), t),
                  b.payload_for_cycle(static_cast<std::uint64_t>(i), t));
        t += milliseconds(64);
    }
}

TEST(SignalGenerator, UnpaddedWhenTargetSmall) {
    GeneratorConfig cfg = small_config();
    cfg.payload_size = 0;
    SignalGenerator gen(cfg, Rng(8));
    const Bytes payload = gen.payload_for_cycle(0, TimePoint{0});
    const auto content = codec::try_decode<TelegramContent>(payload);
    ASSERT_TRUE(content.has_value());
    EXPECT_TRUE(content->opaque.empty());
}

}  // namespace
}  // namespace zc::train
