#include <gtest/gtest.h>

#include "train/generator.hpp"
#include "train/jru_parser.hpp"

namespace zc::train {
namespace {

TelegramContent make_telegram(std::uint64_t cycle, std::int64_t speed, std::int64_t doors) {
    TelegramContent t;
    t.cycle = cycle;
    t.timestamp_ns = static_cast<std::int64_t>(cycle) * 64'000'000;
    t.signals = {
        Signal{SignalKind::kSpeed, speed},
        Signal{SignalKind::kDoorState, doors},
        Signal{SignalKind::kEmergencyBrake, 0},
    };
    t.opaque = to_bytes("enc");
    return t;
}

TEST(JruParser, ParseRejectsGarbage) {
    EXPECT_FALSE(JruParser::parse(to_bytes("\xff\x01garbage")).has_value());
}

TEST(JruParser, ParseRoundTripsGeneratorOutput) {
    GeneratorConfig cfg;
    cfg.payload_size = 512;
    SignalGenerator gen(cfg, Rng(1));
    const Bytes raw = gen.payload_for_cycle(3, milliseconds(192));
    const auto parsed = JruParser::parse(raw);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->cycle, 3u);
    EXPECT_EQ(parsed->signals.size(), 9u);
}

TEST(JruParser, FirstTelegramLogsAllSignals) {
    JruParser parser;
    const LogRecord rec = parser.filter(make_telegram(0, 1000, 0));
    EXPECT_EQ(rec.signals.size(), 3u);
    EXPECT_EQ(rec.opaque, to_bytes("enc"));
}

TEST(JruParser, UnchangedSpeedFilteredOut) {
    JruParser parser;
    parser.filter(make_telegram(0, 1000, 0));
    const LogRecord rec = parser.filter(make_telegram(1, 1000, 0));
    for (const Signal& s : rec.signals) EXPECT_NE(s.kind, SignalKind::kSpeed);
}

TEST(JruParser, SmallSpeedChangeFilteredLargeKept) {
    JruParser parser;  // default threshold: 100 centi-km/h
    parser.filter(make_telegram(0, 1000, 0));

    const LogRecord small = parser.filter(make_telegram(1, 1050, 0));
    bool has_speed = false;
    for (const Signal& s : small.signals) has_speed |= (s.kind == SignalKind::kSpeed);
    EXPECT_FALSE(has_speed);

    // The threshold compares against the last *logged* value (1000), so a
    // slow drift is captured once it accumulates to the threshold.
    const LogRecord large = parser.filter(make_telegram(2, 1099, 0));
    has_speed = false;
    for (const Signal& s : large.signals) has_speed |= (s.kind == SignalKind::kSpeed);
    EXPECT_FALSE(has_speed);  // 99 < 100: still filtered

    const LogRecord drifted = parser.filter(make_telegram(3, 1101, 0));
    has_speed = false;
    for (const Signal& s : drifted.signals) has_speed |= (s.kind == SignalKind::kSpeed);
    EXPECT_TRUE(has_speed);  // accumulated drift of 101 crossed the threshold
}

TEST(JruParser, SlowDriftEventuallyLogged) {
    // Regression: with per-telegram comparison a gradual acceleration
    // (sub-threshold per cycle) was never logged at all.
    JruParser parser;
    parser.filter(make_telegram(0, 0, 0));
    int speed_logs = 0;
    std::int64_t speed = 0;
    for (std::uint64_t c = 1; c <= 100; ++c) {
        speed += 16;  // 0.16 km/h per cycle, like 0.7 m/s^2 at 64 ms
        const LogRecord rec = parser.filter(make_telegram(c, speed, 0));
        for (const Signal& s : rec.signals) speed_logs += (s.kind == SignalKind::kSpeed);
    }
    // 1600 centi-km/h of accumulated change at a 100-threshold: ~16 logs.
    EXPECT_GE(speed_logs, 14);
    EXPECT_LE(speed_logs, 17);
}

TEST(JruParser, DiscreteChangeAlwaysLogged) {
    JruParser parser;
    parser.filter(make_telegram(0, 1000, 0));
    const LogRecord rec = parser.filter(make_telegram(1, 1000, 1));  // doors opened
    ASSERT_EQ(rec.signals.size(), 1u);
    EXPECT_EQ(rec.signals[0].kind, SignalKind::kDoorState);
    EXPECT_EQ(rec.signals[0].value, 1);
}

TEST(JruParser, RecordAlwaysCarriesCycleTimestampOpaque) {
    JruParser parser;
    parser.filter(make_telegram(0, 1000, 0));
    const LogRecord rec = parser.filter(make_telegram(1, 1000, 0));
    EXPECT_EQ(rec.cycle, 1u);
    EXPECT_GT(rec.timestamp_ns, 0);
    EXPECT_EQ(rec.opaque, to_bytes("enc"));
}

TEST(JruParser, IdenticalHistoryYieldsIdenticalRecords) {
    JruParser p1, p2;
    for (std::uint64_t c = 0; c < 50; ++c) {
        const TelegramContent t = make_telegram(c, static_cast<std::int64_t>(1000 + c * 37), 0);
        const LogRecord r1 = p1.filter(t);
        const LogRecord r2 = p2.filter(t);
        EXPECT_EQ(codec::encode_to_bytes(r1), codec::encode_to_bytes(r2));
    }
}

TEST(JruParser, MissedCycleYieldsSupersetRecord) {
    JruParser full, gappy;
    const auto t0 = make_telegram(0, 1000, 0);
    const auto t1 = make_telegram(1, 1200, 0);
    const auto t2 = make_telegram(2, 1250, 0);

    full.filter(t0);
    full.filter(t1);
    const LogRecord full_rec = full.filter(t2);  // speed delta 50: filtered

    gappy.filter(t0);  // missed t1
    const LogRecord gappy_rec = gappy.filter(t2);  // delta vs t0 = 250: logged

    bool full_has_speed = false, gappy_has_speed = false;
    for (const Signal& s : full_rec.signals) full_has_speed |= (s.kind == SignalKind::kSpeed);
    for (const Signal& s : gappy_rec.signals) gappy_has_speed |= (s.kind == SignalKind::kSpeed);
    EXPECT_FALSE(full_has_speed);
    EXPECT_TRUE(gappy_has_speed);
}

TEST(JruParser, ProcessComposesParseAndFilter) {
    JruParser parser;
    const Bytes raw = codec::encode_to_bytes(make_telegram(5, 900, 0));
    const auto rec = parser.process(raw);
    ASSERT_TRUE(rec.has_value());
    EXPECT_EQ(rec->cycle, 5u);
    EXPECT_FALSE(parser.process(to_bytes("junk")).has_value());
}

TEST(JruParser, LogRecordRoundTrip) {
    JruParser parser;
    const LogRecord rec = parser.filter(make_telegram(9, 1234, 1));
    const Bytes enc = codec::encode_to_bytes(rec);
    const LogRecord back = codec::decode_from_bytes<LogRecord>(enc);
    EXPECT_EQ(back, rec);
}

}  // namespace
}  // namespace zc::train
