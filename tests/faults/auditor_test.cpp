// Unit tests of the safety auditor against hand-built ground truth:
// forks, broken links, bad origin signatures, lost inputs, and export
// proof-coverage checks.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "faults/auditor.hpp"

namespace zc::faults {
namespace {

struct NullTransport final : zugchain::LayerTransport {
    void broadcast(const pbft::Request&) override {}
    void forward(NodeId, const pbft::Request&) override {}
};

struct NullSink final : zugchain::LogSink {
    void log(const pbft::Request&, NodeId, SeqNo) override {}
};

struct AuditorFixture : ::testing::Test {
    AuditorFixture() : sim(3) {
        Rng keyrng(7);
        for (std::uint32_t i = 0; i < 4; ++i) {
            keys.push_back(provider.generate(keyrng));
            directory.register_key(i, keys.back().pub);
        }
        verifier_ctx = std::make_unique<crypto::CryptoContext>(provider, directory, keys[0],
                                                               costs, meter);
        auditor.configure(1, 10, [this](std::uint32_t signer, BytesView msg,
                                        const crypto::Signature& sig) {
            return verifier_ctx->verify(signer, msg, sig);
        });
    }

    /// Appends one block whose single request is validly signed by its
    /// origin (or garbage-signed with valid_sig = false).
    void append_block(chain::BlockStore& store, const std::string& text, NodeId origin,
                      bool valid_sig = true) {
        const Height h = store.head_height() + 1;
        pbft::Request probe;
        probe.payload = to_bytes(text);
        probe.origin = origin;
        probe.origin_seq = h;
        chain::LoggedRequest lr;
        lr.payload = probe.payload;
        lr.origin = origin;
        lr.seq = h * 10;
        lr.origin_seq = h;
        if (valid_sig) {
            crypto::WorkMeter m;
            crypto::CryptoContext ctx(provider, directory, keys[origin], costs, m);
            lr.sig = ctx.sign(probe.signing_bytes());
        }
        std::vector<chain::LoggedRequest> reqs{lr};
        store.append(chain::Block::build(h, store.head_hash(), static_cast<std::int64_t>(h),
                                         std::move(reqs)));
    }

    pbft::CheckpointProof proof_for(const chain::BlockStore& store, Height height,
                                    std::uint32_t distinct_signers = 3) {
        pbft::CheckpointProof p;
        p.seq = height * 10;
        p.state = store.header(height)->hash();
        for (std::uint32_t i = 0; i < 3; ++i) {
            const NodeId signer = i < distinct_signers ? i : 0;
            pbft::Checkpoint c;
            c.seq = p.seq;
            c.state = p.state;
            c.replica = signer;
            crypto::WorkMeter m;
            crypto::CryptoContext ctx(provider, directory, keys[signer], costs, m);
            c.sig = ctx.sign(c.signing_bytes());
            p.messages.push_back(c);
        }
        return p;
    }

    static ReplicaView view_of(NodeId id, const chain::BlockStore& store,
                               const zugchain::CommunicationLayer* layer = nullptr) {
        ReplicaView v;
        v.id = id;
        v.store = &store;
        v.layer = layer;
        return v;
    }

    sim::Simulation sim;
    crypto::FastProvider provider;
    crypto::KeyDirectory directory;
    std::vector<crypto::KeyPair> keys;
    metrics::CostModel costs;
    crypto::WorkMeter meter;
    std::unique_ptr<crypto::CryptoContext> verifier_ctx;
    SafetyAuditor auditor;
};

TEST_F(AuditorFixture, CleanOnAgreeingReplicas) {
    chain::BlockStore a, b;
    for (int i = 0; i < 3; ++i) {
        append_block(a, "blk" + std::to_string(i), 1);
        append_block(b, "blk" + std::to_string(i), 1);
    }
    auditor.audit({view_of(0, a), view_of(1, b)}, {});
    EXPECT_TRUE(auditor.report().clean());
    EXPECT_EQ(auditor.report().audits, 1u);
    EXPECT_GT(auditor.report().checks, 0u);
}

TEST_F(AuditorFixture, ForkDetectedAndDeduplicated) {
    chain::BlockStore a, b;
    append_block(a, "same", 1);
    append_block(b, "same", 1);
    append_block(a, "ours", 1);
    append_block(b, "theirs", 1);
    auditor.audit({view_of(0, a), view_of(1, b)}, {});
    auditor.audit({view_of(0, a), view_of(1, b)}, {});  // re-audit: no duplicate entry
    ASSERT_EQ(auditor.report().violations.size(), 1u);
    EXPECT_EQ(auditor.report().violations[0].kind, ViolationKind::kChainFork);
    EXPECT_EQ(auditor.report().violations[0].height, 2u);
}

TEST_F(AuditorFixture, CompromisedReplicaExemptFromChecks) {
    chain::BlockStore a, b;
    append_block(a, "same", 1);
    append_block(b, "different", 1);
    auditor.set_compromised(1);
    EXPECT_TRUE(auditor.is_compromised(1));
    ReplicaView bad = view_of(1, b);
    bad.compromised = true;
    auditor.audit({view_of(0, a), bad}, {});
    EXPECT_TRUE(auditor.report().clean());
}

TEST_F(AuditorFixture, BadOriginSignatureFlagged) {
    chain::BlockStore a;
    append_block(a, "good", 1);
    append_block(a, "bad", 2, /*valid_sig=*/false);
    auditor.audit({view_of(0, a)}, {});
    ASSERT_EQ(auditor.report().violations.size(), 1u);
    EXPECT_EQ(auditor.report().violations[0].kind, ViolationKind::kBadOriginSignature);
    EXPECT_EQ(auditor.report().violations[0].height, 2u);
}

TEST_F(AuditorFixture, LostInputFlaggedAndCrashForgives) {
    zugchain::LayerConfig lcfg;
    NullTransport transport;
    NullSink sink;
    zugchain::CommunicationLayer layer(lcfg, sim, *verifier_ctx, transport, sink);

    chain::BlockStore a;
    append_block(a, "logged-one", 1);
    const Bytes lost = to_bytes("never-logged");
    auditor.note_received(0, crypto::sha256(lost));

    auditor.audit({view_of(0, a, &layer)}, {});
    ASSERT_EQ(auditor.report().violations.size(), 1u);
    EXPECT_EQ(auditor.report().violations[0].kind, ViolationKind::kLostInput);

    // After a crash the volatile inputs are legitimately lost: the same
    // digest must not re-fire on a fresh auditor.
    SafetyAuditor second;
    second.configure(1, 10, [this](std::uint32_t signer, BytesView msg,
                                   const crypto::Signature& sig) {
        return verifier_ctx->verify(signer, msg, sig);
    });
    second.note_received(0, crypto::sha256(lost));
    second.note_crashed(0);
    second.audit({view_of(0, a, &layer)}, {});
    EXPECT_TRUE(second.report().clean());
}

TEST_F(AuditorFixture, LoggedInputIsNotLost) {
    zugchain::LayerConfig lcfg;
    NullTransport transport;
    NullSink sink;
    zugchain::CommunicationLayer layer(lcfg, sim, *verifier_ctx, transport, sink);

    chain::BlockStore a;
    append_block(a, "payload", 1);
    const crypto::Digest d = crypto::sha256(to_bytes("payload"));
    auditor.note_received(0, d);
    auditor.note_logged(0, d);
    auditor.audit({view_of(0, a, &layer)}, {});
    EXPECT_TRUE(auditor.report().clean());
}

TEST_F(AuditorFixture, DcBeyondProofCoverageFlagged) {
    chain::BlockStore replica, dc;
    for (int i = 0; i < 5; ++i) {
        append_block(replica, "blk" + std::to_string(i), 1);
        append_block(dc, "blk" + std::to_string(i), 1);
    }
    const pbft::CheckpointProof proof = proof_for(replica, 3);  // covers height 3 only
    DataCenterView v;
    v.id = 0;
    v.store = &dc;
    v.proof = &proof;
    auditor.audit({view_of(0, replica)}, {v});
    ASSERT_FALSE(auditor.report().clean());
    EXPECT_EQ(auditor.report().violations[0].kind, ViolationKind::kExportedBeyondProof);
    EXPECT_EQ(auditor.report().violations[0].where, 100u);
}

TEST_F(AuditorFixture, DcUnderQuorumProofFlagged) {
    chain::BlockStore replica, dc;
    for (int i = 0; i < 3; ++i) {
        append_block(replica, "blk" + std::to_string(i), 1);
        append_block(dc, "blk" + std::to_string(i), 1);
    }
    // 2f+1 checkpoint copies but a single distinct signer.
    const pbft::CheckpointProof proof = proof_for(replica, 3, /*distinct_signers=*/1);
    DataCenterView v;
    v.id = 0;
    v.store = &dc;
    v.proof = &proof;
    auditor.audit({view_of(0, replica)}, {v});
    ASSERT_FALSE(auditor.report().clean());
    EXPECT_EQ(auditor.report().violations[0].kind, ViolationKind::kExportProofInvalid);
}

TEST_F(AuditorFixture, DcDivergingFromReplicasFlagged) {
    chain::BlockStore replica, dc;
    for (int i = 0; i < 3; ++i) append_block(replica, "blk" + std::to_string(i), 1);
    for (int i = 0; i < 3; ++i) append_block(dc, "forged" + std::to_string(i), 1);
    const pbft::CheckpointProof proof = proof_for(dc, 3);  // proof matches the DC's own chain
    DataCenterView v;
    v.id = 0;
    v.store = &dc;
    v.proof = &proof;
    auditor.audit({view_of(0, replica)}, {v});
    ASSERT_FALSE(auditor.report().clean());
    bool mismatch_found = false;
    for (const Violation& viol : auditor.report().violations) {
        mismatch_found |= viol.kind == ViolationKind::kExportMismatch;
    }
    EXPECT_TRUE(mismatch_found);
}

TEST_F(AuditorFixture, ReportJsonIsDeterministic) {
    chain::BlockStore a, b;
    append_block(a, "x", 1);
    append_block(b, "y", 1);
    auditor.audit({view_of(0, a), view_of(1, b)}, {});
    const std::string j1 = auditor.report().json();
    const std::string j2 = auditor.report().json();
    EXPECT_EQ(j1, j2);
    EXPECT_NE(j1.find("\"violations\":["), std::string::npos);
    EXPECT_NE(j1.find("chain_fork"), std::string::npos);
}

}  // namespace
}  // namespace zc::faults
