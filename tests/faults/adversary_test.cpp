// Unit tests of the adversary mutation pipeline: profile lookup, forged
// ranges, equivocation consistency, tampering, replay, delayed-send
// cancellation and determinism.
#include <gtest/gtest.h>

#include "chain/block_store.hpp"
#include "crypto/sha256.hpp"
#include "faults/adversary.hpp"
#include "faults/profiles.hpp"
#include "pbft/messages.hpp"

namespace zc::faults {
namespace {

struct AdvFixture : ::testing::Test {
    AdvFixture() : sim(11) {
        Rng keyrng(5);
        for (std::uint32_t i = 0; i < 4; ++i) {
            keys.push_back(provider.generate(keyrng));
            directory.register_key(i, keys.back().pub);
        }
        crypto = std::make_unique<crypto::CryptoContext>(provider, directory, keys[0], costs,
                                                         meter);
    }

    std::unique_ptr<Adversary> make(const AdversaryConfig& cfg, NodeId id = 0) {
        auto adv = std::make_unique<Adversary>(cfg, id, 4, sim, *crypto);
        adv->set_pbft_emit([this](NodeId to, const pbft::Message& m) {
            emitted.emplace_back(to, m);
        });
        return adv;
    }

    pbft::PrePrepare make_preprepare(View view, SeqNo seq) {
        pbft::PrePrepare pp;
        pp.view = view;
        pp.seq = seq;
        pp.primary = 0;
        pbft::Request r;
        r.payload = to_bytes("telegram");
        r.origin = 2;
        r.origin_seq = seq;
        crypto::WorkMeter m;
        crypto::CryptoContext origin_ctx(provider, directory, keys[2], costs, m);
        r.sig = origin_ctx.sign(r.signing_bytes());
        pp.requests = {r};
        pp.req_digest = pbft::PrePrepare::batch_digest(pp.requests);
        pp.sig = crypto->sign(pp.signing_bytes());
        return pp;
    }

    pbft::Checkpoint make_checkpoint(SeqNo seq) {
        pbft::Checkpoint c;
        c.seq = seq;
        c.state = crypto::sha256(to_bytes("state" + std::to_string(seq)));
        c.replica = 0;
        c.sig = crypto->sign(c.signing_bytes());
        return c;
    }

    sim::Simulation sim;
    crypto::FastProvider provider;
    crypto::KeyDirectory directory;
    std::vector<crypto::KeyPair> keys;
    metrics::CostModel costs;
    crypto::WorkMeter meter;
    std::unique_ptr<crypto::CryptoContext> crypto;
    std::vector<std::pair<NodeId, pbft::Message>> emitted;
};

TEST(AdversaryProfiles, AllNamesResolveAndAreActive) {
    const auto names = profile_names();
    EXPECT_GE(names.size(), 10u);
    for (const std::string& name : names) {
        const auto cfg = profile_config(name);
        ASSERT_TRUE(cfg.has_value()) << name;
        EXPECT_TRUE(cfg->any()) << name << " profile sets no knobs";
    }
    EXPECT_FALSE(profile_config("no-such-profile").has_value());
    EXPECT_FALSE(AdversaryConfig{}.any());
}

TEST_F(AdvFixture, ForgedRangeIsHashLinkedAndPayloadValid) {
    AdversaryConfig cfg;
    cfg.poison_state_transfer = true;
    auto adv = make(cfg);

    const crypto::Digest parent = crypto::sha256(to_bytes("parent"));
    const auto blocks = adv->forged_range(parent, 3, 7);
    ASSERT_EQ(blocks.size(), 5u);
    crypto::Digest prev = parent;
    Height h = 3;
    for (const chain::Block& b : blocks) {
        EXPECT_EQ(b.header.height, h);
        EXPECT_EQ(b.header.parent_hash, prev);
        EXPECT_TRUE(b.payload_valid());
        prev = b.hash();
        h += 1;
    }
    EXPECT_EQ(adv->stats().forged_blocks, 5u);
}

TEST_F(AdvFixture, EquivocationTargetsVictimConsistently) {
    AdversaryConfig cfg;
    cfg.equivocate_rate = 1.0;
    auto adv = make(cfg, /*id=*/0);  // victim = node 1

    const pbft::PrePrepare pp = make_preprepare(0, 1);
    adv->pbft_send(1, pbft::Message{pp});
    adv->pbft_send(2, pbft::Message{pp});
    adv->pbft_send(1, pbft::Message{pp});  // resend of the same slot
    ASSERT_EQ(emitted.size(), 3u);

    const auto& forged1 = std::get<pbft::PrePrepare>(emitted[0].second);
    const auto& honest = std::get<pbft::PrePrepare>(emitted[1].second);
    const auto& forged2 = std::get<pbft::PrePrepare>(emitted[2].second);

    EXPECT_NE(forged1.req_digest, pp.req_digest);       // victim sees a fork
    EXPECT_EQ(honest.req_digest, pp.req_digest);        // everyone else: original
    EXPECT_EQ(forged1.req_digest, forged2.req_digest);  // resends stay consistent

    // The forged variant is internally valid: outer and inner signatures
    // verify, and the digest matches its own batch.
    EXPECT_EQ(forged1.req_digest, pbft::PrePrepare::batch_digest(forged1.requests));
    EXPECT_TRUE(crypto->verify(0, forged1.signing_bytes(), forged1.sig));
    ASSERT_EQ(forged1.requests.size(), 1u);
    const Bytes inner = forged1.requests[0].signing_bytes();
    EXPECT_TRUE(crypto->verify(forged1.requests[0].origin, inner, forged1.requests[0].sig));
    EXPECT_EQ(adv->stats().equivocations, 1u);
}

TEST_F(AdvFixture, BackupEquivocatorSplitsPrepareVotes) {
    AdversaryConfig cfg;
    cfg.equivocate_rate = 1.0;
    auto adv = make(cfg, /*id=*/0);  // victim = node 1

    pbft::Prepare p;
    p.view = 0;
    p.seq = 1;
    p.req_digest = crypto::sha256(to_bytes("batch"));
    p.replica = 0;
    p.sig = crypto->sign(p.signing_bytes());
    adv->pbft_send(1, pbft::Message{p});
    adv->pbft_send(2, pbft::Message{p});
    ASSERT_EQ(emitted.size(), 2u);

    const auto& split = std::get<pbft::Prepare>(emitted[0].second);
    const auto& honest = std::get<pbft::Prepare>(emitted[1].second);
    EXPECT_NE(split.req_digest, p.req_digest);  // the victim's copy diverges
    EXPECT_EQ(honest.req_digest, p.req_digest);
    EXPECT_TRUE(crypto->verify(0, split.signing_bytes(), split.sig));  // re-signed
    EXPECT_EQ(adv->stats().equivocations, 1u);
}

TEST_F(AdvFixture, DigestFlipKeepsSignatureValid) {
    AdversaryConfig cfg;
    cfg.digest_flip_rate = 1.0;
    auto adv = make(cfg);

    adv->pbft_send(1, pbft::Message{make_preprepare(0, 1)});
    ASSERT_EQ(emitted.size(), 1u);
    const auto& pp = std::get<pbft::PrePrepare>(emitted[0].second);
    EXPECT_NE(pp.req_digest, pbft::PrePrepare::batch_digest(pp.requests));
    EXPECT_TRUE(crypto->verify(0, pp.signing_bytes(), pp.sig));
    EXPECT_EQ(adv->stats().digests_flipped, 1u);
}

TEST_F(AdvFixture, SigStripZeroesSignature) {
    AdversaryConfig cfg;
    cfg.sig_strip_rate = 1.0;
    auto adv = make(cfg);

    adv->pbft_send(1, pbft::Message{make_preprepare(0, 1)});
    ASSERT_EQ(emitted.size(), 1u);
    const auto& pp = std::get<pbft::PrePrepare>(emitted[0].second);
    EXPECT_EQ(pp.sig, crypto::Signature{});
    EXPECT_EQ(adv->stats().sigs_stripped, 1u);
}

TEST_F(AdvFixture, LyingViewChangeHidesPreparedAndStableProof) {
    AdversaryConfig cfg;
    cfg.lie_view_change = true;
    auto adv = make(cfg);

    pbft::ViewChange vc;
    vc.new_view = 1;
    vc.replica = 0;
    vc.last_stable = 10;
    pbft::CheckpointProof proof;
    proof.seq = 10;
    vc.stable_proof = proof;
    vc.prepared.push_back(pbft::PreparedProof{make_preprepare(0, 11), {}});
    vc.sig = crypto->sign(vc.signing_bytes());

    adv->pbft_send(1, pbft::Message{vc});
    ASSERT_EQ(emitted.size(), 1u);
    const auto& lied = std::get<pbft::ViewChange>(emitted[0].second);
    EXPECT_TRUE(lied.prepared.empty());
    EXPECT_EQ(lied.last_stable, 0u);
    EXPECT_FALSE(lied.stable_proof.has_value());
    EXPECT_TRUE(crypto->verify(0, lied.signing_bytes(), lied.sig));
    EXPECT_EQ(adv->stats().lied_view_changes, 1u);
}

TEST_F(AdvFixture, StaleCheckpointReAnnouncesOldest) {
    AdversaryConfig cfg;
    cfg.stale_checkpoint = true;
    auto adv = make(cfg);

    adv->pbft_send(1, pbft::Message{make_checkpoint(10)});
    adv->pbft_send(1, pbft::Message{make_checkpoint(20)});
    ASSERT_EQ(emitted.size(), 2u);
    EXPECT_EQ(std::get<pbft::Checkpoint>(emitted[0].second).seq, 10u);
    EXPECT_EQ(std::get<pbft::Checkpoint>(emitted[1].second).seq, 10u);  // stale swap
    EXPECT_EQ(adv->stats().stale_checkpoints, 1u);
}

TEST_F(AdvFixture, ReplayEmitsMessageFromHistory) {
    AdversaryConfig cfg;
    cfg.replay_rate = 1.0;
    auto adv = make(cfg);

    adv->pbft_send(1, pbft::Message{make_checkpoint(10)});
    adv->pbft_send(1, pbft::Message{make_checkpoint(20)});
    // First send has no history; the second replays the first.
    EXPECT_EQ(emitted.size(), 3u);
    EXPECT_EQ(adv->stats().replays, 1u);
}

TEST_F(AdvFixture, DelayedSendsReEnterPipelineAndCancelOnCrash) {
    AdversaryConfig cfg;
    cfg.preprepare_delay = milliseconds(50);
    cfg.digest_flip_rate = 1.0;  // composes: the delayed copy is tampered too
    auto adv = make(cfg);

    adv->pbft_send(1, pbft::Message{make_preprepare(0, 1)});
    EXPECT_TRUE(emitted.empty());
    sim.run_until(milliseconds(60));
    ASSERT_EQ(emitted.size(), 1u);
    const auto& pp = std::get<pbft::PrePrepare>(emitted[0].second);
    EXPECT_NE(pp.req_digest, pbft::PrePrepare::batch_digest(pp.requests));
    EXPECT_EQ(adv->stats().preprepares_delayed, 1u);

    // A send whose timer is still pending dies with the node.
    adv->pbft_send(1, pbft::Message{make_preprepare(0, 2)});
    adv->cancel_pending();
    sim.run_until(milliseconds(200));
    EXPECT_EQ(emitted.size(), 1u);
}

TEST_F(AdvFixture, UnderQuorumProofCollapsesToOneSigner) {
    AdversaryConfig cfg;
    cfg.under_quorum_proofs = true;
    auto adv = make(cfg);

    exporter::ReadReply reply;
    reply.replica = 0;
    for (NodeId i = 0; i < 3; ++i) {
        pbft::Checkpoint c;
        c.seq = 10;
        c.replica = i;
        reply.proof.messages.push_back(c);
    }
    reply.proof.seq = 10;
    exporter::ExportMessage m{reply};
    ASSERT_TRUE(adv->mutate_export(m));
    const auto& out = std::get<exporter::ReadReply>(m);
    ASSERT_EQ(out.proof.messages.size(), 3u);  // right count...
    for (const auto& c : out.proof.messages) {
        EXPECT_EQ(c.replica, out.proof.messages.front().replica);  // ...one signer
    }
    EXPECT_EQ(adv->stats().under_quorum_proofs, 1u);
}

TEST_F(AdvFixture, ForgeExportBlocksReplacesRange) {
    AdversaryConfig cfg;
    cfg.forge_export_blocks = true;
    auto adv = make(cfg);

    exporter::BlockFetchReply reply;
    reply.replica = 0;
    chain::BlockStore real;
    for (Height h = 1; h <= 4; ++h) {
        std::vector<chain::LoggedRequest> reqs(1);
        reqs[0].payload = to_bytes("real" + std::to_string(h));
        real.append(chain::Block::build(h, real.head_hash(), static_cast<std::int64_t>(h),
                                        std::move(reqs)));
    }
    reply.blocks = real.range(2, 4);
    exporter::ExportMessage m{reply};
    ASSERT_TRUE(adv->mutate_export(m));
    const auto& out = std::get<exporter::BlockFetchReply>(m);
    ASSERT_EQ(out.blocks.size(), 3u);
    EXPECT_EQ(out.blocks.front().header.height, 2u);
    EXPECT_EQ(out.blocks.front().header.parent_hash, real.header(1)->hash());
    EXPECT_NE(out.blocks.back().hash(), real.header(4)->hash());  // forged content
    EXPECT_TRUE(out.blocks.front().payload_valid());
    EXPECT_EQ(adv->stats().forged_blocks, 3u);
}

TEST_F(AdvFixture, SameSeedSameDecisions) {
    AdversaryConfig cfg;
    cfg.digest_flip_rate = 0.5;
    cfg.replay_rate = 0.3;

    auto run = [&](std::vector<std::pair<NodeId, pbft::Message>>& sink) {
        sim::Simulation local(99);
        crypto::WorkMeter m;
        crypto::CryptoContext ctx(provider, directory, keys[0], costs, m);
        Adversary adv(cfg, 0, 4, local, ctx);
        adv.set_pbft_emit(
            [&sink](NodeId to, const pbft::Message& msg) { sink.emplace_back(to, msg); });
        for (SeqNo s = 1; s <= 20; ++s) adv.pbft_send(1 + s % 3, pbft::Message{make_preprepare(0, s)});
    };
    std::vector<std::pair<NodeId, pbft::Message>> a, b;
    run(a);
    run(b);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].first, b[i].first);
        EXPECT_EQ(pbft::encode_message(a[i].second), pbft::encode_message(b[i].second));
    }
}

TEST_F(AdvFixture, MuteSuppressesEverything) {
    AdversaryConfig cfg;
    cfg.mute = true;
    auto adv = make(cfg);
    adv->pbft_send(1, pbft::Message{make_preprepare(0, 1)});
    pbft::Request r;
    r.payload = to_bytes("x");
    EXPECT_FALSE(adv->mutate_layer(r));
    EXPECT_TRUE(emitted.empty());
    EXPECT_EQ(adv->stats().muted, 2u);
    EXPECT_GE(adv->stats().attempts(), 2u);
}

}  // namespace
}  // namespace zc::faults
