#include <gtest/gtest.h>

#include "zugchain/chain_app.hpp"

namespace zc::zugchain {
namespace {

struct ChainAppFixture : ::testing::Test {
    ChainAppFixture() {
        Rng keyrng(5);
        key = provider.generate(keyrng);
        directory.register_key(0, key.pub);
        crypto = std::make_unique<crypto::CryptoContext>(provider, directory, key, costs, meter);
        app = std::make_unique<ChainApp>(store, *crypto, 10);
    }

    pbft::Request request(std::uint64_t uniq, BytesView payload) {
        pbft::Request r;
        r.payload = Bytes(payload.begin(), payload.end());
        r.origin = 0;
        r.origin_seq = uniq;
        r.sig = crypto->sign(r.signing_bytes());
        return r;
    }

    crypto::FastProvider provider;
    crypto::KeyDirectory directory;
    crypto::KeyPair key;
    metrics::CostModel costs;
    crypto::WorkMeter meter;
    std::unique_ptr<crypto::CryptoContext> crypto;
    chain::BlockStore store;
    std::unique_ptr<ChainApp> app;
};

TEST_F(ChainAppFixture, BundlesLoggedRequestsIntoBlock) {
    for (SeqNo s = 1; s <= 10; ++s) {
        app->log(request(s, to_bytes("rec-" + std::to_string(s))), 2, s);
    }
    const crypto::Digest head = app->state_digest(10);
    EXPECT_EQ(head, store.head_hash());
    EXPECT_EQ(store.head_height(), 1u);

    const chain::Block* block = store.get(1);
    ASSERT_NE(block, nullptr);
    ASSERT_EQ(block->requests.size(), 10u);
    EXPECT_EQ(block->requests[0].origin, 2u);
    EXPECT_EQ(block->requests[0].seq, 1u);
    EXPECT_TRUE(block->payload_valid());
    EXPECT_EQ(app->pending_requests(), 0u);
}

TEST_F(ChainAppFixture, DeterministicAcrossReplicas) {
    crypto::WorkMeter meter2;
    crypto::CryptoContext crypto2(provider, directory, key, costs, meter2);
    chain::BlockStore store2;
    ChainApp app2(store2, crypto2, 10);

    for (SeqNo s = 1; s <= 10; ++s) {
        const pbft::Request r = request(s, to_bytes("rec-" + std::to_string(s)));
        app->log(r, r.origin, s);
        app2.log(r, r.origin, s);
    }
    EXPECT_EQ(app->state_digest(10), app2.state_digest(10));
}

TEST_F(ChainAppFixture, EmptyWindowStillProducesBlock) {
    // A checkpoint window of pure null requests (after a view change)
    // creates an empty block so the chain and checkpoints stay aligned.
    const crypto::Digest head = app->state_digest(10);
    EXPECT_EQ(store.head_height(), 1u);
    EXPECT_EQ(store.get(1)->requests.size(), 0u);
    EXPECT_EQ(head, store.head_hash());
}

TEST_F(ChainAppFixture, ConsecutiveBlocksChain) {
    for (SeqNo s = 1; s <= 10; ++s) app->log(request(s, to_bytes("a")), 0, s);
    app->state_digest(10);
    for (SeqNo s = 11; s <= 20; ++s) app->log(request(s, to_bytes("b")), 0, s);
    app->state_digest(20);
    EXPECT_EQ(store.head_height(), 2u);
    EXPECT_TRUE(store.validate(0, 2));
}

TEST_F(ChainAppFixture, ChargesCpuForBlockBuild) {
    for (SeqNo s = 1; s <= 10; ++s) app->log(request(s, Bytes(1024, 0x7a)), 0, s);
    meter.take();
    app->state_digest(10);
    EXPECT_GT(meter.pending(), milliseconds(1));  // hash + flash write cost
}

TEST_F(ChainAppFixture, SyncStateUsesFetcher) {
    bool called = false;
    app->set_state_fetcher([&](SeqNo seq, const crypto::Digest&) {
        called = true;
        EXPECT_EQ(seq, 30u);
        return true;
    });
    app->log(request(1, to_bytes("stale")), 0, 1);
    app->sync_state(30, crypto::Digest{});
    EXPECT_TRUE(called);
    EXPECT_EQ(app->pending_requests(), 0u);  // pending cleared on transfer
}

TEST_F(ChainAppFixture, RejectsZeroInterval) {
    EXPECT_THROW(ChainApp(store, *crypto, 0), std::invalid_argument);
}

}  // namespace
}  // namespace zc::zugchain
