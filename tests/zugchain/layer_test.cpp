#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "zugchain/layer.hpp"

namespace zc::zugchain {
namespace {

struct MockConsensus final : ConsensusHandle {
    bool propose(const pbft::Request& r) override {
        proposed.push_back(r);
        return true;
    }
    void suspect() override { ++suspects; }
    std::vector<pbft::Request> inflight_requests() const override { return inflight; }

    std::vector<pbft::Request> proposed;
    std::vector<pbft::Request> inflight;
    int suspects = 0;
};

struct MockTransport final : LayerTransport {
    void broadcast(const pbft::Request& r) override { broadcasts.push_back(r); }
    void forward(NodeId to, const pbft::Request& r) override { forwards.emplace_back(to, r); }

    std::vector<pbft::Request> broadcasts;
    std::vector<std::pair<NodeId, pbft::Request>> forwards;
};

struct MockSink final : LogSink {
    void log(const pbft::Request& r, NodeId origin, SeqNo seq) override {
        logged.push_back({r, origin, seq});
    }
    struct Entry {
        pbft::Request request;
        NodeId origin;
        SeqNo seq;
    };
    std::vector<Entry> logged;
};

struct LayerFixture : ::testing::Test {
    static constexpr NodeId kSelf = 1;

    LayerFixture() : sim(11) {
        Rng keyrng = sim.rng().fork("keys");
        for (NodeId i = 0; i < 4; ++i) {
            keys.push_back(provider.generate(keyrng));
            directory.register_key(i, keys.back().pub);
        }
        crypto = std::make_unique<crypto::CryptoContext>(provider, directory, keys[kSelf], costs,
                                                         meter);
        LayerConfig cfg;
        cfg.id = kSelf;
        cfg.soft_timeout = milliseconds(250);
        cfg.hard_timeout = milliseconds(250);
        cfg.max_open_per_origin = 4;
        layer = std::make_unique<CommunicationLayer>(cfg, sim, *crypto, transport, sink);
        layer->attach_consensus(consensus);
    }

    /// A request as another node would sign it.
    pbft::Request peer_request(NodeId origin, BytesView payload, std::uint64_t uniq = 1) {
        crypto::WorkMeter m;
        crypto::CryptoContext ctx(provider, directory, keys[origin], costs, m);
        pbft::Request r;
        r.payload = Bytes(payload.begin(), payload.end());
        r.origin = origin;
        r.origin_seq = uniq;
        r.sig = ctx.sign(r.signing_bytes());
        return r;
    }

    /// Simulates the replica deciding one of the consensus' proposals.
    void decide(const pbft::Request& r, SeqNo seq) { layer->deliver(r, seq); }

    sim::Simulation sim;
    crypto::FastProvider provider;
    crypto::KeyDirectory directory;
    std::vector<crypto::KeyPair> keys;
    metrics::CostModel costs;
    crypto::WorkMeter meter;
    std::unique_ptr<crypto::CryptoContext> crypto;
    MockConsensus consensus;
    MockTransport transport;
    MockSink sink;
    std::unique_ptr<CommunicationLayer> layer;
};

TEST_F(LayerFixture, BackupStartsSoftTimerInsteadOfProposing) {
    // Self (node 1) is not the primary (node 0 initially).
    layer->receive(to_bytes("cycle-1"), 1);
    EXPECT_TRUE(consensus.proposed.empty());
    EXPECT_EQ(layer->open_requests(), 1u);

    // Soft timeout fires: the request is broadcast and a hard timer armed.
    sim.run_until(milliseconds(250));
    ASSERT_EQ(transport.broadcasts.size(), 1u);
    EXPECT_EQ(transport.broadcasts[0].origin, kSelf);
    EXPECT_EQ(layer->stats().soft_timeouts, 1u);
}

TEST_F(LayerFixture, PrimaryProposesImmediately) {
    layer->new_primary(1, kSelf);  // become primary
    layer->receive(to_bytes("cycle-1"), 1);
    ASSERT_EQ(consensus.proposed.size(), 1u);
    EXPECT_EQ(consensus.proposed[0].origin, kSelf);
    EXPECT_EQ(consensus.proposed[0].payload, to_bytes("cycle-1"));
}

TEST_F(LayerFixture, DecideCancelsTimersAndLogs) {
    layer->receive(to_bytes("cycle-1"), 1);
    // The primary (node 0) proposed its copy; the decide arrives.
    decide(peer_request(0, to_bytes("cycle-1")), 1);
    ASSERT_EQ(sink.logged.size(), 1u);
    EXPECT_EQ(sink.logged[0].origin, 0u);
    EXPECT_EQ(sink.logged[0].seq, 1u);
    EXPECT_EQ(layer->open_requests(), 0u);

    // Timers were cancelled: no broadcast later.
    sim.run();
    EXPECT_TRUE(transport.broadcasts.empty());
    EXPECT_EQ(consensus.suspects, 0);
}

TEST_F(LayerFixture, RepeatedBusInputFilteredAfterDecide) {
    layer->receive(to_bytes("cycle-1"), 1);
    decide(peer_request(0, to_bytes("cycle-1")), 1);
    layer->receive(to_bytes("cycle-1"), 1);  // bus glitch re-delivers
    EXPECT_EQ(layer->stats().filtered_in_log, 1u);
    EXPECT_EQ(layer->open_requests(), 0u);
}

TEST_F(LayerFixture, DuplicateDecideSuspectsPrimary) {
    decide(peer_request(0, to_bytes("cycle-1"), 1), 1);
    // Faulty primary orders the same payload again (different uniquifier).
    decide(peer_request(0, to_bytes("cycle-1"), 2), 2);
    EXPECT_EQ(consensus.suspects, 1);
    EXPECT_EQ(layer->stats().duplicates_decided, 1u);
    EXPECT_EQ(sink.logged.size(), 1u);  // logged exactly once
}

TEST_F(LayerFixture, PrepreparedCancelsSoftTimeout) {
    layer->receive(to_bytes("cycle-1"), 1);
    // Primary's preprepare observed: cancel the soft timer.
    layer->preprepared(peer_request(0, to_bytes("cycle-1")));
    sim.run();
    EXPECT_TRUE(transport.broadcasts.empty());
    EXPECT_EQ(layer->stats().soft_timeouts, 0u);
}

TEST_F(LayerFixture, HardTimeoutSuspects) {
    layer->receive(to_bytes("cycle-1"), 1);
    sim.run_until(milliseconds(250));  // soft fires, broadcast + hard timer
    sim.run_until(milliseconds(500));  // hard fires
    EXPECT_EQ(layer->stats().hard_timeouts, 1u);
    EXPECT_EQ(consensus.suspects, 1);
}

TEST_F(LayerFixture, PeerBroadcastOnPrimaryProposesBroadcastersCopy) {
    layer->new_primary(1, kSelf);
    const pbft::Request r = peer_request(2, to_bytes("only-node2-saw-this"));
    layer->on_peer_request(2, r, false);
    ASSERT_EQ(consensus.proposed.size(), 1u);
    EXPECT_EQ(consensus.proposed[0], r);  // origin id 2 preserved (Alg. 1 ln. 29)
}

TEST_F(LayerFixture, PeerBroadcastOnPrimaryWithRequestInQueueIsNotReproposed) {
    layer->new_primary(1, kSelf);
    layer->receive(to_bytes("cycle-1"), 1);  // we proposed our own copy
    ASSERT_EQ(consensus.proposed.size(), 1u);
    layer->on_peer_request(2, peer_request(2, to_bytes("cycle-1")), false);
    EXPECT_EQ(consensus.proposed.size(), 1u);  // r.req in R: skip
}

TEST_F(LayerFixture, PeerBroadcastOnBackupForwardsToPrimary) {
    const pbft::Request r = peer_request(2, to_bytes("cycle-1"));
    layer->on_peer_request(2, r, false);
    ASSERT_EQ(transport.forwards.size(), 1u);
    EXPECT_EQ(transport.forwards[0].first, 0u);  // current primary
    EXPECT_EQ(transport.forwards[0].second, r);

    // Hard timer armed: expires into suspicion if never decided.
    sim.run_until(milliseconds(250));
    EXPECT_EQ(consensus.suspects, 1);
}

TEST_F(LayerFixture, ForwardedBroadcastNotReForwarded) {
    layer->on_peer_request(3, peer_request(2, to_bytes("cycle-1")), true);
    EXPECT_TRUE(transport.forwards.empty());
}

TEST_F(LayerFixture, BadPeerSignatureDropped) {
    pbft::Request r = peer_request(2, to_bytes("cycle-1"));
    r.payload.push_back(0x01);
    layer->on_peer_request(2, r, false);
    EXPECT_EQ(layer->open_requests(), 0u);
    EXPECT_TRUE(transport.forwards.empty());
}

TEST_F(LayerFixture, RateLimitCapsOpenRequestsPerOrigin) {
    // Node 3 floods fabricated requests (max_open_per_origin = 4).
    for (int i = 0; i < 20; ++i) {
        layer->on_peer_request(
            3, peer_request(3, to_bytes("fabricated-" + std::to_string(i)),
                            static_cast<std::uint64_t>(i)),
            false);
    }
    EXPECT_EQ(layer->open_requests(), 4u);
    EXPECT_EQ(layer->stats().rate_limited, 16u);

    // Once one decides, capacity frees up.
    decide(peer_request(3, to_bytes("fabricated-0"), 0), 1);
    layer->on_peer_request(3, peer_request(3, to_bytes("fabricated-new"), 99), false);
    EXPECT_EQ(layer->open_requests(), 4u);
    EXPECT_EQ(layer->stats().rate_limited, 16u);
}

TEST_F(LayerFixture, RateLimitDoesNotAffectBusInput) {
    for (int i = 0; i < 20; ++i) {
        layer->receive(to_bytes("bus-" + std::to_string(i)), static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(layer->open_requests(), 20u);
    EXPECT_EQ(layer->stats().rate_limited, 0u);
}

TEST_F(LayerFixture, NewPrimarySelfProposesOpenRequests) {
    layer->receive(to_bytes("cycle-1"), 1);
    layer->receive(to_bytes("cycle-2"), 2);
    EXPECT_TRUE(consensus.proposed.empty());

    layer->new_primary(1, kSelf);
    EXPECT_EQ(consensus.proposed.size(), 2u);
}

TEST_F(LayerFixture, NewPrimarySkipsRunningInstances) {
    layer->receive(to_bytes("cycle-1"), 1);
    layer->receive(to_bytes("cycle-2"), 2);
    // cycle-1 was re-proposed by the view change (running instance).
    consensus.inflight = {peer_request(0, to_bytes("cycle-1"))};
    layer->new_primary(1, kSelf);
    ASSERT_EQ(consensus.proposed.size(), 1u);
    EXPECT_EQ(consensus.proposed[0].payload, to_bytes("cycle-2"));
}

TEST_F(LayerFixture, NewPrimaryBackupRestartsSoftTimers) {
    layer->receive(to_bytes("cycle-1"), 1);
    sim.run_until(milliseconds(100));
    layer->new_primary(2, 2);  // still a backup; timers restart
    sim.run_until(milliseconds(300));  // old timer would have fired at 250
    EXPECT_TRUE(transport.broadcasts.empty());
    sim.run_until(milliseconds(350));  // restarted timer fires at 100+250
    EXPECT_EQ(transport.broadcasts.size(), 1u);
}

TEST_F(LayerFixture, DivergentInputsAllLogged) {
    // The same cycle read differently on two nodes: both versions must be
    // logged (they are different payloads).
    decide(peer_request(0, to_bytes("cycle-1-version-a")), 1);
    decide(peer_request(2, to_bytes("cycle-1-version-b")), 2);
    EXPECT_EQ(sink.logged.size(), 2u);
    EXPECT_EQ(consensus.suspects, 0);
}

TEST_F(LayerFixture, DedupWindowEvictsOldDigests) {
    LayerConfig cfg;
    cfg.id = kSelf;
    cfg.dedup_window = 4;
    CommunicationLayer small(cfg, sim, *crypto, transport, sink);
    small.attach_consensus(consensus);

    const crypto::Digest first = crypto::sha256(to_bytes("payload-0"));
    for (int i = 0; i < 5; ++i) {
        small.deliver(peer_request(0, to_bytes("payload-" + std::to_string(i)),
                                   static_cast<std::uint64_t>(i)),
                      static_cast<SeqNo>(i + 1));
    }
    EXPECT_FALSE(small.in_log(first));  // evicted
    EXPECT_TRUE(small.in_log(crypto::sha256(to_bytes("payload-4"))));
}

TEST_F(LayerFixture, MultipleSourcesAreIndependentQueues) {
    layer->receive(to_bytes("mvb-frame"), 1, /*source=*/0);
    layer->receive(to_bytes("profinet-frame"), 1, /*source=*/1);
    EXPECT_EQ(layer->open_requests(), 2u);
    decide(peer_request(0, to_bytes("mvb-frame")), 1);
    decide(peer_request(0, to_bytes("profinet-frame")), 2);
    EXPECT_EQ(sink.logged.size(), 2u);
}

TEST_F(LayerFixture, NullDecideIgnored) {
    layer->deliver(pbft::Request::null(), 5);
    EXPECT_TRUE(sink.logged.empty());
    EXPECT_EQ(consensus.suspects, 0);
}

TEST_F(LayerFixture, QueueGaugeTracksOpenBytes) {
    metrics::MemoryTracker tracker;
    metrics::Gauge* gauge = tracker.gauge("layer");
    LayerConfig cfg;
    cfg.id = kSelf;
    CommunicationLayer tracked(cfg, sim, *crypto, transport, sink, gauge);
    tracked.attach_consensus(consensus);

    tracked.receive(to_bytes("cycle-1"), 1);
    EXPECT_GT(gauge->value(), 0);
    tracked.deliver(peer_request(0, to_bytes("cycle-1")), 1);
    EXPECT_EQ(gauge->value(), 0);
    EXPECT_EQ(tracker.underflows(), 0u);
}

}  // namespace
}  // namespace zc::zugchain
