// Edge-path tests for the communication layer: optimization toggles,
// timer interactions across primary changes, and state-transfer marking.
#include <gtest/gtest.h>

#include "crypto/sha256.hpp"
#include "zugchain/layer.hpp"

namespace zc::zugchain {
namespace {

struct MockConsensus final : ConsensusHandle {
    bool propose(const pbft::Request& r) override {
        proposed.push_back(r);
        return true;
    }
    void suspect() override { ++suspects; }
    std::vector<pbft::Request> inflight_requests() const override { return inflight; }
    std::vector<pbft::Request> proposed;
    std::vector<pbft::Request> inflight;
    int suspects = 0;
};

struct MockTransport final : LayerTransport {
    void broadcast(const pbft::Request& r) override { broadcasts.push_back(r); }
    void forward(NodeId to, const pbft::Request& r) override { forwards.emplace_back(to, r); }
    std::vector<pbft::Request> broadcasts;
    std::vector<std::pair<NodeId, pbft::Request>> forwards;
};

struct MockSink final : LogSink {
    void log(const pbft::Request& r, NodeId origin, SeqNo seq) override {
        logged.push_back({r, origin, seq});
    }
    struct Entry {
        pbft::Request request;
        NodeId origin;
        SeqNo seq;
    };
    std::vector<Entry> logged;
};

struct EdgeFixture : ::testing::Test {
    static constexpr NodeId kSelf = 1;

    EdgeFixture() : sim(23) {
        Rng keyrng = sim.rng().fork("keys");
        for (NodeId i = 0; i < 4; ++i) {
            keys.push_back(provider.generate(keyrng));
            directory.register_key(i, keys.back().pub);
        }
        crypto = std::make_unique<crypto::CryptoContext>(provider, directory, keys[kSelf],
                                                         costs, meter);
    }

    std::unique_ptr<CommunicationLayer> make_layer(LayerConfig cfg) {
        cfg.id = kSelf;
        auto layer = std::make_unique<CommunicationLayer>(cfg, sim, *crypto, transport, sink);
        layer->attach_consensus(consensus);
        return layer;
    }

    pbft::Request peer_request(NodeId origin, BytesView payload, std::uint64_t uniq = 1) {
        crypto::WorkMeter m;
        crypto::CryptoContext ctx(provider, directory, keys[origin], costs, m);
        pbft::Request r;
        r.payload = Bytes(payload.begin(), payload.end());
        r.origin = origin;
        r.origin_seq = uniq;
        r.sig = ctx.sign(r.signing_bytes());
        return r;
    }

    sim::Simulation sim;
    crypto::FastProvider provider;
    crypto::KeyDirectory directory;
    std::vector<crypto::KeyPair> keys;
    metrics::CostModel costs;
    crypto::WorkMeter meter;
    std::unique_ptr<crypto::CryptoContext> crypto;
    MockConsensus consensus;
    MockTransport transport;
    MockSink sink;
};

TEST_F(EdgeFixture, PrepreparedOptimizationCanBeDisabled) {
    LayerConfig cfg;
    cfg.soft_timeout = milliseconds(100);
    cfg.cancel_soft_on_preprepare = false;
    auto layer = make_layer(cfg);

    layer->receive(to_bytes("cycle"), 1);
    layer->preprepared(peer_request(0, to_bytes("cycle")));  // ignored by config
    sim.run_until(milliseconds(150));
    EXPECT_EQ(layer->stats().soft_timeouts, 1u);
    EXPECT_EQ(transport.broadcasts.size(), 1u);
}

TEST_F(EdgeFixture, HardTimerSurvivesPrepreparedOptimization) {
    // The preprepare indication cancels only the *soft* timer; a hard
    // timer armed by a peer broadcast keeps running until DECIDE.
    LayerConfig cfg;
    cfg.hard_timeout = milliseconds(100);
    auto layer = make_layer(cfg);

    layer->on_peer_request(2, peer_request(2, to_bytes("cycle")), false);
    layer->preprepared(peer_request(0, to_bytes("cycle")));
    sim.run_until(milliseconds(150));
    EXPECT_EQ(layer->stats().hard_timeouts, 1u);
    EXPECT_EQ(consensus.suspects, 1);
}

TEST_F(EdgeFixture, NewPrimaryCancelsHardTimers) {
    LayerConfig cfg;
    cfg.soft_timeout = milliseconds(200);
    cfg.hard_timeout = milliseconds(100);
    auto layer = make_layer(cfg);

    layer->on_peer_request(2, peer_request(2, to_bytes("cycle")), false);  // hard armed
    sim.run_until(milliseconds(50));
    layer->new_primary(1, 2);  // view change before the hard timer fires
    sim.run_until(milliseconds(200));
    // The hard timer was replaced by a fresh soft timer for the new view:
    // no suspicion of the *new* primary from stale timers.
    EXPECT_EQ(layer->stats().hard_timeouts, 0u);
    EXPECT_EQ(consensus.suspects, 0);
    // The restarted soft timer fires relative to the view change.
    sim.run_until(milliseconds(260));
    EXPECT_EQ(layer->stats().soft_timeouts, 1u);
}

TEST_F(EdgeFixture, MarkLoggedClearsOpenAndFilters) {
    auto layer = make_layer({});
    layer->receive(to_bytes("transferred"), 1);
    EXPECT_EQ(layer->open_requests(), 1u);

    const crypto::Digest digest = crypto::sha256(to_bytes("transferred"));
    layer->mark_logged(digest);
    EXPECT_EQ(layer->open_requests(), 0u);
    EXPECT_TRUE(layer->in_log(digest));

    // Re-reading the same payload from the bus is now filtered.
    layer->receive(to_bytes("transferred"), 1);
    EXPECT_EQ(layer->stats().filtered_in_log, 1u);
    // No timers left behind.
    sim.run();
    EXPECT_EQ(layer->stats().soft_timeouts, 0u);
}

TEST_F(EdgeFixture, ReceiveAfterPeerBroadcastUpgradesToBusCopy) {
    auto layer = make_layer({});
    // Peer broadcast arrives first (we are a backup; hard timer starts).
    layer->on_peer_request(2, peer_request(2, to_bytes("cycle")), false);
    EXPECT_EQ(layer->open_requests(), 1u);
    // Then our own bus read of the same payload: no second entry, and as
    // primary later we would not re-propose (r.req in R).
    layer->receive(to_bytes("cycle"), 1);
    EXPECT_EQ(layer->open_requests(), 1u);
    EXPECT_EQ(layer->stats().received, 0u);  // merged into the existing entry
}

TEST_F(EdgeFixture, SuspectNotCalledWhenDecideBeatsHardTimer) {
    LayerConfig cfg;
    cfg.hard_timeout = milliseconds(100);
    auto layer = make_layer(cfg);
    const pbft::Request r = peer_request(2, to_bytes("cycle"));
    layer->on_peer_request(2, r, false);
    sim.run_until(milliseconds(50));
    layer->deliver(r, 1);
    sim.run();
    EXPECT_EQ(consensus.suspects, 0);
    EXPECT_EQ(sink.logged.size(), 1u);
}

}  // namespace
}  // namespace zc::zugchain
