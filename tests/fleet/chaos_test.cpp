#include <gtest/gtest.h>

#include "fleet/chaos.hpp"

namespace zc::fleet {
namespace {

TEST(FleetChaos, EmptyByDefault) {
    FleetChaos chaos;
    EXPECT_TRUE(chaos.empty());
}

TEST(FleetChaos, StaggeredCrashesAllRestartWithinRun) {
    const Duration run = seconds(40);
    const FleetChaos chaos = FleetChaos::staggered(8, 2, run);
    EXPECT_FALSE(chaos.empty());
    ASSERT_FALSE(chaos.crashes.empty());
    for (const auto& c : chaos.crashes) {
        EXPECT_LT(c.train, 8u);
        EXPECT_LT(c.node, 4u);
        EXPECT_GT(c.restart_after, Duration::zero()) << "standard drill always restarts";
        EXPECT_LT(c.at + c.restart_after, run) << "rejoin must fit inside the run";
    }
}

TEST(FleetChaos, StaggeredCrashTimesAreDistinct) {
    const FleetChaos chaos = FleetChaos::staggered(16, 2, seconds(60));
    for (std::size_t i = 1; i < chaos.crashes.size(); ++i) {
        EXPECT_LT(chaos.crashes[i - 1].at, chaos.crashes[i].at);
    }
}

TEST(FleetChaos, DeadZonesCoverEveryThirdTrain) {
    const FleetChaos chaos = FleetChaos::staggered(9, 1, seconds(30));
    ASSERT_EQ(chaos.dead_zones.size(), 3u);
    EXPECT_EQ(chaos.dead_zones[0].train, 0u);
    EXPECT_EQ(chaos.dead_zones[1].train, 3u);
    EXPECT_EQ(chaos.dead_zones[2].train, 6u);
    for (const auto& z : chaos.dead_zones) {
        EXPECT_GT(z.duration, Duration::zero());
        EXPECT_LT(z.at + z.duration, seconds(30));
    }
}

TEST(FleetChaos, DcOutageOnlyWithFailoverTarget) {
    EXPECT_TRUE(FleetChaos::staggered(4, 1, seconds(30)).dc_outages.empty());
    const FleetChaos chaos = FleetChaos::staggered(4, 2, seconds(30));
    ASSERT_EQ(chaos.dc_outages.size(), 1u);
    EXPECT_EQ(chaos.dc_outages[0].dc, 0u);
    EXPECT_GT(chaos.dc_outages[0].duration, Duration::zero()) << "standard drill recovers";
}

TEST(FleetChaos, DeterministicForSameInputs) {
    const FleetChaos a = FleetChaos::staggered(12, 2, seconds(45));
    const FleetChaos b = FleetChaos::staggered(12, 2, seconds(45));
    ASSERT_EQ(a.crashes.size(), b.crashes.size());
    for (std::size_t i = 0; i < a.crashes.size(); ++i) {
        EXPECT_EQ(a.crashes[i].train, b.crashes[i].train);
        EXPECT_EQ(a.crashes[i].node, b.crashes[i].node);
        EXPECT_EQ(a.crashes[i].at, b.crashes[i].at);
    }
}

}  // namespace
}  // namespace zc::fleet
