#include <gtest/gtest.h>

#include "faults/profiles.hpp"
#include "fleet/fleet.hpp"

namespace zc::fleet {
namespace {

FleetConfig base_config(std::uint32_t trains) {
    FleetConfig cfg;
    cfg.trains = trains;
    cfg.seed = 7;
    cfg.dc_count = 2;
    cfg.warmup = seconds(1);
    cfg.duration = seconds(12);
    cfg.export_period = seconds(4);
    cfg.train.payload_size = 256;
    cfg.train.default_tap_faults = {};  // clean bus for crisp assertions
    return cfg;
}

/// All live nodes of one shard must hold identical chains up to the
/// shortest live head (per-shard safety, fleet edition).
void expect_shard_consistent(runtime::TrainShard& shard) {
    Height min_head = ~0ull;
    for (std::size_t i = 0; i < shard.node_count(); ++i) {
        if (!shard.node(i).alive()) continue;
        min_head = std::min(min_head, shard.node(i).store().head_height());
    }
    ASSERT_NE(min_head, ~0ull);
    runtime::Node* reference = nullptr;
    for (std::size_t i = 0; i < shard.node_count(); ++i) {
        runtime::Node& node = shard.node(i);
        if (!node.alive()) continue;
        if (reference == nullptr) {
            reference = &node;
            continue;
        }
        for (Height h = std::max(node.store().base_height(),
                                 reference->store().base_height());
             h <= min_head; ++h) {
            const auto* a = reference->store().header(h);
            const auto* b = node.store().header(h);
            if (a == nullptr || b == nullptr) continue;
            EXPECT_EQ(a->hash(), b->hash()) << "shard divergence at height " << h;
        }
    }
}

TEST(Fleet, SmallFleetRecordsAndExportsOnEveryShard) {
    Fleet fleet(base_config(3));
    fleet.run();
    const FleetReport report = fleet.report();
    ASSERT_EQ(report.per_train.size(), 3u);
    for (const TrainReport& t : report.per_train) {
        EXPECT_EQ(t.nodes_alive, 4u) << "train " << t.train;
        EXPECT_GT(t.head, 10u) << "train " << t.train << " recorded too little";
        EXPECT_GT(t.exports_completed, 0u) << "train " << t.train << " never exported";
        EXPECT_GT(t.exported_head, 0u) << "train " << t.train << " not in the index";
    }
    EXPECT_EQ(report.cross_shard_collisions, 0u);
    EXPECT_GT(report.exported_duplicates, 0u) << "DC-to-DC sync should replicate blocks";
    EXPECT_GT(report.logged_sum, 0u);
    for (TrainId t = 0; t < 3; ++t) expect_shard_consistent(fleet.shard(t));
}

TEST(Fleet, ShardsProduceDistinctChains) {
    // Distinct per-shard rng streams: two shards with identical configs
    // must still record different payloads (decorrelated ATP generators).
    Fleet fleet(base_config(2));
    fleet.run();
    const auto& s0 = fleet.shard(0).node(0).store();
    const auto& s1 = fleet.shard(1).node(0).store();
    const Height h = std::min(s0.head_height(), s1.head_height());
    ASSERT_GT(h, 0u);
    EXPECT_NE(s0.header(h)->hash(), s1.header(h)->hash());
}

TEST(Fleet, SameSeedRunsAreByteIdentical) {
    std::string report_a, rollup_a, index_a;
    {
        Fleet fleet(base_config(3));
        fleet.run();
        report_a = fleet.report().json();
        rollup_a = fleet.rollup().csv();
        index_a = fleet.index().json();
    }
    Fleet fleet(base_config(3));
    fleet.run();
    EXPECT_EQ(fleet.report().json(), report_a);
    EXPECT_EQ(fleet.rollup().csv(), rollup_a);
    EXPECT_EQ(fleet.index().json(), index_a);
}

TEST(Fleet, DifferentSeedsDiverge) {
    // Counters can coincide across seeds on a clean bus; block content
    // cannot (different ATP signal streams), so compare chain hashes.
    FleetConfig cfg = base_config(2);
    Fleet a(cfg);
    cfg.seed = 8;
    Fleet b(cfg);
    a.run();
    b.run();
    const auto& sa = a.shard(0).node(0).store();
    const auto& sb = b.shard(0).node(0).store();
    const Height h = std::min(sa.head_height(), sb.head_height());
    ASSERT_GT(h, 0u);
    EXPECT_NE(sa.header(h)->hash(), sb.header(h)->hash());
}

TEST(Fleet, HealthyRunLeavesNoActiveAlarms) {
    Fleet fleet(base_config(3));
    fleet.run();
    const FleetReport report = fleet.report();
    EXPECT_EQ(report.alarms.total_never_cleared, 0u)
        << "healthy fleet must end rollup-clean";
    EXPECT_EQ(report.audit_violations, 0u);
}

TEST(Fleet, TampererShardNeverContaminatesSiblingsOrIndex) {
    FleetConfig cfg = base_config(3);
    cfg.audit = true;
    cfg.byzantine[1][2] = *faults::profile_config("tamperer");
    Fleet fleet(cfg);
    fleet.run();

    // The tamperer's own shard absorbs the attack (f=1), its auditor sees
    // the node as compromised; the sibling shards and the shared archive
    // stay pristine.
    EXPECT_EQ(fleet.index().cross_shard_collisions(), 0u);
    for (TrainId t = 0; t < 3; ++t) {
        expect_shard_consistent(fleet.shard(t));
        const faults::SafetyAuditor* auditor = fleet.auditor(t);
        ASSERT_NE(auditor, nullptr);
        EXPECT_TRUE(auditor->report().clean())
            << "train " << t << ": " << auditor->report().json();
    }

    // Sibling shards' archived chains match their own replicas' chains.
    for (TrainId t = 0; t < 3; ++t) {
        if (t == 1) continue;
        const auto entry = fleet.index().trains().find(t);
        if (entry == fleet.index().trains().end()) continue;
        const chain::BlockStore& replica = fleet.shard(t).node(0).store();
        const Height h = entry->second.head;
        ASSERT_NE(replica.header(h), nullptr);
        EXPECT_EQ(replica.header(h)->hash(), entry->second.head_hash);
    }
}

TEST(Fleet, DcFailoverLosesNoExportedBlocks) {
    FleetConfig cfg = base_config(3);
    cfg.duration = seconds(16);
    FleetChaos::DcOutage outage;
    outage.dc = 0;
    outage.at = seconds(7);
    outage.duration = Duration::zero();  // permanent: DC 0 never returns
    cfg.chaos.dc_outages.push_back(outage);
    Fleet fleet(cfg);
    fleet.run();

    // Juridical safety across the outage: replicas only prune with a
    // delete quorum of DC signatures, and a DC signs only after adopting
    // the blocks — so every height any replica pruned must live on the
    // surviving DC 1.
    std::uint64_t pruned_total = 0;
    for (TrainId t = 0; t < fleet.train_count(); ++t) {
        Height pruned_floor = ~0ull;
        for (std::size_t i = 0; i < fleet.shard(t).node_count(); ++i) {
            pruned_floor =
                std::min(pruned_floor, fleet.shard(t).node(i).store().base_height());
        }
        const chain::BlockStore& survivor = fleet.data_center(1).core(t).store();
        for (Height h = 1; h < pruned_floor; ++h) {
            ASSERT_NE(survivor.header(h), nullptr)
                << "train " << t << " block " << h << " pruned but not on surviving DC";
            ++pruned_total;
        }
    }
    EXPECT_GT(pruned_total, 0u) << "test needs at least one pre-outage prune to bite";

    // And the fleet kept exporting after the failover: exports completed
    // against DC 1 alone once DC 0 went dark.
    EXPECT_GT(fleet.data_center(1).totals().exports_completed, 0u);
}

TEST(Fleet, TinyIngestQueueDropsButStaysSafe) {
    // One single-core frontend with a one-deep queue, hammered by four
    // shards exporting every 1.5 s: proof verification occupies the core
    // for tens of virtual ms, so concurrent rounds must shed messages.
    FleetConfig cfg = base_config(4);
    cfg.train.payload_size = 1024;
    cfg.export_period = milliseconds(1500);
    cfg.dc_ingest_queue = 1;  // absurdly small shared frontend
    cfg.dc_ingest_cores = 1;
    Fleet fleet(cfg);
    fleet.run();
    const FleetReport report = fleet.report();
    EXPECT_GT(report.ingest_dropped, 0u) << "bounded queue should shed load";
    EXPECT_EQ(report.cross_shard_collisions, 0u);
    for (TrainId t = 0; t < 3; ++t) expect_shard_consistent(fleet.shard(t));
}

TEST(Fleet, DisklessRestartAfterPruneRebasesOntoAnchor) {
    // Without a store_root a restarted node wipes its in-memory chain. By
    // the time it rejoins, its peers have export-pruned the prefix it
    // needs, so classic state transfer cannot serve it — the node must
    // adopt a peer's prune anchor (delete-quorum evidence) and rebase.
    FleetConfig cfg = base_config(2);
    cfg.duration = seconds(16);
    cfg.export_period = seconds(3);
    cfg.audit = true;
    FleetChaos::TrainCrash crash;
    crash.train = 0;
    crash.node = 1;
    crash.at = seconds(9);
    crash.restart_after = seconds(2);
    cfg.chaos.crashes.push_back(crash);
    Fleet fleet(cfg);
    fleet.run();

    EXPECT_EQ(fleet.report().audit_violations, 0u);
    expect_shard_consistent(fleet.shard(0));
    const chain::BlockStore& store = fleet.shard(0).node(1).store();
    EXPECT_GT(store.base_height(), 0u) << "rejoiner never adopted a pruned base";
    ASSERT_TRUE(store.anchor().has_value());
    EXPECT_EQ(store.anchor()->base_height, store.base_height());
    EXPECT_GT(fleet.shard(0).state_transfer_fetches(), 0u);
    // And it kept recording with the others afterwards.
    EXPECT_GT(store.head_height(), store.base_height());
}

TEST(Fleet, StaggeredChaosDrillSurvivesWithCleanAudit) {
    FleetConfig cfg = base_config(4);
    cfg.duration = seconds(20);
    cfg.audit = true;
    cfg.chaos = FleetChaos::staggered(4, 2, cfg.warmup + cfg.duration);
    Fleet fleet(cfg);
    fleet.run();
    const FleetReport report = fleet.report();
    EXPECT_EQ(report.audit_violations, 0u);
    EXPECT_EQ(report.cross_shard_collisions, 0u);
    for (TrainId t = 0; t < 4; ++t) expect_shard_consistent(fleet.shard(t));
    // Crashed nodes restarted and rejoined.
    ASSERT_EQ(report.per_train.size(), 4u);
    for (const TrainReport& t : report.per_train) {
        EXPECT_EQ(t.nodes_alive, 4u) << "train " << t.train << " did not fully rejoin";
    }
}

}  // namespace
}  // namespace zc::fleet
