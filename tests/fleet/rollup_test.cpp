#include <gtest/gtest.h>

#include "fleet/rollup.hpp"
#include "health/monitor.hpp"

namespace zc::fleet {
namespace {

FleetSample sample_at(double t_s) {
    FleetSample s;
    s.at = millis_f(t_s * 1000.0);
    s.trains = 4;
    s.nodes_alive = 16;
    s.head_sum = 100;
    s.logged_sum = 1000;
    s.exported_sum = 80;
    s.backlog_sum = 20;
    return s;
}

TEST(FleetRollup, CsvHasFixedColumnsAndOneRowPerSample) {
    FleetRollup rollup;
    rollup.add(sample_at(1.0));
    rollup.add(sample_at(2.0));
    const std::string csv = rollup.csv();
    EXPECT_NE(csv.find("t_s,trains,nodes_alive,head_sum,logged_sum,exported_sum"),
              std::string::npos);
    EXPECT_NE(csv.find("1.000,4,16,100,1000,80,20,0,0,0"), std::string::npos);
    EXPECT_NE(csv.find("2.000,4,16,100,1000,80,20,0,0,0"), std::string::npos);
    EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 3);  // header + 2 rows
}

TEST(FleetRollup, CsvGolden) {
    // Exact bytes: the rollup file is part of the fleet determinism gate
    // (CI cmp's it across same-seed runs), so the renderer itself is
    // pinned here — a format change must show up as a test diff first.
    FleetRollup rollup;
    FleetSample s = sample_at(1.5);
    s.active_alarms = 2;
    s.ingest_depth = 7;
    s.ingest_dropped = 1;
    rollup.add(s);
    EXPECT_EQ(rollup.csv(),
              "t_s,trains,nodes_alive,head_sum,logged_sum,exported_sum,backlog_sum,"
              "active_alarms,ingest_depth,ingest_dropped\n"
              "1.500,4,16,100,1000,80,20,2,7,1\n");
}

TEST(FleetRollup, JsonGolden) {
    FleetRollup rollup;
    rollup.add(sample_at(0.25));
    FleetSample s = sample_at(0.5);
    s.ingest_dropped = 3;
    rollup.add(s);
    EXPECT_EQ(rollup.json(),
              "[{\"t_s\":0.250,\"trains\":4,\"nodes_alive\":16,\"head_sum\":100,"
              "\"logged_sum\":1000,\"exported_sum\":80,\"backlog_sum\":20,"
              "\"active_alarms\":0,\"ingest_depth\":0,\"ingest_dropped\":0},"
              "{\"t_s\":0.500,\"trains\":4,\"nodes_alive\":16,\"head_sum\":100,"
              "\"logged_sum\":1000,\"exported_sum\":80,\"backlog_sum\":20,"
              "\"active_alarms\":0,\"ingest_depth\":0,\"ingest_dropped\":3}]");
}

TEST(FleetRollup, EmptyRendersHeaderAndEmptyArray) {
    FleetRollup rollup;
    EXPECT_EQ(rollup.csv(),
              "t_s,trains,nodes_alive,head_sum,logged_sum,exported_sum,backlog_sum,"
              "active_alarms,ingest_depth,ingest_dropped\n");
    EXPECT_EQ(rollup.json(), "[]");
}

TEST(FleetRollup, RendersDeterministically) {
    FleetRollup a, b;
    for (int i = 0; i < 5; ++i) {
        a.add(sample_at(i * 0.5));
        b.add(sample_at(i * 0.5));
    }
    EXPECT_EQ(a.csv(), b.csv());
    EXPECT_EQ(a.json(), b.json());
    EXPECT_EQ(a.json().front(), '[');
    EXPECT_EQ(a.json().back(), ']');
}

TEST(FleetRollup, SummarizeCountsFiredAndNeverCleared) {
    // Drive two real monitors: one sees a node crash and recover (fired,
    // cleared), the other a crash that never heals (never cleared).
    health::MonitorConfig mc;
    health::HealthMonitor healed(mc), stuck(mc);

    auto nodes = [](bool node0_alive, std::uint64_t decided) {
        std::vector<health::NodeSample> v;
        for (NodeId i = 0; i < 4; ++i) {
            health::NodeSample s;
            s.node = i;
            s.alive = i != 0 || node0_alive;
            s.decided = decided;
            s.logged = decided;
            s.head_height = decided / 10;
            s.stable_height = decided / 10;
            v.push_back(s);
        }
        return v;
    };

    healed.sample(seconds(1), nodes(true, 100));
    healed.sample(seconds(2), nodes(false, 200));  // down -> alarm
    healed.sample(seconds(3), nodes(true, 300));   // back -> clears
    stuck.sample(seconds(1), nodes(true, 100));
    stuck.sample(seconds(2), nodes(false, 200));
    stuck.sample(seconds(3), nodes(false, 300));

    const FleetAlarmSummary summary = FleetRollup::summarize({&healed, &stuck, nullptr});
    const auto down = static_cast<unsigned>(health::AlarmKind::kNodeDown);
    EXPECT_EQ(summary.fired[down], 2u);
    EXPECT_EQ(summary.never_cleared[down], 1u);
    EXPECT_GE(summary.total_fired, 2u);
    EXPECT_EQ(summary.total_never_cleared, 1u);

    const std::string json = summary.json();
    EXPECT_NE(json.find("\"total_never_cleared\":1"), std::string::npos);
    EXPECT_NE(json.find("node_down"), std::string::npos);
}

}  // namespace
}  // namespace zc::fleet
