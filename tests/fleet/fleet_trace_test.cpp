// Fleet-unified trace plane: every shard and every data center lands in
// ONE Chrome trace with disjoint pid ranges, and the virtual-time content
// is a pure function of the seed.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fleet/fleet.hpp"
#include "trace/trace.hpp"

namespace zc::fleet {
namespace {

FleetConfig traced_config(trace::TraceSink* sink) {
    FleetConfig cfg;
    cfg.trains = 3;
    cfg.seed = 11;
    cfg.dc_count = 2;
    cfg.warmup = seconds(1);
    cfg.duration = seconds(10);
    cfg.export_period = seconds(4);
    cfg.train.payload_size = 256;
    cfg.trace_sink = sink;
    return cfg;
}

std::string run_traced() {
    trace::Tracer tracer(/*capture_events=*/true);
    Fleet fleet(traced_config(&tracer));
    fleet.run();
    return tracer.chrome_json();
}

/// Every `"pid":N` occurring in the serialized trace.
std::set<unsigned> pids_in(const std::string& json) {
    std::set<unsigned> pids;
    const std::string needle = "\"pid\":";
    for (std::size_t at = json.find(needle); at != std::string::npos;
         at = json.find(needle, at + 1)) {
        pids.insert(static_cast<unsigned>(std::stoul(json.substr(at + needle.size()))));
    }
    return pids;
}

TEST(FleetTrace, PidPlanSeparatesTrainsAndDataCenters) {
    const std::string json = run_traced();
    const std::set<unsigned> pids = pids_in(json);
    ASSERT_FALSE(pids.empty());

    // Each train's 4 nodes occupy 1000*(t+1)..+3; DCs sit at 100+d. No
    // event may fall outside the plan (that would mean an unmapped sink).
    for (const unsigned pid : pids) {
        const bool is_dc = pid == dc_trace_pid(0) || pid == dc_trace_pid(1);
        const bool is_train = (pid >= trace_pid(0, 0) && pid <= trace_pid(0, 3)) ||
                              (pid >= trace_pid(1, 0) && pid <= trace_pid(1, 3)) ||
                              (pid >= trace_pid(2, 0) && pid <= trace_pid(2, 3));
        EXPECT_TRUE(is_dc || is_train) << "unplanned pid " << pid;
    }
    // All three trains and both DCs actually emitted.
    for (TrainId t = 0; t < 3; ++t) {
        EXPECT_TRUE(pids.count(trace_pid(t, 0))) << "train " << t << " missing";
    }
    EXPECT_TRUE(pids.count(dc_trace_pid(0)));
    EXPECT_TRUE(pids.count(dc_trace_pid(1)));
}

TEST(FleetTrace, DataCenterPhasesAreInTheMergedTrace) {
    const std::string json = run_traced();
    // Ingest-queue spans (enqueue -> decode) and DC-to-DC sync events ride
    // the same trace as the consensus phases.
    EXPECT_NE(json.find("\"dc_ingest_queue\""), std::string::npos);
    EXPECT_NE(json.find("\"dc_sync\""), std::string::npos);
    EXPECT_NE(json.find("\"preprepare\""), std::string::npos);
}

TEST(FleetTrace, SameSeedSerializesByteIdentically) {
    EXPECT_EQ(run_traced(), run_traced());
}

TEST(FleetTrace, OffsetSinkRemapsAllButNoNode) {
    trace::Tracer tracer(true);
    trace::OffsetSink offset(tracer, 2000);
    offset.event(3, millis_f(1.0), trace::Phase::kDecide, 7, 0);
    offset.event(kNoNode, millis_f(2.0), trace::Phase::kDecide, 8, 0);
    const std::string json = tracer.chrome_json();
    EXPECT_NE(json.find("\"pid\":2003"), std::string::npos);
    // The "no node" sentinel stays global instead of landing at 2000+...
    EXPECT_EQ(json.find("\"pid\":2000"), std::string::npos);
}

}  // namespace
}  // namespace zc::fleet
