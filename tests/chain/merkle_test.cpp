#include <gtest/gtest.h>

#include "chain/merkle.hpp"
#include "common/rng.hpp"
#include "crypto/sha256.hpp"

namespace zc::chain {
namespace {

std::vector<crypto::Digest> make_leaves(std::size_t n) {
    std::vector<crypto::Digest> leaves;
    Rng rng(static_cast<std::uint64_t>(n) + 1);
    for (std::size_t i = 0; i < n; ++i) {
        const Bytes data = rng.bytes(16);
        leaves.push_back(merkle_leaf(data));
    }
    return leaves;
}

TEST(Merkle, EmptyRootIsDefined) {
    const auto a = merkle_root({});
    const auto b = merkle_root({});
    EXPECT_EQ(a, b);
}

TEST(Merkle, SingleLeafRootIsLeaf) {
    const auto leaves = make_leaves(1);
    EXPECT_EQ(merkle_root(leaves), leaves[0]);
}

TEST(Merkle, RootDependsOnContent) {
    auto leaves = make_leaves(4);
    const auto root = merkle_root(leaves);
    leaves[2][0] ^= 1;
    EXPECT_NE(merkle_root(leaves), root);
}

TEST(Merkle, RootDependsOnOrder) {
    auto leaves = make_leaves(4);
    const auto root = merkle_root(leaves);
    std::swap(leaves[0], leaves[1]);
    EXPECT_NE(merkle_root(leaves), root);
}

TEST(Merkle, LeafDomainSeparated) {
    const Bytes data = to_bytes("x");
    // leaf hash != plain sha256
    EXPECT_NE(merkle_leaf(data), crypto::sha256(data));
}

class MerkleProofTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MerkleProofTest, AllProofsVerify) {
    const std::size_t n = GetParam();
    const auto leaves = make_leaves(n);
    const auto root = merkle_root(leaves);
    for (std::size_t i = 0; i < n; ++i) {
        const auto proof = merkle_prove(leaves, i);
        EXPECT_TRUE(merkle_verify(root, n, leaves[i], proof)) << "leaf " << i;
    }
}

TEST_P(MerkleProofTest, WrongLeafFails) {
    const std::size_t n = GetParam();
    const auto leaves = make_leaves(n);
    const auto root = merkle_root(leaves);
    auto tampered = leaves[0];
    tampered[5] ^= 0xff;
    const auto proof = merkle_prove(leaves, 0);
    EXPECT_FALSE(merkle_verify(root, n, tampered, proof));
}

TEST_P(MerkleProofTest, WrongIndexFails) {
    const std::size_t n = GetParam();
    if (n < 2) return;
    const auto leaves = make_leaves(n);
    const auto root = merkle_root(leaves);
    auto proof = merkle_prove(leaves, 0);
    proof.index = 1;
    EXPECT_FALSE(merkle_verify(root, n, leaves[0], proof));
}

INSTANTIATE_TEST_SUITE_P(TreeSizes, MerkleProofTest,
                         ::testing::Values(1, 2, 3, 4, 5, 7, 8, 9, 10, 16, 31, 33));

TEST(MerkleProof, OutOfRangeProveThrows) {
    const auto leaves = make_leaves(3);
    EXPECT_THROW(merkle_prove(leaves, 3), std::out_of_range);
}

TEST(MerkleProof, TruncatedProofFails) {
    const auto leaves = make_leaves(8);
    const auto root = merkle_root(leaves);
    auto proof = merkle_prove(leaves, 2);
    proof.siblings.pop_back();
    EXPECT_FALSE(merkle_verify(root, 8, leaves[2], proof));
}

TEST(MerkleProof, OverlongProofFails) {
    const auto leaves = make_leaves(8);
    const auto root = merkle_root(leaves);
    auto proof = merkle_prove(leaves, 2);
    proof.siblings.push_back(proof.siblings.back());
    EXPECT_FALSE(merkle_verify(root, 8, leaves[2], proof));
}

TEST(MerkleProof, ZeroLeafCountFails) {
    const auto leaves = make_leaves(1);
    const auto proof = merkle_prove(leaves, 0);
    EXPECT_FALSE(merkle_verify(merkle_root(leaves), 0, leaves[0], proof));
}

}  // namespace
}  // namespace zc::chain
