#include <gtest/gtest.h>

#include "chain/block.hpp"
#include "common/rng.hpp"

namespace zc::chain {
namespace {

std::vector<LoggedRequest> make_requests(std::size_t n, SeqNo first_seq = 1) {
    std::vector<LoggedRequest> reqs;
    Rng rng(n + 17);
    for (std::size_t i = 0; i < n; ++i) {
        LoggedRequest r;
        r.payload = rng.bytes(64);
        r.origin = static_cast<NodeId>(i % 4);
        r.seq = first_seq + i;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

TEST(Block, BuildComputesValidRoot) {
    const Block b = Block::build(1, genesis_parent(), 100, make_requests(10));
    EXPECT_TRUE(b.payload_valid());
    EXPECT_EQ(b.header.request_count, 10u);
}

TEST(Block, TamperedRequestDetected) {
    Block b = Block::build(1, genesis_parent(), 100, make_requests(10));
    b.requests[4].payload[0] ^= 1;
    EXPECT_FALSE(b.payload_valid());
}

TEST(Block, ReorderedRequestsDetected) {
    Block b = Block::build(1, genesis_parent(), 100, make_requests(10));
    std::swap(b.requests[0], b.requests[1]);
    EXPECT_FALSE(b.payload_valid());
}

TEST(Block, RemovedRequestDetected) {
    Block b = Block::build(1, genesis_parent(), 100, make_requests(10));
    b.requests.pop_back();
    EXPECT_FALSE(b.payload_valid());
}

TEST(Block, ChangedOriginDetected) {
    Block b = Block::build(1, genesis_parent(), 100, make_requests(10));
    b.requests[0].origin = 99;
    EXPECT_FALSE(b.payload_valid());
}

TEST(Block, HashChangesWithAnyHeaderField) {
    const Block base = Block::build(1, genesis_parent(), 100, make_requests(3));
    const auto h0 = base.hash();

    Block b = base;
    b.header.height = 2;
    EXPECT_NE(b.hash(), h0);

    b = base;
    b.header.timestamp_ns = 101;
    EXPECT_NE(b.hash(), h0);

    b = base;
    b.header.parent_hash[0] ^= 1;
    EXPECT_NE(b.hash(), h0);

    b = base;
    b.header.payload_root[0] ^= 1;
    EXPECT_NE(b.hash(), h0);
}

TEST(Block, EncodeDecodeRoundTrip) {
    const Block b = Block::build(7, genesis_parent(), 12345, make_requests(10));
    const Bytes enc = codec::encode_to_bytes(b);
    const Block back = codec::decode_from_bytes<Block>(enc);
    EXPECT_EQ(back, b);
    EXPECT_EQ(back.hash(), b.hash());
    EXPECT_TRUE(back.payload_valid());
}

TEST(Block, GenesisIsStable) {
    const Block a = make_genesis();
    const Block b = make_genesis();
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_EQ(a.header.height, 0u);
    EXPECT_TRUE(a.payload_valid());
}

TEST(Block, EmptyBlockValid) {
    const Block b = Block::build(1, genesis_parent(), 5, {});
    EXPECT_TRUE(b.payload_valid());
}

TEST(LoggedRequest, DigestBindsAllFields) {
    LoggedRequest r;
    r.payload = to_bytes("data");
    r.origin = 1;
    r.seq = 2;
    const auto d0 = r.digest();

    LoggedRequest r2 = r;
    r2.origin = 3;
    EXPECT_NE(r2.digest(), d0);

    LoggedRequest r3 = r;
    r3.seq = 9;
    EXPECT_NE(r3.digest(), d0);
}

}  // namespace
}  // namespace zc::chain
