#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "chain/block_store.hpp"
#include "common/rng.hpp"

namespace zc::chain {
namespace {

std::vector<LoggedRequest> make_requests(std::size_t n, std::uint64_t salt) {
    std::vector<LoggedRequest> reqs;
    Rng rng(salt);
    for (std::size_t i = 0; i < n; ++i) {
        LoggedRequest r;
        r.payload = rng.bytes(48);
        r.origin = 0;
        r.seq = salt * 100 + i;
        reqs.push_back(std::move(r));
    }
    return reqs;
}

void extend(BlockStore& store, int blocks) {
    for (int i = 0; i < blocks; ++i) {
        const Height h = store.head_height() + 1;
        store.append(Block::build(h, store.head_hash(), static_cast<std::int64_t>(h),
                                  make_requests(5, h)));
    }
}

TEST(BlockStore, StartsWithGenesis) {
    BlockStore store;
    EXPECT_EQ(store.head_height(), 0u);
    EXPECT_EQ(store.base_height(), 0u);
    ASSERT_NE(store.get(0), nullptr);
    EXPECT_EQ(store.get(0)->hash(), make_genesis().hash());
}

TEST(BlockStore, AppendExtendsHead) {
    BlockStore store;
    extend(store, 3);
    EXPECT_EQ(store.head_height(), 3u);
    EXPECT_TRUE(store.validate(0, 3));
}

TEST(BlockStore, RejectsWrongHeight) {
    BlockStore store;
    EXPECT_THROW(store.append(Block::build(5, store.head_hash(), 0, {})),
                 std::invalid_argument);
}

TEST(BlockStore, RejectsWrongParent) {
    BlockStore store;
    crypto::Digest bogus{};
    EXPECT_THROW(store.append(Block::build(1, bogus, 0, {})), std::invalid_argument);
}

TEST(BlockStore, RejectsBadPayloadRoot) {
    BlockStore store;
    Block b = Block::build(1, store.head_hash(), 0, make_requests(3, 1));
    b.requests[0].payload[0] ^= 1;
    EXPECT_THROW(store.append(std::move(b)), std::invalid_argument);
}

TEST(BlockStore, ValidateDetectsRangeErrors) {
    BlockStore store;
    extend(store, 5);
    EXPECT_TRUE(store.validate(0, 5));
    EXPECT_FALSE(store.validate(3, 2));   // inverted
    EXPECT_FALSE(store.validate(0, 99));  // beyond head
}

TEST(BlockStore, PruneRemovesOldBlocksKeepsBase) {
    BlockStore store;
    extend(store, 10);
    store.prune_to(6, to_bytes("delete-cert"));
    EXPECT_EQ(store.base_height(), 6u);
    EXPECT_EQ(store.get(5), nullptr);
    EXPECT_NE(store.get(6), nullptr);
    EXPECT_NE(store.get(10), nullptr);
    EXPECT_TRUE(store.validate(6, 10));
    EXPECT_FALSE(store.validate(0, 10));  // below base

    ASSERT_TRUE(store.anchor().has_value());
    EXPECT_EQ(store.anchor()->base_height, 6u);
    EXPECT_EQ(store.anchor()->base_hash, store.get(6)->hash());
    EXPECT_EQ(store.anchor()->evidence, to_bytes("delete-cert"));
}

TEST(BlockStore, PruneBeyondHeadThrows) {
    BlockStore store;
    extend(store, 2);
    EXPECT_THROW(store.prune_to(5, {}), std::invalid_argument);
}

TEST(BlockStore, DoublePruneBackwardIsNoop) {
    BlockStore store;
    extend(store, 10);
    store.prune_to(8, to_bytes("c1"));
    store.prune_to(4, to_bytes("c2"));  // older than base: ignored
    EXPECT_EQ(store.base_height(), 8u);
    EXPECT_EQ(store.anchor()->evidence, to_bytes("c1"));
}

TEST(BlockStore, PruneReducesStoredBytes) {
    BlockStore store;
    extend(store, 10);
    const std::size_t before = store.stored_bytes();
    store.prune_to(9, {});
    EXPECT_LT(store.stored_bytes(), before);
}

TEST(BlockStore, TrimBodiesKeepsHeaders) {
    BlockStore store;
    extend(store, 6);
    const std::size_t before = store.stored_bytes();
    store.trim_bodies_to(4);
    EXPECT_LT(store.stored_bytes(), before);
    EXPECT_EQ(store.get(3), nullptr);
    EXPECT_NE(store.header(3), nullptr);
    EXPECT_NE(store.get(5), nullptr);
    // Chain still validates: links intact, trimmed bodies skipped.
    EXPECT_TRUE(store.validate(0, 6));
}

TEST(BlockStore, RangeSkipsTrimmed) {
    BlockStore store;
    extend(store, 6);
    store.trim_bodies_to(2);
    const auto blocks = store.range(0, 6);
    EXPECT_EQ(blocks.size(), 4u);  // heights 3..6
    EXPECT_EQ(blocks.front().header.height, 3u);
}

TEST(BlockStore, GaugeTracksBytes) {
    metrics::MemoryTracker tracker;
    metrics::Gauge* gauge = tracker.gauge("chain");
    BlockStore store(gauge);
    extend(store, 4);
    EXPECT_EQ(static_cast<std::size_t>(gauge->value()), store.stored_bytes());
    store.prune_to(3, {});
    EXPECT_EQ(static_cast<std::size_t>(gauge->value()), store.stored_bytes());
    EXPECT_EQ(tracker.underflows(), 0u);
}

class PersistentStoreTest : public ::testing::Test {
protected:
    void SetUp() override {
        dir_ = std::filesystem::temp_directory_path() /
               ("zc_store_test_" + std::to_string(::getpid()));
        std::filesystem::remove_all(dir_);
    }
    void TearDown() override { std::filesystem::remove_all(dir_); }
    std::filesystem::path dir_;
};

TEST_F(PersistentStoreTest, SurvivesReload) {
    {
        BlockStore store(nullptr, dir_);
        extend(store, 5);
    }
    BlockStore restored = BlockStore::load(dir_);
    EXPECT_EQ(restored.head_height(), 5u);
    EXPECT_TRUE(restored.validate(0, 5));
}

TEST_F(PersistentStoreTest, PruneRemovesFilesAndAnchorPersists) {
    {
        BlockStore store(nullptr, dir_);
        extend(store, 8);
        store.prune_to(5, to_bytes("evidence"));
    }
    BlockStore restored = BlockStore::load(dir_);
    EXPECT_EQ(restored.base_height(), 5u);
    EXPECT_EQ(restored.head_height(), 8u);
    EXPECT_EQ(restored.get(4), nullptr);
    ASSERT_TRUE(restored.anchor().has_value());
    EXPECT_EQ(restored.anchor()->base_height, 5u);
    EXPECT_EQ(restored.anchor()->evidence, to_bytes("evidence"));
    EXPECT_TRUE(restored.validate(5, 8));
}

TEST_F(PersistentStoreTest, AppendAfterReloadContinuesChain) {
    {
        BlockStore store(nullptr, dir_);
        extend(store, 3);
    }
    BlockStore restored = BlockStore::load(dir_);
    extend(restored, 2);
    EXPECT_EQ(restored.head_height(), 5u);
    EXPECT_TRUE(restored.validate(0, 5));
}

TEST_F(PersistentStoreTest, LoadTruncatesTornFinalBlock) {
    std::filesystem::path last;
    {
        BlockStore store(nullptr, dir_);
        extend(store, 5);
    }
    // Tear the newest block file in half (power loss mid-append on a
    // filesystem without atomic rename would look like this).
    for (const auto& e : std::filesystem::directory_iterator(dir_)) {
        if (e.path().filename().string().rfind("block_", 0) == 0 &&
            (last.empty() || e.path().filename() > last.filename())) {
            last = e.path();
        }
    }
    ASSERT_FALSE(last.empty());
    std::filesystem::resize_file(last, std::filesystem::file_size(last) / 2);

    RecoveryReport report;
    BlockStore restored = BlockStore::load(dir_, nullptr, &report);
    EXPECT_EQ(restored.head_height(), 4u);
    EXPECT_TRUE(restored.validate(0, 4));
    EXPECT_FALSE(report.clean());
    EXPECT_FALSE(report.unrepairable);
    EXPECT_EQ(report.blocks_discarded, 1u);
    EXPECT_EQ(report.recovered_head, 4u);
    ASSERT_EQ(report.discarded_files.size(), 1u);
    EXPECT_EQ(report.discarded_files[0], last.string());
    // The corrupt file stays on disk for offline repair/forensics.
    EXPECT_TRUE(std::filesystem::exists(last));

    // Appending continues from the recovered head.
    extend(restored, 1);
    EXPECT_EQ(restored.head_height(), 5u);
}

TEST_F(PersistentStoreTest, LoadDiscardsBitFlippedBlockAndSuffix) {
    {
        BlockStore store(nullptr, dir_);
        extend(store, 6);
    }
    // Flip one bit in the middle of block 4's body: the checksum trailer
    // catches it, and blocks 5..6 no longer link to a trusted parent.
    const std::filesystem::path victim = dir_ / "block_000000000004.bin";
    ASSERT_TRUE(std::filesystem::exists(victim));
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    char byte;
    f.seekg(10);
    f.get(byte);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(10);
    f.put(byte);
    f.close();

    RecoveryReport report;
    BlockStore restored = BlockStore::load(dir_, nullptr, &report);
    EXPECT_EQ(restored.head_height(), 3u);
    EXPECT_TRUE(restored.validate(0, 3));
    EXPECT_EQ(report.blocks_discarded, 3u);  // 4 (corrupt) + 5, 6 (unlinked)
    EXPECT_EQ(report.recovered_head, 3u);
    EXPECT_FALSE(report.unrepairable);
}

TEST_F(PersistentStoreTest, LoadIgnoresLeftoverTmpFile) {
    {
        BlockStore store(nullptr, dir_);
        extend(store, 3);
    }
    // A crash between tmp-write and rename leaves a .tmp behind; load
    // must never read it as a valid block.
    std::ofstream(dir_ / "block_000000000004.bin.tmp", std::ios::binary) << "partial";

    RecoveryReport report;
    BlockStore restored = BlockStore::load(dir_, nullptr, &report);
    EXPECT_EQ(restored.head_height(), 3u);
    EXPECT_EQ(report.blocks_discarded, 0u);
    ASSERT_EQ(report.discarded_files.size(), 1u);
    EXPECT_NE(report.discarded_files[0].find(".tmp"), std::string::npos);
}

TEST_F(PersistentStoreTest, LoadReportsUnrepairableBaseCorruption) {
    {
        BlockStore store(nullptr, dir_);
        extend(store, 2);
    }
    // Corrupt every block file: nothing trustworthy remains.
    for (const auto& e : std::filesystem::directory_iterator(dir_)) {
        if (e.path().filename().string().rfind("block_", 0) != 0) continue;
        std::ofstream(e.path(), std::ios::binary | std::ios::trunc) << "garbage";
    }
    RecoveryReport report;
    BlockStore restored = BlockStore::load(dir_, nullptr, &report);
    EXPECT_TRUE(report.unrepairable);
    EXPECT_FALSE(report.clean());
    // The in-memory store falls back to genesis but must not clobber the
    // evidence on disk.
    EXPECT_EQ(restored.head_height(), 0u);
    std::size_t block_files = 0;
    for (const auto& e : std::filesystem::directory_iterator(dir_)) {
        if (e.path().filename().string().rfind("block_", 0) == 0) ++block_files;
    }
    EXPECT_EQ(block_files, 3u);  // 0, 1, 2 all untouched
}

TEST(BlockStore, RebaseAdoptsPeerPruneBase) {
    // The peer recorded 8 blocks and pruned below 5 after an export.
    BlockStore peer;
    extend(peer, 8);
    peer.prune_to(5, Bytes{0xde, 0x1e});
    ASSERT_NE(peer.get(5), nullptr);

    // A wiped rejoiner adopts the peer's base block and continues from it.
    BlockStore rejoiner;
    rejoiner.rebase(*peer.get(5), Bytes{0xde, 0x1e});
    EXPECT_EQ(rejoiner.base_height(), 5u);
    EXPECT_EQ(rejoiner.head_height(), 5u);
    EXPECT_EQ(rejoiner.head_hash(), peer.get(5)->hash());
    ASSERT_TRUE(rejoiner.anchor().has_value());
    EXPECT_EQ(rejoiner.anchor()->base_height, 5u);
    EXPECT_EQ(rejoiner.anchor()->base_hash, peer.get(5)->hash());
    EXPECT_EQ(rejoiner.anchor()->evidence, (Bytes{0xde, 0x1e}));
    EXPECT_EQ(rejoiner.get(0), nullptr);  // genesis discarded with the prefix

    // Normal appends continue the adopted chain.
    for (Height h = 6; h <= 8; ++h) rejoiner.append(*peer.get(h));
    EXPECT_EQ(rejoiner.head_hash(), peer.head_hash());
    EXPECT_TRUE(rejoiner.validate(5, 8));
}

TEST(BlockStore, RebaseRejectsBaseAtOrBelowHead) {
    BlockStore peer;
    extend(peer, 4);
    BlockStore store;
    extend(store, 4);
    EXPECT_THROW(store.rebase(*peer.get(3), Bytes{}), std::invalid_argument);
    EXPECT_THROW(store.rebase(*peer.get(4), Bytes{}), std::invalid_argument);
}

TEST(BlockStore, RebasePersistsAcrossReload) {
    const auto dir = std::filesystem::temp_directory_path() / "zc_rebase_store";
    std::filesystem::remove_all(dir);

    BlockStore peer;
    extend(peer, 6);
    peer.prune_to(4, Bytes{0x01});
    {
        BlockStore store(nullptr, dir);
        store.rebase(*peer.get(4), Bytes{0x01});
        store.append(*peer.get(5));
    }
    RecoveryReport report;
    BlockStore reloaded = BlockStore::load(dir, nullptr, &report);
    EXPECT_TRUE(report.clean());
    EXPECT_EQ(reloaded.base_height(), 4u);
    EXPECT_EQ(reloaded.head_height(), 5u);
    EXPECT_EQ(reloaded.head_hash(), peer.get(5)->hash());
    ASSERT_TRUE(reloaded.anchor().has_value());
    EXPECT_EQ(reloaded.anchor()->base_height, 4u);
    std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace zc::chain
