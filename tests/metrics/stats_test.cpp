#include <gtest/gtest.h>

#include "metrics/stats.hpp"

namespace zc::metrics {
namespace {

TEST(Summary, BasicStatistics) {
    Summary s;
    for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(v);
    EXPECT_EQ(s.count(), 5u);
    EXPECT_DOUBLE_EQ(s.mean(), 3.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 5.0);
    EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Summary, EmptyIsSafe) {
    Summary s;
    EXPECT_TRUE(s.empty());
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.min(), 0.0);
    EXPECT_EQ(s.max(), 0.0);
    EXPECT_THROW(s.percentile(0.5), std::logic_error);
}

TEST(Summary, Percentiles) {
    Summary s;
    for (int i = 1; i <= 100; ++i) s.add(i);
    EXPECT_NEAR(s.percentile(0.0), 1.0, 1e-9);
    EXPECT_NEAR(s.percentile(1.0), 100.0, 1e-9);
    EXPECT_NEAR(s.percentile(0.5), 50.5, 1e-9);
    EXPECT_NEAR(s.percentile(0.99), 99.01, 1e-6);
}

TEST(Summary, PercentileOutOfRangeThrows) {
    Summary s;
    s.add(1.0);
    EXPECT_THROW(s.percentile(-0.1), std::invalid_argument);
    EXPECT_THROW(s.percentile(1.1), std::invalid_argument);
}

TEST(Summary, PercentileThenAddStillCorrect) {
    Summary s;
    s.add(3.0);
    s.add(1.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 3.0);
    s.add(5.0);
    EXPECT_DOUBLE_EQ(s.percentile(1.0), 5.0);
}

TEST(Summary, EmptyStddevIsZero) {
    Summary s;
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, SingleSampleStddevIsZero) {
    // n-1 in the denominator: one sample has no spread, and must not
    // divide by zero.
    Summary s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.5), 42.0);
}

TEST(Summary, MergeWithEmptyIsIdentity) {
    Summary s, empty;
    s.add(1.0);
    s.add(2.0);
    s.merge(empty);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 1.5);

    empty.merge(s);
    EXPECT_EQ(empty.count(), 2u);
    EXPECT_DOUBLE_EQ(empty.mean(), 1.5);
}

TEST(Summary, MergeCombines) {
    Summary a, b;
    a.add(1.0);
    a.add(2.0);
    b.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
}

TEST(LatencyRecorder, RecordsMillis) {
    LatencyRecorder r;
    r.record(milliseconds(14));
    r.record(microseconds(500));
    EXPECT_DOUBLE_EQ(r.millis().max(), 14.0);
    EXPECT_DOUBLE_EQ(r.millis().min(), 0.5);
}

TEST(Series, StoresPoints) {
    Series s;
    s.add(milliseconds(1500), 42.0);
    ASSERT_EQ(s.points().size(), 1u);
    EXPECT_DOUBLE_EQ(s.points()[0].t_seconds, 1.5);
    EXPECT_DOUBLE_EQ(s.points()[0].value, 42.0);
}

}  // namespace
}  // namespace zc::metrics
