#include <gtest/gtest.h>

#include "metrics/memory.hpp"

namespace zc::metrics {
namespace {

TEST(MemoryTracker, GaugeByNameIsStable) {
    MemoryTracker t;
    Gauge* a = t.gauge("queue");
    Gauge* b = t.gauge("queue");
    EXPECT_EQ(a, b);
    EXPECT_NE(a, t.gauge("chain"));
}

TEST(MemoryTracker, TotalsIncludeBase) {
    MemoryTracker t;
    EXPECT_EQ(t.total_bytes(), MemoryTracker::kProcessBaseBytes);
    t.gauge("queue")->add(1000);
    EXPECT_EQ(t.total_bytes(), MemoryTracker::kProcessBaseBytes + 1000);
}

TEST(MemoryTracker, GaugeAddAndRemove) {
    MemoryTracker t;
    Gauge* g = t.gauge("g");
    g->add(500);
    g->add(-200);
    EXPECT_EQ(g->value(), 300);
    EXPECT_EQ(g->underflows(), 0u);
}

TEST(MemoryTracker, UnderflowClampsAndCounts) {
    MemoryTracker t;
    Gauge* g = t.gauge("g");
    g->add(-10);
    EXPECT_EQ(g->value(), 0);
    EXPECT_EQ(g->underflows(), 1u);
    EXPECT_EQ(t.underflows(), 1u);
}

TEST(MemoryTracker, SamplesInMegabytes) {
    MemoryTracker t;
    t.gauge("g")->add(1 << 20);
    t.sample();
    const double expected =
        static_cast<double>(MemoryTracker::kProcessBaseBytes + (1 << 20)) / (1024.0 * 1024.0);
    EXPECT_DOUBLE_EQ(t.samples_mb().max(), expected);
}

TEST(MemoryTracker, PeakTracksHighWater) {
    MemoryTracker t;
    Gauge* g = t.gauge("g");
    g->add(10 << 20);
    t.sample();
    g->add(-(10 << 20));
    t.sample();
    EXPECT_GT(t.samples_mb().max(), t.samples_mb().min());
}

}  // namespace
}  // namespace zc::metrics
