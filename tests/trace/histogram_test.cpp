#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "metrics/stats.hpp"
#include "trace/histogram.hpp"

namespace zc::trace {
namespace {

TEST(Histogram, EmptyIsSafe) {
    Histogram h;
    EXPECT_TRUE(h.empty());
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(0.5), 0.0);  // no throw, unlike Summary
}

TEST(Histogram, SmallValuesAreExact) {
    // Values below kSubCount land in unit-width buckets: every statistic
    // is exact, not approximate.
    Histogram h;
    for (std::uint64_t v = 0; v < Histogram::kSubCount; ++v) h.record(v);
    EXPECT_EQ(h.count(), 64u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 63u);
    EXPECT_DOUBLE_EQ(h.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(h.percentile(1.0), 63.0);
    EXPECT_NEAR(h.percentile(0.5), 31.5, 0.5);
}

TEST(Histogram, BucketIndexIsMonotonic) {
    unsigned last = 0;
    for (std::uint64_t v : {0ull, 1ull, 63ull, 64ull, 65ull, 127ull, 128ull, 1000ull, 65536ull,
                            1'000'000'000ull, ~0ull}) {
        const unsigned idx = Histogram::bucket_index(v);
        ASSERT_LT(idx, Histogram::kBucketCount);
        EXPECT_GE(idx, last) << "value " << v;
        last = idx;
    }
}

TEST(Histogram, BucketMidpointStaysWithinRelativeError) {
    // The midpoint of the bucket a value falls into must be within 1/128
    // of the value itself — the advertised resolution.
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const std::uint64_t v = rng.next() >> (rng.next_below(40));
        if (v == 0) continue;
        const double mid = Histogram::bucket_midpoint(Histogram::bucket_index(v));
        const double rel = std::abs(mid - static_cast<double>(v)) / static_cast<double>(v);
        EXPECT_LE(rel, 1.0 / 128.0) << "value " << v << " midpoint " << mid;
    }
}

TEST(Histogram, PercentilesTrackSummaryOnRandomData) {
    // Cross-check against the exact (sample-retaining) Summary on a spread
    // of magnitudes: log-bucketing must stay within ~1 % relative error.
    Rng rng(42);
    Histogram h;
    metrics::Summary exact;
    for (int i = 0; i < 20000; ++i) {
        // Mix of microsecond- to second-scale "latencies" in nanoseconds.
        const std::uint64_t v = 1000 + (rng.next() % 1'000'000'000ull);
        h.record(v);
        exact.add(static_cast<double>(v));
    }
    for (double q : {0.1, 0.25, 0.5, 0.9, 0.99, 0.999}) {
        const double approx = h.percentile(q);
        const double truth = exact.percentile(q);
        EXPECT_NEAR(approx / truth, 1.0, 0.012) << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(h.percentile(0.0), static_cast<double>(h.min()));
    EXPECT_DOUBLE_EQ(h.percentile(1.0), static_cast<double>(h.max()));
    EXPECT_NEAR(h.mean() / exact.mean(), 1.0, 1e-9);  // mean uses the exact sum
}

TEST(Histogram, MergeEqualsRecordingIntoOne) {
    Rng rng(3);
    Histogram a, b, both;
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t v = rng.next() % 1'000'000;
        if (i % 2 == 0) {
            a.record(v);
        } else {
            b.record(v);
        }
        both.record(v);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), both.count());
    EXPECT_EQ(a.min(), both.min());
    EXPECT_EQ(a.max(), both.max());
    EXPECT_EQ(a.sum(), both.sum());
    for (double q : {0.25, 0.5, 0.75, 0.99}) {
        EXPECT_DOUBLE_EQ(a.percentile(q), both.percentile(q)) << "q=" << q;
    }
}

TEST(Histogram, WeightedRecord) {
    Histogram h;
    h.record(100, 5);
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 500u);
    EXPECT_EQ(h.min(), 100u);
    EXPECT_EQ(h.max(), 100u);
}

}  // namespace
}  // namespace zc::trace
