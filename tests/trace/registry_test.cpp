#include <gtest/gtest.h>

#include "trace/registry.hpp"

namespace zc::trace {
namespace {

TEST(MetricsRegistry, PointersAreStableAndShared) {
    MetricsRegistry reg;
    Counter* c1 = reg.counter(0, "decide");
    c1->add(3);
    // Creating unrelated metrics must not invalidate or duplicate c1.
    for (int i = 0; i < 100; ++i) reg.counter(1, "x" + std::to_string(i));
    Counter* c2 = reg.counter(0, "decide");
    EXPECT_EQ(c1, c2);
    EXPECT_EQ(c2->value(), 3u);
}

TEST(MetricsRegistry, GaugeSetAndAdd) {
    MetricsRegistry reg;
    Gauge* g = reg.gauge(2, "queue");
    g->set(10);
    g->add(-4);
    EXPECT_EQ(reg.gauge(2, "queue")->value(), 6);
}

TEST(MetricsRegistry, MergedHistogramSpansNodes) {
    MetricsRegistry reg;
    reg.histogram(0, "e2e_ns")->record(1000);
    reg.histogram(1, "e2e_ns")->record(3000);
    reg.histogram(2, "other_ns")->record(99);
    const Histogram merged = reg.merged_histogram("e2e_ns");
    EXPECT_EQ(merged.count(), 2u);
    EXPECT_EQ(merged.min(), 1000u);
    EXPECT_EQ(merged.max(), 3000u);
}

TEST(MetricsRegistry, JsonIsDeterministicAndComplete) {
    const auto build = [] {
        MetricsRegistry reg;
        reg.counter(1, "b")->add(2);
        reg.counter(0, "a")->add(1);
        reg.gauge(0, "g")->set(-5);
        reg.histogram(0, "h_ns")->record(1500);
        return reg.json();
    };
    const std::string j1 = build();
    const std::string j2 = build();
    EXPECT_EQ(j1, j2);  // same construction order -> identical bytes

    // Insertion order must not matter either: keys serialize sorted.
    MetricsRegistry reversed;
    reversed.histogram(0, "h_ns")->record(1500);
    reversed.gauge(0, "g")->set(-5);
    reversed.counter(0, "a")->add(1);
    reversed.counter(1, "b")->add(2);
    EXPECT_EQ(reversed.json(), j1);

    EXPECT_NE(j1.find("\"counters\""), std::string::npos);
    EXPECT_NE(j1.find("\"0/a\":1"), std::string::npos);
    EXPECT_NE(j1.find("\"1/b\":2"), std::string::npos);
    EXPECT_NE(j1.find("\"gauges\""), std::string::npos);
    EXPECT_NE(j1.find("\"0/g\":-5"), std::string::npos);
    EXPECT_NE(j1.find("\"histograms\""), std::string::npos);
    EXPECT_NE(j1.find("\"0/h_ns\""), std::string::npos);
    EXPECT_NE(j1.find("\"count\":1"), std::string::npos);
}

TEST(MetricsRegistry, EmptyJson) {
    MetricsRegistry reg;
    const std::string j = reg.json();
    EXPECT_NE(j.find("\"counters\":{}"), std::string::npos);
    EXPECT_NE(j.find("\"gauges\":{}"), std::string::npos);
    EXPECT_NE(j.find("\"histograms\":{}"), std::string::npos);
}

}  // namespace
}  // namespace zc::trace
