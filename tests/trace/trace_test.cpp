#include <gtest/gtest.h>

#include "runtime/scenario.hpp"
#include "trace/trace.hpp"

namespace zc::trace {
namespace {

TimePoint at_ms(std::int64_t ms) { return TimePoint{ms * 1'000'000}; }

TEST(Tracer, AggregatesLifecyclePhases) {
    MetricsRegistry reg;
    Tracer tracer(/*capture_events=*/false, &reg);

    // One request through the pipeline on node 0: received at 10 ms,
    // proposed at 12 ms, decided at 20 ms, block persisted at 25 ms.
    tracer.event(0, at_ms(10), Phase::kBusReceive, 0xabc, 0);
    tracer.event(0, at_ms(12), Phase::kLayerPropose, 0xabc, 0);
    tracer.event(0, at_ms(20), Phase::kDecide, 0xabc, 0);
    tracer.event(0, at_ms(25), Phase::kBlockPersist, 1, 0);

    EXPECT_EQ(reg.merged_histogram("layer_wait_ns").sum(), 2'000'000u);
    EXPECT_EQ(reg.merged_histogram("ordering_ns").sum(), 8'000'000u);
    EXPECT_EQ(reg.merged_histogram("e2e_ns").sum(), 10'000'000u);
    EXPECT_EQ(reg.merged_histogram("persist_ns").sum(), 5'000'000u);
    EXPECT_EQ(reg.counters().at({0, "decide"})->value(), 1u);
}

TEST(Tracer, AggregatesViewChangeDuration) {
    MetricsRegistry reg;
    Tracer tracer(false, &reg);
    tracer.event(2, at_ms(100), Phase::kViewChangeStart, 1, 0);
    tracer.event(2, at_ms(150), Phase::kViewChangeStart, 2, 0);  // escalation, same episode
    tracer.event(2, at_ms(630), Phase::kNewView, 2, 0);
    const Histogram h = reg.merged_histogram("view_change_ns");
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 530'000'000u);  // measured from the episode's start
}

TEST(Tracer, SpanRecordsDurationHistogram) {
    MetricsRegistry reg;
    Tracer tracer(false, &reg);
    tracer.span(100, at_ms(1000), milliseconds(250), Phase::kExportRead, 1, 0);
    const Histogram h = reg.merged_histogram("export_read_ns");
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.sum(), 250'000'000u);
}

TEST(Tracer, ChromeJsonShape) {
    Tracer tracer(/*capture_events=*/true, nullptr);
    tracer.set_process_label(0, "node-0");
    tracer.event(0, at_ms(1), Phase::kBusReceive, 0x1234, 42);
    tracer.span(0, at_ms(2), milliseconds(3), Phase::kExportRead, 7, 0);
    const std::string json = tracer.chrome_json();
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.substr(json.size() - 2), "]}");
    EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
    EXPECT_NE(json.find("\"process_name\""), std::string::npos);
    EXPECT_NE(json.find("\"node-0\""), std::string::npos);
    EXPECT_NE(json.find("\"bus_receive\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);  // the span
    EXPECT_NE(json.find("\"dur\":3000.000"), std::string::npos);
    EXPECT_NE(json.find("\"arg\":42"), std::string::npos);
}

std::string traced_scenario_json(std::uint64_t seed) {
    runtime::ScenarioConfig cfg;
    cfg.seed = seed;
    cfg.warmup = milliseconds(200);
    cfg.duration = seconds(2);
    MetricsRegistry reg;
    Tracer tracer(/*capture_events=*/true, &reg);
    cfg.trace_sink = &tracer;
    for (NodeId i = 0; i < cfg.n; ++i) tracer.set_process_label(i, "node-" + std::to_string(i));
    runtime::Scenario s(cfg);
    s.run();
    EXPECT_GT(tracer.event_count(), 0u);
    EXPECT_GT(reg.merged_histogram("e2e_ns").count(), 0u);
    EXPECT_GT(reg.merged_histogram("layer_wait_ns").count(), 0u);
    EXPECT_GT(reg.merged_histogram("persist_ns").count(), 0u);
    return tracer.chrome_json();
}

TEST(Tracer, ScenarioTraceIsDeterministicPerSeed) {
    const std::string a = traced_scenario_json(11);
    const std::string b = traced_scenario_json(11);
    EXPECT_EQ(a, b);  // byte-identical across runs of the same seed

    const std::string c = traced_scenario_json(12);
    EXPECT_NE(a, c);  // and genuinely seed-dependent
}

TEST(Tracer, DisabledSinkLeavesScenarioUntraced) {
    runtime::ScenarioConfig cfg;
    cfg.warmup = milliseconds(200);
    cfg.duration = seconds(1);
    ASSERT_EQ(cfg.trace_sink, nullptr);
    runtime::Scenario s(cfg);
    s.run();  // must not crash; all trace points are null-guarded
    EXPECT_GT(s.report().logged_unique, 0u);
}

}  // namespace
}  // namespace zc::trace
