#include "health/monitor.hpp"

#include <gtest/gtest.h>

#include "health/flight_recorder.hpp"

namespace zc::health {
namespace {

NodeSample base_sample(NodeId node) {
    NodeSample s;
    s.node = node;
    s.alive = true;
    return s;
}

TEST(HealthMonitor, StalledViewFiresWithoutProgress) {
    MonitorConfig cfg;
    cfg.stalled_soft_timeouts = 3;
    HealthMonitor m(cfg);

    NodeSample s = base_sample(0);
    s.decided = 100;
    m.sample(TimePoint(1'000'000), {s});
    ASSERT_FALSE(m.alarmed());

    // Soft timers keep expiring, nothing commits.
    for (int i = 1; i <= 4; ++i) {
        s.soft_timeouts = static_cast<std::uint64_t>(i);
        m.sample(TimePoint((1 + i) * 1'000'000), {s});
    }
    ASSERT_TRUE(m.alarmed());
    EXPECT_EQ(m.alarms().size(), 1u);
    EXPECT_EQ(m.alarms()[0].kind, AlarmKind::kStalledView);
    EXPECT_EQ(m.alarms()[0].node, 0u);
    EXPECT_EQ(m.alarms()[0].first_seen, TimePoint(4'000'000));  // 3rd timeout
}

TEST(HealthMonitor, StalledViewSilentWhileProgressing) {
    HealthMonitor m;
    NodeSample s = base_sample(0);
    for (int i = 0; i < 20; ++i) {
        s.decided += 10;        // commit progress every sample...
        s.soft_timeouts += 5;   // ...despite frequent soft timeouts
        m.sample(TimePoint(i * 1'000'000), {s});
    }
    EXPECT_FALSE(m.alarmed());
}

TEST(HealthMonitor, StalledViewIgnoresDeadNodes) {
    HealthMonitor m;
    NodeSample s = base_sample(0);
    s.decided = 50;
    s.soft_timeouts = 2;
    m.sample(TimePoint(1'000'000), {s});
    s.alive = false;  // crashed: counters freeze, soft timeouts never reset
    s.soft_timeouts = 99;
    for (int i = 2; i <= 6; ++i) m.sample(TimePoint(i * 1'000'000), {s});
    EXPECT_FALSE(m.alarmed());
}

TEST(HealthMonitor, CheckpointLagFires) {
    MonitorConfig cfg;
    cfg.checkpoint_lag_blocks = 8;
    HealthMonitor m(cfg);

    NodeSample s = base_sample(2);
    s.decided = 1;  // progress, so stalled-view stays quiet
    s.head_height = 20;
    s.stable_height = 15;
    m.sample(TimePoint(1'000'000), {s});
    EXPECT_FALSE(m.alarmed());  // lag 5 <= 8

    s.decided = 2;
    s.head_height = 30;
    m.sample(TimePoint(2'000'000), {s});
    ASSERT_TRUE(m.alarmed());
    EXPECT_EQ(m.alarms()[0].kind, AlarmKind::kCheckpointLag);
    EXPECT_EQ(m.alarms()[0].node, 2u);
}

TEST(HealthMonitor, ExportBacklogNeedsArmingAndSustainedGrowth) {
    MonitorConfig cfg;
    cfg.export_backlog_samples = 3;
    cfg.export_backlog_min_blocks = 10;
    cfg.checkpoint_lag_blocks = 1u << 20;  // isolate the backlog rule

    const auto feed = [&](HealthMonitor& m) {
        NodeSample s = base_sample(0);
        s.base_height = 0;
        for (int i = 1; i <= 6; ++i) {
            s.decided += 10;
            s.head_height += 5;  // backlog grows every sample
            s.stable_height = s.head_height;
            m.sample(TimePoint(i * 1'000'000), {s});
        }
    };

    HealthMonitor unarmed(cfg);
    feed(unarmed);
    EXPECT_FALSE(unarmed.alarmed());  // no export infrastructure: silent

    cfg.watch_export = true;
    HealthMonitor armed(cfg);
    feed(armed);
    ASSERT_TRUE(armed.alarmed());
    EXPECT_EQ(armed.alarms()[0].kind, AlarmKind::kExportBacklog);
}

TEST(HealthMonitor, DivergenceFiresForTrailingNode) {
    MonitorConfig cfg;
    cfg.divergence_entries = 50;
    HealthMonitor m(cfg);

    NodeSample leader = base_sample(0);
    NodeSample trailer = base_sample(1);
    leader.decided = 100;
    trailer.decided = 80;
    m.sample(TimePoint(1'000'000), {leader, trailer});
    EXPECT_FALSE(m.alarmed());  // 20 behind: within bounds

    leader.decided = 200;
    trailer.decided = 120;
    m.sample(TimePoint(2'000'000), {leader, trailer});
    ASSERT_TRUE(m.alarmed());
    ASSERT_EQ(m.alarms().size(), 1u);
    EXPECT_EQ(m.alarms()[0].kind, AlarmKind::kDivergence);
    EXPECT_EQ(m.alarms()[0].node, 1u);
}

TEST(HealthMonitor, AlarmsLatchPerNodeAndKind) {
    MonitorConfig cfg;
    cfg.stalled_soft_timeouts = 1;
    HealthMonitor m(cfg);

    NodeSample s = base_sample(0);
    s.decided = 10;
    m.sample(TimePoint(1'000'000), {s});
    for (int i = 2; i <= 10; ++i) {
        s.soft_timeouts += 2;  // keeps exceeding the threshold every sample
        m.sample(TimePoint(i * 1'000'000), {s});
    }
    EXPECT_EQ(m.alarms().size(), 1u);  // latched: one alarm, not nine
}

TEST(HealthMonitor, AlarmsMirrorToRecorderAndHook) {
    MonitorConfig cfg;
    cfg.stalled_soft_timeouts = 1;
    HealthMonitor m(cfg);
    FlightRecorder recorder(8);
    m.set_flight_recorder(&recorder);
    int hook_calls = 0;
    m.set_alarm_hook([&](const Alarm& a) {
        ++hook_calls;
        EXPECT_EQ(a.kind, AlarmKind::kStalledView);
    });

    NodeSample s = base_sample(0);
    s.decided = 10;
    m.sample(TimePoint(1'000'000), {s});
    s.soft_timeouts = 2;
    m.sample(TimePoint(2'000'000), {s});

    EXPECT_EQ(hook_calls, 1);
    const auto events = recorder.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, FlightEventKind::kAlarm);
    EXPECT_NE(events[0].detail.find("stalled_view"), std::string::npos);
}

TEST(HealthMonitor, JsonIsDeterministic) {
    const auto run = [] {
        MonitorConfig cfg;
        cfg.stalled_soft_timeouts = 1;
        HealthMonitor m(cfg);
        NodeSample s = base_sample(0);
        s.decided = 10;
        m.sample(TimePoint(1'000'000), {s});
        s.soft_timeouts = 3;
        m.sample(TimePoint(2'000'000), {s});
        return m.json();
    };
    const std::string a = run();
    EXPECT_EQ(a, run());
    EXPECT_NE(a.find("\"alarms\":["), std::string::npos);
    EXPECT_NE(a.find("\"samples\":2"), std::string::npos);
}

}  // namespace
}  // namespace zc::health
