#include "health/monitor.hpp"

#include <gtest/gtest.h>

#include "health/flight_recorder.hpp"

namespace zc::health {
namespace {

NodeSample base_sample(NodeId node) {
    NodeSample s;
    s.node = node;
    s.alive = true;
    return s;
}

TEST(HealthMonitor, StalledViewFiresWithoutProgress) {
    MonitorConfig cfg;
    cfg.stalled_soft_timeouts = 3;
    HealthMonitor m(cfg);

    NodeSample s = base_sample(0);
    s.decided = 100;
    m.sample(TimePoint(1'000'000), {s});
    ASSERT_FALSE(m.alarmed());

    // Soft timers keep expiring, nothing commits.
    for (int i = 1; i <= 4; ++i) {
        s.soft_timeouts = static_cast<std::uint64_t>(i);
        m.sample(TimePoint((1 + i) * 1'000'000), {s});
    }
    ASSERT_TRUE(m.alarmed());
    EXPECT_EQ(m.alarms().size(), 1u);
    EXPECT_EQ(m.alarms()[0].kind, AlarmKind::kStalledView);
    EXPECT_EQ(m.alarms()[0].node, 0u);
    EXPECT_EQ(m.alarms()[0].first_seen, TimePoint(4'000'000));  // 3rd timeout
}

TEST(HealthMonitor, StalledViewSilentWhileProgressing) {
    HealthMonitor m;
    NodeSample s = base_sample(0);
    for (int i = 0; i < 20; ++i) {
        s.decided += 10;        // commit progress every sample...
        s.soft_timeouts += 5;   // ...despite frequent soft timeouts
        m.sample(TimePoint(i * 1'000'000), {s});
    }
    EXPECT_FALSE(m.alarmed());
}

TEST(HealthMonitor, StalledViewIgnoresDeadNodes) {
    HealthMonitor m;
    NodeSample s = base_sample(0);
    s.decided = 50;
    s.soft_timeouts = 2;
    m.sample(TimePoint(1'000'000), {s});
    s.alive = false;  // crashed: counters freeze, soft timeouts never reset
    s.soft_timeouts = 99;
    for (int i = 2; i <= 6; ++i) m.sample(TimePoint(i * 1'000'000), {s});
    // The outage itself is flagged (once), but the frozen counters must
    // not trip any progress rule.
    ASSERT_EQ(m.alarms().size(), 1u);
    EXPECT_EQ(m.alarms()[0].kind, AlarmKind::kNodeDown);
    EXPECT_EQ(m.alarms()[0].first_seen, TimePoint(2'000'000));
}

TEST(HealthMonitor, CheckpointLagFires) {
    MonitorConfig cfg;
    cfg.checkpoint_lag_blocks = 8;
    HealthMonitor m(cfg);

    NodeSample s = base_sample(2);
    s.decided = 1;  // progress, so stalled-view stays quiet
    s.head_height = 20;
    s.stable_height = 15;
    m.sample(TimePoint(1'000'000), {s});
    EXPECT_FALSE(m.alarmed());  // lag 5 <= 8

    s.decided = 2;
    s.head_height = 30;
    m.sample(TimePoint(2'000'000), {s});
    ASSERT_TRUE(m.alarmed());
    EXPECT_EQ(m.alarms()[0].kind, AlarmKind::kCheckpointLag);
    EXPECT_EQ(m.alarms()[0].node, 2u);
}

TEST(HealthMonitor, ExportBacklogNeedsArmingAndSustainedGrowth) {
    MonitorConfig cfg;
    cfg.export_backlog_samples = 3;
    cfg.export_backlog_min_blocks = 10;
    cfg.checkpoint_lag_blocks = 1u << 20;  // isolate the backlog rule

    const auto feed = [&](HealthMonitor& m) {
        NodeSample s = base_sample(0);
        s.base_height = 0;
        for (int i = 1; i <= 6; ++i) {
            s.decided += 10;
            s.head_height += 5;  // backlog grows every sample
            s.stable_height = s.head_height;
            m.sample(TimePoint(i * 1'000'000), {s});
        }
    };

    HealthMonitor unarmed(cfg);
    feed(unarmed);
    EXPECT_FALSE(unarmed.alarmed());  // no export infrastructure: silent

    cfg.watch_export = true;
    HealthMonitor armed(cfg);
    feed(armed);
    ASSERT_TRUE(armed.alarmed());
    EXPECT_EQ(armed.alarms()[0].kind, AlarmKind::kExportBacklog);
}

TEST(HealthMonitor, DivergenceFiresForTrailingNode) {
    MonitorConfig cfg;
    cfg.divergence_entries = 50;
    HealthMonitor m(cfg);

    NodeSample leader = base_sample(0);
    NodeSample trailer = base_sample(1);
    leader.decided = 100;
    trailer.decided = 80;
    m.sample(TimePoint(1'000'000), {leader, trailer});
    EXPECT_FALSE(m.alarmed());  // 20 behind: within bounds

    leader.decided = 200;
    trailer.decided = 120;
    m.sample(TimePoint(2'000'000), {leader, trailer});
    ASSERT_TRUE(m.alarmed());
    ASSERT_EQ(m.alarms().size(), 1u);
    EXPECT_EQ(m.alarms()[0].kind, AlarmKind::kDivergence);
    EXPECT_EQ(m.alarms()[0].node, 1u);
}

TEST(HealthMonitor, NodeDownClearsAfterRejoinCatchUp) {
    MonitorConfig cfg;
    cfg.rejoin_lag_blocks = 2;
    cfg.checkpoint_lag_blocks = 1u << 20;  // isolate the recovery rules
    HealthMonitor m(cfg);

    NodeSample healthy = base_sample(0);
    NodeSample victim = base_sample(1);
    healthy.decided = victim.decided = 100;
    healthy.head_height = victim.head_height = 10;
    m.sample(TimePoint(1'000'000), {healthy, victim});
    EXPECT_FALSE(m.alarmed());

    victim.alive = false;
    healthy.decided = 120;
    healthy.head_height = 12;
    m.sample(TimePoint(2'000'000), {healthy, victim});
    ASSERT_EQ(m.alarms().size(), 1u);
    EXPECT_EQ(m.alarms()[0].kind, AlarmKind::kNodeDown);
    EXPECT_EQ(m.alarms()[0].node, 1u);
    EXPECT_FALSE(m.alarms()[0].cleared);
    EXPECT_TRUE(m.any_active());

    // Restarted, still behind: the alarm stays active.
    victim.alive = true;
    victim.decided = 0;  // fresh counters after restart
    victim.head_height = 10;
    healthy.decided = 140;
    healthy.head_height = 14;
    m.sample(TimePoint(3'000'000), {healthy, victim});
    EXPECT_TRUE(m.any_active());

    // Caught up within the rejoin lag: node-down clears in place.
    victim.decided = 50;
    victim.head_height = 15;
    healthy.decided = 160;
    healthy.head_height = 16;
    m.sample(TimePoint(4'000'000), {healthy, victim});
    ASSERT_EQ(m.alarms().size(), 1u);
    EXPECT_TRUE(m.alarms()[0].cleared);
    EXPECT_EQ(m.alarms()[0].cleared_at, TimePoint(4'000'000));
    EXPECT_FALSE(m.any_active());
    EXPECT_TRUE(m.alarmed());  // the history entry remains
}

TEST(HealthMonitor, RejoinStalledFiresWhenCatchUpNeverCompletes) {
    MonitorConfig cfg;
    cfg.rejoin_lag_blocks = 1;
    cfg.rejoin_stalled_samples = 3;
    cfg.divergence_entries = 1u << 20;  // isolate the rejoin rule
    HealthMonitor m(cfg);

    NodeSample healthy = base_sample(0);
    NodeSample victim = base_sample(1);
    healthy.decided = victim.decided = 100;
    healthy.head_height = victim.head_height = 10;
    m.sample(TimePoint(1'000'000), {healthy, victim});

    victim.alive = false;
    m.sample(TimePoint(2'000'000), {healthy, victim});
    victim.alive = true;
    victim.decided = 0;
    for (int i = 3; i <= 7; ++i) {
        healthy.decided += 20;
        healthy.head_height += 2;  // the cluster keeps moving...
        victim.head_height = 10;   // ...the rejoiner does not
        m.sample(TimePoint(i * 1'000'000), {healthy, victim});
    }
    bool stalled = false;
    for (const Alarm& a : m.alarms()) {
        if (a.kind == AlarmKind::kRejoinStalled && a.node == 1) stalled = true;
    }
    EXPECT_TRUE(stalled);
    EXPECT_TRUE(m.any_active());
}

TEST(HealthMonitor, DivergenceUsesPreCrashOffsetForRestartedNode) {
    MonitorConfig cfg;
    cfg.divergence_entries = 50;
    cfg.rejoin_lag_blocks = 100;  // rejoin clears immediately; isolate divergence
    HealthMonitor m(cfg);

    NodeSample leader = base_sample(0);
    NodeSample restarted = base_sample(1);
    leader.decided = restarted.decided = 200;
    m.sample(TimePoint(1'000'000), {leader, restarted});

    restarted.alive = false;
    m.sample(TimePoint(2'000'000), {leader, restarted});

    // After the restart the node's counter resets to ~0; without the
    // offset every restarted replica would immediately read as divergent.
    restarted.alive = true;
    restarted.decided = 5;
    leader.decided = 210;
    m.sample(TimePoint(3'000'000), {leader, restarted});
    restarted.decided = 20;
    leader.decided = 225;
    m.sample(TimePoint(4'000'000), {leader, restarted});
    for (const Alarm& a : m.alarms()) {
        EXPECT_NE(a.kind, AlarmKind::kDivergence);
    }
}

TEST(HealthMonitor, AlarmsLatchPerNodeAndKind) {
    MonitorConfig cfg;
    cfg.stalled_soft_timeouts = 1;
    HealthMonitor m(cfg);

    NodeSample s = base_sample(0);
    s.decided = 10;
    m.sample(TimePoint(1'000'000), {s});
    for (int i = 2; i <= 10; ++i) {
        s.soft_timeouts += 2;  // keeps exceeding the threshold every sample
        m.sample(TimePoint(i * 1'000'000), {s});
    }
    EXPECT_EQ(m.alarms().size(), 1u);  // latched: one alarm, not nine
}

TEST(HealthMonitor, AlarmsMirrorToRecorderAndHook) {
    MonitorConfig cfg;
    cfg.stalled_soft_timeouts = 1;
    HealthMonitor m(cfg);
    FlightRecorder recorder(8);
    m.set_flight_recorder(&recorder);
    int hook_calls = 0;
    m.set_alarm_hook([&](const Alarm& a) {
        ++hook_calls;
        EXPECT_EQ(a.kind, AlarmKind::kStalledView);
    });

    NodeSample s = base_sample(0);
    s.decided = 10;
    m.sample(TimePoint(1'000'000), {s});
    s.soft_timeouts = 2;
    m.sample(TimePoint(2'000'000), {s});

    EXPECT_EQ(hook_calls, 1);
    const auto events = recorder.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, FlightEventKind::kAlarm);
    EXPECT_NE(events[0].detail.find("stalled_view"), std::string::npos);
}

TEST(HealthMonitor, JsonIsDeterministic) {
    const auto run = [] {
        MonitorConfig cfg;
        cfg.stalled_soft_timeouts = 1;
        HealthMonitor m(cfg);
        NodeSample s = base_sample(0);
        s.decided = 10;
        m.sample(TimePoint(1'000'000), {s});
        s.soft_timeouts = 3;
        m.sample(TimePoint(2'000'000), {s});
        return m.json();
    };
    const std::string a = run();
    EXPECT_EQ(a, run());
    EXPECT_NE(a.find("\"alarms\":["), std::string::npos);
    EXPECT_NE(a.find("\"samples\":2"), std::string::npos);
}

}  // namespace
}  // namespace zc::health
