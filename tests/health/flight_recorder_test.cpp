#include "health/flight_recorder.hpp"

#include <gtest/gtest.h>

#include "common/log.hpp"

namespace zc::health {
namespace {

FlightEvent phase_event(const FlightRecorder& r, std::size_t i) { return r.events().at(i); }

TEST(FlightRecorder, KeepsOnlyNotablePhases) {
    FlightRecorder r(8);
    r.event(0, TimePoint(100), trace::Phase::kBusReceive, 1, 0);   // routine: filtered
    r.event(0, TimePoint(200), trace::Phase::kSoftTimeout, 2, 7);  // notable
    r.event(0, TimePoint(300), trace::Phase::kDecide, 3, 0);       // routine: filtered
    ASSERT_EQ(r.size(), 1u);
    EXPECT_EQ(phase_event(r, 0).phase, trace::Phase::kSoftTimeout);
    EXPECT_EQ(phase_event(r, 0).arg, 7u);
}

TEST(FlightRecorder, RingWrapsAndCountsDrops) {
    FlightRecorder r(4);
    for (int i = 0; i < 10; ++i) {
        r.event(0, TimePoint(i * 100), trace::Phase::kSoftTimeout, 0,
                static_cast<std::uint64_t>(i));
    }
    EXPECT_EQ(r.size(), 4u);
    EXPECT_EQ(r.dropped(), 6u);
    // The ring retains the newest events, oldest first.
    const auto events = r.events();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(events[i].arg, 6u + i);
        if (i > 0) EXPECT_GT(events[i].at, events[i - 1].at);
    }
}

TEST(FlightRecorder, PerNodeRingsMergeInTimeOrder) {
    FlightRecorder r(4);
    r.event(1, TimePoint(300), trace::Phase::kSoftTimeout, 0, 0);
    r.event(0, TimePoint(100), trace::Phase::kHardTimeout, 0, 0);
    r.event(2, TimePoint(200), trace::Phase::kNewView, 0, 0);
    const auto events = r.events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].node, 0u);
    EXPECT_EQ(events[1].node, 2u);
    EXPECT_EQ(events[2].node, 1u);
    // Simultaneous events keep their arrival order via the global seq.
    r.event(3, TimePoint(300), trace::Phase::kSoftTimeout, 0, 0);
    const auto again = r.events();
    EXPECT_EQ(again[2].node, 1u);
    EXPECT_EQ(again[3].node, 3u);
}

TEST(FlightRecorder, DumpIsDeterministic) {
    const auto fill = [] {
        FlightRecorder r(3);
        for (int i = 0; i < 8; ++i) {
            r.event(static_cast<NodeId>(i % 2), TimePoint(i * 50), trace::Phase::kSoftTimeout,
                    0, static_cast<std::uint64_t>(i));
        }
        Alarm alarm;
        alarm.node = 1;
        alarm.kind = AlarmKind::kStalledView;
        alarm.first_seen = TimePoint(377);
        alarm.detail = "test \"quoted\" detail";
        r.record_alarm(alarm);
        return r.json();
    };
    const std::string a = fill();
    const std::string b = fill();
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("stalled_view: "), std::string::npos);
    EXPECT_NE(a.find("\\\"quoted\\\""), std::string::npos);
    EXPECT_NE(a.find("\"dropped\":"), std::string::npos);
}

TEST(FlightRecorder, LogHookCapturesWarningsWithoutCallSiteChanges) {
    FlightRecorder r(8);
    const TimePoint now(4242);
    r.set_clock(&now);
    r.hook_logs();
    ZC_WARN("unit", "something {} happened", 13);
    ZC_DEBUG("unit", "below warn: not recorded");
    r.unhook_logs();
    ZC_WARN("unit", "after unhook: not recorded");

    const auto events = r.events();
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].kind, FlightEventKind::kLog);
    EXPECT_EQ(events[0].at, TimePoint(4242));
    EXPECT_NE(events[0].detail.find("something 13 happened"), std::string::npos);
}

TEST(FlightRecorder, HookIsRemovedOnDestruction) {
    {
        FlightRecorder r(4);
        r.hook_logs();
    }
    // Must not crash: the destructor removed the dangling hook.
    ZC_WARN("unit", "no recorder attached");
}

}  // namespace
}  // namespace zc::health
