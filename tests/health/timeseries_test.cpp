#include "health/timeseries.hpp"

#include <gtest/gtest.h>

#include "trace/trace.hpp"

namespace zc::health {
namespace {

std::vector<NodeSample> cluster(std::uint64_t decided0, std::uint64_t decided1) {
    NodeSample a;
    a.node = 0;
    a.decided = decided0;
    a.logged = decided0;
    a.head_height = decided0 / 10;
    a.stable_height = a.head_height;
    a.base_height = 0;
    a.soft_timeouts = 1;
    a.mem_mb = 24.0;
    NodeSample b = a;
    b.node = 1;
    b.decided = decided1;
    b.logged = decided1;
    b.mem_mb = 26.0;
    return {a, b};
}

TEST(TimeSeries, GoldenCsv) {
    TimeSeries ts;
    ts.sample(seconds(1), cluster(100, 90));
    ts.sample(seconds(2), cluster(200, 190));

    // Exact golden output: aggregation is max over the cluster frontier,
    // sum for soft timeouts, mean for memory; throughput is the decided
    // delta over the sample interval (zero on the first row); latency
    // quantile columns are 0 without a metrics registry.
    const std::string expected =
        "t_s,decided,throughput_rps,logged,blocks,stable,backlog,soft_timeouts,"
        "view_changes,rx_dropped,mem_mb,e2e_p50_ms,e2e_p99_ms\n"
        "1.000,100,0.000,100,10,10,10,2,0,0,25.000,0.000,0.000\n"
        "2.000,200,100.000,200,20,20,20,2,0,0,25.000,0.000,0.000\n";
    EXPECT_EQ(ts.csv(), expected);
}

TEST(TimeSeries, JsonMatchesCsvRows) {
    TimeSeries ts;
    ts.sample(seconds(1), cluster(10, 10));
    const std::string json = ts.json();
    EXPECT_NE(json.find("\"columns\":[\"t_s\",\"decided\""), std::string::npos);
    EXPECT_NE(json.find("[1.000,10,0.000,10,1,1,1,2,0,0,25.000,0.000,0.000]"),
              std::string::npos);
}

TEST(TimeSeries, QuantilesComeFromTheRegistry) {
    trace::MetricsRegistry registry;
    registry.histogram(0, "e2e_ns")->record(10'000'000);  // 10 ms
    registry.histogram(1, "e2e_ns")->record(20'000'000);  // 20 ms

    TimeSeries ts(&registry);
    ts.sample(seconds(1), cluster(5, 5));
    const std::string csv = ts.csv();
    // p50/p99 of {10ms, 20ms} — both columns must be non-zero now.
    const auto last_row = csv.substr(csv.find('\n') + 1);
    EXPECT_EQ(last_row.find(",0.000,0.000\n"), std::string::npos) << last_row;
}

TEST(TimeSeries, DeterministicAcrossRuns) {
    const auto run = [] {
        TimeSeries ts;
        for (int i = 1; i <= 5; ++i) {
            ts.sample(seconds(i), cluster(static_cast<std::uint64_t>(i * 13),
                                          static_cast<std::uint64_t>(i * 13 - 3)));
        }
        return ts.csv() + ts.json();
    };
    EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace zc::health
