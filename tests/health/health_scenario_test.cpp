// End-to-end health coverage on a real (virtual-time) testbed: the
// watchdogs must trip on an injected fault and stay silent on a clean
// 4-node run, and the whole health surface (monitor JSON, flight dump,
// time-series CSV) must be byte-identical across same-seed runs.
#include <gtest/gtest.h>

#include "health/flight_recorder.hpp"
#include "health/monitor.hpp"
#include "health/timeseries.hpp"
#include "runtime/scenario.hpp"

namespace zc::health {
namespace {

using runtime::Scenario;
using runtime::ScenarioConfig;

ScenarioConfig short_config() {
    ScenarioConfig cfg;
    cfg.n = 4;
    cfg.f = 1;
    cfg.seed = 7;
    cfg.warmup = seconds(1);
    cfg.duration = seconds(8);
    return cfg;
}

struct HealthRun {
    std::vector<Alarm> alarms;
    std::string monitor_json;
    std::string flight_json;
    std::string timeseries_csv;
};

HealthRun run_with_health(ScenarioConfig cfg) {
    FlightRecorder recorder;
    HealthMonitor monitor;
    monitor.set_flight_recorder(&recorder);
    TimeSeries timeseries;
    cfg.trace_sink = &recorder;
    cfg.health_monitor = &monitor;
    cfg.health_timeseries = &timeseries;
    Scenario s(std::move(cfg));
    recorder.set_clock(s.sim().now_handle());
    recorder.hook_logs();
    s.run();
    recorder.unhook_logs();
    HealthRun out;
    out.alarms = monitor.alarms();
    out.monitor_json = monitor.json();
    out.flight_json = recorder.json();
    out.timeseries_csv = timeseries.csv();
    return out;
}

TEST(HealthScenario, CleanFourNodeRunStaysSilent) {
    const HealthRun r = run_with_health(short_config());
    EXPECT_TRUE(r.alarms.empty()) << r.monitor_json;
    EXPECT_FALSE(r.timeseries_csv.empty());
    // The time series must show commit progress.
    EXPECT_NE(r.timeseries_csv.find('\n'), std::string::npos);
}

TEST(HealthScenario, PrimaryCrashTripsStalledView) {
    ScenarioConfig cfg = short_config();
    cfg.duration = seconds(12);
    cfg.crash_schedule = {{seconds(4), 0}};
    const HealthRun r = run_with_health(cfg);

    bool stalled = false;
    for (const auto& alarm : r.alarms) {
        if (alarm.kind == AlarmKind::kStalledView) stalled = true;
    }
    EXPECT_TRUE(stalled) << r.monitor_json;
    // The black box must hold the view-change transition.
    EXPECT_NE(r.flight_json.find("view_change_start"), std::string::npos);
    EXPECT_NE(r.flight_json.find("\"alarm\""), std::string::npos);
}

TEST(HealthScenario, SameSeedProducesByteIdenticalHealthOutputs) {
    ScenarioConfig cfg = short_config();
    cfg.crash_schedule = {{seconds(4), 0}};
    const HealthRun a = run_with_health(cfg);
    const HealthRun b = run_with_health(cfg);
    EXPECT_EQ(a.monitor_json, b.monitor_json);
    EXPECT_EQ(a.flight_json, b.flight_json);
    EXPECT_EQ(a.timeseries_csv, b.timeseries_csv);
}

}  // namespace
}  // namespace zc::health
