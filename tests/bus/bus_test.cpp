#include <gtest/gtest.h>

#include <vector>

#include "bus/bus.hpp"

namespace zc::bus {
namespace {

struct CountingSource final : PayloadSource {
    Bytes payload_for_cycle(std::uint64_t cycle, TimePoint) override {
        Bytes b(8, 0);
        for (int i = 0; i < 8; ++i) b[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(cycle >> (8 * i));
        return b;
    }
};

struct RecordingTap final : BusTap {
    explicit RecordingTap(sim::Simulation& sim) : sim(sim) {}
    void on_telegram(const Telegram& telegram) override {
        telegrams.push_back(telegram);
        times.push_back(sim.now());
    }
    sim::Simulation& sim;
    std::vector<Telegram> telegrams;
    std::vector<TimePoint> times;
};

struct BusFixture : ::testing::Test {
    BusFixture() : sim(3), bus(sim, milliseconds(64), source) {}
    sim::Simulation sim;
    CountingSource source;
    Bus bus;
};

TEST_F(BusFixture, DeliversEveryCycleToAllTaps) {
    RecordingTap t1(sim), t2(sim);
    bus.attach_tap(t1);
    bus.attach_tap(t2);
    bus.start();
    sim.run_until(milliseconds(64 * 10 - 1));
    EXPECT_EQ(t1.telegrams.size(), 10u);
    EXPECT_EQ(t2.telegrams.size(), 10u);
    for (std::size_t i = 0; i < 10; ++i) {
        EXPECT_EQ(t1.telegrams[i].cycle, i);
        EXPECT_EQ(t1.telegrams[i].payload, t2.telegrams[i].payload);
    }
}

TEST_F(BusFixture, CycleCadenceIsExact) {
    RecordingTap t(sim);
    bus.attach_tap(t);
    bus.start();
    sim.run_until(milliseconds(300));
    ASSERT_GE(t.times.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(t.times[i], milliseconds(64) * static_cast<std::int64_t>(i));
    }
}

TEST_F(BusFixture, StopHaltsCycles) {
    RecordingTap t(sim);
    bus.attach_tap(t);
    bus.start();
    sim.run_until(milliseconds(100));
    bus.stop();
    const std::size_t seen = t.telegrams.size();
    sim.run_until(milliseconds(1000));
    EXPECT_EQ(t.telegrams.size(), seen);
}

TEST_F(BusFixture, DropFaultLosesCycles) {
    RecordingTap healthy(sim), faulty(sim);
    bus.attach_tap(healthy);
    TapFaults f;
    f.drop = 0.5;
    const std::size_t idx = bus.attach_tap(faulty, f);
    bus.start();
    sim.run_until(milliseconds(64 * 200));
    EXPECT_EQ(healthy.telegrams.size(), 201u);
    EXPECT_LT(faulty.telegrams.size(), 150u);
    EXPECT_GT(faulty.telegrams.size(), 50u);
    EXPECT_EQ(bus.tap_stats(idx).dropped + faulty.telegrams.size(), 201u);
}

TEST_F(BusFixture, DelayFaultShiftsDelivery) {
    RecordingTap t(sim);
    TapFaults f;
    f.delay = 1.0;  // every telegram arrives one cycle late
    bus.attach_tap(t, f);
    bus.start();
    sim.run_until(milliseconds(64 * 5));
    ASSERT_GE(t.telegrams.size(), 3u);
    for (std::size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(t.times[i], milliseconds(64) * static_cast<std::int64_t>(i + 1));
        EXPECT_EQ(t.telegrams[i].cycle, i);
    }
}

TEST_F(BusFixture, CorruptFaultFlipsBits) {
    RecordingTap clean(sim), corrupted(sim);
    bus.attach_tap(clean);
    TapFaults f;
    f.corrupt = 1.0;
    const std::size_t idx = bus.attach_tap(corrupted, f);
    bus.start();
    sim.run_until(milliseconds(64 * 20));
    ASSERT_EQ(clean.telegrams.size(), corrupted.telegrams.size());
    std::size_t differing = 0;
    for (std::size_t i = 0; i < clean.telegrams.size(); ++i) {
        EXPECT_EQ(clean.telegrams[i].payload.size(), corrupted.telegrams[i].payload.size());
        if (clean.telegrams[i].payload != corrupted.telegrams[i].payload) ++differing;
    }
    EXPECT_EQ(differing, clean.telegrams.size());
    EXPECT_EQ(bus.tap_stats(idx).corrupted, clean.telegrams.size());
}

TEST_F(BusFixture, DivergeFaultYieldsDifferingValidReading) {
    RecordingTap clean(sim), diverged(sim);
    bus.attach_tap(clean);
    TapFaults f;
    f.diverge = 1.0;
    bus.attach_tap(diverged, f);
    bus.start();
    sim.run_until(milliseconds(64 * 5));
    ASSERT_EQ(clean.telegrams.size(), diverged.telegrams.size());
    for (std::size_t i = 0; i < clean.telegrams.size(); ++i) {
        // Same length (the frame still parses), different trailing value.
        EXPECT_EQ(diverged.telegrams[i].payload.size(), clean.telegrams[i].payload.size());
        EXPECT_NE(diverged.telegrams[i].payload, clean.telegrams[i].payload);
    }
}

TEST_F(BusFixture, RejectsNonPositiveCycle) {
    EXPECT_THROW(Bus(sim, Duration::zero(), source), std::invalid_argument);
}

TEST(BusDeterminism, SameSeedSameFaultPattern) {
    for (int run = 0; run < 2; ++run) {
        // Both runs constructed identically; compare delivered cycle sets.
        static std::vector<std::uint64_t> first_run;
        sim::Simulation sim(77);
        CountingSource source;
        Bus bus(sim, milliseconds(32), source);
        RecordingTap t(sim);
        TapFaults f;
        f.drop = 0.3;
        bus.attach_tap(t, f);
        bus.start();
        sim.run_until(seconds(10));
        std::vector<std::uint64_t> cycles;
        for (const auto& tg : t.telegrams) cycles.push_back(tg.cycle);
        if (run == 0) {
            first_run = cycles;
        } else {
            EXPECT_EQ(cycles, first_run);
        }
    }
}

}  // namespace
}  // namespace zc::bus
