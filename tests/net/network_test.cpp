#include <gtest/gtest.h>

#include <vector>

#include "net/network.hpp"

namespace zc::net {
namespace {

struct Recorder final : Endpoint {
    struct Received {
        EndpointId from;
        Bytes msg;
        TimePoint at;
    };
    explicit Recorder(sim::Simulation& sim) : sim(sim) {}
    void deliver(EndpointId from, Bytes message) override {
        received.push_back({from, std::move(message), sim.now()});
    }
    sim::Simulation& sim;
    std::vector<Received> received;
};

struct NetFixture : ::testing::Test {
    NetFixture() : sim(7), net(sim), a(sim), b(sim) {
        net.attach(0, &a);
        net.attach(1, &b);
        LinkProfile p;
        p.latency = milliseconds(1);
        p.jitter = Duration::zero();
        p.bandwidth_bps = 100e6;
        p.loss = 0.0;
        net.set_default_profile(p);
    }
    sim::Simulation sim;
    Network net;
    Recorder a, b;
};

TEST_F(NetFixture, DeliversWithLatencyAndSerialization) {
    net.send(0, 1, Bytes(1184, 0x11));  // 1184 + 66 overhead = 1250 B = 100 us at 100 Mbit/s
    sim.run();
    ASSERT_EQ(b.received.size(), 1u);
    EXPECT_EQ(b.received[0].from, 0u);
    EXPECT_EQ(b.received[0].msg.size(), 1184u);
    EXPECT_EQ(b.received[0].at, milliseconds(1) + microseconds(100));
}

TEST_F(NetFixture, EgressSerializationQueues) {
    // Two 1250-wire-byte messages back to back share the NIC.
    net.send(0, 1, Bytes(1184, 0x01));
    net.send(0, 1, Bytes(1184, 0x02));
    sim.run();
    ASSERT_EQ(b.received.size(), 2u);
    EXPECT_EQ(b.received[0].at, milliseconds(1) + microseconds(100));
    EXPECT_EQ(b.received[1].at, milliseconds(1) + microseconds(200));
}

TEST_F(NetFixture, MetersBytesWithFraming) {
    net.send(0, 1, Bytes(100, 0x00));
    sim.run();
    EXPECT_EQ(net.stats(0).bytes_sent, 100 + Network::kFrameOverhead);
    EXPECT_EQ(net.stats(0).messages_sent, 1u);
    EXPECT_EQ(net.stats(1).bytes_received, 100 + Network::kFrameOverhead);
    EXPECT_EQ(net.stats(1).messages_received, 1u);
    EXPECT_EQ(net.total_bytes_sent(), 100 + Network::kFrameOverhead);
}

TEST_F(NetFixture, BlockedLinkDropsMessages) {
    net.set_blocked(0, 1, true);
    net.send(0, 1, Bytes(10, 0x00));
    sim.run();
    EXPECT_TRUE(b.received.empty());
    EXPECT_EQ(net.stats(0).messages_dropped, 1u);

    net.set_blocked(0, 1, false);
    net.send(0, 1, Bytes(10, 0x00));
    sim.run();
    EXPECT_EQ(b.received.size(), 1u);
}

TEST_F(NetFixture, BlockIsDirectional) {
    net.set_blocked(0, 1, true);
    net.send(1, 0, Bytes(10, 0x00));
    sim.run();
    EXPECT_EQ(a.received.size(), 1u);
}

TEST_F(NetFixture, LossyLinkDropsApproximatelyAtRate) {
    LinkProfile lossy;
    lossy.latency = microseconds(10);
    lossy.jitter = Duration::zero();
    lossy.loss = 0.5;
    net.set_profile(0, 1, lossy);
    for (int i = 0; i < 1000; ++i) net.send(0, 1, Bytes(8, 0x00));
    sim.run();
    EXPECT_GT(b.received.size(), 350u);
    EXPECT_LT(b.received.size(), 650u);
    EXPECT_EQ(b.received.size() + net.stats(0).messages_dropped, 1000u);
}

TEST_F(NetFixture, JitterDelaysWithinBound) {
    LinkProfile jittery;
    jittery.latency = milliseconds(1);
    jittery.jitter = milliseconds(2);
    net.set_profile(0, 1, jittery);
    for (int i = 0; i < 100; ++i) net.send(0, 1, Bytes(1, 0x00));
    sim.run();
    ASSERT_EQ(b.received.size(), 100u);
    // All arrivals within [latency, latency + jitter + serialization*queue].
    for (const auto& rec : b.received) {
        EXPECT_GE(rec.at, milliseconds(1));
        EXPECT_LE(rec.at, milliseconds(3) + microseconds(100 * 6));
    }
}

TEST_F(NetFixture, LteProfileIsSlower) {
    net.set_profile(0, 1, LinkProfile::lte());
    net.send(0, 1, Bytes(100000, 0x00));
    sim.run();
    ASSERT_EQ(b.received.size(), 1u);
    // ~100 kB at 8.5 Mbit/s is ~94 ms serialization + >=35 ms latency.
    EXPECT_GT(b.received[0].at, milliseconds(120));
}

TEST_F(NetFixture, EgressUtilization) {
    const TimePoint start = sim.now();
    // 10 messages x 1250 wire bytes = 100,000 bits over 10 ms at 100 Mbit/s
    // = 0.1 utilization over 10 ms window.
    for (int i = 0; i < 10; ++i) net.send(0, 1, Bytes(1184, 0x00));
    sim.run_until(start + milliseconds(10));
    EXPECT_NEAR(net.egress_utilization(0, start, 0, 100e6), 0.1, 0.001);
}

TEST_F(NetFixture, UnknownEndpointDropsSilently) {
    net.send(0, 99, Bytes(10, 0x00));
    sim.run();  // must not crash
}

TEST_F(NetFixture, DeterministicAcrossRuns) {
    // Same seed, same construction order => identical delivery times.
    sim::Simulation sim2(7);
    Network net2(sim2);
    Recorder a2(sim2), b2(sim2);
    net2.attach(0, &a2);
    net2.attach(1, &b2);
    LinkProfile p;
    p.latency = milliseconds(1);
    p.jitter = milliseconds(1);
    net.set_default_profile(p);
    net2.set_default_profile(p);

    for (int i = 0; i < 20; ++i) {
        net.send(0, 1, Bytes(64, 0x00));
        net2.send(0, 1, Bytes(64, 0x00));
    }
    sim.run();
    sim2.run();
    ASSERT_EQ(b.received.size(), b2.received.size());
    for (std::size_t i = 0; i < b.received.size(); ++i) {
        EXPECT_EQ(b.received[i].at, b2.received[i].at);
    }
}

}  // namespace
}  // namespace zc::net
