// Mutation "fuzzing" of the wire formats: decoders must reject or accept
// — never crash, never read out of bounds — on arbitrarily corrupted
// inputs. This is the property that lets the transport treat malformed
// traffic as Byzantine noise.
#include <gtest/gtest.h>

#include "chain/block.hpp"
#include "common/rng.hpp"
#include "export/messages.hpp"
#include "pbft/messages.hpp"
#include "runtime/wire.hpp"
#include "train/signal.hpp"
#include "zugchain/wire.hpp"

namespace zc {
namespace {

/// Applies `count` random byte/bit mutations.
Bytes mutate(Bytes input, Rng& rng, int count) {
    for (int i = 0; i < count && !input.empty(); ++i) {
        switch (rng.next_below(4)) {
            case 0:  // flip a bit
                input[rng.next_below(input.size())] ^=
                    static_cast<std::uint8_t>(1u << rng.next_below(8));
                break;
            case 1:  // truncate
                input.resize(rng.next_below(input.size()) + 1);
                break;
            case 2:  // duplicate a slice
                input.insert(input.begin() + static_cast<std::ptrdiff_t>(
                                                 rng.next_below(input.size())),
                             input[rng.next_below(input.size())]);
                break;
            case 3:  // overwrite with random byte
                input[rng.next_below(input.size())] = static_cast<std::uint8_t>(rng.next());
                break;
        }
    }
    return input;
}

pbft::Message sample_pbft_message(Rng& rng, int which) {
    switch (which % 4) {
        case 0: {
            pbft::Request r;
            r.payload = rng.bytes(64);
            r.origin = 1;
            r.origin_seq = rng.next();
            return r;
        }
        case 1: {
            pbft::PrePrepare pp;
            pp.view = rng.next_below(10);
            pp.seq = rng.next_below(1000);
            pbft::Request preq;
            preq.payload = rng.bytes(32);
            pp.requests = {preq};
            pp.req_digest = pbft::PrePrepare::batch_digest(pp.requests);
            pp.primary = 0;
            return pp;
        }
        case 2: {
            pbft::Checkpoint c;
            c.seq = rng.next_below(100);
            c.replica = 2;
            return c;
        }
        default: {
            pbft::ViewChange vc;
            vc.new_view = 3;
            vc.replica = 1;
            return vc;
        }
    }
}

TEST(CodecFuzz, PbftDecoderNeverCrashes) {
    Rng rng(9001);
    int accepted = 0;
    for (int round = 0; round < 2000; ++round) {
        const Bytes wire = pbft::encode_message(sample_pbft_message(rng, round));
        const Bytes bad = mutate(wire, rng, 1 + static_cast<int>(rng.next_below(4)));
        if (pbft::decode_message(bad).has_value()) ++accepted;
    }
    // Some single-bit flips land in payload bytes and still decode — that
    // is fine (signatures catch them); what matters is no crash/UB.
    SUCCEED() << accepted << " mutated messages structurally decoded";
}

TEST(CodecFuzz, PbftDecoderOnRandomGarbage) {
    Rng rng(9002);
    for (int round = 0; round < 2000; ++round) {
        const Bytes garbage = rng.bytes(rng.next_below(512));
        (void)pbft::decode_message(garbage);  // must not crash
    }
}

TEST(CodecFuzz, ExportDecoderNeverCrashes) {
    Rng rng(9003);
    exporter::ReadRequest req;
    req.dc = 1;
    req.last_height = 10;
    req.full_from = 2;
    exporter::DeleteCmd del;
    del.dc = 0;
    del.height = 5;
    const Bytes wires[] = {
        exporter::encode_export_message(exporter::ExportMessage{req}),
        exporter::encode_export_message(exporter::ExportMessage{del}),
    };
    for (int round = 0; round < 2000; ++round) {
        const Bytes bad = mutate(wires[rng.next_below(2)], rng, 1 + (round % 5));
        (void)exporter::decode_export_message(bad);
        (void)exporter::decode_export_message(rng.bytes(rng.next_below(256)));
    }
}

TEST(CodecFuzz, BlockDecoderNeverCrashes) {
    Rng rng(9004);
    std::vector<chain::LoggedRequest> reqs(5);
    for (auto& r : reqs) r.payload = rng.bytes(48);
    const chain::Block block = chain::Block::build(1, chain::genesis_parent(), 7, reqs);
    const Bytes wire = codec::encode_to_bytes(block);
    for (int round = 0; round < 2000; ++round) {
        (void)codec::try_decode<chain::Block>(mutate(wire, rng, 1 + (round % 6)));
    }
}

TEST(CodecFuzz, EnvelopeAndLayerDecodersNeverCrash) {
    Rng rng(9005);
    pbft::Request r;
    r.payload = rng.bytes(128);
    r.origin = 3;
    const Bytes peer =
        zugchain::encode_peer_request(zugchain::PeerRequest{r, false});
    const Bytes env = runtime::encode_envelope(runtime::Channel::kLayer, peer);
    for (int round = 0; round < 2000; ++round) {
        (void)runtime::decode_envelope(mutate(env, rng, 1 + (round % 4)));
        (void)zugchain::decode_peer_request(mutate(peer, rng, 1 + (round % 4)));
    }
}

TEST(CodecFuzz, TelegramDecoderNeverCrashes) {
    Rng rng(9006);
    train::TelegramContent content;
    content.cycle = 12;
    content.timestamp_ns = 99;
    content.signals = {{train::SignalKind::kSpeed, 1234}};
    content.opaque = rng.bytes(200);
    const Bytes wire = codec::encode_to_bytes(content);
    for (int round = 0; round < 2000; ++round) {
        (void)codec::try_decode<train::TelegramContent>(mutate(wire, rng, 1 + (round % 8)));
    }
}

TEST(CodecFuzz, MutatedSignedMessagesFailVerification) {
    // Even when a mutation still decodes, the signature must not verify
    // unless the mutation missed every covered byte (impossible for bit
    // flips inside the signed region).
    Rng rng(9007);
    crypto::FastProvider provider;
    const crypto::KeyPair kp = provider.generate(rng);
    crypto::KeyDirectory dir;
    dir.register_key(7, kp.pub);

    pbft::Request r;
    r.payload = rng.bytes(64);
    r.origin = 7;
    r.origin_seq = 1;
    r.sig = provider.sign(kp, r.signing_bytes());
    const Bytes wire = pbft::encode_message(pbft::Message{r});

    for (int round = 0; round < 500; ++round) {
        Bytes bad = wire;
        // Flip exactly one payload bit (inside the signed region).
        bad[2 + rng.next_below(64)] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
        const auto m = pbft::decode_message(bad);
        if (!m) continue;
        const auto* decoded = std::get_if<pbft::Request>(&*m);
        if (decoded == nullptr) continue;
        EXPECT_FALSE(provider.verify(kp.pub, decoded->signing_bytes(), decoded->sig));
    }
}

}  // namespace
}  // namespace zc
