#include <gtest/gtest.h>

#include <limits>

#include "codec/codec.hpp"

namespace zc::codec {
namespace {

TEST(Codec, FixedWidthRoundTrip) {
    Writer w;
    w.u8(0xab);
    w.u16(0x1234);
    w.u32(0xdeadbeef);
    w.u64(0x0123456789abcdefULL);
    w.i64(-42);
    w.f64(3.25);

    Reader r(w.buffer());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
    EXPECT_EQ(r.i64(), -42);
    EXPECT_EQ(r.f64(), 3.25);
    EXPECT_TRUE(r.done());
}

TEST(Codec, VarintRoundTripBoundaries) {
    const std::uint64_t values[] = {0,
                                    1,
                                    127,
                                    128,
                                    16383,
                                    16384,
                                    (1ull << 32) - 1,
                                    1ull << 32,
                                    std::numeric_limits<std::uint64_t>::max()};
    Writer w;
    for (auto v : values) w.varint(v);
    Reader r(w.buffer());
    for (auto v : values) EXPECT_EQ(r.varint(), v);
    EXPECT_TRUE(r.done());
}

TEST(Codec, VarintEncodingLengths) {
    Writer w;
    w.varint(127);
    EXPECT_EQ(w.size(), 1u);
    Writer w2;
    w2.varint(128);
    EXPECT_EQ(w2.size(), 2u);
    Writer w3;
    w3.varint(std::numeric_limits<std::uint64_t>::max());
    EXPECT_EQ(w3.size(), 10u);
}

TEST(Codec, BytesRoundTrip) {
    Writer w;
    w.bytes(to_bytes("payload"));
    w.bytes({});
    w.str("text");

    Reader r(w.buffer());
    EXPECT_EQ(to_string(r.bytes()), "payload");
    EXPECT_TRUE(r.bytes().empty());
    EXPECT_EQ(r.str(), "text");
    EXPECT_TRUE(r.done());
}

TEST(Codec, RawArrayRoundTrip) {
    std::array<std::uint8_t, 4> in{1, 2, 3, 4};
    Writer w;
    w.raw(in);
    Reader r(w.buffer());
    EXPECT_EQ(r.raw_array<4>(), in);
}

TEST(Codec, ReadPastEndThrows) {
    Writer w;
    w.u8(1);
    Reader r(w.buffer());
    r.u8();
    EXPECT_THROW(r.u8(), DecodeError);
    EXPECT_THROW(r.u64(), DecodeError);
}

TEST(Codec, TruncatedBytesThrows) {
    Writer w;
    w.varint(100);  // claims 100 bytes, provides none
    Reader r(w.buffer());
    EXPECT_THROW(r.bytes(), DecodeError);
}

TEST(Codec, OversizedLengthRejected) {
    Writer w;
    w.varint(1ull << 40);
    Reader r(w.buffer());
    EXPECT_THROW(r.bytes(), DecodeError);
}

TEST(Codec, MaxLenParameterEnforced) {
    Writer w;
    w.bytes(Bytes(100, 0x11));
    Reader r(w.buffer());
    EXPECT_THROW(r.bytes(50), DecodeError);
}

TEST(Codec, MalformedVarintThrows) {
    // 11 continuation bytes: longer than any valid varint.
    const Bytes bad(11, 0xff);
    Reader r(bad);
    EXPECT_THROW(r.varint(), DecodeError);
}

TEST(Codec, ExpectDoneDetectsTrailingGarbage) {
    Writer w;
    w.u8(1);
    w.u8(2);
    Reader r(w.buffer());
    r.u8();
    EXPECT_THROW(r.expect_done(), DecodeError);
    r.u8();
    EXPECT_NO_THROW(r.expect_done());
}

struct TestMsg {
    std::uint64_t a = 0;
    Bytes b;

    void encode(Writer& w) const {
        w.u64(a);
        w.bytes(b);
    }
    static TestMsg decode(Reader& r) {
        TestMsg m;
        m.a = r.u64();
        m.b = r.bytes();
        return m;
    }
};

TEST(Codec, MessageHelpersRoundTrip) {
    TestMsg m;
    m.a = 99;
    m.b = to_bytes("data");
    const Bytes encoded = encode_to_bytes(m);
    const TestMsg back = decode_from_bytes<TestMsg>(encoded);
    EXPECT_EQ(back.a, 99u);
    EXPECT_EQ(back.b, to_bytes("data"));
}

TEST(Codec, TryDecodeReturnsNulloptOnCorruption) {
    TestMsg m;
    m.a = 1;
    m.b = to_bytes("data");
    Bytes encoded = encode_to_bytes(m);
    encoded.resize(encoded.size() - 2);  // truncate
    EXPECT_FALSE(try_decode<TestMsg>(encoded).has_value());
}

TEST(Codec, TryDecodeRejectsTrailingBytes) {
    TestMsg m;
    Bytes encoded = encode_to_bytes(m);
    encoded.push_back(0x00);
    EXPECT_FALSE(try_decode<TestMsg>(encoded).has_value());
}

}  // namespace
}  // namespace zc::codec
