#include <gtest/gtest.h>

#include "common/bytes.hpp"
#include "common/hex.hpp"

namespace zc {
namespace {

TEST(Bytes, ToBytesRoundTrip) {
    const Bytes b = to_bytes("zugchain");
    EXPECT_EQ(b.size(), 8u);
    EXPECT_EQ(to_string(b), "zugchain");
}

TEST(Bytes, AppendConcatenates) {
    Bytes a = to_bytes("zug");
    append(a, to_bytes("chain"));
    EXPECT_EQ(to_string(a), "zugchain");
}

TEST(Bytes, EqualCtMatchesOnEqual) {
    const Bytes a = to_bytes("same-content");
    const Bytes b = to_bytes("same-content");
    EXPECT_TRUE(equal_ct(a, b));
}

TEST(Bytes, EqualCtDetectsDifferenceAnywhere) {
    const Bytes a = to_bytes("same-content");
    for (std::size_t i = 0; i < a.size(); ++i) {
        Bytes b = a;
        b[i] ^= 0x01;
        EXPECT_FALSE(equal_ct(a, b)) << "difference at " << i;
    }
}

TEST(Bytes, EqualCtLengthMismatch) {
    EXPECT_FALSE(equal_ct(to_bytes("abc"), to_bytes("abcd")));
}

TEST(Bytes, Fnv1aDistinguishesInputs) {
    EXPECT_NE(fnv1a(to_bytes("a")), fnv1a(to_bytes("b")));
    EXPECT_EQ(fnv1a(to_bytes("stable")), fnv1a(to_bytes("stable")));
}

TEST(Hex, EncodesLowercase) {
    EXPECT_EQ(to_hex(Bytes{0x00, 0xab, 0xff}), "00abff");
}

TEST(Hex, DecodesBothCases) {
    const auto lower = from_hex("00abff");
    const auto upper = from_hex("00ABFF");
    ASSERT_TRUE(lower.has_value());
    ASSERT_TRUE(upper.has_value());
    EXPECT_EQ(*lower, *upper);
    EXPECT_EQ(*lower, (Bytes{0x00, 0xab, 0xff}));
}

TEST(Hex, RejectsOddLength) { EXPECT_FALSE(from_hex("abc").has_value()); }

TEST(Hex, RejectsNonHex) { EXPECT_FALSE(from_hex("zz").has_value()); }

TEST(Hex, RoundTripAllByteValues) {
    Bytes all(256);
    for (int i = 0; i < 256; ++i) all[static_cast<std::size_t>(i)] = static_cast<std::uint8_t>(i);
    const auto back = from_hex(to_hex(all));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, all);
}

}  // namespace
}  // namespace zc
