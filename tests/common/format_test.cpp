#include <gtest/gtest.h>

#include "common/format.hpp"

namespace zc {
namespace {

TEST(Format, SubstitutesInOrder) {
    EXPECT_EQ(format("a={} b={}", 1, "x"), "a=1 b=x");
}

TEST(Format, NoPlaceholders) { EXPECT_EQ(format("plain"), "plain"); }

TEST(Format, SurplusArgumentsAppended) {
    EXPECT_EQ(format("v={}", 1, 2), "v=1 2");
}

TEST(Format, SurplusPlaceholdersKept) {
    EXPECT_EQ(format("a={} b={}", 7), "a=7 b={}");
}

TEST(Format, MixedTypes) {
    EXPECT_EQ(format("{} {} {}", 1.5, 'c', true), "1.5 c 1");
}

}  // namespace
}  // namespace zc
