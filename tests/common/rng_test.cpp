#include <gtest/gtest.h>

#include <set>

#include "common/rng.hpp"

namespace zc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i) {
        if (a.next() == b.next()) ++equal;
    }
    EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
    Rng rng(7);
    for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextBelowCoversRange) {
    Rng rng(7);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(rng.next_below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, NextDoubleInUnitInterval) {
    Rng rng(3);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.next_double();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ChanceExtremes) {
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, ChanceApproximatesProbability) {
    Rng rng(11);
    int hits = 0;
    const int trials = 20000;
    for (int i = 0; i < trials; ++i) {
        if (rng.chance(0.3)) ++hits;
    }
    const double rate = static_cast<double>(hits) / trials;
    EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(Rng, NextRangeInclusive) {
    Rng rng(5);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 1000; ++i) {
        const std::int64_t v = rng.next_range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, ForkIsDeterministicAndIndependent) {
    Rng a(42), b(42);
    Rng fa = a.fork("bus"), fb = b.fork("bus");
    for (int i = 0; i < 50; ++i) EXPECT_EQ(fa.next(), fb.next());

    Rng c(42);
    Rng other = c.fork("net");
    Rng d(42);
    Rng same_label = d.fork("bus");
    EXPECT_NE(other.next(), same_label.next());
}

TEST(Rng, BytesFillsRequestedLength) {
    Rng rng(13);
    const Bytes b = rng.bytes(33);
    EXPECT_EQ(b.size(), 33u);
    // Not all zero.
    bool nonzero = false;
    for (auto v : b) nonzero |= (v != 0);
    EXPECT_TRUE(nonzero);
}

}  // namespace
}  // namespace zc
