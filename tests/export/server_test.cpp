#include <gtest/gtest.h>

#include "export/server.hpp"

namespace zc::exporter {
namespace {

struct MockServerTransport final : ServerTransport {
    void to_data_center(DataCenterId dc, const ExportMessage& m) override {
        sent.emplace_back(dc, m);
    }
    std::vector<std::pair<DataCenterId, ExportMessage>> sent;
};

struct ServerFixture : ::testing::Test {
    ServerFixture() {
        Rng keyrng(3);
        for (std::uint32_t i = 0; i < 4; ++i) {
            replica_keys.push_back(provider.generate(keyrng));
            directory.register_key(i, replica_keys.back().pub);
        }
        for (std::uint32_t d = 0; d < 2; ++d) {
            dc_keys.push_back(provider.generate(keyrng));
            directory.register_key(dc_key_id(d), dc_keys.back().pub);
        }
        crypto = std::make_unique<crypto::CryptoContext>(provider, directory, replica_keys[0],
                                                         costs, meter);
        ServerConfig cfg;
        cfg.id = 0;
        cfg.checkpoint_interval = 10;
        cfg.delete_quorum = 2;
        server = std::make_unique<ExportServer>(cfg, *crypto, store, transport);
        server->set_proof_provider([this]() -> const pbft::CheckpointProof* {
            return proof.has_value() ? &*proof : nullptr;
        });
    }

    void extend_chain(int blocks) {
        for (int i = 0; i < blocks; ++i) {
            const Height h = store.head_height() + 1;
            std::vector<chain::LoggedRequest> reqs;
            chain::LoggedRequest r;
            r.payload = to_bytes("data-" + std::to_string(h));
            r.origin = 0;
            r.seq = h * 10;
            reqs.push_back(r);
            store.append(chain::Block::build(h, store.head_hash(),
                                             static_cast<std::int64_t>(h), std::move(reqs)));
        }
    }

    /// A stable checkpoint proof certifying the current head.
    void make_proof() {
        pbft::CheckpointProof p;
        p.seq = store.head_height() * 10;
        p.state = store.head_hash();
        for (NodeId i = 0; i < 3; ++i) {
            pbft::Checkpoint c;
            c.seq = p.seq;
            c.state = p.state;
            c.replica = i;
            crypto::WorkMeter m;
            crypto::CryptoContext ctx(provider, directory, replica_keys[i], costs, m);
            c.sig = ctx.sign(c.signing_bytes());
            p.messages.push_back(c);
        }
        proof = p;
    }

    ReadRequest make_read(DataCenterId dc, Height last, NodeId full_from) {
        ReadRequest m;
        m.dc = dc;
        m.last_height = last;
        m.full_from = full_from;
        crypto::WorkMeter wm;
        crypto::CryptoContext ctx(provider, directory, dc_keys[dc], costs, wm);
        m.sig = ctx.sign(m.signing_bytes());
        return m;
    }

    DeleteCmd make_delete(DataCenterId dc, Height height, const crypto::Digest& hash) {
        DeleteCmd m;
        m.dc = dc;
        m.height = height;
        m.block_hash = hash;
        crypto::WorkMeter wm;
        crypto::CryptoContext ctx(provider, directory, dc_keys[dc], costs, wm);
        m.sig = ctx.sign(m.signing_bytes());
        return m;
    }

    crypto::FastProvider provider;
    crypto::KeyDirectory directory;
    std::vector<crypto::KeyPair> replica_keys;
    std::vector<crypto::KeyPair> dc_keys;
    metrics::CostModel costs;
    crypto::WorkMeter meter;
    std::unique_ptr<crypto::CryptoContext> crypto;
    chain::BlockStore store;
    MockServerTransport transport;
    std::optional<pbft::CheckpointProof> proof;
    std::unique_ptr<ExportServer> server;
};

TEST_F(ServerFixture, ReadRepliesWithProofAndBlocksWhenChosen) {
    extend_chain(5);
    make_proof();
    server->on_message(ExportMessage{make_read(0, 0, /*full_from=*/0)});
    ASSERT_EQ(transport.sent.size(), 1u);
    EXPECT_EQ(transport.sent[0].first, 0u);
    const auto& reply = std::get<ReadReply>(transport.sent[0].second);
    EXPECT_EQ(reply.replica, 0u);
    EXPECT_EQ(reply.proof.state, store.head_hash());
    EXPECT_EQ(reply.blocks.size(), 5u);  // heights 1..5
}

TEST_F(ServerFixture, ReadWithoutBlocksWhenNotChosen) {
    extend_chain(5);
    make_proof();
    server->on_message(ExportMessage{make_read(0, 0, /*full_from=*/2)});
    ASSERT_EQ(transport.sent.size(), 1u);
    EXPECT_TRUE(std::get<ReadReply>(transport.sent[0].second).blocks.empty());
}

TEST_F(ServerFixture, ReadIgnoredBeforeFirstCheckpoint) {
    extend_chain(5);
    server->on_message(ExportMessage{make_read(0, 0, 0)});
    EXPECT_TRUE(transport.sent.empty());
}

TEST_F(ServerFixture, ReadWithBadSignatureIgnored) {
    extend_chain(2);
    make_proof();
    ReadRequest bad = make_read(0, 0, 0);
    bad.last_height = 1;  // invalidates signature
    server->on_message(ExportMessage{bad});
    EXPECT_TRUE(transport.sent.empty());
    EXPECT_EQ(server->stats().invalid_messages, 1u);
}

TEST_F(ServerFixture, DeleteQuorumPrunes) {
    extend_chain(6);
    const crypto::Digest hash4 = store.header(4)->hash();
    server->on_message(ExportMessage{make_delete(0, 4, hash4)});
    EXPECT_EQ(store.base_height(), 0u);  // single delete: not enough
    server->on_message(ExportMessage{make_delete(1, 4, hash4)});
    EXPECT_EQ(store.base_height(), 4u);
    EXPECT_EQ(server->stats().deletes_executed, 1u);

    // Both DCs get an executed ack.
    int acks = 0;
    for (const auto& [dc, m] : transport.sent) {
        if (const auto* ack = std::get_if<DeleteAck>(&m)) {
            EXPECT_TRUE(ack->executed);
            EXPECT_EQ(ack->height, 4u);
            ++acks;
        }
    }
    EXPECT_EQ(acks, 2);

    // The prune anchor carries the two signed deletes as evidence.
    ASSERT_TRUE(store.anchor().has_value());
    const auto evidence = decode_delete_evidence(store.anchor()->evidence);
    ASSERT_TRUE(evidence.has_value());
    EXPECT_EQ(evidence->size(), 2u);
}

TEST_F(ServerFixture, DeleteForFutureBlockDelayedUntilCreated) {
    extend_chain(3);
    // Both DCs ask to prune at height 5, which does not exist yet.
    // (They can know the hash via another replica that is ahead.)
    chain::BlockStore ahead;
    for (int i = 0; i < 5; ++i) {
        const Height h = ahead.head_height() + 1;
        std::vector<chain::LoggedRequest> reqs;
        chain::LoggedRequest r;
        r.payload = to_bytes("data-" + std::to_string(h));
        r.origin = 0;
        r.seq = h * 10;
        reqs.push_back(r);
        ahead.append(chain::Block::build(h, ahead.head_hash(), static_cast<std::int64_t>(h),
                                         std::move(reqs)));
    }
    const crypto::Digest hash5 = ahead.header(5)->hash();
    server->on_message(ExportMessage{make_delete(0, 5, hash5)});
    server->on_message(ExportMessage{make_delete(1, 5, hash5)});
    EXPECT_EQ(server->stats().deletes_delayed, 1u);
    EXPECT_EQ(store.base_height(), 0u);

    // Blocks 4 and 5 get created; the delayed delete executes.
    extend_chain(2);
    server->on_new_block();
    EXPECT_EQ(store.base_height(), 5u);
}

TEST_F(ServerFixture, DeleteWithWrongHashRejected) {
    extend_chain(4);
    crypto::Digest bogus{};
    bogus.fill(0xee);
    server->on_message(ExportMessage{make_delete(0, 3, bogus)});
    server->on_message(ExportMessage{make_delete(1, 3, bogus)});
    EXPECT_EQ(store.base_height(), 0u);
    EXPECT_EQ(server->stats().deletes_rejected, 2u);
    // Negative acks are sent.
    bool saw_nack = false;
    for (const auto& [dc, m] : transport.sent) {
        if (const auto* ack = std::get_if<DeleteAck>(&m)) saw_nack |= !ack->executed;
    }
    EXPECT_TRUE(saw_nack);
}

TEST_F(ServerFixture, BlockFetchServesRange) {
    extend_chain(8);
    BlockFetch fetch;
    fetch.dc = 0;
    fetch.from = 3;
    fetch.to = 6;
    crypto::WorkMeter wm;
    crypto::CryptoContext ctx(provider, directory, dc_keys[0], costs, wm);
    fetch.sig = ctx.sign(fetch.signing_bytes());
    server->on_message(ExportMessage{fetch});
    ASSERT_EQ(transport.sent.size(), 1u);
    const auto& reply = std::get<BlockFetchReply>(transport.sent[0].second);
    ASSERT_EQ(reply.blocks.size(), 4u);
    EXPECT_EQ(reply.blocks.front().header.height, 3u);
    EXPECT_EQ(reply.blocks.back().header.height, 6u);
}

TEST_F(ServerFixture, IdempotentDeleteAfterPrune) {
    extend_chain(6);
    const crypto::Digest hash4 = store.header(4)->hash();
    server->on_message(ExportMessage{make_delete(0, 4, hash4)});
    server->on_message(ExportMessage{make_delete(1, 4, hash4)});
    ASSERT_EQ(store.base_height(), 4u);
    // Re-delivery of an older delete is harmless.
    server->on_message(ExportMessage{make_delete(0, 2, crypto::Digest{})});
    server->on_message(ExportMessage{make_delete(1, 2, crypto::Digest{})});
    EXPECT_EQ(store.base_height(), 4u);
}

}  // namespace
}  // namespace zc::exporter
