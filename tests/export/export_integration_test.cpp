#include <gtest/gtest.h>

#include "runtime/scenario.hpp"

namespace zc::runtime {
namespace {

ScenarioConfig export_config() {
    ScenarioConfig cfg;
    cfg.warmup = seconds(2);
    cfg.duration = seconds(20);
    cfg.payload_size = 128;
    cfg.default_tap_faults = {};
    cfg.dc_count = 2;
    cfg.delete_quorum = 2;
    return cfg;
}

TEST(ExportIntegration, FullRoundExportsVerifiesAndPrunes) {
    Scenario s(export_config());
    s.run();
    const Height head_before = s.node(0).store().head_height();
    ASSERT_GT(head_before, 20u);

    s.data_center(0).start_export();
    s.run_for(seconds(120));

    // The initiating DC completed an export round.
    const auto& history = s.data_center(0).history();
    ASSERT_FALSE(history.empty());
    const auto& record = history.back();
    EXPECT_TRUE(record.success);
    EXPECT_GT(record.blocks, 20u);
    EXPECT_GT(record.read_time, Duration::zero());
    EXPECT_GT(record.verify_cost, Duration::zero());
    EXPECT_GT(record.delete_time, Duration::zero());

    // Its store holds a verified chain up to the exported height.
    const auto& dc_store = s.data_center(0).store();
    EXPECT_GE(dc_store.head_height(), record.exported_to);
    EXPECT_TRUE(dc_store.validate(0, dc_store.head_height()));

    // The peer data center synchronized the same blocks.
    const auto& peer_store = s.data_center(1).store();
    EXPECT_GE(peer_store.head_height(), record.exported_to);
    EXPECT_EQ(peer_store.header(record.exported_to)->hash(),
              dc_store.header(record.exported_to)->hash());

    // Replicas pruned up to the exported block and kept it as the base.
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(s.node(i).store().base_height(), record.exported_to) << "node " << i;
        ASSERT_TRUE(s.node(i).store().anchor().has_value());
        const auto evidence =
            exporter::decode_delete_evidence(s.node(i).store().anchor()->evidence);
        ASSERT_TRUE(evidence.has_value());
        EXPECT_GE(evidence->size(), 2u);  // both DCs' signed deletes
    }
}

TEST(ExportIntegration, SecondExportShipsOnlyNewBlocks) {
    Scenario s(export_config());
    s.run();
    s.data_center(0).start_export();
    s.run_for(seconds(120));
    ASSERT_FALSE(s.data_center(0).history().empty());
    const Height first_export = s.data_center(0).history().back().exported_to;

    // More train operation, then a second export.
    s.run_for(seconds(30));
    s.data_center(0).start_export();
    s.run_for(seconds(120));

    const auto& history = s.data_center(0).history();
    ASSERT_GE(history.size(), 2u);
    const auto& second = history.back();
    EXPECT_TRUE(second.success);
    EXPECT_GT(second.exported_to, first_export);
    EXPECT_EQ(second.exported_from, first_export);

    // The DC chain is continuous across both exports (genesis anchored).
    EXPECT_TRUE(s.data_center(0).store().validate(0, second.exported_to));
}

TEST(ExportIntegration, ExportSurvivesCrashedReplica) {
    ScenarioConfig cfg = export_config();
    cfg.crash_schedule = {{seconds(5), 3}};
    cfg.export_timeout = seconds(10);
    Scenario s(cfg);
    s.run();
    s.data_center(0).start_export();
    s.run_for(seconds(180));

    const auto& history = s.data_center(0).history();
    ASSERT_FALSE(history.empty());
    bool any_success = false;
    for (const auto& rec : history) any_success |= rec.success;
    EXPECT_TRUE(any_success);
}

TEST(ExportIntegration, InsufficientDeleteQuorumLeavesChainIntact) {
    ScenarioConfig cfg = export_config();
    cfg.dc_count = 1;      // only one data center signs deletes...
    cfg.delete_quorum = 2; // ...but replicas require two
    cfg.export_timeout = seconds(10);
    Scenario s(cfg);
    s.run();
    s.data_center(0).start_export();
    s.run_for(seconds(60));

    // Blocks were read and verified, but never pruned on the train.
    EXPECT_GT(s.data_center(0).store().head_height(), 0u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(s.node(i).store().base_height(), 0u);
    }
}

TEST(ExportIntegration, DelayedDataCenterCatchesUpFromPeer) {
    // Error scenario (iv): DC 1 is offline during the first export (whose
    // blocks the replicas then prune). When it sees the second export's
    // sync, it recovers the missed range from DC 0 — not from the train.
    // delete_quorum = 1 so the single online DC's delete suffices to prune
    // (with quorum 2, replicas would — correctly — retain the blocks).
    ScenarioConfig cfg = export_config();
    cfg.delete_quorum = 1;
    Scenario s(cfg);

    auto set_dc1_connectivity = [&s](bool blocked) {
        for (net::EndpointId peer : {0u, 1u, 2u, 3u, 100u}) {
            s.network().set_blocked(101, peer, blocked);
            s.network().set_blocked(peer, 101, blocked);
        }
    };

    set_dc1_connectivity(true);
    s.run();
    s.data_center(0).start_export();
    s.run_for(seconds(120));
    ASSERT_FALSE(s.data_center(0).history().empty());
    const Height first_export = s.data_center(0).history().back().exported_to;
    ASSERT_GT(first_export, 0u);
    EXPECT_EQ(s.data_center(1).store().head_height(), 0u);  // missed it
    // Replicas pruned: the early blocks are no longer on the train.
    EXPECT_EQ(s.node(0).store().base_height(), first_export);

    set_dc1_connectivity(false);
    s.run_for(seconds(30));
    s.data_center(0).start_export();
    s.run_for(seconds(180));

    // DC 1 now holds the complete, genesis-anchored history.
    const auto& late = s.data_center(1).store();
    EXPECT_GT(late.head_height(), first_export);
    EXPECT_TRUE(late.validate(0, late.head_height()));
    EXPECT_EQ(late.header(first_export)->hash(),
              s.data_center(0).store().header(first_export)->hash());
}

TEST(ExportIntegration, OrderingLatencyUnaffectedByExport) {
    // Export is decoupled from agreement: latency during an export round
    // must stay in the same band as without one.
    ScenarioConfig cfg = export_config();
    Scenario without(cfg);
    without.run();
    const double base_latency = without.report().latency_ms.mean();

    Scenario with(cfg);
    with.run_for(seconds(6));
    with.data_center(0).start_export();
    with.run();
    const double exp_latency = with.report().latency_ms.mean();

    EXPECT_LT(exp_latency, base_latency * 1.5 + 5.0);
}

}  // namespace
}  // namespace zc::runtime
