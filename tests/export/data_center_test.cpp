// Unit tests of the data-center export state machine against a scripted
// transport (no network): happy path, retries against unresponsive or
// lying replicas, and gap handling.
#include <gtest/gtest.h>

#include "export/data_center.hpp"
#include "export/server.hpp"

namespace zc::exporter {
namespace {

struct ScriptedTransport final : DcTransport {
    void to_replica(NodeId replica, const ExportMessage& m) override {
        to_replicas.emplace_back(replica, m);
    }
    void to_data_center(DataCenterId dc, const ExportMessage& m) override {
        to_dcs.emplace_back(dc, m);
    }
    template <typename T>
    std::vector<std::pair<NodeId, T>> replica_msgs() const {
        std::vector<std::pair<NodeId, T>> out;
        for (const auto& [to, m] : to_replicas) {
            if (const T* typed = std::get_if<T>(&m)) out.emplace_back(to, *typed);
        }
        return out;
    }
    std::vector<std::pair<NodeId, ExportMessage>> to_replicas;
    std::vector<std::pair<DataCenterId, ExportMessage>> to_dcs;
};

struct DcFixture : ::testing::Test {
    DcFixture() : sim(17) {
        Rng keyrng(21);
        for (std::uint32_t i = 0; i < 4; ++i) {
            replica_keys.push_back(provider.generate(keyrng));
            directory.register_key(i, replica_keys.back().pub);
        }
        for (std::uint32_t d = 0; d < 2; ++d) {
            dc_keys.push_back(provider.generate(keyrng));
            directory.register_key(dc_key_id(d), dc_keys.back().pub);
        }
        crypto = std::make_unique<crypto::CryptoContext>(provider, directory, dc_keys[0], costs,
                                                         meter);
        DcConfig cfg;
        cfg.id = 0;
        cfg.n = 4;
        cfg.f = 1;
        cfg.checkpoint_interval = 10;
        cfg.peers = {1};
        cfg.reply_timeout = seconds(5);
        dc = std::make_unique<DataCenter>(cfg, sim, *crypto, transport);

        // A reference chain held by "the replicas".
        for (int i = 0; i < 8; ++i) {
            const Height h = train_chain.head_height() + 1;
            std::vector<chain::LoggedRequest> reqs(3);
            for (auto& r : reqs) {
                r.payload = to_bytes("blk" + std::to_string(h));
                r.seq = h * 10;
            }
            train_chain.append(chain::Block::build(h, train_chain.head_hash(),
                                                   static_cast<std::int64_t>(h),
                                                   std::move(reqs)));
        }
    }

    pbft::CheckpointProof proof_at(Height height) {
        pbft::CheckpointProof p;
        p.seq = height * 10;
        p.state = train_chain.header(height)->hash();
        for (NodeId i = 0; i < 3; ++i) {
            pbft::Checkpoint c;
            c.seq = p.seq;
            c.state = p.state;
            c.replica = i;
            crypto::WorkMeter m;
            crypto::CryptoContext ctx(provider, directory, replica_keys[i], costs, m);
            c.sig = ctx.sign(c.signing_bytes());
            p.messages.push_back(c);
        }
        return p;
    }

    ReadReply reply_from(NodeId replica, Height proof_height, bool with_blocks,
                         Height from = 1) {
        ReadReply r;
        r.replica = replica;
        r.proof = proof_at(proof_height);
        if (with_blocks) r.blocks = train_chain.range(from, proof_height);
        crypto::WorkMeter m;
        crypto::CryptoContext ctx(provider, directory, replica_keys[replica], costs, m);
        r.sig = ctx.sign(r.signing_bytes());
        return r;
    }

    NodeId chosen_full() {
        const auto reads = transport.replica_msgs<ReadRequest>();
        return reads.empty() ? 0 : reads.back().second.full_from;
    }

    sim::Simulation sim;
    crypto::FastProvider provider;
    crypto::KeyDirectory directory;
    std::vector<crypto::KeyPair> replica_keys;
    std::vector<crypto::KeyPair> dc_keys;
    metrics::CostModel costs;
    crypto::WorkMeter meter;
    std::unique_ptr<crypto::CryptoContext> crypto;
    ScriptedTransport transport;
    std::unique_ptr<DataCenter> dc;
    chain::BlockStore train_chain;
};

TEST_F(DcFixture, HappyPathIssuesSyncAndDeletes) {
    dc->start_export();
    ASSERT_EQ(transport.replica_msgs<ReadRequest>().size(), 4u);
    const NodeId full = chosen_full();

    for (NodeId i = 0; i < 4; ++i) {
        dc->on_message(ExportMessage{reply_from(i, 8, i == full)});
    }

    // Blocks verified and stored.
    EXPECT_EQ(dc->store().head_height(), 8u);
    EXPECT_TRUE(dc->store().validate(0, 8));

    // Sync to the peer DC and a delete to each replica.
    EXPECT_EQ(transport.to_dcs.size(), 1u);
    const auto deletes = transport.replica_msgs<DeleteCmd>();
    ASSERT_EQ(deletes.size(), 4u);
    EXPECT_EQ(deletes[0].second.height, 8u);
    EXPECT_EQ(deletes[0].second.block_hash, train_chain.header(8)->hash());

    // Acks complete the round (n - f = 3 required).
    for (NodeId i = 0; i < 3; ++i) {
        DeleteAck ack;
        ack.replica = i;
        ack.height = 8;
        ack.executed = true;
        crypto::WorkMeter m;
        crypto::CryptoContext ctx(provider, directory, replica_keys[i], costs, m);
        ack.sig = ctx.sign(ack.signing_bytes());
        dc->on_message(ExportMessage{ack});
    }
    ASSERT_EQ(dc->history().size(), 1u);
    EXPECT_TRUE(dc->history().back().success);
    EXPECT_EQ(dc->history().back().blocks, 8u);
    EXPECT_GT(dc->history().back().verify_cost, Duration::zero());
}

TEST_F(DcFixture, WaitsForQuorumAndChosenReplica) {
    dc->start_export();
    const NodeId full = chosen_full();
    const NodeId not_full = (full + 1) % 4;
    // Two replies, neither decisive (no blocks yet).
    dc->on_message(ExportMessage{reply_from(not_full, 8, false)});
    dc->on_message(ExportMessage{reply_from((full + 2) % 4, 8, false)});
    EXPECT_TRUE(transport.replica_msgs<DeleteCmd>().empty());
    EXPECT_TRUE(dc->exporting());

    // The chosen replica's blocks arrive: the round proceeds.
    dc->on_message(ExportMessage{reply_from(full, 8, true)});
    EXPECT_FALSE(transport.replica_msgs<DeleteCmd>().empty());
}

TEST_F(DcFixture, PicksLatestCheckpointAmongReplies) {
    dc->start_export();
    const NodeId full = chosen_full();
    // Two laggards at height 6, the chosen replica at 8.
    dc->on_message(ExportMessage{reply_from((full + 1) % 4, 6, false)});
    dc->on_message(ExportMessage{reply_from((full + 2) % 4, 6, false)});
    dc->on_message(ExportMessage{reply_from(full, 8, true)});
    const auto deletes = transport.replica_msgs<DeleteCmd>();
    ASSERT_FALSE(deletes.empty());
    EXPECT_EQ(deletes[0].second.height, 8u);  // newest checkpoint wins
}

TEST_F(DcFixture, InvalidProofIgnored) {
    dc->start_export();
    ReadReply bad = reply_from(1, 8, false);
    bad.proof.messages.pop_back();  // below quorum
    // Re-sign so the outer signature matches the altered body.
    crypto::WorkMeter m;
    crypto::CryptoContext ctx(provider, directory, replica_keys[1], costs, m);
    bad.sig = ctx.sign(bad.signing_bytes());
    dc->on_message(ExportMessage{bad});
    EXPECT_GE(dc->stats().invalid_messages, 1u);
}

TEST_F(DcFixture, TimeoutRetriesWithDifferentFullReplica) {
    dc->start_export();
    const NodeId first = chosen_full();
    // Nobody answers. The timeout must restart with another chosen one
    // (after the retry backoff: timeout at 5 s + 2 s backoff = 7 s).
    sim.run_until(seconds(8));
    EXPECT_GE(dc->stats().retries, 1u);
    const auto reads = transport.replica_msgs<ReadRequest>();
    ASSERT_GE(reads.size(), 8u);  // two broadcast rounds
    EXPECT_NE(reads.back().second.full_from, first);
}

TEST_F(DcFixture, SecondRoundFetchOnMissingBlocks) {
    dc->start_export();
    const NodeId full = chosen_full();
    // The chosen replica only has blocks up to 5 but the proof covers 8.
    ReadReply partial = reply_from(full, 8, false);
    partial.blocks = train_chain.range(1, 5);
    crypto::WorkMeter m;
    crypto::CryptoContext ctx(provider, directory, replica_keys[full], costs, m);
    partial.sig = ctx.sign(partial.signing_bytes());

    dc->on_message(ExportMessage{partial});
    dc->on_message(ExportMessage{reply_from((full + 1) % 4, 8, false)});
    dc->on_message(ExportMessage{reply_from((full + 2) % 4, 8, false)});

    // A BlockFetch for 6..8 goes out to some other replica.
    const auto fetches = transport.replica_msgs<BlockFetch>();
    ASSERT_EQ(fetches.size(), 1u);
    EXPECT_EQ(fetches[0].second.from, 6u);
    EXPECT_EQ(fetches[0].second.to, 8u);
    EXPECT_NE(fetches[0].first, full);

    // Answer it; the export completes.
    BlockFetchReply fill;
    fill.replica = fetches[0].first;
    fill.blocks = train_chain.range(6, 8);
    crypto::WorkMeter m2;
    crypto::CryptoContext ctx2(provider, directory, replica_keys[fetches[0].first], costs, m2);
    fill.sig = ctx2.sign(fill.signing_bytes());
    dc->on_message(ExportMessage{fill});

    EXPECT_EQ(dc->store().head_height(), 8u);
    EXPECT_FALSE(transport.replica_msgs<DeleteCmd>().empty());
}

TEST_F(DcFixture, CorruptBlocksFromChosenReplicaCauseRetry) {
    dc->start_export();
    const NodeId full = chosen_full();
    ReadReply lying = reply_from(full, 8, true);
    lying.blocks[3].requests[0].payload[0] ^= 1;  // breaks the payload root
    crypto::WorkMeter m;
    crypto::CryptoContext ctx(provider, directory, replica_keys[full], costs, m);
    lying.sig = ctx.sign(lying.signing_bytes());

    dc->on_message(ExportMessage{lying});
    dc->on_message(ExportMessage{reply_from((full + 1) % 4, 8, false)});
    dc->on_message(ExportMessage{reply_from((full + 2) % 4, 8, false)});

    // The export restarts excluding the liar, once the backoff elapses.
    EXPECT_GE(dc->stats().retries, 1u);
    sim.run_until(seconds(3));
    EXPECT_NE(chosen_full(), full);
}

TEST_F(DcFixture, UnderQuorumProofReplyRejected) {
    dc->start_export();
    const NodeId full = chosen_full();
    // 2f+1 checkpoint copies, all from one signer: the distinct-signer
    // quorum must reject the proof and the read never completes.
    auto degenerate = [&](NodeId replica) {
        ReadReply r;
        r.replica = replica;
        r.proof = proof_at(8);
        const pbft::Checkpoint only = r.proof.messages[0];
        r.proof.messages = {only, only, only};
        if (replica == full) r.blocks = train_chain.range(1, 8);
        crypto::WorkMeter m;
        crypto::CryptoContext ctx(provider, directory, replica_keys[replica], costs, m);
        r.sig = ctx.sign(r.signing_bytes());
        return r;
    };
    for (NodeId i = 0; i < 4; ++i) dc->on_message(ExportMessage{degenerate(i)});

    EXPECT_GE(dc->stats().invalid_messages, 4u);
    EXPECT_EQ(dc->store().head_height(), 0u);
    EXPECT_TRUE(transport.replica_msgs<DeleteCmd>().empty());
}

TEST_F(DcFixture, ForgedBlockRangeRejectedBeforeStore) {
    // Forged-but-hash-linked blocks under a genuine proof only fail the
    // final checkpoint-digest comparison — which must run before any
    // block reaches the permanent store (stage-then-adopt).
    chain::BlockStore forged;
    for (int i = 0; i < 8; ++i) {
        const Height h = forged.head_height() + 1;
        std::vector<chain::LoggedRequest> reqs(1);
        reqs[0].payload = to_bytes("forged" + std::to_string(h));
        forged.append(chain::Block::build(h, forged.head_hash(), static_cast<std::int64_t>(h),
                                          std::move(reqs)));
    }

    dc->start_export();
    const NodeId full = chosen_full();
    for (NodeId i = 0; i < 4; ++i) {
        ReadReply r = reply_from(i, 8, /*with_blocks=*/false);
        if (i == full) {
            r.blocks = forged.range(1, 8);
            crypto::WorkMeter m;
            crypto::CryptoContext ctx(provider, directory, replica_keys[i], costs, m);
            r.sig = ctx.sign(r.signing_bytes());
        }
        dc->on_message(ExportMessage{r});
    }

    EXPECT_GE(dc->stats().blocks_rejected, 8u);
    EXPECT_EQ(dc->store().head_height(), 0u);
    EXPECT_TRUE(transport.replica_msgs<DeleteCmd>().empty());
    // The round retries against a different full replica.
    EXPECT_GE(dc->stats().retries, 1u);
    sim.run_until(seconds(3));
    EXPECT_NE(chosen_full(), full);
}

}  // namespace
}  // namespace zc::exporter
