// Adversarial and edge-case tests for the view-change subprotocol.
#include <gtest/gtest.h>

#include "pbft/harness.hpp"

namespace zc::pbft {
namespace {

using testing::Cluster;

// Helper: a view change signed by `signer` claiming `new_view`.
ViewChange make_vc(Cluster& c, NodeId signer, View new_view) {
    ViewChange vc;
    vc.new_view = new_view;
    vc.last_stable = 0;
    vc.replica = signer;
    vc.sig = c.crypto_of(signer).sign(vc.signing_bytes());
    return vc;
}

TEST(ViewChangeValidation, ForgedViewChangeSignatureRejected) {
    Cluster c;
    ViewChange vc = make_vc(c, 2, 1);
    vc.sig = c.crypto_of(3).sign(vc.signing_bytes());  // wrong signer
    c.replica(1).on_message(2, Message{vc});
    EXPECT_GE(c.replica(1).stats().invalid_messages, 1u);
    EXPECT_EQ(c.replica(1).view(), 0u);
}

TEST(ViewChangeValidation, BogusPreparedProofRejected) {
    Cluster c;
    // A Byzantine replica claims request X prepared at seq 1 but cannot
    // produce 2f valid prepares.
    const Request r = c.make_request(3, 1, to_bytes("never-prepared"));
    PrePrepare pp;
    pp.view = 0;
    pp.seq = 1;
    pp.requests = {r};
    pp.req_digest = r.digest();
    pp.primary = 0;
    pp.sig = c.crypto_of(3).sign(pp.signing_bytes());  // forged: not primary's key

    ViewChange vc;
    vc.new_view = 1;
    vc.last_stable = 0;
    vc.prepared.push_back(PreparedProof{pp, {}});
    vc.replica = 3;
    vc.sig = c.crypto_of(3).sign(vc.signing_bytes());

    c.replica(1).on_message(3, Message{vc});
    EXPECT_GE(c.replica(1).stats().invalid_messages, 1u);
}

TEST(ViewChangeValidation, ForgedNewViewRejected) {
    Cluster c;
    // Node 3 (not the view-1 primary) forges a NewView for view 1.
    NewView nv;
    nv.view = 1;
    nv.view_changes = {make_vc(c, 1, 1), make_vc(c, 2, 1), make_vc(c, 3, 1)};
    nv.primary = 1;
    nv.sig = c.crypto_of(3).sign(nv.signing_bytes());  // wrong key
    c.replica(2).on_message(1, Message{nv});
    EXPECT_GE(c.replica(2).stats().invalid_messages, 1u);
    EXPECT_EQ(c.replica(2).view(), 0u);
}

TEST(ViewChangeValidation, NewViewWithInsufficientVcsRejected) {
    Cluster c;
    // Drop everything so replica 2 sees only the forged NewView.
    c.drop_filter = [](NodeId, NodeId, const Message&) { return true; };
    c.replica(2).suspect();  // moves it into view change for view 1

    NewView nv;
    nv.view = 1;
    nv.view_changes = {make_vc(c, 1, 1), make_vc(c, 3, 1)};  // only 2 < 2f+1
    nv.primary = 1;
    nv.sig = c.crypto_of(1).sign(nv.signing_bytes());
    c.replica(2).on_message(1, Message{nv});
    EXPECT_GE(c.replica(2).stats().invalid_messages, 1u);
    EXPECT_EQ(c.replica(2).view(), 0u);  // never installed
}

TEST(ViewChangeValidation, NewViewWithWrongReproposalsRejected) {
    Cluster c;
    // A NewView whose O set does not match what the carried view changes
    // justify (here: an extra null slot the VCs never prepared) must be
    // rejected by the recomputation check.
    NewView bad;
    bad.view = 1;
    bad.view_changes = {make_vc(c, 1, 1), make_vc(c, 2, 1), make_vc(c, 3, 1)};
    PrePrepare extra;
    extra.view = 1;
    extra.seq = 1;
    extra.requests = {Request::null()};
    extra.req_digest = Request::null().digest();
    extra.primary = 1;
    extra.sig = c.crypto_of(1).sign(extra.signing_bytes());
    bad.reproposals.push_back(extra);  // O claims a slot the VCs don't justify
    bad.primary = 1;
    bad.sig = c.crypto_of(1).sign(bad.signing_bytes());

    c.replica(2).suspect();  // replica 2 is awaiting a NewView for view 1
    c.replica(2).on_message(1, Message{bad});
    EXPECT_GE(c.replica(2).stats().invalid_messages, 1u);
    EXPECT_EQ(c.replica(2).view(), 0u);
}

TEST(ViewChangeBackoff, RepeatedTimeoutsEscalateViews) {
    ReplicaConfig cfg;
    cfg.view_change_timeout = milliseconds(200);
    Cluster c(4, cfg);
    c.crash(0);
    c.crash(1);
    c.replica(2).suspect();
    c.replica(3).suspect();
    c.sim.run_until(seconds(10));
    // With 2 crashed there is never a quorum; targets keep escalating but
    // backoff keeps the attempt count sub-linear in time.
    const auto attempts = c.replica(2).stats().view_changes_started;
    EXPECT_GE(attempts, 3u);
    EXPECT_LT(attempts, 40u);  // without backoff: ~50 in 10 s at 200 ms
}

TEST(ViewChangeRecovery, MultipleConsecutiveFailovers) {
    ReplicaConfig cfg;
    cfg.view_change_timeout = milliseconds(400);
    Cluster c(7, cfg);  // f = 2: survives two failed primaries
    // Primary 0 dies; later the new primary 1 dies too.
    c.crash(0);
    for (NodeId i = 1; i < 7; ++i) c.replica(i).suspect();
    c.sim.run();
    EXPECT_EQ(c.replica(2).primary(), 1u);

    c.crash(1);
    for (NodeId i = 2; i < 7; ++i) c.replica(i).suspect();
    c.sim.run();
    EXPECT_EQ(c.replica(2).primary(), 2u);

    // Ordering works under the third primary.
    c.replica(2).propose(c.make_request(2, 1, to_bytes("third-era")));
    c.sim.run();
    for (NodeId i = 2; i < 7; ++i) {
        ASSERT_EQ(c.app(i).delivered.size(), 1u) << "replica " << i;
    }
}

// Helper: a checkpoint message for (seq, state) signed by `signer`.
Checkpoint make_ckpt(Cluster& c, NodeId signer, SeqNo seq, const crypto::Digest& state) {
    Checkpoint m;
    m.seq = seq;
    m.state = state;
    m.replica = signer;
    m.sig = c.crypto_of(signer).sign(m.signing_bytes());
    return m;
}

TEST(ProofHardening, DuplicateSignerCheckpointProofRejected) {
    Cluster c;
    const crypto::Digest state{};
    // 2f+1 checkpoint copies but one distinct signer: an equivocating
    // replica must not vouch for a stable checkpoint on its own.
    CheckpointProof proof;
    proof.seq = 10;
    proof.state = state;
    for (int i = 0; i < 3; ++i) proof.messages.push_back(make_ckpt(c, 2, 10, state));

    ViewChange vc;
    vc.new_view = 1;
    vc.last_stable = 10;
    vc.stable_proof = proof;
    vc.replica = 2;
    vc.sig = c.crypto_of(2).sign(vc.signing_bytes());
    c.replica(1).on_message(2, Message{vc});
    EXPECT_GE(c.replica(1).stats().invalid_messages, 1u);
    EXPECT_EQ(c.replica(1).view(), 0u);
}

TEST(ProofHardening, OversizeCheckpointProofRejected) {
    Cluster c;
    const crypto::Digest state{};
    // Every signature is valid and 4 distinct signers exceed the quorum,
    // but 5 messages for 4 replicas is impossible for an honest proof.
    CheckpointProof proof;
    proof.seq = 10;
    proof.state = state;
    for (NodeId signer : {0u, 1u, 2u, 3u, 0u}) {
        proof.messages.push_back(make_ckpt(c, signer, 10, state));
    }

    ViewChange vc;
    vc.new_view = 1;
    vc.last_stable = 10;
    vc.stable_proof = proof;
    vc.replica = 2;
    vc.sig = c.crypto_of(2).sign(vc.signing_bytes());
    c.replica(1).on_message(2, Message{vc});
    EXPECT_GE(c.replica(1).stats().invalid_messages, 1u);
    EXPECT_EQ(c.replica(1).view(), 0u);
}

TEST(ProofHardening, DuplicateSignerPreparedProofRejected) {
    Cluster c;
    const Request r = c.make_request(3, 1, to_bytes("under-quorum"));
    PrePrepare pp;
    pp.view = 0;
    pp.seq = 1;
    pp.requests = {r};
    pp.req_digest = PrePrepare::batch_digest(pp.requests);
    pp.primary = 0;
    pp.sig = c.crypto_of(0).sign(pp.signing_bytes());

    // 2f prepares, both from the same backup: one distinct signer.
    PreparedProof proof;
    proof.preprepare = pp;
    for (int i = 0; i < 2; ++i) {
        Prepare p;
        p.view = 0;
        p.seq = 1;
        p.req_digest = pp.req_digest;
        p.replica = 2;
        p.sig = c.crypto_of(2).sign(p.signing_bytes());
        proof.prepares.push_back(p);
    }

    ViewChange vc;
    vc.new_view = 1;
    vc.last_stable = 0;
    vc.prepared.push_back(proof);
    vc.replica = 2;
    vc.sig = c.crypto_of(2).sign(vc.signing_bytes());
    c.replica(1).on_message(2, Message{vc});
    EXPECT_GE(c.replica(1).stats().invalid_messages, 1u);
    EXPECT_EQ(c.replica(1).view(), 0u);
}

TEST(ProofHardening, MisalignedCheckpointRejected) {
    Cluster c;
    // Checkpoints only exist at multiples of the interval (10 here); a
    // validly signed one at seq 7 is fabricated by construction.
    c.replica(1).on_message(2, Message{make_ckpt(c, 2, 7, crypto::Digest{})});
    EXPECT_GE(c.replica(1).stats().invalid_messages, 1u);
}

TEST(ProofHardening, InvalidViewChangeDoesNotPoisonDedup) {
    Cluster c;
    // A rejected view change must not occupy the sender's dedup slot:
    // the genuine retry still counts toward the join rule and the
    // view-1 primary still assembles its NewView.
    ViewChange bad = make_vc(c, 2, 1);
    bad.sig = c.crypto_of(3).sign(bad.signing_bytes());  // invalid signature
    c.replica(1).on_message(2, Message{bad});
    EXPECT_GE(c.replica(1).stats().invalid_messages, 1u);

    c.replica(1).on_message(2, Message{make_vc(c, 2, 1)});
    c.replica(1).on_message(3, Message{make_vc(c, 3, 1)});
    c.sim.run_until(seconds(1));
    EXPECT_EQ(c.replica(1).view(), 1u);
}

}  // namespace
}  // namespace zc::pbft
