// Checkpoint/watermark edge cases and Byzantine checkpoint behaviour.
#include <gtest/gtest.h>

#include "pbft/harness.hpp"

namespace zc::pbft {
namespace {

using testing::Cluster;

TEST(PbftWatermarks, PrePrepareOutsideWindowIgnored) {
    ReplicaConfig cfg;
    cfg.watermark_window = 20;
    Cluster c(4, cfg);

    const Request r = c.make_request(0, 1, to_bytes("too-far"));
    PrePrepare pp;
    pp.view = 0;
    pp.seq = 21;  // beyond low + window... (low = 0, window = 20) -> 21 out
    pp.requests = {r};
    pp.req_digest = r.digest();
    pp.primary = 0;
    pp.sig = c.crypto_of(0).sign(pp.signing_bytes());
    c.replica(1).on_message(0, Message{pp});
    c.sim.run();
    EXPECT_TRUE(c.app(1).delivered.empty());
    EXPECT_EQ(c.replica(1).stats().prepares_sent, 0u);
}

TEST(PbftWatermarks, SeqZeroAndReplayIgnored) {
    Cluster c;
    const Request r = c.make_request(0, 1, to_bytes("x"));
    PrePrepare pp;
    pp.view = 0;
    pp.seq = 0;  // below low watermark
    pp.requests = {r};
    pp.req_digest = r.digest();
    pp.primary = 0;
    pp.sig = c.crypto_of(0).sign(pp.signing_bytes());
    c.replica(1).on_message(0, Message{pp});
    c.sim.run();
    EXPECT_TRUE(c.app(1).delivered.empty());
}

TEST(PbftCheckpoint, ByzantineDigestCannotStabilizeAlone) {
    ReplicaConfig cfg;
    cfg.checkpoint_interval = 5;
    Cluster c(4, cfg);
    for (int i = 0; i < 5; ++i) {
        c.replica(0).propose(c.make_request(0, static_cast<std::uint64_t>(i), to_bytes("x")));
    }
    c.sim.run();
    ASSERT_EQ(c.replica(1).last_stable(), 5u);
    const crypto::Digest honest = c.replica(1).latest_stable_proof()->state;

    // Node 3 broadcasts a *different* digest for the next checkpoint; it
    // can never reach 2f+1 on its own, so the lie goes nowhere.
    for (int i = 5; i < 10; ++i) {
        c.replica(0).propose(c.make_request(0, static_cast<std::uint64_t>(i), to_bytes("y")));
    }
    Checkpoint lie;
    lie.seq = 10;
    lie.state.fill(0x66);
    lie.replica = 3;
    lie.sig = c.crypto_of(3).sign(lie.signing_bytes());
    c.replica(1).on_message(3, Message{lie});
    c.sim.run();

    EXPECT_EQ(c.replica(1).last_stable(), 10u);
    EXPECT_NE(c.replica(1).latest_stable_proof()->state, lie.state);
    EXPECT_NE(honest, lie.state);
}

TEST(PbftCheckpoint, ProofRetentionBounded) {
    ReplicaConfig cfg;
    cfg.checkpoint_interval = 2;
    cfg.proof_retention = 3;
    Cluster c(4, cfg);
    for (int i = 0; i < 20; ++i) {
        c.replica(0).propose(c.make_request(0, static_cast<std::uint64_t>(i), to_bytes("x")));
    }
    c.sim.run();
    EXPECT_EQ(c.replica(1).last_stable(), 20u);
    // Old proofs evicted; only the most recent `proof_retention` remain.
    EXPECT_EQ(c.replica(1).stable_proof(2), nullptr);
    EXPECT_NE(c.replica(1).stable_proof(20), nullptr);
    EXPECT_NE(c.replica(1).stable_proof(16), nullptr);
}

TEST(PbftCheckpoint, StableProofQueryableBySeq) {
    ReplicaConfig cfg;
    cfg.checkpoint_interval = 5;
    Cluster c(4, cfg);
    for (int i = 0; i < 10; ++i) {
        c.replica(0).propose(c.make_request(0, static_cast<std::uint64_t>(i), to_bytes("x")));
    }
    c.sim.run();
    const CheckpointProof* p5 = c.replica(2).stable_proof(5);
    const CheckpointProof* p10 = c.replica(2).stable_proof(10);
    ASSERT_NE(p5, nullptr);
    ASSERT_NE(p10, nullptr);
    EXPECT_EQ(p5->seq, 5u);
    EXPECT_EQ(p10->seq, 10u);
    EXPECT_NE(p5->state, p10->state);
}

TEST(PbftCheckpoint, DigestsDivergeIfAppsDiverge) {
    // Sanity for the whole safety story: if (hypothetically) a replica's
    // application state diverged, its checkpoint digest differs and the
    // divergent node cannot contribute to the honest stable checkpoint.
    Cluster c;
    // Make node 3's app diverge by feeding it a fake deliver directly.
    c.app(3).deliver(c.make_request(2, 999, to_bytes("divergence")), 0);
    ReplicaConfig cfg;
    cfg.checkpoint_interval = 10;
    for (int i = 0; i < 10; ++i) {
        c.replica(0).propose(c.make_request(0, static_cast<std::uint64_t>(i), to_bytes("x")));
    }
    c.sim.run();
    EXPECT_NE(c.app(3).state_digest(10), c.app(0).state_digest(10));
    // The honest majority still stabilized without node 3's digest.
    EXPECT_EQ(c.replica(0).last_stable(), 10u);
}

}  // namespace
}  // namespace zc::pbft
