// In-process PBFT test cluster: n replicas wired through a scriptable
// loopback transport on the discrete-event simulation. Tests inject
// drops/delays per (from, to, message) to create Byzantine scenarios.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "crypto/sha256.hpp"
#include "pbft/replica.hpp"

namespace zc::pbft::testing {

/// Deterministic application: folds delivered request digests into a
/// running hash, which doubles as the checkpoint state digest.
class TestApp final : public Application {
public:
    void deliver(const Request& request, SeqNo seq) override {
        delivered.emplace_back(request, seq);
        if (!request.is_null()) {
            crypto::Sha256 h;
            h.update(state_.data(), state_.size());
            const auto d = request.digest();
            h.update(d.data(), d.size());
            state_ = h.finalize();
        }
    }

    crypto::Digest state_digest(SeqNo) override { return state_; }

    void new_primary(View view, NodeId primary) override {
        primaries.emplace_back(view, primary);
    }

    void stable_checkpoint(SeqNo seq, const CheckpointProof& proof) override {
        stable.emplace_back(seq, proof);
    }

    void preprepared(const Request& request) override { preprepared_count += !request.is_null(); }

    void sync_state(SeqNo seq, const crypto::Digest& state) override {
        state_ = state;
        syncs.emplace_back(seq, state);
    }

    std::vector<std::pair<Request, SeqNo>> delivered;
    std::vector<std::pair<View, NodeId>> primaries;
    std::vector<std::pair<SeqNo, CheckpointProof>> stable;
    std::vector<std::pair<SeqNo, crypto::Digest>> syncs;
    int preprepared_count = 0;

private:
    crypto::Digest state_{};
};

class Cluster;

class LoopbackTransport final : public Transport {
public:
    LoopbackTransport(Cluster& cluster, NodeId self) : cluster_(cluster), self_(self) {}
    void send(NodeId to, const Message& m) override;
    void broadcast(const Message& m) override;

private:
    Cluster& cluster_;
    NodeId self_;
};

class Cluster {
public:
    /// Returns true if the message should be dropped.
    using DropFilter = std::function<bool(NodeId from, NodeId to, const Message&)>;

    explicit Cluster(std::uint32_t n = 4, ReplicaConfig base = {}, std::uint64_t seed = 1)
        : sim(seed), n_(n) {
        Rng keyrng = sim.rng().fork("keys");
        std::vector<crypto::KeyPair> keys;
        for (std::uint32_t i = 0; i < n; ++i) {
            keys.push_back(provider.generate(keyrng));
            directory.register_key(i, keys.back().pub);
        }
        for (std::uint32_t i = 0; i < n; ++i) {
            auto node = std::make_unique<Node>();
            node->meter = std::make_unique<crypto::WorkMeter>();
            node->crypto = std::make_unique<crypto::CryptoContext>(provider, directory, keys[i],
                                                                   costs, *node->meter);
            node->app = std::make_unique<TestApp>();
            node->transport = std::make_unique<LoopbackTransport>(*this, i);
            ReplicaConfig cfg = base;
            cfg.id = i;
            cfg.n = n;
            cfg.f = (n - 1) / 3;
            node->replica = std::make_unique<Replica>(cfg, sim, *node->crypto, *node->transport,
                                                      *node->app);
            nodes_.push_back(std::move(node));
        }
    }

    Replica& replica(NodeId id) { return *nodes_[id]->replica; }
    TestApp& app(NodeId id) { return *nodes_[id]->app; }
    crypto::CryptoContext& crypto_of(NodeId id) { return *nodes_[id]->crypto; }
    std::uint32_t size() const { return n_; }

    /// Builds a signed request originating at `origin`.
    Request make_request(NodeId origin, std::uint64_t origin_seq, BytesView payload) {
        Request r;
        r.payload = Bytes(payload.begin(), payload.end());
        r.origin = origin;
        r.origin_seq = origin_seq;
        r.sig = crypto_of(origin).sign(r.signing_bytes());
        return r;
    }

    void deliver(NodeId from, NodeId to, const Message& m) {
        if (drop_filter && drop_filter(from, to, m)) return;
        const Duration d = delay_fn ? delay_fn(from, to, m) : microseconds(100);
        sim.schedule(d, [this, from, to, m] {
            if (crashed_[to]) return;
            nodes_[to]->replica->on_message(from, m);
        });
    }

    void crash(NodeId id) { crashed_[id] = true; }

    /// True when every live replica has executed at least `seq`.
    bool all_executed(SeqNo seq) {
        for (std::uint32_t i = 0; i < n_; ++i) {
            if (crashed_[i]) continue;
            if (nodes_[i]->replica->last_executed() < seq) return false;
        }
        return true;
    }

    sim::Simulation sim;
    crypto::FastProvider provider;
    crypto::KeyDirectory directory;
    metrics::CostModel costs;
    DropFilter drop_filter;
    std::function<Duration(NodeId, NodeId, const Message&)> delay_fn;

private:
    struct Node {
        std::unique_ptr<crypto::WorkMeter> meter;
        std::unique_ptr<crypto::CryptoContext> crypto;
        std::unique_ptr<TestApp> app;
        std::unique_ptr<LoopbackTransport> transport;
        std::unique_ptr<Replica> replica;
    };

    std::uint32_t n_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::map<NodeId, bool> crashed_;
};

inline void LoopbackTransport::send(NodeId to, const Message& m) {
    cluster_.deliver(self_, to, m);
}

inline void LoopbackTransport::broadcast(const Message& m) {
    for (std::uint32_t i = 0; i < cluster_.size(); ++i) {
        if (i != self_) cluster_.deliver(self_, i, m);
    }
}

}  // namespace zc::pbft::testing
