// Batch-ordering edges and the bugfix sweep that rode along with it:
// flush policies (size, bytes, linger), checkpoint interaction, malformed
// batches, view changes with half-open batches, stale-primary
// re-forwarding, the bounded pending queue, and request-timer teardown.
#include <gtest/gtest.h>

#include "pbft/harness.hpp"

namespace zc::pbft {
namespace {

using testing::Cluster;

ReplicaConfig batching(std::uint32_t batch, Duration linger) {
    ReplicaConfig cfg;
    cfg.max_batch_requests = batch;
    cfg.batch_linger = linger;
    return cfg;
}

// ---- wire format -------------------------------------------------------

TEST(BatchWire, SingleRequestKeepsLegacyTagAndDigest) {
    Cluster c;
    PrePrepare pp;
    pp.view = 0;
    pp.seq = 1;
    pp.requests = {c.make_request(0, 1, to_bytes("solo"))};
    pp.req_digest = PrePrepare::batch_digest(pp.requests);
    pp.primary = 0;
    pp.sig = c.crypto_of(0).sign(pp.signing_bytes());

    // A batch of one commits to the request's own digest (proof-compatible
    // with the pre-batching format) and frames with the legacy tag.
    EXPECT_EQ(pp.req_digest, pp.requests[0].digest());
    const Bytes wire = encode_message(Message{pp});
    EXPECT_EQ(wire[0], 2);
    const auto m = decode_message(wire);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(std::get<PrePrepare>(*m), pp);
}

TEST(BatchWire, MultiRequestRoundTripsUnderBatchedTag) {
    Cluster c;
    PrePrepare pp;
    pp.view = 2;
    pp.seq = 9;
    pp.requests = {c.make_request(0, 1, to_bytes("a")), c.make_request(1, 1, to_bytes("b")),
                   c.make_request(2, 1, to_bytes("c"))};
    pp.req_digest = PrePrepare::batch_digest(pp.requests);
    pp.primary = 2;
    pp.sig = c.crypto_of(2).sign(pp.signing_bytes());

    const Bytes wire = encode_message(Message{pp});
    EXPECT_EQ(wire[0], 8);
    const auto m = decode_message(wire);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(std::get<PrePrepare>(*m), pp);

    // The batch digest binds order: swapping two requests changes it.
    const std::vector<Request> swapped = {pp.requests[1], pp.requests[0], pp.requests[2]};
    EXPECT_NE(PrePrepare::batch_digest(swapped), pp.req_digest);
}

TEST(BatchWire, EmptyBatchRejectedOnDecode) {
    codec::Writer w(128);
    w.u8(8);  // batched preprepare transport tag
    w.u64(0);
    w.u64(1);
    w.raw(crypto::Digest{});
    w.varint(0);  // zero requests: invalid
    w.u32(0);
    w.raw(crypto::Signature{}.v);
    EXPECT_FALSE(decode_message(w.take()).has_value());
}

// ---- flush policy ------------------------------------------------------

TEST(BatchFlush, SizeCutoffFlushesImmediately) {
    Cluster c(4, batching(3, milliseconds(100)));
    for (std::uint64_t i = 0; i < 3; ++i) {
        c.replica(0).propose(c.make_request(0, i, to_bytes("r" + std::to_string(i))));
    }
    // The third request hit the size cutoff: flushed synchronously, no
    // linger wait.
    EXPECT_EQ(c.replica(0).open_batch_size(), 0u);
    c.sim.run();

    EXPECT_EQ(c.replica(0).stats().batches_proposed, 1u);
    EXPECT_EQ(c.replica(0).stats().batched_requests, 3u);
    for (NodeId i = 0; i < 4; ++i) {
        ASSERT_EQ(c.app(i).delivered.size(), 3u) << "replica " << i;
        // One instance: every request delivered under the same seq.
        for (const auto& [req, seq] : c.app(i).delivered) EXPECT_EQ(seq, 1u);
    }
    EXPECT_EQ(c.replica(1).last_executed(), 1u);
}

TEST(BatchFlush, LingerTimerFlushesPartialBatch) {
    Cluster c(4, batching(8, milliseconds(5)));
    c.replica(0).propose(c.make_request(0, 1, to_bytes("first")));
    c.replica(0).propose(c.make_request(0, 2, to_bytes("second")));
    EXPECT_EQ(c.replica(0).open_batch_size(), 2u);  // below the cutoff: held open

    c.sim.run();  // linger expires, the partial batch of two flushes

    EXPECT_EQ(c.replica(0).stats().batches_proposed, 1u);
    EXPECT_EQ(c.replica(0).stats().batched_requests, 2u);
    for (NodeId i = 0; i < 4; ++i) {
        ASSERT_EQ(c.app(i).delivered.size(), 2u) << "replica " << i;
        EXPECT_EQ(c.app(i).delivered[0].second, 1u);
        EXPECT_EQ(c.app(i).delivered[1].second, 1u);
    }
}

TEST(BatchFlush, ByteCutoffOverridesRequestCount) {
    ReplicaConfig cfg = batching(100, milliseconds(100));
    cfg.max_batch_bytes = 256;  // two ~180-byte requests trip it
    Cluster c(4, cfg);
    c.replica(0).propose(c.make_request(0, 1, Bytes(100, 0xaa)));
    EXPECT_EQ(c.replica(0).open_batch_size(), 1u);
    c.replica(0).propose(c.make_request(0, 2, Bytes(100, 0xbb)));
    EXPECT_EQ(c.replica(0).open_batch_size(), 0u);  // flushed on bytes
    c.sim.run();
    EXPECT_EQ(c.replica(0).stats().batches_proposed, 1u);
    EXPECT_EQ(c.replica(0).stats().batched_requests, 2u);
}

TEST(BatchFlush, DuplicateWithinOpenBatchBlocked) {
    Cluster c(4, batching(8, milliseconds(5)));
    const Request r = c.make_request(0, 1, to_bytes("once"));
    EXPECT_TRUE(c.replica(0).propose(r));
    EXPECT_FALSE(c.replica(0).propose(r));  // still sitting in the open batch
    EXPECT_EQ(c.replica(0).stats().duplicate_proposals_blocked, 1u);
    c.sim.run();
    EXPECT_EQ(c.app(1).delivered.size(), 1u);
}

// ---- checkpoint interaction --------------------------------------------

TEST(BatchCheckpoint, BatchedSequencesStillCheckpointPerInterval) {
    ReplicaConfig cfg = batching(3, milliseconds(2));
    cfg.checkpoint_interval = 2;
    Cluster c(4, cfg);
    // Two full batches of three -> seqs 1 and 2; seq 2 closes a block.
    for (std::uint64_t i = 0; i < 6; ++i) {
        c.replica(0).propose(c.make_request(0, i, to_bytes("t" + std::to_string(i))));
    }
    c.sim.run();

    for (NodeId i = 0; i < 4; ++i) {
        ASSERT_EQ(c.app(i).delivered.size(), 6u) << "replica " << i;
        EXPECT_GE(c.replica(i).stats().checkpoints_stable, 1u);
        EXPECT_EQ(c.replica(i).last_stable(), 2u);
        // Checkpoint digests agree: every node folded the same requests in
        // the same order.
        EXPECT_EQ(c.app(i).state_digest(2), c.app(0).state_digest(2));
    }
}

// ---- malformed batches -------------------------------------------------

TEST(BatchValidation, DuplicateRequestInsideProposedBatchRejected) {
    Cluster c;
    const Request r = c.make_request(0, 1, to_bytes("twice"));
    PrePrepare pp;
    pp.view = 0;
    pp.seq = 1;
    pp.requests = {r, r};
    pp.req_digest = PrePrepare::batch_digest(pp.requests);
    pp.primary = 0;
    pp.sig = c.crypto_of(0).sign(pp.signing_bytes());

    c.replica(1).on_message(0, Message{pp});
    c.sim.run();
    EXPECT_GE(c.replica(1).stats().invalid_messages, 1u);
    EXPECT_EQ(c.replica(1).stats().prepares_sent, 0u);
    EXPECT_TRUE(c.app(1).delivered.empty());
}

TEST(BatchValidation, NullFillerMayNotTravelInsideMultiRequestBatch) {
    Cluster c;
    PrePrepare pp;
    pp.view = 0;
    pp.seq = 1;
    pp.requests = {c.make_request(0, 1, to_bytes("real")), Request::null()};
    pp.req_digest = PrePrepare::batch_digest(pp.requests);
    pp.primary = 0;
    pp.sig = c.crypto_of(0).sign(pp.signing_bytes());

    c.replica(1).on_message(0, Message{pp});
    EXPECT_GE(c.replica(1).stats().invalid_messages, 1u);
    EXPECT_EQ(c.replica(1).stats().prepares_sent, 0u);
}

// ---- view change with a half-open batch --------------------------------

TEST(BatchViewChange, HalfOpenBatchReroutedToNewPrimary) {
    // Linger beyond the depose point (10 ms) so primary 0's batch is still
    // open when the view changes, but short enough that the new primary
    // flushes the rerouted requests within the test window.
    ReplicaConfig cfg = batching(8, milliseconds(50));
    cfg.request_timeout = milliseconds(500);
    Cluster c(4, cfg);

    c.replica(0).propose(c.make_request(0, 1, to_bytes("open-1")));
    c.replica(0).propose(c.make_request(0, 2, to_bytes("open-2")));
    EXPECT_EQ(c.replica(0).open_batch_size(), 2u);

    // The cluster deposes primary 0 before its batch flushes.
    c.sim.run_for(milliseconds(10));
    c.replica(1).suspect();
    c.replica(2).suspect();
    c.replica(3).suspect();
    c.sim.run_for(milliseconds(300));

    EXPECT_EQ(c.replica(0).view(), 1u);
    EXPECT_EQ(c.replica(0).open_batch_size(), 0u);
    EXPECT_EQ(c.replica(0).stats().pending_rerouted, 2u);
    // The rerouted requests were ordered under the new primary everywhere.
    for (NodeId i = 0; i < 4; ++i) {
        ASSERT_EQ(c.app(i).delivered.size(), 2u) << "replica " << i;
    }
}

// ---- bugfix regressions ------------------------------------------------

// A backup forwarded a request to the primary exactly once; after a view
// change the request was stranded with the deposed primary forever. The
// new-view reroute must re-forward it.
TEST(BugfixStaleForward, BackupReforwardsToNewPrimaryAfterViewChange) {
    ReplicaConfig cfg;
    cfg.request_timeout = milliseconds(500);
    Cluster c(4, cfg);
    c.crash(0);  // primary silently gone: the forward below is swallowed

    const Request r = c.make_request(2, 1, to_bytes("stranded"));
    c.replica(2).propose(r);  // forwards to dead primary 0, arms the timer
    c.sim.run_for(milliseconds(10));
    EXPECT_TRUE(c.app(2).delivered.empty());

    c.replica(1).suspect();
    c.replica(2).suspect();
    c.replica(3).suspect();
    c.sim.run_for(milliseconds(300));

    // View 1 installed and the re-forwarded request decided by the
    // surviving quorum.
    EXPECT_EQ(c.replica(2).view(), 1u);
    for (NodeId i = 1; i < 4; ++i) {
        ASSERT_EQ(c.app(i).delivered.size(), 1u) << "replica " << i;
        EXPECT_EQ(c.app(i).delivered[0].first, r);
    }
}

// The primary's watermark-blocked queue was unbounded and died with the
// primary's term. It must cap (with a drop counter) and hand surviving
// entries to the next primary.
TEST(BugfixPendingQueue, BoundedAndHandedToNextPrimary) {
    ReplicaConfig cfg;
    cfg.checkpoint_interval = 2;
    cfg.watermark_window = 4;
    cfg.max_pending = 3;
    cfg.request_timeout = milliseconds(500);
    Cluster c(4, cfg);
    // Stall checkpoints: watermarks never advance past seq 4.
    c.drop_filter = [](NodeId, NodeId, const Message& m) {
        return std::holds_alternative<Checkpoint>(m);
    };

    for (std::uint64_t i = 0; i < 10; ++i) {
        c.replica(0).propose(c.make_request(0, i, to_bytes("q" + std::to_string(i))));
    }
    // Seqs 1..4 were assigned; of the six blocked proposals only
    // max_pending survive, the rest are dropped and counted.
    EXPECT_EQ(c.replica(0).pending_size(), 3u);
    EXPECT_EQ(c.replica(0).stats().pending_dropped, 3u);
    c.sim.run();

    c.replica(1).suspect();
    c.replica(2).suspect();
    c.replica(3).suspect();
    c.sim.run_for(milliseconds(300));

    // The deposed primary handed its queue to the new one, which parks the
    // requests behind its own (still stalled) watermarks.
    EXPECT_EQ(c.replica(0).view(), 1u);
    EXPECT_EQ(c.replica(0).pending_size(), 0u);
    EXPECT_EQ(c.replica(0).stats().pending_rerouted, 3u);
    EXPECT_EQ(c.replica(1).pending_size(), 3u);
}

// Request timers survived a node crash: the zombie timer fired during the
// outage and suspected a primary that was never slow. Node::crash() now
// tears them down via cancel_timers().
TEST(BugfixTimerTeardown, CanceledTimersDoNotSuspectAfterCrash) {
    ReplicaConfig cfg;
    cfg.request_timeout = milliseconds(500);

    // Control: without the teardown the orphaned timer fires and suspects.
    {
        Cluster c(4, cfg);
        c.crash(0);
        c.replica(2).propose(c.make_request(2, 1, to_bytes("orphan")));
        c.sim.run_for(seconds(2));
        EXPECT_GE(c.replica(2).stats().view_changes_started, 1u);
    }

    // With the crash teardown (what Node::crash() invokes) the timer is
    // gone and no spurious suspicion is raised.
    {
        Cluster c(4, cfg);
        c.crash(0);
        c.replica(2).propose(c.make_request(2, 1, to_bytes("orphan")));
        c.sim.run_for(milliseconds(100));
        c.crash(2);
        c.replica(2).cancel_timers();
        c.sim.run_for(seconds(2));
        EXPECT_EQ(c.replica(2).stats().view_changes_started, 0u);
    }
}

// ---- determinism -------------------------------------------------------

TEST(BatchDeterminism, SameSeedSameDeliveryWithBatchingOn) {
    const auto run = [](std::uint64_t seed) {
        Cluster c(4, batching(4, milliseconds(2)), seed);
        for (std::uint64_t i = 0; i < 20; ++i) {
            c.replica(i % 2).propose(
                c.make_request(static_cast<NodeId>(i % 2), i, to_bytes("d" + std::to_string(i))));
        }
        c.sim.run();
        std::vector<std::pair<crypto::Digest, SeqNo>> out;
        for (const auto& [req, seq] : c.app(3).delivered) out.emplace_back(req.digest(), seq);
        return out;
    };
    const auto a = run(7);
    const auto b = run(7);
    ASSERT_EQ(a, b);
    EXPECT_FALSE(a.empty());
}

}  // namespace
}  // namespace zc::pbft
