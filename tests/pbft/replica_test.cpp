#include <gtest/gtest.h>

#include "pbft/harness.hpp"

namespace zc::pbft {
namespace {

using testing::Cluster;

TEST(PbftOrdering, SingleRequestDecidedEverywhere) {
    Cluster c;
    const Request r = c.make_request(0, 1, to_bytes("cycle-1"));
    c.replica(0).propose(r);
    c.sim.run();

    for (NodeId i = 0; i < 4; ++i) {
        ASSERT_EQ(c.app(i).delivered.size(), 1u) << "replica " << i;
        EXPECT_EQ(c.app(i).delivered[0].first, r);
        EXPECT_EQ(c.app(i).delivered[0].second, 1u);
    }
}

TEST(PbftOrdering, ManyRequestsSameOrderEverywhere) {
    Cluster c;
    for (int i = 0; i < 50; ++i) {
        c.replica(0).propose(
            c.make_request(0, static_cast<std::uint64_t>(i), to_bytes("req-" + std::to_string(i))));
    }
    c.sim.run();

    ASSERT_EQ(c.app(0).delivered.size(), 50u);
    for (NodeId i = 1; i < 4; ++i) {
        ASSERT_EQ(c.app(i).delivered.size(), 50u);
        for (std::size_t k = 0; k < 50; ++k) {
            EXPECT_EQ(c.app(i).delivered[k].first, c.app(0).delivered[k].first);
            EXPECT_EQ(c.app(i).delivered[k].second, c.app(0).delivered[k].second);
        }
    }
}

TEST(PbftOrdering, DuplicateProposalFilteredByPrimary) {
    Cluster c;
    const Request r = c.make_request(1, 5, to_bytes("dup"));
    c.replica(0).propose(r);
    c.replica(0).propose(r);
    c.sim.run();
    EXPECT_EQ(c.app(0).delivered.size(), 1u);
    EXPECT_EQ(c.replica(0).stats().duplicate_proposals_blocked, 1u);
}

TEST(PbftOrdering, SamePayloadDifferentOriginOrderedTwice) {
    // Standard PBFT dedups full requests only — this is exactly why the
    // baseline orders bus data up to n times (paper §VI).
    Cluster c;
    c.replica(0).propose(c.make_request(0, 1, to_bytes("identical")));
    c.replica(0).propose(c.make_request(1, 1, to_bytes("identical")));
    c.sim.run();
    EXPECT_EQ(c.app(0).delivered.size(), 2u);
}

TEST(PbftOrdering, BackupProposeForwardsToPrimary) {
    Cluster c;
    c.replica(2).propose(c.make_request(2, 9, to_bytes("from-backup")));
    c.sim.run();
    for (NodeId i = 0; i < 4; ++i) {
        ASSERT_EQ(c.app(i).delivered.size(), 1u);
        EXPECT_EQ(c.app(i).delivered[0].first.origin, 2u);
    }
}

TEST(PbftOrdering, ProgressWithOneCrashedBackup) {
    Cluster c;
    c.crash(3);
    for (int i = 0; i < 10; ++i) {
        c.replica(0).propose(c.make_request(0, static_cast<std::uint64_t>(i), to_bytes("x")));
    }
    c.sim.run();
    for (NodeId i = 0; i < 3; ++i) EXPECT_EQ(c.app(i).delivered.size(), 10u);
}

TEST(PbftOrdering, NoProgressWithTwoCrashedBackups) {
    Cluster c;
    c.crash(2);
    c.crash(3);
    c.replica(0).propose(c.make_request(0, 1, to_bytes("x")));
    c.sim.run();
    EXPECT_TRUE(c.app(0).delivered.empty());
    EXPECT_TRUE(c.app(1).delivered.empty());
}

TEST(PbftOrdering, PrepreparedUpcallFires) {
    Cluster c;
    c.replica(0).propose(c.make_request(0, 1, to_bytes("x")));
    c.sim.run();
    EXPECT_GE(c.app(1).preprepared_count, 1);
}

TEST(PbftCheckpoint, StableAfterIntervalDecisions) {
    ReplicaConfig cfg;
    cfg.checkpoint_interval = 10;
    Cluster c(4, cfg);
    for (int i = 0; i < 10; ++i) {
        c.replica(0).propose(c.make_request(0, static_cast<std::uint64_t>(i), to_bytes("x")));
    }
    c.sim.run();
    for (NodeId i = 0; i < 4; ++i) {
        EXPECT_EQ(c.replica(i).last_stable(), 10u) << "replica " << i;
        ASSERT_FALSE(c.app(i).stable.empty());
        const auto& [seq, proof] = c.app(i).stable.back();
        EXPECT_EQ(seq, 10u);
        EXPECT_GE(proof.messages.size(), 3u);
        EXPECT_EQ(proof.state, c.app(i).state_digest(10));
    }
}

TEST(PbftCheckpoint, ProofSignaturesVerify) {
    ReplicaConfig cfg;
    cfg.checkpoint_interval = 5;
    Cluster c(4, cfg);
    for (int i = 0; i < 5; ++i) {
        c.replica(0).propose(c.make_request(0, static_cast<std::uint64_t>(i), to_bytes("x")));
    }
    c.sim.run();

    const CheckpointProof* proof = c.replica(1).latest_stable_proof();
    ASSERT_NE(proof, nullptr);
    std::set<NodeId> signers;
    for (const Checkpoint& ck : proof->messages) {
        EXPECT_TRUE(c.crypto_of(0).verify(ck.replica, ck.signing_bytes(), ck.sig));
        EXPECT_EQ(ck.seq, proof->seq);
        EXPECT_EQ(ck.state, proof->state);
        signers.insert(ck.replica);
    }
    EXPECT_GE(signers.size(), 3u);
}

TEST(PbftCheckpoint, LogGarbageCollected) {
    metrics::MemoryTracker tracker;
    (void)tracker;
    ReplicaConfig cfg;
    cfg.checkpoint_interval = 10;
    Cluster c(4, cfg);
    for (int i = 0; i < 40; ++i) {
        c.replica(0).propose(c.make_request(0, static_cast<std::uint64_t>(i), to_bytes("x")));
    }
    c.sim.run();
    EXPECT_EQ(c.replica(1).last_stable(), 40u);
    // A request digest decided long before the watermark horizon is
    // eventually forgotten; recent ones are retained.
    EXPECT_TRUE(c.replica(1).knows_request(c.make_request(0, 39, to_bytes("x")).digest()));
}

TEST(PbftCheckpoint, WatermarkBlockedProposalsDrainAfterCheckpoint) {
    ReplicaConfig cfg;
    cfg.checkpoint_interval = 10;
    cfg.watermark_window = 20;
    Cluster c(4, cfg);
    // 60 proposals with a 20-wide window: must all decide eventually.
    for (int i = 0; i < 60; ++i) {
        c.replica(0).propose(c.make_request(0, static_cast<std::uint64_t>(i), to_bytes("x")));
    }
    c.sim.run();
    for (NodeId i = 0; i < 4; ++i) EXPECT_EQ(c.app(i).delivered.size(), 60u);
}

TEST(PbftViewChange, SuspectElectsNextPrimary) {
    Cluster c;
    // Primary 0 goes silent; backups suspect it.
    c.crash(0);
    c.replica(1).suspect();
    c.replica(2).suspect();
    c.replica(3).suspect();
    c.sim.run();
    for (NodeId i = 1; i < 4; ++i) {
        EXPECT_EQ(c.replica(i).view(), 1u) << "replica " << i;
        EXPECT_EQ(c.replica(i).primary(), 1u);
        ASSERT_FALSE(c.app(i).primaries.empty());
        EXPECT_EQ(c.app(i).primaries.back().second, 1u);
    }
}

TEST(PbftViewChange, OrderingResumesInNewView) {
    Cluster c;
    c.crash(0);
    c.replica(1).suspect();
    c.replica(2).suspect();
    c.replica(3).suspect();
    c.sim.run();
    ASSERT_EQ(c.replica(1).primary(), 1u);

    c.replica(1).propose(c.make_request(1, 1, to_bytes("post-vc")));
    c.sim.run();
    for (NodeId i = 1; i < 4; ++i) {
        ASSERT_EQ(c.app(i).delivered.size(), 1u);
        EXPECT_EQ(c.app(i).delivered[0].first.origin, 1u);
    }
}

TEST(PbftViewChange, PreparedRequestSurvivesViewChange) {
    Cluster c;
    // Let the primary preprepare + gather prepares, but block all commits
    // so nothing executes; then change views. The new primary must
    // re-propose the prepared request.
    c.drop_filter = [](NodeId, NodeId, const Message& m) {
        return std::holds_alternative<Commit>(m);
    };
    const Request r = c.make_request(0, 1, to_bytes("must-survive"));
    c.replica(0).propose(r);
    c.sim.run();
    EXPECT_TRUE(c.app(1).delivered.empty());

    c.drop_filter = nullptr;
    c.crash(0);
    c.replica(1).suspect();
    c.replica(2).suspect();
    c.replica(3).suspect();
    c.sim.run();

    for (NodeId i = 1; i < 4; ++i) {
        ASSERT_EQ(c.app(i).delivered.size(), 1u) << "replica " << i;
        EXPECT_EQ(c.app(i).delivered[0].first, r);
        EXPECT_EQ(c.app(i).delivered[0].second, 1u);
    }
}

TEST(PbftViewChange, SingleSuspectDoesNotChangeView) {
    // One faulty suspicion must not move the group (f+1 join rule). The
    // suspecting replica keeps escalating on its timer, so the run must be
    // time-bounded rather than drained.
    Cluster c;
    c.replica(3).suspect();
    c.sim.run_until(seconds(1));
    EXPECT_EQ(c.replica(0).view(), 0u);
    EXPECT_EQ(c.replica(1).view(), 0u);
    EXPECT_EQ(c.replica(2).view(), 0u);
    // The others keep operating in view 0.
    c.replica(0).propose(c.make_request(0, 1, to_bytes("still-v0")));
    c.sim.run_until(c.sim.now() + milliseconds(100));
    EXPECT_EQ(c.app(0).delivered.size(), 1u);
}

TEST(PbftViewChange, JoinRuleFollowsQuorumSuspicion) {
    // f+1 = 2 suspicions pull the remaining correct replica along even
    // without its own timeout.
    Cluster c;
    c.crash(0);
    c.replica(1).suspect();
    c.replica(2).suspect();
    c.sim.run();
    EXPECT_EQ(c.replica(3).view(), 1u);
}

TEST(PbftViewChange, RequestTimeoutTriggersViewChange) {
    ReplicaConfig cfg;
    cfg.request_timeout = milliseconds(500);
    Cluster c(4, cfg);
    // Primary 0 drops everything (censorship): backups that received the
    // forwarded request time out and change views.
    c.drop_filter = [](NodeId, NodeId to, const Message&) { return to == 0; };
    const Request r = c.make_request(1, 1, to_bytes("censored"));
    c.replica(1).propose(r);
    c.replica(2).propose(r);
    c.replica(3).propose(r);
    c.sim.run();
    EXPECT_GE(c.replica(1).view(), 1u);
    // After the view change the request is re-proposed by clients in the
    // baseline; here we just check the view moved and a new primary exists.
    ASSERT_FALSE(c.app(2).primaries.empty());
}

TEST(PbftViewChange, CascadingTimeoutSkipsUnresponsiveNewPrimary) {
    ReplicaConfig cfg;
    cfg.view_change_timeout = milliseconds(300);
    Cluster c(4, cfg);
    c.crash(0);
    c.crash(1);  // both the old and the would-be new primary are dead
    c.replica(2).suspect();
    c.replica(3).suspect();
    c.sim.run_until(c.sim.now() + seconds(5));
    // View 1's primary (1) never answers; with only 2 live replicas no
    // 2f+1 quorum can form, so the survivors keep escalating targets (the
    // installed view only advances on a NewView).
    EXPECT_TRUE(c.replica(2).in_view_change());
    EXPECT_GE(c.replica(2).stats().view_changes_started, 2u);
    EXPECT_GE(c.replica(3).stats().view_changes_started, 2u);
}

TEST(PbftByzantine, EquivocatingPrimaryGetsSuspected) {
    Cluster c;
    // Craft two conflicting preprepares for seq 1 signed by the primary.
    const Request r1 = c.make_request(0, 1, to_bytes("version-a"));
    const Request r2 = c.make_request(0, 2, to_bytes("version-b"));

    PrePrepare pp1;
    pp1.view = 0;
    pp1.seq = 1;
    pp1.requests = {r1};
    pp1.req_digest = r1.digest();
    pp1.primary = 0;
    pp1.sig = c.crypto_of(0).sign(pp1.signing_bytes());

    PrePrepare pp2 = pp1;
    pp2.requests = {r2};
    pp2.req_digest = r2.digest();
    pp2.sig = c.crypto_of(0).sign(pp2.signing_bytes());

    c.replica(1).on_message(0, Message{pp1});
    c.replica(1).on_message(0, Message{pp2});
    EXPECT_GE(c.replica(1).stats().view_changes_started, 1u);
}

TEST(PbftByzantine, ForgedSignatureRejected) {
    Cluster c;
    const Request r = c.make_request(1, 1, to_bytes("payload"));
    PrePrepare pp;
    pp.view = 0;
    pp.seq = 1;
    pp.requests = {r};
    pp.req_digest = r.digest();
    pp.primary = 0;
    pp.sig = c.crypto_of(2).sign(pp.signing_bytes());  // wrong signer

    c.replica(1).on_message(0, Message{pp});
    c.sim.run();
    EXPECT_TRUE(c.app(1).delivered.empty());
    EXPECT_GE(c.replica(1).stats().invalid_messages, 1u);
}

TEST(PbftByzantine, PrepareFromImpersonatorRejected) {
    Cluster c;
    const Request r = c.make_request(0, 1, to_bytes("x"));
    c.replica(0).propose(r);
    // Byzantine node 3 injects a prepare claiming to be from node 2.
    Prepare p;
    p.view = 0;
    p.seq = 1;
    p.req_digest = r.digest();
    p.replica = 2;
    p.sig = c.crypto_of(3).sign(p.signing_bytes());
    c.replica(1).on_message(3, Message{p});  // transport says "from 3"
    c.sim.run();
    EXPECT_GE(c.replica(1).stats().invalid_messages, 1u);
    // Ordering still completes correctly.
    EXPECT_EQ(c.app(1).delivered.size(), 1u);
}

TEST(PbftByzantine, CorruptRequestSignatureNotOrdered) {
    Cluster c;
    Request r = c.make_request(1, 1, to_bytes("x"));
    r.payload.push_back(0x00);  // invalidates the origin signature
    c.replica(0).on_message(1, Message{r});
    c.sim.run();
    EXPECT_TRUE(c.app(0).delivered.empty());
}

TEST(PbftStateTransfer, LaggingReplicaSyncsViaCheckpoint) {
    ReplicaConfig cfg;
    cfg.checkpoint_interval = 10;
    Cluster c(4, cfg);
    // Node 3 misses everything until the checkpoint is stable elsewhere.
    c.drop_filter = [](NodeId, NodeId to, const Message& m) {
        return to == 3 && !std::holds_alternative<Checkpoint>(m);
    };
    for (int i = 0; i < 10; ++i) {
        c.replica(0).propose(c.make_request(0, static_cast<std::uint64_t>(i), to_bytes("x")));
    }
    c.sim.run();
    EXPECT_EQ(c.replica(3).last_executed(), 10u);
    ASSERT_FALSE(c.app(3).syncs.empty());
    EXPECT_EQ(c.app(3).syncs.back().first, 10u);
    // Synced state matches the quorum's digest.
    EXPECT_EQ(c.app(3).syncs.back().second, c.app(0).state_digest(10));
}

}  // namespace
}  // namespace zc::pbft
