#include <gtest/gtest.h>

#include "pbft/messages.hpp"

namespace zc::pbft {
namespace {

Request sample_request() {
    Request r;
    r.payload = to_bytes("speed=120;brake=0");
    r.origin = 2;
    r.origin_seq = 77;
    r.sig.v.fill(0xab);
    return r;
}

TEST(Messages, RequestRoundTrip) {
    const Request r = sample_request();
    const auto m = decode_message(encode_message(Message{r}));
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(std::get<Request>(*m), r);
}

TEST(Messages, RequestDigestCoversIdentity) {
    const Request r = sample_request();
    Request r2 = r;
    r2.origin = 3;
    EXPECT_NE(r.digest(), r2.digest());
    Request r3 = r;
    r3.origin_seq = 78;
    EXPECT_NE(r.digest(), r3.digest());
    // ...but the payload digest ignores origin: same bus data from two
    // nodes deduplicates in the ZugChain layer.
    EXPECT_EQ(r.payload_digest(), r2.payload_digest());
    EXPECT_EQ(r.payload_digest(), r3.payload_digest());
}

TEST(Messages, SignatureExcludedFromSigningBytes) {
    Request r = sample_request();
    const Bytes sb = r.signing_bytes();
    r.sig.v.fill(0x00);
    EXPECT_EQ(r.signing_bytes(), sb);
}

TEST(Messages, NullRequestIsDistinct) {
    EXPECT_TRUE(Request::null().is_null());
    EXPECT_FALSE(sample_request().is_null());
    EXPECT_NE(Request::null().digest(), sample_request().digest());
}

TEST(Messages, PrePrepareRoundTrip) {
    PrePrepare pp;
    pp.view = 3;
    pp.seq = 42;
    pp.requests = {sample_request()};
    pp.req_digest = PrePrepare::batch_digest(pp.requests);
    pp.primary = 3 % 4;
    pp.sig.v.fill(0x11);
    const auto m = decode_message(encode_message(Message{pp}));
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(std::get<PrePrepare>(*m), pp);
}

TEST(Messages, PrepareCommitCheckpointRoundTrip) {
    Prepare p;
    p.view = 1;
    p.seq = 2;
    p.req_digest.fill(0x22);
    p.replica = 3;
    p.sig.v.fill(0x33);
    EXPECT_EQ(std::get<Prepare>(*decode_message(encode_message(Message{p}))), p);

    Commit c;
    c.view = 1;
    c.seq = 2;
    c.req_digest.fill(0x44);
    c.replica = 0;
    c.sig.v.fill(0x55);
    EXPECT_EQ(std::get<Commit>(*decode_message(encode_message(Message{c}))), c);

    Checkpoint ck;
    ck.seq = 10;
    ck.state.fill(0x66);
    ck.replica = 1;
    ck.sig.v.fill(0x77);
    EXPECT_EQ(std::get<Checkpoint>(*decode_message(encode_message(Message{ck}))), ck);
}

TEST(Messages, ViewChangeRoundTrip) {
    ViewChange vc;
    vc.new_view = 2;
    vc.last_stable = 10;
    CheckpointProof proof;
    proof.seq = 10;
    proof.state.fill(0x10);
    for (NodeId i = 0; i < 3; ++i) {
        Checkpoint ck;
        ck.seq = 10;
        ck.state = proof.state;
        ck.replica = i;
        ck.sig.v.fill(static_cast<std::uint8_t>(i));
        proof.messages.push_back(ck);
    }
    vc.stable_proof = proof;

    PreparedProof prepared;
    prepared.preprepare.view = 1;
    prepared.preprepare.seq = 11;
    prepared.preprepare.requests = {sample_request()};
    prepared.preprepare.req_digest =
        PrePrepare::batch_digest(prepared.preprepare.requests);
    prepared.preprepare.primary = 1;
    for (NodeId i = 2; i < 4; ++i) {
        Prepare p;
        p.view = 1;
        p.seq = 11;
        p.req_digest = prepared.preprepare.req_digest;
        p.replica = i;
        prepared.prepares.push_back(p);
    }
    vc.prepared.push_back(prepared);
    vc.replica = 2;
    vc.sig.v.fill(0x99);

    const auto m = decode_message(encode_message(Message{vc}));
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(std::get<ViewChange>(*m), vc);
}

TEST(Messages, NewViewRoundTrip) {
    NewView nv;
    nv.view = 5;
    ViewChange vc;
    vc.new_view = 5;
    vc.replica = 0;
    nv.view_changes.push_back(vc);
    PrePrepare pp;
    pp.view = 5;
    pp.seq = 1;
    pp.requests = {Request::null()};
    pp.req_digest = Request::null().digest();
    pp.primary = 1;
    nv.reproposals.push_back(pp);
    nv.primary = 1;
    nv.sig.v.fill(0x01);
    const auto m = decode_message(encode_message(Message{nv}));
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(std::get<NewView>(*m), nv);
}

TEST(Messages, DecodeRejectsGarbage) {
    EXPECT_FALSE(decode_message(to_bytes("")).has_value());
    EXPECT_FALSE(decode_message(to_bytes("\x63junk")).has_value());
    EXPECT_FALSE(decode_message(Bytes{0}).has_value());
}

TEST(Messages, DecodeRejectsTruncation) {
    const Request r = sample_request();
    Bytes wire = encode_message(Message{r});
    for (std::size_t cut = 1; cut < wire.size(); cut += 13) {
        EXPECT_FALSE(decode_message(BytesView{wire.data(), wire.size() - cut}).has_value());
    }
}

TEST(Messages, DecodeRejectsTrailingBytes) {
    Bytes wire = encode_message(Message{sample_request()});
    wire.push_back(0xff);
    EXPECT_FALSE(decode_message(wire).has_value());
}

TEST(Messages, MessageNames) {
    EXPECT_STREQ(message_name(Message{Request{}}), "request");
    EXPECT_STREQ(message_name(Message{NewView{}}), "newview");
}

}  // namespace
}  // namespace zc::pbft
