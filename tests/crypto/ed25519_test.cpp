#include <gtest/gtest.h>

#include <cstring>

#include "common/hex.hpp"
#include "common/rng.hpp"
#include "crypto/ed25519.hpp"

namespace zc::crypto {
namespace {

std::array<std::uint8_t, 32> seed_from_hex(const std::string& hex) {
    const auto bytes = from_hex(hex);
    std::array<std::uint8_t, 32> seed{};
    std::memcpy(seed.data(), bytes->data(), 32);
    return seed;
}

std::string pub_hex(const PublicKey& pk) { return to_hex(BytesView{pk.v.data(), pk.v.size()}); }
std::string sig_hex(const Signature& s) { return to_hex(BytesView{s.v.data(), s.v.size()}); }

// Empty-message signing is stable and verifies (the exact RFC 8032 TEST 1
// byte vector is anchored by TEST 2 below, which validates the whole
// pipeline against the RFC reference output).
TEST(Ed25519, EmptyMessageSignsAndVerifies) {
    const auto seed =
        seed_from_hex("0000000000000000000000000000000000000000000000000000000000000000");
    const KeyPair kp = ed25519::keypair_from_seed(seed);
    const Signature sig = ed25519::sign(kp, {});
    EXPECT_EQ(sig, ed25519::sign(kp, {}));
    EXPECT_TRUE(ed25519::verify(kp.pub, {}, sig));
    EXPECT_FALSE(ed25519::verify(kp.pub, to_bytes("x"), sig));
}

// RFC 8032 §7.1 TEST 2 (one-byte message 0x72).
TEST(Ed25519, Rfc8032Test2) {
    const auto seed =
        seed_from_hex("4ccd089b28ff96da9db6c346ec114e0f5b8a319f35aba624da8cf6ed4fb8a6fb");
    const KeyPair kp = ed25519::keypair_from_seed(seed);
    EXPECT_EQ(pub_hex(kp.pub),
              "3d4017c3e843895a92b70aa74d1b7ebc9c982ccf2ec4968cc0cd55f12af4660c");

    const Bytes msg{0x72};
    const Signature sig = ed25519::sign(kp, msg);
    EXPECT_EQ(sig_hex(sig),
              "92a009a9f0d4cab8720e820b5f642540a2b27b5416503f8fb3762223ebdb69da"
              "085ac1e43e15996e458f3613d0f11d8c387b2eaeb4302aeeb00d291612bb0c00");
    EXPECT_TRUE(ed25519::verify(kp.pub, msg, sig));
}

TEST(Ed25519, KeypairDeterministicFromSeed) {
    std::array<std::uint8_t, 32> seed{};
    seed[0] = 7;
    const KeyPair a = ed25519::keypair_from_seed(seed);
    const KeyPair b = ed25519::keypair_from_seed(seed);
    EXPECT_EQ(a.pub, b.pub);
}

TEST(Ed25519, SignVerifyRoundTrip) {
    Rng rng(100);
    const KeyPair kp = ed25519::generate(rng);
    for (std::size_t len : {0u, 1u, 31u, 32u, 33u, 100u, 1000u}) {
        const Bytes msg = rng.bytes(len);
        const Signature sig = ed25519::sign(kp, msg);
        EXPECT_TRUE(ed25519::verify(kp.pub, msg, sig)) << "len " << len;
    }
}

TEST(Ed25519, SigningIsDeterministic) {
    Rng rng(101);
    const KeyPair kp = ed25519::generate(rng);
    const Bytes msg = to_bytes("deterministic");
    EXPECT_EQ(ed25519::sign(kp, msg), ed25519::sign(kp, msg));
}

TEST(Ed25519, TamperedMessageFails) {
    Rng rng(102);
    const KeyPair kp = ed25519::generate(rng);
    Bytes msg = to_bytes("original content");
    const Signature sig = ed25519::sign(kp, msg);
    msg[3] ^= 0x01;
    EXPECT_FALSE(ed25519::verify(kp.pub, msg, sig));
}

TEST(Ed25519, TamperedSignatureFails) {
    Rng rng(103);
    const KeyPair kp = ed25519::generate(rng);
    const Bytes msg = to_bytes("content");
    const Signature good = ed25519::sign(kp, msg);
    for (std::size_t i = 0; i < good.v.size(); i += 7) {
        Signature bad = good;
        bad.v[i] ^= 0x01;
        EXPECT_FALSE(ed25519::verify(kp.pub, msg, bad)) << "flip at " << i;
    }
}

TEST(Ed25519, WrongKeyFails) {
    Rng rng(104);
    const KeyPair a = ed25519::generate(rng);
    const KeyPair b = ed25519::generate(rng);
    const Bytes msg = to_bytes("content");
    const Signature sig = ed25519::sign(a, msg);
    EXPECT_FALSE(ed25519::verify(b.pub, msg, sig));
}

TEST(Ed25519, DistinctSeedsDistinctKeys) {
    Rng rng(105);
    const KeyPair a = ed25519::generate(rng);
    const KeyPair b = ed25519::generate(rng);
    EXPECT_NE(a.pub, b.pub);
}

// S must be canonical (< L); adding L to S forges an alternative encoding
// of the same scalar, which RFC 8032 verification must reject.
TEST(Ed25519, RejectsNonCanonicalS) {
    Rng rng(106);
    const KeyPair kp = ed25519::generate(rng);
    const Bytes msg = to_bytes("malleability");
    Signature sig = ed25519::sign(kp, msg);
    ASSERT_TRUE(ed25519::verify(kp.pub, msg, sig));

    // S' = S + L (little-endian add).
    const std::uint64_t l[4] = {0x5812631a5cf5d3edULL, 0x14def9dea2f79cd6ULL, 0,
                                0x1000000000000000ULL};
    unsigned __int128 carry = 0;
    for (int i = 0; i < 4; ++i) {
        std::uint64_t limb = 0;
        std::memcpy(&limb, sig.v.data() + 32 + 8 * i, 8);
        carry += static_cast<unsigned __int128>(limb) + l[i];
        const std::uint64_t out = static_cast<std::uint64_t>(carry);
        std::memcpy(sig.v.data() + 32 + 8 * i, &out, 8);
        carry >>= 64;
    }
    EXPECT_FALSE(ed25519::verify(kp.pub, msg, sig));
}

TEST(Ed25519, RejectsGarbagePublicKey) {
    Rng rng(107);
    const KeyPair kp = ed25519::generate(rng);
    const Bytes msg = to_bytes("x");
    const Signature sig = ed25519::sign(kp, msg);
    PublicKey garbage;
    garbage.v.fill(0xff);
    EXPECT_FALSE(ed25519::verify(garbage, msg, sig));
}

TEST(Ed25519, CrossMessageSignaturesDiffer) {
    Rng rng(108);
    const KeyPair kp = ed25519::generate(rng);
    EXPECT_NE(ed25519::sign(kp, to_bytes("a")), ed25519::sign(kp, to_bytes("b")));
}

}  // namespace
}  // namespace zc::crypto
