#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/hmac.hpp"

namespace zc::crypto {
namespace {

std::string hex(const Digest& d) { return to_hex(BytesView{d.data(), d.size()}); }

// RFC 4231 test case 1.
TEST(HmacSha256, Rfc4231Case1) {
    const Bytes key(20, 0x0b);
    EXPECT_EQ(hex(hmac_sha256(key, to_bytes("Hi There"))),
              "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2 ("Jefe").
TEST(HmacSha256, Rfc4231Case2) {
    EXPECT_EQ(hex(hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"))),
              "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, KeyLongerThanBlockIsHashed) {
    const Bytes long_key(100, 0xaa);
    const Bytes msg = to_bytes("message");
    // Must not crash and must differ from using the raw truncation.
    const Digest full = hmac_sha256(long_key, msg);
    const Digest truncated = hmac_sha256(BytesView{long_key.data(), 64}, msg);
    EXPECT_NE(full, truncated);
}

TEST(HmacSha256, DifferentKeysDiffer) {
    const Bytes msg = to_bytes("payload");
    EXPECT_NE(hmac_sha256(to_bytes("k1"), msg), hmac_sha256(to_bytes("k2"), msg));
}

TEST(HmacSha256, DifferentMessagesDiffer) {
    const Bytes key = to_bytes("key");
    EXPECT_NE(hmac_sha256(key, to_bytes("m1")), hmac_sha256(key, to_bytes("m2")));
}

TEST(HmacSha256, EmptyKeyAndMessageDeterministic) {
    EXPECT_EQ(hmac_sha256({}, {}), hmac_sha256({}, {}));
}

}  // namespace
}  // namespace zc::crypto
