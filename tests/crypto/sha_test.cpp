#include <gtest/gtest.h>

#include "common/hex.hpp"
#include "crypto/sha256.hpp"
#include "crypto/sha512.hpp"

namespace zc::crypto {
namespace {

std::string hex256(const Digest& d) { return to_hex(BytesView{d.data(), d.size()}); }
std::string hex512(const Digest512& d) { return to_hex(BytesView{d.data(), d.size()}); }

// FIPS 180-4 / NIST CAVP reference vectors.

TEST(Sha256, EmptyString) {
    EXPECT_EQ(hex256(sha256(to_bytes(""))),
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
    EXPECT_EQ(hex256(sha256(to_bytes("abc"))),
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
    EXPECT_EQ(hex256(sha256(to_bytes("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
    Sha256 h;
    const Bytes chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(hex256(h.finalize()),
              "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
    const Bytes msg = to_bytes("the quick brown fox jumps over the lazy dog, repeatedly");
    for (std::size_t split = 0; split <= msg.size(); ++split) {
        Sha256 h;
        h.update(BytesView{msg.data(), split});
        h.update(BytesView{msg.data() + split, msg.size() - split});
        EXPECT_EQ(h.finalize(), sha256(msg)) << "split at " << split;
    }
}

TEST(Sha256, PaddingBoundaries) {
    // Exercise message lengths around the 55/56/64-byte padding edges.
    for (std::size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
        const Bytes msg(len, 0x5a);
        Sha256 split_hash;
        for (std::size_t i = 0; i < len; ++i) split_hash.update(&msg[i], 1);
        EXPECT_EQ(split_hash.finalize(), sha256(msg)) << "len " << len;
    }
}

TEST(Sha512, EmptyString) {
    EXPECT_EQ(hex512(sha512(to_bytes(""))),
              "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
              "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, Abc) {
    EXPECT_EQ(hex512(sha512(to_bytes("abc"))),
              "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
              "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, TwoBlockMessage) {
    EXPECT_EQ(hex512(sha512(to_bytes(
                  "abcdefghbcdefghicdefghijdefghijkefghijklfghijklmghijklmnhijklmno"
                  "ijklmnopjklmnopqklmnopqrlmnopqrsmnopqrstnopqrstu"))),
              "8e959b75dae313da8cf4f72814fc143f8f7779c6eb9f7fa17299aeadb6889018"
              "501d289e4900f7e4331b99dec4b5433ac7d329eeb6dd26545e96e55b874be909");
}

TEST(Sha512, MillionA) {
    Sha512 h;
    const Bytes chunk(1000, 'a');
    for (int i = 0; i < 1000; ++i) h.update(chunk);
    EXPECT_EQ(hex512(h.finalize()),
              "e718483d0ce769644e2e42c7bc15b4638e1f98b13b2044285632a803afa973eb"
              "de0ff244877ea60a4cb0432ce577c31beb009c5c2c49aa2e4eadb217ad8cc09b");
}

TEST(Sha512, IncrementalMatchesOneShot) {
    const Bytes msg(300, 0xa7);
    for (std::size_t split : {0u, 1u, 111u, 112u, 128u, 299u, 300u}) {
        Sha512 h;
        h.update(BytesView{msg.data(), split});
        h.update(BytesView{msg.data() + split, msg.size() - split});
        EXPECT_EQ(h.finalize(), sha512(msg)) << "split at " << split;
    }
}

TEST(Sha512, PaddingBoundaries) {
    for (std::size_t len : {111u, 112u, 113u, 127u, 128u, 129u, 239u, 240u}) {
        const Bytes msg(len, 0x3c);
        Sha512 split_hash;
        for (std::size_t i = 0; i < len; ++i) split_hash.update(&msg[i], 1);
        EXPECT_EQ(split_hash.finalize(), sha512(msg)) << "len " << len;
    }
}

}  // namespace
}  // namespace zc::crypto
