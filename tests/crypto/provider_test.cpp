#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "crypto/provider.hpp"

namespace zc::crypto {
namespace {

class ProviderTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ProviderTest, SignVerifyRoundTrip) {
    auto provider = make_provider(GetParam());
    Rng rng(1);
    const KeyPair kp = provider->generate(rng);
    const Bytes msg = to_bytes("hello train");
    const Signature sig = provider->sign(kp, msg);
    EXPECT_TRUE(provider->verify(kp.pub, msg, sig));
}

TEST_P(ProviderTest, RejectsTamperedMessage) {
    auto provider = make_provider(GetParam());
    Rng rng(2);
    const KeyPair kp = provider->generate(rng);
    Bytes msg = to_bytes("hello train");
    const Signature sig = provider->sign(kp, msg);
    msg[0] ^= 1;
    EXPECT_FALSE(provider->verify(kp.pub, msg, sig));
}

TEST_P(ProviderTest, RejectsWrongKey) {
    auto provider = make_provider(GetParam());
    Rng rng(3);
    const KeyPair a = provider->generate(rng);
    const KeyPair b = provider->generate(rng);
    const Bytes msg = to_bytes("payload");
    EXPECT_FALSE(provider->verify(b.pub, msg, provider->sign(a, msg)));
}

TEST_P(ProviderTest, RejectsTamperedSignature) {
    auto provider = make_provider(GetParam());
    Rng rng(4);
    const KeyPair kp = provider->generate(rng);
    const Bytes msg = to_bytes("payload");
    Signature sig = provider->sign(kp, msg);
    sig.v[40] ^= 0x10;
    EXPECT_FALSE(provider->verify(kp.pub, msg, sig));
}

TEST_P(ProviderTest, DistinctKeysPerGenerate) {
    auto provider = make_provider(GetParam());
    Rng rng(5);
    EXPECT_NE(provider->generate(rng).pub, provider->generate(rng).pub);
}

INSTANTIATE_TEST_SUITE_P(AllProviders, ProviderTest, ::testing::Values("ed25519", "fast"));

TEST(Provider, UnknownNameThrows) {
    EXPECT_THROW(make_provider("rsa"), std::invalid_argument);
}

TEST(FastProvider, UnknownKeyFailsVerification) {
    FastProvider provider;
    Rng rng(6);
    const KeyPair kp = provider.generate(rng);
    const Bytes msg = to_bytes("m");
    const Signature sig = provider.sign(kp, msg);

    FastProvider other;  // fresh registry: key unknown
    EXPECT_FALSE(other.verify(kp.pub, msg, sig));
}

}  // namespace
}  // namespace zc::crypto
