// zc_prof: attribution correctness on a fake clock, the disabled-path
// contract, and the report shapes.
#include <gtest/gtest.h>

#include <string>

#include "prof/prof.hpp"

namespace zc::prof {
namespace {

// Injectable monotonic clock: tests advance it explicitly, so every
// nanosecond of attribution is exact.
std::uint64_t g_fake_now = 0;
std::uint64_t fake_clock() { return g_fake_now; }

class ProfTest : public ::testing::Test {
protected:
    void SetUp() override { g_fake_now = 0; }
    void TearDown() override { Profiler::set_active(nullptr); }
};

TEST_F(ProfTest, SubsystemNamesAreStableAndDistinct) {
    for (unsigned i = 0; i < kSubsystemCount; ++i) {
        const char* name = subsystem_name(static_cast<Subsystem>(i));
        ASSERT_NE(name, nullptr);
        EXPECT_GT(std::string(name).size(), 0u);
        for (unsigned j = 0; j < i; ++j) {
            EXPECT_NE(std::string(name), subsystem_name(static_cast<Subsystem>(j)));
        }
    }
    EXPECT_STREQ(subsystem_name(Subsystem::kSetup), "setup");
    EXPECT_STREQ(subsystem_name(Subsystem::kAudit), "audit");
}

TEST_F(ProfTest, FlatScopeAttributesElapsedTime) {
    Profiler p(&fake_clock);
    g_fake_now = 100;
    p.begin(Subsystem::kCryptoSign);
    g_fake_now = 350;
    p.end();
    EXPECT_EQ(p.self_ns(Subsystem::kCryptoSign), 250u);
    EXPECT_EQ(p.total_ns(Subsystem::kCryptoSign), 250u);
    EXPECT_EQ(p.count(Subsystem::kCryptoSign), 1u);
    EXPECT_EQ(p.depth(), 0u);
}

TEST_F(ProfTest, NestedScopeSelfTimeExcludesChild) {
    Profiler p(&fake_clock);
    g_fake_now = 100;
    p.begin(Subsystem::kDispatch);
    g_fake_now = 150;
    p.begin(Subsystem::kCryptoSign);
    g_fake_now = 350;
    p.end();  // crypto: 200 ns
    g_fake_now = 400;
    p.end();  // dispatch: 300 ns inclusive, 100 ns self

    EXPECT_EQ(p.self_ns(Subsystem::kCryptoSign), 200u);
    EXPECT_EQ(p.total_ns(Subsystem::kDispatch), 300u);
    EXPECT_EQ(p.self_ns(Subsystem::kDispatch), 100u);
    // Self-time sum equals wall elapsed: nothing double-counted.
    EXPECT_EQ(p.self_ns(Subsystem::kDispatch) + p.self_ns(Subsystem::kCryptoSign), 300u);
}

TEST_F(ProfTest, GrandchildTimeChargesOnlyDirectParentChain) {
    Profiler p(&fake_clock);
    g_fake_now = 0;
    p.begin(Subsystem::kDispatch);       // [0, 1000]
    g_fake_now = 100;
    p.begin(Subsystem::kStoreAppend);    // [100, 900]
    g_fake_now = 200;
    p.begin(Subsystem::kCodecEncode);    // [200, 600]
    g_fake_now = 600;
    p.end();
    g_fake_now = 900;
    p.end();
    g_fake_now = 1000;
    p.end();

    EXPECT_EQ(p.self_ns(Subsystem::kCodecEncode), 400u);
    EXPECT_EQ(p.total_ns(Subsystem::kStoreAppend), 800u);
    EXPECT_EQ(p.self_ns(Subsystem::kStoreAppend), 400u);  // 800 - 400 nested
    EXPECT_EQ(p.total_ns(Subsystem::kDispatch), 1000u);
    EXPECT_EQ(p.self_ns(Subsystem::kDispatch), 200u);     // 1000 - 800 nested
    // Invariant: Σ self == outermost inclusive.
    const std::uint64_t self_sum = p.self_ns(Subsystem::kDispatch) +
                                   p.self_ns(Subsystem::kStoreAppend) +
                                   p.self_ns(Subsystem::kCodecEncode);
    EXPECT_EQ(self_sum, p.total_ns(Subsystem::kDispatch));
}

TEST_F(ProfTest, ReenteredSubsystemAccumulatesCounts) {
    Profiler p(&fake_clock);
    for (int i = 0; i < 3; ++i) {
        p.begin(Subsystem::kCodecDecode);
        g_fake_now += 10;
        p.end();
    }
    EXPECT_EQ(p.count(Subsystem::kCodecDecode), 3u);
    EXPECT_EQ(p.self_ns(Subsystem::kCodecDecode), 30u);
}

TEST_F(ProfTest, UnbalancedEndIsIgnored) {
    Profiler p(&fake_clock);
    p.end();  // nothing open — must not underflow or crash
    EXPECT_EQ(p.depth(), 0u);
    p.begin(Subsystem::kAudit);
    g_fake_now += 5;
    p.end();
    p.end();
    EXPECT_EQ(p.count(Subsystem::kAudit), 1u);
}

TEST_F(ProfTest, StackOverflowDegradesGracefully) {
    Profiler p(&fake_clock);
    // Far past the fixed stack: the extra begins are dropped and their
    // ends swallowed, leaving the stack balanced.
    const int deep = 200;
    for (int i = 0; i < deep; ++i) {
        p.begin(Subsystem::kDispatch);
        g_fake_now += 1;
    }
    for (int i = 0; i < deep; ++i) {
        p.end();
        g_fake_now += 1;
    }
    EXPECT_EQ(p.depth(), 0u);
    EXPECT_LE(p.count(Subsystem::kDispatch), 64u);
    // Still usable afterwards.
    p.begin(Subsystem::kAudit);
    g_fake_now += 7;
    p.end();
    EXPECT_EQ(p.count(Subsystem::kAudit), 1u);
    EXPECT_EQ(p.self_ns(Subsystem::kAudit), 7u);
}

TEST_F(ProfTest, SimRateIsVirtualOverWall) {
    Profiler p(&fake_clock);
    EXPECT_DOUBLE_EQ(p.sim_rate(), 0.0);
    p.add_sim_progress(2'000'000'000, 1'000'000'000);
    p.add_sim_progress(2'000'000'000, 1'000'000'000);
    EXPECT_DOUBLE_EQ(p.sim_rate(), 2.0);
    EXPECT_EQ(p.sim_virtual_ns(), 4'000'000'000);
    EXPECT_EQ(p.sim_wall_ns(), 2'000'000'000u);
}

TEST_F(ProfTest, ScopeIsInertWithoutActiveProfiler) {
    ASSERT_EQ(Profiler::active(), nullptr);
    {
        ZC_PROF_SCOPE(kCryptoSign);  // must compile to a no-op path
        ZC_PROF_SCOPE(kCryptoVerify);
    }
    // Nothing to observe — the contract is "no crash, no global access".
    Profiler p(&fake_clock);
    EXPECT_EQ(p.count(Subsystem::kCryptoSign), 0u);
}

TEST_F(ProfTest, ScopeCapturesActiveProfilerAtConstruction) {
    Profiler p(&fake_clock);
    Profiler::set_active(&p);
    {
        ZC_PROF_SCOPE(kAudit);
        g_fake_now += 11;
        // Deactivating mid-scope must not unbalance the stack: the scope
        // captured &p at construction and still closes it.
        Profiler::set_active(nullptr);
    }
    EXPECT_EQ(p.depth(), 0u);
    EXPECT_EQ(p.count(Subsystem::kAudit), 1u);
    EXPECT_EQ(p.self_ns(Subsystem::kAudit), 11u);
}

TEST_F(ProfTest, SnapshotJsonShape) {
    Profiler p(&fake_clock);
    p.begin(Subsystem::kCryptoSign);
    g_fake_now += 2'000'000;  // 2 ms
    p.end();
    p.add_sim_progress(1'000'000'000, 500'000'000);
    g_fake_now += 1'000'000;

    const Profiler::Snapshot snap = p.snapshot();
    EXPECT_DOUBLE_EQ(snap.sim_rate, 2.0);
    EXPECT_GT(snap.wall_s, 0.0);
    EXPECT_NEAR(snap.covered_s, 0.002, 1e-9);

    const std::string json = snap.json();
    EXPECT_EQ(json.rfind("{\"sim_rate\":", 0), 0u) << json;
    EXPECT_NE(json.find("\"subsystems\":{\"setup\":{\"self_s\":"), std::string::npos) << json;
    EXPECT_NE(json.find("\"crypto_sign\":{\"self_s\":0.0020"), std::string::npos) << json;
    EXPECT_NE(json.find("\"peak_rss_bytes\":"), std::string::npos) << json;
    EXPECT_EQ(json.back(), '}');
    // All twelve buckets present, in enum order.
    for (unsigned i = 0; i < kSubsystemCount; ++i) {
        EXPECT_NE(json.find("\"" + std::string(subsystem_name(static_cast<Subsystem>(i))) +
                            "\":{"),
                  std::string::npos);
    }
}

TEST_F(ProfTest, PeakRssIsReportedOnLinux) {
#ifdef __linux__
    EXPECT_GT(peak_rss_bytes(), 0u);
#else
    SUCCEED();
#endif
}

}  // namespace
}  // namespace zc::prof
