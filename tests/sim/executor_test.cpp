#include <gtest/gtest.h>

#include "sim/executor.hpp"

namespace zc::sim {
namespace {

TEST(MeteredExecutor, JobRunsImmediatelyWhenIdle) {
    Simulation sim;
    MeteredExecutor ex(sim, 1);
    bool ran = false;
    sim.schedule(milliseconds(5), [&] {
        ex.submit([&] {
            ran = true;
            return milliseconds(2);
        });
        EXPECT_TRUE(ran);  // executes at submit time when a core is idle
    });
    sim.run();
    EXPECT_EQ(ex.completed(), 1u);
    EXPECT_EQ(ex.busy_time(), milliseconds(2));
}

TEST(MeteredExecutor, QueuedJobRunsWhenCoreFrees) {
    Simulation sim;
    MeteredExecutor ex(sim, 1);
    std::vector<TimePoint> starts;
    auto job = [&](Duration cost) {
        return [&, cost] {
            starts.push_back(sim.now());
            return cost;
        };
    };
    ex.submit(job(milliseconds(10)));
    ex.submit(job(milliseconds(5)));
    ex.submit(job(milliseconds(5)));
    sim.run();
    ASSERT_EQ(starts.size(), 3u);
    EXPECT_EQ(starts[0], milliseconds(0));
    EXPECT_EQ(starts[1], milliseconds(10));
    EXPECT_EQ(starts[2], milliseconds(15));
}

TEST(MeteredExecutor, MultipleCoresOverlap) {
    Simulation sim;
    MeteredExecutor ex(sim, 2);
    std::vector<TimePoint> starts;
    for (int i = 0; i < 4; ++i) {
        ex.submit([&] {
            starts.push_back(sim.now());
            return milliseconds(10);
        });
    }
    sim.run();
    ASSERT_EQ(starts.size(), 4u);
    EXPECT_EQ(starts[0], milliseconds(0));
    EXPECT_EQ(starts[1], milliseconds(0));
    EXPECT_EQ(starts[2], milliseconds(10));
    EXPECT_EQ(starts[3], milliseconds(10));
}

TEST(MeteredExecutor, QueueLimitDrops) {
    Simulation sim;
    MeteredExecutor ex(sim, 1, 2);
    int ran = 0;
    auto job = [&] {
        ++ran;
        return milliseconds(10);
    };
    EXPECT_TRUE(ex.submit(job));   // runs
    EXPECT_TRUE(ex.submit(job));   // queued (1)
    EXPECT_TRUE(ex.submit(job));   // queued (2)
    EXPECT_FALSE(ex.submit(job));  // dropped
    EXPECT_EQ(ex.dropped(), 1u);
    sim.run();
    EXPECT_EQ(ran, 3);
}

TEST(MeteredExecutor, QueueDepthObservable) {
    Simulation sim;
    MeteredExecutor ex(sim, 1);
    for (int i = 0; i < 5; ++i) {
        ex.submit([] { return milliseconds(1); });
    }
    EXPECT_EQ(ex.queue_depth(), 4u);  // one running, four waiting
    sim.run();
    EXPECT_EQ(ex.queue_depth(), 0u);
}

TEST(MeteredExecutor, UtilizationReflectsBusyFraction) {
    Simulation sim;
    MeteredExecutor ex(sim, 1);
    const TimePoint start = sim.now();
    ex.submit([] { return milliseconds(25); });
    sim.run_until(milliseconds(100));
    EXPECT_NEAR(ex.utilization_since(start, Duration::zero()), 0.25, 1e-9);
}

TEST(MeteredExecutor, ZeroCoresRejected) {
    Simulation sim;
    EXPECT_THROW(MeteredExecutor(sim, 0), std::invalid_argument);
}

TEST(MeteredExecutor, JobsCanSubmitJobs) {
    Simulation sim;
    MeteredExecutor ex(sim, 1);
    TimePoint second_start{-1};
    ex.submit([&] {
        ex.submit([&] {
            second_start = sim.now();
            return milliseconds(1);
        });
        return milliseconds(7);
    });
    sim.run();
    EXPECT_EQ(second_start, milliseconds(7));
}

}  // namespace
}  // namespace zc::sim
